package repro_test

import (
	"fmt"

	"repro"
)

// The headline result: lay out the 256-node de Bruijn digraph on OTIS
// with Θ(√n) lenses and verify the isomorphism the layout relies on.
func ExampleOptimalLayout() {
	layout, ok := repro.OptimalLayout(2, 8)
	if !ok {
		panic("no layout")
	}
	fmt.Println(layout)
	fmt.Println("baseline lenses:", repro.IILayoutLenses(2, layout.Nodes()))

	mapping, err := repro.LayoutWitness(2, layout.PPrime, layout.QPrime)
	if err != nil {
		panic(err)
	}
	h, _ := repro.HDigraph(layout.P(), layout.Q(), 2)
	fmt.Println("isomorphism verified:",
		repro.VerifyIsomorphism(h, repro.DeBruijn(2, 8), mapping) == nil)
	// Output:
	// OTIS(16,32) ⊢ B(2,8), 48 lenses
	// baseline lenses: 258
	// isomorphism verified: true
}

// Corollary 4.2 in action: the O(D) test that decides whether an OTIS
// split realizes the de Bruijn digraph.
func ExampleIsDeBruijnLayout() {
	fmt.Println("H(16,32,2)  ≅ B(2,8):", repro.IsDeBruijnLayout(4, 5))
	fmt.Println("H(8,64,2)   ≅ B(2,8):", repro.IsDeBruijnLayout(3, 6))
	fmt.Println("H(2^5,2^7,2)≅ B(2,11):", repro.IsDeBruijnLayout(5, 7))
	// Output:
	// H(16,32,2)  ≅ B(2,8): true
	// H(8,64,2)   ≅ B(2,8): false
	// H(2^5,2^7,2)≅ B(2,11): true
}

// Proposition 3.9: an exotic word digraph is recognized as B(2,6) because
// its index permutation is cyclic.
func ExampleNewAlpha() {
	// Example 3.3.1 of the paper: Γ⁺(x5x4x3x2x1x0) = x2x1x0αx5x4.
	f, _ := repro.PermFromImage([]int{3, 4, 5, 2, 0, 1})
	a, err := repro.NewAlpha(f, repro.IdentityPerm(2), 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("cyclic f:", f.IsCyclic())
	fmt.Println("is de Bruijn:", a.IsDeBruijn())
	mapping, _ := a.IsoToDeBruijn()
	fmt.Println("witness size:", len(mapping))
	// Output:
	// cyclic f: true
	// is de Bruijn: true
	// witness size: 64
}

// De Bruijn self-routing: the destination's letters are the route.
func ExampleDeBruijnRoute() {
	src, _ := repro.ParseWord(2, "0000")
	dst, _ := repro.ParseWord(2, "1011")
	for _, w := range repro.DeBruijnRoute(src, dst) {
		fmt.Println(w)
	}
	// Output:
	// 0000
	// 0001
	// 0010
	// 0101
	// 1011
}

// A de Bruijn sequence from the Eulerian circuit of B(2,2).
func ExampleDeBruijnSequence() {
	seq, _ := repro.DeBruijnSequence(2, 3)
	fmt.Println(len(seq), repro.VerifyDeBruijnSequence(2, 3, seq) == nil)
	// Output:
	// 8 true
}

// Table 1 in one call: the largest OTIS-realizable digraph of degree 2
// and diameter 8 is the Kautz digraph.
func ExampleLargestWithDiameter() {
	row, _ := repro.LargestWithDiameter(2, 8, repro.MooreBound(2, 8))
	fmt.Println(row.N, row.Note)
	// Output:
	// 384 K(2,8)
}

// What a failed split physically builds: stacks of ShuffleNet-style
// multistage networks (Remark 3.10).
func ExampleRealizedStructure() {
	for _, stack := range repro.RealizedStructure(2, 3, 6) {
		fmt.Println(stack)
	}
	// Output:
	// 2 × (C_2 ⊗ B(d,2))
	// 10 × (C_6 ⊗ B(d,2))
}
