package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestFacadeRemovesNoExportedNames is the API-compatibility gate: every
// exported top-level name recorded in testdata/api_names.golden.txt must
// still be declared by repro.go. New names may be added freely (the
// golden is a floor, not an exact set); removing or renaming one is a
// breaking change and fails here. After deliberately extending the
// surface, regenerate the golden with
//
//	UPDATE_API_GOLDEN=1 go test -run TestFacadeRemovesNoExportedNames .
func TestFacadeRemovesNoExportedNames(t *testing.T) {
	current := exportedFacadeNames(t)
	const golden = "testdata/api_names.golden.txt"

	if os.Getenv("UPDATE_API_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(strings.Join(current, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d names to %s", len(current), golden)
		return
	}

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_API_GOLDEN=1 to create): %v", err)
	}
	have := make(map[string]bool, len(current))
	for _, name := range current {
		have[name] = true
	}
	var missing []string
	for _, name := range strings.Fields(string(data)) {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("exported names removed from the facade (breaking change): %v", missing)
	}
}

// exportedFacadeNames parses repro.go and returns its exported top-level
// declarations, sorted.
func exportedFacadeNames(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "repro.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	add := func(id *ast.Ident) {
		if id != nil && id.IsExported() {
			names = append(names, id.Name)
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil {
				add(d.Name)
			}
		case *ast.GenDecl:
			for _, sp := range d.Specs {
				switch s := sp.(type) {
				case *ast.TypeSpec:
					add(s.Name)
				case *ast.ValueSpec:
					for _, id := range s.Names {
						add(id)
					}
				}
			}
		}
	}
	sort.Strings(names)
	return names
}
