package repro

import (
	"math/rand"
	"testing"
)

// Benchmarks for the application substrates (DESIGN.md extension rows).

func BenchmarkDeBruijnSequence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seq, err := DeBruijnSequence(2, 12)
		if err != nil || len(seq) != 4096 {
			b.Fatal("bad sequence")
		}
	}
}

func BenchmarkHamiltonianCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cycle, err := HamiltonianCycle(2, 10)
		if err != nil || len(cycle) != 1024 {
			b.Fatal("bad cycle")
		}
	}
}

func BenchmarkViterbiDecode(b *testing.B) {
	code := NASACode()
	rng := rand.New(rand.NewSource(50))
	msg := make([]byte, 256)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	enc, err := code.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	noisy, _ := BSCChannel(enc, 0.02, rng)
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Decode(noisy); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbiDecodeGalileoK11(b *testing.B) {
	code := GalileoCode(11)
	rng := rand.New(rand.NewSource(51))
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	enc, _ := code.Encode(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT1024ViaDeBruijnDataflow(b *testing.B) {
	rng := rand.New(rand.NewSource(52))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcastSinglePort(b *testing.B) {
	g := DeBruijn(2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := BroadcastSinglePort(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := VerifyBroadcastSchedule(g, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGossipAllPort(b *testing.B) {
	g := DeBruijn(2, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if GossipAllPort(g) != 7 {
			b.Fatal("wrong rounds")
		}
	}
}

func BenchmarkButterflyWitness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(ButterflyWitness(2, 8)) != 8*256 {
			b.Fatal("bad witness")
		}
	}
}

func BenchmarkConjectureScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ConjectureScan(6, 2)
		if len(NonPowerLayouts(res)) != 0 {
			b.Fatal("conjecture broke")
		}
	}
}

func BenchmarkRealizedStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(RealizedStructure(2, 3, 6)) != 2 {
			b.Fatal("bad stacks")
		}
	}
}
