package repro

import (
	"testing"

	"repro/internal/core"
)

// Every figure and worked example of the paper, via the claim registry.

func TestFigures1to3(t *testing.T) { mustClaim(t, "F1-3") }
func TestFigure4(t *testing.T)     { mustClaim(t, "F4") }
func TestFigure5(t *testing.T)     { mustClaim(t, "F5") }
func TestFigure6(t *testing.T)     { mustClaim(t, "F6") }
func TestFigure7(t *testing.T)     { mustClaim(t, "F7") }
func TestFigure8(t *testing.T)     { mustClaim(t, "F8") }

func TestProposition32Claim(t *testing.T) { mustClaim(t, "P3.2") }
func TestProposition33Claim(t *testing.T) { mustClaim(t, "P3.3") }
func TestProposition39Claim(t *testing.T) { mustClaim(t, "P3.9") }
func TestRemark310Claim(t *testing.T)     { mustClaim(t, "R3.10") }
func TestProposition41Claim(t *testing.T) { mustClaim(t, "P4.1") }
func TestCorollary42Claim(t *testing.T)   { mustClaim(t, "C4.2") }
func TestProposition43Claim(t *testing.T) { mustClaim(t, "P4.3") }
func TestCorollary44Claim(t *testing.T)   { mustClaim(t, "C4.4") }
func TestSection43Claim(t *testing.T)     { mustClaim(t, "S4.3") }
func TestSection44Claim(t *testing.T)     { mustClaim(t, "S4.4") }
func TestLensHeadlineClaim(t *testing.T)  { mustClaim(t, "X-LENS") }
func TestIILayoutClaim(t *testing.T)      { mustClaim(t, "X-II") }
func TestKautzIIClaim(t *testing.T)       { mustClaim(t, "X-K=II") }
func TestCountClaim(t *testing.T)         { mustClaim(t, "X-COUNT") }
func TestErratumClaim(t *testing.T)       { mustClaim(t, "ERR-1") }
func TestTable1HeadClaim(t *testing.T)    { mustClaim(t, "T1") }
func TestCorollary34Claim(t *testing.T)   { mustClaim(t, "C3.4") }
func TestRemark24Claim(t *testing.T)      { mustClaim(t, "R2.4") }
func TestRemark26Claim(t *testing.T)      { mustClaim(t, "R2.6") }
func TestRemark38Claim(t *testing.T)      { mustClaim(t, "R3.8") }

func mustClaim(t *testing.T, id string) {
	t.Helper()
	r, err := core.Verify(id)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("%s (%s): %v", r.Claim.ID, r.Claim.Statement, r.Err)
	}
}
