// Package repro is the public API of a full reproduction of
//
//	D. Coudert, A. Ferreira, S. Pérennes,
//	"De Bruijn Isomorphisms and Free Space Optical Networks",
//	14th IEEE International Parallel and Distributed Processing
//	Symposium (IPDPS 2000), pp. 769–774.
//
// The paper proves that a wide class of word digraphs — built from an
// arbitrary permutation σ of the alphabet Z_d and an arbitrary permutation
// f of the letter positions Z_D, with one free position j — is isomorphic
// to the de Bruijn digraph B(d, D) exactly when f is cyclic, and applies
// this to lay out B(d, D) on the OTIS free-space optical architecture with
// Θ(√n) lenses instead of the O(n) previously known.
//
// The facade re-exports the subsystems, grouped below in dependency
// order:
//
//   - combinatorial substrate: permutations of Z_n and words over Z_d;
//   - de Bruijn-family digraphs: DeBruijn, Kautz, RRK, ImaseItoh, BSigma,
//     with explicit isomorphism witnesses (Propositions 3.2, 3.3), plus
//     sequences, ring/tree embeddings and necklace certificates;
//   - alphabet digraphs A(f, σ, j): NewAlpha and the Proposition 3.9
//     machinery, plus the Remark 3.10 component decomposition;
//   - general digraph machinery: diameters, connectivity, conjunction,
//     line digraphs, isomorphism testing;
//   - the OTIS architecture: OTISSystem, HDigraph, the layout criteria of
//     Corollaries 4.2–4.6, OptimalLayout, and the Table 1 search;
//   - the optical bench simulation: NewBench, beam tracing, power budgets
//     and diffraction feasibility;
//   - the packet-level network simulator: NewNetworkOpts and the
//     Network.RunOpts functional-options entry points, table-free shift
//     routing, the prefix-sharded cycle engine, workloads, load sweeps
//     and bufferless deflection routing;
//   - runtime fault injection and fault-aware rerouting;
//   - self-healing: oracle-free failure detection, gossip-flooded
//     link-state events, incremental routing-slab repair, and the
//     per-lens quarantine circuit breaker;
//   - observability: a stdlib-only metrics registry (counters, gauges,
//     power-of-two histograms), per-arc and per-lens telemetry, and the
//     stable OBS_run/v1 snapshot schema;
//   - the assembled machine: layout + optics + witness + routing + metrics
//     in one audited artifact;
//   - applications on the de Bruijn dataflow: multistage networks,
//     broadcasting/gossiping, the Pease FFT, Viterbi decoding, POPS
//     comparisons.
//
// Quick start:
//
//	layout, ok := repro.OptimalLayout(2, 8)      // OTIS(16,32) ⊢ B(2,8)
//	mapping, err := repro.LayoutWitness(2, 4, 5) // H(16,32,2) → B(2,8)
//	bench, err := repro.NewBench(16, 32, repro.DefaultPitch)
//	err = bench.VerifyTranspose()                // optics agree with graph theory
//
// Instrumented simulation:
//
//	rec := repro.NewRecorder(repro.NewMetricsRegistry())
//	g := repro.DeBruijn(2, 8)
//	nw, err := repro.NewNetwork(g, repro.NewTableRouterObserved(g, rec),
//		repro.DefaultSimConfig())
//	nw.Observe(rec)
//	rep, err := nw.RunOpts(repro.UniformLoad(10_000), repro.WithSeed(1))
//	doc, err := rec.Snapshot().MarshalIndent() // stable OBS_run/v1 JSON
//
// Million-node scale (table-free shift routing, prefix-sharded engine):
//
//	g := repro.DeBruijn(2, 20) // 1,048,576 nodes
//	nw, err := repro.NewNetworkOpts(g,
//		repro.WithRouting(repro.ShiftRouting), repro.WithShards(8))
//	rep, err := nw.RunOpts(repro.PermutationLoad())
package repro

import (
	"repro/internal/alpha"
	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/fft"
	"repro/internal/gossip"
	"repro/internal/machine"
	"repro/internal/multistage"
	"repro/internal/obs"
	"repro/internal/optics"
	"repro/internal/otis"
	"repro/internal/perm"
	"repro/internal/pops"
	"repro/internal/simnet"
	"repro/internal/viterbi"
	"repro/internal/word"
)

// ---------------------------------------------------------------------------
// Combinatorial substrate: permutations (Section 2.1) and words.
// ---------------------------------------------------------------------------

type (
	// Perm is a permutation of Z_n in one-line notation.
	Perm = perm.Perm
	// Word is a word over Z_d, the vertex label type of word digraphs.
	Word = word.Word
)

var (
	// IdentityPerm returns the identity permutation of Z_n.
	IdentityPerm = perm.Identity
	// ComplementPerm returns C(u) = n-u-1 (Definition 2.1).
	ComplementPerm = perm.Complement
	// CyclicShiftPerm returns ρ(i) = i+1 mod n (Remark 3.8).
	CyclicShiftPerm = perm.CyclicShift
	// RandomPerm returns a uniformly random permutation.
	RandomPerm = perm.Random
	// PermFromImage builds and validates a permutation.
	PermFromImage = perm.FromImage
	// PermFromCycles builds a permutation from disjoint cycles.
	PermFromCycles = perm.FromCycles
	// AllPerms enumerates the permutations of Z_n.
	AllPerms = perm.All
	// AllCyclicPerms enumerates the (n-1)! cyclic permutations of Z_n.
	AllCyclicPerms = perm.AllCyclic
	// PermParse reads cycle or one-line notation.
	PermParse = perm.Parse
)

var (
	// NewWord returns the all-zero word of the given length over Z_d.
	NewWord = word.New
	// WordFromInt converts a Horner label to a word (Remark 2.6).
	WordFromInt = word.FromInt
	// WordFromLetters builds a word from letters, most significant first.
	WordFromLetters = word.FromLetters
	// ParseWord parses a digit string over Z_d (d ≤ 10).
	ParseWord = word.Parse
	// Pow returns d^D.
	Pow = word.Pow
)

// ---------------------------------------------------------------------------
// De Bruijn-family digraphs (Section 2.2) and their isomorphisms
// (Section 3.1).
// ---------------------------------------------------------------------------

var (
	// DeBruijn returns B(d, D) (Definition 2.2) on Horner labels.
	DeBruijn = debruijn.DeBruijn
	// Kautz returns K(d, D) (Definition 2.7) with its word table.
	Kautz = debruijn.Kautz
	// KautzOrder returns d^{D-1}(d+1).
	KautzOrder = debruijn.KautzOrder
	// RRK returns the Reddy–Raghavan–Kuhl digraph (Definition 2.5).
	RRK = debruijn.RRK
	// ImaseItoh returns II(d, n) (Definition 2.8).
	ImaseItoh = debruijn.ImaseItoh
	// BSigma returns B_σ(d, D) (Definition 3.1).
	BSigma = debruijn.BSigma
	// BBar returns B̄(d, D) = B_C(d, D), equal to II(d, d^D).
	BBar = debruijn.BBar
	// WitnessW returns the Proposition 3.2 isomorphism B_σ → B.
	WitnessW = debruijn.WitnessW
	// IsoBSigmaToB verifies Proposition 3.2 constructively.
	IsoBSigmaToB = debruijn.IsoBSigmaToB
	// WitnessIIToB returns the Proposition 3.3 isomorphism II → B.
	WitnessIIToB = debruijn.WitnessIIToB
	// IsoIIToB verifies Proposition 3.3 constructively.
	IsoIIToB = debruijn.IsoIIToB
	// DeBruijnDistance returns the routing distance between two words.
	DeBruijnDistance = debruijn.Distance
	// DeBruijnRoute returns the canonical shortest path between words.
	DeBruijnRoute = debruijn.Route
	// BroadcastTree returns a BFS arborescence of B(d, D).
	BroadcastTree = debruijn.BroadcastTree
	// NewNextHopSlab builds the flat shortest-path next-hop table of an
	// arbitrary digraph (4 bytes per vertex pair, shared read-only).
	NewNextHopSlab = debruijn.NewNextHopSlab
	// RoutingTable is the [][]int compatibility view over NewNextHopSlab.
	RoutingTable = debruijn.RoutingTable
	// DiameterGain measures the II-vs-RRK degree–diameter advantage.
	DiameterGain = debruijn.DiameterGain
)

// NextHopSlab is the flat next-hop routing table built by NewNextHopSlab.
type NextHopSlab = debruijn.NextHopSlab

// De Bruijn sequences and ring embeddings (the embedding literature [9]).
var (
	// EulerianCircuit returns an Eulerian circuit (Hierholzer).
	EulerianCircuit = debruijn.EulerianCircuit
	// DeBruijnSequence returns a de Bruijn sequence of order D over Z_d.
	DeBruijnSequence = debruijn.Sequence
	// VerifyDeBruijnSequence checks the all-windows-distinct property.
	VerifyDeBruijnSequence = debruijn.VerifySequence
	// DeBruijnSequenceFKM is the Lyndon-word (FKM) construction: the
	// lexicographically least sequence, an independent cross-check.
	DeBruijnSequenceFKM = debruijn.SequenceFKM
	// LyndonWords enumerates Lyndon words in lexicographic order.
	LyndonWords = debruijn.LyndonWords
	// LineIterate returns L^k(g); B(d,D) = L^{D-1}(K*_d) and
	// K(d,D) = L^{D-1}(K_{d+1}).
	LineIterate = debruijn.LineIterate
	// VerifyLineIterateCharacterization checks both identities.
	VerifyLineIterateCharacterization = debruijn.VerifyLineIterateCharacterization
	// HamiltonianCycle returns a dilation-1 ring embedding of B(d, D).
	HamiltonianCycle = debruijn.HamiltonianCycle
	// VerifyHamiltonianCycle checks a proposed Hamiltonian cycle.
	VerifyHamiltonianCycle = debruijn.VerifyHamiltonianCycle
	// TreeEmbedding returns the dilation-1 forest of d-1 complete d-ary
	// trees covering B(d, D) minus the zero word.
	TreeEmbedding = debruijn.TreeEmbedding
	// VerifyTreeEmbedding checks a proposed forest embedding.
	VerifyTreeEmbedding = debruijn.VerifyTreeEmbedding
	// CompleteBinaryTreeInB2 returns the binary-tree embedding for d = 2.
	CompleteBinaryTreeInB2 = debruijn.CompleteBinaryTreeInB2
)

// TreeNode is one vertex of an embedded forest.
type TreeNode = debruijn.TreeNode

// Kautz extras: the explicit isomorphism onto Imase–Itoh ([21]) and
// self-routing on Kautz words.
var (
	// WitnessKautzToII returns the explicit K(d,D) → II(d, d^{D-1}(d+1))
	// isomorphism (alternating difference encoding).
	WitnessKautzToII = debruijn.WitnessKautzToII
	// IsoKautzToII builds and verifies the witness.
	IsoKautzToII = debruijn.IsoKautzToII
	// KautzDistance and KautzRoute are word-level self-routing on K(d,D).
	KautzDistance = debruijn.KautzDistance
	KautzRoute    = debruijn.KautzRoute
	// IsKautzWord validates a Kautz vertex label.
	IsKautzWord = debruijn.IsKautzWord
)

// Combinatorial certificates.
var (
	// NecklaceCycles returns the rotation 1-factor of B(d, D).
	NecklaceCycles = debruijn.NecklaceCycles
	// NecklaceCount returns the Burnside necklace number.
	NecklaceCount = debruijn.NecklaceCount
	// VerifyNecklaceFactor checks a proposed rotation factor.
	VerifyNecklaceFactor = debruijn.VerifyNecklaceFactor
)

// ---------------------------------------------------------------------------
// Alphabet digraphs A(f, σ, j) (Section 3.2).
// ---------------------------------------------------------------------------

type (
	// Alpha is the alphabet digraph A(f, σ, j) of Definition 3.7.
	Alpha = alpha.Alpha
	// AlphaComponent annotates one weak component of a non-cyclic
	// A(f, σ, j) with its Remark 3.10 structure.
	AlphaComponent = alpha.Component
	// AlphaClassCount pairs a structural signature with its frequency.
	AlphaClassCount = alpha.ClassCount
)

var (
	// NewAlpha builds A(f, σ, j) (Definition 3.7).
	NewAlpha = alpha.New
	// DeBruijnAlpha exhibits B(d, D) as A(ρ, Id, 0) (Remark 3.8).
	DeBruijnAlpha = alpha.DeBruijnAlpha
	// CountDefinitions returns d!(D-1)!, the number of alternative
	// de Bruijn definitions (Section 3.2).
	CountDefinitions = alpha.CountDefinitions
	// ClassifyAlpha tallies the structural signatures of every (f, σ, j).
	ClassifyAlpha = alpha.Classify
	// AlphaSignature computes the component-shape signature of one
	// alphabet digraph.
	AlphaSignature = alpha.SignatureOf
	// AlphaIsoBetween maps one cyclic alphabet digraph onto another.
	AlphaIsoBetween = alpha.IsoBetween
)

// ---------------------------------------------------------------------------
// General digraph machinery.
// ---------------------------------------------------------------------------

// Digraph is a directed multigraph on vertices 0..n-1.
type Digraph = digraph.Digraph

var (
	// NewDigraph returns an arcless digraph on n vertices.
	NewDigraph = digraph.New
	// DigraphFromFunc builds a digraph from an out-neighbour function.
	DigraphFromFunc = digraph.FromFunc
	// Conjunction returns G1 ⊗ G2 (Definition 2.3).
	Conjunction = digraph.Conjunction
	// LineDigraph returns L(G) and its arc table.
	LineDigraph = digraph.LineDigraph
	// Circuit returns the directed cycle C_k.
	Circuit = digraph.Circuit
	// CompleteWithLoops returns K*_n, the OTIS-realizable complete
	// digraph of Zane et al.
	CompleteWithLoops = digraph.CompleteWithLoops
	// MooreBound returns 1 + d + ... + d^D.
	MooreBound = digraph.MooreBound
	// VerifyIsomorphism checks a proposed isomorphism in O(n+m).
	VerifyIsomorphism = digraph.VerifyIsomorphism
	// FindIsomorphism searches for an isomorphism (small instances).
	FindIsomorphism = digraph.FindIsomorphism
	// AreIsomorphic reports whether two digraphs are isomorphic.
	AreIsomorphic = digraph.AreIsomorphic
)

// TDM scheduling: d-regular digraphs decompose into d conflict-free
// permutation slots (König). See Digraph.OneFactorization and
// Digraph.VerifyFactorization, available on the Digraph type directly.

// ---------------------------------------------------------------------------
// OTIS architecture and layouts (Section 4).
// ---------------------------------------------------------------------------

type (
	// OTISSystem is an OTIS(p, q) optical transpose interconnect.
	OTISSystem = otis.System
	// OTISLayout describes an OTIS realization of B(d, D).
	OTISLayout = otis.Layout
	// TableRow is one row of the Table 1 degree–diameter search.
	TableRow = otis.TableRow
	// OTISCatalogEntry describes one surveyed OTIS split.
	OTISCatalogEntry = otis.CatalogEntry
	// ConjectureSplitResult is one candidate of a conjecture scan.
	ConjectureSplitResult = otis.SplitResult
)

var (
	// NewOTIS returns an OTIS(p, q) system.
	NewOTIS = otis.NewSystem
	// HDigraph returns H(p, q, d) (Section 4.2).
	HDigraph = otis.H
	// IndexPermutation returns the Proposition 4.1 permutation f.
	IndexPermutation = otis.IndexPermutation
	// IsDeBruijnLayout is the O(D) layout criterion (Corollaries 4.2/4.5).
	IsDeBruijnLayout = otis.IsDeBruijnLayout
	// LayoutWitness returns the isomorphism H(d^p', d^q', d) → B(d, D).
	LayoutWitness = otis.LayoutWitness
	// OptimalLayout minimizes lenses over splits (Corollaries 4.4/4.6).
	OptimalLayout = otis.OptimalLayout
	// MinimizeLenses returns the minimum lens count for B(d, D).
	MinimizeLenses = otis.MinimizeLenses
	// IILayoutLenses returns the O(n) baseline lens count of [14].
	IILayoutLenses = otis.IILayoutLenses
	// SearchDegreeDiameter reruns the exhaustive search of Table 1.
	SearchDegreeDiameter = otis.SearchDegreeDiameter
	// SearchDegreeDiameterParallel is the worker-pool Table 1 search.
	SearchDegreeDiameterParallel = otis.SearchDegreeDiameterParallel
	// LargestWithDiameter finds the largest OTIS-realizable digraph of a
	// given degree and diameter.
	LargestWithDiameter = otis.LargestWithDiameter
	// OTISCatalog surveys what every power-of-d split physically builds.
	OTISCatalog = otis.Catalog
	// VerifyIILayout checks H(d, n, d) = II(d, n) ([14]).
	VerifyIILayout = otis.VerifyIILayout
)

// The concluding conjecture: exhaustive scans over all factorizations.
var (
	// ConjectureScan checks every pq = d^(D+1) split for B(d, D).
	ConjectureScan = otis.ConjectureScan
	// NonPowerLayouts filters a scan to conjecture counterexamples.
	NonPowerLayouts = otis.NonPowerLayouts
)

// ---------------------------------------------------------------------------
// Optical bench simulation.
// ---------------------------------------------------------------------------

type (
	// Bench is a paraxial optical model of an OTIS(p, q) bench.
	Bench = optics.Bench
	// Trajectory is one traced beam through a Bench.
	Trajectory = optics.Trajectory
	// PowerBudget is the optical link budget model.
	PowerBudget = optics.PowerBudget
	// BOM is the hardware bill of materials of a realized network.
	BOM = optics.BOM
	// OpticalBench2D is a separable two-axis OTIS bench.
	OpticalBench2D = optics.Bench2D
	// DiffractionReport summarizes a bench's diffraction analysis.
	DiffractionReport = optics.Diffraction
)

var (
	// NewBench builds a paraxial OTIS(p, q) bench.
	NewBench = optics.NewBench
	// NewBench2D builds the separable 2-D bench for OTIS(px·py, qx·qy).
	NewBench2D = optics.NewBench2D
	// DefaultBudget returns a representative optical link budget.
	DefaultBudget = optics.DefaultBudget
	// WorstCaseMargin traces every beam and returns the worst margin.
	WorstCaseMargin = optics.WorstCaseMargin
	// BillOfMaterials summarizes hardware for a bench and degree.
	BillOfMaterials = optics.BillOfMaterials
	// CompareLayoutLenses compares baseline and optimized lens counts.
	CompareLayoutLenses = optics.CompareLayouts
	// Diffract evaluates the diffraction limits of a bench.
	Diffract = optics.Diffract
	// MaxFeasibleEvenDiameter returns the largest even D whose balanced
	// layout passes the diffraction check.
	MaxFeasibleEvenDiameter = optics.MaxFeasibleDiameterEven
	// RayleighRange returns the collimation length of an unguided beam.
	RayleighRange = optics.RayleighRange
)

// DefaultPitch is the default transceiver pitch (metres).
const DefaultPitch = optics.DefaultPitch

// DefaultWavelength is a typical VCSEL wavelength (850 nm).
const DefaultWavelength = optics.DefaultWavelength

// ---------------------------------------------------------------------------
// Packet-level network simulation.
//
// NewNetworkOpts is the unified constructor: a Digraph plus functional
// options (WithRouting, WithRouter, WithHopLatency, WithShards, and any
// RunOption as a network-wide default). Network.RunOpts is the unified
// run entry point: a Workload plus functional options (WithSeed,
// WithFaults, WithTrace, WithRecorder, WithShards). The older positional
// NewNetwork(g, router, cfg) constructor and the Network.Run,
// Network.RunWithFaults and Network.TracedRunWithFaults methods are
// retained as thin deprecated wrappers.
//
// At scale, WithRouting(ShiftRouting) routes table-free on
// congruence-form de Bruijn digraphs (O(D) state instead of an O(n²)
// next-hop slab) and WithShards(s) partitions the cycle engine by word
// prefix — results are identical for every shard count.
// ---------------------------------------------------------------------------

type (
	// Network is a packet-level simulation over a Digraph.
	Network = simnet.Network
	// Packet is one simulated datagram.
	Packet = simnet.Packet
	// SimConfig tunes the network simulation.
	SimConfig = simnet.Config
	// SimResult summarizes a simulation run.
	SimResult = simnet.Result
	// Router chooses packet next hops.
	Router = simnet.Router
	// Workload supplies the packets of a RunOpts call.
	Workload = simnet.Workload
	// WorkloadFunc adapts a plain generator function to Workload.
	WorkloadFunc = simnet.WorkloadFunc
	// RunOption is a functional option for Network.RunOpts. Every
	// RunOption is also a NetworkOption: passed to NewNetworkOpts it
	// becomes the network-wide default, overridden per run.
	RunOption = simnet.RunOption
	// RunReport is the uniform result envelope of Network.RunOpts.
	RunReport = simnet.RunReport
	// NetworkOption is a functional option for NewNetworkOpts.
	NetworkOption = simnet.NetworkOption
	// RoutingMode selects how a Network resolves next arcs.
	RoutingMode = simnet.RoutingMode
)

// Routing modes for WithRouting and Network.Routing.
const (
	// AutoRouting picks table routing for small graphs and table-free
	// shift routing for large congruence-form de Bruijn graphs.
	AutoRouting = simnet.AutoRouting
	// TableRouting precomputes the O(n²) shortest-path next-hop slab.
	TableRouting = simnet.TableRouting
	// ShiftRouting routes by the O(D) de Bruijn shift closed form;
	// requires a congruence-form B(d, D) digraph.
	ShiftRouting = simnet.ShiftRouting
	// CustomRouting reports a caller-supplied Router (WithRouter).
	CustomRouting = simnet.CustomRouting
)

var (
	// NewNetworkOpts creates a Network configured by functional options.
	NewNetworkOpts = simnet.NewNetwork
	// WithRouting selects the routing mode at construction.
	WithRouting = simnet.WithRouting
	// WithRouter supplies an explicit Router implementation.
	WithRouter = simnet.WithRouter
	// WithHopLatency sets the per-hop latency in cycles.
	WithHopLatency = simnet.WithHopLatency
	// WithMaxCycles caps the simulation length.
	WithMaxCycles = simnet.WithMaxCycles
	// WithSimConfig applies a whole SimConfig at construction.
	WithSimConfig = simnet.WithConfig
	// WithShards partitions the cycle engine into prefix shards; plain
	// runs execute on a worker pool, identical results at any count.
	WithShards = simnet.WithShards
	// RecognizeDeBruijn reports whether a digraph is the congruence-form
	// B(d, D) that shift routing requires, returning d and D.
	RecognizeDeBruijn = debruijn.Recognize
)

var (
	// NewNetwork binds a digraph, router and config.
	//
	// Deprecated: NewNetwork(g, router, cfg) is
	// NewNetworkOpts(g, WithRouter(router), WithSimConfig(cfg)); the
	// options constructor also resolves routing modes and network-wide
	// run defaults. NewNetwork remains a thin equivalent wrapper.
	NewNetwork = simnet.New
	// NewTableRouter routes by precomputed shortest paths.
	NewTableRouter = simnet.NewTableRouter
	// NewDeBruijnRouter routes natively on B(d, D) labels.
	NewDeBruijnRouter = simnet.NewDeBruijnRouter
	// DefaultSimConfig returns unit hop latency.
	DefaultSimConfig = simnet.DefaultConfig
)

// Workloads for Network.RunOpts. Each returns a Workload whose Packets
// method is driven by the run's packet budget and seed, so one workload
// value can be reused across runs and sweeps.
var (
	// FixedWorkload wraps an explicit packet slice as a Workload.
	FixedWorkload = simnet.Fixed
	// UniformLoad sends n packets between uniformly random pairs.
	UniformLoad = simnet.UniformLoad
	// PermutationLoad sends one packet per node along a random permutation.
	PermutationLoad = simnet.PermutationLoad
	// BroadcastLoad floods one source to all other nodes.
	BroadcastLoad = simnet.BroadcastLoad
	// AllToAllLoad sends every ordered pair once.
	AllToAllLoad = simnet.AllToAllLoad
	// PoissonLoad injects Poisson arrivals at a given rate.
	PoissonLoad = simnet.PoissonLoad
	// RatedLoad sends uniform traffic at a fixed aggregate rate, which
	// may exceed one packet per cycle — the overload workload.
	RatedLoad = simnet.RatedLoad
)

// Run options for Network.RunOpts (and OpticalMachine.RunOpts).
var (
	// WithSeed fixes the workload-generation seed (default 1).
	WithSeed = simnet.WithSeed
	// WithFaults runs the workload under a FaultPlan.
	WithFaults = simnet.WithFaults
	// WithFaultConfig overrides the fault-engine tuning.
	WithFaultConfig = simnet.WithFaultConfig
	// WithTrace captures the per-packet event log in RunReport.Events.
	WithTrace = simnet.WithTrace
	// WithRecorder records this run into the given Recorder, overriding
	// (for this run only) any recorder attached with Network.Observe.
	WithRecorder = simnet.WithRecorder
	// WithQueueCapacity bounds every output queue, turning full
	// downstream queues into credit-based backpressure.
	WithQueueCapacity = simnet.WithQueueCapacity
	// WithHoldBudget caps the hold-in-place cycles a packet may spend
	// against full queues before dropping as queue-full.
	WithHoldBudget = simnet.WithHoldBudget
	// WithAdmission regulates injection with a token-bucket source
	// regulator; refused packets land in the disjoint Shed bucket.
	WithAdmission = simnet.WithAdmission
)

// Overload protection and saturation studies.
var (
	// SaturationRate returns a digraph's uniform-traffic saturation
	// throughput in packets per cycle (M / mean distance).
	SaturationRate = simnet.SaturationRate
)

type (
	// AdmissionConfig tunes the WithAdmission token bucket.
	AdmissionConfig = simnet.AdmissionConfig
	// SaturationPoint is one load multiple of Network.SaturationSweep.
	SaturationPoint = simnet.SaturationPoint
	// OptionError reports an invalid RunOpts option or workload
	// parameter, detected eagerly before any simulation work.
	OptionError = simnet.OptionError
)

// Deprecated: the raw packet-slice generators below predate the Workload
// interface. Prefer Network.RunOpts with UniformLoad, PermutationLoad,
// BroadcastLoad, AllToAllLoad or PoissonLoad; wrap an explicit slice with
// FixedWorkload. They remain for callers that want a bare []Packet.
var (
	// UniformRandomWorkload generates n uniformly random packets.
	UniformRandomWorkload = simnet.UniformRandom
	// PermutationWorkload generates a random-permutation pattern.
	PermutationWorkload = simnet.Permutation
	// BroadcastWorkload generates a one-to-all pattern.
	BroadcastWorkload = simnet.Broadcast
	// AllToAllWorkload generates every ordered pair once.
	AllToAllWorkload = simnet.AllToAll
	// PoissonWorkload generates Poisson arrivals.
	PoissonWorkload = simnet.PoissonArrivals
	// RatedWorkload generates fixed-rate uniform traffic (rates may
	// exceed one packet per cycle).
	RatedWorkload = simnet.RatedUniform
)

// Load–latency characterization.
var (
	// LoadSweep measures mean latency across offered Poisson loads.
	LoadSweep = simnet.LoadSweep
	// ZeroLoadLatency returns mean distance × hop latency.
	ZeroLoadLatency = simnet.ZeroLoadLatency
)

// LoadSweepPoint is one offered-load measurement.
type LoadSweepPoint = simnet.SweepPoint

// Deflection (hot-potato) routing — the bufferless optical regime.
var (
	// NewDeflection builds a hot-potato simulator on a d-regular digraph.
	NewDeflection = simnet.NewDeflection
)

// DeflectionNetwork simulates bufferless hot-potato routing.
type DeflectionNetwork = simnet.DeflectionNetwork

// DeflectionResult summarizes a hot-potato run. It satisfies the drain
// invariant Delivered + Dropped == Offered, with Dropped split into the
// Stuck and DroppedHorizon buckets.
type DeflectionResult = simnet.DeflectionResult

// ---------------------------------------------------------------------------
// Runtime fault injection and fault-aware rerouting.
// ---------------------------------------------------------------------------

var (
	// NewFaultPlan returns an empty runtime fault schedule.
	NewFaultPlan = simnet.NewFaultPlan
	// NewFaultAwareRouter wraps a router with fault awareness.
	NewFaultAwareRouter = simnet.NewFaultAwareRouter
	// DefaultFaultSimConfig returns the default TTL/retry/backoff tuning.
	DefaultFaultSimConfig = simnet.DefaultFaultConfig
	// DegradationSweep measures delivery and latency vs. fault rate.
	DegradationSweep = simnet.DegradationSweep
)

type (
	// FaultPlan schedules link, node and lens faults against a run.
	FaultPlan = simnet.FaultPlan
	// FaultKind classifies scheduled faults (link, node, lens).
	FaultKind = simnet.FaultKind
	// Fault is one scheduled failure.
	Fault = simnet.Fault
	// SimArc identifies a directed link as (tail, adjacency position).
	SimArc = simnet.Arc
	// FaultState is a compiled FaultPlan bound to a digraph.
	FaultState = simnet.FaultState
	// FaultAwareRouter reroutes around the faults of a FaultState.
	FaultAwareRouter = simnet.FaultAwareRouter
	// FaultSimConfig tunes RunWithFaults (TTL, retries, backoff).
	FaultSimConfig = simnet.FaultConfig
	// FaultSimResult extends SimResult with fault-path accounting.
	FaultSimResult = simnet.FaultResult
	// DegradationPoint is one fault-rate measurement of a sweep.
	DegradationPoint = simnet.DegradationPoint
	// SimEvent is one record of a traced simulation run.
	SimEvent = simnet.Event
	// SimEventKind classifies trace events (inject … reroute, drop).
	SimEventKind = simnet.EventKind
)

// ---------------------------------------------------------------------------
// Self-healing: local failure detection, gossip-driven route repair and
// lens quarantine.
//
// Network.SelfHeal (and OpticalMachine.SelfHeal) opens a session that
// runs the fault engine with the oracle removed: the fault plan is
// physical truth only, and every routing decision works from knowledge
// the nodes earned — NACK timeouts, flooded link-state events
// (GossipFlood), and epoch slabs patched incrementally by
// TableRouter.Repair / RepairNextHopSlab. NewLensBreaker adds the
// machine-level circuit breaker that quarantines a misbehaving lens's
// whole arc group with exponential-backoff hysteresis.
// ---------------------------------------------------------------------------

type (
	// SelfHealingSession is a live self-healing run context; the clock,
	// event log and epoch slabs persist across its Run calls.
	SelfHealingSession = simnet.SelfHealing
	// HealConfig tunes detection, gossip and probing.
	HealConfig = simnet.HealConfig
	// HealResult extends FaultSimResult with control-plane accounting.
	HealResult = simnet.HealResult
	// HealMonitor observes transmission outcomes and may quarantine arc
	// groups (the lens circuit breaker implements it).
	HealMonitor = simnet.HealMonitor
	// GossipFlood is the incremental fault-tolerant all-port flood that
	// spreads link-state events.
	GossipFlood = gossip.Flood
	// LensBreaker is the per-lens quarantine circuit breaker.
	LensBreaker = machine.LensBreaker
	// LensBreakerConfig tunes the breaker's threshold and hold times.
	LensBreakerConfig = machine.BreakerConfig
	// LensBreakerState is the breaker state of one lens.
	LensBreakerState = machine.BreakerState
	// LensBreakerStatus is one row of LensBreaker.States.
	LensBreakerStatus = machine.LensBreakerStatus
	// LensBreakerTransition is one recorded state change.
	LensBreakerTransition = machine.BreakerTransition
)

var (
	// NewFaultPlanFor returns a fault schedule validated eagerly against
	// a digraph (errors surface on Err instead of at Compile).
	NewFaultPlanFor = simnet.NewFaultPlanFor
	// RepairNextHopSlab patches a NextHopSlab around dead arcs without a
	// from-scratch rebuild, bit-identical to rebuilding on the residual.
	RepairNextHopSlab = debruijn.RepairSlab
	// NewGossipFlood starts a flood of one message from an origin node.
	NewGossipFlood = gossip.NewFlood
	// NewLensBreaker builds the per-lens circuit breaker of a machine.
	NewLensBreaker = machine.NewLensBreaker
)

// Breaker states.
const (
	LensBreakerClosed   = machine.BreakerClosed
	LensBreakerOpen     = machine.BreakerOpen
	LensBreakerHalfOpen = machine.BreakerHalfOpen
)

// ---------------------------------------------------------------------------
// Observability: metrics registry, per-arc/per-lens telemetry, and the
// OBS_run/v1 snapshot schema.
//
// A Recorder attached via Network.Observe (or OpticalMachine.Observe)
// instruments every subsequent run at near-zero cost: counters and the
// per-arc traversal/peak-queue slabs are updated with atomic operations,
// and an unattached (nil) recorder costs one predictable branch per hop.
// Recorder.Snapshot yields a RunMetrics document in the stable OBS_run/v1
// JSON schema; ValidateRunMetrics checks a document an external tool is
// about to trust.
// ---------------------------------------------------------------------------

type (
	// MetricsRegistry is a concurrency-safe registry of named counters,
	// gauges and power-of-two histograms.
	MetricsRegistry = obs.Registry
	// Recorder is the simulator-facing instrumentation handle. All its
	// methods are safe on a nil receiver (the uninstrumented mode).
	Recorder = obs.Recorder
	// RunMetrics is one OBS_run/v1 snapshot document.
	RunMetrics = obs.RunMetrics
	// ArcMetrics is the per-arc traversal and peak-queue slab pair.
	ArcMetrics = obs.ArcMetrics
	// HistogramSnapshot is a frozen power-of-two histogram.
	HistogramSnapshot = obs.HistogramSnapshot
	// LensUtilization is one per-lens traffic roll-up row.
	LensUtilization = obs.LensUtilization
	// LensCongestion is one per-lens peak-queue-depth roll-up row.
	LensCongestion = obs.LensCongestion
	// DropCause classifies packet drops (noroute, ttl, fault, horizon,
	// stuck, queuefull).
	DropCause = obs.DropCause
)

var (
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// NewRecorder binds a recorder to a registry (nil for a private one).
	NewRecorder = obs.NewRecorder
	// ValidateRunMetrics checks an OBS_run/v1 JSON document.
	ValidateRunMetrics = obs.ValidateRunMetrics
	// NewTableRouterObserved builds a table router and records its
	// construction time and slab footprint into the recorder's gauges.
	NewTableRouterObserved = simnet.NewTableRouterObserved
)

// ObsRunSchema is the schema tag of RunMetrics documents.
const ObsRunSchema = obs.RunMetricsSchema

// Metric names used by the instrumented simulators. Stable: external
// dashboards may key on them.
const (
	MetricDelivered    = obs.MetricDelivered
	MetricDropped      = obs.MetricDropped
	MetricDropPrefix   = obs.MetricDropPrefix
	MetricReroutes     = obs.MetricReroutes
	MetricRetries      = obs.MetricRetries
	MetricDeflections  = obs.MetricDeflections
	MetricArcTraversed = obs.MetricArcTraversed
	MetricArenaReused  = obs.MetricArenaReused
	MetricArenaAlloc   = obs.MetricArenaAlloc
	MetricRouterNS     = obs.MetricRouterNS
	MetricRouterBytes  = obs.MetricRouterBytes
	MetricMaxQueue     = obs.MetricMaxQueue
	MetricShed         = obs.MetricShed
	MetricHolds        = obs.MetricHolds
	MetricHistLatency  = obs.MetricHistLatency
	MetricHistQueue    = obs.MetricHistQueue
	MetricHistHops     = obs.MetricHistHops

	MetricHealNacks      = obs.MetricHealNacks
	MetricHealDetections = obs.MetricHealDetections
	MetricHealEvents     = obs.MetricHealEvents
	MetricHealRepairs    = obs.MetricHealRepairs
	MetricHealProbes     = obs.MetricHealProbes
	MetricHealConverge   = obs.MetricHealConverge
	MetricQuarTrips      = obs.MetricQuarTrips
	MetricQuarHalfOpen   = obs.MetricQuarHalfOpen
	MetricQuarCloses     = obs.MetricQuarCloses
)

// Drop causes recorded under MetricDropPrefix + cause.String().
const (
	DropNoRoute   = obs.DropNoRoute
	DropTTL       = obs.DropTTL
	DropFault     = obs.DropFault
	DropHorizon   = obs.DropHorizon
	DropStuck     = obs.DropStuck
	DropQueueFull = obs.DropQueueFull
)

// ---------------------------------------------------------------------------
// The assembled machine: layout + optics + witness + routing + metrics in
// one artifact.
// ---------------------------------------------------------------------------

var (
	// BuildMachine assembles and fully verifies an optical de Bruijn
	// machine for B(d, D).
	BuildMachine = machine.Build
	// PlanMachine picks the largest de Bruijn machine within a node
	// budget.
	PlanMachine = machine.Plan
	// PlanAndBuildMachine plans and assembles in one call.
	PlanAndBuildMachine = machine.PlanAndBuild
)

// MachinePlan is a capacity-planning recommendation.
type MachinePlan = machine.PlanResult

// OpticalMachine is a fully assembled, audited optical de Bruijn machine.
// Observe/RunOpts/LensUtilization/RunMetrics expose the observability
// layer at machine level, including the per-lens traffic roll-up.
type OpticalMachine = machine.Machine

// ---------------------------------------------------------------------------
// Applications on the de Bruijn dataflow.
// ---------------------------------------------------------------------------

// Multistage networks built from de Bruijn digraphs ([27], [30]).
var (
	// WrappedButterfly returns WBF(d, D).
	WrappedButterfly = multistage.WrappedButterfly
	// ButterflyWitness maps WBF(d, D) onto C_D ⊗ B(d, D).
	ButterflyWitness = multistage.ButterflyWitness
	// ShuffleNet returns SN(d, k) = C_k ⊗ B(d, k).
	ShuffleNet = multistage.ShuffleNet
	// GEMNET returns GEMNET(K, M, d) = C_K ⊗ RRK(d, M).
	GEMNET = multistage.GEMNET
	// RealizedStructure describes what a non-layout OTIS split builds:
	// a stack of circuit ⊗ de Bruijn networks (Remark 3.10 made useful).
	RealizedStructure = otis.RealizedStructure
)

// MultistageStack describes copies × (C_c ⊗ B(d, r)).
type MultistageStack = multistage.Stack

// Broadcasting and gossiping ([3], [28]).
var (
	// BroadcastAllPort simulates all-port broadcasting (rounds =
	// eccentricity).
	BroadcastAllPort = gossip.BroadcastAllPort
	// BroadcastSinglePort builds a greedy single-port broadcast schedule.
	BroadcastSinglePort = gossip.BroadcastSinglePort
	// VerifyBroadcastSchedule validates a single-port schedule.
	VerifyBroadcastSchedule = gossip.VerifySchedule
	// GossipAllPort simulates all-port gossiping (rounds = diameter).
	GossipAllPort = gossip.GossipAllPort
	// BroadcastLogLowerBound returns ⌈log2 n⌉.
	BroadcastLogLowerBound = gossip.LogLowerBound
)

// BroadcastSchedule is a single-port broadcast schedule.
type BroadcastSchedule = gossip.Schedule

// The Pease FFT — the de Bruijn-dataflow parallel FFT ([12], [24]).
var (
	// FFT computes the DFT with the constant-geometry de Bruijn dataflow.
	FFT = fft.Transform
	// InverseFFT computes the inverse DFT.
	InverseFFT = fft.Inverse
	// FFTStageSources returns a stage's reads: the de Bruijn
	// in-neighbours.
	FFTStageSources = fft.StageSources
	// VerifyFFTDataflow checks every stage read is a de Bruijn arc.
	VerifyFFTDataflow = fft.VerifyDataflow
	// Convolve computes circular convolution via the FFT.
	Convolve = fft.Convolve
)

// Viterbi decoding on the de Bruijn trellis (Galileo, [11]).
var (
	// NASACode is the CCSDS rate-1/2, K=7 convolutional code.
	NASACode = viterbi.NASA
	// GalileoCode returns a rate-1/4 long-constraint code; its trellis is
	// B(2, K-1).
	GalileoCode = viterbi.Galileo
	// BSCChannel flips bits with probability p.
	BSCChannel = viterbi.BSC
)

// ConvolutionalCode is a rate-1/r binary convolutional code whose trellis
// is the de Bruijn digraph B(2, K-1).
type ConvolutionalCode = viterbi.Code

// Soft-decision channel tools for the Viterbi substrate.
var (
	// AWGNChannel modulates to BPSK and adds Gaussian noise.
	AWGNChannel = viterbi.AWGN
	// HardSlice converts soft symbols to hard bits.
	HardSlice = viterbi.HardSlice
)

// Prior-work multi-OPS networks ([10], [13], [34]).
var (
	// NewPOPS returns a POPS(t, g) single-hop network model.
	NewPOPS = pops.NewPOPS
	// StackKautz returns SK(s, d, k) = K(d,k) ⊗ K*_s ([13]).
	StackKautz = pops.StackKautz
	// StackKautzOrder returns s·d^{k-1}(d+1).
	StackKautzOrder = pops.StackKautzOrder
	// VerifyZaneCompleteLayout checks H(n,n,n) = K*_n ([34]).
	VerifyZaneCompleteLayout = pops.VerifyZaneCompleteLayout
	// CompareOpticalDesigns contrasts POPS, complete-OTIS and de Bruijn-
	// OTIS hardware for n = d^D processors.
	CompareOpticalDesigns = pops.Compare
)

// POPSNetwork is a POPS(t, g) model.
type POPSNetwork = pops.POPS

// OpticalHardwareComparison contrasts per-processor optics across designs.
type OpticalHardwareComparison = pops.HardwareComparison
