package repro_test

import (
	"fmt"

	"repro"
)

// Proposition 3.3 in action: the Imase–Itoh digraph is the de Bruijn
// digraph with a complemented alphabet.
func ExampleIsoIIToB() {
	mapping, err := repro.IsoIIToB(2, 3)
	if err != nil {
		panic(err)
	}
	// II(2,8) vertex 0 has out-neighbours {-1, -2} mod 8 = {7, 6}; its
	// de Bruijn image must have the images of 7 and 6 as successors.
	fmt.Println("II vertex 0 maps to B vertex", mapping[0])
	fmt.Println("successors map to", mapping[7], "and", mapping[6])
	// Output:
	// II vertex 0 maps to B vertex 2
	// successors map to 5 and 4
}

// The d!(D-1)! count of Section 3.2.
func ExampleCountDefinitions() {
	fmt.Println(repro.CountDefinitions(2, 3))
	fmt.Println(repro.CountDefinitions(3, 4))
	// Output:
	// 4
	// 36
}

// The rotation 1-factor: necklace cycles partition B(2,4).
func ExampleNecklaceCycles() {
	cycles := repro.NecklaceCycles(2, 4)
	fmt.Println("cycles:", len(cycles), "=", repro.NecklaceCount(2, 4))
	total := 0
	for _, c := range cycles {
		total += len(c)
	}
	fmt.Println("vertices covered:", total)
	// Output:
	// cycles: 6 = 6
	// vertices covered: 16
}

// An audited machine in one call.
func ExampleBuildMachine() {
	m, err := repro.BuildMachine(2, 6, repro.DefaultPitch)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Layout)
	fmt.Println("nodes:", m.Nodes(), "lenses:", m.Lenses())
	// Output:
	// OTIS(8,16) ⊢ B(2,6), 24 lenses
	// nodes: 64 lenses: 24
}

// The Kautz digraph through the Imase–Itoh congruence, with the explicit
// witness this reproduction derives.
func ExampleIsoKautzToII() {
	mapping, err := repro.IsoKautzToII(2, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("verified bijection over", len(mapping), "vertices")
	// Output:
	// verified bijection over 12 vertices
}

// Diameter comparison of the two congruence families (why Table 1's tail
// rows are Imase–Itoh digraphs).
func ExampleDiameterGain() {
	maxII, maxRRK := repro.DiameterGain(2, 6)
	fmt.Println("II reaches", maxII, "vertices; RRK reaches", maxRRK)
	// Output:
	// II reaches 96 vertices; RRK reaches 64
}
