package repro

import (
	"fmt"
	"reflect"
	"testing"
)

// Full reproduction of Table 1: the degree–diameter search for OTIS
// digraphs H(p, q, 2) at diameters 8, 9 and 10. Each test scans from the
// first row the paper displays up to the Moore bound (beyond which no
// digraph of that degree and diameter exists), so the "largest digraph"
// claims are verified unconditionally. Run with -v to see the table.

func tableWant8() []TableRow {
	return []TableRow{
		{N: 253, Pairs: [][2]int{{2, 253}}},
		{N: 254, Pairs: [][2]int{{2, 254}}},
		{N: 255, Pairs: [][2]int{{2, 255}}},
		{N: 256, Pairs: [][2]int{{2, 256}, {4, 128}, {16, 32}}, Note: "B(2,8)"},
		{N: 258, Pairs: [][2]int{{2, 258}}},
		{N: 264, Pairs: [][2]int{{2, 264}}},
		{N: 288, Pairs: [][2]int{{2, 288}}},
		{N: 384, Pairs: [][2]int{{2, 384}}, Note: "K(2,8)"},
	}
}

func tableWant9() []TableRow {
	return []TableRow{
		{N: 509, Pairs: [][2]int{{2, 509}}},
		{N: 510, Pairs: [][2]int{{2, 510}}},
		{N: 511, Pairs: [][2]int{{2, 511}}},
		{N: 512, Pairs: [][2]int{{2, 512}, {8, 128}}, Note: "B(2,9)"},
		{N: 513, Pairs: [][2]int{{2, 513}}},
		{N: 516, Pairs: [][2]int{{2, 516}}},
		{N: 528, Pairs: [][2]int{{2, 528}}},
		{N: 576, Pairs: [][2]int{{2, 576}}},
		{N: 768, Pairs: [][2]int{{2, 768}}, Note: "K(2,9)"},
	}
}

func tableWant10() []TableRow {
	return []TableRow{
		{N: 1022, Pairs: [][2]int{{2, 1022}}},
		{N: 1023, Pairs: [][2]int{{2, 1023}}},
		{N: 1024, Pairs: [][2]int{{2, 1024}, {4, 512}, {8, 256}, {16, 128}, {32, 64}}, Note: "B(2,10)"},
		{N: 1026, Pairs: [][2]int{{2, 1026}}},
		{N: 1032, Pairs: [][2]int{{2, 1032}}},
		{N: 1056, Pairs: [][2]int{{2, 1056}}},
		{N: 1152, Pairs: [][2]int{{2, 1152}}},
		{N: 1536, Pairs: [][2]int{{2, 1536}}, Note: "K(2,10)"},
	}
}

func runTable(t *testing.T, diam, minN int, want []TableRow) {
	t.Helper()
	rows := SearchDegreeDiameter(2, diam, minN, MooreBound(2, diam))
	if testing.Verbose() {
		fmt.Printf("Table 1, D = %d (n from %d to Moore bound %d):\n",
			diam, minN, MooreBound(2, diam))
		for _, r := range rows {
			fmt.Println("  " + r.String())
		}
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("Table 1 D=%d mismatch:\n got: %v\nwant: %v", diam, rows, want)
	}
}

func TestReproduceTable1D8(t *testing.T) {
	runTable(t, 8, 253, tableWant8())
}

func TestReproduceTable1D9(t *testing.T) {
	runTable(t, 9, 509, tableWant9())
}

func TestReproduceTable1D10(t *testing.T) {
	if testing.Short() {
		t.Skip("D=10 scan in -short mode")
	}
	runTable(t, 10, 1022, tableWant10())
}

func TestKautzLargestEachDiameter(t *testing.T) {
	// "The Kautz digraph appears to be the largest digraph of degree d
	// and diameter D which has an OTIS(p,q)-layout."
	for _, diam := range []int{8, 9} {
		row, ok := LargestWithDiameter(2, diam, MooreBound(2, diam))
		if !ok {
			t.Fatalf("no OTIS digraph of diameter %d", diam)
		}
		if row.N != KautzOrder(2, diam) {
			t.Errorf("D=%d: largest n = %d, want Kautz %d", diam, row.N, KautzOrder(2, diam))
		}
	}
}
