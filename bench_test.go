package repro

import (
	"fmt"
	"testing"

	"repro/internal/optics"
)

// Benchmarks, one per paper artifact (see DESIGN.md §3 for the mapping).
// Absolute timings are machine-dependent; the shapes the paper predicts —
// O(D) layout checks (Cor 4.5), O(D²) lens minimization (Cor 4.6),
// Θ(√n) vs O(n) hardware — are asserted by the tests, while the benches
// measure the constants.

// --- T1: Table 1 exhaustive degree–diameter search ---

func BenchmarkTable1SearchD8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := SearchDegreeDiameter(2, 8, 253, MooreBound(2, 8))
		if len(rows) != 8 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

func BenchmarkTable1SearchD9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := SearchDegreeDiameter(2, 9, 509, MooreBound(2, 9))
		if len(rows) != 9 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

func BenchmarkTable1SearchD10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := SearchDegreeDiameter(2, 10, 1022, MooreBound(2, 10))
		if len(rows) != 8 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// --- Corollary 4.5: the O(D) layout check. Sub-benchmarks across D show
// the linear growth. ---

func BenchmarkIsDeBruijnLayout(b *testing.B) {
	for _, D := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("D=%d", D), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !IsDeBruijnLayout(D/2, D/2+1) {
					b.Fatal("layout rejected")
				}
			}
		})
	}
}

// --- Corollary 4.6: the O(D²) lens minimization. ---

func BenchmarkMinimizeLenses(b *testing.B) {
	// Lens counts are d^p' + d^q', so keep D small enough for int; the
	// split search itself is benchmarked separately for large D.
	for _, D := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("D=%d", D), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, ok := MinimizeLenses(2, D); !ok {
					b.Fatal("no layout")
				}
			}
		})
	}
}

func BenchmarkOptimalLayoutSplitSearch(b *testing.B) {
	for _, D := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("D=%d", D), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := OptimalLayout(2, D); !ok {
					b.Fatal("no layout")
				}
			}
		})
	}
}

// --- Proposition 3.2: witness construction for B_σ → B. ---

func BenchmarkWitnessW(b *testing.B) {
	sigma := ComplementPerm(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(WitnessW(2, 10, sigma)) != 1024 {
			b.Fatal("bad witness")
		}
	}
}

// --- Proposition 3.3: II → B witness plus verification. ---

func BenchmarkIsoIIToB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := IsoIIToB(2, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Proposition 3.9 / 4.1: layout witness for H(d^p', d^q', d) → B. ---

func BenchmarkLayoutWitness(b *testing.B) {
	for _, D := range []int{8, 10, 12} {
		b.Run(fmt.Sprintf("D=%d", D), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := LayoutWitness(2, D/2, D/2+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures 1-3 / Remark 2.6: constructions. ---

func BenchmarkBuildDeBruijn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if DeBruijn(2, 10).N() != 1024 {
			b.Fatal("bad digraph")
		}
	}
}

func BenchmarkBuildKautz(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _ := Kautz(2, 10)
		if g.N() != 1536 {
			b.Fatal("bad digraph")
		}
	}
}

func BenchmarkBuildH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := HDigraph(32, 64, 2)
		if err != nil || g.N() != 1024 {
			b.Fatal("bad digraph")
		}
	}
}

func BenchmarkDiameterB210(b *testing.B) {
	g := DeBruijn(2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Diameter() != 10 {
			b.Fatal("bad diameter")
		}
	}
}

// --- Figure 8: generic isomorphism search on H(4,8,2) vs B(2,4). ---

func BenchmarkFindIsomorphismH482(b *testing.B) {
	h, _ := HDigraph(4, 8, 2)
	target := DeBruijn(2, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FindIsomorphism(h, target); !ok {
			b.Fatal("not isomorphic")
		}
	}
}

// --- Figure 6: optical bench trace of the full OTIS transpose. ---

func BenchmarkOpticsVerifyTranspose(b *testing.B) {
	bench, err := NewBench(16, 32, DefaultPitch)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.VerifyTranspose(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpticsTraceSingleBeam(b *testing.B) {
	bench, _ := NewBench(32, 64, DefaultPitch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := bench.Trace(i%32, i%64)
		if tr.RxI < 0 {
			b.Fatal("bad trace")
		}
	}
}

func BenchmarkWorstCaseMargin(b *testing.B) {
	bench, _ := NewBench(16, 32, DefaultPitch)
	budget := DefaultBudget()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m, _ := optics.WorstCaseMargin(bench, budget); m <= 0 {
			b.Fatal("link does not close")
		}
	}
}

// --- E3: lens scaling series (headline Θ(√n) vs O(n)). ---

func BenchmarkLensScalingSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for D := 2; D <= 20; D += 2 {
			_, _, lenses, ok := MinimizeLenses(2, D)
			if !ok || lenses <= 0 {
				b.Fatal("bad scaling point")
			}
		}
	}
}

// --- E5: packet simulation over the realized network. ---

func BenchmarkSimnetTableRouting(b *testing.B) {
	g := DeBruijn(2, 8)
	router := NewTableRouter(g)
	pkts := UniformRandomWorkload(g.N(), 1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, _ := NewNetwork(g, router, DefaultSimConfig())
		res := nw.Run(pkts)
		if res.Delivered != 1000 {
			b.Fatalf("delivered %d", res.Delivered)
		}
	}
}

func BenchmarkSimnetNativeRouting(b *testing.B) {
	const d, D = 2, 8
	g := DeBruijn(d, D)
	router := NewDeBruijnRouter(d, D)
	pkts := UniformRandomWorkload(g.N(), 1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, _ := NewNetwork(g, router, DefaultSimConfig())
		res := nw.Run(pkts)
		if res.Delivered != 1000 {
			b.Fatalf("delivered %d", res.Delivered)
		}
	}
}

// --- De Bruijn self-routing primitives. ---

func BenchmarkDeBruijnRoute(b *testing.B) {
	src, _ := ParseWord(2, "0110100110")
	dst, _ := ParseWord(2, "1010011001")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(DeBruijnRoute(src, dst)) == 0 {
			b.Fatal("no route")
		}
	}
}

func BenchmarkBroadcastTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		parent, _ := BroadcastTree(2, 10, 0)
		if len(parent) != 1024 {
			b.Fatal("bad tree")
		}
	}
}

// --- Alpha digraph machinery. ---

func BenchmarkAlphaDigraphBuild(b *testing.B) {
	a := DeBruijnAlpha(2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Digraph().N() != 1024 {
			b.Fatal("bad digraph")
		}
	}
}

func BenchmarkVerifyIsomorphism(b *testing.B) {
	mapping, err := LayoutWitness(2, 5, 6)
	if err != nil {
		b.Fatal(err)
	}
	h, _ := HDigraph(32, 64, 2)
	target := DeBruijn(2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyIsomorphism(h, target, mapping); err != nil {
			b.Fatal(err)
		}
	}
}
