package repro

import (
	"bytes"
	"math/cmplx"
	"math/rand"
	"testing"
)

// Facade tests for the extension subsystems (embeddings, FFT, Viterbi,
// multistage, gossip, conjecture scans).

func TestFacadeSequences(t *testing.T) {
	seq, err := DeBruijnSequence(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDeBruijnSequence(2, 8, seq); err != nil {
		t.Fatal(err)
	}
	cycle, err := HamiltonianCycle(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyHamiltonianCycle(DeBruijn(2, 6), cycle); err != nil {
		t.Fatal(err)
	}
	if _, err := EulerianCircuit(DeBruijn(2, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := InverseFFT(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(back[i]-x[i]) > 1e-9 {
			t.Fatal("FFT round trip failed")
		}
	}
	if err := VerifyFFTDataflow(6); err != nil {
		t.Fatal(err)
	}
	if _, err := Convolve(x, x); err != nil {
		t.Fatal(err)
	}
	if src := FFTStageSources(3, 16); src != [2]int{1, 9} {
		t.Errorf("FFTStageSources = %v", src)
	}
}

func TestFacadeViterbi(t *testing.T) {
	code := NASACode()
	rng := rand.New(rand.NewSource(41))
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	enc, err := code.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	noisy, flips := BSCChannel(enc, 0.015, rng)
	if flips == 0 {
		t.Log("no flips this seed; still a valid decode test")
	}
	dec, err := code.Decode(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, msg) {
		t.Error("facade decode failed")
	}
	g := GalileoCode(11)
	if g.States() != 1024 {
		t.Error("Galileo states wrong")
	}
	// Trellis digraph is the size of B(2, K-1).
	if code.TrellisDigraph().N() != 64 {
		t.Error("trellis size wrong")
	}
}

func TestFacadeMultistage(t *testing.T) {
	wbf := WrappedButterfly(2, 3)
	if err := VerifyIsomorphism(wbf,
		Conjunction(Circuit(3), DeBruijn(2, 3)), ButterflyWitness(2, 3)); err != nil {
		t.Fatal(err)
	}
	if ShuffleNet(2, 3).N() != 24 {
		t.Error("ShuffleNet size")
	}
	if GEMNET(2, 11, 2).N() != 22 {
		t.Error("GEMNET size")
	}
	stacks := RealizedStructure(2, 3, 6)
	if len(stacks) != 2 {
		t.Fatalf("stacks = %v", stacks)
	}
	var s MultistageStack = stacks[0]
	if s.Copies != 2 || !s.IsShuffleNet() {
		t.Errorf("first stack = %v", s)
	}
}

func TestFacadeGossip(t *testing.T) {
	g := DeBruijn(2, 5)
	if BroadcastAllPort(g, 0) != 5 {
		t.Error("all-port broadcast rounds wrong")
	}
	sched, err := BroadcastSinglePort(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var bs BroadcastSchedule = sched
	if err := VerifyBroadcastSchedule(g, bs); err != nil {
		t.Fatal(err)
	}
	if GossipAllPort(g) != 5 {
		t.Error("gossip rounds wrong")
	}
	if BroadcastLogLowerBound(32) != 5 {
		t.Error("log lower bound wrong")
	}
}

func TestFacadeConjecture(t *testing.T) {
	res := ConjectureScan(4, 2)
	if len(res) == 0 {
		t.Fatal("empty scan")
	}
	var r ConjectureSplitResult = res[0]
	if r.P != 1 {
		t.Errorf("first split %+v", r)
	}
	if np := NonPowerLayouts(res); len(np) != 0 {
		t.Errorf("conjecture counterexamples: %v", np)
	}
}

func TestGalileoTrellisMatchesOptimizedLayoutSize(t *testing.T) {
	// The full-stack story: a K=11 Galileo-style decoder has trellis
	// B(2,10), whose optimal OTIS layout is the 96-lens OTIS(32,64).
	code := GalileoCode(11)
	layout, ok := OptimalLayout(2, 10)
	if !ok {
		t.Fatal("no layout")
	}
	if code.States() != layout.Nodes() {
		t.Errorf("trellis %d states vs layout %d nodes", code.States(), layout.Nodes())
	}
	if layout.Lenses() != 96 {
		t.Errorf("lenses = %d", layout.Lenses())
	}
}
