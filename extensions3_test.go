package repro

import (
	"strings"
	"testing"
)

// Facade tests for the integration wave: the assembled machine,
// deflection routing, necklaces, soft channels, export formats.

func TestFacadeMachine(t *testing.T) {
	var m *OpticalMachine
	m, err := BuildMachine(2, 8, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	report, err := m.Audit()
	if err != nil {
		t.Fatalf("%v\n%s", err, report)
	}
	if m.Nodes() != 256 || m.Lenses() != 48 {
		t.Error("machine shape wrong")
	}
	res, err := m.Broadcast(0)
	if err != nil || res.Delivered != 255 {
		t.Errorf("broadcast: %v %v", res, err)
	}
	path := m.Route(0, 255)
	if len(path)-1 > 8 {
		t.Errorf("route too long: %v", path)
	}
}

func TestFacadeDeflection(t *testing.T) {
	g := DeBruijn(2, 5)
	var dn *DeflectionNetwork
	dn, err := NewDeflection(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var res DeflectionResult = dn.Run(UniformRandomWorkload(g.N(), 200, 13))
	if res.Delivered != 200 {
		t.Fatalf("deflection: %v", res)
	}
}

func TestFacadeNecklaces(t *testing.T) {
	cycles := NecklaceCycles(2, 5)
	if len(cycles) != NecklaceCount(2, 5) {
		t.Error("necklace count mismatch")
	}
	if err := VerifyNecklaceFactor(2, 5, cycles); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSoftChannel(t *testing.T) {
	code := NASACode()
	msg := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	enc, _ := code.Encode(msg)
	soft := make([]float64, len(enc))
	for i, b := range enc {
		soft[i] = 1 - 2*float64(b)
	}
	dec, err := code.DecodeSoft(soft)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(msg) {
		t.Error("soft decode length wrong")
	}
	if got := HardSlice(soft); len(got) != len(enc) {
		t.Error("hard slice length wrong")
	}
}

func TestFacadeExports(t *testing.T) {
	var sb strings.Builder
	if err := DeBruijn(2, 2).WriteDOT(&sb, "b22", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Error("DOT export broken")
	}
	bench, _ := NewBench(4, 8, DefaultPitch)
	sb.Reset()
	if err := bench.WriteSVG(&sb, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("SVG export broken")
	}
	if bench.ToleranceReport() == "" {
		t.Error("tolerance report empty")
	}
}

func TestFacadeAnalysisHelpers(t *testing.T) {
	maxII, maxRRK := DiameterGain(2, 5)
	if maxII != 48 || maxRRK != 32 {
		t.Errorf("DiameterGain = (%d,%d), want (48,32)", maxII, maxRRK)
	}
	d, err := Diffract(mustBench(t), DefaultWavelength)
	if err != nil || !d.Feasible {
		t.Errorf("diffraction: %+v %v", d, err)
	}
	if MaxFeasibleEvenDiameter(2, DefaultPitch, DefaultWavelength) < 8 {
		t.Error("feasible diameter too small")
	}
	if RayleighRange(DefaultPitch, DefaultWavelength) <= 0 {
		t.Error("Rayleigh range")
	}
	rows := SearchDegreeDiameterParallel(2, 4, 16, 31, 2)
	if len(rows) == 0 {
		t.Error("parallel search empty")
	}
	p, err := PermParse(4, "(0 1 2 3)")
	if err != nil || !p.IsCyclic() {
		t.Error("PermParse broken")
	}
	a1, _ := NewAlpha(CyclicShiftPerm(4), IdentityPerm(2), 0)
	a2, _ := NewAlpha(p, ComplementPerm(2), 2)
	if _, err := AlphaIsoBetween(a1, a2); err != nil {
		t.Errorf("AlphaIsoBetween: %v", err)
	}
}

func mustBench(t *testing.T) *Bench {
	t.Helper()
	b, err := NewBench(16, 32, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFacadePlanMachine(t *testing.T) {
	var plan MachinePlan
	plan, ok := PlanMachine(2, 300)
	if !ok || plan.Nodes != 256 {
		t.Errorf("plan = %+v ok=%v", plan, ok)
	}
	m, err := PlanAndBuildMachine(3, 30, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 27 {
		t.Errorf("built %d nodes", m.Nodes())
	}
}
