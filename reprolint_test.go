package repro

import (
	"testing"

	"repro/internal/lint"
)

// TestReproLint wires the repo-specific static-analysis suite into the
// tier-1 gate: `go test ./...` fails if any package in the module
// violates the panic-style, slice-aliasing, overflow-guard, dropped-
// error, or concurrency-hygiene invariants. The same suite is available
// on the command line as `go run ./cmd/reprolint ./...`; suppress a
// false positive with a "//lint:ignore <analyzer> <reason>" directive.
func TestReproLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not short")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("lint.NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("lint loader: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("lint loader found only %d packages; the module walk is broken", len(pkgs))
	}
	for _, d := range lint.Run(pkgs, lint.All()) {
		t.Errorf("%s", d)
	}
}
