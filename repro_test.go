package repro

import (
	"testing"
)

// End-to-end tests exercising the public facade: graph theory, optics and
// simulation composed the way a user of the library would.

func TestQuickstartFlow(t *testing.T) {
	// The README quick start, as a test.
	layout, ok := OptimalLayout(2, 8)
	if !ok {
		t.Fatal("no layout for B(2,8)")
	}
	if layout.P() != 16 || layout.Q() != 32 || layout.Lenses() != 48 {
		t.Fatalf("layout = %v", layout)
	}
	mapping, err := LayoutWitness(2, layout.PPrime, layout.QPrime)
	if err != nil {
		t.Fatal(err)
	}
	h, err := HDigraph(layout.P(), layout.Q(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIsomorphism(h, DeBruijn(2, 8), mapping); err != nil {
		t.Fatal(err)
	}
	bench, err := NewBench(layout.P(), layout.Q(), DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.VerifyTranspose(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndLayout(t *testing.T) {
	// Experiment E5: realize B(2,10) on its optimal OTIS layout, verify
	// the optics, then route packets over the *relabelled* digraph
	// H(32,64,2) with table routing, and check the hop bound is the
	// de Bruijn diameter.
	const d, D = 2, 10
	layout, ok := OptimalLayout(d, D)
	if !ok {
		t.Fatal("no layout")
	}
	if layout.Lenses() != 96 {
		t.Fatalf("lenses = %d, want 96 = 3·√1024", layout.Lenses())
	}
	h, err := HDigraph(layout.P(), layout.Q(), d)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Diameter(); got != D {
		t.Fatalf("H diameter = %d, want %d", got, D)
	}
	nw, err := NewNetwork(h, NewTableRouter(h), DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(UniformRandomWorkload(h.N(), 2000, 1))
	if res.Delivered != 2000 || res.Dropped != 0 {
		t.Fatalf("result %v", res)
	}
	if res.MaxHops > D {
		t.Errorf("max hops %d exceeds diameter %d", res.MaxHops, D)
	}
	mean, okMean := h.MeanDistance()
	if !okMean {
		t.Fatal("mean distance undefined")
	}
	// Uniform traffic mean hops must be close to the digraph's mean
	// distance (same distribution, sampled).
	if res.MeanHops < mean-0.5 || res.MeanHops > mean+0.5 {
		t.Errorf("mean hops %.2f far from mean distance %.2f", res.MeanHops, mean)
	}
}

func TestFacadePermsAndWords(t *testing.T) {
	c := ComplementPerm(8)
	if c.Apply(0) != 7 {
		t.Error("complement wrong")
	}
	w, err := ParseWord(2, "1011")
	if err != nil || w.Int() != 11 {
		t.Errorf("ParseWord: %v %v", w, err)
	}
	if Pow(2, 10) != 1024 {
		t.Error("Pow wrong")
	}
	if CountDefinitions(2, 8) != 2*5040 {
		t.Error("CountDefinitions wrong")
	}
}

func TestFacadeDigraphOps(t *testing.T) {
	b := DeBruijn(2, 4)
	k, words := Kautz(2, 4)
	if b.N() != 16 || k.N() != 24 || len(words) != 24 {
		t.Error("orders wrong")
	}
	if MooreBound(2, 4) != 31 {
		t.Error("Moore bound wrong")
	}
	l, arcs := LineDigraph(b)
	if l.N() != 32 || len(arcs) != 32 {
		t.Error("line digraph wrong")
	}
	c := Conjunction(Circuit(2), DeBruijn(2, 1))
	if c.N() != 4 {
		t.Error("conjunction wrong")
	}
	if CompleteWithLoops(8).M() != 64 {
		t.Error("K*_8 wrong")
	}
}

func TestFacadeAlpha(t *testing.T) {
	a, err := NewAlpha(CyclicShiftPerm(5), IdentityPerm(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsDeBruijn() {
		t.Error("shift alpha not de Bruijn")
	}
	if !a.Digraph().Equal(DeBruijn(2, 5)) {
		t.Error("A(ρ,Id,0) != B(2,5) via facade")
	}
	if DeBruijnAlpha(2, 3).N() != 8 {
		t.Error("DeBruijnAlpha wrong")
	}
}

func TestFacadeRoutingAndBroadcast(t *testing.T) {
	src, _ := ParseWord(2, "0000")
	dst, _ := ParseWord(2, "1111")
	if DeBruijnDistance(src, dst) != 4 {
		t.Error("distance wrong")
	}
	path := DeBruijnRoute(src, dst)
	if len(path) != 5 {
		t.Errorf("route length %d", len(path))
	}
	parent, depth := BroadcastTree(2, 4, 0)
	if parent[0] != -1 || depth[0] != 0 {
		t.Error("broadcast tree root wrong")
	}
}

func TestFacadeOpticsBudget(t *testing.T) {
	bench, err := NewBench(16, 32, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	margin, _ := WorstCaseMargin(bench, DefaultBudget())
	if margin <= 0 {
		t.Errorf("link margin %.2f", margin)
	}
	bom := BillOfMaterials(bench, 2)
	if bom.Nodes != 256 || bom.Lenses != 48 {
		t.Errorf("BOM %+v", bom)
	}
	base, opt, ratio, err := CompareLayoutLenses(2, 10)
	if err != nil || base != 1026 || opt != 96 || ratio < 10 {
		t.Errorf("CompareLayoutLenses: %d %d %.1f %v", base, opt, ratio, err)
	}
}

func TestFacadeIIAndWitnesses(t *testing.T) {
	if err := VerifyIILayout(2, 100); err != nil {
		t.Error(err)
	}
	if _, err := IsoIIToB(2, 5); err != nil {
		t.Error(err)
	}
	sigma, _ := PermFromImage([]int{1, 0})
	if _, err := IsoBSigmaToB(2, 5, sigma); err != nil {
		t.Error(err)
	}
	if len(WitnessW(2, 3, IdentityPerm(2))) != 8 {
		t.Error("witness length wrong")
	}
	if len(WitnessIIToB(2, 3)) != 8 {
		t.Error("II witness length wrong")
	}
}

func TestFacadeSearchSmall(t *testing.T) {
	rows := SearchDegreeDiameter(2, 4, 16, 31)
	// B(2,4) must appear at n=16 with the (4,8) split among others.
	found := false
	for _, r := range rows {
		if r.N == 16 {
			for _, pq := range r.Pairs {
				if pq == [2]int{4, 8} {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("H(4,8,2) missing from D=4 search: %v", rows)
	}
	// Kautz K(2,4) = 24 must be the largest.
	row, ok := LargestWithDiameter(2, 4, MooreBound(2, 4))
	if !ok || row.N != 24 {
		t.Errorf("largest D=4: %v %v", row, ok)
	}
}

func TestFacadeOTISSystem(t *testing.T) {
	s, err := NewOTIS(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lenses() != 9 {
		t.Error("lenses wrong")
	}
	ri, rj := s.Receiver(0, 0)
	if ri != 5 || rj != 2 {
		t.Error("transpose wrong")
	}
	if IILayoutLenses(2, 256) != 258 {
		t.Error("baseline lens count wrong")
	}
}

func TestFacadeIsomorphismSearch(t *testing.T) {
	if !AreIsomorphic(DeBruijn(2, 3), RRK(2, 8)) {
		t.Error("B(2,3) ≇ RRK(2,8)?")
	}
	if m, ok := FindIsomorphism(Circuit(4), Circuit(4)); !ok || len(m) != 4 {
		t.Error("C4 self-isomorphism failed")
	}
	g := NewDigraph(2)
	g.AddArc(0, 1)
	if AreIsomorphic(g, Circuit(2)) {
		t.Error("path ≅ cycle?")
	}
	if DigraphFromFunc(3, func(u int) []int { return []int{(u + 1) % 3} }).Diameter() != 2 {
		t.Error("FromFunc circuit wrong")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(PermutationWorkload(16, 1)) != 16 {
		t.Error("permutation workload size")
	}
	if len(BroadcastWorkload(16, 3)) != 15 {
		t.Error("broadcast workload size")
	}
	if len(AllToAllWorkload(4)) != 12 {
		t.Error("all-to-all workload size")
	}
	if len(PoissonWorkload(16, 10, 0.5, 1)) != 10 {
		t.Error("poisson workload size")
	}
	if len(UniformRandomWorkload(16, 10, 1)) != 10 {
		t.Error("uniform workload size")
	}
}

func TestFacadeNativeRouterOnLayout(t *testing.T) {
	// Route on B(2,8) labels with the native router, after mapping H
	// vertices through the layout witness — the full "self-routing OTIS
	// de Bruijn machine" pipeline.
	const d, D = 2, 8
	mapping, err := LayoutWitness(d, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := DeBruijn(d, D)
	nw, err := NewNetwork(b, NewDeBruijnRouter(d, D), DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Translate an H-space workload to B-space through the witness.
	pkts := UniformRandomWorkload(b.N(), 500, 2)
	for i := range pkts {
		pkts[i].Src = mapping[pkts[i].Src]
		pkts[i].Dst = mapping[pkts[i].Dst]
	}
	res := nw.Run(pkts)
	if res.Delivered != 500 {
		t.Fatalf("delivered %d/500", res.Delivered)
	}
	if res.MaxHops > D {
		t.Errorf("max hops %d > %d", res.MaxHops, D)
	}
}
