package repro

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/obs"
	"repro/internal/optics"
	"repro/internal/simnet"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestRunMetricsGolden pins the OBS_run/v1 document byte-for-byte for a
// fully deterministic run: B(2,3) under a seed-1 permutation on the
// native self-router (no timing gauges involved). Any schema drift —
// renamed counters, reordered fields, changed bucket trimming — shows up
// as a golden diff, which is exactly the point: external consumers parse
// this document.
func TestRunMetricsGolden(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	nw, err := simnet.New(g, simnet.NewDeBruijnRouter(2, 3), simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	nw.Observe(rec)
	if _, err := nw.RunOpts(simnet.PermutationLoad(), simnet.WithSeed(1)); err != nil {
		t.Fatal(err)
	}
	got, err := rec.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateRunMetrics(got); err != nil {
		t.Fatalf("emitted document invalid: %v", err)
	}

	golden := filepath.Join("testdata", "obs_run_v1.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("OBS_run/v1 document drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMachineLensUtilization is the ISSUE's proof obligation: on an
// instrumented B(3,4) machine run, every lens total must exactly equal
// the sum of its arc group's traversal counts, per-side shares must sum
// to 1, and the tx-side total must equal the run's total hops (every
// hop crosses exactly one tx and one rx lens).
func TestMachineLensUtilization(t *testing.T) {
	m, err := BuildMachine(3, 4, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(nil)
	m.Observe(rec)
	rep, err := m.RunOpts(simnet.UniformLoad(2000), simnet.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	var totalHops int64
	for _, p := range rep.Packets {
		if p.Delivered >= 0 {
			totalHops += int64(p.Hops)
		}
	}

	lenses, err := m.LensUtilization(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(lenses) != m.Lenses() {
		t.Fatalf("%d lens rows, machine has %d lenses", len(lenses), m.Lenses())
	}

	trav := rec.ArcTraversals()
	p := m.Layout.P()
	shareSum := map[string]float64{}
	totalBySide := map[string]int64{}
	for _, l := range lenses {
		// Recompute the group sum by hand from the layout and the slab.
		arcs, err := m.Layout.LensArcs(l.Lens)
		if err != nil {
			t.Fatal(err)
		}
		var manual int64
		for _, a := range arcs {
			manual += trav[m.PhysicalArcIndex(a[0], a[1])]
		}
		if manual != l.Traversals {
			t.Errorf("lens %d: rolled-up %d, manual arc-group sum %d", l.Lens, l.Traversals, manual)
		}
		if len(arcs) != l.Arcs {
			t.Errorf("lens %d: Arcs %d, group size %d", l.Lens, l.Arcs, len(arcs))
		}
		wantSide := "tx"
		if l.Lens >= p {
			wantSide = "rx"
		}
		if l.Side != wantSide {
			t.Errorf("lens %d: side %q, want %q", l.Lens, l.Side, wantSide)
		}
		shareSum[l.Side] += l.Share
		totalBySide[l.Side] += l.Traversals
	}
	for _, side := range []string{"tx", "rx"} {
		if got := totalBySide[side]; got != totalHops {
			t.Errorf("%s lens totals %d, run total hops %d", side, got, totalHops)
		}
		if s := shareSum[side]; s < 1-1e-9 || s > 1+1e-9 {
			t.Errorf("%s shares sum to %v, want 1", side, s)
		}
	}

	// The assembled document passes the validator.
	doc, err := m.RunMetrics(rec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := doc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRunMetrics(data); err != nil {
		t.Errorf("machine RunMetrics invalid: %v", err)
	}
	if len(doc.Lenses) != m.Lenses() {
		t.Errorf("document has %d lens rows", len(doc.Lenses))
	}
}

// TestFacadeObservabilityExports drives the facade's observability
// re-exports end to end, the way an external consumer would.
func TestFacadeObservabilityExports(t *testing.T) {
	reg := NewMetricsRegistry()
	rec := NewRecorder(reg)
	if rec.Registry() != reg {
		t.Fatal("NewRecorder ignored the registry")
	}
	g := DeBruijn(2, 4)
	nw, err := NewNetwork(g, NewTableRouterObserved(g, rec), DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	nw.Observe(rec)
	rep, err := nw.RunOpts(UniformLoad(200), WithSeed(3), WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 200 {
		t.Fatalf("delivered %d", rep.Delivered)
	}
	snap := rec.Snapshot()
	if snap.Schema != ObsRunSchema {
		t.Errorf("schema %q", snap.Schema)
	}
	if snap.Counters[MetricDelivered] != 200 {
		t.Errorf("counters: %v", snap.Counters)
	}
	if snap.Gauges[MetricRouterBytes] == 0 {
		t.Errorf("observed router build missing: %v", snap.Gauges)
	}
}
