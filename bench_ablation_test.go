package repro

import (
	"testing"
)

// Ablation benches: quantify the design choices DESIGN.md calls out.
//
//  1. Early-abort diameter checking (DiameterAtMost) versus computing the
//     exact diameter of every Table 1 candidate — the choice that makes
//     the exhaustive search cheap.
//  2. Witness-based isomorphism verification (O(n+m)) versus the generic
//     backtracking search — the reason the library carries explicit
//     witnesses for every paper claim.
//  3. Native de Bruijn self-routing versus precomputed tables — O(D) work
//     and zero memory versus O(n²) tables.
//  4. Hierholzer versus FKM de Bruijn sequence construction.

// --- Ablation 1: search pruning ---

func searchNaive(d, diam, minN, maxN int) []TableRow {
	// Identical to SearchDegreeDiameter but with exact diameters (no
	// early abort). For the bench only.
	var rows []TableRow
	for n := minN; n <= maxN; n++ {
		m := d * n
		var pairs [][2]int
		for p := 1; p*p <= m; p++ {
			if m%p != 0 {
				continue
			}
			q := m / p
			g, err := HDigraph(p, q, d)
			if err != nil {
				continue
			}
			if g.Diameter() == diam {
				pairs = append(pairs, [2]int{p, q})
			}
		}
		if len(pairs) > 0 {
			rows = append(rows, TableRow{N: n, Pairs: pairs})
		}
	}
	return rows
}

func BenchmarkAblationSearchPruned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(SearchDegreeDiameter(2, 6, 60, 96)) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkAblationSearchNaive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(searchNaive(2, 6, 60, 96)) == 0 {
			b.Fatal("no rows")
		}
	}
}

func TestAblationSearchesAgree(t *testing.T) {
	pruned := SearchDegreeDiameter(2, 6, 60, 96)
	naive := searchNaive(2, 6, 60, 96)
	if len(pruned) != len(naive) {
		t.Fatalf("row counts differ: %d vs %d", len(pruned), len(naive))
	}
	for i := range pruned {
		if pruned[i].N != naive[i].N || len(pruned[i].Pairs) != len(naive[i].Pairs) {
			t.Fatalf("row %d differs: %v vs %v", i, pruned[i], naive[i])
		}
	}
}

// --- Ablation 2: witness vs generic isomorphism ---

func BenchmarkAblationIsoWitness(b *testing.B) {
	mapping, err := LayoutWitness(2, 4, 5)
	if err != nil {
		b.Fatal(err)
	}
	h, _ := HDigraph(16, 32, 2)
	target := DeBruijn(2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyIsomorphism(h, target, mapping); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIsoGenericSearch(b *testing.B) {
	h, _ := HDigraph(16, 32, 2)
	target := DeBruijn(2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FindIsomorphism(h, target); !ok {
			b.Fatal("not isomorphic")
		}
	}
}

// --- Ablation 3: native routing vs tables ---

func BenchmarkAblationRouterNativeSetupAndRun(b *testing.B) {
	g := DeBruijn(2, 8)
	pkts := UniformRandomWorkload(g.N(), 200, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router := NewDeBruijnRouter(2, 8) // O(1) setup
		nw, _ := NewNetwork(g, router, DefaultSimConfig())
		if nw.Run(pkts).Delivered != 200 {
			b.Fatal("undelivered")
		}
	}
}

func BenchmarkAblationRouterTableSetupAndRun(b *testing.B) {
	g := DeBruijn(2, 8)
	pkts := UniformRandomWorkload(g.N(), 200, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router := NewTableRouter(g) // O(n²) setup
		nw, _ := NewNetwork(g, router, DefaultSimConfig())
		if nw.Run(pkts).Delivered != 200 {
			b.Fatal("undelivered")
		}
	}
}

// --- Ablation 4: sequence constructions ---

func BenchmarkAblationSequenceHierholzer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seq, err := DeBruijnSequence(2, 14)
		if err != nil || len(seq) != 1<<14 {
			b.Fatal("bad sequence")
		}
	}
}

func BenchmarkAblationSequenceFKM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seq, err := DeBruijnSequenceFKM(2, 14)
		if err != nil || len(seq) != 1<<14 {
			b.Fatal("bad sequence")
		}
	}
}
