package repro

import (
	"testing"
)

// Facade tests for the second extension wave: Kautz witness/routing, 2-D
// optics, connectivity, load sweeps.

func TestFacadeKautzWitness(t *testing.T) {
	mapping, err := IsoKautzToII(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != KautzOrder(2, 5) {
		t.Error("witness length wrong")
	}
	if len(WitnessKautzToII(3, 3)) != 36 {
		t.Error("raw witness wrong")
	}
}

func TestFacadeKautzRouting(t *testing.T) {
	src, _ := ParseWord(3, "0102")
	dst, _ := ParseWord(3, "2010")
	if !IsKautzWord(2, src) || !IsKautzWord(2, dst) {
		t.Fatal("fixture words invalid")
	}
	dist := KautzDistance(2, src, dst)
	path := KautzRoute(2, src, dst)
	if len(path)-1 != dist {
		t.Errorf("route length %d, distance %d", len(path)-1, dist)
	}
}

func TestFacade2DBench(t *testing.T) {
	var b *OpticalBench2D
	b, err := NewBench2D(4, 4, 8, 4, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyTranspose(); err != nil {
		t.Fatal(err)
	}
	if b.Lenses() != 48 {
		t.Error("2D lens count wrong")
	}
}

func TestFacadeConnectivity(t *testing.T) {
	b := DeBruijn(3, 2)
	if b.ArcConnectivity() != 2 || b.VertexConnectivity() != 2 {
		t.Error("B(3,2) connectivity != 2")
	}
	paths := b.ArcDisjointPaths(0, 5)
	if len(paths) < 2 {
		t.Error("too few disjoint paths")
	}
}

func TestFacadeLoadSweep(t *testing.T) {
	g := DeBruijn(2, 5)
	points, err := LoadSweep(g, NewTableRouter(g), []float64{0.1, 0.8}, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	var p LoadSweepPoint = points[0]
	if p.Rate != 0.1 || p.Delivered == 0 {
		t.Errorf("first point %+v", p)
	}
	zero, ok := ZeroLoadLatency(g, 1)
	if !ok || zero <= 0 {
		t.Error("zero load latency wrong")
	}
}
