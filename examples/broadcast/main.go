// Broadcast: one-to-all communication on de Bruijn networks, the workload
// of the broadcasting/gossiping literature the paper builds on ([28], [3]).
// We broadcast from a corner of B(2,D) along the BFS arborescence, compare
// the simulated makespan with the trivial lower bounds (diameter for
// distance, n/d for the root's bandwidth bottleneck), and run the same
// experiment on the Kautz digraph of similar size for contrast.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const d, D = 2, 7
	runOn("B(2,7)", repro.DeBruijn(d, D), d)
	k, _ := repro.Kautz(d, D)
	runOn("K(2,7)", k, d)

	// Structural broadcast tree: depth histogram.
	parent, depth := repro.BroadcastTree(d, D, 0)
	hist := map[int]int{}
	maxDepth := 0
	for v := range parent {
		hist[depth[v]]++
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	fmt.Println("\nB(2,7) broadcast-tree depth histogram (root 0):")
	for k := 0; k <= maxDepth; k++ {
		fmt.Printf("  depth %d: %d nodes\n", k, hist[k])
	}
	fmt.Printf("tree depth = %d = diameter, as the theory requires\n", maxDepth)
}

func runOn(name string, g *repro.Digraph, d int) {
	nw, err := repro.NewNetwork(g, repro.NewTableRouter(g), repro.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	res := nw.Run(repro.BroadcastWorkload(g.N(), 0))
	diam := g.Diameter()
	fmt.Printf("%s: n=%d diameter=%d — broadcast %v\n", name, g.N(), diam, res)
	fmt.Printf("  lower bounds: distance %d, root bandwidth %d cycles\n",
		diam, (g.N()-2)/d+1)
}
