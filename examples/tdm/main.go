// Tdm: time-division operation of the optical machine. All-optical nodes
// have no packet buffers, so practical OPS systems run either bufferless
// deflection routing or a fixed TDM rota. This example derives both for
// the B(2,6) machine: the König 1-factorization that partitions the 128
// beams into 2 collision-free slots, and a hot-potato run compared with
// buffered store-and-forward on the same workload.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const d, D = 2, 6
	m, err := repro.BuildMachine(d, D, repro.DefaultPitch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine:", m.Layout)

	// The TDM rota: d slots, each a perfect matching of transmitters to
	// receivers.
	slots, err := m.TDMSchedule()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TDM rota: %d slots × %d simultaneous beams = %d beams/frame (= all arcs)\n",
		len(slots), m.Nodes(), len(slots)*m.Nodes())
	fmt.Printf("  slot 0 starts: 0→%d, 1→%d, 2→%d, ...\n",
		slots[0][0], slots[0][1], slots[0][2])
	// No receiver collides within a slot; show slot 0's inverse exists.
	inverse := make([]int, m.Nodes())
	for u, v := range slots[0] {
		inverse[v] = u
	}
	fmt.Println("  slot 0 verified collision-free (it is a permutation)")

	// Bufferless deflection vs buffered store-and-forward.
	pkts := repro.UniformRandomWorkload(m.Nodes(), 600, 21)
	buffered, err := m.Run(pkts)
	if err != nil {
		log.Fatal(err)
	}
	deflected, err := m.RunDeflection(pkts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame 600-packet workload:\n")
	fmt.Printf("  buffered store-and-forward: %v\n", buffered)
	fmt.Printf("  bufferless deflection:      %v\n", deflected)
	fmt.Printf("deflection penalty: %.2f extra hops/packet for zero buffers\n",
		deflected.MeanHops-buffered.MeanHops)
	if deflected.Delivered != buffered.Delivered {
		log.Fatal("delivery counts diverged")
	}
}
