// Opticaldesign: a hardware design study. For a target machine size it
// enumerates the candidate OTIS realizations of the de Bruijn network,
// traces the optics of each, and prints the engineering trade-offs the
// paper discusses: lens counts, lens size balance (p ≈ q is preferred
// technologically), bench length, and optical power margins.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const d = 2
	for _, D := range []int{6, 8, 10} {
		study(d, D)
		fmt.Println()
	}
}

func study(d, D int) {
	n := repro.Pow(d, D)
	fmt.Printf("=== design study: B(%d,%d), %d processors ===\n", d, D, n)
	fmt.Printf("%-14s %8s %10s %12s %12s %10s\n",
		"split", "lenses", "balance", "bench (m)", "margin(dB)", "verdict")

	type candidate struct {
		pPrime, qPrime int
	}
	var candidates []candidate
	for pp := 1; pp <= D; pp++ {
		candidates = append(candidates, candidate{pp, D + 1 - pp})
	}
	budget := repro.DefaultBudget()
	for _, c := range candidates {
		p, q := repro.Pow(d, c.pPrime), repro.Pow(d, c.qPrime)
		label := fmt.Sprintf("OTIS(%d,%d)", p, q)
		if !repro.IsDeBruijnLayout(c.pPrime, c.qPrime) {
			fmt.Printf("%-14s %8s %10s %12s %12s %10s\n",
				label, "-", "-", "-", "-", "not B(d,D)")
			continue
		}
		bench, err := repro.NewBench(p, q, repro.DefaultPitch)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.VerifyTranspose(); err != nil {
			log.Fatalf("%s failed optical verification: %v", label, err)
		}
		margin, _ := repro.WorstCaseMargin(bench, budget)
		balance := float64(q) / float64(p)
		verdict := "ok"
		if margin <= 0 {
			verdict = "NO LINK"
		}
		fmt.Printf("%-14s %8d %9.1fx %12.3f %12.2f %10s\n",
			label, p+q, balance, bench.Length(), margin, verdict)
	}

	best, ok := repro.OptimalLayout(d, D)
	if !ok {
		fmt.Println("no feasible layout")
		return
	}
	bench, _ := repro.NewBench(best.P(), best.Q(), repro.DefaultPitch)
	fmt.Printf("selected: %v\n", best)
	fmt.Printf("BOM: %v\n", repro.BillOfMaterials(bench, d))
	fmt.Printf("vs. baseline OTIS(%d,%d): %.1fx fewer lenses\n",
		d, n, float64(repro.IILayoutLenses(d, n))/float64(best.Lenses()))
}
