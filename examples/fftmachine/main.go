// Fftmachine: the Parallel Optoelectronic FFT Engine ([24]) in miniature.
// An n = 2^D point FFT is mapped one point per processor onto the de
// Bruijn network B(2, D) realized by its optimal OTIS layout. The Pease
// constant-geometry FFT makes every one of the D stages an identical
// single-hop communication step along de Bruijn arcs, so the machine's
// optical wiring is reused unchanged every stage.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"math/rand"

	"repro"
)

func main() {
	const D = 10
	n := 1 << D

	// The machine: B(2,10) on OTIS(32,64).
	layout, ok := repro.OptimalLayout(2, D)
	if !ok {
		log.Fatal("no layout")
	}
	fmt.Printf("machine: %d processors as %v\n", n, layout)

	// Every FFT stage reads along de Bruijn arcs — verify against the
	// digraph, then count the physical communication steps.
	if err := repro.VerifyFFTDataflow(D); err != nil {
		log.Fatal(err)
	}
	stages := D
	fmt.Printf("dataflow: %d identical single-hop stages (constant geometry)\n", stages)

	// Simulate the stage traffic on the physical OTIS digraph: each stage
	// node u receives from its two de Bruijn in-neighbours. Map through
	// the layout witness and check the traffic is single-hop there too.
	h, err := repro.HDigraph(layout.P(), layout.Q(), 2)
	if err != nil {
		log.Fatal(err)
	}
	mapping, err := repro.LayoutWitness(2, layout.PPrime, layout.QPrime)
	if err != nil {
		log.Fatal(err)
	}
	inv := make([]int, n)
	for hNode, bNode := range mapping {
		inv[bNode] = hNode
	}
	var pkts []repro.Packet
	id := 0
	for u := 0; u < n; u++ {
		for _, src := range repro.FFTStageSources(u, n) {
			if src == u {
				continue
			}
			pkts = append(pkts, repro.Packet{ID: id, Src: inv[src], Dst: inv[u]})
			id++
		}
	}
	nw, err := repro.NewNetwork(h, repro.NewTableRouter(h), repro.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	res := nw.Run(pkts)
	fmt.Printf("one stage on the optical machine: %v\n", res)
	if res.MaxHops != 1 {
		log.Fatalf("stage traffic not single-hop on the layout (max %d)", res.MaxHops)
	}

	// And the arithmetic: transform a noisy two-tone signal and find the
	// tones.
	rng := rand.New(rand.NewSource(5))
	x := make([]complex128, n)
	for j := range x {
		s := 2.0*math.Sin(2*math.Pi*37*float64(j)/float64(n)) +
			1.0*math.Sin(2*math.Pi*200*float64(j)/float64(n))
		x[j] = complex(s+0.1*rng.NormFloat64(), 0)
	}
	X, err := repro.FFT(x)
	if err != nil {
		log.Fatal(err)
	}
	type peak struct {
		bin int
		mag float64
	}
	var best []peak
	for k := 1; k < n/2; k++ {
		m := cmplx.Abs(X[k])
		best = append(best, peak{k, m})
	}
	// Selection of the top two bins.
	for i := 0; i < 2; i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].mag > best[i].mag {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	fmt.Printf("spectrum peaks: bins %d and %d (expected 37 and 200)\n", best[0].bin, best[1].bin)
	if (best[0].bin != 37 || best[1].bin != 200) && (best[0].bin != 200 || best[1].bin != 37) {
		log.Fatal("FFT peaks wrong")
	}
	fmt.Printf("total: %d stages × 1 hop = %d communication rounds for a %d-point FFT\n",
		stages, stages, n)
}
