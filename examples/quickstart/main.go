// Quickstart: the paper's headline result in thirty lines. We lay out the
// 256-node de Bruijn digraph B(2,8) on OTIS with Θ(√n) lenses, build the
// explicit isomorphism from the OTIS digraph H(16,32,2) to B(2,8), and
// verify the optical transpose beam by beam.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const d, D = 2, 8

	// 1. Find the lens-minimizing OTIS layout of B(2,8) (Corollary 4.6).
	layout, ok := repro.OptimalLayout(d, D)
	if !ok {
		log.Fatal("no OTIS layout for B(2,8)")
	}
	fmt.Println("layout:", layout)
	fmt.Printf("baseline needs %d lenses; this layout needs %d\n",
		repro.IILayoutLenses(d, layout.Nodes()), layout.Lenses())

	// 2. Materialize the digraph OTIS actually wires up, and the explicit
	//    isomorphism onto B(2,8) (Propositions 4.1 + 3.9).
	h, err := repro.HDigraph(layout.P(), layout.Q(), d)
	if err != nil {
		log.Fatal(err)
	}
	mapping, err := repro.LayoutWitness(d, layout.PPrime, layout.QPrime)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyIsomorphism(h, repro.DeBruijn(d, D), mapping); err != nil {
		log.Fatal("isomorphism check failed: ", err)
	}
	fmt.Printf("H(%d,%d,%d) ≅ B(%d,%d): isomorphism verified on %d vertices\n",
		layout.P(), layout.Q(), d, d, D, len(mapping))

	// 3. Verify the free-space optics: every one of the 512 beams must
	//    land on its transpose receiver.
	bench, err := repro.NewBench(layout.P(), layout.Q(), repro.DefaultPitch)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.VerifyTranspose(); err != nil {
		log.Fatal("optical verification failed: ", err)
	}
	margin, _ := repro.WorstCaseMargin(bench, repro.DefaultBudget())
	fmt.Printf("optics: all %d beams verified, worst-case link margin %.1f dB\n",
		layout.P()*layout.Q(), margin)
	fmt.Println("hardware:", repro.BillOfMaterials(bench, d))
}
