// Faulttolerance: what happens to the optical de Bruijn machine when
// hardware fails. The de Bruijn digraph is (d-1)-connected and the Kautz
// digraph d-connected; this example measures those margins with max-flow,
// then injects transceiver failures into the simulated network and shows
// traffic rerouting around them.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Connectivity audit of the candidate machines.
	fmt.Println("connectivity (max-flow, Menger):")
	for _, d := range []int{2, 3, 4} {
		b := repro.DeBruijn(d, 2)
		fmt.Printf("  B(%d,2): κ=%d λ=%d (survives %d vertex faults worst-case)\n",
			d, b.VertexConnectivity(), b.ArcConnectivity(), b.VertexConnectivity()-1)
	}
	k := repro.ImaseItoh(3, 36) // ≅ K(3,3)
	fmt.Printf("  K(3,3): κ=%d λ=%d — Kautz buys one extra fault over B at equal degree\n",
		k.VertexConnectivity(), k.ArcConnectivity())

	// Disjoint paths: the physical redundancy behind the numbers.
	b := repro.DeBruijn(3, 3)
	paths := b.ArcDisjointPaths(2, 19)
	fmt.Printf("\nB(3,3): %d arc-disjoint paths from 2 to 19:\n", len(paths))
	for _, p := range paths {
		fmt.Printf("  %v\n", p)
	}

	// Fault injection: kill one arc of the first path and reroute.
	faulty := repro.NewDigraph(b.N())
	removed := false
	for u := 0; u < b.N(); u++ {
		for _, v := range b.Out(u) {
			if !removed && u == paths[0][0] && v == paths[0][1] {
				removed = true
				continue
			}
			faulty.AddArc(u, v)
		}
	}
	nw, err := repro.NewNetwork(faulty, repro.NewTableRouter(faulty), repro.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	res := nw.Run(repro.UniformRandomWorkload(b.N(), 1000, 11))
	fmt.Printf("\nafter killing arc (%d,%d): %v\n", paths[0][0], paths[0][1], res)
	if res.Dropped != 0 {
		log.Fatal("traffic was dropped despite 2-connectivity")
	}
	fmt.Println("all traffic rerouted — the machine degrades gracefully")

	// The degree-2 caveat: B(2,D) has κ = 1, so a vertex failure can
	// isolate a neighbourhood. Quantify the damage.
	b2 := repro.DeBruijn(2, 6)
	fmt.Printf("\nB(2,6) (κ=%d): vertex failures can disconnect pairs:\n", b2.VertexConnectivity())
	worstLost := 0
	for v := 0; v < b2.N(); v++ {
		lost := pairsLost(b2, v)
		if lost > worstLost {
			worstLost = lost
		}
	}
	total := (b2.N() - 1) * (b2.N() - 2)
	fmt.Printf("  worst single-vertex failure severs %d of %d surviving ordered pairs (%.2f%%)\n",
		worstLost, total, 100*float64(worstLost)/float64(total))
	fmt.Println("  → degree-2 machines trade fault tolerance for hardware; d=3 fixes it")
}

// pairsLost counts ordered pairs (u,w), u,w ≠ v, unreachable after
// removing vertex v.
func pairsLost(g *repro.Digraph, v int) int {
	faulty := repro.NewDigraph(g.N())
	for u := 0; u < g.N(); u++ {
		if u == v {
			continue
		}
		for _, w := range g.Out(u) {
			if w != v {
				faulty.AddArc(u, w)
			}
		}
	}
	lost := 0
	for u := 0; u < g.N(); u++ {
		if u == v {
			continue
		}
		dist := faulty.BFSFrom(u)
		for w := 0; w < g.N(); w++ {
			if w == v || w == u {
				continue
			}
			if dist[w] < 0 {
				lost++
			}
		}
	}
	return lost
}
