// Faulttolerance: what happens to the optical de Bruijn machine when
// hardware fails. The de Bruijn digraph is (d-1)-connected and the Kautz
// digraph d-connected; this example measures those margins with max-flow,
// then injects faults into the RUNNING machine — a dead link, a dirty
// lens that later clears, a lens gone for good — and shows the
// fault-aware router delivering what physics still permits, with every
// loss accounted. It closes with a degradation sweep: delivered fraction
// vs. fault rate.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Connectivity audit of the candidate machines.
	fmt.Println("connectivity (max-flow, Menger):")
	for _, d := range []int{2, 3, 4} {
		b := repro.DeBruijn(d, 2)
		fmt.Printf("  B(%d,2): κ=%d λ=%d (survives %d vertex faults worst-case)\n",
			d, b.VertexConnectivity(), b.ArcConnectivity(), b.VertexConnectivity()-1)
	}
	k := repro.ImaseItoh(3, 36) // ≅ K(3,3)
	fmt.Printf("  K(3,3): κ=%d λ=%d — Kautz buys one extra fault over B at equal degree\n",
		k.VertexConnectivity(), k.ArcConnectivity())

	// Disjoint paths: the physical redundancy behind the numbers.
	b := repro.DeBruijn(3, 3)
	paths := b.ArcDisjointPaths(2, 19)
	fmt.Printf("\nB(3,3): %d arc-disjoint paths from 2 to 19:\n", len(paths))
	for _, p := range paths {
		fmt.Printf("  %v\n", p)
	}

	// Static surgery (the old experiment): remove the arc, rebuild the
	// tables, rerun. This shows the residual GRAPH works…
	faulty := b.RemoveArc(paths[0][0], paths[0][1])
	nw, err := repro.NewNetwork(faulty, repro.NewTableRouter(faulty), repro.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	res := nw.Run(repro.UniformRandomWorkload(b.N(), 1000, 11))
	fmt.Printf("\nstatic surgery, arc (%d,%d) removed: %v\n", paths[0][0], paths[0][1], res)
	if res.Dropped != 0 {
		log.Fatal("traffic was dropped despite 2-connectivity")
	}

	// …but hardware does not pause for a rebuild. Runtime injection: the
	// same arc dies at cycle 0 DURING the run, on the intact network, and
	// the fault-aware router deflects around it mid-flight.
	live, err := repro.NewNetwork(b, repro.NewTableRouter(b), repro.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	arcIndex := -1
	for idx, v := range b.Out(paths[0][0]) {
		if v == paths[0][1] {
			arcIndex = idx
			break
		}
	}
	plan := repro.NewFaultPlan().LinkDown(0, 0, paths[0][0], arcIndex)
	fres, err := live.RunWithFaults(repro.UniformRandomWorkload(b.N(), 1000, 11),
		plan, repro.DefaultFaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runtime fault, same arc: %v\n", fres)
	if fres.Dropped != 0 {
		log.Fatal("runtime rerouting dropped traffic despite 2-connectivity")
	}
	fmt.Println("all traffic rerouted mid-flight — no rebuild, no loss")

	// The optical machine's correlated failure: one lens carries a whole
	// group of beams. Assemble the B(3,4) machine (OTIS(9,27), 36 lenses)
	// and break lens 2 for 60 cycles — dust, vibration — then for good.
	m, err := repro.BuildMachine(3, 4, repro.DefaultPitch)
	if err != nil {
		log.Fatal(err)
	}
	silencedOut, silencedIn, err := m.LensShadow(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmachine %v\n", m.Layout)
	fmt.Printf("lens 2 shadow: out-silenced %v, in-silenced %v\n", silencedOut, silencedIn)

	transient, err := m.LensFaultPlan(0, 60, 2)
	if err != nil {
		log.Fatal(err)
	}
	tres, err := m.RunWithFaults(repro.UniformRandomWorkload(m.Nodes(), 2000, 5),
		transient, repro.DefaultFaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transient lens fault (60 cycles): %v\n", tres)
	if tres.Dropped != 0 {
		log.Fatal("transient lens fault should lose nothing (blocked packets retry)")
	}

	permanent, err := m.LensFaultPlan(0, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	rec := repro.NewRecorder(nil)
	m.Observe(rec)
	pres, err := m.RunWithFaults(repro.UniformRandomWorkload(m.Nodes(), 2000, 5),
		permanent, repro.DefaultFaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("permanent lens fault: %v\n", pres)
	fmt.Printf("  delivered fraction %.3f — the shadowed block is dark, everyone else is served\n",
		pres.DeliveredFraction())

	// The recorder's per-arc slab rolled up by lens shows the failure in
	// the optics' own terms: the dead lens carried nothing, its neighbours
	// absorbed the rerouted beams.
	lenses, err := m.LensUtilization(rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-lens utilization of the degraded run (transmitter side):")
	for _, l := range lenses {
		if l.Side != "tx" {
			continue
		}
		note := ""
		if l.Lens == 2 {
			note = "  <- faulted"
		}
		fmt.Printf("  lens %2d: %2d arcs, %5d traversals, share %.3f%s\n",
			l.Lens, l.Arcs, l.Traversals, l.Share, note)
	}

	// Degradation: how service decays as arcs die at random.
	fmt.Println("\ndegradation sweep on B(3,3) (delivered fraction vs. per-arc fault rate):")
	points, err := repro.DegradationSweep(b, repro.NewTableRouter(b),
		[]float64{0, 0.05, 0.1, 0.2, 0.4, 0.7, 1}, 500, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("  %v\n", p)
	}
	fmt.Println("graceful to the end: even total blackout terminates with every loss accounted")
}
