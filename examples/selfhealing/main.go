// Selfhealing: the machine repairs itself without ever reading the
// fault plan. The faulttolerance example routes around failures with an
// omniscient router — it is told which arcs are down. Here the oracle
// is removed: nodes learn of a dead out-arc only because transmissions
// onto it time out, spread the news by flooding a link-state event over
// whatever arcs still work, and patch their routing slabs incrementally
// per event. The example sweeps every single-arc fault of B(3,3) and
// measures convergence, then demonstrates the optical failure mode on
// the assembled B(3,4) machine: a transiently dirty lens trips a
// per-lens circuit breaker, which quarantines the lens's whole arc
// group, probes it half-open on an exponential-backoff schedule, and
// closes again once the optics recover.
package main

import (
	"fmt"
	"log"

	"repro"
)

// allPairs offers one packet per ordered (src, dst) pair per wave.
func allPairs(n, waves, gap int) []repro.Packet {
	var pkts []repro.Packet
	id := 0
	for w := 0; w < waves; w++ {
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				pkts = append(pkts, repro.Packet{ID: id, Src: s, Dst: d, Release: w * gap})
				id++
			}
		}
	}
	return pkts
}

// sparseWaves offers a strided subset of pairs in many spaced waves —
// a long-lived background load that keeps a session's clock advancing
// so probes and breaker holds come due.
func sparseWaves(n, waves, stride, gap int) []repro.Packet {
	var pkts []repro.Packet
	id := 0
	for w := 0; w < waves; w++ {
		for s := 0; s < n; s += stride {
			for d := 0; d < n; d += stride {
				if s == d {
					continue
				}
				pkts = append(pkts, repro.Packet{ID: id, Src: s, Dst: d, Release: w * gap})
				id++
			}
		}
	}
	return pkts
}

func main() {
	// Part 1 — every single-arc fault of B(3,3) self-heals. λ(B(3,3)) =
	// 2, so each residual digraph is still strongly connected: the
	// omniscient router delivers every pair, and the self-healing
	// network must end up doing the same with knowledge it earned.
	g := repro.DeBruijn(3, 3)
	n := g.N()
	fmt.Printf("B(3,3): %d nodes, %d arcs — sweeping every single-arc fault\n", n, g.M())
	worstConverge, healedArcs := 0, 0
	for u := 0; u < n; u++ {
		for k := range g.Out(u) {
			nw, err := repro.NewNetwork(g, repro.NewTableRouter(g), repro.DefaultSimConfig())
			if err != nil {
				log.Fatal(err)
			}
			plan := repro.NewFaultPlanFor(g)
			plan.LinkDown(0, 0, u, k)
			if err := plan.Err(); err != nil {
				log.Fatal(err)
			}
			session, err := nw.SelfHeal(plan, repro.HealConfig{})
			if err != nil {
				log.Fatal(err)
			}
			// Wave 1 takes the NACKs and spreads the news; wave 2 runs
			// on the repaired slabs and must be loss- and NACK-free.
			if _, err := session.Run(allPairs(n, 2, 16)); err != nil {
				log.Fatal(err)
			}
			res, err := session.Run(allPairs(n, 1, 1))
			if err != nil {
				log.Fatal(err)
			}
			if res.Dropped != 0 || res.Nacks != 0 {
				log.Fatalf("arc (%d#%d): wave 2 dropped %d, nacks %d", u, k, res.Dropped, res.Nacks)
			}
			if res.FinalEpoch > 0 {
				healedArcs++
				if !res.Converged {
					log.Fatalf("arc (%d#%d): not converged", u, k)
				}
				if res.ConvergedCycle > worstConverge {
					worstConverge = res.ConvergedCycle
				}
			}
		}
	}
	fmt.Printf("  all faults healed: wave-2 delivery 100%%, zero NACKs\n")
	fmt.Printf("  %d faults needed an event (the rest hit loops or unused arcs); worst convergence: cycle %d\n\n",
		healedArcs, worstConverge)

	// Part 2 — the optical failure mode, detected and quarantined. On
	// the assembled B(3,4) machine one lens carries a whole arc group;
	// a dirty lens produces a burst of correlated NACKs. The circuit
	// breaker charges each failure to the lens that carried the beam,
	// trips past a threshold, quarantines the group, and probes it
	// half-open with exponentially backed-off holds until the optics
	// come back.
	m, err := repro.BuildMachine(3, 4, repro.DefaultPitch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %v\n", m.Layout)
	const lens = 1
	const healsAt = 120
	plan, err := m.LensFaultPlan(0, healsAt, lens) // dirty from cycle 0, clears at 120
	if err != nil {
		log.Fatal(err)
	}
	breaker, err := repro.NewLensBreaker(m, repro.LensBreakerConfig{
		Threshold: 3, Window: 32, HoldBase: 48, HoldCap: 512,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	session, err := m.SelfHeal(plan, repro.HealConfig{ProbeInterval: 16, Monitor: breaker})
	if err != nil {
		log.Fatal(err)
	}
	res, err := session.Run(sparseWaves(m.Nodes(), 40, 5, 8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault: lens %d dirty for %d cycles; breaker threshold 3 in window 32, hold 48·2^k\n",
		lens, healsAt)
	fmt.Printf("run: %v\n", res)
	fmt.Println("breaker transitions:")
	for _, tr := range breaker.Transitions() {
		fmt.Printf("  cycle %4d  lens %d  %-9v -> %v\n", tr.Cycle, tr.Lens, tr.From, tr.To)
	}
	st := breaker.States()[lens]
	fmt.Printf("end state: lens %d %v (trips reset to %d); quarantined arcs: %d\n",
		lens, st.State, st.Trips, len(session.Quarantined()))
}
