// Galileo: the paper motivates de Bruijn networks with NASA's Galileo
// space probe, whose Viterbi signal decoder is a VLSI decomposition of a
// large de Bruijn graph (Collins et al., JACM 1992 — reference [11]).
//
// This example builds the decoder-style interconnect: a B(2,D) network in
// which every node exchanges state-metric messages with its de Bruijn
// neighbours once per trellis step — the all-to-neighbours traffic of a
// Viterbi add-compare-select stage — and shows that realizing the network
// on an optimal OTIS layout preserves the communication behaviour exactly
// (same hop counts under the isomorphism), while cutting the optical
// hardware from O(n) to Θ(√n) lenses.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const d, D = 2, 8 // 256-state decoder, as a scaled-down Galileo stage

	b := repro.DeBruijn(d, D)
	fmt.Printf("decoder trellis network: B(%d,%d), %d states\n", d, D, b.N())

	// One trellis step: every state u sends its path metric to both
	// successors (2u, 2u+1 mod n) — exactly the de Bruijn arcs.
	pkts := make([]repro.Packet, 0, b.N()*d)
	id := 0
	for u := 0; u < b.N(); u++ {
		for _, v := range b.Out(u) {
			if u == v {
				continue // loop states keep their metric locally
			}
			pkts = append(pkts, repro.Packet{ID: id, Src: u, Dst: v})
			id++
		}
	}
	nw, err := repro.NewNetwork(b, repro.NewDeBruijnRouter(d, D), repro.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	res := nw.Run(pkts)
	fmt.Printf("trellis step on B(%d,%d): %v\n", d, D, res)
	if res.MaxHops != 1 {
		log.Fatalf("decoder traffic should be single-hop, got max %d", res.MaxHops)
	}

	// Now the same machine on the optical layout: H(16,32,2) with the
	// witness relabelling. Because the witness is an isomorphism, the
	// trellis traffic is still single-hop on the physical network.
	layout, _ := repro.OptimalLayout(d, D)
	h, err := repro.HDigraph(layout.P(), layout.Q(), d)
	if err != nil {
		log.Fatal(err)
	}
	mapping, err := repro.LayoutWitness(d, layout.PPrime, layout.QPrime)
	if err != nil {
		log.Fatal(err)
	}
	inv := make([]int, len(mapping))
	for hNode, bNode := range mapping {
		inv[bNode] = hNode
	}
	physical := make([]repro.Packet, len(pkts))
	for i, p := range pkts {
		physical[i] = repro.Packet{ID: p.ID, Src: inv[p.Src], Dst: inv[p.Dst]}
	}
	nwH, err := repro.NewNetwork(h, repro.NewTableRouter(h), repro.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	resH := nwH.Run(physical)
	fmt.Printf("same step on %v: %v\n", layout, resH)
	if resH.MaxHops != 1 {
		log.Fatalf("optical layout broke decoder locality: max hops %d", resH.MaxHops)
	}
	fmt.Printf("decoder locality preserved under the layout isomorphism; "+
		"optical hardware: %d lenses instead of %d\n",
		layout.Lenses(), repro.IILayoutLenses(d, b.N()))

	// Sustained decoding: many trellis steps pipelined as Poisson traffic.
	stream := repro.PoissonWorkload(b.N(), 4000, 0.8, 7)
	resStream := nw.Run(stream)
	fmt.Printf("pipelined metric exchange (Poisson, 4000 packets): %v\n", resStream)
}
