#!/bin/sh
# check.sh — the repository's development gate. Runs formatting, vet,
# build, the repo-specific static-analysis suite (reprolint) plus its
# fixture self-check, the race detector over every internal package, and
# the seeded determinism double-run.
#
# Usage: sh scripts/check.sh
# POSIX sh only; no bashisms.

set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== reprolint =="
go run ./cmd/reprolint ./...

echo "== reprolint self-check (analyzer fixtures) =="
go test ./internal/lint -count=1

echo "== go test -race (every internal package) =="
go test -race ./internal/...

echo "== determinism double-run (byte-identical trace + OBS_run/v1) =="
go test ./internal/simnet -run SeededRunIsByteIdentical -count=2

echo "== shard determinism double-run (sequential equivalence + worker matrix) =="
go test ./internal/simnet \
    -run 'ShardRunMatchesSequential|ShardWorkerCountDeterminism' -count=2

echo "== sharded table-free smoke run =="
go run ./cmd/simulate -topo debruijn -d 2 -diam 14 -routing shift -shards 4 \
    -workload permutation > /dev/null

echo "== chaos smoke (seeded random fault plans) =="
go test ./internal/simnet -run Chaos -count=1

echo "== overload smoke (bounded queues + chaos at 4x saturation, -race) =="
go test -race ./internal/simnet -run 'ClaimXOverload|ChaosOverload' -count=1
go run ./cmd/simulate -d 3 -diam 5 -saturation 4 -qcap 2 -packets 2000 > /dev/null

echo "== fault-sweep smoke run =="
go run ./cmd/simulate -topo debruijn -d 3 -diam 3 -faults -packets 200 \
    -faultrates 0,0.5,1 > /dev/null

echo "== self-healing smoke run =="
go run ./cmd/simulate -d 3 -diam 4 -selfheal -packets 300 > /dev/null
go run ./cmd/simulate -d 3 -diam 4 -faultlens 2 -selfheal -quarantine \
    -packets 300 > /dev/null

echo "== shared-network concurrency (-race, many goroutines, one Network) =="
go test -race ./internal/simnet -run Concurrent -count=1

echo "== service smoke (cmd/serve HTTP self-drive + SLO_report/v1 validation) =="
go run ./cmd/serve -smoke > /dev/null

echo "== service load gate (1000 sessions, always-on chaos, exact accounting) =="
go run ./cmd/serve -loadtest -sessions 1000 -tenants 50 -runs 2 -packets 8 \
    > /dev/null

echo "== metrics smoke (OBS_run/v1 schema) =="
metrics_out=$(mktemp /tmp/OBS_run.XXXXXX.json)
go run ./cmd/simulate -topo otis -d 3 -diam 4 -metrics "$metrics_out" > /dev/null
go run ./cmd/simulate -validate-metrics "$metrics_out"
rm -f "$metrics_out"

echo "== bench smoke + perf regression gate (BENCH_simnet.json) =="
# Build the binary so its exit code reaches us directly: the gate exits
# 2 when any gated-family entry (permutation/*, table_route/*,
# shift_route/*, shard_run/*) regresses >20% against the committed
# baseline, and go run would fold that into its own exit status.
bench_bin=$(mktemp /tmp/bench.XXXXXX)
go build -o "$bench_bin" ./cmd/bench
bench_out=$(mktemp /tmp/BENCH_simnet.XXXXXX.json)
"$bench_bin" -smoke -compare BENCH_simnet.json -out "$bench_out"
"$bench_bin" -validate "$bench_out"
rm -f "$bench_out" "$bench_bin"

echo "check.sh: all checks passed"
