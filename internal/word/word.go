// Package word implements fixed-length words over the alphabet Z_d.
//
// Vertices of the de Bruijn digraph B(d, D) are the d^D words of length D
// over Z_d (Definition 2.2 of Coudert, Ferreira, Pérennes, IPDPS 2000).
// Following the paper, a word x = x_{D-1} x_{D-2} ... x_1 x_0 is indexed so
// that x_0 is the rightmost letter, and the standard integer correspondence
// is the Horner sum u = Σ_{i} x_i d^i (Remark 2.6). The paper views words as
// elements of the vector space Z_d^D with canonical basis e_0, ..., e_{D-1}
// (Definition 3.5): letter x_i is the coefficient of e_i.
package word

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/perm"
)

// Word is a word over Z_d stored least-significant letter first:
// w[i] is x_i, the coefficient of basis vector e_i. The alphabet size d is
// carried alongside the letters because distinct alphabets give distinct
// digraphs even for equal letter slices.
type Word struct {
	letters []int
	d       int
}

// New returns the all-zero word of length length over Z_d.
func New(d, length int) Word {
	if d < 1 {
		panic("word: alphabet size must be >= 1")
	}
	if length < 0 {
		panic("word: negative length")
	}
	return Word{letters: make([]int, length), d: d}
}

// FromLetters builds a word from letters given in paper order, most
// significant first: FromLetters(2, 1, 0, 1) is the word 101, i.e.
// x_2=1, x_1=0, x_0=1.
func FromLetters(d int, letters ...int) (Word, error) {
	w := New(d, len(letters))
	for i, letter := range letters {
		if letter < 0 || letter >= d {
			return Word{}, fmt.Errorf("word: letter %d out of alphabet Z_%d", letter, d)
		}
		w.letters[len(letters)-1-i] = letter
	}
	return w, nil
}

// MustFromLetters is FromLetters panicking on error; for tests and tables.
func MustFromLetters(d int, letters ...int) Word {
	w, err := FromLetters(d, letters...)
	if err != nil {
		//lint:ignore panicstyle the error from FromLetters already carries the "word: " prefix
		panic(err)
	}
	return w
}

// FromInt returns the length-D word representing u in base d via the Horner
// correspondence u = Σ x_i d^i of Remark 2.6. u must lie in [0, d^D).
func FromInt(d, D, u int) (Word, error) {
	if u < 0 {
		return Word{}, fmt.Errorf("word: negative value %d", u)
	}
	w := New(d, D)
	for i := 0; i < D; i++ {
		w.letters[i] = u % d
		u /= d
	}
	if u != 0 {
		return Word{}, fmt.Errorf("word: value does not fit in %d letters over Z_%d", D, d)
	}
	return w, nil
}

// MustFromInt is FromInt panicking on error.
func MustFromInt(d, D, u int) Word {
	w, err := FromInt(d, D, u)
	if err != nil {
		//lint:ignore panicstyle the error from FromInt already carries the "word: " prefix
		panic(err)
	}
	return w
}

// Int returns the Horner value Σ x_i d^i of w. Words built through
// FromInt always fit by construction, but New permits arbitrary lengths,
// so Int guards the accumulation and panics if the value exceeds int.
func (w Word) Int() int {
	u := 0
	for i := len(w.letters) - 1; i >= 0; i-- {
		letter := w.letters[i]
		if u > (math.MaxInt-letter)/w.d {
			panic("word: word value overflows int")
		}
		u = u*w.d + letter
	}
	return u
}

// D returns the alphabet size.
func (w Word) D() int { return w.d }

// Len returns the word length D.
func (w Word) Len() int { return len(w.letters) }

// Letter returns x_i, the letter at index i (i = 0 is the rightmost letter).
func (w Word) Letter(i int) int { return w.letters[i] }

// WithLetter returns a copy of w with x_i set to letter.
func (w Word) WithLetter(i, letter int) Word {
	if letter < 0 || letter >= w.d {
		panic(fmt.Sprintf("word: letter %d out of alphabet Z_%d", letter, w.d))
	}
	out := w.Clone()
	out.letters[i] = letter
	return out
}

// Clone returns an independent copy of w.
func (w Word) Clone() Word {
	out := Word{letters: make([]int, len(w.letters)), d: w.d}
	copy(out.letters, w.letters)
	return out
}

// Equal reports whether two words agree in alphabet, length and letters.
func (w Word) Equal(v Word) bool {
	if w.d != v.d || len(w.letters) != len(v.letters) {
		return false
	}
	for i := range w.letters {
		if w.letters[i] != v.letters[i] {
			return false
		}
	}
	return true
}

// LeftShiftAppend returns the de Bruijn successor word
// x_{D-2} ... x_1 x_0 α: the cyclic left shift with the rightmost letter
// replaced by α (Definition 2.2).
func (w Word) LeftShiftAppend(alpha int) Word {
	if alpha < 0 || alpha >= w.d {
		panic(fmt.Sprintf("word: letter %d out of alphabet Z_%d", alpha, w.d))
	}
	D := len(w.letters)
	out := New(w.d, D)
	// New x_i is old x_{i-1} for i >= 1; new x_0 is alpha.
	for i := 1; i < D; i++ {
		out.letters[i] = w.letters[i-1]
	}
	out.letters[0] = alpha
	return out
}

// ApplyAlphabet applies a permutation σ of Z_d letterwise, the natural
// extension of Definition 3.6: (σx)_i = σ(x_i).
func (w Word) ApplyAlphabet(sigma perm.Perm) Word {
	if sigma.N() != w.d {
		panic("word: alphabet permutation size mismatch")
	}
	out := w.Clone()
	for i, letter := range out.letters {
		out.letters[i] = sigma.Apply(letter)
	}
	return out
}

// ApplyIndex applies the linear map f→ of Definition 3.5 induced by a
// permutation f of Z_D: f→(e_i) = e_{f(i)}, so letter x_i moves to index
// f(i) — (f→ x)_{f(i)} = x_i.
func (w Word) ApplyIndex(f perm.Perm) Word {
	if f.N() != len(w.letters) {
		panic("word: index permutation size mismatch")
	}
	out := New(w.d, len(w.letters))
	for i, letter := range w.letters {
		out.letters[f.Apply(i)] = letter
	}
	return out
}

// Concat returns the word whose paper-order spelling is the spelling of w
// followed by the spelling of v (w occupies the high-order letters).
// Both words must share an alphabet.
func (w Word) Concat(v Word) Word {
	if w.d != v.d {
		panic("word: concat alphabet mismatch")
	}
	out := New(w.d, len(w.letters)+len(v.letters))
	copy(out.letters, v.letters)
	copy(out.letters[len(v.letters):], w.letters)
	return out
}

// Slice returns the sub-word x_{hi-1} ... x_{lo} (letters with indices in
// [lo, hi)), preserving the alphabet.
func (w Word) Slice(lo, hi int) Word {
	if lo < 0 || hi > len(w.letters) || lo > hi {
		panic("word: slice bounds out of range")
	}
	out := New(w.d, hi-lo)
	copy(out.letters, w.letters[lo:hi])
	return out
}

// Letters returns the letters in paper order (most significant first).
func (w Word) Letters() []int {
	out := make([]int, len(w.letters))
	for i := range out {
		out[i] = w.letters[len(w.letters)-1-i]
	}
	return out
}

// String renders the word in paper order. Alphabets up to size 10 render
// as digit strings ("0110"); larger alphabets render dot-separated
// ("3.11.0").
func (w Word) String() string {
	if len(w.letters) == 0 {
		return "ε"
	}
	var b strings.Builder
	for i := len(w.letters) - 1; i >= 0; i-- {
		if w.d > 10 {
			if i != len(w.letters)-1 {
				b.WriteByte('.')
			}
			fmt.Fprintf(&b, "%d", w.letters[i])
		} else {
			fmt.Fprintf(&b, "%d", w.letters[i])
		}
	}
	return b.String()
}

// Parse parses a digit string in paper order over Z_d (d ≤ 10).
func Parse(d int, s string) (Word, error) {
	if d < 1 || d > 10 {
		return Word{}, fmt.Errorf("word: Parse supports alphabets up to 10, got %d", d)
	}
	letters := make([]int, 0, len(s))
	for _, r := range s {
		if r < '0' || r > '9' {
			return Word{}, fmt.Errorf("word: invalid digit %q", r)
		}
		letters = append(letters, int(r-'0'))
	}
	return FromLetters(d, letters...)
}

// Pow returns d^D, the number of words of length D over Z_d, panicking on
// overflow.
func Pow(d, D int) int {
	if d < 1 || D < 0 {
		panic("word: invalid Pow arguments")
	}
	n := 1
	for i := 0; i < D; i++ {
		next := n * d
		if next/d != n {
			panic("word: d^D overflows int")
		}
		n = next
	}
	return n
}

// Enumerate calls visit for every word of length D over Z_d in increasing
// Horner-value order. The Word passed to visit is freshly allocated each
// call and may be retained.
func Enumerate(d, D int, visit func(Word) bool) {
	n := Pow(d, D)
	for u := 0; u < n; u++ {
		if !visit(MustFromInt(d, D, u)) {
			return
		}
	}
}

// OverlapSuffixPrefix returns the largest k ≤ D such that the last k letters
// of src (low indices x_{k-1}..x_0) equal the first k letters of dst (high
// indices x_{D-1}..x_{D-k}). This is the quantity that determines the
// de Bruijn shortest-path length D - k between two vertices.
func OverlapSuffixPrefix(src, dst Word) int {
	if src.d != dst.d || len(src.letters) != len(dst.letters) {
		panic("word: overlap on mismatched words")
	}
	D := len(src.letters)
	for k := D; k > 0; k-- {
		match := true
		for i := 0; i < k; i++ {
			// src letter x_{k-1-i} against dst letter x_{D-1-i}.
			if src.letters[k-1-i] != dst.letters[D-1-i] {
				match = false
				break
			}
		}
		if match {
			return k
		}
	}
	return 0
}
