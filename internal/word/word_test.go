package word

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

func TestFromLettersAndString(t *testing.T) {
	w := MustFromLetters(2, 1, 0, 1)
	if w.String() != "101" {
		t.Fatalf("String = %q, want 101", w.String())
	}
	if w.Letter(0) != 1 || w.Letter(1) != 0 || w.Letter(2) != 1 {
		t.Fatalf("letters wrong: %v", w.Letters())
	}
	if w.Int() != 5 {
		t.Fatalf("Int = %d, want 5", w.Int())
	}
}

func TestFromLettersRejectsOutOfAlphabet(t *testing.T) {
	if _, err := FromLetters(2, 0, 2, 1); err == nil {
		t.Error("letter 2 accepted in Z_2")
	}
	if _, err := FromLetters(3, -1); err == nil {
		t.Error("negative letter accepted")
	}
}

func TestHornerRoundTrip(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 1}, {2, 4}, {3, 3}, {5, 2}, {10, 2}} {
		n := Pow(c.d, c.D)
		for u := 0; u < n; u++ {
			w := MustFromInt(c.d, c.D, u)
			if w.Int() != u {
				t.Fatalf("d=%d D=%d: round trip %d -> %s -> %d", c.d, c.D, u, w, w.Int())
			}
		}
	}
}

func TestFromIntRange(t *testing.T) {
	if _, err := FromInt(2, 3, 8); err == nil {
		t.Error("8 accepted as 3-letter binary word")
	}
	if _, err := FromInt(2, 3, -1); err == nil {
		t.Error("negative value accepted")
	}
	if w, err := FromInt(2, 3, 7); err != nil || w.String() != "111" {
		t.Errorf("FromInt(2,3,7) = %v, %v", w, err)
	}
}

func TestLeftShiftAppend(t *testing.T) {
	// Definition 2.2: x = x_{D-1}...x_0 has successors x_{D-2}...x_0 α.
	w := MustFromLetters(2, 1, 0, 1, 1) // 1011
	s := w.LeftShiftAppend(0)
	if s.String() != "0110" {
		t.Fatalf("shift(1011, 0) = %s, want 0110", s)
	}
	s = w.LeftShiftAppend(1)
	if s.String() != "0111" {
		t.Fatalf("shift(1011, 1) = %s, want 0111", s)
	}
}

func TestLeftShiftAppendHornerCongruence(t *testing.T) {
	// In integer form the successor of u is (d*u + alpha) mod d^D —
	// the RRK adjacency of Definition 2.5, per Remark 2.6.
	d, D := 3, 4
	n := Pow(d, D)
	for u := 0; u < n; u++ {
		w := MustFromInt(d, D, u)
		for alpha := 0; alpha < d; alpha++ {
			got := w.LeftShiftAppend(alpha).Int()
			want := (d*u + alpha) % n
			if got != want {
				t.Fatalf("u=%d alpha=%d: got %d, want %d", u, alpha, got, want)
			}
		}
	}
}

func TestApplyAlphabet(t *testing.T) {
	sigma := perm.Complement(2)
	w := MustFromLetters(2, 1, 0, 1)
	if got := w.ApplyAlphabet(sigma).String(); got != "010" {
		t.Fatalf("C(101) = %s, want 010", got)
	}
}

func TestApplyIndexPaperExample331(t *testing.T) {
	// Example 3.3.1: f on Z_6, f→(x5x4x3x2x1x0) = x2x1x0x3x5x4.
	f := perm.MustFromFunc(6, func(i int) int {
		switch {
		case i < 3:
			return i + 3
		case i == 3:
			return 2
		default:
			return (i + 2) % 6
		}
	})
	w := MustFromLetters(10, 5, 4, 3, 2, 1, 0) // spelled "543210": x_i = i
	got := w.ApplyIndex(f)
	// Expected x2x1x0x3x5x4 = "210354".
	if got.String() != "210354" {
		t.Fatalf("f→(543210) = %s, want 210354", got)
	}
}

func TestApplyIndexComposition(t *testing.T) {
	// Definition 3.5: (fg)→ = f→ ∘ g→.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		D := 1 + rng.Intn(8)
		d := 2 + rng.Intn(3)
		f := perm.Random(D, rng)
		g := perm.Random(D, rng)
		w := MustFromInt(d, D, rng.Intn(Pow(d, D)))
		lhs := w.ApplyIndex(f.Compose(g))
		rhs := w.ApplyIndex(g).ApplyIndex(f)
		if !lhs.Equal(rhs) {
			t.Fatalf("(fg)→ ≠ f→∘g→: f=%v g=%v w=%s", f, g, w)
		}
	}
}

func TestApplyIndexShiftIsDeBruijnShift(t *testing.T) {
	// Remark 3.8: with ρ(i) = i+1 mod D, the de Bruijn successor set is
	// ρ→(x) + Z_d·e_0, i.e. ρ→ moves x_{D-1} into position 0 and
	// LeftShiftAppend overwrites it.
	d, D := 2, 5
	rho := perm.CyclicShift(D)
	Enumerate(d, D, func(w Word) bool {
		shifted := w.ApplyIndex(rho)
		for alpha := 0; alpha < d; alpha++ {
			got := shifted.WithLetter(0, alpha)
			want := w.LeftShiftAppend(alpha)
			if !got.Equal(want) {
				t.Fatalf("w=%s alpha=%d: %s ≠ %s", w, alpha, got, want)
			}
		}
		return true
	})
}

func TestConcatAndSlice(t *testing.T) {
	a := MustFromLetters(2, 1, 0) // "10"
	b := MustFromLetters(2, 1, 1) // "11"
	c := a.Concat(b)
	if c.String() != "1011" {
		t.Fatalf("concat = %s, want 1011", c)
	}
	if got := c.Slice(0, 2); got.String() != "11" {
		t.Fatalf("Slice(0,2) = %s, want 11", got)
	}
	if got := c.Slice(2, 4); got.String() != "10" {
		t.Fatalf("Slice(2,4) = %s, want 10", got)
	}
}

func TestParse(t *testing.T) {
	w, err := Parse(2, "0110")
	if err != nil {
		t.Fatal(err)
	}
	if w.Int() != 6 {
		t.Fatalf("Parse(0110).Int = %d, want 6", w.Int())
	}
	if _, err := Parse(2, "012"); err == nil {
		t.Error("digit 2 accepted over Z_2")
	}
	if _, err := Parse(2, "01a"); err == nil {
		t.Error("non-digit accepted")
	}
}

func TestPow(t *testing.T) {
	if Pow(2, 10) != 1024 {
		t.Error("Pow(2,10) != 1024")
	}
	if Pow(3, 0) != 1 {
		t.Error("Pow(3,0) != 1")
	}
	if Pow(1, 5) != 1 {
		t.Error("Pow(1,5) != 1")
	}
}

func TestEnumerate(t *testing.T) {
	var got []int
	Enumerate(2, 3, func(w Word) bool {
		got = append(got, w.Int())
		return true
	})
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Enumerate order = %v", got)
	}
}

func TestOverlapSuffixPrefix(t *testing.T) {
	cases := []struct {
		src, dst string
		want     int
	}{
		{"1011", "1011", 4}, // same word: full overlap
		{"1011", "0111", 3}, // 011 suffix = 011 prefix
		{"1011", "1101", 2},
		{"1011", "1000", 1},
		{"0000", "1111", 0},
		{"1010", "0101", 3},
	}
	for _, c := range cases {
		src, _ := Parse(2, c.src)
		dst, _ := Parse(2, c.dst)
		if got := OverlapSuffixPrefix(src, dst); got != c.want {
			t.Errorf("overlap(%s, %s) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestOverlapMatchesShiftSemantics(t *testing.T) {
	// If overlap(src, dst) = k, then applying D-k left shifts to src with
	// the right appended letters must produce dst.
	d, D := 2, 4
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		src := MustFromInt(d, D, rng.Intn(Pow(d, D)))
		dst := MustFromInt(d, D, rng.Intn(Pow(d, D)))
		k := OverlapSuffixPrefix(src, dst)
		w := src.Clone()
		for step := D - k - 1; step >= 0; step-- {
			w = w.LeftShiftAppend(dst.Letter(step))
		}
		if !w.Equal(dst) {
			t.Fatalf("shifting src=%s by %d steps missed dst=%s (got %s)", src, D-k, dst, w)
		}
	}
}

func TestQuickHornerRoundTrip(t *testing.T) {
	f := func(dRaw, DRaw uint8, uRaw uint16) bool {
		d := int(dRaw%9) + 2
		D := int(DRaw % 6)
		n := Pow(d, D)
		u := int(uRaw) % n
		w := MustFromInt(d, D, u)
		return w.Int() == u && w.Len() == D && w.D() == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickAlphabetActionIsGroupAction(t *testing.T) {
	f := func(seed int64, DRaw uint8) bool {
		D := int(DRaw%6) + 1
		d := 3
		rng := rand.New(rand.NewSource(seed))
		s1 := perm.Random(d, rng)
		s2 := perm.Random(d, rng)
		w := MustFromInt(d, D, rng.Intn(Pow(d, D)))
		// (s1∘s2)(w) = s1(s2(w))
		return w.ApplyAlphabet(s1.Compose(s2)).Equal(w.ApplyAlphabet(s2).ApplyAlphabet(s1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWithLetter(t *testing.T) {
	w := MustFromLetters(2, 0, 0, 0)
	v := w.WithLetter(1, 1)
	if v.String() != "010" {
		t.Fatalf("WithLetter = %s, want 010", v)
	}
	if w.String() != "000" {
		t.Fatal("WithLetter mutated the receiver")
	}
}

func TestLargeAlphabetString(t *testing.T) {
	w := MustFromLetters(16, 3, 11, 0)
	if got := w.String(); got != "3.11.0" {
		t.Fatalf("String = %q, want 3.11.0", got)
	}
}

func TestPanicsOnInvalidUse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("New d=0", func() { New(0, 3) })
	mustPanic("New negative length", func() { New(2, -1) })
	mustPanic("WithLetter out of alphabet", func() {
		MustFromLetters(2, 0, 1).WithLetter(0, 5)
	})
	mustPanic("LeftShiftAppend out of alphabet", func() {
		MustFromLetters(2, 0, 1).LeftShiftAppend(3)
	})
	mustPanic("ApplyAlphabet size mismatch", func() {
		MustFromLetters(2, 0, 1).ApplyAlphabet(perm.Identity(3))
	})
	mustPanic("ApplyIndex size mismatch", func() {
		MustFromLetters(2, 0, 1).ApplyIndex(perm.Identity(3))
	})
	mustPanic("Concat alphabet mismatch", func() {
		MustFromLetters(2, 0).Concat(MustFromLetters(3, 0))
	})
	mustPanic("Slice out of range", func() {
		MustFromLetters(2, 0, 1).Slice(0, 5)
	})
	mustPanic("Pow invalid", func() { Pow(0, 2) })
	mustPanic("overlap mismatch", func() {
		OverlapSuffixPrefix(MustFromLetters(2, 0), MustFromLetters(2, 0, 1))
	})
	mustPanic("MustFromLetters invalid", func() { MustFromLetters(2, 7) })
	mustPanic("MustFromInt invalid", func() { MustFromInt(2, 2, 9) })
}

func TestLetters(t *testing.T) {
	w := MustFromLetters(3, 2, 0, 1)
	if got := w.Letters(); !reflect.DeepEqual(got, []int{2, 0, 1}) {
		t.Errorf("Letters = %v", got)
	}
}

func TestEqualMismatchedShapes(t *testing.T) {
	a := MustFromLetters(2, 0, 1)
	if a.Equal(MustFromLetters(3, 0, 1)) {
		t.Error("different alphabets equal")
	}
	if a.Equal(MustFromLetters(2, 0, 1, 0)) {
		t.Error("different lengths equal")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	count := 0
	Enumerate(2, 3, func(Word) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestEmptyWordString(t *testing.T) {
	w := New(2, 0)
	if w.String() != "ε" {
		t.Fatalf("empty word String = %q", w.String())
	}
	if w.Int() != 0 {
		t.Fatal("empty word Int != 0")
	}
}
