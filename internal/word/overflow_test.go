package word

import (
	"math"
	"strconv"
	"testing"
)

// The d^D overflow guards are correctness-critical: Table 1 and the
// layout sweeps convert words to Horner integers near the top of the int
// range, and a silent wrap would corrupt vertex identities rather than
// crash. These tests pin the guard boundaries exactly: the documented
// panic fires at the first (d, D) whose d^D exceeds int, and the largest
// non-overflowing pairs still round-trip word ↔ integer bit-exactly.

// mustPanicMsg runs fn and asserts it panics with exactly msg.
func mustPanicMsg(t *testing.T, msg string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic, want panic %q", msg)
			return
		}
		got, ok := r.(string)
		if !ok || got != msg {
			t.Errorf("panic %v, want %q", r, msg)
		}
	}()
	fn()
}

// powBoundaries lists, for a 64-bit int, the largest D with d^D ≤ MaxInt
// ("documented bound": the guard must admit (d, Dmax) and reject
// (d, Dmax+1)).
var powBoundaries = []struct {
	d, maxD int
}{
	{2, 62},  // 2^62 ≈ 4.61e18 < MaxInt64 < 2^63
	{3, 39},  // 3^39 ≈ 4.05e18 < MaxInt64 < 3^40
	{5, 27},  // 5^27 ≈ 7.45e18 < MaxInt64 < 5^28
	{7, 22},  // 7^22 ≈ 3.91e18 < MaxInt64 < 7^23
	{10, 18}, // 10^18 = 1e18 < MaxInt64 < 10^19
}

func TestPowOverflowBoundary(t *testing.T) {
	if strconv.IntSize != 64 {
		t.Skipf("boundary table assumes 64-bit int, have %d", strconv.IntSize)
	}
	for _, tc := range powBoundaries {
		n := Pow(tc.d, tc.maxD) // must not panic
		if n <= 0 {
			t.Errorf("Pow(%d,%d) = %d, want positive", tc.d, tc.maxD, n)
		}
		// The product is tight: one more factor of d must not fit.
		if n <= math.MaxInt/tc.d {
			t.Errorf("Pow(%d,%d) = %d would admit another factor; boundary table is wrong", tc.d, tc.maxD, n)
		}
		mustPanicMsg(t, "word: d^D overflows int", func() { Pow(tc.d, tc.maxD+1) })
		// Far past the boundary the same guard, not a wrapped value, must
		// answer.
		mustPanicMsg(t, "word: d^D overflows int", func() { Pow(tc.d, 4*tc.maxD) })
	}
}

func TestPowSmallValuesExact(t *testing.T) {
	cases := []struct{ d, D, want int }{
		{2, 0, 1}, {2, 10, 1024}, {3, 4, 81}, {10, 6, 1000000}, {1, 30, 1},
	}
	for _, tc := range cases {
		if got := Pow(tc.d, tc.D); got != tc.want {
			t.Errorf("Pow(%d,%d) = %d, want %d", tc.d, tc.D, got, tc.want)
		}
	}
}

// TestLargestWordsRoundTrip drives word↔integer conversion at the very
// top of the representable range for each boundary pair: the all-(d-1)
// word of length Dmax is d^Dmax - 1 and must survive both directions,
// and Int's own accumulation guard must stay quiet on it.
func TestLargestWordsRoundTrip(t *testing.T) {
	if strconv.IntSize != 64 {
		t.Skipf("boundary table assumes 64-bit int, have %d", strconv.IntSize)
	}
	for _, tc := range powBoundaries {
		n := Pow(tc.d, tc.maxD)
		for _, u := range []int{0, 1, n / 2, n - 2, n - 1} {
			w, err := FromInt(tc.d, tc.maxD, u)
			if err != nil {
				t.Fatalf("FromInt(%d,%d,%d): %v", tc.d, tc.maxD, u, err)
			}
			if got := w.Int(); got != u {
				t.Errorf("d=%d D=%d: round-trip %d -> %s -> %d", tc.d, tc.maxD, u, w, got)
			}
		}
		// One value past the top must be rejected by FromInt, not wrapped.
		if _, err := FromInt(tc.d, tc.maxD, n-1+1); err == nil && tc.d > 1 {
			t.Errorf("FromInt(%d,%d,%d) accepted a value equal to d^D", tc.d, tc.maxD, n)
		}
	}
}

// TestIntGuardFires pins the guard added to Int: a word longer than the
// int capacity (constructible through New/WithLetter, which impose no
// joint d^D bound) panics instead of silently wrapping.
func TestIntGuardFires(t *testing.T) {
	if strconv.IntSize != 64 {
		t.Skipf("assumes 64-bit int, have %d", strconv.IntSize)
	}
	// The all-ones word of length 63 over Z_2 is 2^63 - 1 = MaxInt64
	// exactly, so it must convert; the all-ones word of length 64 is the
	// first that cannot.
	fits := New(2, 63)
	for i := 0; i < fits.Len(); i++ {
		fits = fits.WithLetter(i, 1)
	}
	if got := fits.Int(); got != math.MaxInt64 {
		t.Errorf("all-ones length-63 binary word = %d, want MaxInt64", got)
	}
	over := New(2, 64)
	for i := 0; i < over.Len(); i++ {
		over = over.WithLetter(i, 1)
	}
	mustPanicMsg(t, "word: word value overflows int", func() { over.Int() })

	// A high set bit alone is enough: 2^63 itself does not fit.
	bit := New(2, 64).WithLetter(63, 1)
	mustPanicMsg(t, "word: word value overflows int", func() { bit.Int() })
}

func TestPowInvalidArguments(t *testing.T) {
	mustPanicMsg(t, "word: invalid Pow arguments", func() { Pow(0, 3) })
	mustPanicMsg(t, "word: invalid Pow arguments", func() { Pow(2, -1) })
}
