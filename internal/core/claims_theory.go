package core

import (
	"fmt"

	"repro/internal/alpha"
	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/perm"
	"repro/internal/word"
)

// Claims from Sections 2 and 3: the isomorphism theory.

func init() {
	register(Claim{
		ID:        "R2.4",
		Statement: "B(d,k) ⊗ B(d',k) = B(dd',k)",
		Check: func() error {
			cases := []struct{ d1, d2, k int }{{2, 2, 2}, {2, 3, 2}}
			for _, c := range cases {
				prod := digraph.Conjunction(debruijn.DeBruijn(c.d1, c.k), debruijn.DeBruijn(c.d2, c.k))
				want := debruijn.DeBruijn(c.d1*c.d2, c.k)
				if _, ok := digraph.FindIsomorphism(prod, want); !ok {
					return fmt.Errorf("B(%d,%d)⊗B(%d,%d) ≇ B(%d,%d)",
						c.d1, c.k, c.d2, c.k, c.d1*c.d2, c.k)
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "R2.6",
		Statement: "RRK(d, d^D) is the congruence form of B(d,D)",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 5}, {3, 3}} {
				if !debruijn.RRK(c.d, word.Pow(c.d, c.D)).Equal(debruijn.DeBruijn(c.d, c.D)) {
					return fmt.Errorf("RRK(%d,%d^%d) != B(%d,%d)", c.d, c.d, c.D, c.d, c.D)
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-K=II",
		Statement: "II(d, d^{D-1}(d+1)) ≅ K(d,D) (recalled from [21])",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 3}, {3, 2}} {
				k, _ := debruijn.Kautz(c.d, c.D)
				ii := debruijn.ImaseItoh(c.d, debruijn.KautzOrder(c.d, c.D))
				if _, ok := digraph.FindIsomorphism(ii, k); !ok {
					return fmt.Errorf("II(%d,%d) ≇ K(%d,%d)", c.d, debruijn.KautzOrder(c.d, c.D), c.d, c.D)
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "P3.2",
		Statement: "B_σ(d,D) ≅ B(d,D) via W, for every σ",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 4}, {3, 3}} {
				var failed error
				perm.All(c.d, func(sigma perm.Perm) bool {
					if _, err := debruijn.IsoBSigmaToB(c.d, c.D, sigma.Clone()); err != nil {
						failed = fmt.Errorf("d=%d D=%d σ=%v: %w", c.d, c.D, sigma, err)
						return false
					}
					return true
				})
				if failed != nil {
					return failed
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "P3.3",
		Statement: "B(d,D) ≅ II(d, d^D); in fact B_C(d,D) = II(d,d^D)",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 6}, {3, 3}, {4, 2}} {
				if !debruijn.BBar(c.d, c.D).Equal(debruijn.ImaseItoh(c.d, word.Pow(c.d, c.D))) {
					return fmt.Errorf("B̄(%d,%d) != II as labelled digraphs", c.d, c.D)
				}
				if _, err := debruijn.IsoIIToB(c.d, c.D); err != nil {
					return fmt.Errorf("d=%d D=%d: %w", c.d, c.D, err)
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "C3.4",
		Statement: "B(d,D), RRK(d,d^D), II(d,d^D) pairwise isomorphic",
		Check: func() error {
			mapping, err := debruijn.IsoIIToB(2, 3)
			if err != nil {
				return err
			}
			if err := digraph.VerifyIsomorphism(
				debruijn.ImaseItoh(2, 8), debruijn.RRK(2, 8), mapping); err != nil {
				return err
			}
			return nil
		},
	})

	register(Claim{
		ID:        "R3.8",
		Statement: "B(d,D) = A(ρ, Id, 0) as labelled digraphs",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 5}, {3, 3}} {
				if !alpha.DeBruijnAlpha(c.d, c.D).Digraph().Equal(debruijn.DeBruijn(c.d, c.D)) {
					return fmt.Errorf("A(ρ,Id,0) != B(%d,%d)", c.d, c.D)
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "P3.9",
		Statement: "A(f,σ,j) ≅ B(d,D) iff f cyclic (witness via g(i)=f^i(j))",
		Check: func() error {
			d, D := 2, 4
			var failed error
			perm.All(D, func(f perm.Perm) bool {
				for j := 0; j < D && failed == nil; j++ {
					a := alpha.MustNew(f.Clone(), perm.Complement(d), j)
					if f.IsCyclic() {
						if _, err := a.VerifiedIsoToDeBruijn(); err != nil {
							failed = fmt.Errorf("f=%v j=%d: %w", f, j, err)
						}
					} else if digraph.AreIsomorphic(a.Digraph(), debruijn.DeBruijn(d, D)) {
						failed = fmt.Errorf("f=%v j=%d: non-cyclic f gave B(d,D)", f, j)
					}
				}
				return failed == nil
			})
			return failed
		},
	})

	register(Claim{
		ID:        "R3.10",
		Statement: "non-cyclic components are circuits ⊗ de Bruijn digraphs",
		Check: func() error {
			d, D := 2, 3
			var failed error
			perm.All(D, func(f perm.Perm) bool {
				if f.IsCyclic() {
					return true
				}
				for j := 0; j < D; j++ {
					a := alpha.MustNew(f.Clone(), perm.Identity(d), j)
					if err := a.VerifyDecomposition(); err != nil {
						failed = fmt.Errorf("f=%v j=%d: %w", f, j, err)
						return false
					}
				}
				return true
			})
			return failed
		},
	})

	register(Claim{
		ID:        "X-COUNT",
		Statement: "d!(D-1)! alternative definitions of B(d,D)",
		Check: func() error {
			d, D := 2, 4
			count := 0
			var failed error
			perm.AllCyclic(D, func(f perm.Perm) bool {
				fc := f.Clone()
				perm.All(d, func(sigma perm.Perm) bool {
					a := alpha.MustNew(fc, sigma.Clone(), 0)
					if _, err := a.IsoToDeBruijn(); err != nil {
						failed = err
						return false
					}
					count++
					return true
				})
				return failed == nil
			})
			if failed != nil {
				return failed
			}
			if count != alpha.CountDefinitions(d, D) {
				return fmt.Errorf("enumerated %d, formula %d", count, alpha.CountDefinitions(d, D))
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-CLASS",
		Statement: "exactly 1/D of all (f,σ,j) triples realize B(d,D)",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 3}, {3, 2}} {
				classes := alpha.Classify(c.d, c.D)
				deBruijn, total := alpha.DeBruijnFraction(classes, c.D)
				if deBruijn*c.D != total {
					return fmt.Errorf("d=%d D=%d: %d/%d de Bruijn triples", c.d, c.D, deBruijn, total)
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "ERR-1",
		Statement: "erratum: non-cyclic A(f,σ,j) can still be connected",
		Check: func() error {
			// The paper asserts non-cyclic f ⇒ disconnected, proof
			// omitted. Counterexample: f = (0 1 2) on Z_4 (fixing 3),
			// σ = C, j = 1: the invariant position 3 is complemented
			// every step, making the digraph the single connected
			// component C_2 ⊗ B(2,3). The isomorphism "iff" survives.
			f := perm.MustFromImage([]int{1, 2, 0, 3})
			a := alpha.MustNew(f, perm.Complement(2), 1)
			g := a.Digraph()
			if !g.IsStronglyConnected() {
				return fmt.Errorf("counterexample lost: digraph is disconnected")
			}
			if digraph.AreIsomorphic(g, debruijn.DeBruijn(2, 4)) {
				return fmt.Errorf("counterexample is isomorphic to B(2,4)?!")
			}
			if err := a.VerifyDecomposition(); err != nil {
				return fmt.Errorf("Remark 3.10 fails on counterexample: %w", err)
			}
			return nil
		},
	})
}
