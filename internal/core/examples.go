package core

import (
	"repro/internal/alpha"
	"repro/internal/perm"
)

// Shared fixtures for the paper's worked examples (Section 3.3).

// otisExample331 returns H = A(f, Id, 2) of example 3.3.1 (d = 2,
// dimension 6), isomorphic to B(2, 6).
func otisExample331() *alpha.Alpha {
	f := perm.MustFromFunc(6, func(i int) int {
		switch {
		case i < 3:
			return i + 3
		case i == 3:
			return 2
		default:
			return (i + 2) % 6
		}
	})
	return alpha.MustNew(f, perm.Identity(2), 2)
}

// otisExample332 returns H = A(f, Id, 1) of example 3.3.2 (d = 2,
// dimension 3, f(i) = 2-i), which is disconnected.
func otisExample332() *alpha.Alpha {
	return alpha.MustNew(perm.Complement(3), perm.Identity(2), 1)
}

// Example331 and Example332 are exported for the figure generator.
func Example331() *alpha.Alpha { return otisExample331() }
func Example332() *alpha.Alpha { return otisExample332() }
