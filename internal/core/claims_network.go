package core

import (
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/optics"
	"repro/internal/otis"
	"repro/internal/pops"
)

// Claims about the realized networks' operational properties: fault
// tolerance (connectivity), the explicit Kautz–II witness, the 2-D
// optical packaging, and the Table 1 family law found while reproducing.

func init() {
	register(Claim{
		ID:        "X-CONN",
		Statement: "κ(B(d,D)) = λ = d-1; κ(K(d,D)) = λ = d (fault tolerance)",
		Check: func() error {
			b := debruijn.DeBruijn(3, 3)
			if b.ArcConnectivity() != 2 || b.VertexConnectivity() != 2 {
				return fmt.Errorf("B(3,3) connectivity ≠ 2")
			}
			k := debruijn.ImaseItoh(3, 36) // ≅ K(3,3)
			if k.ArcConnectivity() != 3 || k.VertexConnectivity() != 3 {
				return fmt.Errorf("K(3,3) connectivity ≠ 3")
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-KWIT",
		Statement: "explicit witness K(d,D) ≅ II(d, d^{D-1}(d+1)) (makes [21] constructive)",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 4}, {3, 3}, {4, 2}, {2, 8}} {
				if _, err := debruijn.IsoKautzToII(c.d, c.D); err != nil {
					return fmt.Errorf("d=%d D=%d: %w", c.d, c.D, err)
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-2D",
		Statement: "2-D lenslet packaging realizes the same transpose with far smaller apertures",
		Check: func() error {
			b2, err := optics.NewBench2D(4, 4, 8, 4, optics.DefaultPitch)
			if err != nil {
				return err
			}
			if err := b2.VerifyTranspose(); err != nil {
				return err
			}
			b1, err := optics.NewBench(16, 32, optics.DefaultPitch)
			if err != nil {
				return err
			}
			if b2.MaxArrayExtent() >= b1.Aperture() {
				return fmt.Errorf("2-D packaging did not shrink the aperture")
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-ZANE",
		Statement: "[34]: OTIS(n,n) at degree n is exactly K*_n (64-processor example)",
		Check: func() error {
			for _, n := range []int{8, 64} {
				if err := pops.VerifyZaneCompleteLayout(n); err != nil {
					return err
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-POPS",
		Statement: "intro scaling story: POPS/complete layouts cost Ω(n) optics per machine, de Bruijn costs d per node + Θ(√n) lenses",
		Check: func() error {
			c, err := pops.Compare(2, 8, 16)
			if err != nil {
				return err
			}
			if c.DeBruijnTransceivers >= c.POPSTransceivers ||
				c.POPSTransceivers >= c.CompleteTransceivers {
				return fmt.Errorf("transceiver ordering broken: %+v", c)
			}
			if c.DeBruijnLenses >= c.CompleteLenses {
				return fmt.Errorf("lens ordering broken: %+v", c)
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-FAMILY",
		Statement: "Table 1 rows above 2^D are exactly n = 2^a(2^b+1), a+b=D, b odd, a >= 0",
		Check: func() error {
			for _, D := range []int{8, 9} {
				rows := otis.SearchDegreeDiameter(2, D, 1<<uint(D)+1, 3<<uint(D-1))
				want := map[int]bool{}
				for a := 0; a < D; a++ {
					b := D - a
					if b%2 == 1 {
						want[(1<<uint(a))*((1<<uint(b))+1)] = true
					}
				}
				got := map[int]bool{}
				for _, r := range rows {
					got[r.N] = true
				}
				if len(got) != len(want) {
					return fmt.Errorf("D=%d: got rows %v, family predicts %v", D, got, want)
				}
				for n := range want {
					if !got[n] {
						return fmt.Errorf("D=%d: family member %d missing", D, n)
					}
				}
			}
			return nil
		},
	})
}
