package core

import (
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/machine"
	"repro/internal/optics"
	"repro/internal/simnet"
)

// Self-healing claims: the fault tolerance of X-FAULT re-earned without
// the oracle — the routing layer never reads the fault plan, it detects
// failures by NACK timeout, floods link-state events and patches its
// slabs incrementally.

func init() {
	register(Claim{
		ID: "X-HEAL",
		Statement: "self-healing: single-arc faults converge to loss-free routing with " +
			"no fault oracle, and the lens circuit breaker closes after recovery",
		Check: func() error {
			if err := checkSelfHealSingleArc(); err != nil {
				return err
			}
			return checkLensBreakerHysteresis()
		},
	})
}

// checkSelfHealSingleArc: for sampled single-arc faults of B(3,3) the
// self-healing session must converge during a first all-pairs wave and
// then serve a second wave with zero loss and zero NACKs — the
// steady-state the omniscient router reaches instantly, reached here by
// detection, gossip and slab repair alone.
func checkSelfHealSingleArc() error {
	g := debruijn.DeBruijn(3, 3)
	n := g.N()
	wave := func(release int) []simnet.Packet {
		var pkts []simnet.Packet
		id := 0
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				pkts = append(pkts, simnet.Packet{ID: id, Src: s, Dst: d, Release: release})
				id++
			}
		}
		return pkts
	}
	for u := 0; u < n; u += 3 {
		for k := 0; k < g.OutDegree(u); k++ {
			nw, err := simnet.New(g, simnet.NewTableRouter(g), simnet.DefaultConfig())
			if err != nil {
				return err
			}
			plan := simnet.NewFaultPlanFor(g).LinkDown(0, 0, u, k)
			if err := plan.Err(); err != nil {
				return err
			}
			session, err := nw.SelfHeal(plan, simnet.HealConfig{})
			if err != nil {
				return err
			}
			first, err := session.Run(wave(0))
			if err != nil {
				return err
			}
			if !first.Converged {
				return fmt.Errorf("arc (%d#%d): not converged after wave 1: %v", u, k, first)
			}
			second, err := session.Run(wave(0))
			if err != nil {
				return err
			}
			if second.Dropped != 0 || second.Nacks != 0 {
				return fmt.Errorf("arc (%d#%d): steady state dropped %d, nacks %d",
					u, k, second.Dropped, second.Nacks)
			}
		}
	}
	return nil
}

// checkLensBreakerHysteresis: a transiently dirty lens on the B(3,4)
// machine must trip its breaker, survive quarantine with zero drops,
// and close again via a half-open probe once the optics recover.
func checkLensBreakerHysteresis() error {
	m, err := machine.Build(3, 4, optics.DefaultPitch)
	if err != nil {
		return err
	}
	const lens = 1
	plan, err := m.LensFaultPlan(0, 120, lens)
	if err != nil {
		return err
	}
	breaker, err := machine.NewLensBreaker(m,
		machine.BreakerConfig{Threshold: 3, Window: 32, HoldBase: 48, HoldCap: 512}, nil)
	if err != nil {
		return err
	}
	session, err := m.SelfHeal(plan, simnet.HealConfig{ProbeInterval: 16, Monitor: breaker})
	if err != nil {
		return err
	}
	var pkts []simnet.Packet
	id := 0
	for w := 0; w < 40; w++ {
		for s := 0; s < m.Nodes(); s += 5 {
			for d := 0; d < m.Nodes(); d += 5 {
				if s == d {
					continue
				}
				pkts = append(pkts, simnet.Packet{ID: id, Src: s, Dst: d, Release: w * 8})
				id++
			}
		}
	}
	res, err := session.Run(pkts)
	if err != nil {
		return err
	}
	if res.Dropped != 0 {
		return fmt.Errorf("lens quarantine dropped %d packets: %v", res.Dropped, res)
	}
	tripped, closed := false, false
	for _, tr := range breaker.Transitions() {
		if tr.Lens != lens {
			return fmt.Errorf("innocent lens %d transitioned: %+v", tr.Lens, tr)
		}
		if tr.To == machine.BreakerOpen {
			tripped = true
		}
		if tr.From == machine.BreakerHalfOpen && tr.To == machine.BreakerClosed {
			closed = true
		}
	}
	if !tripped || !closed {
		return fmt.Errorf("hysteresis incomplete (tripped=%v closed=%v): %+v",
			tripped, closed, breaker.Transitions())
	}
	if got := breaker.States()[lens].State; got != machine.BreakerClosed {
		return fmt.Errorf("lens %d breaker ends %v, want closed", lens, got)
	}
	return nil
}
