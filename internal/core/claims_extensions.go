package core

import (
	"bytes"
	"fmt"
	"math/cmplx"
	"math/rand"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/fft"
	"repro/internal/gossip"
	"repro/internal/multistage"
	"repro/internal/otis"
	"repro/internal/viterbi"
)

// Claims for the application substrates the paper motivates but does not
// itself evaluate: the Galileo decoder [11], the FFT [12]/[24], the
// multistage networks [27]/[30], broadcasting/gossiping [3]/[28],
// embeddings [9], and the concluding conjecture.

func init() {
	register(Claim{
		ID:        "X-SEQ",
		Statement: "B(d,D) is Hamiltonian; de Bruijn sequences exist (embeddings [9])",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 6}, {3, 3}} {
				cycle, err := debruijn.HamiltonianCycle(c.d, c.D)
				if err != nil {
					return err
				}
				if err := debruijn.VerifyHamiltonianCycle(debruijn.DeBruijn(c.d, c.D), cycle); err != nil {
					return err
				}
				seq, err := debruijn.Sequence(c.d, c.D)
				if err != nil {
					return err
				}
				if err := debruijn.VerifySequence(c.d, c.D, seq); err != nil {
					return err
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-TREE",
		Statement: "dilation-1 forest of d-1 complete d-ary trees covers B(d,D) minus 0",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 5}, {3, 3}} {
				nodes, err := debruijn.TreeEmbedding(c.d, c.D)
				if err != nil {
					return err
				}
				if err := debruijn.VerifyTreeEmbedding(c.d, c.D, nodes); err != nil {
					return err
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-AUT",
		Statement: "|Aut(B(d,D))| = d! (letterwise actions), |Aut(K(d,D))| = (d+1)!",
		Check: func() error {
			if got := debruijn.DeBruijn(3, 2).AutomorphismCount(0); got != 6 {
				return fmt.Errorf("|Aut(B(3,2))| = %d, want 6", got)
			}
			k, _ := debruijn.Kautz(2, 3)
			if got := k.AutomorphismCount(0); got != 6 {
				return fmt.Errorf("|Aut(K(2,3))| = %d, want 6", got)
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-VITERBI",
		Statement: "Viterbi trellis = B(2,K-1); decoder corrects BSC errors ([11])",
		Check: func() error {
			c := viterbi.NASA()
			trellis := c.TrellisDigraph()
			b := debruijn.DeBruijn(2, c.K-1)
			mapping := make([]int, trellis.N())
			for s := range mapping {
				rev := 0
				for i := 0; i < c.K-1; i++ {
					rev |= (s >> uint(i) & 1) << uint(c.K-2-i)
				}
				mapping[s] = rev
			}
			if err := digraph.VerifyIsomorphism(trellis, b, mapping); err != nil {
				return fmt.Errorf("trellis ≇ B(2,%d): %w", c.K-1, err)
			}
			rng := rand.New(rand.NewSource(99))
			msg := make([]byte, 80)
			for i := range msg {
				msg[i] = byte(rng.Intn(2))
			}
			enc, err := c.Encode(msg)
			if err != nil {
				return err
			}
			noisy, _ := viterbi.BSC(enc, 0.02, rng)
			dec, err := c.Decode(noisy)
			if err != nil {
				return err
			}
			if !bytes.Equal(dec, msg) {
				return fmt.Errorf("decode failed at 2%% BSC")
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-FFT",
		Statement: "Pease FFT stages use only de Bruijn arcs and compute the DFT ([12],[24])",
		Check: func() error {
			if err := fft.VerifyDataflow(8); err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(100))
			x := make([]complex128, 256)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			got, err := fft.Transform(x)
			if err != nil {
				return err
			}
			want := fft.Naive(x)
			for i := range got {
				if cmplx.Abs(got[i]-want[i]) > 1e-6 {
					return fmt.Errorf("FFT bin %d off by %g", i, cmplx.Abs(got[i]-want[i]))
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-BUTTERFLY",
		Statement: "WBF(d,D) ≅ C_D ⊗ B(d,D); ShuffleNet = C_k ⊗ B(d,k) ([27],[30])",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 3}, {3, 2}} {
				mapping := multistage.ButterflyWitness(c.d, c.D)
				if err := digraph.VerifyIsomorphism(
					multistage.WrappedButterfly(c.d, c.D),
					multistage.ButterflyConjunction(c.d, c.D), mapping); err != nil {
					return err
				}
			}
			if !multistage.GEMNET(3, 8, 2).Equal(multistage.ShuffleNet(2, 3)) {
				return fmt.Errorf("GEMNET(3,8,2) != SN(2,3)")
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-STACKS",
		Statement: "non-layout OTIS splits realize stacks of circuit ⊗ de Bruijn networks",
		Check: func() error {
			stacks := otis.RealizedStructure(2, 3, 6)
			if len(stacks) != 2 || stacks[0].Copies != 2 || stacks[1].Copies != 10 {
				return fmt.Errorf("H(8,64,2) stacks = %v", stacks)
			}
			if err := otis.AlphaForLayout(2, 3, 6).VerifyDecomposition(); err != nil {
				return err
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-WALK",
		Statement: "A^D = J for B(d,D); A^D + A^{D-1} = J for K(d,D)",
		Check: func() error {
			if !debruijn.DeBruijn(2, 4).IsWalkRegular(4, 1) {
				return fmt.Errorf("B(2,4): A^4 != J")
			}
			if !debruijn.DeBruijn(3, 2).IsWalkRegular(2, 1) {
				return fmt.Errorf("B(3,2): A^2 != J")
			}
			k, _ := debruijn.Kautz(2, 3)
			if !k.WalkPolynomialIsAllOnes([]int{2, 3}) {
				return fmt.Errorf("K(2,3): A^3 + A^2 != J")
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-LINE",
		Statement: "B(d,D) = L^{D-1}(K*_d), K(d,D) = L^{D-1}(K_{d+1}) (Fiol et al.)",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 3}, {3, 2}} {
				if err := debruijn.VerifyLineIterateCharacterization(c.d, c.D); err != nil {
					return err
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-NECKLACE",
		Statement: "rotation arcs form a 1-factor of B(d,D) with Burnside-many cycles",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{2, 6}, {3, 3}} {
				cycles := debruijn.NecklaceCycles(c.d, c.D)
				if err := debruijn.VerifyNecklaceFactor(c.d, c.D, cycles); err != nil {
					return err
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-GOSSIP",
		Statement: "all-port gossip rounds = diameter; greedy 1-port broadcast near bounds ([3],[28])",
		Check: func() error {
			g := debruijn.DeBruijn(2, 5)
			if got := gossip.GossipAllPort(g); got != 5 {
				return fmt.Errorf("gossip rounds %d, want 5", got)
			}
			s, err := gossip.BroadcastSinglePort(g, 0)
			if err != nil {
				return err
			}
			if err := gossip.VerifySchedule(g, s); err != nil {
				return err
			}
			if s.Length() < gossip.LogLowerBound(g.N()) || s.Length() > 3*6 {
				return fmt.Errorf("broadcast length %d out of bounds", s.Length())
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-CONJ",
		Statement: "conjecture (§5): no OTIS layout with p,q not powers of d",
		Check: func() error {
			for _, c := range []struct{ d, D int }{{4, 2}, {6, 2}, {8, 2}} {
				if np := otis.NonPowerLayouts(otis.ConjectureScan(c.d, c.D)); len(np) != 0 {
					return fmt.Errorf("d=%d D=%d: counterexamples %v", c.d, c.D, np)
				}
			}
			return nil
		},
	})
}
