package core

import (
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/machine"
	"repro/internal/optics"
	"repro/internal/simnet"
)

// End-to-end claims: the assembled machine and the operational regimes.

func init() {
	register(Claim{
		ID:        "X-MACHINE",
		Statement: "end-to-end machine: layout + optics + witness + routing audit",
		Check: func() error {
			m, err := machine.Build(2, 8, optics.DefaultPitch)
			if err != nil {
				return err
			}
			if _, err := m.Audit(); err != nil {
				return err
			}
			res, err := m.Run(simnet.UniformRandom(m.Nodes(), 512, 123))
			if err != nil {
				return err
			}
			if res.Delivered != 512 || res.MaxHops > 8 {
				return fmt.Errorf("machine traffic: %v", res)
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-DEFLECT",
		Statement: "bufferless hot-potato routing delivers everything on B(d,D)",
		Check: func() error {
			g := debruijn.DeBruijn(2, 5)
			dn, err := simnet.NewDeflection(g, 2)
			if err != nil {
				return err
			}
			res := dn.Run(simnet.UniformRandom(g.N(), 300, 124))
			if res.Delivered != 300 {
				return fmt.Errorf("deflection lost packets: %v", res)
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-TDM",
		Statement: "König: d conflict-free TDM slots cover every optical beam",
		Check: func() error {
			g := debruijn.DeBruijn(2, 6)
			factors, err := g.OneFactorization(2)
			if err != nil {
				return err
			}
			return g.VerifyFactorization(factors)
		},
	})

	register(Claim{
		ID:        "X-TOL",
		Statement: "assembly tolerances: ~half-pitch receiver-plane alignment margin",
		Check: func() error {
			b, err := optics.NewBench(16, 32, optics.DefaultPitch)
			if err != nil {
				return err
			}
			tol := b.ReceiverShiftTolerance()
			if tol < b.Pitch/3 {
				return fmt.Errorf("receiver tolerance %.1f µm too tight", tol*1e6)
			}
			if b.MisalignmentErrors(0, 0) != 0 {
				return fmt.Errorf("aligned bench has beam errors")
			}
			return nil
		},
	})
}
