package core

import (
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/machine"
	"repro/internal/optics"
	"repro/internal/simnet"
)

// Runtime robustness claims: the (d-1)-arc-connectivity the paper's
// digraphs promise, exercised as live behaviour — faults injected into a
// running machine, not surgery on a rebuilt graph.

func init() {
	register(Claim{
		ID: "X-FAULT",
		Statement: "runtime faults: single-arc full service, lens faults serve " +
			"every residual-reachable pair, degradation is graceful, blackout is deadlock-free",
		Check: func() error {
			if err := checkSingleArcFaults(); err != nil {
				return err
			}
			if err := checkLensFaults(); err != nil {
				return err
			}
			return checkDegradation()
		},
	})
}

// checkSingleArcFaults: B(3,3) has λ = d-1 = 2, so any single arc fault
// leaves every pair connected; the fault-aware router must deliver 100%
// with bounded stretch for every possible victim arc.
func checkSingleArcFaults() error {
	g := debruijn.DeBruijn(3, 3)
	nw, err := simnet.New(g, simnet.NewTableRouter(g), simnet.DefaultConfig())
	if err != nil {
		return err
	}
	pkts := simnet.UniformRandom(g.N(), 300, 7001)
	for u := 0; u < g.N(); u += 3 {
		for k := 0; k < g.OutDegree(u); k++ {
			plan := simnet.NewFaultPlan().LinkDown(0, 0, u, k)
			res, err := nw.RunWithFaults(pkts, plan, simnet.DefaultFaultConfig())
			if err != nil {
				return err
			}
			if res.Delivered != len(pkts) || res.Dropped != 0 || res.Stuck != 0 {
				return fmt.Errorf("arc (%d#%d) fault lost traffic: %v", u, k, res)
			}
			if res.MaxHops > 3+2 {
				return fmt.Errorf("arc (%d#%d) fault stretched paths to %d hops", u, k, res.MaxHops)
			}
		}
	}
	return nil
}

// checkLensFaults: on the B(3,4) machine (OTIS(9,27), 36 lenses), each
// single lens fault silences a block of nodes — full delivery of an
// arbitrary workload is physically impossible, so the sharp statement is
// conditional: every pair still connected in the residual interconnect
// is served 100%, every other packet is dropped with accounting, and the
// run never deadlocks. Checked exhaustively over all 36 lenses.
func checkLensFaults() error {
	m, err := machine.Build(3, 4, optics.DefaultPitch)
	if err != nil {
		return err
	}
	g := m.Physical
	pkts := simnet.UniformRandom(m.Nodes(), 400, 7002)
	for lens := 0; lens < m.Lenses(); lens++ {
		arcs, err := m.Layout.LensArcs(lens)
		if err != nil {
			return err
		}
		dead := make(map[[2]int]bool, len(arcs))
		for _, a := range arcs {
			dead[a] = true
		}
		residual := digraph.New(g.N())
		for u := 0; u < g.N(); u++ {
			for k, v := range g.Out(u) {
				if !dead[[2]int{u, k}] {
					residual.AddArc(u, v)
				}
			}
		}
		plan, err := m.LensFaultPlan(0, 0, lens)
		if err != nil {
			return err
		}
		res, err := m.RunWithFaults(pkts, plan, simnet.DefaultFaultConfig())
		if err != nil {
			return err
		}
		if res.Stuck != 0 {
			return fmt.Errorf("lens %d fault left %d packets stuck", lens, res.Stuck)
		}
		reach := make(map[int][]int)
		for _, p := range res.Packets {
			dist, ok := reach[p.Src]
			if !ok {
				dist = residual.BFSFrom(p.Src)
				reach[p.Src] = dist
			}
			serviceable := dist[p.Dst] != digraph.Unreachable
			if serviceable && p.Delivered < 0 {
				return fmt.Errorf("lens %d fault lost serviceable packet %d→%d", lens, p.Src, p.Dst)
			}
			if !serviceable && p.Delivered >= 0 {
				return fmt.Errorf("lens %d fault delivered %d→%d across a partition", lens, p.Src, p.Dst)
			}
		}
	}
	return nil
}

// checkDegradation: delivered fraction starts at 1, ends at ~0, and
// decreases (within sampling slack) as the fault rate rises; the 100%
// point terminates with nothing stuck.
func checkDegradation() error {
	g := debruijn.DeBruijn(3, 3)
	rates := []float64{0, 0.02, 0.1, 0.3, 0.6, 1}
	points, err := simnet.DegradationSweep(g, simnet.NewTableRouter(g), rates, 400, 7003, 0)
	if err != nil {
		return err
	}
	if points[0].DeliveredFraction != 1 {
		return fmt.Errorf("fault-free sweep point delivered %v", points[0].DeliveredFraction)
	}
	last := points[len(points)-1]
	if last.DeliveredFraction > 0.05 {
		return fmt.Errorf("total-blackout point delivered %v", last.DeliveredFraction)
	}
	const slack = 0.1 // sampling noise between adjacent rates
	for i := 1; i < len(points); i++ {
		if points[i].DeliveredFraction > points[i-1].DeliveredFraction+slack {
			return fmt.Errorf("degradation not monotone: %v then %v",
				points[i-1], points[i])
		}
	}
	for _, p := range points {
		if p.Delivered+p.Dropped != p.Offered {
			return fmt.Errorf("sweep point leaks packets: %v", p)
		}
	}
	return nil
}
