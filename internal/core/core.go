// Package core orchestrates the paper's results: it registers every
// proposition, corollary, remark, example, table and figure of Coudert,
// Ferreira, Pérennes (IPDPS 2000) as a Claim with a constructive,
// machine-checkable verification, and runs them. The test suite, the
// cmd/figures tool and EXPERIMENTS.md are all driven from this registry,
// so the list below doubles as the reproduction's table of contents.
package core

import (
	"fmt"
	"sort"
	"time"
)

// Claim is one machine-checkable statement from the paper.
type Claim struct {
	// ID is the paper reference, e.g. "P3.9" (Proposition 3.9), "C4.4"
	// (Corollary 4.4), "R2.4" (Remark 2.4), "E3.3.1" (Example 3.3.1),
	// "T1" (Table 1), "F5" (Figure 5), "X-..." (claims this reproduction
	// adds), "ERR-..." (errata found during reproduction).
	ID string
	// Statement is a one-line paraphrase of the claim.
	Statement string
	// Check verifies the claim constructively, returning nil on success.
	Check func() error
}

// Result is the outcome of running one claim.
type Result struct {
	Claim   Claim
	Err     error
	Elapsed time.Duration
}

// OK reports whether the claim verified.
func (r Result) OK() bool { return r.Err == nil }

// String renders "P3.9  ok  (12ms)  <statement>" or the failure.
func (r Result) String() string {
	status := "ok"
	if r.Err != nil {
		status = "FAIL: " + r.Err.Error()
	}
	return fmt.Sprintf("%-8s %-40.40q %8s  %s", r.Claim.ID, r.Claim.Statement,
		r.Elapsed.Round(time.Millisecond), status)
}

var registry []Claim

// register adds a claim; called from init functions in claims_*.go.
func register(c Claim) {
	registry = append(registry, c)
}

// Claims returns the registered claims sorted by ID.
func Claims() []Claim {
	out := make([]Claim, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the claim with the given ID.
func Lookup(id string) (Claim, bool) {
	for _, c := range registry {
		if c.ID == id {
			return c, true
		}
	}
	return Claim{}, false
}

// VerifyAll runs every claim and returns the results in ID order.
func VerifyAll() []Result {
	claims := Claims()
	results := make([]Result, len(claims))
	for i, c := range claims {
		//lint:ignore determinism claim wall time is reporting only, never compared bit-for-bit
		start := time.Now()
		err := c.Check()
		//lint:ignore determinism claim wall time is reporting only, never compared bit-for-bit
		results[i] = Result{Claim: c, Err: err, Elapsed: time.Since(start)}
	}
	return results
}

// Verify runs a single claim by ID.
func Verify(id string) (Result, error) {
	c, ok := Lookup(id)
	if !ok {
		return Result{}, fmt.Errorf("core: unknown claim %q", id)
	}
	//lint:ignore determinism claim wall time is reporting only, never compared bit-for-bit
	start := time.Now()
	err := c.Check()
	//lint:ignore determinism claim wall time is reporting only, never compared bit-for-bit
	return Result{Claim: c, Err: err, Elapsed: time.Since(start)}, nil
}
