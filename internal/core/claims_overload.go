package core

import (
	"fmt"
	"reflect"

	"repro/internal/debruijn"
	"repro/internal/simnet"
)

// Overload claims: saturation is an explicit, measured regime. With
// bounded queues and credit-based backpressure the buffer footprint is
// a property of the topology, not of the offered load, and the
// accounting never loses a packet however hard the sources push.

func init() {
	register(Claim{
		ID: "X-OVERLOAD",
		Statement: "overload: at 1x/2x/4x saturation on B(3,5) with bounded queues, peak " +
			"residency stays under the topology bound, delivery degrades monotonically, " +
			"every run terminates with Delivered+Dropped+Shed == Offered, and same-seed " +
			"runs are byte-identical",
		Check: checkOverloadSaturation,
	})
}

// checkOverloadSaturation drives B(3,5) at multiples of its saturation
// rate under WithQueueCapacity and verifies every leg of the claim. The
// plain engine does not drain survivors when the cycle budget runs out,
// so exact accounting doubles as the no-deadlock proof: a stuck run
// could not reach Delivered + Dropped + Shed == Offered.
func checkOverloadSaturation() error {
	g := debruijn.DeBruijn(3, 5)
	nw, err := simnet.New(g, simnet.NewTableRouter(g), simnet.DefaultConfig())
	if err != nil {
		return err
	}
	const (
		qcap    = 2
		packets = 10000
		seed    = 11
	)
	multiples := []float64{1, 2, 4}
	points, err := nw.SaturationSweep(multiples, packets, seed, simnet.WithQueueCapacity(qcap))
	if err != nil {
		return err
	}
	bound := g.M() * (2*qcap + 1) // qcap queued + (qcap + hopLatency) in the link window, per arc
	for _, pt := range points {
		if pt.Delivered+pt.Dropped+pt.Shed != pt.Offered {
			return fmt.Errorf("%gx: accounting broken: %v", pt.Multiple, pt)
		}
		if pt.PeakResident > bound {
			return fmt.Errorf("%gx: peak residency %d exceeds topology bound %d",
				pt.Multiple, pt.PeakResident, bound)
		}
		if pt.MaxQueue > qcap {
			return fmt.Errorf("%gx: max queue %d exceeds capacity %d", pt.Multiple, pt.MaxQueue, qcap)
		}
	}
	for i := 1; i < len(points); i++ {
		if points[i].DeliveredFraction > points[i-1].DeliveredFraction {
			return fmt.Errorf("delivered fraction rose with load: %v then %v", points[i-1], points[i])
		}
	}
	again, err := nw.SaturationSweep(multiples, packets, seed, simnet.WithQueueCapacity(qcap))
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(points, again) {
		return fmt.Errorf("same-seed sweeps diverged:\n%v\n%v", points, again)
	}
	return nil
}
