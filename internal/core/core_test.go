package core

import (
	"strings"
	"testing"
)

func TestAllClaimsVerify(t *testing.T) {
	for _, r := range VerifyAll() {
		if !r.OK() {
			t.Errorf("%s (%s): %v", r.Claim.ID, r.Claim.Statement, r.Err)
		}
	}
}

func TestRegistryCoverage(t *testing.T) {
	// Every numbered result and evaluation artifact of the paper must be
	// registered.
	wanted := []string{
		"R2.4", "R2.6", "P3.2", "P3.3", "C3.4", "R3.8", "P3.9", "R3.10",
		"P4.1", "C4.2", "P4.3", "C4.4", "S4.3", "S4.4",
		"T1", "F1-3", "F4", "F5", "F6", "F7", "F8",
		"X-II", "X-K=II", "X-COUNT", "X-LENS", "ERR-1",
		"X-SEQ", "X-VITERBI", "X-FFT", "X-BUTTERFLY", "X-STACKS",
		"X-GOSSIP", "X-CONJ", "X-CONN", "X-KWIT", "X-2D", "X-FAMILY",
		"X-ZANE", "X-POPS", "X-TREE", "X-AUT", "X-WALK", "X-NECKLACE",
		"X-MACHINE", "X-DEFLECT", "X-TOL", "X-TDM", "X-LINE", "X-CLASS",
		"X-FAULT", "X-HEAL", "X-OVERLOAD",
	}
	for _, id := range wanted {
		if _, ok := Lookup(id); !ok {
			t.Errorf("claim %s missing from registry", id)
		}
	}
	if len(Claims()) < len(wanted) {
		t.Errorf("registry has %d claims, want at least %d", len(Claims()), len(wanted))
	}
}

func TestClaimsSortedAndDistinct(t *testing.T) {
	claims := Claims()
	seen := map[string]bool{}
	for i, c := range claims {
		if c.ID == "" || c.Statement == "" || c.Check == nil {
			t.Errorf("claim %d incomplete: %+v", i, c)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim id %s", c.ID)
		}
		seen[c.ID] = true
		if i > 0 && claims[i-1].ID > c.ID {
			t.Error("claims not sorted")
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("NOPE"); ok {
		t.Error("unknown id found")
	}
	if _, err := Verify("NOPE"); err == nil {
		t.Error("Verify accepted unknown id")
	}
}

func TestVerifySingle(t *testing.T) {
	r, err := Verify("F6")
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("F6 failed: %v", r.Err)
	}
	if !strings.Contains(r.String(), "F6") {
		t.Errorf("String = %q", r.String())
	}
}

func TestExampleFixtures(t *testing.T) {
	if Example331().Dim() != 6 {
		t.Error("example 3.3.1 dimension wrong")
	}
	if Example332().IsDeBruijn() {
		t.Error("example 3.3.2 should not be de Bruijn")
	}
}
