package core

import (
	"fmt"
	"reflect"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/optics"
	"repro/internal/otis"
	"repro/internal/word"
)

// Claims from Section 4: the OTIS application, Table 1 and the figures.

func init() {
	register(Claim{
		ID:        "F1-3",
		Statement: "Figures 1-3: B(2,3), RRK(2,8), II(2,8) are the same digraph",
		Check: func() error {
			if !debruijn.DeBruijn(2, 3).Equal(debruijn.RRK(2, 8)) {
				return fmt.Errorf("B(2,3) != RRK(2,8)")
			}
			_, err := debruijn.IsoIIToB(2, 3)
			return err
		},
	})

	register(Claim{
		ID:        "F4",
		Statement: "Figure 4: g(i)=f^i(2) = [2 5 1 4 0 3] for example 3.3.1",
		Check: func() error {
			a := otisExample331()
			g, ok := a.GPerm()
			if !ok {
				return fmt.Errorf("g not a permutation")
			}
			want := []int{2, 5, 1, 4, 0, 3}
			for i, w := range want {
				if g.Apply(i) != w {
					return fmt.Errorf("g = %v, want %v", g, want)
				}
			}
			_, err := a.VerifiedIsoToDeBruijn()
			return err
		},
	})

	register(Claim{
		ID:        "F5",
		Statement: "Figure 5: A(C,Id,1) on Z_2^3 splits into C_2⊗B + 2×C_1⊗B",
		Check: func() error {
			a := otisExample332()
			comps := a.Decompose()
			if len(comps) != 3 {
				return fmt.Errorf("%d components, want 3", len(comps))
			}
			return a.VerifyDecomposition()
		},
	})

	register(Claim{
		ID:        "F6",
		Statement: "Figure 6: OTIS(3,6) transpose wiring, optically verified",
		Check: func() error {
			b, err := optics.NewBench(3, 6, optics.DefaultPitch)
			if err != nil {
				return err
			}
			return b.VerifyTranspose()
		},
	})

	register(Claim{
		ID:        "F7",
		Statement: "Figure 7: H(4,8,2) wiring Γ⁺(x3x2x1x0) = {x̄1x̄0αx̄3}",
		Check: func() error {
			g := otis.MustH(4, 8, 2)
			var failed error
			word.Enumerate(2, 4, func(x word.Word) bool {
				for gamma := 0; gamma < 2; gamma++ {
					y := word.MustFromLetters(2,
						1-x.Letter(1), 1-x.Letter(0), gamma, 1-x.Letter(3))
					if !g.HasArc(x.Int(), y.Int()) {
						failed = fmt.Errorf("missing arc %s -> %s", x, y)
						return false
					}
				}
				return true
			})
			return failed
		},
	})

	register(Claim{
		ID:        "F8",
		Statement: "Figure 8: H(4,8,2) ≅ B(2,4)",
		Check: func() error {
			mapping, err := otis.LayoutWitness(2, 2, 3)
			if err != nil {
				return err
			}
			return digraph.VerifyIsomorphism(otis.MustH(4, 8, 2), debruijn.DeBruijn(2, 4), mapping)
		},
	})

	register(Claim{
		ID:        "P4.1",
		Statement: "H(d^p', d^q', d) = A(f, C, p'-1)",
		Check: func() error {
			for _, c := range []struct{ d, pp, qp int }{{2, 2, 3}, {2, 3, 3}, {3, 2, 2}} {
				h := otis.MustH(word.Pow(c.d, c.pp), word.Pow(c.d, c.qp), c.d)
				a := otis.AlphaForLayout(c.d, c.pp, c.qp).Digraph()
				if !h.Equal(a) {
					return fmt.Errorf("H(%d^%d,%d^%d,%d) != A(f,C,%d)", c.d, c.pp, c.d, c.qp, c.d, c.pp-1)
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "C4.2",
		Statement: "layout criterion = cyclicity of the Prop 4.1 permutation",
		Check: func() error {
			d := 2
			for D := 2; D <= 5; D++ {
				b := debruijn.DeBruijn(d, D)
				for pp := 1; pp <= D; pp++ {
					qp := D + 1 - pp
					h := otis.MustH(word.Pow(d, pp), word.Pow(d, qp), d)
					if otis.IsDeBruijnLayout(pp, qp) != digraph.AreIsomorphic(h, b) {
						return fmt.Errorf("criterion disagrees at D=%d split (%d,%d)", D, pp, qp)
					}
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "P4.3",
		Statement: "odd D: balanced split works only for D=1",
		Check: func() error {
			if !otis.IsDeBruijnLayout(1, 1) {
				return fmt.Errorf("D=1 balanced split rejected")
			}
			for pp := 2; pp <= 8; pp++ {
				if otis.IsDeBruijnLayout(pp, pp) {
					return fmt.Errorf("balanced split (%d,%d) accepted", pp, pp)
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "C4.4",
		Statement: "even D: split (D/2, D/2+1) gives Θ(√n) lenses",
		Check: func() error {
			for D := 2; D <= 24; D += 2 {
				if !otis.IsDeBruijnLayout(D/2, D/2+1) {
					return fmt.Errorf("Corollary 4.4 fails at D=%d", D)
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "S4.3",
		Statement: "H(2,256,2), H(4,128,2), H(16,32,2) ≅ B(2,8); H(8,128,2) ≅ B(2,9)",
		Check: func() error {
			for _, c := range []struct{ pp, qp int }{{1, 8}, {2, 7}, {4, 5}, {3, 7}} {
				if !otis.IsDeBruijnLayout(c.pp, c.qp) {
					return fmt.Errorf("split (%d,%d) rejected", c.pp, c.qp)
				}
			}
			if otis.IsDeBruijnLayout(3, 6) {
				return fmt.Errorf("split (3,6) wrongly accepted")
			}
			return nil
		},
	})

	register(Claim{
		ID:        "S4.4",
		Statement: "H(2^5,2^7,2) ≅ B(2,11); H(d^6,d^8,d) ≇ B(d,13)",
		Check: func() error {
			if !otis.IsDeBruijnLayout(5, 7) {
				return fmt.Errorf("(5,7) rejected")
			}
			if otis.IsDeBruijnLayout(6, 8) {
				return fmt.Errorf("(6,8) accepted")
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-II",
		Statement: "[14]: H(d, n, d) = II(d, n) — the O(n)-lens layout",
		Check: func() error {
			for _, c := range []struct{ d, n int }{{2, 256}, {2, 384}, {3, 36}} {
				if err := otis.VerifyIILayout(c.d, c.n); err != nil {
					return err
				}
			}
			return nil
		},
	})

	register(Claim{
		ID:        "T1",
		Statement: "Table 1 (D=8 block): rows 253..256, 258, 264, 288, 384",
		Check: func() error {
			rows := otis.SearchDegreeDiameter(2, 8, 253, digraph.MooreBound(2, 8))
			want := []otis.TableRow{
				{N: 253, Pairs: [][2]int{{2, 253}}},
				{N: 254, Pairs: [][2]int{{2, 254}}},
				{N: 255, Pairs: [][2]int{{2, 255}}},
				{N: 256, Pairs: [][2]int{{2, 256}, {4, 128}, {16, 32}}, Note: "B(2,8)"},
				{N: 258, Pairs: [][2]int{{2, 258}}},
				{N: 264, Pairs: [][2]int{{2, 264}}},
				{N: 288, Pairs: [][2]int{{2, 288}}},
				{N: 384, Pairs: [][2]int{{2, 384}}, Note: "K(2,8)"},
			}
			if !reflect.DeepEqual(rows, want) {
				return fmt.Errorf("Table 1 D=8 block mismatch:\n got %v\nwant %v", rows, want)
			}
			return nil
		},
	})

	register(Claim{
		ID:        "X-LENS",
		Statement: "headline: Θ(√n) lenses vs O(n) baseline",
		Check: func() error {
			for D := 4; D <= 16; D += 2 {
				pp, qp, lenses, ok := otis.MinimizeLenses(2, D)
				if !ok {
					return fmt.Errorf("no layout at D=%d", D)
				}
				if pp != D/2 || qp != D/2+1 {
					return fmt.Errorf("D=%d: optimal split (%d,%d)", D, pp, qp)
				}
				n := word.Pow(2, D)
				if lenses*lenses > 16*n {
					return fmt.Errorf("D=%d: %d lenses is not O(√n)", D, lenses)
				}
				if otis.IILayoutLenses(2, n) <= lenses {
					return fmt.Errorf("D=%d: baseline beat the optimized layout", D)
				}
			}
			return nil
		},
	})
}
