package debruijn

import (
	"fmt"

	"repro/internal/digraph"
)

// Line-digraph iteration: the structural origin of both families. Fiol,
// Yebra and Alegre characterized the de Bruijn and Kautz digraphs as
// iterated line digraphs:
//
//	B(d, D) = L^{D-1}(B(d, 1)) = L^{D-1}(K*_d)
//	K(d, D) = L^{D-1}(K(d, 1)) = L^{D-1}(K_{d+1} without loops)
//
// which also explains why both satisfy walk-algebra identities and why
// the Imase–Itoh congruence family contains both. LineIterate materializes
// L^k(G) so the tests can confirm the characterization against the word
// constructions.

// LineIterate returns L^k(g) (k ≥ 0; L^0(g) = g).
func LineIterate(g *digraph.Digraph, k int) (*digraph.Digraph, error) {
	if k < 0 {
		return nil, fmt.Errorf("debruijn: negative line iterate %d", k)
	}
	cur := g.Clone()
	for i := 0; i < k; i++ {
		next, _ := digraph.LineDigraph(cur)
		cur = next
	}
	return cur, nil
}

// CompleteLoopless returns K_{m} without loops — K(d, 1) for m = d+1.
func CompleteLoopless(m int) *digraph.Digraph {
	g := digraph.New(m)
	for u := 0; u < m; u++ {
		for v := 0; v < m; v++ {
			if u != v {
				g.AddArc(u, v)
			}
		}
	}
	return g
}

// VerifyLineIterateCharacterization checks both identities for the given
// degree and diameter using the generic isomorphism search; intended for
// the small instances in the tests.
func VerifyLineIterateCharacterization(d, D int) error {
	lb, err := LineIterate(digraph.CompleteWithLoops(d), D-1)
	if err != nil {
		return err
	}
	if _, ok := digraph.FindIsomorphism(lb, DeBruijn(d, D)); !ok {
		return fmt.Errorf("debruijn: L^%d(K*_%d) ≇ B(%d,%d)", D-1, d, d, D)
	}
	lk, err := LineIterate(CompleteLoopless(d+1), D-1)
	if err != nil {
		return err
	}
	k, _ := Kautz(d, D)
	if _, ok := digraph.FindIsomorphism(lk, k); !ok {
		return fmt.Errorf("debruijn: L^%d(K_%d) ≇ K(%d,%d)", D-1, d+1, d, D)
	}
	return nil
}
