package debruijn

import (
	"fmt"
	"math"

	"repro/internal/digraph"
	"repro/internal/word"
)

// Shortest-path routing and broadcasting on B(d, D). The paper motivates
// de Bruijn networks by their routing and broadcasting literature
// ([19], [28], [3]); these routines give the library a working control
// plane and let the simulator route without per-node BFS tables.

// Distance returns the directed distance from src to dst in B(d, D):
// D minus the longest overlap between a suffix of src and a prefix of dst
// (0 when src = dst).
func Distance(src, dst word.Word) int {
	if src.Equal(dst) {
		return 0
	}
	return src.Len() - word.OverlapSuffixPrefix(src, dst)
}

// Route returns a shortest directed path from src to dst in B(d, D) as a
// word sequence including both endpoints. The path repeatedly left-shifts
// in the remaining letters of dst, the classical de Bruijn self-routing
// rule: the hop sequence is determined by dst alone once the overlap is
// known.
func Route(src, dst word.Word) []word.Word {
	if src.D() != dst.D() || src.Len() != dst.Len() {
		panic("debruijn: route endpoints from different digraphs")
	}
	D := src.Len()
	k := word.OverlapSuffixPrefix(src, dst)
	if src.Equal(dst) {
		return []word.Word{src}
	}
	path := make([]word.Word, 0, D-k+1)
	path = append(path, src)
	cur := src
	// After an overlap of length k, the letters still to arrive are dst
	// positions D-k-1 down to 0, fed in most significant first.
	for step := D - k - 1; step >= 0; step-- {
		cur = cur.LeftShiftAppend(dst.Letter(step))
		path = append(path, cur)
	}
	return path
}

// RouteInts is Route on Horner labels, for callers holding integer vertex
// ids (e.g. the network simulator).
func RouteInts(d, D, src, dst int) []int {
	sw := word.MustFromInt(d, D, src)
	dw := word.MustFromInt(d, D, dst)
	path := Route(sw, dw)
	out := make([]int, len(path))
	for i, w := range path {
		out[i] = w.Int()
	}
	return out
}

// NextHop returns the next vertex after src on the canonical shortest path
// to dst, and ok=false when src = dst.
func NextHop(src, dst word.Word) (word.Word, bool) {
	if src.Equal(dst) {
		return src, false
	}
	D := src.Len()
	k := word.OverlapSuffixPrefix(src, dst)
	return src.LeftShiftAppend(dst.Letter(D - k - 1)), true
}

// BroadcastTree returns a BFS arborescence of B(d, D) rooted at root
// (Horner label): parent[v] is the predecessor of v, parent[root] = -1, and
// depth[v] the arc distance from the root. Every vertex is reached within
// depth D, the diameter.
func BroadcastTree(d, D, root int) (parent, depth []int) {
	g := DeBruijn(d, D)
	n := g.N()
	parent = make([]int, n)
	depth = make([]int, n)
	for i := range parent {
		parent[i] = -2
		depth[i] = -1
	}
	parent[root] = -1
	depth[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Out(u) {
			if parent[v] == -2 {
				parent[v] = u
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return parent, depth
}

// NextHopSlab is the flat shared-slab form of a next-hop routing table:
// one []int32 holding, for every ordered pair (u, dst), the first hop on
// a shortest u→dst path (-1 when unreachable, u when u = dst). One
// contiguous allocation of 4 bytes per pair replaces the n ragged []int
// rows of the historical [][]int table — a quarter of the memory and one
// cache-friendly stride — and it is built in a single reverse-BFS pass
// per destination, with the hop recorded at vertex-discovery time rather
// than by a post-hoc scan of the out-neighbourhood.
//
// When several shortest first hops exist the slab stores the one whose
// head was dequeued first in the reverse BFS; callers must rely only on
// the distance class (every stored hop strictly decreases the distance
// to dst), not on a particular tie-break.
type NextHopSlab struct {
	n    int
	hops []int32
}

// guardSlabInt32 panics unless count distinct ids fit the slab's int32
// entries; one call at builder entry dominates every narrowing below it.
func guardSlabInt32(count int, what string) {
	if int64(count) > math.MaxInt32 {
		panic(fmt.Sprintf("debruijn: %d %s exceed the int32 slab entry range", count, what))
	}
}

// NewNextHopSlab builds the slab for an arbitrary digraph.
func NewNextHopSlab(g *digraph.Digraph) *NextHopSlab {
	n := g.N()
	guardSlabInt32(n, "nodes")
	guardSlabInt32(g.M(), "arcs")
	// CSR of the reverse digraph: revTail lists, for each head vertex v,
	// the tails u of arcs u→v, so the BFS from dst walks arcs backwards
	// without materializing a second Digraph.
	base := make([]int32, n+1)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			base[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		base[v+1] += base[v]
	}
	revTail := make([]int32, g.M())
	fill := make([]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			revTail[base[v]+fill[v]] = int32(u)
			fill[v]++
		}
	}

	hops := make([]int32, n*n)
	for i := range hops {
		hops[i] = -1
	}
	seen := make([]int32, n) // epoch marks: seen[u] == dst+1 ⇔ visited this pass
	queue := make([]int32, 0, n)
	for dst := 0; dst < n; dst++ {
		epoch := int32(dst + 1)
		seen[dst] = epoch
		hops[dst*n+dst] = int32(dst)
		queue = append(queue[:0], int32(dst))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for idx := base[v]; idx < base[v+1]; idx++ {
				u := revTail[idx]
				if seen[u] == epoch {
					continue
				}
				seen[u] = epoch
				// Discovering u from v means arc u→v starts a shortest
				// u→dst path: the next hop is v itself.
				hops[int(u)*n+dst] = v
				queue = append(queue, u)
			}
		}
	}
	return &NextHopSlab{n: n, hops: hops}
}

// N returns the vertex count the slab was built for.
func (s *NextHopSlab) N() int { return s.n }

// Hop returns the first hop on a shortest u→dst path, -1 when dst is
// unreachable from u, and u itself when u = dst.
func (s *NextHopSlab) Hop(u, dst int) int { return int(s.hops[u*s.n+dst]) }

// Footprint returns the bytes held by the slab's table storage.
func (s *NextHopSlab) Footprint() int { return 4 * len(s.hops) }

// RoutingTable builds next-hop routing tables for an arbitrary strongly
// connected digraph: table[u][v] is the first hop on a shortest u→v path
// (table[u][u] = u, -1 when unreachable). Used by the simulator for
// non-de Bruijn topologies, and by tests to cross-check Route against
// true shortest paths. It is a compatibility view over NextHopSlab: the
// rows are slices of one backing slab and any shortest first hop may be
// reported; prefer NextHopSlab directly in new code.
func RoutingTable(g *digraph.Digraph) [][]int {
	s := NewNextHopSlab(g)
	n := s.n
	flat := make([]int, n*n)
	table := make([][]int, n)
	for u := 0; u < n; u++ {
		row := flat[u*n : (u+1)*n : (u+1)*n]
		for v := 0; v < n; v++ {
			row[v] = int(s.hops[u*n+v])
		}
		table[u] = row
	}
	return table
}
