package debruijn

import (
	"repro/internal/digraph"
	"repro/internal/word"
)

// Shortest-path routing and broadcasting on B(d, D). The paper motivates
// de Bruijn networks by their routing and broadcasting literature
// ([19], [28], [3]); these routines give the library a working control
// plane and let the simulator route without per-node BFS tables.

// Distance returns the directed distance from src to dst in B(d, D):
// D minus the longest overlap between a suffix of src and a prefix of dst
// (0 when src = dst).
func Distance(src, dst word.Word) int {
	if src.Equal(dst) {
		return 0
	}
	return src.Len() - word.OverlapSuffixPrefix(src, dst)
}

// Route returns a shortest directed path from src to dst in B(d, D) as a
// word sequence including both endpoints. The path repeatedly left-shifts
// in the remaining letters of dst, the classical de Bruijn self-routing
// rule: the hop sequence is determined by dst alone once the overlap is
// known.
func Route(src, dst word.Word) []word.Word {
	if src.D() != dst.D() || src.Len() != dst.Len() {
		panic("debruijn: route endpoints from different digraphs")
	}
	D := src.Len()
	k := word.OverlapSuffixPrefix(src, dst)
	if src.Equal(dst) {
		return []word.Word{src}
	}
	path := make([]word.Word, 0, D-k+1)
	path = append(path, src)
	cur := src
	// After an overlap of length k, the letters still to arrive are dst
	// positions D-k-1 down to 0, fed in most significant first.
	for step := D - k - 1; step >= 0; step-- {
		cur = cur.LeftShiftAppend(dst.Letter(step))
		path = append(path, cur)
	}
	return path
}

// RouteInts is Route on Horner labels, for callers holding integer vertex
// ids (e.g. the network simulator).
func RouteInts(d, D, src, dst int) []int {
	sw := word.MustFromInt(d, D, src)
	dw := word.MustFromInt(d, D, dst)
	path := Route(sw, dw)
	out := make([]int, len(path))
	for i, w := range path {
		out[i] = w.Int()
	}
	return out
}

// NextHop returns the next vertex after src on the canonical shortest path
// to dst, and ok=false when src = dst.
func NextHop(src, dst word.Word) (word.Word, bool) {
	if src.Equal(dst) {
		return src, false
	}
	D := src.Len()
	k := word.OverlapSuffixPrefix(src, dst)
	return src.LeftShiftAppend(dst.Letter(D - k - 1)), true
}

// BroadcastTree returns a BFS arborescence of B(d, D) rooted at root
// (Horner label): parent[v] is the predecessor of v, parent[root] = -1, and
// depth[v] the arc distance from the root. Every vertex is reached within
// depth D, the diameter.
func BroadcastTree(d, D, root int) (parent, depth []int) {
	g := DeBruijn(d, D)
	n := g.N()
	parent = make([]int, n)
	depth = make([]int, n)
	for i := range parent {
		parent[i] = -2
		depth[i] = -1
	}
	parent[root] = -1
	depth[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Out(u) {
			if parent[v] == -2 {
				parent[v] = u
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return parent, depth
}

// RoutingTable builds next-hop routing tables for an arbitrary strongly
// connected digraph: table[u][v] is the first hop on a shortest u→v path
// (table[u][u] = u). Used by the simulator for non-de Bruijn topologies,
// and by tests to cross-check Route against true shortest paths.
func RoutingTable(g *digraph.Digraph) [][]int {
	n := g.N()
	table := make([][]int, n)
	rev := g.Reverse()
	for dst := 0; dst < n; dst++ {
		// BFS on the reverse digraph from dst gives distances to dst.
		dist := rev.BFSFrom(dst)
		for u := 0; u < n; u++ {
			if table[u] == nil {
				table[u] = make([]int, n)
				for i := range table[u] {
					table[u][i] = -1
				}
			}
			if u == dst {
				table[u][dst] = u
				continue
			}
			if dist[u] == digraph.Unreachable {
				continue
			}
			for _, v := range g.Out(u) {
				if dist[v] != digraph.Unreachable && dist[v] == dist[u]-1 {
					table[u][dst] = v
					break
				}
			}
		}
	}
	return table
}
