package debruijn

import (
	"testing"

	"repro/internal/digraph"
	"repro/internal/perm"
)

// TestRecognizeAcceptsCongruenceForm: every graph DeBruijn emits — and
// RRK at n = d^D, which is the same congruence — must be recognized with
// the right parameters.
func TestRecognizeAcceptsCongruenceForm(t *testing.T) {
	for _, tc := range []struct{ d, D int }{
		{1, 1}, {2, 1}, {2, 3}, {2, 10}, {3, 4}, {4, 3}, {5, 2}, {7, 1},
	} {
		g := DeBruijn(tc.d, tc.D)
		d, D, ok := Recognize(g)
		if !ok || d != tc.d || D != tc.D {
			t.Fatalf("Recognize(B(%d,%d)) = (%d, %d, %v), want (%d, %d, true)",
				tc.d, tc.D, d, D, ok, tc.d, tc.D)
		}
	}
	// RRK(d, d^D) is B(d, D) verbatim.
	if d, D, ok := Recognize(RRK(3, 27)); !ok || d != 3 || D != 3 {
		t.Fatalf("Recognize(RRK(3, 27)) = (%d, %d, %v), want (3, 3, true)", d, D, ok)
	}
	// BSigma with the identity permutation is also B(d, D) verbatim.
	if d, D, ok := Recognize(BSigma(2, 4, perm.Identity(2))); !ok || d != 2 || D != 4 {
		t.Fatalf("Recognize(BSigma(2,4,id)) = (%d, %d, %v), want (2, 4, true)", d, D, ok)
	}
}

// TestRecognizeRejectsNonCongruence: graphs that are not the
// congruence-form B(d, D) — including ones isomorphic to it — must be
// rejected, because shift routing reads the labels, not the isomorphism
// class.
func TestRecognizeRejectsNonCongruence(t *testing.T) {
	kautz, _ := Kautz(2, 3)
	cases := []struct {
		name string
		g    *digraph.Digraph
	}{
		{"nil", nil},
		{"Kautz(2,3)", kautz},
		{"ImaseItoh(2,12)", ImaseItoh(2, 12)},
		{"RRK non-power order", RRK(2, 12)},
		{"BBar(2,4) complemented labels", BBar(2, 4)},
		{"relabelled isomorph of B(2,3)", relabel(DeBruijn(2, 3))},
		{"non-regular", digraph.FromFunc(4, func(u int) []int {
			if u == 0 {
				return []int{1, 2}
			}
			return []int{(u + 1) % 4}
		})},
		{"right order, wrong arcs", digraph.FromFunc(8, func(u int) []int {
			return []int{(2*u + 1) % 8, (2 * u) % 8} // swapped letter order
		})},
	}
	for _, tc := range cases {
		if d, D, ok := Recognize(tc.g); ok {
			t.Fatalf("%s: Recognize accepted as B(%d,%d)", tc.name, d, D)
		}
	}
}

// relabel returns g with its vertices renamed by the involution
// u ↦ n−1−u: isomorphic to g, but no longer in congruence labels (the
// same trap OTIS physical layouts fall into).
func relabel(g *digraph.Digraph) *digraph.Digraph {
	n := g.N()
	return digraph.FromFunc(n, func(u int) []int {
		src := g.Out(n - 1 - u)
		out := make([]int, len(src))
		for i, v := range src {
			out[i] = n - 1 - v
		}
		return out
	})
}
