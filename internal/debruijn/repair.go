package debruijn

import (
	"fmt"

	"repro/internal/digraph"
)

// Incremental routing repair. When arcs fail at runtime the control
// plane needs the residual next-hop slab, but a from-scratch
// NewNextHopSlab re-runs one reverse BFS per destination — O(n·(n+m))
// — even though a small fault set leaves most destinations' routing
// trees untouched. RepairSlab patches instead: it finds the
// destinations whose shortest-path tree actually traverses a dead arc
// and re-runs the builder's reverse BFS only for those, over the same
// CSR with the dead arcs masked.
//
// Because the masked per-destination BFS is executionally identical to
// the from-scratch builder's (same reverse CSR order, same dequeue
// discipline), the patched slab is bit-identical to
// NewNextHopSlab(residual), tie-breaks included — the property the
// repair tests assert. The affected-destination test is exact, not
// heuristic: a dead arc (u, k) with head v changes the BFS execution
// for destination dst only if u was being discovered from v at that
// scan, which is precisely when base records hop v for (u, dst).

// RepairSlab returns a copy of base — the slab NewNextHopSlab built for
// g — patched to the residual digraph of g minus the dead arcs, given
// as (tail, adjacency position) pairs. Only destinations whose routing
// tree traverses a dead arc are recomputed; the result equals
// NewNextHopSlab of the residual digraph bit for bit. base is not
// modified.
func RepairSlab(g *digraph.Digraph, base *NextHopSlab, dead [][2]int) (*NextHopSlab, error) {
	n := g.N()
	if base == nil || base.n != n {
		return nil, fmt.Errorf("debruijn: RepairSlab: base slab built for %d nodes, digraph has %d", baseN(base), n)
	}
	guardSlabInt32(n, "nodes")
	guardSlabInt32(g.M(), "arcs")

	// Forward CSR bases give every arc a flat index for the dead mask.
	fwdBase := make([]int32, n+1)
	for u := 0; u < n; u++ {
		fwdBase[u+1] = fwdBase[u] + int32(g.OutDegree(u))
	}
	deadMask := make([]bool, g.M())
	for _, a := range dead {
		u, k := a[0], a[1]
		if u < 0 || u >= n || k < 0 || k >= g.OutDegree(u) {
			return nil, fmt.Errorf("debruijn: RepairSlab: dead arc (%d#%d) out of range", u, k)
		}
		deadMask[fwdBase[u]+int32(k)] = true
	}

	hops := make([]int32, len(base.hops))
	copy(hops, base.hops)

	// Exact affected-destination set: dst is touched iff some dead arc
	// (u, k) with head v is the recorded hop of (u, dst). Loops never
	// carry shortest paths and are skipped.
	affected := make([]bool, n)
	count := 0
	for _, a := range dead {
		u, k := a[0], a[1]
		v := int32(g.Out(u)[k])
		if int(v) == u {
			continue
		}
		row := base.hops[u*n : (u+1)*n]
		for dst, hop := range row {
			if hop == v && !affected[dst] {
				affected[dst] = true
				count++
			}
		}
	}
	if count == 0 {
		return &NextHopSlab{n: n, hops: hops}, nil
	}

	// Reverse CSR in the builder's order, with each entry's forward flat
	// index carried for masking.
	revBase := make([]int32, n+1)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			revBase[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		revBase[v+1] += revBase[v]
	}
	revTail := make([]int32, g.M())
	revFlat := make([]int32, g.M())
	fill := make([]int32, n)
	for u := 0; u < n; u++ {
		for k, v := range g.Out(u) {
			slot := revBase[v] + fill[v]
			revTail[slot] = int32(u)
			revFlat[slot] = fwdBase[u] + int32(k)
			fill[v]++
		}
	}

	seen := make([]int32, n)
	queue := make([]int32, 0, n)
	repatchHops(hops, n, affected, deadMask, revBase, revTail, revFlat, seen, queue)
	return &NextHopSlab{n: n, hops: hops}, nil
}

// repatchHops re-runs the builder's reverse BFS for every affected
// destination over the dead-arc-masked reverse CSR, rewriting those
// destinations' columns of hops in place. This is the repair inner loop,
// so it must not allocate: every slab, including the BFS queue
// (cap ≥ n), arrives preallocated.
//
//lint:hotpath
func repatchHops(hops []int32, n int, affected, deadMask []bool, revBase, revTail, revFlat, seen, queue []int32) {
	guardSlabInt32(n, "nodes")
	for dst := 0; dst < n; dst++ {
		if !affected[dst] {
			continue
		}
		for x := 0; x < n; x++ {
			hops[x*n+dst] = -1
		}
		epoch := int32(dst + 1)
		seen[dst] = epoch
		hops[dst*n+dst] = int32(dst)
		queue = append(queue[:0], int32(dst))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for idx := revBase[v]; idx < revBase[v+1]; idx++ {
				if deadMask[revFlat[idx]] {
					continue
				}
				u := revTail[idx]
				if seen[u] == epoch {
					continue
				}
				seen[u] = epoch
				hops[int(u)*n+dst] = v
				queue = append(queue, u)
			}
		}
	}
}

func baseN(s *NextHopSlab) int {
	if s == nil {
		return 0
	}
	return s.n
}
