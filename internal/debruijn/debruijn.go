// Package debruijn implements the de Bruijn digraph B(d, D) and its
// relatives studied in Coudert, Ferreira, Pérennes, "De Bruijn Isomorphisms
// and Free Space Optical Networks" (IPDPS 2000): the alphabet-permuted
// digraph B_σ(d, D) (Definition 3.1), the Reddy–Raghavan–Kuhl digraph
// RRK(d, n) (Definition 2.5), the Imase–Itoh digraph II(d, n)
// (Definition 2.8) and the Kautz digraph K(d, D) (Definition 2.7), together
// with the explicit isomorphism witnesses of Propositions 3.2 and 3.3.
//
// Throughout, word vertices are identified with integers via the Horner
// correspondence u = Σ x_i d^i of Remark 2.6, so every digraph in this
// package has vertex set Z_n.
package debruijn

import (
	"fmt"

	"repro/internal/digraph"
	"repro/internal/perm"
	"repro/internal/word"
)

// DeBruijn returns B(d, D) (Definition 2.2) on vertex set Z_{d^D} in the
// congruence form of Remark 2.6: Γ⁺(u) = {du + α mod d^D : 0 ≤ α < d}.
// Out-neighbour α of u is listed at adjacency position α.
func DeBruijn(d, D int) *digraph.Digraph {
	if d < 1 || D < 1 {
		panic("debruijn: need d >= 1 and D >= 1")
	}
	n := word.Pow(d, D)
	return digraph.FromFunc(n, func(u int) []int {
		out := make([]int, d)
		for alpha := 0; alpha < d; alpha++ {
			out[alpha] = (d*u + alpha) % n
		}
		return out
	})
}

// Successors returns the out-neighbours of word x in B(d, D) in word form:
// x_{D-2} ... x_1 x_0 α for α ∈ Z_d (Definition 2.2).
func Successors(x word.Word) []word.Word {
	d := x.D()
	out := make([]word.Word, d)
	for alpha := 0; alpha < d; alpha++ {
		out[alpha] = x.LeftShiftAppend(alpha)
	}
	return out
}

// RRK returns the Reddy–Raghavan–Kuhl digraph RRK(d, n) (Definition 2.5):
// vertex set Z_n with Γ⁺(u) = {du + α : 0 ≤ α < d}, arithmetic mod n.
// RRK(d, d^D) is (by construction, Remark 2.6) the same labelled digraph as
// DeBruijn(d, D).
func RRK(d, n int) *digraph.Digraph {
	if d < 1 || n < 1 {
		panic("debruijn: need d >= 1 and n >= 1")
	}
	return digraph.FromFunc(n, func(u int) []int {
		out := make([]int, d)
		for alpha := 0; alpha < d; alpha++ {
			out[alpha] = (d*u + alpha) % n
		}
		return out
	})
}

// ImaseItoh returns the Imase–Itoh digraph II(d, n) (Definition 2.8):
// vertex set Z_n with Γ⁺(u) = {−du − α : 1 ≤ α ≤ d}, arithmetic mod n.
func ImaseItoh(d, n int) *digraph.Digraph {
	if d < 1 || n < 1 {
		panic("debruijn: need d >= 1 and n >= 1")
	}
	return digraph.FromFunc(n, func(u int) []int {
		out := make([]int, d)
		for alpha := 1; alpha <= d; alpha++ {
			v := (-d*u - alpha) % n
			if v < 0 {
				v += n
			}
			out[alpha-1] = v
		}
		return out
	})
}

// BSigma returns B_σ(d, D) (Definition 3.1): vertices are the words of
// length D over Z_d (Horner-labelled), and
// Γ⁺(x_{D-1} ... x_0) = {σ(x_{D-2}) ... σ(x_0) α : α ∈ Z_d}.
// BSigma(d, D, Identity) equals DeBruijn(d, D).
func BSigma(d, D int, sigma perm.Perm) *digraph.Digraph {
	if sigma.N() != d {
		panic("debruijn: alphabet permutation size mismatch")
	}
	n := word.Pow(d, D)
	rho := perm.CyclicShift(D)
	return digraph.FromFunc(n, func(u int) []int {
		x := word.MustFromInt(d, D, u)
		shifted := x.ApplyIndex(rho).ApplyAlphabet(sigma)
		out := make([]int, d)
		for alpha := 0; alpha < d; alpha++ {
			out[alpha] = shifted.WithLetter(0, alpha).Int()
		}
		return out
	})
}

// BBar returns B̄(d, D) = B_C(d, D), the complement-alphabet de Bruijn used
// in the proof of Proposition 3.3. In congruence form its adjacency is
// Γ⁺(u) = {−du − α : 1 ≤ α ≤ d}, i.e. exactly II(d, d^D).
func BBar(d, D int) *digraph.Digraph {
	return BSigma(d, D, perm.Complement(d))
}

// Kautz returns the Kautz digraph K(d, D) (Definition 2.7): vertices are
// words of length D over Z_{d+1} with x_i ≠ x_{i+1}, and
// Γ⁺(x_{D-1} ... x_0) = {x_{D-2} ... x_0 α : α ≠ x_0}. It has
// n = d^{D-1}(d+1) vertices. The second return value maps vertex ids to
// their words. Vertex ids follow increasing Horner value over Z_{d+1}.
func Kautz(d, D int) (*digraph.Digraph, []word.Word) {
	if d < 1 || D < 1 {
		panic("debruijn: need d >= 1 and D >= 1")
	}
	var words []word.Word
	idOf := make(map[int]int)
	word.Enumerate(d+1, D, func(w word.Word) bool {
		for i := 0; i+1 < D; i++ {
			if w.Letter(i) == w.Letter(i+1) {
				return true // skip words with equal consecutive letters
			}
		}
		idOf[w.Int()] = len(words)
		words = append(words, w)
		return true
	})
	wantN := KautzOrder(d, D)
	if len(words) != wantN {
		panic(fmt.Sprintf("debruijn: Kautz enumeration produced %d words, want %d", len(words), wantN))
	}
	g := digraph.FromFunc(len(words), func(u int) []int {
		x := words[u]
		out := make([]int, 0, d)
		for alpha := 0; alpha <= d; alpha++ {
			if alpha == x.Letter(0) {
				continue
			}
			out = append(out, idOf[x.LeftShiftAppend(alpha).Int()])
		}
		return out
	})
	return g, words
}

// KautzOrder returns the number of vertices of K(d, D): d^{D-1}(d + 1).
func KautzOrder(d, D int) int {
	return word.Pow(d, D-1) * (d + 1)
}

// Order returns d^D, the number of vertices of B(d, D).
func Order(d, D int) int { return word.Pow(d, D) }
