package debruijn

import (
	"testing"

	"repro/internal/word"
)

func TestNecklaceCountBurnside(t *testing.T) {
	// Known necklace numbers.
	cases := []struct{ d, D, want int }{
		{2, 1, 2}, {2, 2, 3}, {2, 3, 4}, {2, 4, 6}, {2, 5, 8}, {2, 6, 14},
		{3, 2, 6}, {3, 3, 11}, {4, 2, 10},
	}
	for _, c := range cases {
		if got := NecklaceCount(c.d, c.D); got != c.want {
			t.Errorf("NecklaceCount(%d,%d) = %d, want %d", c.d, c.D, got, c.want)
		}
	}
}

func TestNecklaceCyclesAreAFactor(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 4}, {2, 7}, {3, 3}, {4, 2}} {
		cycles := NecklaceCycles(c.d, c.D)
		if err := VerifyNecklaceFactor(c.d, c.D, cycles); err != nil {
			t.Errorf("d=%d D=%d: %v", c.d, c.D, err)
		}
	}
}

func TestNecklaceCycleOfConstantWords(t *testing.T) {
	// Constant words are fixed by rotation: d singleton cycles (the
	// loops of B(d,D)).
	cycles := NecklaceCycles(3, 4)
	singletons := 0
	for _, c := range cycles {
		if len(c) == 1 {
			singletons++
		}
	}
	if singletons != 3 {
		t.Errorf("%d singleton cycles, want 3", singletons)
	}
}

func TestRotationFactorDigraph(t *testing.T) {
	f := RotationFactorDigraph(2, 5)
	if !f.IsOutRegular(1) || !f.IsInRegular(1) {
		t.Fatal("rotation factor is not a permutation digraph")
	}
	// Every factor arc is a de Bruijn arc.
	b := DeBruijn(2, 5)
	for u := 0; u < f.N(); u++ {
		if !b.HasArc(u, f.Out(u)[0]) {
			t.Fatalf("factor arc (%d,%d) not in B(2,5)", u, f.Out(u)[0])
		}
	}
}

func TestWalkIdentityDeBruijn(t *testing.T) {
	// A^D = J: exactly one length-D walk between any ordered pair — the
	// sharpest characterization of B(d,D) this library checks.
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 5}, {3, 2}, {3, 3}, {4, 2}} {
		g := DeBruijn(c.d, c.D)
		if !g.IsWalkRegular(c.D, 1) {
			t.Errorf("B(%d,%d): A^%d != J", c.d, c.D, c.D)
		}
	}
	// And the power grows correctly: A^{D+1} = d·J.
	g := DeBruijn(2, 3)
	if !g.IsWalkRegular(4, 2) {
		t.Error("B(2,3): A^4 != 2J")
	}
}

func TestWalkIdentityKautz(t *testing.T) {
	// Kautz: A^D + A^{D-1} = J.
	for _, c := range []struct{ d, D int }{{2, 2}, {2, 3}, {3, 2}, {2, 4}} {
		g, _ := Kautz(c.d, c.D)
		if !g.WalkPolynomialIsAllOnes([]int{c.D - 1, c.D}) {
			t.Errorf("K(%d,%d): A^%d + A^%d != J", c.d, c.D, c.D, c.D-1)
		}
	}
}

func TestWalkIdentityFailsOffFamily(t *testing.T) {
	// Sanity: a digraph that is NOT de Bruijn must fail the identity.
	g, _ := Kautz(2, 3)
	if g.IsWalkRegular(3, 1) {
		t.Error("K(2,3) satisfies the de Bruijn walk identity?!")
	}
}

func TestWalkCountsAgainstPathEnumeration(t *testing.T) {
	// Cross-check CountWalks against brute-force walk enumeration on a
	// small digraph.
	g := DeBruijn(2, 2)
	w := g.CountWalks(3)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if got := enumerateWalks(g, u, v, 3); got != w[u][v] {
				t.Fatalf("walks(%d,%d) = %d, enumeration %d", u, v, w[u][v], got)
			}
		}
	}
}

func enumerateWalks(g interface{ Out(int) []int }, u, v, k int) int {
	if k == 0 {
		if u == v {
			return 1
		}
		return 0
	}
	total := 0
	for _, mid := range g.Out(u) {
		total += enumerateWalks(g, mid, v, k-1)
	}
	return total
}

func TestNecklaceSingletonIsLoopVertex(t *testing.T) {
	cycles := NecklaceCycles(2, 3)
	for _, c := range cycles {
		if len(c) == 1 {
			u := c[0]
			w := word.MustFromInt(2, 3, u)
			for i := 1; i < 3; i++ {
				if w.Letter(i) != w.Letter(0) {
					t.Fatalf("singleton necklace %s is not constant", w)
				}
			}
		}
	}
}
