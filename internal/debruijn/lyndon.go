package debruijn

import (
	"repro/internal/word"
)

// The Fredricksen–Kessler–Maiorana construction: concatenating, in
// lexicographic order, the Lyndon words over Z_d whose length divides D
// yields the lexicographically smallest de Bruijn sequence of order D.
// It is an entirely different algorithm from the Eulerian-circuit
// construction in sequence.go, which makes it a strong cross-check: both
// must produce valid sequences, and FKM's must be the lexicographic
// minimum among all rotations of both.

// LyndonWords calls visit with every Lyndon word over Z_d of length at
// most maxLen, in lexicographic order (Duval's generation). The slice
// passed to visit is reused; copy to retain.
func LyndonWords(d, maxLen int, visit func([]int) bool) {
	// Duval's algorithm for generating Lyndon words in lex order.
	w := []int{-1}
	for len(w) > 0 {
		w[len(w)-1]++
		if !visit(w) {
			return
		}
		m := len(w)
		// Extend periodically to maxLen.
		for len(w) < maxLen {
			w = append(w, w[len(w)-m])
		}
		// Strip trailing maximal letters.
		for len(w) > 0 && w[len(w)-1] == d-1 {
			w = w[:len(w)-1]
		}
	}
}

// SequenceFKM returns the lexicographically least de Bruijn sequence of
// order D over Z_d: the concatenation of the Lyndon words of length
// dividing D in lexicographic order.
func SequenceFKM(d, D int) ([]int, error) {
	if d < 1 || D < 1 {
		return nil, errInvalidDD(d, D)
	}
	seq := make([]int, 0, word.Pow(d, D))
	LyndonWords(d, D, func(w []int) bool {
		if D%len(w) == 0 {
			seq = append(seq, w...)
		}
		return true
	})
	return seq, nil
}

// IsLyndon reports whether w is a Lyndon word: strictly smaller than all
// of its proper rotations.
func IsLyndon(w []int) bool {
	n := len(w)
	if n == 0 {
		return false
	}
	for r := 1; r < n; r++ {
		for i := 0; i < n; i++ {
			a, b := w[i], w[(i+r)%n]
			if a < b {
				break
			}
			if a > b {
				return false
			}
			if i == n-1 {
				return false // equal to a proper rotation: periodic
			}
		}
	}
	return true
}

func errInvalidDD(d, D int) error {
	return &ddError{d: d, D: D}
}

type ddError struct{ d, D int }

func (e *ddError) Error() string {
	return "debruijn: need d >= 1 and D >= 1"
}
