package debruijn

import (
	"fmt"

	"repro/internal/digraph"
	"repro/internal/word"
)

// Kautz machinery beyond the bare construction: the explicit isomorphism
// onto the Imase–Itoh digraph (the result of [21] the paper recalls in
// Section 2.2), and self-routing on Kautz words.

// WitnessKautzToII returns an explicit isomorphism from K(d, D) onto
// II(d, d^{D-1}(d+1)) as a vertex mapping indexed by the Kautz vertex ids
// of Kautz(d, D). The encoding sends the word x_{D-1} ... x_0 to
//
//	u = x_{D-1}·d^{D-1} + Σ_{i=0}^{D-2} e_i·d^i   (mod n)
//
// where e_i is the difference code c(x_{i+1}, x_i) = ((x_{i+1} - x_i)
// mod (d+1)) - 1 ∈ Z_d, complemented to d-1-c at positions with D-2-i
// odd. The alternation mirrors the (−d) multiplier in the II adjacency:
// each left shift negates the congruence, so the code flips polarity at
// every position. (The paper cites this isomorphism from Imase and Itoh
// [21] without an explicit map; this is one.)
func WitnessKautzToII(d, D int) []int {
	_, words := Kautz(d, D)
	n := KautzOrder(d, D)
	mapping := make([]int, n)
	for id, w := range words {
		u := w.Letter(D - 1)
		for i := D - 2; i >= 0; i-- {
			code := diffCode(d, w.Letter(i+1), w.Letter(i))
			if (D-2-i)%2 == 1 {
				code = d - 1 - code
			}
			//lint:ignore overflowguard u < d^D < (d+1)·d^(D-1) = n, and n fit in int via the guarded KautzOrder above
			u = u*d + code
		}
		mapping[id] = ((u % n) + n) % n
	}
	return mapping
}

// diffCode returns ((a - b) mod (d+1)) - 1, a bijection from the d values
// a ≠ b onto Z_d.
func diffCode(d, a, b int) int {
	return ((a-b)%(d+1)+(d+1))%(d+1) - 1
}

// IsoKautzToII builds both digraphs, applies WitnessKautzToII and
// verifies it, returning the mapping.
func IsoKautzToII(d, D int) ([]int, error) {
	k, _ := Kautz(d, D)
	ii := ImaseItoh(d, KautzOrder(d, D))
	mapping := WitnessKautzToII(d, D)
	if err := digraph.VerifyIsomorphism(k, ii, mapping); err != nil {
		return nil, fmt.Errorf("debruijn: Kautz→II witness failed: %w", err)
	}
	return mapping, nil
}

// IsKautzWord reports whether w is a valid Kautz vertex: letters over
// Z_{d+1} with no two consecutive letters equal.
func IsKautzWord(d int, w word.Word) bool {
	if w.D() != d+1 {
		return false
	}
	for i := 0; i+1 < w.Len(); i++ {
		if w.Letter(i) == w.Letter(i+1) {
			return false
		}
	}
	return true
}

// KautzDistance returns the directed distance between two Kautz vertices:
// D minus the longest suffix-prefix overlap, exactly as in the de Bruijn
// digraph. The shifted-in letters are dst's remaining letters, and every
// intermediate arc is automatically legal: the junction letters are
// consecutive letters of a Kautz word, hence distinct.
func KautzDistance(d int, src, dst word.Word) int {
	mustKautz(d, src)
	mustKautz(d, dst)
	if src.Equal(dst) {
		return 0
	}
	return src.Len() - word.OverlapSuffixPrefix(src, dst)
}

// KautzRoute returns the canonical shortest path between Kautz vertices,
// including both endpoints.
func KautzRoute(d int, src, dst word.Word) []word.Word {
	mustKautz(d, src)
	mustKautz(d, dst)
	if src.Equal(dst) {
		return []word.Word{src}
	}
	D := src.Len()
	k := word.OverlapSuffixPrefix(src, dst)
	path := []word.Word{src}
	cur := src
	for step := D - k - 1; step >= 0; step-- {
		next := cur.LeftShiftAppend(dst.Letter(step))
		if next.Letter(0) == next.Letter(1) {
			panic(fmt.Sprintf("debruijn: internal error, illegal Kautz hop %s -> %s", cur, next))
		}
		cur = next
		path = append(path, cur)
	}
	return path
}

func mustKautz(d int, w word.Word) {
	if !IsKautzWord(d, w) {
		panic(fmt.Sprintf("debruijn: %s is not a Kautz word for degree %d", w, d))
	}
}
