package debruijn

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/digraph"
)

// RepairSlab's contract is bit-identity: the patched slab must equal
// what NewNextHopSlab builds from scratch on the residual digraph —
// tie-breaks included — for any fault set. These tests enumerate every
// single-arc fault and sample random multi-arc fault sets across the
// digraph catalog.

// repairCatalog returns one representative per digraph family.
func repairCatalog(t *testing.T) map[string]*digraph.Digraph {
	t.Helper()
	graphs := map[string]*digraph.Digraph{
		"B(2,4)":    DeBruijn(2, 4),
		"B(3,3)":    DeBruijn(3, 3),
		"RRK(2,12)": RRK(2, 12),
		"II(2,12)":  ImaseItoh(2, 12),
	}
	kautz, _ := Kautz(2, 4)
	graphs["K(2,4)"] = kautz
	return graphs
}

// residualOf rebuilds g minus the dead (tail, index) arcs, preserving
// the adjacency order of the survivors — the digraph RepairSlab's
// output must match from scratch.
func residualOf(g *digraph.Digraph, dead [][2]int) *digraph.Digraph {
	mask := map[[2]int]bool{}
	for _, a := range dead {
		mask[a] = true
	}
	h := digraph.New(g.N())
	for u := 0; u < g.N(); u++ {
		for k, v := range g.Out(u) {
			if mask[[2]int{u, k}] {
				continue
			}
			h.AddArc(u, v)
		}
	}
	return h
}

// TestRepairSlabEverySingleArc: for every arc of every catalog graph,
// the repaired slab is bit-identical to the from-scratch slab of the
// residual digraph. Where the dead arc is its tail's first arc to that
// head, the residual is cross-checked against digraph.RemoveArc too.
func TestRepairSlabEverySingleArc(t *testing.T) {
	for name, g := range repairCatalog(t) {
		base := NewNextHopSlab(g)
		for u := 0; u < g.N(); u++ {
			for k, v := range g.Out(u) {
				dead := [][2]int{{u, k}}
				got, err := RepairSlab(g, base, dead)
				if err != nil {
					t.Fatalf("%s arc (%d#%d): %v", name, u, k, err)
				}
				residual := residualOf(g, dead)
				// RemoveArc drops the first (u, v) arc in adjacency
				// order; when that is ours, it must agree with the mask.
				if first := firstArcTo(g, u, v); first == k {
					byRemove := g.RemoveArc(u, v)
					if !reflect.DeepEqual(residual, byRemove) {
						t.Fatalf("%s arc (%d#%d): masked residual disagrees with RemoveArc", name, u, k)
					}
				}
				want := NewNextHopSlab(residual)
				if !reflect.DeepEqual(got.hops, want.hops) {
					t.Fatalf("%s arc (%d#%d): repaired slab differs from from-scratch residual slab", name, u, k)
				}
			}
		}
	}
}

func firstArcTo(g *digraph.Digraph, u, v int) int {
	for k, w := range g.Out(u) {
		if w == v {
			return k
		}
	}
	return -1
}

// TestRepairSlabRandomFaultSets: seeded random multi-arc fault sets
// stay bit-identical to from-scratch residual slabs.
func TestRepairSlabRandomFaultSets(t *testing.T) {
	for name, g := range repairCatalog(t) {
		rng := rand.New(rand.NewSource(7))
		base := NewNextHopSlab(g)
		for trial := 0; trial < 25; trial++ {
			seen := map[[2]int]bool{}
			var dead [][2]int
			for len(dead) < 1+rng.Intn(5) {
				u := rng.Intn(g.N())
				if g.OutDegree(u) == 0 {
					continue
				}
				a := [2]int{u, rng.Intn(g.OutDegree(u))}
				if seen[a] {
					continue
				}
				seen[a] = true
				dead = append(dead, a)
			}
			got, err := RepairSlab(g, base, dead)
			if err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			want := NewNextHopSlab(residualOf(g, dead))
			if !reflect.DeepEqual(got.hops, want.hops) {
				t.Fatalf("%s trial %d (dead %v): repaired slab differs from from-scratch residual slab", name, trial, dead)
			}
		}
	}
}

// TestRepairSlabRecovery: repairing with a shrunken dead set restores
// the original entries — in particular the empty set reproduces the
// base slab bit for bit (in a fresh allocation).
func TestRepairSlabRecovery(t *testing.T) {
	g := DeBruijn(2, 4)
	base := NewNextHopSlab(g)
	dead := [][2]int{{1, 0}, {5, 1}}
	if _, err := RepairSlab(g, base, dead); err != nil {
		t.Fatal(err)
	}
	back, err := RepairSlab(g, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.hops, base.hops) {
		t.Fatal("empty dead set did not reproduce the base slab")
	}
	if &back.hops[0] == &base.hops[0] {
		t.Fatal("RepairSlab must not alias the base slab's storage")
	}
	part, err := RepairSlab(g, base, dead[:1])
	if err != nil {
		t.Fatal(err)
	}
	want := NewNextHopSlab(residualOf(g, dead[:1]))
	if !reflect.DeepEqual(part.hops, want.hops) {
		t.Fatal("shrunken dead set (recovery) differs from from-scratch residual slab")
	}
}

// TestRepairSlabErrors: nil/mismatched base and out-of-range arcs are
// rejected with descriptive errors.
func TestRepairSlabErrors(t *testing.T) {
	g := DeBruijn(2, 3)
	base := NewNextHopSlab(g)
	if _, err := RepairSlab(g, nil, nil); err == nil {
		t.Fatal("nil base accepted")
	}
	other := NewNextHopSlab(DeBruijn(2, 4))
	if _, err := RepairSlab(g, other, nil); err == nil {
		t.Fatal("mismatched base accepted")
	}
	for _, dead := range [][][2]int{{{-1, 0}}, {{g.N(), 0}}, {{0, -1}}, {{0, g.OutDegree(0)}}} {
		if _, err := RepairSlab(g, base, dead); err == nil {
			t.Fatalf("out-of-range dead arc %v accepted", dead)
		}
	}
}
