package debruijn

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/word"
)

func TestTreeEmbedding(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 6}, {3, 3}, {4, 2}} {
		nodes, err := TreeEmbedding(c.d, c.D)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyTreeEmbedding(c.d, c.D, nodes); err != nil {
			t.Errorf("d=%d D=%d: %v", c.d, c.D, err)
		}
	}
	if _, err := TreeEmbedding(1, 3); err == nil {
		t.Error("d=1 accepted")
	}
}

func TestTreeEmbeddingShape(t *testing.T) {
	// The forest has d-1 complete d-ary trees of height D-1: count nodes
	// per depth.
	d, D := 3, 3
	nodes, _ := TreeEmbedding(d, D)
	perDepth := map[int]int{}
	for u := 1; u < len(nodes); u++ {
		perDepth[nodes[u].Depth]++
	}
	// Depth k holds (d-1)·d^k vertices.
	for k := 0; k < D; k++ {
		want := (d - 1) * word.Pow(d, k)
		if perDepth[k] != want {
			t.Errorf("depth %d: %d nodes, want %d", k, perDepth[k], want)
		}
	}
}

func TestTreeEmbeddingChildrenAreShiftArcs(t *testing.T) {
	// Children of tree node u are exactly du+b for b ∈ Z_d (when within
	// depth) — the de Bruijn out-arcs.
	d, D := 2, 5
	nodes, _ := TreeEmbedding(d, D)
	for u := 1; u < len(nodes); u++ {
		if nodes[u].Depth == D-1 {
			continue // leaves
		}
		for b := 0; b < d; b++ {
			child := d*u + b
			if child >= len(nodes) {
				t.Fatalf("child %d out of range", child)
			}
			if nodes[child].Parent != u {
				t.Fatalf("child %d of %d has parent %d", child, u, nodes[child].Parent)
			}
		}
	}
}

func TestCompleteBinaryTreeInB2(t *testing.T) {
	parent, err := CompleteBinaryTreeInB2(4)
	if err != nil {
		t.Fatal(err)
	}
	if parent[1] != -1 {
		t.Error("root should be vertex 1")
	}
	if parent[0] != -2 {
		t.Error("zero word should be unused")
	}
	g := DeBruijn(2, 4)
	for u := 2; u < len(parent); u++ {
		if !g.HasArc(parent[u], u) {
			t.Fatalf("tree arc (%d,%d) not in B(2,4)", parent[u], u)
		}
	}
}

func TestDeBruijnAutomorphismsAreLetterwise(t *testing.T) {
	// Aut(B(d,D)) is exactly the d! letterwise alphabet actions: each
	// letterwise σ is an automorphism, and the exhaustive count says
	// there are no others.
	d, D := 3, 2
	g := DeBruijn(d, D)
	found := 0
	perm.All(d, func(sigma perm.Perm) bool {
		mapping := make([]int, g.N())
		for u := 0; u < g.N(); u++ {
			mapping[u] = word.MustFromInt(d, D, u).ApplyAlphabet(sigma).Int()
		}
		if !digraphIsAut(g.N(), mapping, g) {
			t.Errorf("letterwise %v is not an automorphism", sigma)
		}
		found++
		return true
	})
	if count := g.AutomorphismCount(0); count != found {
		t.Errorf("|Aut| = %d but letterwise maps give %d", count, found)
	}
}

func digraphIsAut(n int, mapping []int, g interface {
	HasArc(u, v int) bool
	Out(u int) []int
}) bool {
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			if !g.HasArc(mapping[u], mapping[v]) {
				return false
			}
		}
	}
	return true
}

func TestKautzAutomorphismCount(t *testing.T) {
	// |Aut(K(d,D))| = (d+1)!: the letterwise Z_{d+1} actions preserve the
	// adjacent-distinct constraint.
	k, _ := Kautz(2, 3)
	if got := k.AutomorphismCount(0); got != 6 {
		t.Errorf("|Aut(K(2,3))| = %d, want 6", got)
	}
	k32, _ := Kautz(3, 2)
	if got := k32.AutomorphismCount(0); got != 24 {
		t.Errorf("|Aut(K(3,2))| = %d, want 24", got)
	}
}
