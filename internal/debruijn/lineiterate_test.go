package debruijn

import (
	"testing"

	"repro/internal/digraph"
)

func TestLineIterateIdentity(t *testing.T) {
	g := DeBruijn(2, 3)
	l0, err := LineIterate(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !l0.Equal(g) {
		t.Error("L^0(g) != g")
	}
	if _, err := LineIterate(g, -1); err == nil {
		t.Error("negative iterate accepted")
	}
}

func TestLineIterateCharacterization(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}} {
		if err := VerifyLineIterateCharacterization(c.d, c.D); err != nil {
			t.Errorf("d=%d D=%d: %v", c.d, c.D, err)
		}
	}
}

func TestCompleteLoopless(t *testing.T) {
	g := CompleteLoopless(4)
	if g.M() != 12 || len(g.Loops()) != 0 || !g.IsRegular(3) {
		t.Fatalf("K_4: m=%d loops=%v", g.M(), g.Loops())
	}
	// K(d,1) is exactly K_{d+1} loopless.
	k, _ := Kautz(3, 1)
	if _, ok := digraph.FindIsomorphism(g, k); !ok {
		t.Error("K_4 ≇ K(3,1)")
	}
}

func TestLineIterateSizes(t *testing.T) {
	// |V(L^k(K*_d))| = d^{k+1}.
	l, _ := LineIterate(digraph.CompleteWithLoops(3), 3)
	if l.N() != 81 {
		t.Errorf("L^3(K*_3) has %d vertices, want 81", l.N())
	}
	// |V(L^k(K_{d+1}))| = d^k(d+1).
	lk, _ := LineIterate(CompleteLoopless(3), 2)
	if lk.N() != 12 {
		t.Errorf("L^2(K_3) has %d vertices, want 12", lk.N())
	}
}
