package debruijn

import (
	"math/rand"
	"testing"

	"repro/internal/digraph"
	"repro/internal/word"
)

func TestWitnessKautzToII(t *testing.T) {
	// The explicit witness must verify across degrees and diameters,
	// including the Table 1 row K(2,8) = II(2,384).
	for _, c := range []struct{ d, D int }{
		{2, 2}, {2, 3}, {2, 4}, {2, 5}, {3, 2}, {3, 3}, {3, 4}, {4, 2}, {4, 3}, {5, 2}, {2, 8},
	} {
		if _, err := IsoKautzToII(c.d, c.D); err != nil {
			t.Errorf("d=%d D=%d: %v", c.d, c.D, err)
		}
	}
}

func TestWitnessKautzToIIBijective(t *testing.T) {
	mapping := WitnessKautzToII(3, 3)
	seen := make([]bool, len(mapping))
	for _, v := range mapping {
		if v < 0 || v >= len(mapping) || seen[v] {
			t.Fatalf("mapping not bijective at %d", v)
		}
		seen[v] = true
	}
}

func TestIsKautzWord(t *testing.T) {
	good := word.MustFromLetters(3, 0, 1, 0, 2) // Z_3 alphabet, d = 2
	if !IsKautzWord(2, good) {
		t.Error("valid Kautz word rejected")
	}
	bad := word.MustFromLetters(3, 0, 1, 1, 2)
	if IsKautzWord(2, bad) {
		t.Error("repeated consecutive letters accepted")
	}
	wrongAlphabet := word.MustFromLetters(2, 0, 1, 0)
	if IsKautzWord(2, wrongAlphabet) {
		t.Error("wrong alphabet accepted")
	}
}

func TestKautzDistanceAgainstBFS(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 4}, {3, 3}} {
		g, words := Kautz(c.d, c.D)
		for u, uw := range words {
			dist := g.BFSFrom(u)
			for v, vw := range words {
				if got := KautzDistance(c.d, uw, vw); got != dist[v] {
					t.Fatalf("K(%d,%d): distance(%s,%s) = %d, BFS %d",
						c.d, c.D, uw, vw, got, dist[v])
				}
			}
		}
	}
}

func TestKautzRouteValid(t *testing.T) {
	d, D := 2, 4
	g, words := Kautz(d, D)
	idOf := map[int]int{}
	for id, w := range words {
		idOf[w.Int()] = id
	}
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 200; trial++ {
		src := words[rng.Intn(len(words))]
		dst := words[rng.Intn(len(words))]
		path := KautzRoute(d, src, dst)
		if !path[0].Equal(src) || !path[len(path)-1].Equal(dst) {
			t.Fatal("route endpoints wrong")
		}
		for i := 0; i+1 < len(path); i++ {
			if !IsKautzWord(d, path[i+1]) {
				t.Fatalf("route leaves Kautz vertex set at %s", path[i+1])
			}
			if !g.HasArc(idOf[path[i].Int()], idOf[path[i+1].Int()]) {
				t.Fatalf("route uses missing arc %s -> %s", path[i], path[i+1])
			}
		}
		if len(path)-1 != KautzDistance(d, src, dst) {
			t.Fatal("route length != distance")
		}
	}
}

func TestKautzRouteSelf(t *testing.T) {
	w := word.MustFromLetters(3, 0, 1, 2)
	if path := KautzRoute(2, w, w); len(path) != 1 {
		t.Errorf("self route = %v", path)
	}
}

func TestKautzLineDigraphIdentity(t *testing.T) {
	// L(K(d,D)) ≅ K(d,D+1), the Kautz twin of the de Bruijn identity.
	for _, c := range []struct{ d, D int }{{2, 2}, {2, 3}, {3, 2}} {
		k, _ := Kautz(c.d, c.D)
		l, _ := digraph.LineDigraph(k)
		next, _ := Kautz(c.d, c.D+1)
		if _, ok := digraph.FindIsomorphism(l, next); !ok {
			t.Errorf("L(K(%d,%d)) ≇ K(%d,%d)", c.d, c.D, c.d, c.D+1)
		}
	}
}

func TestKautzPanicsOnInvalidWord(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid word accepted by KautzDistance")
		}
	}()
	bad := word.MustFromLetters(3, 1, 1, 0)
	KautzDistance(2, bad, bad)
}
