package debruijn

import (
	"fmt"

	"repro/internal/digraph"
	"repro/internal/word"
)

// Necklace cycles: the pure-rotation 1-factor of B(d, D). Choosing at
// every vertex the out-arc that re-appends the letter just shifted out
// (α = x_{D-1}) turns every word into its left rotation, so the chosen
// arcs decompose the vertex set into disjoint directed cycles — one per
// necklace (rotation-equivalence class of words). This is a perfect
// 1-factor of the digraph (the "pure cycling register") and the cycle
// count is the classical necklace number (1/D)·Σ_{ℓ|D} φ(ℓ)·d^{D/ℓ}.

// NecklaceCycles returns the rotation cycles of Z_d^D, each starting at
// its smallest Horner label, ordered by that label.
func NecklaceCycles(d, D int) [][]int {
	n := word.Pow(d, D)
	seen := make([]bool, n)
	var cycles [][]int
	for u := 0; u < n; u++ {
		if seen[u] {
			continue
		}
		var cycle []int
		v := u
		for !seen[v] {
			seen[v] = true
			cycle = append(cycle, v)
			v = rotateLeft(d, D, v)
		}
		cycles = append(cycles, cycle)
	}
	return cycles
}

// rotateLeft maps a word to its left rotation: the de Bruijn successor
// that re-appends the outgoing letter.
func rotateLeft(d, D, u int) int {
	w := word.MustFromInt(d, D, u)
	return w.LeftShiftAppend(w.Letter(D - 1)).Int()
}

// NecklaceCount returns the number of necklaces by Burnside's lemma:
// (1/D)·Σ_{ℓ=1..D} d^gcd(ℓ,D).
func NecklaceCount(d, D int) int {
	total := 0
	for l := 1; l <= D; l++ {
		total += word.Pow(d, gcd(l, D))
	}
	return total / D
}

// VerifyNecklaceFactor checks that the rotation cycles form a 1-factor of
// B(d, D): every vertex appears exactly once, every cycle step is a
// de Bruijn arc, and the cycle count matches Burnside.
func VerifyNecklaceFactor(d, D int, cycles [][]int) error {
	g := DeBruijn(d, D)
	n := word.Pow(d, D)
	seen := make([]bool, n)
	covered := 0
	for _, cycle := range cycles {
		if len(cycle) == 0 {
			return fmt.Errorf("debruijn: empty necklace cycle")
		}
		if D%len(cycle) != 0 {
			return fmt.Errorf("debruijn: cycle length %d does not divide D=%d", len(cycle), D)
		}
		for i, u := range cycle {
			if seen[u] {
				return fmt.Errorf("debruijn: vertex %d in two necklace cycles", u)
			}
			seen[u] = true
			covered++
			v := cycle[(i+1)%len(cycle)]
			if !g.HasArc(u, v) {
				return fmt.Errorf("debruijn: necklace step (%d,%d) is not an arc", u, v)
			}
		}
	}
	if covered != n {
		return fmt.Errorf("debruijn: cycles cover %d of %d vertices", covered, n)
	}
	if len(cycles) != NecklaceCount(d, D) {
		return fmt.Errorf("debruijn: %d cycles, Burnside says %d", len(cycles), NecklaceCount(d, D))
	}
	return nil
}

// RotationFactorDigraph returns the 1-factor as a digraph (each vertex
// with exactly the rotation out-arc), for use as a subgraph certificate.
func RotationFactorDigraph(d, D int) *digraph.Digraph {
	n := word.Pow(d, D)
	return digraph.FromFunc(n, func(u int) []int {
		return []int{rotateLeft(d, D, u)}
	})
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
