package debruijn

import "repro/internal/digraph"

// Recognize reports whether g is exactly the congruence-form de Bruijn
// digraph B(d, D) this package's DeBruijn constructor emits: n = d^D
// vertices, and the out-neighbour list of every vertex u is
//
//	Γ⁺(u) = [(d·u + α) mod d^D  for α = 0..d−1]
//
// in that adjacency order — so adjacency position α is the letter shifted
// in, which is what makes table-free shift routing (simnet's
// DeBruijnRouter) valid on the graph. Isomorphic-but-relabelled de Bruijn
// digraphs (OTIS layouts, σ-images, RRK with m ≠ d^D) are rejected: shift
// routing reads the congruence labels themselves, not the abstract
// isomorphism class. The check is a single O(M) pass.
//
// On success it returns the base d and diameter D (D = 1 for the single
// self-loop vertex, the degenerate B(d, 0) ≅ B(1, D) family collapsing to
// one node is reported as d = 1, D = 1).
func Recognize(g *digraph.Digraph) (d, D int, ok bool) {
	if g == nil {
		return 0, 0, false
	}
	n := g.N()
	if n == 0 {
		return 0, 0, false
	}
	d = g.OutDegree(0)
	if d < 1 {
		return 0, 0, false
	}
	// n must be a pure power d^D (any D ≥ 1 serves the n = 1, d = 1 case).
	D = 0
	for p := 1; p < n; p *= d {
		if d == 1 {
			return 0, 0, false // d = 1 only realizes n = 1
		}
		D++
		if p > n/d {
			return 0, 0, false // next power overflows past n
		}
	}
	if D == 0 {
		D = 1 // n == 1: the one-node loop is B(1, 1)
	}
	for u := 0; u < n; u++ {
		out := g.Out(u)
		if len(out) != d {
			return 0, 0, false
		}
		for alpha, v := range out {
			if v != (d*u+alpha)%n {
				return 0, 0, false
			}
		}
	}
	return d, D, true
}
