package debruijn

import (
	"reflect"
	"testing"

	"repro/internal/word"
)

func TestLyndonWordsBinaryOrder(t *testing.T) {
	var got [][]int
	LyndonWords(2, 4, func(w []int) bool {
		got = append(got, append([]int(nil), w...))
		return true
	})
	want := [][]int{
		{0}, {0, 0, 0, 1}, {0, 0, 1}, {0, 0, 1, 1}, {0, 1},
		{0, 1, 1}, {0, 1, 1, 1}, {1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Lyndon words:\n got %v\nwant %v", got, want)
	}
}

func TestLyndonWordsAreLyndon(t *testing.T) {
	count := 0
	LyndonWords(3, 5, func(w []int) bool {
		if !IsLyndon(w) {
			t.Fatalf("non-Lyndon word emitted: %v", w)
		}
		count++
		return true
	})
	// Number of Lyndon words of length ≤ 5 over Z_3:
	// L(1)=3, L(2)=3, L(3)=8, L(4)=18, L(5)=48 → 80.
	if count != 80 {
		t.Errorf("%d Lyndon words, want 80", count)
	}
}

func TestIsLyndon(t *testing.T) {
	cases := []struct {
		w    []int
		want bool
	}{
		{[]int{0}, true},
		{[]int{0, 1}, true},
		{[]int{1, 0}, false},
		{[]int{0, 0}, false}, // periodic
		{[]int{0, 1, 0, 1}, false},
		{[]int{0, 0, 1, 1}, true},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsLyndon(c.w); got != c.want {
			t.Errorf("IsLyndon(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestSequenceFKMValid(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 1}, {2, 4}, {2, 8}, {3, 3}, {4, 2}} {
		seq, err := SequenceFKM(c.d, c.D)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifySequence(c.d, c.D, seq); err != nil {
			t.Errorf("FKM(%d,%d): %v", c.d, c.D, err)
		}
	}
	if _, err := SequenceFKM(0, 3); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestSequenceFKMIsLexMinimal(t *testing.T) {
	// FKM yields the lexicographically least sequence: no rotation of it,
	// and no rotation of the Eulerian-construction sequence, is smaller.
	d, D := 2, 6
	fkm, _ := SequenceFKM(d, D)
	euler, _ := Sequence(d, D)
	n := word.Pow(d, D)
	for _, seq := range [][]int{fkm, euler} {
		for r := 0; r < n; r++ {
			if lexLess(rotation(seq, r), fkm) {
				t.Fatalf("rotation %d of %v beats FKM", r, seq[:8])
			}
		}
	}
}

func TestSequenceFKMKnownValue(t *testing.T) {
	// The classical smallest binary de Bruijn sequence of order 4.
	seq, _ := SequenceFKM(2, 4)
	want := []int{0, 0, 0, 0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 1, 1}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("FKM(2,4) = %v, want %v", seq, want)
	}
}

func TestTwoConstructionsAgreeUpToRotationClass(t *testing.T) {
	// Both constructions produce de Bruijn sequences (same multiset of
	// windows); they need not be equal, but both must contain all d^D
	// windows — checked via VerifySequence — and have equal length.
	d, D := 3, 4
	a, _ := Sequence(d, D)
	b, _ := SequenceFKM(d, D)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	if err := VerifySequence(d, D, a); err != nil {
		t.Error(err)
	}
	if err := VerifySequence(d, D, b); err != nil {
		t.Error(err)
	}
}

func rotation(seq []int, r int) []int {
	n := len(seq)
	out := make([]int, n)
	for i := range out {
		out[i] = seq[(i+r)%n]
	}
	return out
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
