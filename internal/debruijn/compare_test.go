package debruijn

import (
	"testing"

	"repro/internal/word"
)

func TestDiameterGainClassicalValues(t *testing.T) {
	// Imase–Itoh's raison d'être: at degree d and diameter D the minus
	// family reaches d^{D-1}(d+1) vertices, the plus family only d^D.
	for _, c := range []struct{ d, D int }{{2, 4}, {2, 6}, {3, 3}, {2, 8}} {
		maxII, maxRRK := DiameterGain(c.d, c.D)
		if maxII != KautzOrder(c.d, c.D) {
			t.Errorf("d=%d D=%d: max II n = %d, want %d", c.d, c.D, maxII, KautzOrder(c.d, c.D))
		}
		if maxRRK != word.Pow(c.d, c.D) {
			t.Errorf("d=%d D=%d: max RRK n = %d, want %d", c.d, c.D, maxRRK, word.Pow(c.d, c.D))
		}
	}
}

func TestMaxNWithDiameterEdges(t *testing.T) {
	if _, ok := MaxNWithDiameter(FormII, 2, 1, 0); ok {
		t.Error("empty range qualified")
	}
	n, ok := MaxNWithDiameter(FormRRK, 2, 1, 10)
	if !ok || n != 2 {
		t.Errorf("RRK diameter-1 max = %d, want 2 = d^D (the classical bound holds at D=1 too)", n)
	}
}

func TestFormString(t *testing.T) {
	if FormRRK.String() != "RRK" || FormII.String() != "II" {
		t.Error("form names wrong")
	}
	if Form(9).String() == "" {
		t.Error("unknown form empty")
	}
}

func TestFormBuild(t *testing.T) {
	if FormRRK.Build(2, 8).Diameter() != 3 {
		t.Error("RRK build wrong")
	}
	if FormII.Build(2, 12).Diameter() != 3 {
		t.Error("II build wrong")
	}
}
