package debruijn

import (
	"fmt"

	"repro/internal/word"
)

// Tree embeddings (the embedding literature the paper cites as [9]).
// Besides the ring (HamiltonianCycle), the classical dilation-1 structure
// inside B(d, D) is a spanning forest of complete d-ary trees: map the
// string s = s_{ℓ-1}...s_0 (1 ≤ ℓ ≤ D, leading letter nonzero) to the
// word 0^{D-ℓ}·s. Appending a letter b to s is then exactly the de Bruijn
// left shift of its word, so tree arcs are digraph arcs (dilation 1).
// The d-1 possible leading letters give d-1 tree roots, and the images
// cover every vertex except the all-zero word.

// TreeNode is one vertex of the embedded forest.
type TreeNode struct {
	// Vertex is the Horner label of the image in B(d, D).
	Vertex int
	// Parent is the Horner label of the parent's image, or -1 at roots.
	Parent int
	// Depth is the distance from the root (0 at roots).
	Depth int
}

// TreeEmbedding returns the dilation-1 embedding of the forest of d-1
// complete d-ary trees of height D-1 into B(d, D): one TreeNode per
// non-zero vertex, keyed by Horner label (index 0, the all-zero word, is
// unused and has Vertex = -1).
func TreeEmbedding(d, D int) ([]TreeNode, error) {
	if d < 2 || D < 1 {
		return nil, fmt.Errorf("debruijn: need d >= 2 and D >= 1")
	}
	n := word.Pow(d, D)
	nodes := make([]TreeNode, n)
	nodes[0] = TreeNode{Vertex: -1, Parent: -1}
	for u := 1; u < n; u++ {
		// The string s is u's d-ary spelling with leading zeros removed;
		// the parent drops s's last letter, i.e. parent word = ⌊u/d⌋.
		// Depth = |s| - 1 = position of the leading nonzero letter.
		length := 0
		for v := u; v > 0; v /= d {
			length++
		}
		parent := u / d
		node := TreeNode{Vertex: u, Depth: length - 1, Parent: parent}
		if length == 1 {
			node.Parent = -1 // roots: single-letter strings
		}
		nodes[u] = node
	}
	return nodes, nil
}

// VerifyTreeEmbedding checks the forest structure: every tree arc
// (parent, child) is a de Bruijn arc with depth increasing by one; there
// are exactly d-1 roots; every non-zero vertex is covered once.
func VerifyTreeEmbedding(d, D int, nodes []TreeNode) error {
	g := DeBruijn(d, D)
	n := word.Pow(d, D)
	if len(nodes) != n {
		return fmt.Errorf("debruijn: %d nodes, want %d", len(nodes), n)
	}
	roots := 0
	for u := 1; u < n; u++ {
		node := nodes[u]
		if node.Vertex != u {
			return fmt.Errorf("debruijn: node %d mislabelled as %d", u, node.Vertex)
		}
		if node.Parent == -1 {
			roots++
			if node.Depth != 0 {
				return fmt.Errorf("debruijn: root %d has depth %d", u, node.Depth)
			}
			continue
		}
		if !g.HasArc(node.Parent, u) {
			return fmt.Errorf("debruijn: tree arc (%d,%d) is not a de Bruijn arc", node.Parent, u)
		}
		if nodes[node.Parent].Depth != node.Depth-1 {
			return fmt.Errorf("debruijn: depth mismatch at %d", u)
		}
	}
	if roots != d-1 {
		return fmt.Errorf("debruijn: %d roots, want %d", roots, d-1)
	}
	return nil
}

// CompleteBinaryTreeInB2 returns, for d = 2, the single complete binary
// tree of height D-1 embedded with dilation 1: 2^D - 1 vertices — every
// vertex of B(2, D) except the all-zero word. parent[u] = -1 at the root
// (vertex 1).
func CompleteBinaryTreeInB2(D int) (parent []int, err error) {
	nodes, err := TreeEmbedding(2, D)
	if err != nil {
		return nil, err
	}
	parent = make([]int, len(nodes))
	for u := range nodes {
		parent[u] = nodes[u].Parent
	}
	parent[0] = -2 // unused slot
	return parent, nil
}
