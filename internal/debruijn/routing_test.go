package debruijn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/digraph"
	"repro/internal/word"
)

func TestDistanceAgainstBFS(t *testing.T) {
	// The word-overlap distance formula must agree with BFS on B(d, D).
	for _, c := range []struct{ d, D int }{{2, 4}, {2, 5}, {3, 3}} {
		g := DeBruijn(c.d, c.D)
		n := g.N()
		for u := 0; u < n; u++ {
			dist := g.BFSFrom(u)
			uw := word.MustFromInt(c.d, c.D, u)
			for v := 0; v < n; v++ {
				vw := word.MustFromInt(c.d, c.D, v)
				if got := Distance(uw, vw); got != dist[v] {
					t.Fatalf("B(%d,%d): Distance(%s,%s) = %d, BFS = %d",
						c.d, c.D, uw, vw, got, dist[v])
				}
			}
		}
	}
}

func TestRouteIsValidShortestPath(t *testing.T) {
	d, D := 2, 6
	g := DeBruijn(d, D)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		src := word.MustFromInt(d, D, rng.Intn(g.N()))
		dst := word.MustFromInt(d, D, rng.Intn(g.N()))
		path := Route(src, dst)
		if !path[0].Equal(src) || !path[len(path)-1].Equal(dst) {
			t.Fatalf("route endpoints wrong: %v", path)
		}
		for i := 0; i+1 < len(path); i++ {
			if !g.HasArc(path[i].Int(), path[i+1].Int()) {
				t.Fatalf("route uses missing arc %s -> %s", path[i], path[i+1])
			}
		}
		if len(path)-1 != Distance(src, dst) {
			t.Fatalf("route length %d != distance %d", len(path)-1, Distance(src, dst))
		}
	}
}

func TestRouteSelf(t *testing.T) {
	w := word.MustFromLetters(2, 1, 0, 1)
	path := Route(w, w)
	if len(path) != 1 || !path[0].Equal(w) {
		t.Fatalf("self route = %v", path)
	}
}

func TestRouteInts(t *testing.T) {
	path := RouteInts(2, 3, 5, 2)
	// 101 -> 010: overlap k: suffix "01" of 101 = prefix "01" of 010 → k=2,
	// distance 1: 101 -> 010.
	if len(path) != 2 || path[0] != 5 || path[1] != 2 {
		t.Fatalf("RouteInts(5,2) = %v", path)
	}
}

func TestNextHopConsistentWithRoute(t *testing.T) {
	d, D := 3, 4
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 200; trial++ {
		src := word.MustFromInt(d, D, rng.Intn(word.Pow(d, D)))
		dst := word.MustFromInt(d, D, rng.Intn(word.Pow(d, D)))
		hop, ok := NextHop(src, dst)
		path := Route(src, dst)
		if !ok {
			if !src.Equal(dst) {
				t.Fatal("NextHop refused distinct endpoints")
			}
			continue
		}
		if !hop.Equal(path[1]) {
			t.Fatalf("NextHop(%s,%s) = %s, route goes via %s", src, dst, hop, path[1])
		}
	}
}

func TestQuickRouteLengthBound(t *testing.T) {
	// Property: every route has length at most D (the diameter).
	f := func(s, u uint16) bool {
		d, D := 2, 7
		n := word.Pow(d, D)
		src := word.MustFromInt(d, D, int(s)%n)
		dst := word.MustFromInt(d, D, int(u)%n)
		return len(Route(src, dst))-1 <= D
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastTree(t *testing.T) {
	d, D := 2, 5
	parent, depth := BroadcastTree(d, D, 0)
	g := DeBruijn(d, D)
	n := g.N()
	maxDepth := 0
	for v := 0; v < n; v++ {
		if v == 0 {
			if parent[v] != -1 || depth[v] != 0 {
				t.Fatal("root fields wrong")
			}
			continue
		}
		if parent[v] < 0 {
			t.Fatalf("vertex %d unreached", v)
		}
		if !g.HasArc(parent[v], v) {
			t.Fatalf("tree arc (%d,%d) not in digraph", parent[v], v)
		}
		if depth[v] != depth[parent[v]]+1 {
			t.Fatalf("depth inconsistent at %d", v)
		}
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	if maxDepth != D {
		t.Errorf("broadcast depth = %d, want %d", maxDepth, D)
	}
	// Depths must equal BFS distances (shortest-path broadcast).
	dist := g.BFSFrom(0)
	for v := 0; v < n; v++ {
		if dist[v] != depth[v] {
			t.Fatalf("depth[%d] = %d, BFS = %d", v, depth[v], dist[v])
		}
	}
}

func TestRoutingTable(t *testing.T) {
	g := DeBruijn(2, 4)
	table := RoutingTable(g)
	n := g.N()
	dists := make([][]int, n)
	for u := 0; u < n; u++ {
		dists[u] = g.BFSFrom(u)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			hop := table[u][v]
			if u == v {
				if hop != u {
					t.Fatalf("table[%d][%d] = %d, want %d", u, v, hop, u)
				}
				continue
			}
			if hop < 0 {
				t.Fatalf("no hop for reachable pair (%d,%d)", u, v)
			}
			if !g.HasArc(u, hop) {
				t.Fatalf("table hop (%d,%d) not an arc", u, hop)
			}
			if dists[hop][v] != dists[u][v]-1 {
				t.Fatalf("hop does not decrease distance for (%d,%d)", u, v)
			}
		}
	}
}

func TestRoutingTableDisconnected(t *testing.T) {
	g := digraph.New(3)
	g.AddArc(0, 1)
	table := RoutingTable(g)
	if table[0][2] != -1 {
		t.Error("unreachable pair should have hop -1")
	}
	if table[0][1] != 1 {
		t.Error("direct hop wrong")
	}
}

func TestNextHopSlabMatchesRoutingTable(t *testing.T) {
	for _, g := range []*digraph.Digraph{DeBruijn(2, 4), RRK(2, 12), ImaseItoh(3, 10)} {
		n := g.N()
		slab := NewNextHopSlab(g)
		table := RoutingTable(g)
		if slab.N() != n {
			t.Fatalf("slab.N() = %d, want %d", slab.N(), n)
		}
		if got, want := slab.Footprint(), 4*n*n; got != want {
			t.Fatalf("Footprint() = %d, want %d", got, want)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if slab.Hop(u, v) != table[u][v] {
					t.Fatalf("Hop(%d,%d) = %d, table %d", u, v, slab.Hop(u, v), table[u][v])
				}
			}
		}
	}
}

func TestNextHopSlabDistanceSlabConsistency(t *testing.T) {
	g := DeBruijn(3, 3)
	n := g.N()
	slab := NewNextHopSlab(g)
	dist := g.DistanceSlab()
	for u := 0; u < n; u++ {
		dd := g.BFSFrom(u)
		for v := 0; v < n; v++ {
			if int(dist[u*n+v]) != dd[v] {
				t.Fatalf("DistanceSlab[%d,%d] = %d, BFS %d", u, v, dist[u*n+v], dd[v])
			}
			if u == v {
				continue
			}
			hop := slab.Hop(u, v)
			if dist[hop*n+v] != dist[u*n+v]-1 {
				t.Fatalf("Hop(%d,%d) = %d does not decrease distance", u, v, hop)
			}
		}
	}
}

func TestNextHopSlabDisconnected(t *testing.T) {
	g := digraph.New(3)
	g.AddArc(0, 1)
	slab := NewNextHopSlab(g)
	if slab.Hop(0, 2) != -1 {
		t.Error("unreachable pair should have hop -1")
	}
	if slab.Hop(0, 1) != 1 {
		t.Error("direct hop wrong")
	}
	if slab.Hop(1, 1) != 1 {
		t.Error("self hop should be the node itself")
	}
}
