package debruijn

import (
	"fmt"
)

// Degree–diameter comparison of the two congruence families. Both
// RRK(d, n) (the generalized de Bruijn digraph, Γ⁺(u) = du+α) and
// II(d, n) (Γ⁺(u) = -du-α) are defined for every n; Imase and Itoh's
// point, which Table 1 inherits, is that the minus-sign family reaches
// more vertices at the same diameter: max n is d^{D-1}(d+1) for II versus
// d^D for RRK. These functions measure both maxima by search.

// Form selects a congruence digraph family.
type Form int

const (
	// FormRRK is the generalized de Bruijn family of Definition 2.5.
	FormRRK Form = iota
	// FormII is the Imase–Itoh family of Definition 2.8.
	FormII
)

// String names the family.
func (f Form) String() string {
	switch f {
	case FormRRK:
		return "RRK"
	case FormII:
		return "II"
	}
	return fmt.Sprintf("Form(%d)", int(f))
}

// Build returns the family member with n vertices and degree d.
func (f Form) Build(d, n int) interface {
	DiameterAtMost(int) bool
	Diameter() int
} {
	switch f {
	case FormRRK:
		return RRK(d, n)
	case FormII:
		return ImaseItoh(d, n)
	}
	panic("debruijn: unknown form")
}

// MaxNWithDiameter returns the largest n ≤ ceil such that the family
// member has diameter at most D, by downward scan. ok is false if no n
// in [1, ceil] qualifies.
func MaxNWithDiameter(f Form, d, D, ceil int) (int, bool) {
	for n := ceil; n >= 1; n-- {
		g := f.Build(d, n)
		if g.DiameterAtMost(D) {
			return n, true
		}
	}
	return 0, false
}

// DiameterGain reports the II-over-RRK vertex-count advantage at degree d
// and diameter D: (maxII, maxRRK). The classical values are
// maxII = d^{D-1}(d+1) and maxRRK = d^D.
func DiameterGain(d, D int) (maxII, maxRRK int) {
	ceil := KautzOrder(d, D) + d // a little headroom above the known max
	maxII, _ = MaxNWithDiameter(FormII, d, D, ceil)
	maxRRK, _ = MaxNWithDiameter(FormRRK, d, D, ceil)
	return maxII, maxRRK
}
