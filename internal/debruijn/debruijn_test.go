package debruijn

import (
	"math/rand"
	"testing"

	"repro/internal/digraph"
	"repro/internal/perm"
	"repro/internal/word"
)

func TestDeBruijnBasicShape(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 6}, {3, 3}, {4, 2}} {
		g := DeBruijn(c.d, c.D)
		n := word.Pow(c.d, c.D)
		if g.N() != n {
			t.Fatalf("B(%d,%d) has %d vertices, want %d", c.d, c.D, g.N(), n)
		}
		if !g.IsRegular(c.d) {
			t.Errorf("B(%d,%d) not %d-regular", c.d, c.D, c.d)
		}
		if got := g.Diameter(); got != c.D {
			t.Errorf("B(%d,%d) diameter = %d", c.d, c.D, got)
		}
		// d loops at the constant words ααα...α = α·(d^D-1)/(d-1).
		if loops := g.Loops(); len(loops) != c.d {
			t.Errorf("B(%d,%d) has %d loops, want %d", c.d, c.D, len(loops), c.d)
		}
		if !g.IsStronglyConnected() {
			t.Errorf("B(%d,%d) not strongly connected", c.d, c.D)
		}
	}
}

func TestDeBruijnFigure1(t *testing.T) {
	// Figure 1: B(2,3) on words 000..111. Check a few arcs by word.
	g := DeBruijn(2, 3)
	arcs := []struct{ from, to string }{
		{"000", "000"}, {"000", "001"},
		{"010", "100"}, {"010", "101"},
		{"101", "010"}, {"101", "011"},
		{"111", "111"}, {"111", "110"},
	}
	for _, a := range arcs {
		u, _ := word.Parse(2, a.from)
		v, _ := word.Parse(2, a.to)
		if !g.HasArc(u.Int(), v.Int()) {
			t.Errorf("B(2,3) missing arc %s -> %s", a.from, a.to)
		}
	}
}

func TestWordAdjacencyMatchesCongruence(t *testing.T) {
	// Definition 2.2 (words) and Remark 2.6 (congruence) must agree.
	d, D := 3, 3
	g := DeBruijn(d, D)
	word.Enumerate(d, D, func(x word.Word) bool {
		for _, succ := range Successors(x) {
			if !g.HasArc(x.Int(), succ.Int()) {
				t.Fatalf("missing word arc %s -> %s", x, succ)
			}
		}
		if len(Successors(x)) != g.OutDegree(x.Int()) {
			t.Fatalf("degree mismatch at %s", x)
		}
		return true
	})
}

func TestRRKEqualsDeBruijn(t *testing.T) {
	// Remark 2.6: RRK(d, d^D) is the congruence form of B(d, D) — same
	// labelled digraph, not merely isomorphic.
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 5}, {3, 2}} {
		if !RRK(c.d, word.Pow(c.d, c.D)).Equal(DeBruijn(c.d, c.D)) {
			t.Errorf("RRK(%d,%d^%d) != B(%d,%d)", c.d, c.d, c.D, c.d, c.D)
		}
	}
}

func TestRRKFigure2(t *testing.T) {
	// Figure 2: RRK(2, 8): u -> {2u, 2u+1 mod 8}.
	g := RRK(2, 8)
	for u := 0; u < 8; u++ {
		for _, v := range []int{(2 * u) % 8, (2*u + 1) % 8} {
			if !g.HasArc(u, v) {
				t.Errorf("RRK(2,8) missing arc %d->%d", u, v)
			}
		}
	}
}

func TestImaseItohFigure3(t *testing.T) {
	// Figure 3: II(2, 8): u -> {-2u-1, -2u-2 mod 8}.
	g := ImaseItoh(2, 8)
	want := map[int][]int{
		0: {7, 6}, 1: {5, 4}, 2: {3, 2}, 3: {1, 0},
		4: {7, 6}, 5: {5, 4}, 6: {3, 2}, 7: {1, 0},
	}
	for u, vs := range want {
		for _, v := range vs {
			if !g.HasArc(u, v) {
				t.Errorf("II(2,8) missing arc %d->%d", u, v)
			}
		}
		if g.OutDegree(u) != 2 {
			t.Errorf("II(2,8) degree of %d = %d", u, g.OutDegree(u))
		}
	}
}

func TestImaseItohProperties(t *testing.T) {
	// II(d, d^D) has diameter D (minimum-diameter design).
	cases := []struct{ d, D int }{{2, 3}, {2, 5}, {3, 3}}
	for _, c := range cases {
		g := ImaseItoh(c.d, word.Pow(c.d, c.D))
		if got := g.Diameter(); got != c.D {
			t.Errorf("II(%d,%d^%d) diameter = %d, want %d", c.d, c.d, c.D, got, c.D)
		}
		if !g.IsRegular(c.d) {
			t.Errorf("II not regular")
		}
	}
	// II(d, d^{D-1}(d+1)) also has diameter D, with more nodes [21].
	g := ImaseItoh(2, 12) // d=2, D=3: 2^2*3 = 12
	if got := g.Diameter(); got != 3 {
		t.Errorf("II(2,12) diameter = %d, want 3", got)
	}
}

func TestBSigmaIdentityIsDeBruijn(t *testing.T) {
	if !BSigma(2, 4, perm.Identity(2)).Equal(DeBruijn(2, 4)) {
		t.Error("B_Id(2,4) != B(2,4)")
	}
}

func TestBBarEqualsImaseItoh(t *testing.T) {
	// The key observation in the proof of Proposition 3.3: B_C(d, D) in
	// congruence form is exactly II(d, d^D), as labelled digraphs.
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 4}, {3, 2}, {3, 3}} {
		bbar := BBar(c.d, c.D)
		ii := ImaseItoh(c.d, word.Pow(c.d, c.D))
		if !bbar.Equal(ii) {
			t.Errorf("B̄(%d,%d) != II(%d,%d^%d)", c.d, c.D, c.d, c.d, c.D)
		}
	}
}

func TestProposition32AllSigmas(t *testing.T) {
	// Proposition 3.2: B_σ(d, D) ≅ B(d, D) for every σ — checked
	// exhaustively over all d! permutations for small d, D.
	for _, c := range []struct{ d, D int }{{2, 3}, {3, 2}, {3, 3}} {
		perm.All(c.d, func(sigma perm.Perm) bool {
			if _, err := IsoBSigmaToB(c.d, c.D, sigma.Clone()); err != nil {
				t.Errorf("Prop 3.2 fails for d=%d D=%d σ=%v: %v", c.d, c.D, sigma, err)
			}
			return true
		})
	}
}

func TestProposition32LargerRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(3)
		D := 2 + rng.Intn(4)
		sigma := perm.Random(d, rng)
		if _, err := IsoBSigmaToB(d, D, sigma); err != nil {
			t.Errorf("Prop 3.2 fails for d=%d D=%d σ=%v: %v", d, D, sigma, err)
		}
	}
}

func TestProposition33(t *testing.T) {
	// II(d, d^D) ≅ B(d, D) via the complement witness.
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 6}, {3, 3}, {4, 2}, {2, 8}} {
		if _, err := IsoIIToB(c.d, c.D); err != nil {
			t.Errorf("Prop 3.3 fails for d=%d D=%d: %v", c.d, c.D, err)
		}
	}
}

func TestCorollary34(t *testing.T) {
	// B(d,D), RRK(d,d^D), II(d,d^D) pairwise isomorphic (d=2, D=3 of
	// Figures 1-3).
	b := DeBruijn(2, 3)
	r := RRK(2, 8)
	ii := ImaseItoh(2, 8)
	if !b.Equal(r) {
		t.Error("B(2,3) != RRK(2,8) as labelled digraphs")
	}
	mapping, err := IsoIIToB(2, 3)
	if err != nil {
		t.Fatalf("II(2,8) ≇ B(2,3): %v", err)
	}
	if err := digraph.VerifyIsomorphism(ii, r, mapping); err != nil {
		t.Errorf("II(2,8) ≇ RRK(2,8): %v", err)
	}
}

func TestGeneralizedMultiSigma(t *testing.T) {
	// The remark after Proposition 3.2: independent σ_i per position still
	// gives a digraph isomorphic to B(d, D).
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(2)
		D := 2 + rng.Intn(3)
		sigmas := make([]perm.Perm, D)
		for i := range sigmas {
			sigmas[i] = perm.Random(d, rng)
		}
		g := BMultiSigma(d, D, sigmas)
		mapping := GeneralizedWitness(d, D, sigmas)
		if err := digraph.VerifyIsomorphism(g, DeBruijn(d, D), mapping); err != nil {
			t.Fatalf("generalized witness fails d=%d D=%d: %v", d, D, err)
		}
	}
}

func TestBMultiSigmaReducesToBSigma(t *testing.T) {
	// With all σ_i = σ it must equal B_σ... except position 0: B_σ has α
	// raw while BMultiSigma has σ_{D-1}(α); both range over Z_d so the
	// digraphs coincide.
	d, D := 2, 3
	sigma := perm.Complement(d)
	sigmas := make([]perm.Perm, D)
	for i := range sigmas {
		sigmas[i] = sigma
	}
	if !BMultiSigma(d, D, sigmas).Equal(BSigma(d, D, sigma)) {
		t.Error("BMultiSigma with constant σ != BSigma")
	}
}

func TestKautzShape(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 2}, {2, 3}, {3, 2}, {2, 4}} {
		g, words := Kautz(c.d, c.D)
		n := KautzOrder(c.d, c.D)
		if g.N() != n || len(words) != n {
			t.Fatalf("K(%d,%d) has %d vertices, want %d", c.d, c.D, g.N(), n)
		}
		if !g.IsRegular(c.d) {
			t.Errorf("K(%d,%d) not regular", c.d, c.D)
		}
		if got := g.Diameter(); got != c.D {
			t.Errorf("K(%d,%d) diameter = %d", c.d, c.D, got)
		}
		if loops := g.Loops(); len(loops) != 0 {
			t.Errorf("K(%d,%d) has loops %v", c.d, c.D, loops)
		}
	}
}

func TestKautzWordsValid(t *testing.T) {
	_, words := Kautz(2, 3)
	for _, w := range words {
		for i := 0; i+1 < w.Len(); i++ {
			if w.Letter(i) == w.Letter(i+1) {
				t.Fatalf("Kautz word %s has equal consecutive letters", w)
			}
		}
	}
}

func TestKautzIsomorphicToImaseItoh(t *testing.T) {
	// The recalled result [21]: II(d, d^{D-1}(d+1)) ≅ K(d, D). The paper
	// cites rather than proves it, so we cross-check with the generic
	// isomorphism search on small instances.
	for _, c := range []struct{ d, D int }{{2, 2}, {2, 3}, {3, 2}} {
		k, _ := Kautz(c.d, c.D)
		ii := ImaseItoh(c.d, KautzOrder(c.d, c.D))
		if _, ok := digraph.FindIsomorphism(ii, k); !ok {
			t.Errorf("II(%d,%d) ≇ K(%d,%d)", c.d, KautzOrder(c.d, c.D), c.d, c.D)
		}
	}
}

func TestConjunctionRemark24(t *testing.T) {
	// B(d,k) ⊗ B(d',k) = B(dd',k), via generic isomorphism search.
	prod := digraph.Conjunction(DeBruijn(2, 2), DeBruijn(2, 2))
	b4 := DeBruijn(4, 2)
	if _, ok := digraph.FindIsomorphism(prod, b4); !ok {
		t.Error("B(2,2)⊗B(2,2) ≇ B(4,2)")
	}
}

func TestLineDigraphIsNextDeBruijn(t *testing.T) {
	l, _ := digraph.LineDigraph(DeBruijn(2, 3))
	if _, ok := digraph.FindIsomorphism(l, DeBruijn(2, 4)); !ok {
		t.Error("L(B(2,3)) ≇ B(2,4)")
	}
}

func TestOrderHelpers(t *testing.T) {
	if Order(2, 8) != 256 {
		t.Error("Order(2,8) != 256")
	}
	if KautzOrder(2, 8) != 384 {
		t.Error("KautzOrder(2,8) != 384 (Table 1 row)")
	}
	if KautzOrder(2, 9) != 768 || KautzOrder(2, 10) != 1536 {
		t.Error("KautzOrder rows for D=9,10 wrong")
	}
}
