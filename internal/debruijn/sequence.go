package debruijn

import (
	"fmt"

	"repro/internal/digraph"
	"repro/internal/word"
)

// De Bruijn sequences and Hamiltonian embeddings. The paper's motivation
// cites embeddings into de Bruijn digraphs [9]; the fundamental one is the
// ring: B(d, D) is Hamiltonian because an Eulerian circuit of B(d, D-1)
// visits every arc once, and the arcs of B(d, D-1) are exactly the
// vertices of B(d, D) (the line-digraph identity L(B(d, D-1)) = B(d, D)).
// The same circuit read as letters is a de Bruijn sequence: a cyclic word
// of length d^D in which every length-D word occurs exactly once.

// EulerianCircuit returns an Eulerian circuit of g as a vertex sequence
// (first vertex repeated at the end), or an error if none exists. g must
// be connected (ignoring isolated vertices) with in-degree = out-degree
// everywhere. Hierholzer's algorithm, O(n + m).
func EulerianCircuit(g *digraph.Digraph) ([]int, error) {
	n := g.N()
	in := g.InDegrees()
	start := -1
	for u := 0; u < n; u++ {
		if g.OutDegree(u) != in[u] {
			return nil, fmt.Errorf("debruijn: vertex %d has out-degree %d, in-degree %d",
				u, g.OutDegree(u), in[u])
		}
		if g.OutDegree(u) > 0 && start == -1 {
			start = u
		}
	}
	if start == -1 {
		return nil, fmt.Errorf("debruijn: digraph has no arcs")
	}
	// Hierholzer with an explicit stack; next[u] tracks the first unused
	// arc at u.
	next := make([]int, n)
	stack := []int{start}
	var circuit []int
	used := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		if next[u] < g.OutDegree(u) {
			v := g.Out(u)[next[u]]
			next[u]++
			used++
			stack = append(stack, v)
		} else {
			circuit = append(circuit, u)
			stack = stack[:len(stack)-1]
		}
	}
	if used != g.M() {
		return nil, fmt.Errorf("debruijn: digraph is not connected (used %d of %d arcs)", used, g.M())
	}
	// Hierholzer emits the circuit reversed.
	for i, j := 0, len(circuit)-1; i < j; i, j = i+1, j-1 {
		circuit[i], circuit[j] = circuit[j], circuit[i]
	}
	return circuit, nil
}

// Sequence returns a de Bruijn sequence of order D over Z_d: a cyclic
// sequence of d^D letters containing every word of length D exactly once
// as a window (read most-significant-first). Built from an Eulerian
// circuit of B(d, D-1); for D = 1 it is simply 0, 1, ..., d-1.
func Sequence(d, D int) ([]int, error) {
	if d < 1 || D < 1 {
		return nil, fmt.Errorf("debruijn: need d >= 1 and D >= 1")
	}
	if D == 1 {
		seq := make([]int, d)
		for i := range seq {
			seq[i] = i
		}
		return seq, nil
	}
	g := DeBruijn(d, D-1)
	circuit, err := EulerianCircuit(g)
	if err != nil {
		return nil, err
	}
	// Each arc u→v of B(d, D-1) contributes the letter α with
	// v = (du + α) mod d^{D-1}.
	nPrev := word.Pow(d, D-1)
	seq := make([]int, 0, word.Pow(d, D))
	for i := 0; i+1 < len(circuit); i++ {
		u, v := circuit[i], circuit[i+1]
		alpha := (v - d*u) % nPrev
		if alpha < 0 {
			alpha += nPrev
		}
		if alpha >= d {
			return nil, fmt.Errorf("debruijn: internal error, arc (%d,%d) has letter %d", u, v, alpha)
		}
		seq = append(seq, alpha)
	}
	return seq, nil
}

// VerifySequence checks that seq is a de Bruijn sequence of order D over
// Z_d: length d^D with every D-window (cyclically) distinct.
func VerifySequence(d, D int, seq []int) error {
	n := word.Pow(d, D)
	if len(seq) != n {
		return fmt.Errorf("debruijn: sequence length %d, want %d", len(seq), n)
	}
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		v := 0
		for k := 0; k < D; k++ {
			letter := seq[(i+k)%n]
			if letter < 0 || letter >= d {
				return fmt.Errorf("debruijn: letter %d out of Z_%d", letter, d)
			}
			//lint:ignore overflowguard v < d^D = n, and n fit in int via the guarded word.Pow above
			v = v*d + letter
		}
		if seen[v] {
			return fmt.Errorf("debruijn: window at %d repeats word %d", i, v)
		}
		seen[v] = true
	}
	return nil
}

// HamiltonianCycle returns a Hamiltonian cycle of B(d, D) as a vertex
// sequence of length d^D (the successor of the last vertex is the first):
// the ring embedding with dilation 1. Derived from Sequence via the
// line-digraph identity.
func HamiltonianCycle(d, D int) ([]int, error) {
	seq, err := Sequence(d, D)
	if err != nil {
		return nil, err
	}
	n := word.Pow(d, D)
	cycle := make([]int, n)
	for i := 0; i < n; i++ {
		v := 0
		for k := 0; k < D; k++ {
			//lint:ignore overflowguard v < d^D = n, and n fit in int via the guarded word.Pow above
			v = v*d + seq[(i+k)%n]
		}
		cycle[i] = v
	}
	return cycle, nil
}

// VerifyHamiltonianCycle checks that cycle visits every vertex of g
// exactly once using only arcs of g, closing back to the start.
func VerifyHamiltonianCycle(g *digraph.Digraph, cycle []int) error {
	n := g.N()
	if len(cycle) != n {
		return fmt.Errorf("debruijn: cycle length %d, want %d", len(cycle), n)
	}
	seen := make([]bool, n)
	for i, u := range cycle {
		if u < 0 || u >= n {
			return fmt.Errorf("debruijn: vertex %d out of range", u)
		}
		if seen[u] {
			return fmt.Errorf("debruijn: vertex %d repeated", u)
		}
		seen[u] = true
		v := cycle[(i+1)%n]
		if !g.HasArc(u, v) {
			return fmt.Errorf("debruijn: cycle uses missing arc (%d,%d)", u, v)
		}
	}
	return nil
}
