package debruijn

import (
	"repro/internal/digraph"
	"repro/internal/perm"
	"repro/internal/word"
)

// Explicit isomorphism witnesses from Section 3.1 of the paper.

// WitnessW returns the isomorphism W of Proposition 3.2 from B_σ(d, D) onto
// B(d, D), as a vertex mapping over the Horner labels:
//
//	W(x_{D-1} x_{D-2} ... x_0) = σ⁰(x_{D-1}) σ¹(x_{D-2}) ... σ^{D-1}(x_0),
//
// i.e. letter x_i is replaced by σ^{D-1-i}(x_i). mapping[u] is the B-vertex
// image of B_σ-vertex u.
func WitnessW(d, D int, sigma perm.Perm) []int {
	if sigma.N() != d {
		panic("debruijn: alphabet permutation size mismatch")
	}
	// Precompute σ^k for k = 0..D-1.
	powers := make([]perm.Perm, D)
	powers[0] = perm.Identity(d)
	for k := 1; k < D; k++ {
		powers[k] = sigma.Compose(powers[k-1])
	}
	n := word.Pow(d, D)
	mapping := make([]int, n)
	for u := 0; u < n; u++ {
		x := word.MustFromInt(d, D, u)
		y := word.New(d, D)
		for i := 0; i < D; i++ {
			y = y.WithLetter(i, powers[D-1-i].Apply(x.Letter(i)))
		}
		mapping[u] = y.Int()
	}
	return mapping
}

// IsoBSigmaToB verifies Proposition 3.2 constructively: it builds
// B_σ(d, D), applies WitnessW and checks the mapping is an isomorphism onto
// B(d, D), returning the mapping.
func IsoBSigmaToB(d, D int, sigma perm.Perm) ([]int, error) {
	mapping := WitnessW(d, D, sigma)
	bs := BSigma(d, D, sigma)
	b := DeBruijn(d, D)
	if err := digraph.VerifyIsomorphism(bs, b, mapping); err != nil {
		return nil, err
	}
	return mapping, nil
}

// WitnessIIToB returns the isomorphism of Proposition 3.3 from II(d, d^D)
// onto B(d, D). The proof observes that II(d, d^D) is exactly B_C(d, D) in
// congruence form (C the complement permutation of Definition 2.1), so the
// Proposition 3.2 witness with σ = C applies: since C is an involution,
// letter x_i of the II vertex maps to C(x_i) when D-1-i is odd and to x_i
// when it is even.
func WitnessIIToB(d, D int) []int {
	return WitnessW(d, D, perm.Complement(d))
}

// IsoIIToB verifies Corollary 3.4 constructively for II: it checks that
// II(d, d^D) is the same labelled digraph as B_C(d, D) and that the
// Proposition 3.2 witness carries it onto B(d, D).
func IsoIIToB(d, D int) ([]int, error) {
	mapping := WitnessIIToB(d, D)
	ii := ImaseItoh(d, word.Pow(d, D))
	b := DeBruijn(d, D)
	if err := digraph.VerifyIsomorphism(ii, b, mapping); err != nil {
		return nil, err
	}
	return mapping, nil
}

// GeneralizedWitness returns the isomorphism onto B(d, D) for the digraph
// mentioned after Proposition 3.2, where each shifted position uses its own
// alphabet permutation σ_i:
//
//	Γ⁺(x) = {σ_0(x_{D-2}) σ_1(x_{D-3}) ... σ_{D-2}(x_0) σ_{D-1}(α) : α ∈ Z_d}.
//
// The witness generalizes W: letter x_i is replaced by
// (σ_0 ∘ σ_1 ∘ ... ∘ σ_{D-2-i})(x_i) — the composition of the first D-1-i
// permutations, applied innermost-last (τ_{j-1} = τ_j ∘ σ_{D-1-j} with
// τ_{D-1} = Id, exactly as in the Proposition 3.2 proof).
func GeneralizedWitness(d, D int, sigmas []perm.Perm) []int {
	if len(sigmas) != D {
		panic("debruijn: need exactly D alphabet permutations")
	}
	// prefix[k] = σ_0 ∘ σ_1 ∘ ... ∘ σ_{k-1}, with prefix[0] = Id.
	prefix := make([]perm.Perm, D+1)
	prefix[0] = perm.Identity(d)
	for k := 1; k <= D; k++ {
		prefix[k] = prefix[k-1].Compose(sigmas[k-1])
	}
	n := word.Pow(d, D)
	mapping := make([]int, n)
	for u := 0; u < n; u++ {
		x := word.MustFromInt(d, D, u)
		y := word.New(d, D)
		for i := 0; i < D; i++ {
			y = y.WithLetter(i, prefix[D-1-i].Apply(x.Letter(i)))
		}
		mapping[u] = y.Int()
	}
	return mapping
}

// BMultiSigma builds the generalized alphabet digraph described after
// Proposition 3.2, with a distinct permutation σ_i applied at each position:
// Γ⁺(x_{D-1} ... x_0) = {σ_0(x_{D-2}) ... σ_{D-2}(x_0) σ_{D-1}(α) : α ∈ Z_d}.
func BMultiSigma(d, D int, sigmas []perm.Perm) *digraph.Digraph {
	if len(sigmas) != D {
		panic("debruijn: need exactly D alphabet permutations")
	}
	for _, s := range sigmas {
		if s.N() != d {
			panic("debruijn: alphabet permutation size mismatch")
		}
	}
	n := word.Pow(d, D)
	return digraph.FromFunc(n, func(u int) []int {
		x := word.MustFromInt(d, D, u)
		// Successor letters: position j (1 ≤ j ≤ D-1) holds σ_{D-1-j}(x_{j-1});
		// position 0 holds σ_{D-1}(α), which ranges over all of Z_d.
		y := word.New(d, D)
		for j := 1; j < D; j++ {
			y = y.WithLetter(j, sigmas[D-1-j].Apply(x.Letter(j-1)))
		}
		out := make([]int, d)
		for alpha := 0; alpha < d; alpha++ {
			out[alpha] = y.WithLetter(0, sigmas[D-1].Apply(alpha)).Int()
		}
		return out
	})
}
