package debruijn

import (
	"testing"

	"repro/internal/digraph"
	"repro/internal/word"
)

func TestEulerianCircuitCircuitGraph(t *testing.T) {
	g := digraph.Circuit(5)
	circuit, err := EulerianCircuit(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(circuit) != 6 || circuit[0] != circuit[5] {
		t.Fatalf("circuit %v", circuit)
	}
}

func TestEulerianCircuitDeBruijn(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 3}, {3, 2}, {2, 6}} {
		g := DeBruijn(c.d, c.D)
		circuit, err := EulerianCircuit(g)
		if err != nil {
			t.Fatalf("B(%d,%d): %v", c.d, c.D, err)
		}
		if len(circuit) != g.M()+1 {
			t.Fatalf("circuit length %d, want %d", len(circuit), g.M()+1)
		}
		if circuit[0] != circuit[len(circuit)-1] {
			t.Fatal("circuit not closed")
		}
		// Every consecutive pair must be an arc, and every arc must be
		// used exactly once.
		type arc struct{ u, v int }
		usage := map[arc]int{}
		for i := 0; i+1 < len(circuit); i++ {
			usage[arc{circuit[i], circuit[i+1]}]++
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Out(u) {
				if usage[arc{u, v}] != g.ArcMultiplicity(u, v) {
					t.Fatalf("arc (%d,%d) used %d times, multiplicity %d",
						u, v, usage[arc{u, v}], g.ArcMultiplicity(u, v))
				}
			}
		}
	}
}

func TestEulerianCircuitErrors(t *testing.T) {
	// Unbalanced degrees.
	g := digraph.New(2)
	g.AddArc(0, 1)
	if _, err := EulerianCircuit(g); err == nil {
		t.Error("unbalanced digraph accepted")
	}
	// Disconnected but balanced.
	h := digraph.New(4)
	h.AddArc(0, 1)
	h.AddArc(1, 0)
	h.AddArc(2, 3)
	h.AddArc(3, 2)
	if _, err := EulerianCircuit(h); err == nil {
		t.Error("disconnected digraph accepted")
	}
	// No arcs at all.
	if _, err := EulerianCircuit(digraph.New(3)); err == nil {
		t.Error("arcless digraph accepted")
	}
}

func TestSequence(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 1}, {2, 3}, {2, 8}, {3, 3}, {4, 2}, {5, 1}} {
		seq, err := Sequence(c.d, c.D)
		if err != nil {
			t.Fatalf("Sequence(%d,%d): %v", c.d, c.D, err)
		}
		if err := VerifySequence(c.d, c.D, seq); err != nil {
			t.Errorf("Sequence(%d,%d) invalid: %v", c.d, c.D, err)
		}
	}
}

func TestVerifySequenceRejects(t *testing.T) {
	if err := VerifySequence(2, 2, []int{0, 0, 1, 1}); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	if VerifySequence(2, 2, []int{0, 0, 0, 1}) == nil {
		t.Error("repeating windows accepted")
	}
	if VerifySequence(2, 2, []int{0, 0, 1}) == nil {
		t.Error("short sequence accepted")
	}
	if VerifySequence(2, 2, []int{0, 0, 2, 1}) == nil {
		t.Error("out-of-alphabet letter accepted")
	}
}

func TestHamiltonianCycle(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 7}, {3, 3}} {
		cycle, err := HamiltonianCycle(c.d, c.D)
		if err != nil {
			t.Fatalf("HamiltonianCycle(%d,%d): %v", c.d, c.D, err)
		}
		if err := VerifyHamiltonianCycle(DeBruijn(c.d, c.D), cycle); err != nil {
			t.Errorf("B(%d,%d): %v", c.d, c.D, err)
		}
	}
}

func TestVerifyHamiltonianCycleRejects(t *testing.T) {
	g := DeBruijn(2, 2)
	if VerifyHamiltonianCycle(g, []int{0, 1, 2}) == nil {
		t.Error("short cycle accepted")
	}
	if VerifyHamiltonianCycle(g, []int{0, 1, 1, 2}) == nil {
		t.Error("repeated vertex accepted")
	}
	if VerifyHamiltonianCycle(g, []int{0, 2, 1, 3}) == nil {
		t.Error("non-arc step accepted (0→2 is not an arc of B(2,2))")
	}
}

func TestSequenceWindowsAreLineDigraphWalk(t *testing.T) {
	// Consecutive windows of the sequence are consecutive vertices of the
	// Hamiltonian cycle — i.e. de Bruijn successors.
	d, D := 2, 5
	seq, _ := Sequence(d, D)
	cycle, _ := HamiltonianCycle(d, D)
	n := word.Pow(d, D)
	for i := 0; i < n; i++ {
		u := word.MustFromInt(d, D, cycle[i])
		v := word.MustFromInt(d, D, cycle[(i+1)%n])
		// v must be the left shift of u fed with the next letter.
		want := u.LeftShiftAppend(v.Letter(0))
		if !v.Equal(want) {
			t.Fatalf("window %d: %s does not shift to %s", i, u, v)
		}
	}
	_ = seq
}
