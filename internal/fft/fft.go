// Package fft implements the Pease (constant-geometry) radix-2 FFT, the
// parallel FFT whose inter-stage dataflow is exactly the de Bruijn
// digraph: at every one of the D = log2 n stages, position u is computed
// from positions ⌊u/2⌋ and ⌊u/2⌋ + n/2 — the two in-neighbours of u in
// B(2, D) congruence form. This is the algorithmic content behind two of
// the paper's citations: the FFT as a de Bruijn-network algorithm
// (Cooley–Tukey, reference [12]) and the UCSD Parallel Optoelectronic FFT
// Engine built on OTIS (Marchand, Zane, Paturi, Esener, reference [24]).
//
// Mapping one array slot per processor of an OTIS-realized B(2, D)
// network, each FFT stage is one single-hop communication step.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/digraph"
)

// Transform computes the DFT X[k] = Σ_j x[j]·exp(-2πi jk/n) of a
// power-of-two-length input using the constant-geometry Pease dataflow.
// The input is consumed in natural order and the result returned in
// natural order (the final bit-reversal is folded into the output copy).
func Transform(x []complex128) ([]complex128, error) {
	n := len(x)
	D, err := log2Exact(n)
	if err != nil {
		return nil, err
	}
	z := append([]complex128(nil), x...)
	buf := make([]complex128, n)
	for s := 1; s <= D; s++ {
		peaseStage(z, buf, s)
		z, buf = buf, z
	}
	// z[u] = X[bitrev(u)].
	out := make([]complex128, n)
	for u := 0; u < n; u++ {
		out[bitrev(u, D)] = z[u]
	}
	return out, nil
}

// Inverse computes the inverse DFT, normalized by 1/n.
func Inverse(x []complex128) ([]complex128, error) {
	n := len(x)
	conj := make([]complex128, n)
	for i, v := range x {
		conj[i] = cmplx.Conj(v)
	}
	y, err := Transform(conj)
	if err != nil {
		return nil, err
	}
	for i, v := range y {
		y[i] = cmplx.Conj(v) / complex(float64(n), 0)
	}
	return y, nil
}

// peaseStage applies stage s (1-based) of the constant-geometry DIF
// decomposition: for every pair index j ∈ [0, n/2),
//
//	out[2j]   = in[j] + in[j+n/2]
//	out[2j+1] = (in[j] - in[j+n/2]) · w_n^{e}
//
// with twiddle exponent e = j with its low s-1 bits cleared (the local
// pair index within the stage's subproblem, rescaled to w_n).
func peaseStage(in, out []complex128, s int) {
	n := len(in)
	half := n / 2
	mask := (1 << uint(s-1)) - 1
	for j := 0; j < half; j++ {
		a, b := in[j], in[j+half]
		e := j &^ mask
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(e)/float64(n)))
		out[2*j] = a + b
		out[2*j+1] = (a - b) * w
	}
}

// StageSources returns the positions read when computing position u of a
// stage's output: ⌊u/2⌋ and ⌊u/2⌋ + n/2. These are the in-neighbours of u
// in B(2, D), so one FFT stage = one hop on the de Bruijn network,
// identical at every stage (Pease's "constant geometry").
func StageSources(u, n int) [2]int {
	return [2]int{u / 2, u/2 + n/2}
}

// VerifyDataflow checks, for every position, that the stage reads are
// exactly the de Bruijn in-neighbours — i.e. that an OTIS-realized
// B(2, D) network supports every FFT stage as single-hop traffic.
func VerifyDataflow(D int) error {
	n := 1 << uint(D)
	b := digraph.FromFunc(n, func(u int) []int {
		return []int{(2 * u) % n, (2*u + 1) % n}
	})
	for u := 0; u < n; u++ {
		for _, v := range StageSources(u, n) {
			if !b.HasArc(v, u) {
				return fmt.Errorf("fft: stage read %d→%d is not a de Bruijn arc", v, u)
			}
		}
	}
	return nil
}

// Naive computes the DFT directly in O(n²); the test oracle.
func Naive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(j*k%n) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// Convolve returns the circular convolution of a and b (equal power-of-two
// lengths) via the FFT.
func Convolve(a, b []complex128) ([]complex128, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("fft: convolve length mismatch %d vs %d", len(a), len(b))
	}
	fa, err := Transform(a)
	if err != nil {
		return nil, err
	}
	fb, err := Transform(b)
	if err != nil {
		return nil, err
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	return Inverse(fa)
}

// Stages returns D = log2 n, the number of single-hop communication
// rounds an OTIS de Bruijn machine needs for the transform.
func Stages(n int) (int, error) { return log2Exact(n) }

func log2Exact(n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("fft: length %d < 1", n)
	}
	D := 0
	for v := n; v > 1; v >>= 1 {
		if v&1 == 1 {
			return 0, fmt.Errorf("fft: length %d is not a power of two", n)
		}
		D++
	}
	return D, nil
}

func bitrev(v, width int) int {
	out := 0
	for i := 0; i < width; i++ {
		out |= (v >> uint(i) & 1) << uint(width-1-i)
	}
	return out
}
