package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

const tol = 1e-9

func randomSignal(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestTransformMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		x := randomSignal(n, rng)
		got, err := Transform(x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := Naive(x)
		if e := maxErr(got, want); e > tol*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestTransformKnownValues(t *testing.T) {
	// DFT of the unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	got, _ := Transform(x)
	for k, v := range got {
		if cmplx.Abs(v-1) > tol {
			t.Fatalf("impulse DFT[%d] = %v", k, v)
		}
	}
	// DFT of the constant signal is n·δ.
	for i := range x {
		x[i] = 1
	}
	got, _ = Transform(x)
	if cmplx.Abs(got[0]-8) > tol {
		t.Errorf("DC bin = %v", got[0])
	}
	for k := 1; k < 8; k++ {
		if cmplx.Abs(got[k]) > tol {
			t.Errorf("bin %d = %v, want 0", k, got[k])
		}
	}
	// A pure tone lands in a single bin.
	n := 16
	tone := make([]complex128, n)
	for j := range tone {
		tone[j] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(j)/float64(n)))
	}
	got, _ = Transform(tone)
	for k := 0; k < n; k++ {
		want := complex(0, 0)
		if k == 3 {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(got[k]-want) > 1e-8 {
			t.Errorf("tone bin %d = %v, want %v", k, got[k], want)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{2, 16, 128} {
		x := randomSignal(n, rng)
		y, err := Transform(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse(y)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(back, x); e > tol*float64(n) {
			t.Errorf("n=%d: round trip error %g", n, e)
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := randomSignal(256, rng)
	y, _ := Transform(x)
	var ex, ey float64
	for i := range x {
		ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	if math.Abs(ey-256*ex)/ey > 1e-9 {
		t.Errorf("Parseval violated: %g vs %g", ey, 256*ex)
	}
}

func TestRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := Transform(make([]complex128, 12)); err == nil {
		t.Error("length 12 accepted")
	}
	if _, err := Transform(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Stages(48); err == nil {
		t.Error("Stages(48) accepted")
	}
}

func TestStages(t *testing.T) {
	if s, err := Stages(1024); err != nil || s != 10 {
		t.Errorf("Stages(1024) = %d, %v", s, err)
	}
}

func TestStageSourcesAreDeBruijnInNeighbours(t *testing.T) {
	for _, D := range []int{1, 3, 8, 10} {
		if err := VerifyDataflow(D); err != nil {
			t.Errorf("D=%d: %v", D, err)
		}
	}
}

func TestStageSources(t *testing.T) {
	src := StageSources(5, 16)
	if src != [2]int{2, 10} {
		t.Errorf("StageSources(5,16) = %v", src)
	}
}

func TestConvolve(t *testing.T) {
	// Circular convolution against the O(n²) definition.
	rng := rand.New(rand.NewSource(33))
	n := 64
	a := randomSignal(n, rng)
	b := randomSignal(n, rng)
	got, err := Convolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			want[k] += a[j] * b[(k-j+n)%n]
		}
	}
	if e := maxErr(got, want); e > 1e-8 {
		t.Errorf("convolution error %g", e)
	}
	if _, err := Convolve(a, a[:32]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func BenchmarkTransform1024(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	x := randomSignal(1024, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Transform(x); err != nil {
			b.Fatal(err)
		}
	}
}
