package obs

import (
	"expvar"
	"fmt"
	"sync"
	"testing"
)

// Expvar state is process-global and unpublishable, so every test here
// uses names unique to itself and never reuses another test's names.

func snapshotFromExpvar(t *testing.T, name string) RunMetrics {
	t.Helper()
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	f, ok := v.(expvar.Func)
	if !ok {
		t.Fatalf("expvar %q is %T, want expvar.Func", name, v)
	}
	m, ok := f.Value().(RunMetrics)
	if !ok {
		t.Fatalf("expvar %q yields %T, want RunMetrics", name, f.Value())
	}
	return m
}

func TestPublishExpvarTwoRegistriesIndependent(t *testing.T) {
	// Regression: a multi-tenant service publishes one live registry
	// per tenant. Distinct names must stay fully independent and must
	// not panic on the second Publish.
	ra := NewRegistry()
	rb := NewRegistry()
	ra.Counter("delivered").Add(7)
	rb.Counter("delivered").Add(11)
	ra.PublishExpvar("obs_test_tenant_a")
	rb.PublishExpvar("obs_test_tenant_b")

	ma := snapshotFromExpvar(t, "obs_test_tenant_a")
	mb := snapshotFromExpvar(t, "obs_test_tenant_b")
	if got := ma.Counters["delivered"]; got != 7 {
		t.Errorf("tenant a delivered = %d, want 7", got)
	}
	if got := mb.Counters["delivered"]; got != 11 {
		t.Errorf("tenant b delivered = %d, want 11", got)
	}
}

func TestPublishExpvarRebindsDuplicateName(t *testing.T) {
	// Tenant churn: a new registry published under a previously used
	// name must take the name over (expvar.Publish itself would panic),
	// so restarted tenants don't serve the dead tenant's metrics.
	old := NewRegistry()
	old.Counter("runs").Add(3)
	old.PublishExpvar("obs_test_tenant_churn")

	fresh := NewRegistry()
	fresh.Counter("runs").Add(1)
	fresh.PublishExpvar("obs_test_tenant_churn") // must not panic

	m := snapshotFromExpvar(t, "obs_test_tenant_churn")
	if got := m.Counters["runs"]; got != 1 {
		t.Errorf("after rebind runs = %d, want 1 (fresh registry)", got)
	}
	old.Counter("runs").Add(100)
	m = snapshotFromExpvar(t, "obs_test_tenant_churn")
	if got := m.Counters["runs"]; got != 1 {
		t.Errorf("old registry still visible after rebind: runs = %d, want 1", got)
	}
}

func TestPublishExpvarLeavesForeignNamesAlone(t *testing.T) {
	// A name published by code outside this package is not ours to
	// rebind; PublishExpvar must neither panic nor hijack it.
	foreign := new(expvar.Int)
	foreign.Set(42)
	expvar.Publish("obs_test_foreign", foreign)

	r := NewRegistry()
	r.Counter("runs").Inc()
	r.PublishExpvar("obs_test_foreign") // must not panic

	v := expvar.Get("obs_test_foreign")
	if got := v.String(); got != "42" {
		t.Errorf("foreign expvar overwritten: %s, want 42", got)
	}
}

func TestPublishExpvarManyTenantsConcurrent(t *testing.T) {
	// Publishing and re-publishing from concurrent tenants must be
	// race-free (run under -race in check.sh).
	const tenants = 16
	var wg sync.WaitGroup
	wg.Add(tenants)
	for i := 0; i < tenants; i++ {
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("obs_test_conc_%d", i%4)
			for j := 0; j < 8; j++ {
				r := NewRegistry()
				r.Counter("runs").Inc()
				r.PublishExpvar(name)
				v := expvar.Get(name)
				if v == nil {
					t.Errorf("expvar %q not published", name)
					return
				}
				if f, ok := v.(expvar.Func); ok {
					f.Value() // exercise the snapshot path under race
				}
			}
		}(i)
	}
	wg.Wait()
}
