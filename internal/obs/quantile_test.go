package obs

import "testing"

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %d, want 0", got)
	}

	// 100 observations of 1µs and one of 1000µs: the p99 must land in
	// the dense bucket (upper edge 1), and only the extreme tail sees
	// the outlier — reported as the clamped max, not bucket edge 1023.
	for i := 0; i < 100; i++ {
		h.Observe(1)
	}
	h.Observe(1000)
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := h.Quantile(0.99); got != 1 {
		t.Errorf("p99 = %d, want 1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %d, want 1000 (clamped to max)", got)
	}

	// Out-of-range q clamps rather than panics.
	if got := h.Quantile(-1); got != 1 {
		t.Errorf("q<0 = %d, want 1 (clamped to q=0 => first observation)", got)
	}
	if got := h.Quantile(2); got != 1000 {
		t.Errorf("q>1 = %d, want 1000", got)
	}

	// All observations <= 0 report 0 exactly.
	var z Histogram
	z.Observe(0)
	z.Observe(-5)
	if got := z.Quantile(0.99); got != 0 {
		t.Errorf("non-positive-only p99 = %d, want 0", got)
	}

	// Bucket upper-edge bound: values 8..15 share bucket 4; any quantile
	// inside it reports the bucket edge 15, and the top reports max.
	var b Histogram
	for _, v := range []int64{8, 9, 10, 11} {
		b.Observe(v)
	}
	if got := b.Quantile(0.5); got != 11 {
		// edge 2^4-1 = 15 clamps to max 11
		t.Errorf("bucket-bound p50 = %d, want 11", got)
	}
}
