package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	// Power-of-two buckets: 0 holds v <= 0, bucket i holds
	// [2^(i-1), 2^i - 1].
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 62, HistogramBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106 || h.Max() != 100 {
		t.Errorf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if mean := h.Mean(); mean != 26.5 {
		t.Errorf("mean = %v, want 26.5", mean)
	}
	snap := h.snapshot()
	var n int64
	for _, b := range snap.Buckets {
		n += b
	}
	if n != snap.Count {
		t.Errorf("bucket sum %d != count %d", n, snap.Count)
	}
	if len(snap.Buckets) == 0 || snap.Buckets[len(snap.Buckets)-1] == 0 {
		t.Errorf("trailing zeros not trimmed: %v", snap.Buckets)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("Counter not idempotent")
	}
	if reg.Gauge("g") != reg.Gauge("g") {
		t.Error("Gauge not idempotent")
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Error("Histogram not idempotent")
	}
	counters, gauges, hists := reg.Names()
	if len(counters) != 1 || len(gauges) != 1 || len(hists) != 1 {
		t.Errorf("Names() = %v %v %v", counters, gauges, hists)
	}
}

// TestNilRecorderSafe drives every exported method through a nil
// receiver: the uninstrumented mode the simulators rely on.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.SizeArcs(10)
	r.ArcTraverse(3)
	r.QueueDepth(1, 2)
	r.NodeQueueDepth(2)
	r.Deliver(10, 3)
	r.Drop(DropTTL)
	r.Reroute()
	r.Retry()
	r.Deflect()
	r.Arena(true)
	r.RouterBuild(1, 2)
	if r.Registry() != nil || r.Arcs() != 0 || r.ArcTraversals() != nil || r.ArcPeakQueue() != nil {
		t.Error("nil recorder leaked state")
	}
	snap := r.Snapshot()
	if snap.Schema != RunMetricsSchema {
		t.Errorf("nil snapshot schema %q", snap.Schema)
	}
}

func TestSizeArcsGrowthPreservesCounts(t *testing.T) {
	r := NewRecorder(nil)
	r.SizeArcs(4)
	r.ArcTraverse(2)
	r.QueueDepth(2, 7)
	r.SizeArcs(2) // never shrinks
	if r.Arcs() != 4 {
		t.Fatalf("Arcs() = %d after shrink attempt", r.Arcs())
	}
	r.SizeArcs(8)
	tr, pq := r.ArcTraversals(), r.ArcPeakQueue()
	if len(tr) != 8 || tr[2] != 1 || pq[2] != 7 {
		t.Errorf("growth lost counts: traversals %v peaks %v", tr, pq)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(nil)
	r.SizeArcs(16)
	var wg sync.WaitGroup
	workers := 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.ArcTraverse(i % 16)
				r.QueueDepth(i%16, i%9)
				r.Deliver(i, 3)
				r.Drop(DropCause(i % 5))
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, v := range r.ArcTraversals() {
		total += v
	}
	if total != 8000 {
		t.Errorf("traversal slab total %d, want 8000", total)
	}
	snap := r.Snapshot()
	if snap.Counters[MetricArcTraversed] != 8000 || snap.Counters[MetricDelivered] != 8000 {
		t.Errorf("counters %v", snap.Counters)
	}
	if snap.Counters[MetricDropped] != 8000 {
		t.Errorf("dropped %d", snap.Counters[MetricDropped])
	}
}

func TestValidateRunMetrics(t *testing.T) {
	r := NewRecorder(nil)
	r.SizeArcs(4)
	r.ArcTraverse(1)
	r.Deliver(5, 2)
	data, err := r.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRunMetrics(data); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}

	bad := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", "{", "unexpected"},
		{"wrong schema", `{"schema":"OBS_run/v0"}`, "schema"},
		{"negative counter", `{"schema":"OBS_run/v1","counters":{"x":-1}}`, "negative"},
		{"bucket mismatch", `{"schema":"OBS_run/v1","histograms":{"h":{"count":2,"sum":3,"max":2,"buckets":[1]}}}`, "bucket"},
		{"arc slab mismatch", `{"schema":"OBS_run/v1","arcs":{"arcs":3,"traversals":[1],"peak_queue":[0,0,0]}}`, "arc"},
		{"bad lens side", `{"schema":"OBS_run/v1","lenses":[{"lens":0,"side":"up","arcs":1,"traversals":0,"share":0}]}`, "side"},
		{"share overflow", `{"schema":"OBS_run/v1","lenses":[{"lens":0,"side":"tx","arcs":1,"traversals":1,"share":0.9},{"lens":1,"side":"tx","arcs":1,"traversals":1,"share":0.9}]}`, "share"},
	}
	for _, c := range bad {
		err := ValidateRunMetrics([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDropCauseNames(t *testing.T) {
	want := map[DropCause]string{
		DropNoRoute: "noroute", DropTTL: "ttl", DropFault: "fault",
		DropHorizon: "horizon", DropStuck: "stuck", DropCause(99): "unknown",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), name)
		}
	}
}
