package obs

import (
	"encoding/json"
	"fmt"
	"math"
)

// RunMetricsSchema identifies the JSON document format emitted by
// Snapshot; bump on breaking changes.
const RunMetricsSchema = "OBS_run/v1"

// HistogramSnapshot is the JSON form of one histogram. Buckets are the
// power-of-two buckets of Histogram with trailing empty buckets
// trimmed: bucket 0 counts observations <= 0, bucket i observations in
// [2^(i-1), 2^i - 1].
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Max     int64   `json:"max"`
	Buckets []int64 `json:"buckets"`
}

// Quantile returns an upper bound on the q-quantile of the recorded
// observations, derived from the power-of-two buckets: the upper edge
// (2^i − 1) of the bucket holding the q-th observation, clamped to the
// recorded Max. q is clamped to [0, 1]; an empty histogram reports 0.
// The bound is exact for bucket-0 observations (≤ 0 → 0) and otherwise
// within 2× of the true quantile — tail-latency precision enough for
// p99 SLO accounting without storing samples.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			if i == 0 {
				return 0
			}
			ub := int64(1)<<uint(i) - 1
			if s.Max > 0 && ub > s.Max {
				ub = s.Max
			}
			return ub
		}
	}
	return s.Max
}

// ArcMetrics is the per-arc utilization section: flat slabs indexed by
// the simulator's CSR arc layout (arcBase[tail] + adjacency position).
type ArcMetrics struct {
	// Arcs is the slab length (the digraph's arc count M).
	Arcs int `json:"arcs"`
	// Traversals[a] counts packet hops over flat arc a.
	Traversals []int64 `json:"traversals"`
	// PeakQueue[a] is the deepest arc a's output queue got.
	PeakQueue []int64 `json:"peak_queue"`
}

// LensUtilization is one lens of an OTIS layout with the traffic its
// arc group carried. Every hop of the physical machine crosses exactly
// one transmitter-side and one receiver-side lens, so within each side
// the Share values sum to 1 on a run with any traffic.
type LensUtilization struct {
	// Lens is the lens number (0..P-1 transmitter side, P..P+Q-1
	// receiver side).
	Lens int `json:"lens"`
	// Side is "tx" or "rx".
	Side string `json:"side"`
	// Arcs is the size of the lens's arc group.
	Arcs int `json:"arcs"`
	// Traversals is the total hops carried by the group.
	Traversals int64 `json:"traversals"`
	// Share is Traversals over the run's total hops (0 when idle).
	Share float64 `json:"share"`
}

// LensCongestion is one lens of an OTIS layout with the worst queueing
// its arc group suffered: the peak output-queue depth over the group's
// arcs. Under bounded queues the peak never exceeds the configured
// QueueCapacity, so a lens pinned at capacity is the congestion hot spot
// backpressure is propagating from.
type LensCongestion struct {
	// Lens is the lens number (0..P-1 transmitter side, P..P+Q-1
	// receiver side).
	Lens int `json:"lens"`
	// Side is "tx" or "rx".
	Side string `json:"side"`
	// Arcs is the size of the lens's arc group.
	Arcs int `json:"arcs"`
	// PeakQueue is the deepest any queue in the group got.
	PeakQueue int64 `json:"peak_queue"`
}

// RunMetrics is the OBS_run/v1 document: one simulation run's (or
// accumulated sweep's) observability snapshot. Counters, gauges and
// histograms come from the Registry; Arcs, Lenses and Congestion are
// attached by Recorder.Snapshot and machine.RunMetrics respectively.
type RunMetrics struct {
	Schema     string                       `json:"schema"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Arcs       *ArcMetrics                  `json:"arcs,omitempty"`
	Lenses     []LensUtilization            `json:"lenses,omitempty"`
	Congestion []LensCongestion             `json:"lens_congestion,omitempty"`
}

// MarshalIndent renders the document as stable, human-diffable JSON
// (encoding/json sorts map keys) with a trailing newline.
func (m RunMetrics) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ValidateRunMetrics parses data as an OBS_run/v1 document and checks
// the invariants consumers rely on: the schema tag, non-negative
// counters and histogram fields, bucket sums matching counts, per-arc
// slab consistency, and per-side lens shares summing to at most 1.
func ValidateRunMetrics(data []byte) error {
	var m RunMetrics
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if m.Schema != RunMetricsSchema {
		return fmt.Errorf("obs: schema %q, want %q", m.Schema, RunMetricsSchema)
	}
	for name, v := range m.Counters {
		if v < 0 {
			return fmt.Errorf("obs: counter %q is negative (%d)", name, v)
		}
	}
	for name, h := range m.Histograms {
		if h.Count < 0 || h.Max < 0 {
			return fmt.Errorf("obs: histogram %q has negative count or max", name)
		}
		if len(h.Buckets) > HistogramBuckets {
			return fmt.Errorf("obs: histogram %q has %d buckets, max %d", name, len(h.Buckets), HistogramBuckets)
		}
		var total int64
		for i, b := range h.Buckets {
			if b < 0 {
				return fmt.Errorf("obs: histogram %q bucket %d is negative", name, i)
			}
			total += b
		}
		if total != h.Count {
			return fmt.Errorf("obs: histogram %q buckets sum to %d, count %d", name, total, h.Count)
		}
	}
	if m.Arcs != nil {
		if m.Arcs.Arcs != len(m.Arcs.Traversals) || m.Arcs.Arcs != len(m.Arcs.PeakQueue) {
			return fmt.Errorf("obs: arc section declares %d arcs but holds %d traversal and %d peak entries",
				m.Arcs.Arcs, len(m.Arcs.Traversals), len(m.Arcs.PeakQueue))
		}
		for a, v := range m.Arcs.Traversals {
			if v < 0 {
				return fmt.Errorf("obs: arc %d has negative traversals", a)
			}
		}
		for a, v := range m.Arcs.PeakQueue {
			if v < 0 {
				return fmt.Errorf("obs: arc %d has negative peak queue", a)
			}
		}
	}
	shares := map[string]float64{}
	for _, l := range m.Lenses {
		if l.Side != "tx" && l.Side != "rx" {
			return fmt.Errorf("obs: lens %d has side %q, want tx or rx", l.Lens, l.Side)
		}
		if l.Traversals < 0 || l.Arcs < 0 || l.Share < 0 {
			return fmt.Errorf("obs: lens %d has negative fields", l.Lens)
		}
		shares[l.Side] += l.Share
	}
	for side, s := range shares {
		if s > 1+1e-9 {
			return fmt.Errorf("obs: %s lens shares sum to %v > 1", side, s)
		}
	}
	for _, c := range m.Congestion {
		if c.Side != "tx" && c.Side != "rx" {
			return fmt.Errorf("obs: congestion lens %d has side %q, want tx or rx", c.Lens, c.Side)
		}
		if c.PeakQueue < 0 || c.Arcs < 0 {
			return fmt.Errorf("obs: congestion lens %d has negative fields", c.Lens)
		}
	}
	return nil
}
