// Package obs is the simulation observability layer: a stdlib-only
// metrics substrate the packet simulators report into. It exists because
// SimResult-style aggregates say what a run *produced* but not how the
// network *behaved* — which arcs ran hot, how deep the queues got, which
// lens of an OTIS layout carried the traffic. The package provides
//
//   - Registry: named counters, gauges and fixed-bucket (power-of-two)
//     histograms, safe for concurrent use from sweep workers;
//   - Recorder: the hot-path instrument handle. Every exported Recorder
//     method is nil-receiver guarded, so instrumented code can call
//     through a nil *Recorder and the uninstrumented fast path stays
//     branch-predictable and allocation-free (reprolint's recguard
//     analyzer enforces the guards);
//   - RunMetrics: a stable JSON document (schema "OBS_run/v1") built by
//     Snapshot, carrying the registry plus flat per-arc utilization
//     slabs and optional per-lens roll-ups.
//
// The package deliberately has no dependency on the simulators; simnet
// and machine import obs, never the reverse.
package obs

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistogramBuckets is the fixed bucket count of every Histogram. Bucket
// 0 counts observations <= 0; bucket i (i >= 1) counts observations in
// [2^(i-1), 2^i - 1]; the last bucket absorbs everything larger. With 32
// buckets the histogram resolves latencies and queue depths up to ~2^31
// cycles, far beyond any simulation budget.
const HistogramBuckets = 32

// Histogram is a fixed power-of-two-bucket histogram, safe for
// concurrent use. It records count, sum and max alongside the buckets,
// so mean and tail position survive the bucketing.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [HistogramBuckets]atomic.Int64
}

// bucketOf returns the bucket index of v: 0 for v <= 0, otherwise the
// bit length of v clamped to the last bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 0
	for u := uint64(v); u != 0; u >>= 1 {
		b++
	}
	if b >= HistogramBuckets {
		b = HistogramBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 before any observation).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean observation, 0 when empty (never NaN).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile of the recorded
// observations; see HistogramSnapshot.Quantile for the bound.
func (h *Histogram) Quantile(q float64) int64 {
	return h.snapshot().Quantile(q)
}

// snapshot copies the histogram into its JSON form, trimming trailing
// empty buckets so the document stays compact and stable.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	last := -1
	var raw [HistogramBuckets]int64
	for i := range raw {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			last = i
		}
	}
	s.Buckets = append([]int64{}, raw[:last+1]...)
	return s
}

// Registry holds named metrics. Lookup is get-or-create and the returned
// handles are stable, so hot paths resolve names once and then update
// through the handle. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Names returns the registered metric names, sorted, for reporting.
func (r *Registry) Names() (counters, gauges, histograms []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.histograms {
		histograms = append(histograms, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return counters, gauges, histograms
}

// Snapshot copies the registry into an OBS_run/v1 document (without the
// per-arc or per-lens sections, which only a Recorder can supply).
func (r *Registry) Snapshot() RunMetrics {
	m := RunMetrics{
		Schema:     RunMetricsSchema,
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		m.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		m.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		m.Histograms[name] = h.snapshot()
	}
	return m
}

// expvarRegs routes every name this package has published through an
// indirection map, because expvar.Publish panics on duplicate names and
// offers no unpublish. A long-lived service hosts one live Registry per
// tenant and tenants churn: the same name must be publishable again for
// a fresh Registry (the old closure would otherwise serve a dead
// tenant's data forever). The expvar.Func installed for a name reads
// the map on every snapshot, so PublishExpvar rebinds by overwriting
// the entry — latest registry wins, nothing panics.
var (
	expvarMu   sync.Mutex
	expvarRegs = map[string]*Registry{} // guarded by expvarMu
)

// PublishExpvar exposes the registry as an expvar variable under the
// given name (so `-pprof`-style debug servers serve it at /debug/vars).
// Names are a namespace per registry: publishing distinct registries
// under distinct names keeps them fully independent, and publishing a
// new registry under a previously used name rebinds that name to the
// new registry instead of panicking (expvar itself forbids duplicate
// Publish calls). A name already published by code outside this package
// is left alone.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, routed := expvarRegs[name]; routed {
		expvarRegs[name] = r
		return // the installed Func reads the map: rebind complete
	}
	if expvar.Get(name) != nil {
		return // foreign publisher owns the name; do not fight over it
	}
	expvarRegs[name] = r
	expvar.Publish(name, expvar.Func(func() any {
		expvarMu.Lock()
		reg := expvarRegs[name]
		expvarMu.Unlock()
		return reg.Snapshot()
	}))
}
