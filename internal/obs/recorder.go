package obs

import (
	"sync"
	"sync/atomic"
)

// DropCause classifies why a packet left a simulation undelivered. The
// causes mirror the FaultResult buckets of simnet so instrumented and
// aggregate accounting can be cross-checked.
type DropCause int

const (
	// DropNoRoute: the router found no (live) arc toward the
	// destination and the retry budget is exhausted.
	DropNoRoute DropCause = iota
	// DropTTL: the per-packet hop budget ran out.
	DropTTL
	// DropFault: lost in flight to a node fault at the arrival end.
	DropFault
	// DropHorizon: the release cycle lay beyond the run's cycle budget;
	// the packet was never injected.
	DropHorizon
	// DropStuck: stranded in a queue or on a link when the cycle budget
	// ran out.
	DropStuck
	// DropQueueFull: the downstream queue stayed full until the packet's
	// hold-in-place budget ran out (bounded-queue backpressure).
	DropQueueFull
	numDropCauses
)

// String names the cause; the names are the counter suffixes.
func (c DropCause) String() string {
	switch c {
	case DropNoRoute:
		return "noroute"
	case DropTTL:
		return "ttl"
	case DropFault:
		return "fault"
	case DropHorizon:
		return "horizon"
	case DropStuck:
		return "stuck"
	case DropQueueFull:
		return "queuefull"
	}
	return "unknown"
}

// Canonical metric names recorded by the simulators. Exposed so tests
// and tools address the registry without stringly-typed drift.
const (
	MetricDelivered    = "sim_delivered"
	MetricDropped      = "sim_dropped"
	MetricDropPrefix   = "sim_drop_"
	MetricReroutes     = "sim_reroutes"
	MetricRetries      = "sim_retries"
	MetricDeflections  = "sim_deflections"
	MetricArenaReused  = "arena_reused"
	MetricArenaAlloc   = "arena_allocated"
	MetricRouterNS     = "router_build_ns"
	MetricRouterBytes  = "router_slab_bytes"
	MetricHistLatency  = "latency_cycles"
	MetricHistQueue    = "queue_depth"
	MetricHistHops     = "hops"
	MetricMaxQueue     = "max_queue"
	MetricArcTraversed = "arc_traversals_total"

	// Overload protection (bounded queues, backpressure, admission).
	MetricShed          = "sim_shed"
	MetricHolds         = "sim_holds"
	MetricHistQueueFull = "queue_full_depth"

	// Sharded-engine dispatch: runs that requested WithShards but were
	// forced onto a sequential engine (faults, tracing, recorder,
	// bounded queues or admission control in effect).
	MetricShardFallback = "shard_fallback"

	// Self-healing control plane (simnet heal engine).
	MetricHealNacks      = "heal_nacks"
	MetricHealDetections = "heal_detections"
	MetricHealEvents     = "heal_events"
	MetricHealRepairs    = "heal_repairs"
	MetricHealProbes     = "heal_probes"
	MetricHealConverge   = "heal_converge_cycles"

	// Lens quarantine circuit breaker (machine layer).
	MetricQuarTrips    = "quarantine_trips"
	MetricQuarHalfOpen = "quarantine_halfopen"
	MetricQuarCloses   = "quarantine_closes"
)

// Recorder is the hot-path instrument handle the simulators record
// through. It pre-resolves its registry handles at construction so a
// recording site is one atomic op, and keeps flat []int64 slabs for
// per-arc traversal counts and peak queue depths, indexed by the same
// CSR arc layout the simulator's queues use (arcBase[u]+k).
//
// A nil *Recorder is the uninstrumented mode: every exported method is
// nil-receiver guarded, so recording sites may call through nil freely
// — the fast path pays one predictable branch and zero allocations.
// All methods are safe for concurrent use (sweep workers share one
// Recorder), at the price of atomic updates on the instrumented path.
type Recorder struct {
	reg *Registry

	mu    sync.Mutex // serializes slab growth
	slabs atomic.Pointer[arcSlabs]

	delivered   *Counter
	dropped     *Counter
	drops       [numDropCauses]*Counter
	reroutes    *Counter
	retries     *Counter
	deflections *Counter
	arenaReused *Counter
	arenaAlloc  *Counter
	arcTotal    *Counter
	shed        *Counter
	holds       *Counter

	healNacks   *Counter
	healDetects *Counter
	healEvents  *Counter
	healRepairs *Counter
	healProbes  *Counter
	quarTrips   *Counter
	quarHalf    *Counter
	quarCloses  *Counter

	routerNS     *Gauge
	routerBytes  *Gauge
	maxQueue     *Gauge
	healConverge *Gauge

	latency   *Histogram
	queue     *Histogram
	hops      *Histogram
	queueFull *Histogram
}

// NewRecorder returns a Recorder reporting into reg (a fresh registry
// when reg is nil).
func NewRecorder(reg *Registry) *Recorder {
	if reg == nil {
		reg = NewRegistry()
	}
	r := &Recorder{
		reg:         reg,
		delivered:   reg.Counter(MetricDelivered),
		dropped:     reg.Counter(MetricDropped),
		reroutes:    reg.Counter(MetricReroutes),
		retries:     reg.Counter(MetricRetries),
		deflections: reg.Counter(MetricDeflections),
		arenaReused: reg.Counter(MetricArenaReused),
		arenaAlloc:  reg.Counter(MetricArenaAlloc),
		arcTotal:    reg.Counter(MetricArcTraversed),
		shed:        reg.Counter(MetricShed),
		holds:       reg.Counter(MetricHolds),
		healNacks:   reg.Counter(MetricHealNacks),
		healDetects: reg.Counter(MetricHealDetections),
		healEvents:  reg.Counter(MetricHealEvents),
		healRepairs: reg.Counter(MetricHealRepairs),
		healProbes:  reg.Counter(MetricHealProbes),
		quarTrips:   reg.Counter(MetricQuarTrips),
		quarHalf:    reg.Counter(MetricQuarHalfOpen),
		quarCloses:  reg.Counter(MetricQuarCloses),
		routerNS:    reg.Gauge(MetricRouterNS),
		routerBytes: reg.Gauge(MetricRouterBytes),
		maxQueue:    reg.Gauge(MetricMaxQueue),

		healConverge: reg.Gauge(MetricHealConverge),
		latency:      reg.Histogram(MetricHistLatency),
		queue:        reg.Histogram(MetricHistQueue),
		hops:         reg.Histogram(MetricHistHops),
		queueFull:    reg.Histogram(MetricHistQueueFull),
	}
	for c := DropCause(0); c < numDropCauses; c++ {
		r.drops[c] = reg.Counter(MetricDropPrefix + c.String())
	}
	return r
}

// Registry returns the registry the recorder reports into (nil for a
// nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// arcSlabs is the per-arc storage, swapped atomically as one unit so
// hot-path readers never see a torn resize.
type arcSlabs struct {
	traversals []int64
	peakQueue  []int64
}

// SizeArcs grows the per-arc slabs to hold m arcs. Networks call it when
// a recorder is attached; growing never shrinks, so one recorder may
// observe several networks and keeps the largest layout. Counts already
// accumulated are preserved (attach before running: a grow racing live
// recording may miss increments landing in the old slab mid-copy).
func (r *Recorder) SizeArcs(m int) {
	if r == nil || m <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.slabs.Load()
	if cur != nil && len(cur.traversals) >= m {
		return
	}
	next := &arcSlabs{traversals: make([]int64, m), peakQueue: make([]int64, m)}
	if cur != nil {
		for i := range cur.traversals {
			//lint:ignore atomicguard next is unpublished until the Store below; only this goroutine (under mu) can write it
			next.traversals[i] = atomic.LoadInt64(&cur.traversals[i])
			//lint:ignore atomicguard next is unpublished until the Store below; only this goroutine (under mu) can write it
			next.peakQueue[i] = atomic.LoadInt64(&cur.peakQueue[i])
		}
	}
	r.slabs.Store(next)
}

// Arcs returns the current per-arc slab size (0 for a nil recorder).
func (r *Recorder) Arcs() int {
	if r == nil {
		return 0
	}
	if s := r.slabs.Load(); s != nil {
		return len(s.traversals)
	}
	return 0
}

// ArcTraverse records one packet hop over the flat arc index.
func (r *Recorder) ArcTraverse(arc int) {
	if r == nil {
		return
	}
	if s := r.slabs.Load(); s != nil && arc >= 0 && arc < len(s.traversals) {
		atomic.AddInt64(&s.traversals[arc], 1)
	}
	r.arcTotal.Add(1)
}

// QueueDepth records the depth of the flat arc's output queue after an
// enqueue: the histogram takes every sample, the per-arc slab and the
// max_queue gauge keep the peaks.
func (r *Recorder) QueueDepth(arc int, depth int) {
	if r == nil {
		return
	}
	d := int64(depth)
	r.queue.Observe(d)
	r.maxQueue.SetMax(d)
	s := r.slabs.Load()
	if s == nil || arc < 0 || arc >= len(s.peakQueue) {
		return
	}
	for {
		cur := atomic.LoadInt64(&s.peakQueue[arc])
		if d <= cur || atomic.CompareAndSwapInt64(&s.peakQueue[arc], cur, d) {
			return
		}
	}
}

// NodeQueueDepth records a per-node hold-queue depth (fault runs queue
// at nodes, not arcs), feeding the same histogram and peak gauge.
func (r *Recorder) NodeQueueDepth(depth int) {
	if r == nil {
		return
	}
	d := int64(depth)
	r.queue.Observe(d)
	r.maxQueue.SetMax(d)
}

// Deliver records a delivery with its end-to-end latency (cycles) and
// hop count.
func (r *Recorder) Deliver(latency, hops int) {
	if r == nil {
		return
	}
	r.delivered.Inc()
	r.latency.Observe(int64(latency))
	r.hops.Observe(int64(hops))
}

// Drop records an undelivered packet under its cause bucket.
func (r *Recorder) Drop(cause DropCause) {
	if r == nil {
		return
	}
	r.dropped.Inc()
	if cause >= 0 && cause < numDropCauses {
		r.drops[cause].Inc()
	}
}

// Shed records a packet refused by admission control (never injected;
// accounted outside both Delivered and Dropped).
func (r *Recorder) Shed() {
	if r == nil {
		return
	}
	r.shed.Inc()
}

// ShardFallback records a run that requested the sharded engine
// (WithShards > 1) but was forced onto a sequential engine by an
// incompatible option set — the dispatch rule WithShards documents,
// surfaced as a counter so sweeps notice when their shard request is
// being silently ignored. The counter is registered lazily on first
// fallback (dispatch happens once per run, never in the cycle loop), so
// snapshots of runs that never fell back are unchanged.
func (r *Recorder) ShardFallback() {
	if r == nil {
		return
	}
	r.reg.Counter(MetricShardFallback).Inc()
}

// Hold records one hold-in-place backpressure event: a packet found its
// downstream queue full and stayed upstream. depth is the depth of the
// refusing queue, observed into the queue_full_depth histogram.
func (r *Recorder) Hold(depth int) {
	if r == nil {
		return
	}
	r.holds.Inc()
	r.queueFull.Observe(int64(depth))
}

// Reroute records a forward on an arc other than the primary router's
// choice.
func (r *Recorder) Reroute() {
	if r == nil {
		return
	}
	r.reroutes.Inc()
}

// Retry records a backoff requeue of a packet with no live out-arc.
func (r *Recorder) Retry() {
	if r == nil {
		return
	}
	r.retries.Inc()
}

// Deflect records a hot-potato hop that moved a packet off its shortest
// path.
func (r *Recorder) Deflect() {
	if r == nil {
		return
	}
	r.deflections.Inc()
}

// Arena records one scratch-arena checkout: reused from the pool or
// freshly allocated.
func (r *Recorder) Arena(reused bool) {
	if r == nil {
		return
	}
	if reused {
		r.arenaReused.Inc()
	} else {
		r.arenaAlloc.Inc()
	}
}

// RouterBuild records a routing-slab construction: wall time in
// nanoseconds and the slab footprint in bytes.
func (r *Recorder) RouterBuild(ns, bytes int64) {
	if r == nil {
		return
	}
	r.routerNS.Set(ns)
	r.routerBytes.Set(bytes)
}

// Nack records a failed transmission attempt on a physically-down arc
// (the sender learns by timeout/NACK — the self-healing detection
// signal).
func (r *Recorder) Nack() {
	if r == nil {
		return
	}
	r.healNacks.Inc()
}

// Detect records a locally confirmed arc failure: suspicion on the arc
// crossed the threshold and the node committed a link-state event.
func (r *Recorder) Detect() {
	if r == nil {
		return
	}
	r.healDetects.Inc()
}

// HealEvent records one committed link-state event (an epoch).
func (r *Recorder) HealEvent() {
	if r == nil {
		return
	}
	r.healEvents.Inc()
}

// RepairSlabBuild records one incremental routing-slab repair.
func (r *Recorder) RepairSlabBuild() {
	if r == nil {
		return
	}
	r.healRepairs.Inc()
}

// Probe records one recovery or half-open probe sent by the control
// plane.
func (r *Recorder) Probe() {
	if r == nil {
		return
	}
	r.healProbes.Inc()
}

// ConvergeCycles records the convergence time of a self-healing run:
// cycles from the first committed event to the last node informed of
// the final epoch.
func (r *Recorder) ConvergeCycles(cycles int64) {
	if r == nil {
		return
	}
	r.healConverge.Set(cycles)
}

// QuarantineTrip records a circuit breaker tripping open.
func (r *Recorder) QuarantineTrip() {
	if r == nil {
		return
	}
	r.quarTrips.Inc()
}

// QuarantineHalfOpen records a breaker moving to half-open (probing).
func (r *Recorder) QuarantineHalfOpen() {
	if r == nil {
		return
	}
	r.quarHalf.Inc()
}

// QuarantineClose records a breaker closing after a successful probe.
func (r *Recorder) QuarantineClose() {
	if r == nil {
		return
	}
	r.quarCloses.Inc()
}

// ArcTraversals returns a copy of the per-arc traversal slab (nil for a
// nil or unsized recorder).
func (r *Recorder) ArcTraversals() []int64 {
	if r == nil {
		return nil
	}
	if s := r.slabs.Load(); s != nil {
		//lint:ignore atomicguard the slice header is immutable after publication; copyAtomicSlab reads the elements atomically
		return copyAtomicSlab(s.traversals)
	}
	return nil
}

// ArcPeakQueue returns a copy of the per-arc peak-queue slab (nil for a
// nil or unsized recorder).
func (r *Recorder) ArcPeakQueue() []int64 {
	if r == nil {
		return nil
	}
	if s := r.slabs.Load(); s != nil {
		//lint:ignore atomicguard the slice header is immutable after publication; copyAtomicSlab reads the elements atomically
		return copyAtomicSlab(s.peakQueue)
	}
	return nil
}

// Snapshot marshals the recorder's registry plus its per-arc slabs into
// an OBS_run/v1 document. Per-lens roll-ups are a machine-level concept;
// machine.RunMetrics attaches them to this document.
func (r *Recorder) Snapshot() RunMetrics {
	if r == nil {
		return RunMetrics{Schema: RunMetricsSchema}
	}
	m := r.reg.Snapshot()
	tr := r.ArcTraversals()
	if len(tr) > 0 {
		m.Arcs = &ArcMetrics{
			Arcs:       len(tr),
			Traversals: tr,
			PeakQueue:  r.ArcPeakQueue(),
		}
	}
	return m
}

func copyAtomicSlab(src []int64) []int64 {
	if len(src) == 0 {
		return nil
	}
	out := make([]int64, len(src))
	for i := range src {
		out[i] = atomic.LoadInt64(&src[i])
	}
	return out
}
