package viterbi

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestAWGNModulation(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	// Noiseless limit: huge SNR keeps the signs intact.
	stream := []byte{0, 1, 1, 0, 1}
	soft := AWGN(stream, 60, rng)
	for i, s := range soft {
		wantPos := stream[i] == 0
		if (s > 0) != wantPos {
			t.Fatalf("symbol %d flipped at 60 dB", i)
		}
	}
	if got := HardSlice(soft); !bytes.Equal(got, stream) {
		t.Fatal("hard slicing at high SNR failed")
	}
}

func TestDecodeSoftNoiseless(t *testing.T) {
	c := NASA()
	rng := rand.New(rand.NewSource(95))
	msg := randomBits(60, rng)
	enc, _ := c.Encode(msg)
	soft := AWGN(enc, 40, rng)
	dec, err := c.DecodeSoft(soft)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, msg) {
		t.Fatal("noiseless soft decode failed")
	}
}

func TestDecodeSoftValidation(t *testing.T) {
	c := NASA()
	if _, err := c.DecodeSoft([]float64{0.5}); err == nil {
		t.Error("odd-length soft stream accepted")
	}
	if _, err := c.DecodeSoft([]float64{0.5, 0.5}); err == nil {
		t.Error("too-short soft stream accepted")
	}
}

func TestSoftBeatsHard(t *testing.T) {
	// At a marginal SNR, soft decoding must produce no more frame errors
	// than hard slicing followed by hard decoding — the classical ~2 dB
	// soft-decision gain.
	c := NASA()
	rng := rand.New(rand.NewSource(96))
	const trials = 40
	softErrs, hardErrs := 0, 0
	for trial := 0; trial < trials; trial++ {
		msg := randomBits(120, rng)
		enc, _ := c.Encode(msg)
		soft := AWGN(enc, 1.5, rng) // marginal Es/N0
		if dec, err := c.DecodeSoft(soft); err != nil || !bytes.Equal(dec, msg) {
			softErrs++
		}
		if dec, err := c.Decode(HardSlice(soft)); err != nil || !bytes.Equal(dec, msg) {
			hardErrs++
		}
	}
	if softErrs > hardErrs {
		t.Errorf("soft decoding (%d frame errors) worse than hard (%d)", softErrs, hardErrs)
	}
	if hardErrs == 0 {
		t.Log("channel too clean to separate soft from hard; consider lowering SNR")
	}
}

func TestSoftMatchesHardOnCleanChannel(t *testing.T) {
	// With no noise the two decoders agree exactly.
	c := Code{K: 5, Generators: []uint32{0b10111, 0b11001}}
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 10; trial++ {
		msg := randomBits(30, rng)
		enc, _ := c.Encode(msg)
		soft := make([]float64, len(enc))
		for i, b := range enc {
			soft[i] = 1 - 2*float64(b)
		}
		softDec, err1 := c.DecodeSoft(soft)
		hardDec, err2 := c.Decode(enc)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !bytes.Equal(softDec, hardDec) || !bytes.Equal(softDec, msg) {
			t.Fatal("decoders disagree on a clean channel")
		}
	}
}
