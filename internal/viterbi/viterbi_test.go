package viterbi

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

func randomBits(n int, rng *rand.Rand) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	return msg
}

func TestValidate(t *testing.T) {
	if err := NASA().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Code{K: 1, Generators: []uint32{1}}).Validate() == nil {
		t.Error("K=1 accepted")
	}
	if (Code{K: 7, Generators: nil}).Validate() == nil {
		t.Error("no generators accepted")
	}
	if (Code{K: 3, Generators: []uint32{0}}).Validate() == nil {
		t.Error("zero generator accepted")
	}
	if (Code{K: 3, Generators: []uint32{0xFF}}).Validate() == nil {
		t.Error("over-wide generator accepted")
	}
}

func TestEncodeShape(t *testing.T) {
	c := NASA()
	msg := []byte{1, 0, 1, 1, 0}
	enc, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	want := (len(msg) + c.K - 1) * c.Rate()
	if len(enc) != want {
		t.Fatalf("encoded length %d, want %d", len(enc), want)
	}
	for _, b := range enc {
		if b > 1 {
			t.Fatal("non-binary output")
		}
	}
	if _, err := c.Encode([]byte{2}); err == nil {
		t.Error("non-binary message accepted")
	}
}

func TestEncodeZeroMessage(t *testing.T) {
	// The all-zero message encodes to the all-zero stream (linear code).
	c := NASA()
	enc, _ := c.Encode(make([]byte, 20))
	for _, b := range enc {
		if b != 0 {
			t.Fatal("zero message did not encode to zero stream")
		}
	}
}

func TestDecodeNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, c := range []Code{NASA(), Galileo(9), {K: 3, Generators: []uint32{0b111, 0b101}}} {
		for trial := 0; trial < 10; trial++ {
			msg := randomBits(40, rng)
			enc, err := c.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := c.Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dec, msg) {
				t.Fatalf("K=%d: noiseless decode failed\nmsg %v\ndec %v", c.K, msg, dec)
			}
		}
	}
}

func TestDecodeWithNoise(t *testing.T) {
	// The K=7 NASA code corrects comfortably at a few percent BSC error.
	c := NASA()
	rng := rand.New(rand.NewSource(21))
	errors := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		msg := randomBits(100, rng)
		enc, _ := c.Encode(msg)
		noisy, _ := BSC(enc, 0.02, rng)
		dec, err := c.Decode(noisy)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, msg) {
			errors++
		}
	}
	if errors > 1 {
		t.Errorf("%d/%d frames failed at 2%% BSC — decoder too weak", errors, trials)
	}
}

func TestDecodeCorrectsKnownBurst(t *testing.T) {
	c := NASA()
	msg := []byte{1, 1, 0, 1, 0, 0, 1, 0, 1, 1}
	enc, _ := c.Encode(msg)
	// Flip two well-separated bits: free distance of this code is 10, so
	// 2 errors are always correctable.
	enc[3] ^= 1
	enc[17] ^= 1
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, msg) {
		t.Fatalf("2-bit error not corrected: %v vs %v", dec, msg)
	}
}

func TestDecodeValidation(t *testing.T) {
	c := NASA()
	if _, err := c.Decode([]byte{0, 1, 0}); err == nil {
		t.Error("odd-length stream accepted for rate 1/2")
	}
	if _, err := c.Decode([]byte{0, 1}); err == nil {
		t.Error("too-short stream accepted")
	}
}

func TestTrellisIsDeBruijn(t *testing.T) {
	// The trellis digraph is isomorphic to B(2, K-1): the shift-right
	// register graph is carried onto the shift-left de Bruijn by bit
	// reversal of the state label.
	for _, k := range []int{3, 5, 7} {
		c := Code{K: k, Generators: []uint32{1}}
		trellis := c.TrellisDigraph()
		b := debruijn.DeBruijn(2, k-1)
		mapping := make([]int, trellis.N())
		for s := range mapping {
			mapping[s] = reverseBits(s, k-1)
		}
		if err := digraph.VerifyIsomorphism(trellis, b, mapping); err != nil {
			t.Errorf("K=%d: trellis ≇ B(2,%d) under bit reversal: %v", k, k-1, err)
		}
	}
}

func reverseBits(v, width int) int {
	out := 0
	for i := 0; i < width; i++ {
		out |= (v >> i & 1) << (width - 1 - i)
	}
	return out
}

func TestTrellisRegular(t *testing.T) {
	c := NASA()
	g := c.TrellisDigraph()
	if g.N() != 64 || !g.IsRegular(2) {
		t.Fatalf("NASA trellis: n=%d", g.N())
	}
	if g.Diameter() != 6 {
		t.Errorf("NASA trellis diameter = %d, want 6", g.Diameter())
	}
}

func TestBSC(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	stream := make([]byte, 10000)
	noisy, flips := BSC(stream, 0.1, rng)
	count := 0
	for _, b := range noisy {
		if b == 1 {
			count++
		}
	}
	if count != flips {
		t.Fatalf("flip count %d, ones %d", flips, count)
	}
	if count < 800 || count > 1200 {
		t.Errorf("flip rate %f far from 0.1", float64(count)/10000)
	}
	if _, flips := BSC(stream, 0, rng); flips != 0 {
		t.Error("p=0 flipped bits")
	}
}

func TestGalileoCodeRoundTrip(t *testing.T) {
	// A longer-constraint rate-1/4 code in the Galileo spirit: K=11,
	// 1024 trellis states = B(2,10), the same digraph whose OTIS layout
	// the paper optimizes.
	c := Galileo(11)
	if c.States() != 1024 {
		t.Fatalf("states = %d", c.States())
	}
	rng := rand.New(rand.NewSource(23))
	msg := randomBits(60, rng)
	enc, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	noisy, _ := BSC(enc, 0.05, rng)
	dec, err := c.Decode(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, msg) {
		t.Error("rate-1/4 K=11 decode failed at 5% BSC")
	}
}

func TestACSUsesOnlyTrellisArcs(t *testing.T) {
	// Structural link to the paper: the metric exchange of one ACS step
	// (state s receives from its two trellis predecessors) uses exactly
	// the arcs of the trellis digraph, i.e. de Bruijn arcs.
	c := Code{K: 4, Generators: []uint32{0b1011}}
	g := c.TrellisDigraph()
	n := c.States()
	for pre := 0; pre < n; pre++ {
		for b := 0; b < 2; b++ {
			next := (pre >> 1) | b<<uint(c.K-2)
			if !g.HasArc(pre, next) {
				t.Fatalf("ACS transition (%d,%d) not a trellis arc", pre, next)
			}
		}
	}
}
