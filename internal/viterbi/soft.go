package viterbi

import (
	"fmt"
	"math"
	"math/rand"
)

// Soft-decision decoding. The Galileo downlink the paper cites decoded
// soft symbols (the Big Viterbi Decoder consumed 8-bit branch metrics);
// this file adds the AWGN channel and the float-metric ACS. The trellis —
// and hence the de Bruijn interconnect — is identical to the hard
// decoder's; only the branch metric changes.

// AWGN modulates a bit stream to BPSK (bit b → 1-2b, i.e. 0 → +1,
// 1 → -1) and adds white Gaussian noise at the given Es/N0 (dB),
// returning the received soft symbols.
func AWGN(stream []byte, esN0dB float64, rng *rand.Rand) []float64 {
	// Es = 1; N0 = 10^(-EsN0/10); noise sigma = sqrt(N0/2).
	sigma := math.Sqrt(math.Pow(10, -esN0dB/10) / 2)
	out := make([]float64, len(stream))
	for i, b := range stream {
		out[i] = 1 - 2*float64(b) + sigma*rng.NormFloat64()
	}
	return out
}

// HardSlice converts soft symbols back to hard bits (sign decision), the
// baseline a soft decoder must beat.
func HardSlice(soft []float64) []byte {
	out := make([]byte, len(soft))
	for i, s := range soft {
		if s < 0 {
			out[i] = 1
		}
	}
	return out
}

// DecodeSoft runs Viterbi decoding on BPSK soft symbols using the
// correlation metric (maximize Σ symbol·(1-2·codedBit)). Structure is
// identical to Decode; only the branch metric is real-valued.
func (c Code) DecodeSoft(received []float64) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := c.Rate()
	if len(received)%r != 0 {
		return nil, fmt.Errorf("viterbi: stream length %d not a multiple of rate %d", len(received), r)
	}
	steps := len(received) / r
	if steps < c.K-1 {
		return nil, fmt.Errorf("viterbi: stream too short for flush bits")
	}
	nStates := c.States()
	negInf := math.Inf(-1)

	metric := make([]float64, nStates)
	for s := range metric {
		metric[s] = negInf
	}
	metric[0] = 0
	pred := make([][]int32, steps)
	nextMetric := make([]float64, nStates)

	branch := make([][]byte, nStates*2)
	for pre := 0; pre < nStates; pre++ {
		for b := 0; b < 2; b++ {
			reg := uint32(pre) | uint32(b)<<uint(c.K-1)
			branch[pre*2+b] = c.outputs(reg)
		}
	}

	for t := 0; t < steps; t++ {
		obs := received[t*r : (t+1)*r]
		pr := make([]int32, nStates)
		for s := 0; s < nStates; s++ {
			nextMetric[s] = negInf
			pr[s] = -1
		}
		for pre := 0; pre < nStates; pre++ {
			if math.IsInf(metric[pre], -1) {
				continue
			}
			for b := 0; b < 2; b++ {
				next := (pre >> 1) | b<<uint(c.K-2)
				gain := metric[pre]
				for k, bit := range branch[pre*2+b] {
					gain += obs[k] * (1 - 2*float64(bit))
				}
				if gain > nextMetric[next] {
					nextMetric[next] = gain
					pr[next] = int32(pre) //lint:ignore slabindex pre < States() = 2^(K-1) ≤ 2^19, bounded by Validate's K ≤ 20
				}
			}
		}
		pred[t] = pr
		metric, nextMetric = nextMetric, metric
	}

	decoded := make([]byte, steps)
	state := 0
	for t := steps - 1; t >= 0; t-- {
		decoded[t] = byte(state >> uint(c.K-2) & 1)
		pre := pred[t][state]
		if pre < 0 {
			return nil, fmt.Errorf("viterbi: soft traceback broke at step %d", t)
		}
		state = int(pre)
	}
	if state != 0 {
		return nil, fmt.Errorf("viterbi: soft traceback did not reach the start state")
	}
	return decoded[:steps-(c.K-1)], nil
}
