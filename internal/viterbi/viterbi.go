// Package viterbi implements a convolutional encoder and Viterbi decoder
// whose trellis is the de Bruijn digraph — the application behind the
// paper's marquee citation: NASA's Galileo probe decodes its downlink
// with a VLSI decomposition of a large de Bruijn graph (Collins, Dolinar,
// McEliece, Pollara, JACM 1992; reference [11] of the paper).
//
// A rate-1/r convolutional code with constraint length K has 2^(K-1)
// states; state s on input bit b moves to (2s + b) mod 2^(K-1) — exactly
// the arc set of B(2, K-1). The decoder's add-compare-select step
// therefore exchanges path metrics along de Bruijn arcs, which is why
// laying B(2, D) out optically (Section 4 of the paper) lays out a
// hardware Viterbi decoder.
package viterbi

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/digraph"
)

// Code describes a rate-1/len(Generators) binary convolutional code.
type Code struct {
	// K is the constraint length: the encoder register holds the current
	// bit plus K-1 previous bits.
	K int
	// Generators are the generator polynomials, one output bit each, as
	// bit masks over the K-bit register (bit 0 = newest input bit...
	// conventionally bit K-1 = newest; here bit K-1 is the newest input
	// and bit 0 the oldest, matching the usual octal constants).
	Generators []uint32
}

// NASA is the CCSDS standard rate-1/2, K=7 code (generators 171, 133
// octal) used widely in deep-space links; Galileo's Big Viterbi Decoder
// ran a K=15 descendant of it.
func NASA() Code {
	return Code{K: 7, Generators: []uint32{0o171, 0o133}}
}

// Galileo returns a rate-1/4 long-constraint code in the spirit of the
// Galileo (14,1/4) code (the exact flight generators are not needed for
// the interconnect structure, which depends only on K). K is kept
// configurable because the trellis has 2^(K-1) states.
func Galileo(k int) Code {
	// Four maximal-weight primitive-style taps; any distinct nonzero
	// masks over K bits give a working (if not optimal) code.
	mask := uint32(1)<<uint(k) - 1
	return Code{K: k, Generators: []uint32{
		0o171717 & mask, 0o133133 & mask, 0o165432 & mask, 0o117655 & mask,
	}}
}

// Validate checks the code parameters.
func (c Code) Validate() error {
	if c.K < 2 || c.K > 20 {
		return fmt.Errorf("viterbi: constraint length %d out of [2,20]", c.K)
	}
	if len(c.Generators) == 0 {
		return fmt.Errorf("viterbi: no generator polynomials")
	}
	mask := uint32(1)<<uint(c.K) - 1
	for i, g := range c.Generators {
		if g == 0 {
			return fmt.Errorf("viterbi: generator %d is zero", i)
		}
		if g&^mask != 0 {
			return fmt.Errorf("viterbi: generator %d wider than K=%d bits", i, c.K)
		}
	}
	return nil
}

// States returns the number of trellis states, 2^(K-1).
func (c Code) States() int { return 1 << uint(c.K-1) }

// Rate returns the number of output bits per input bit.
func (c Code) Rate() int { return len(c.Generators) }

// outputs returns the r output bits for register contents reg (bit K-1 is
// the newest input bit).
func (c Code) outputs(reg uint32) []byte {
	out := make([]byte, len(c.Generators))
	for i, g := range c.Generators {
		out[i] = byte(bits.OnesCount32(reg&g) & 1)
	}
	return out
}

// Encode encodes msg (0/1 bytes) and appends K-1 zero flush bits so the
// trellis terminates in state 0. Output length is (len(msg)+K-1) · r.
func (c Code) Encode(msg []byte) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var reg uint32
	out := make([]byte, 0, (len(msg)+c.K-1)*c.Rate())
	feed := func(b byte) error {
		if b > 1 {
			return fmt.Errorf("viterbi: message bit %d not 0/1", b)
		}
		reg = (reg >> 1) | uint32(b)<<uint(c.K-1)
		out = append(out, c.outputs(reg)...)
		return nil
	}
	for _, b := range msg {
		if err := feed(b); err != nil {
			return nil, err
		}
	}
	for i := 0; i < c.K-1; i++ {
		if err := feed(0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BSC flips each bit of stream independently with probability p, using
// rng; it returns the corrupted copy and the number of flips.
func BSC(stream []byte, p float64, rng *rand.Rand) ([]byte, int) {
	out := make([]byte, len(stream))
	flips := 0
	for i, b := range stream {
		out[i] = b
		if rng.Float64() < p {
			out[i] ^= 1
			flips++
		}
	}
	return out, flips
}

// Decode runs hard-decision Viterbi decoding over the received stream,
// returning the maximum-likelihood message (without the flush bits).
// The trellis is walked forward with add-compare-select over the de
// Bruijn predecessors of each state, then traced back.
func (c Code) Decode(received []byte) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := c.Rate()
	if len(received)%r != 0 {
		return nil, fmt.Errorf("viterbi: stream length %d not a multiple of rate %d", len(received), r)
	}
	steps := len(received) / r
	if steps < c.K-1 {
		return nil, fmt.Errorf("viterbi: stream too short for flush bits")
	}
	nStates := c.States()
	const inf = int(1) << 30

	metric := make([]int, nStates)
	for s := range metric {
		metric[s] = inf
	}
	metric[0] = 0
	// pred[t][s] = surviving predecessor of state s at step t; the input
	// bit of the transition is recoverable as the top register bit of s.
	pred := make([][]int32, steps)
	nextMetric := make([]int, nStates)

	// Precompute branch outputs: for new state s and entering bit b...
	// The register after feeding bit b from predecessor state pre is
	// reg = pre | b<<(K-1), and the new state is reg >> ... — concretely:
	// state = top K-1 bits of the register (previous inputs); feeding b:
	// reg = (state) | b<<(K-1) viewed over K bits where state occupies
	// bits 0..K-2.
	branch := make([][]byte, nStates*2)
	for pre := 0; pre < nStates; pre++ {
		for b := 0; b < 2; b++ {
			reg := uint32(pre) | uint32(b)<<uint(c.K-1)
			branch[pre*2+b] = c.outputs(reg)
		}
	}

	for t := 0; t < steps; t++ {
		obs := received[t*r : (t+1)*r]
		pr := make([]int32, nStates)
		for s := 0; s < nStates; s++ {
			nextMetric[s] = inf
			pr[s] = -1
		}
		for pre := 0; pre < nStates; pre++ {
			if metric[pre] >= inf {
				continue
			}
			for b := 0; b < 2; b++ {
				// De Bruijn transition: the register after feeding b is
				// reg = pre | b<<(K-1) (pre occupies bits 0..K-2); the
				// new state keeps the newest K-1 bits: next = reg >> 1.
				next := (pre >> 1) | b<<uint(c.K-2)
				cost := metric[pre] + hamming(branch[pre*2+b], obs)
				if cost < nextMetric[next] {
					nextMetric[next] = cost
					pr[next] = int32(pre) //lint:ignore slabindex pre < States() = 2^(K-1) ≤ 2^19, bounded by Validate's K ≤ 20
				}
			}
		}
		pred[t] = pr
		metric, nextMetric = nextMetric, metric
	}

	// Traceback from state 0 (the flush bits force the trellis there).
	decoded := make([]byte, steps)
	state := 0
	for t := steps - 1; t >= 0; t-- {
		// The input bit of the transition into state is its top bit.
		decoded[t] = byte(state >> uint(c.K-2) & 1)
		pre := pred[t][state]
		if pre < 0 {
			return nil, fmt.Errorf("viterbi: traceback broke at step %d", t)
		}
		state = int(pre)
	}
	if state != 0 {
		return nil, fmt.Errorf("viterbi: traceback did not reach the start state")
	}
	return decoded[:steps-(c.K-1)], nil
}

func hamming(a, b []byte) int {
	h := 0
	for i := range a {
		if a[i] != b[i] {
			h++
		}
	}
	return h
}

// TrellisDigraph returns the state-transition digraph of the code: vertex
// set Z_{2^(K-1)} with an arc s → (s>>1)|b<<(K-2) for b ∈ {0,1}. It is
// the reverse-orientation twin of B(2, K-1) (shift right instead of
// left), and isomorphic to B(2, K-1) via bit reversal.
func (c Code) TrellisDigraph() *digraph.Digraph {
	n := c.States()
	return digraph.FromFunc(n, func(s int) []int {
		return []int{s >> 1, (s >> 1) | 1<<uint(c.K-2)}
	})
}
