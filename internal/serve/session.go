package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// AdmissionConfig is the per-tenant token-bucket source regulator, the
// service-plane face of the PR 7 data-plane admission (which regulates
// per cycle inside a run; this regulates per clock unit across
// requests). Refused packets are shed with cause ShedAdmission.
type AdmissionConfig struct {
	// Rate is the sustained admission rate in packets per second
	// (packets per 1e9 clock units; must be > 0).
	Rate float64
	// Burst is the bucket depth in packets (0: max(1, ⌈Rate⌉)).
	Burst int
}

// TenantConfig names a tenant and carries its knobs. The tenant record
// is created by the tenant's first CreateSession; later sessions share
// it and only the per-session fields (QueueCapacity, HoldBudget) are
// re-read.
type TenantConfig struct {
	// Tenant is the tenant name (required, also the metrics namespace).
	Tenant string
	// Admission, when non-nil, rate-limits the tenant's offered packets
	// across all its sessions.
	Admission *AdmissionConfig
	// QueueCapacity bounds each simulated node's queue inside the
	// tenant's sessions (simnet.WithQueueCapacity semantics; 0:
	// unbounded).
	QueueCapacity int
	// HoldBudget is the per-packet hold-in-place budget under bounded
	// queues (0: simnet default).
	HoldBudget int
	// RequestTimeout is the per-request deadline in clock units
	// (nanoseconds under the real clock). A request not finished by
	// submit+RequestTimeout is shed if still queued, or counted as a
	// deadline miss if it completed late (0: none).
	RequestTimeout int64
	// MaxRetries bounds re-running a request whose Run failed (0: no
	// retry).
	MaxRetries int
}

func (tc TenantConfig) validate() error {
	if tc.Admission != nil && tc.Admission.Rate <= 0 {
		return fmt.Errorf("serve: tenant %q: Admission.Rate must be > 0, got %v", tc.Tenant, tc.Admission.Rate)
	}
	if tc.QueueCapacity < 0 || tc.HoldBudget < 0 || tc.RequestTimeout < 0 || tc.MaxRetries < 0 {
		return fmt.Errorf("serve: tenant %q: negative knob", tc.Tenant)
	}
	return nil
}

// ShedCause says why the service refused packets. Causes are disjoint;
// their per-tenant counters sum to the tenant's Shed total.
type ShedCause int

const (
	// ShedAdmission: the tenant's token bucket refused the packets.
	ShedAdmission ShedCause = iota
	// ShedQueueFull: the session's request queue was full at submit.
	ShedQueueFull
	// ShedDeadline: the request's deadline passed while it was queued.
	ShedDeadline
	// ShedDraining: the scheduler was shutting down.
	ShedDraining
	// ShedClosed: the session was closed.
	ShedClosed
	// ShedFailed: the run errored out after the retry budget; the
	// packets the failed run did not account are shed here.
	ShedFailed

	numShedCauses
)

var shedCauseNames = [numShedCauses]string{
	"admission", "queue_full", "deadline", "draining", "closed", "failed",
}

// String returns the cause's snake_case name (the metric suffix).
func (c ShedCause) String() string {
	if c < 0 || c >= numShedCauses {
		return "unknown"
	}
	return shedCauseNames[c]
}

// Outcome statuses.
const (
	// StatusOK: the run completed; Heal carries its result.
	StatusOK = "ok"
	// StatusShed: the service refused the packets; Cause says why.
	StatusShed = "shed"
)

// Outcome is the result of one Submit. Exactly one of the two shapes
// holds: Status "ok" with the HealResult, or Status "shed" with the
// cause and the shed packet count.
type Outcome struct {
	Status string
	// Cause is the shed cause name when Status is "shed".
	Cause string
	// Shed is how many packets were shed (the whole request).
	Shed int
	// Heal is the run's result when Status is "ok" (and carries partial
	// accounting when a failed run shed its remainder).
	Heal simnet.HealResult
	// LatencyNS is submit-to-completion time in clock units.
	LatencyNS int64
	// Err is the run error string after the retry budget, if any.
	Err string
}

// request is one queued Submit.
type request struct {
	pkts      []simnet.Packet
	submitted int64
	deadline  int64 // 0: none
	done      chan Outcome
}

// Session is one persistent self-healing simulation owned by a tenant.
// The embedded SelfHealing is NOT thread-safe: only the one worker that
// holds the session's scheduled bit touches heal, which is what makes
// the scheduler's serialization correct by construction.
type Session struct {
	id     int64
	tenant *Tenant
	heal   *simnet.SelfHealing
	queue  chan *request

	// scheduled is true iff the session is on the ready list or a
	// worker is serving it.
	scheduled atomic.Bool
	closed    atomic.Bool

	mu        sync.Mutex
	runs      int64 // guarded by mu
	lastCycle int   // guarded by mu
	lastEpoch int   // guarded by mu
	converged bool  // guarded by mu
}

// Tenant is the shared record of one tenant: metrics registry, counter
// handles (resolved once), admission bucket and knobs.
type Tenant struct {
	name       string
	bucket     *bucket
	timeout    int64
	maxRetries int

	reg          *obs.Registry
	offered      *obs.Counter
	delivered    *obs.Counter
	dropped      *obs.Counter
	shed         *obs.Counter
	shedBy       [numShedCauses]*obs.Counter
	runs         *obs.Counter
	runRetries   *obs.Counter
	deadlineMiss *obs.Counter
	chaosFaults  *obs.Counter
	nacks        *obs.Counter
	detections   *obs.Counter
	repairs      *obs.Counter
	healEvents   *obs.Counter
	latency      *obs.Histogram
	sessions     *obs.Gauge
	liveSessions atomic.Int64 // mirrored into the sessions gauge
}

// sessionDelta adjusts the tenant's live-session count and its gauge.
func (t *Tenant) sessionDelta(d int64) {
	t.sessions.Set(t.liveSessions.Add(d))
}

func newTenant(tc TenantConfig) *Tenant {
	reg := obs.NewRegistry()
	t := &Tenant{
		name:         tc.Tenant,
		timeout:      tc.RequestTimeout,
		maxRetries:   tc.MaxRetries,
		reg:          reg,
		offered:      reg.Counter("offered"),
		delivered:    reg.Counter("delivered"),
		dropped:      reg.Counter("dropped"),
		shed:         reg.Counter("shed"),
		runs:         reg.Counter("runs"),
		runRetries:   reg.Counter("run_retries"),
		deadlineMiss: reg.Counter("deadline_miss"),
		chaosFaults:  reg.Counter("chaos_faults"),
		nacks:        reg.Counter("heal_nacks"),
		detections:   reg.Counter("heal_detections"),
		repairs:      reg.Counter("heal_repairs"),
		healEvents:   reg.Counter("heal_events"),
		latency:      reg.Histogram("latency_us"),
		sessions:     reg.Gauge("sessions"),
	}
	for c := ShedCause(0); c < numShedCauses; c++ {
		t.shedBy[c] = reg.Counter("shed_" + c.String())
	}
	if tc.Admission != nil {
		t.bucket = newBucket(*tc.Admission)
	}
	return t
}

// Registry returns the tenant's metrics registry.
func (t *Tenant) Registry() *obs.Registry { return t.reg }

// shedOutcome counts n packets shed for cause and builds the Outcome.
func (t *Tenant) shedOutcome(cause ShedCause, n int) Outcome {
	t.shed.Add(int64(n))
	t.shedBy[cause].Add(int64(n))
	return Outcome{Status: StatusShed, Cause: cause.String(), Shed: n}
}

// bucket is the tenant token bucket over the injected clock.
type bucket struct {
	rate  float64 // tokens per 1e9 clock units
	burst float64

	mu     sync.Mutex
	tokens float64 // guarded by mu
	last   int64   // guarded by mu
}

func newBucket(cfg AdmissionConfig) *bucket {
	burst := float64(cfg.Burst)
	if cfg.Burst <= 0 {
		burst = cfg.Rate
		if burst < 1 {
			burst = 1
		}
	}
	return &bucket{rate: cfg.Rate, burst: burst, tokens: burst}
}

// take refills by the elapsed clock and consumes n tokens if available.
func (b *bucket) take(now int64, n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last == 0 {
		b.last = now
	}
	if dt := now - b.last; dt > 0 {
		b.tokens += float64(dt) * b.rate / 1e9
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// SessionStatus is the snapshot one /session/status request sees.
type SessionStatus struct {
	Session int64  `json:"session"`
	Tenant  string `json:"tenant"`
	Closed  bool   `json:"closed"`
	// Runs, Cycle, Epoch and Converged describe the persistent healing
	// state after the session's latest completed run.
	Runs      int64 `json:"runs"`
	Cycle     int   `json:"cycle"`
	Epoch     int   `json:"epoch"`
	Converged bool  `json:"converged"`
	// Queued is the request-queue depth at snapshot time.
	Queued int `json:"queued"`
}

// Status returns a session's snapshot.
func (s *Scheduler) Status(sid int64) (SessionStatus, error) {
	s.mu.Lock()
	sess := s.sessions[sid]
	s.mu.Unlock()
	if sess == nil {
		return SessionStatus{}, fmt.Errorf("serve: no session %d", sid)
	}
	return sess.status(), nil
}

func (sess *Session) status() SessionStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return SessionStatus{
		Session:   sess.id,
		Tenant:    sess.tenant.name,
		Closed:    sess.closed.Load(),
		Runs:      sess.runs,
		Cycle:     sess.lastCycle,
		Epoch:     sess.lastEpoch,
		Converged: sess.converged,
		Queued:    len(sess.queue),
	}
}

// Sessions returns every session's snapshot, sorted by session ID.
func (s *Scheduler) Sessions() []SessionStatus {
	s.mu.Lock()
	list := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		list = append(list, sess)
	}
	s.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	out := make([]SessionStatus, len(list))
	for i, sess := range list {
		out[i] = sess.status()
	}
	return out
}

// Tenant returns a tenant record by name (nil when unknown) — the hook
// for per-tenant expvar or direct registry reads.
func (s *Scheduler) Tenant(name string) *Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[name]
}
