package serve

import (
	"encoding/json"
	"fmt"
	"sort"
)

// SLOReportSchema identifies the JSON document SLOReport marshals to;
// bump on breaking changes.
const SLOReportSchema = "SLO_report/v1"

// TenantSLO is one tenant's service-level accounting. The exactness
// invariant every consumer may rely on: Offered == Delivered + Dropped
// + Shed, and the six shed-cause buckets sum to Shed.
type TenantSLO struct {
	Tenant string `json:"tenant"`
	// Sessions is the tenant's live session count at report time.
	Sessions int64 `json:"sessions"`

	Offered   int64 `json:"offered"`
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	Shed      int64 `json:"shed"`

	ShedAdmission int64 `json:"shed_admission"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
	ShedDraining  int64 `json:"shed_draining"`
	ShedClosed    int64 `json:"shed_closed"`
	ShedFailed    int64 `json:"shed_failed"`

	Runs           int64 `json:"runs"`
	RunRetries     int64 `json:"run_retries"`
	DeadlineMisses int64 `json:"deadline_misses"`

	// DeliveredFraction and ShedFraction are over Offered (0 when
	// nothing was offered).
	DeliveredFraction float64 `json:"delivered_fraction"`
	ShedFraction      float64 `json:"shed_fraction"`

	// P50/P99LatencyUS are bucketed upper bounds on request latency in
	// microseconds (clock units / 1000); MaxLatencyUS is exact.
	P50LatencyUS int64 `json:"p50_latency_us"`
	P99LatencyUS int64 `json:"p99_latency_us"`
	MaxLatencyUS int64 `json:"max_latency_us"`

	// The chaos section: background faults injected into the tenant's
	// sessions and what the self-healing control plane did about them.
	ChaosFaults    int64 `json:"chaos_faults"`
	HealNacks      int64 `json:"heal_nacks"`
	HealDetections int64 `json:"heal_detections"`
	HealRepairs    int64 `json:"heal_repairs"`
	HealEvents     int64 `json:"heal_events"`
}

// SLOTotals is the aggregate accounting over all tenants.
type SLOTotals struct {
	Offered   int64 `json:"offered"`
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	Shed      int64 `json:"shed"`

	DeliveredFraction float64 `json:"delivered_fraction"`
	ShedFraction      float64 `json:"shed_fraction"`
}

// SLOReport is the SLO_report/v1 document: per-tenant SLO accounting
// (sorted by tenant name — stable output) plus the aggregate.
type SLOReport struct {
	Schema   string      `json:"schema"`
	Sessions int         `json:"sessions"`
	Tenants  []TenantSLO `json:"tenants"`
	Total    SLOTotals   `json:"total"`
}

// SLOReport builds the current report from the live tenant registries.
func (s *Scheduler) SLOReport() SLOReport {
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	tenants := make([]*Tenant, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		tenants = append(tenants, s.tenants[name])
	}
	live := s.live
	s.mu.Unlock()

	rep := SLOReport{Schema: SLOReportSchema, Sessions: live, Tenants: []TenantSLO{}}
	for _, t := range tenants {
		e := TenantSLO{
			Tenant:         t.name,
			Sessions:       t.sessions.Value(),
			Offered:        t.offered.Value(),
			Delivered:      t.delivered.Value(),
			Dropped:        t.dropped.Value(),
			Shed:           t.shed.Value(),
			ShedAdmission:  t.shedBy[ShedAdmission].Value(),
			ShedQueueFull:  t.shedBy[ShedQueueFull].Value(),
			ShedDeadline:   t.shedBy[ShedDeadline].Value(),
			ShedDraining:   t.shedBy[ShedDraining].Value(),
			ShedClosed:     t.shedBy[ShedClosed].Value(),
			ShedFailed:     t.shedBy[ShedFailed].Value(),
			Runs:           t.runs.Value(),
			RunRetries:     t.runRetries.Value(),
			DeadlineMisses: t.deadlineMiss.Value(),
			P50LatencyUS:   t.latency.Quantile(0.50),
			P99LatencyUS:   t.latency.Quantile(0.99),
			MaxLatencyUS:   t.latency.Max(),
			ChaosFaults:    t.chaosFaults.Value(),
			HealNacks:      t.nacks.Value(),
			HealDetections: t.detections.Value(),
			HealRepairs:    t.repairs.Value(),
			HealEvents:     t.healEvents.Value(),
		}
		if e.Offered > 0 {
			e.DeliveredFraction = float64(e.Delivered) / float64(e.Offered)
			e.ShedFraction = float64(e.Shed) / float64(e.Offered)
		}
		rep.Total.Offered += e.Offered
		rep.Total.Delivered += e.Delivered
		rep.Total.Dropped += e.Dropped
		rep.Total.Shed += e.Shed
		rep.Tenants = append(rep.Tenants, e)
	}
	if rep.Total.Offered > 0 {
		rep.Total.DeliveredFraction = float64(rep.Total.Delivered) / float64(rep.Total.Offered)
		rep.Total.ShedFraction = float64(rep.Total.Shed) / float64(rep.Total.Offered)
	}
	return rep
}

// MarshalIndent renders the report as stable, human-diffable JSON with
// a trailing newline.
func (r SLOReport) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ValidateSLOReport parses data as an SLO_report/v1 document and checks
// every invariant consumers rely on: the schema tag, tenants sorted and
// unique, per-tenant and aggregate Delivered+Dropped+Shed == Offered,
// shed causes summing to Shed, fractions in [0,1] and consistent with
// the counts, and p50 <= p99 <= max latency.
func ValidateSLOReport(data []byte) error {
	var r SLOReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if r.Schema != SLOReportSchema {
		return fmt.Errorf("serve: schema %q, want %q", r.Schema, SLOReportSchema)
	}
	if r.Sessions < 0 {
		return fmt.Errorf("serve: negative session count %d", r.Sessions)
	}
	var tot SLOTotals
	for i, e := range r.Tenants {
		if i > 0 && r.Tenants[i-1].Tenant >= e.Tenant {
			return fmt.Errorf("serve: tenants not sorted/unique at %q", e.Tenant)
		}
		if e.Offered < 0 || e.Delivered < 0 || e.Dropped < 0 || e.Shed < 0 || e.Sessions < 0 {
			return fmt.Errorf("serve: tenant %q has negative accounting", e.Tenant)
		}
		if e.Delivered+e.Dropped+e.Shed != e.Offered {
			return fmt.Errorf("serve: tenant %q: %d delivered + %d dropped + %d shed != %d offered",
				e.Tenant, e.Delivered, e.Dropped, e.Shed, e.Offered)
		}
		causes := e.ShedAdmission + e.ShedQueueFull + e.ShedDeadline + e.ShedDraining + e.ShedClosed + e.ShedFailed
		if causes != e.Shed {
			return fmt.Errorf("serve: tenant %q: shed causes sum to %d, shed %d", e.Tenant, causes, e.Shed)
		}
		if err := checkFraction(e.Tenant, "delivered_fraction", e.DeliveredFraction, e.Delivered, e.Offered); err != nil {
			return err
		}
		if err := checkFraction(e.Tenant, "shed_fraction", e.ShedFraction, e.Shed, e.Offered); err != nil {
			return err
		}
		if e.P50LatencyUS < 0 || e.P50LatencyUS > e.P99LatencyUS || e.P99LatencyUS > e.MaxLatencyUS {
			return fmt.Errorf("serve: tenant %q: latency quantiles out of order (p50 %d, p99 %d, max %d)",
				e.Tenant, e.P50LatencyUS, e.P99LatencyUS, e.MaxLatencyUS)
		}
		tot.Offered += e.Offered
		tot.Delivered += e.Delivered
		tot.Dropped += e.Dropped
		tot.Shed += e.Shed
	}
	if tot.Offered != r.Total.Offered || tot.Delivered != r.Total.Delivered ||
		tot.Dropped != r.Total.Dropped || tot.Shed != r.Total.Shed {
		return fmt.Errorf("serve: total %+v does not sum the tenants (%+v)", r.Total, tot)
	}
	if r.Total.Delivered+r.Total.Dropped+r.Total.Shed != r.Total.Offered {
		return fmt.Errorf("serve: total accounting broken: %+v", r.Total)
	}
	return nil
}

func checkFraction(tenant, field string, got float64, num, den int64) error {
	if got < 0 || got > 1 {
		return fmt.Errorf("serve: tenant %q: %s %v outside [0,1]", tenant, field, got)
	}
	want := 0.0
	if den > 0 {
		want = float64(num) / float64(den)
	}
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("serve: tenant %q: %s %v inconsistent with %d/%d", tenant, field, got, num, den)
	}
	return nil
}
