package serve

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/simnet"
)

// fakeClock is a manually-advanced deterministic clock.
type fakeClock struct {
	t atomic.Int64
}

func (c *fakeClock) now() int64        { return c.t.Load() }
func (c *fakeClock) advance(d int64)   { c.t.Add(d) }
func (c *fakeClock) set(v int64) int64 { c.t.Store(v); return v }

func newTestScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(debruijn.DeBruijn(2, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustSession(t *testing.T, s *Scheduler, tc TenantConfig) int64 {
	t.Helper()
	sid, err := s.CreateSession(tc)
	if err != nil {
		t.Fatal(err)
	}
	return sid
}

func workload(s *Scheduler, n int, seed int64) []simnet.Packet {
	return simnet.UniformRandom(s.g.N(), n, seed)
}

func TestSubmitDeliversAndAccounts(t *testing.T) {
	s := newTestScheduler(t, Config{})
	if err := s.Start(2); err != nil {
		t.Fatal(err)
	}
	sid := mustSession(t, s, TenantConfig{Tenant: "acme"})

	const runs = 5
	const pktsPerRun = 24
	for i := 0; i < runs; i++ {
		out, err := s.Submit(sid, workload(s, pktsPerRun, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if out.Status != StatusOK {
			t.Fatalf("run %d: status %q cause %q", i, out.Status, out.Cause)
		}
		if got := out.Heal.Delivered + out.Heal.Dropped + out.Heal.Shed; got != pktsPerRun {
			t.Fatalf("run %d: accounting %d != offered %d", i, got, pktsPerRun)
		}
	}

	st, err := s.Status(sid)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != runs {
		t.Errorf("status runs = %d, want %d", st.Runs, runs)
	}
	if st.Cycle == 0 {
		t.Error("session clock did not advance across runs")
	}

	tn := s.Tenant("acme")
	offered := tn.offered.Value()
	if offered != runs*pktsPerRun {
		t.Errorf("offered = %d, want %d", offered, runs*pktsPerRun)
	}
	if got := tn.delivered.Value() + tn.dropped.Value() + tn.shed.Value(); got != offered {
		t.Errorf("tenant accounting %d != offered %d", got, offered)
	}
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionStatePersistsAcrossRuns(t *testing.T) {
	// The whole point of sessions: the self-healing clock keeps
	// counting across Submits, so chaos with session-absolute starts
	// stays continuous.
	s := newTestScheduler(t, Config{ChaosRate: 10})
	if err := s.Start(1); err != nil {
		t.Fatal(err)
	}
	sid := mustSession(t, s, TenantConfig{Tenant: "acme"})
	var prev int
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(sid, workload(s, 32, int64(i))); err != nil {
			t.Fatal(err)
		}
		st, err := s.Status(sid)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycle <= prev {
			t.Fatalf("run %d: session clock %d did not advance past %d", i, st.Cycle, prev)
		}
		prev = st.Cycle
	}
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionShedsAndRefills(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1)
	s := newTestScheduler(t, Config{Now: clk.now})
	if err := s.Start(1); err != nil {
		t.Fatal(err)
	}
	// 10 packets/second, burst 20: the first 20-packet submit drains
	// the bucket, the next sheds, and a one-second advance readmits.
	sid := mustSession(t, s, TenantConfig{
		Tenant:    "limited",
		Admission: &AdmissionConfig{Rate: 10, Burst: 20},
	})
	out, err := s.Submit(sid, workload(s, 20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusOK {
		t.Fatalf("first submit: %q (%s)", out.Status, out.Cause)
	}
	out, err = s.Submit(sid, workload(s, 20, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusShed || out.Cause != "admission" {
		t.Fatalf("over-budget submit: %q cause %q, want shed/admission", out.Status, out.Cause)
	}
	clk.advance(1_000_000_000)
	out, err = s.Submit(sid, workload(s, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusOK {
		t.Fatalf("post-refill submit: %q (%s)", out.Status, out.Cause)
	}
	tn := s.Tenant("limited")
	if got := tn.shedBy[ShedAdmission].Value(); got != 20 {
		t.Errorf("shed_admission = %d, want 20", got)
	}
	if got := tn.delivered.Value() + tn.dropped.Value() + tn.shed.Value(); got != tn.offered.Value() {
		t.Errorf("tenant accounting %d != offered %d", got, tn.offered.Value())
	}
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestDeadlineShedsQueuedWork(t *testing.T) {
	// The default logical clock advances 1000 units per reading, so a
	// RequestTimeout of 1 is deterministically expired by the time the
	// worker's execute() reads the clock again — the queued-too-long
	// path without real sleeps.
	s := newTestScheduler(t, Config{})
	sid := mustSession(t, s, TenantConfig{Tenant: "acme", RequestTimeout: 1})
	if err := s.Start(1); err != nil {
		t.Fatal(err)
	}
	out, err := s.Submit(sid, workload(s, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusShed || out.Cause != "deadline" {
		t.Fatalf("deadline request: %q cause %q, want shed/deadline", out.Status, out.Cause)
	}
	tn := s.Tenant("acme")
	if got := tn.deadlineMiss.Value(); got != 1 {
		t.Errorf("deadline_miss = %d, want 1", got)
	}
	if got := tn.shedBy[ShedDeadline].Value(); got != 8 {
		t.Errorf("shed_deadline = %d, want 8", got)
	}
	if got := tn.delivered.Value() + tn.dropped.Value() + tn.shed.Value(); got != tn.offered.Value() {
		t.Errorf("tenant accounting %d != offered %d", got, tn.offered.Value())
	}
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFullSheds(t *testing.T) {
	s := newTestScheduler(t, Config{QueueDepth: 1})
	sid := mustSession(t, s, TenantConfig{Tenant: "acme"})
	if err := s.Start(1); err != nil {
		t.Fatal(err)
	}
	// Saturate: with depth 1 and concurrent submits, at least one must
	// shed queue_full or all must succeed serially — drive enough
	// concurrent submitters that overflow is certain.
	const submitters = 8
	var wg sync.WaitGroup
	var shedQF atomic.Int64
	wg.Add(submitters)
	for i := 0; i < submitters; i++ {
		go func(i int) {
			defer wg.Done()
			out, err := s.Submit(sid, workload(s, 256, int64(i)))
			if err != nil {
				t.Error(err)
				return
			}
			if out.Status == StatusShed && out.Cause == "queue_full" {
				shedQF.Add(1)
			}
		}(i)
	}
	wg.Wait()
	tn := s.Tenant("acme")
	if got := tn.delivered.Value() + tn.dropped.Value() + tn.shed.Value(); got != tn.offered.Value() {
		t.Errorf("tenant accounting %d != offered %d", got, tn.offered.Value())
	}
	if shedQF.Load() != tn.shedBy[ShedQueueFull].Value()/256 {
		t.Errorf("queue_full outcomes %d inconsistent with counter %d", shedQF.Load(), tn.shedBy[ShedQueueFull].Value())
	}
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseSessionShedsAndFreesSlot(t *testing.T) {
	s := newTestScheduler(t, Config{MaxSessions: 1})
	if err := s.Start(1); err != nil {
		t.Fatal(err)
	}
	sid := mustSession(t, s, TenantConfig{Tenant: "acme"})
	if _, err := s.CreateSession(TenantConfig{Tenant: "acme"}); err == nil {
		t.Fatal("second session fit a MaxSessions=1 table")
	}
	if err := s.CloseSession(sid); err != nil {
		t.Fatal(err)
	}
	out, err := s.Submit(sid, workload(s, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusShed || out.Cause != "closed" {
		t.Fatalf("submit to closed session: %q cause %q", out.Status, out.Cause)
	}
	// The slot is free again.
	if _, err := s.CreateSession(TenantConfig{Tenant: "acme"}); err != nil {
		t.Fatalf("slot not freed by close: %v", err)
	}
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestGracefulDrainExactAccounting(t *testing.T) {
	s := newTestScheduler(t, Config{ChaosRate: 5})
	if err := s.Start(2); err != nil {
		t.Fatal(err)
	}
	const sessions = 8
	sids := make([]int64, sessions)
	for i := range sids {
		sids[i] = mustSession(t, s, TenantConfig{Tenant: "acme"})
	}
	// Drive load from many goroutines, then shut down in the middle of
	// it; every submit must come back either ok or shed, never lost.
	var wg sync.WaitGroup
	var done atomic.Int64
	const submitters = 16
	wg.Add(submitters)
	for i := 0; i < submitters; i++ {
		go func(i int) {
			defer wg.Done()
			for r := 0; r < 6; r++ {
				out, err := s.Submit(sids[(i+r)%sessions], workload(s, 64, int64(i*100+r)))
				if err != nil {
					t.Error(err)
					return
				}
				if out.Status != StatusOK && out.Status != StatusShed {
					t.Errorf("outcome status %q", out.Status)
					return
				}
				done.Add(1)
			}
		}(i)
	}
	// Let some work land, then drain concurrently with the submitters.
	for done.Load() < submitters {
		runtime.Gosched()
	}
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	tn := s.Tenant("acme")
	offered := tn.offered.Value()
	if offered != submitters*6*64 {
		t.Fatalf("offered = %d, want %d", offered, submitters*6*64)
	}
	if got := tn.delivered.Value() + tn.dropped.Value() + tn.shed.Value(); got != offered {
		t.Fatalf("post-drain accounting %d != offered %d — packets lost in drain", got, offered)
	}
	// Post-drain submits shed immediately with cause draining.
	out, err := s.Submit(sids[0], workload(s, 8, 999))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusShed || out.Cause != "draining" {
		t.Fatalf("post-drain submit: %q cause %q", out.Status, out.Cause)
	}
}

func TestChaosPlansAreDeterministicPerSession(t *testing.T) {
	mk := func() *Scheduler {
		s := newTestScheduler(t, Config{ChaosRate: 8, ChaosSeed: 42})
		if err := s.Start(1); err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	sa := mustSession(t, a, TenantConfig{Tenant: "x"})
	sb := mustSession(t, b, TenantConfig{Tenant: "x"})
	oa, err := a.Submit(sa, workload(a, 128, 7))
	if err != nil {
		t.Fatal(err)
	}
	ob, err := b.Submit(sb, workload(b, 128, 7))
	if err != nil {
		t.Fatal(err)
	}
	if oa.Heal.Delivered != ob.Heal.Delivered || oa.Heal.Nacks != ob.Heal.Nacks ||
		oa.Heal.EventsCommitted != ob.Heal.EventsCommitted {
		t.Fatalf("same seed, same session id, different chaos: %+v vs %+v", oa.Heal, ob.Heal)
	}
	if _, err := a.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestTenantConfigValidation(t *testing.T) {
	s := newTestScheduler(t, Config{})
	cases := []TenantConfig{
		{},
		{Tenant: "x", Admission: &AdmissionConfig{Rate: 0}},
		{Tenant: "x", QueueCapacity: -1},
		{Tenant: "x", RequestTimeout: -5},
	}
	for i, tc := range cases {
		if _, err := s.CreateSession(tc); err == nil {
			t.Errorf("case %d (%+v): invalid config accepted", i, tc)
		}
	}
	if _, err := s.Submit(99, workload(s, 4, 1)); err == nil || !strings.Contains(err.Error(), "not started") {
		t.Errorf("submit before start: %v", err)
	}
}
