// Package serve is the multi-tenant session service layer: a concurrent
// scheduler hosting many long-lived self-healing simulation sessions
// over ONE shared compiled simnet.Network. It is the "millions of
// users" surface of the ROADMAP — where the batch-shaped simulators
// (one caller, one Run, exit) become a long-lived process that stays
// correct and bounded while tenants churn, faults fire continuously and
// offered load exceeds capacity.
//
// The shape:
//
//   - a Session wraps a persistent simnet.SelfHealing state — the
//     session clock, epoch slabs and event log survive across requests,
//     so every tenant lives in the converged self-healed regime of its
//     own chaos history. SelfHealing is not thread-safe; the scheduler
//     serializes each session's requests while running any number of
//     sessions concurrently (the Network itself is safe for concurrent
//     runs via pooled arenas and shared read-only slabs);
//   - every session is born with a chaos fault plan (the PR 5 chaos
//     smoke, always-on): seeded, session-absolute faults at a
//     configurable rate, so background failure is the steady state, not
//     a test mode;
//   - per-tenant admission control (token bucket over the injected
//     clock) and per-session bounded queues with exact shed accounting:
//     every offered packet ends in exactly one of Delivered, Dropped or
//     Shed — Delivered+Dropped+Shed == Offered per tenant, per session
//     and in aggregate, including across graceful drain;
//   - per-tenant obs.Registry (expvar-publishable — registries are
//     namespaced by name and rebindable, so tenant churn cannot panic
//     the process) and an SLO_report/v1 JSON document with p99 latency,
//     delivered fraction and shed fraction per tenant.
//
// Scheduling is a ready-list of sessions served by a bounded worker
// pool. A session is on the ready list iff it has queued requests and
// no worker is serving it (the scheduled bit); workers drain a
// session's queue completely before releasing it, so per-session FIFO
// order holds and no session can be served by two workers at once.
//
// The package never reads the wall clock (the determinism analyzer
// forbids it outside cmd/*): time enters through Config.Now, which
// cmd/serve wires to time.Now and tests wire to fake clocks.
package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/digraph"
	"repro/internal/simnet"
)

// Config tunes a Scheduler. The zero value selects workable defaults
// for every field.
type Config struct {
	// MaxSessions bounds the live (created and not closed) sessions
	// (0: 4096). CreateSession refuses beyond the bound — session-table
	// admission control, the overload answer at the control plane.
	MaxSessions int
	// QueueDepth bounds each session's pending-request queue (0: 16).
	// A full queue sheds at submit with cause ShedQueueFull.
	QueueDepth int
	// DrainDeadline is the shutdown budget in clock units (Config.Now
	// deltas; nanoseconds under the real clock). Shutdown always drains
	// completely — in-flight runs finish, queued requests shed — but
	// reports an error if draining overran the deadline (0: no
	// deadline).
	DrainDeadline int64
	// ChaosRate is the background fault intensity: expected faults per
	// 1000 session cycles over each session's chaos horizon (0: 2; < 0:
	// chaos off). Faults are transient (bounded duration), so sessions
	// degrade and recover forever instead of decaying monotonically.
	ChaosRate float64
	// ChaosHorizon is how many session-absolute cycles of chaos each
	// session's plan covers (0: 65536).
	ChaosHorizon int
	// ChaosSeed seeds the per-session chaos streams; session i draws
	// from seed ChaosSeed+i, so plans are deterministic per scheduler
	// configuration (0: 1).
	ChaosSeed int64
	// Now is the clock: a monotonically non-decreasing tick count,
	// nanoseconds when wired to time.Now().UnixNano. When nil the
	// scheduler uses an internal logical clock advancing 1000 units per
	// reading — deterministic, which keeps library tests and the SLO
	// golden reproducible.
	Now func() int64
	// ExpvarPrefix, when non-empty, publishes every tenant's registry
	// as expvar "<prefix>_<tenant>" (rebind-safe across tenant churn).
	ExpvarPrefix string
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.ChaosRate == 0 {
		c.ChaosRate = 2
	}
	if c.ChaosHorizon <= 0 {
		c.ChaosHorizon = 1 << 16
	}
	if c.ChaosSeed == 0 {
		c.ChaosSeed = 1
	}
	return c
}

// DrainStats reports how a Shutdown went. Accounting never leaks:
// queued requests were shed (counted per tenant), in-flight runs
// completed.
type DrainStats struct {
	// Duration is the drain time in clock units.
	Duration int64
	// Sessions is the number of live sessions drained.
	Sessions int
}

// Scheduler is the concurrent session service. Create with New, start
// workers with Start, then CreateSession/Submit from any number of
// goroutines; Shutdown drains gracefully. All methods are safe for
// concurrent use.
type Scheduler struct {
	nw  *simnet.Network
	g   *digraph.Digraph
	cfg Config

	// gate is the accept gate: Submit holds it for reading across the
	// draining check and the enqueue, Shutdown holds it for writing to
	// flip draining — so no request can be half-enqueued when the drain
	// begins, which is what makes the drain accounting exact.
	gate     sync.RWMutex
	draining atomic.Bool
	started  atomic.Bool

	mu       sync.Mutex
	sessions map[int64]*Session // guarded by mu
	tenants  map[string]*Tenant // guarded by mu
	nextSID  int64              // guarded by mu
	live     int                // guarded by mu

	readyMu sync.Mutex
	readyQ  []*Session // guarded by readyMu
	stopped bool       // guarded by readyMu
	readyC  *sync.Cond

	wg   sync.WaitGroup
	tick atomic.Int64 // fallback logical clock when cfg.Now is nil
}

// New builds a scheduler over its own compiled Network for g, routed by
// table slabs (TableRouting) so every self-healing session shares the
// one pristine routing slab instead of compiling its own.
func New(g *digraph.Digraph, cfg Config) (*Scheduler, error) {
	if g == nil {
		return nil, fmt.Errorf("serve: nil digraph")
	}
	nw, err := simnet.NewNetwork(g, simnet.WithRouting(simnet.TableRouting))
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		nw:       nw,
		g:        g,
		cfg:      cfg.withDefaults(),
		sessions: map[int64]*Session{},
		tenants:  map[string]*Tenant{},
	}
	s.readyC = sync.NewCond(&s.readyMu)
	return s, nil
}

// Network returns the shared compiled network (for direct RunOpts
// traffic next to the session service — the Network is safe for
// concurrent runs).
func (s *Scheduler) Network() *simnet.Network { return s.nw }

// now reads the injected clock, or the deterministic fallback.
func (s *Scheduler) now() int64 {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return s.tick.Add(1000)
}

// Start spawns the worker pool. workers bounds the concurrent session
// runs (values < 1 are raised to 1). Start may be called once.
func (s *Scheduler) Start(workers int) error {
	if workers < 1 {
		workers = 1
	}
	if !s.started.CompareAndSwap(false, true) {
		return fmt.Errorf("serve: scheduler already started")
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return nil
}

// worker serves ready sessions until shutdown empties the ready list.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.readyMu.Lock()
		for len(s.readyQ) == 0 && !s.stopped {
			s.readyC.Wait()
		}
		if len(s.readyQ) == 0 {
			// stopped and nothing left: every queue is empty (a session
			// with queued requests always holds a ready entry or an
			// active server).
			s.readyMu.Unlock()
			return
		}
		sess := s.readyQ[0]
		s.readyQ = s.readyQ[1:]
		s.readyMu.Unlock()
		s.serveSession(sess)
	}
}

// serveSession drains one session's queue. The session's scheduled bit
// is true for the whole time (set by the Submit that enqueued it), so
// no other worker can enter; the re-check after clearing it closes the
// race against a Submit that enqueued between "queue empty" and the
// Store.
func (s *Scheduler) serveSession(sess *Session) {
	for {
		for {
			select {
			case req := <-sess.queue:
				s.execute(sess, req)
			default:
				goto drained
			}
		}
	drained:
		sess.scheduled.Store(false)
		if len(sess.queue) == 0 || !sess.scheduled.CompareAndSwap(false, true) {
			return
		}
	}
}

// notify puts a session on the ready list. Callers must have won the
// scheduled CAS.
func (s *Scheduler) notify(sess *Session) {
	s.readyMu.Lock()
	s.readyQ = append(s.readyQ, sess)
	s.readyMu.Unlock()
	s.readyC.Signal()
}

// CreateSession opens a persistent self-healing session for the tenant
// named in tc, with its own always-on chaos plan, and returns the
// session ID. The first session of a tenant creates the tenant record
// (registry, admission bucket); later sessions share it — tc's tenant-
// level knobs are read only on that first call.
func (s *Scheduler) CreateSession(tc TenantConfig) (int64, error) {
	if tc.Tenant == "" {
		return 0, fmt.Errorf("serve: TenantConfig.Tenant must be non-empty")
	}
	if err := tc.validate(); err != nil {
		return 0, err
	}
	if s.draining.Load() {
		return 0, fmt.Errorf("serve: scheduler is draining")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.live >= s.cfg.MaxSessions {
		return 0, fmt.Errorf("serve: session table full (%d live sessions)", s.live)
	}
	t := s.tenants[tc.Tenant]
	if t == nil {
		t = newTenant(tc)
		s.tenants[tc.Tenant] = t
		if s.cfg.ExpvarPrefix != "" {
			t.reg.PublishExpvar(s.cfg.ExpvarPrefix + "_" + tc.Tenant)
		}
	}
	sid := s.nextSID
	s.nextSID++

	// Always-on chaos: a seeded, session-absolute fault plan covering
	// the session's chaos horizon. Deterministic per (seed, session).
	var plan *simnet.FaultPlan
	faults := 0
	if s.cfg.ChaosRate > 0 {
		rng := rand.New(rand.NewSource(s.cfg.ChaosSeed + sid))
		plan, faults = chaosPlan(rng, s.g, s.cfg.ChaosRate, s.cfg.ChaosHorizon)
	} else {
		plan = simnet.NewFaultPlanFor(s.g)
	}
	hc := simnet.HealConfig{}
	hc.QueueCapacity = tc.QueueCapacity
	hc.HoldBudget = tc.HoldBudget
	heal, err := s.nw.SelfHeal(plan, hc)
	if err != nil {
		return 0, err
	}
	sess := &Session{
		id:     sid,
		tenant: t,
		heal:   heal,
		queue:  make(chan *request, s.cfg.QueueDepth),
	}
	s.sessions[sid] = sess
	s.live++
	t.sessionDelta(1)
	t.chaosFaults.Add(int64(faults))
	return sid, nil
}

// CloseSession stops a session accepting work and frees its slot in
// the session table. Queued requests are shed with cause ShedClosed;
// the tenant's accounting stays exact. The session's metrics remain in
// its tenant's registry.
func (s *Scheduler) CloseSession(sid int64) error {
	s.mu.Lock()
	sess := s.sessions[sid]
	if sess == nil {
		s.mu.Unlock()
		return fmt.Errorf("serve: no session %d", sid)
	}
	already := sess.closed.Swap(true)
	if !already {
		s.live--
		sess.tenant.sessionDelta(-1)
	}
	s.mu.Unlock()
	if already {
		return nil
	}
	// Wake the session so a worker sheds anything still queued.
	if sess.scheduled.CompareAndSwap(false, true) {
		s.notify(sess)
	}
	return nil
}

// Submit offers a workload to a session and blocks until the request
// completed or was shed. The returned Outcome always accounts every
// packet: either a HealResult (Delivered+Dropped == offered) or a shed
// with its cause. The error is non-nil only for unknown sessions and
// misuse — load-induced refusals are Outcomes, not errors.
func (s *Scheduler) Submit(sid int64, pkts []simnet.Packet) (Outcome, error) {
	if !s.started.Load() {
		return Outcome{}, fmt.Errorf("serve: scheduler not started")
	}
	if len(pkts) == 0 {
		return Outcome{}, fmt.Errorf("serve: empty workload")
	}
	s.mu.Lock()
	sess := s.sessions[sid]
	s.mu.Unlock()
	if sess == nil {
		return Outcome{}, fmt.Errorf("serve: no session %d", sid)
	}
	t := sess.tenant
	n := len(pkts)
	t.offered.Add(int64(n))
	now := s.now()

	s.gate.RLock()
	if s.draining.Load() {
		s.gate.RUnlock()
		return t.shedOutcome(ShedDraining, n), nil
	}
	if sess.closed.Load() {
		s.gate.RUnlock()
		return t.shedOutcome(ShedClosed, n), nil
	}
	if t.bucket != nil && !t.bucket.take(now, n) {
		s.gate.RUnlock()
		return t.shedOutcome(ShedAdmission, n), nil
	}
	req := &request{pkts: pkts, submitted: now, done: make(chan Outcome, 1)}
	if t.timeout > 0 {
		req.deadline = now + t.timeout
	}
	select {
	case sess.queue <- req:
	default:
		s.gate.RUnlock()
		return t.shedOutcome(ShedQueueFull, n), nil
	}
	if sess.scheduled.CompareAndSwap(false, true) {
		s.notify(sess)
	}
	s.gate.RUnlock()
	return <-req.done, nil
}

// execute runs one request on its session (the calling worker owns the
// session). Shed decisions repeat here because draining, closing or the
// deadline may have arrived while the request sat queued.
func (s *Scheduler) execute(sess *Session, req *request) {
	t := sess.tenant
	n := len(req.pkts)
	now := s.now()
	switch {
	case s.draining.Load():
		req.done <- t.shedOutcome(ShedDraining, n)
		return
	case sess.closed.Load():
		req.done <- t.shedOutcome(ShedClosed, n)
		return
	case req.deadline > 0 && now > req.deadline:
		t.deadlineMiss.Add(1)
		req.done <- t.shedOutcome(ShedDeadline, n)
		return
	}

	// Bounded retries: a failed Run (config/plan errors surfacing late)
	// is retried up to the tenant's budget; what the failed attempts
	// already accounted stays counted, the remainder sheds as
	// ShedFailed so the tenant invariant survives even errors.
	var hr simnet.HealResult
	var err error
	for attempt := 0; ; attempt++ {
		hr, err = sess.heal.Run(req.pkts)
		if err == nil || attempt >= t.maxRetries {
			break
		}
		t.runRetries.Add(1)
	}
	end := s.now()

	t.runs.Add(1)
	t.delivered.Add(int64(hr.Delivered))
	t.dropped.Add(int64(hr.Dropped))
	t.nacks.Add(int64(hr.Nacks))
	t.detections.Add(int64(hr.Detections))
	t.repairs.Add(int64(hr.Repairs))
	t.healEvents.Add(int64(hr.EventsCommitted))
	lat := end - req.submitted
	t.latency.Observe(lat / 1000)
	if req.deadline > 0 && end > req.deadline {
		t.deadlineMiss.Add(1)
	}

	sess.mu.Lock()
	sess.runs++
	sess.lastCycle = sess.heal.Cycle()
	sess.lastEpoch = sess.heal.Epoch()
	sess.converged = sess.heal.Converged()
	sess.mu.Unlock()

	out := Outcome{Status: StatusOK, Heal: hr, LatencyNS: lat}
	if err != nil {
		// Partial accounting from the failed attempt is already in
		// Delivered/Dropped; shed the remainder.
		rest := n - hr.Delivered - hr.Dropped
		if rest < 0 {
			rest = 0
		}
		out = t.shedOutcome(ShedFailed, rest)
		out.Heal = hr
		out.Err = err.Error()
	}
	req.done <- out
}

// Shutdown drains the scheduler: no new work is accepted, in-flight
// runs complete, queued requests shed with cause ShedDraining, workers
// exit. It reports the drain duration against Config.DrainDeadline —
// the drain itself always completes (runs are cycle-bounded), only the
// deadline verdict varies. Shutdown is not idempotent; call it once.
func (s *Scheduler) Shutdown() (DrainStats, error) {
	start := s.now()
	s.gate.Lock()
	already := s.draining.Swap(true)
	s.gate.Unlock()
	if already {
		return DrainStats{}, fmt.Errorf("serve: already shut down")
	}
	s.readyMu.Lock()
	s.stopped = true
	s.readyMu.Unlock()
	s.readyC.Broadcast()
	s.wg.Wait()
	stats := DrainStats{Duration: s.now() - start}
	s.mu.Lock()
	stats.Sessions = s.live
	s.mu.Unlock()
	if dl := s.cfg.DrainDeadline; dl > 0 && stats.Duration > dl {
		return stats, fmt.Errorf("serve: drain took %d, deadline %d", stats.Duration, dl)
	}
	return stats, nil
}
