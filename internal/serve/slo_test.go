package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildGoldenReport drives a fully deterministic service run: one
// worker (so execution order is serial), the internal logical clock
// (1000 units per reading), fixed seeds, serial submits. Every number
// in the report is reproducible byte for byte.
func buildGoldenReport(t *testing.T) SLOReport {
	t.Helper()
	s := newTestScheduler(t, Config{ChaosRate: 6, ChaosSeed: 9, QueueDepth: 4})
	if err := s.Start(1); err != nil {
		t.Fatal(err)
	}
	acme := mustSession(t, s, TenantConfig{Tenant: "acme", QueueCapacity: 4})
	acme2 := mustSession(t, s, TenantConfig{Tenant: "acme"})
	zeta := mustSession(t, s, TenantConfig{
		Tenant:    "zeta",
		Admission: &AdmissionConfig{Rate: 1, Burst: 40},
	})
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(acme, workload(s, 24, int64(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(acme2, workload(s, 16, int64(10+i))); err != nil {
			t.Fatal(err)
		}
		// zeta's bucket holds 40 tokens and refills ~nothing on the
		// logical clock: submits 3 and 4 shed on admission.
		if _, err := s.Submit(zeta, workload(s, 20, int64(20+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CloseSession(acme2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(acme2, workload(s, 8, 99)); err != nil { // sheds: closed
		t.Fatal(err)
	}
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(acme, workload(s, 8, 100)); err != nil { // sheds: draining
		t.Fatal(err)
	}
	return s.SLOReport()
}

func TestSLOReportGolden(t *testing.T) {
	rep := buildGoldenReport(t)
	got, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "slo_report.golden")
	if os.Getenv("UPDATE_SLO_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_SLO_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("SLO report drifted from golden %s:\ngot:\n%s", golden, got)
	}
	if err := ValidateSLOReport(got); err != nil {
		t.Fatalf("golden report does not validate: %v", err)
	}
}

func TestSLOReportAccountsEveryCause(t *testing.T) {
	rep := buildGoldenReport(t)
	var acme, zeta *TenantSLO
	for i := range rep.Tenants {
		switch rep.Tenants[i].Tenant {
		case "acme":
			acme = &rep.Tenants[i]
		case "zeta":
			zeta = &rep.Tenants[i]
		}
	}
	if acme == nil || zeta == nil {
		t.Fatalf("missing tenants in %+v", rep.Tenants)
	}
	if acme.ShedClosed != 8 {
		t.Errorf("acme shed_closed = %d, want 8", acme.ShedClosed)
	}
	if acme.ShedDraining != 8 {
		t.Errorf("acme shed_draining = %d, want 8", acme.ShedDraining)
	}
	if zeta.ShedAdmission == 0 {
		t.Error("zeta shed nothing on admission; the bucket should have run dry")
	}
	if acme.ChaosFaults == 0 {
		t.Error("acme sessions carry no chaos faults; chaos should be always-on")
	}
	if acme.HealNacks == 0 && acme.HealEvents == 0 {
		t.Error("chaos fired but the healing layer saw nothing")
	}
	if rep.Total.Offered != acme.Offered+zeta.Offered {
		t.Errorf("total offered %d != %d + %d", rep.Total.Offered, acme.Offered, zeta.Offered)
	}
}

func TestValidateSLOReportRejectsCorruption(t *testing.T) {
	rep := buildGoldenReport(t)
	good, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSLOReport(good); err != nil {
		t.Fatal(err)
	}
	corrupt := func(f func(*SLOReport)) []byte {
		var r SLOReport
		if err := json.Unmarshal(good, &r); err != nil {
			t.Fatal(err)
		}
		f(&r)
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"wrong schema", corrupt(func(r *SLOReport) { r.Schema = "SLO_report/v0" }), "schema"},
		{"broken accounting", corrupt(func(r *SLOReport) { r.Tenants[0].Delivered++ }), "offered"},
		{"broken causes", corrupt(func(r *SLOReport) { r.Tenants[0].ShedClosed++ }), "causes"},
		{"unsorted tenants", corrupt(func(r *SLOReport) {
			r.Tenants[0], r.Tenants[1] = r.Tenants[1], r.Tenants[0]
		}), "sorted"},
		{"stale total", corrupt(func(r *SLOReport) { r.Total.Offered += 5 }), "sum"},
		{"bad fraction", corrupt(func(r *SLOReport) { r.Tenants[0].DeliveredFraction = 2 }), "[0,1]"},
		{"not json", []byte("{"), "unexpected end"},
	}
	for _, tc := range cases {
		err := ValidateSLOReport(tc.data)
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
