package serve

import (
	"sync"
	"testing"

	"repro/internal/simnet"
)

// TestThousandConcurrentSessions is the ROADMAP acceptance load test:
// >= 1000 concurrent persistent self-healing sessions over ONE shared
// compiled Network, driven from many goroutines with always-on chaos,
// with
//
//   - exact aggregate accounting: per tenant and in total, Delivered +
//     Dropped + Shed == Offered, bit-exact, no packet lost;
//   - zero deadline misses at rated load (the timeout is sized to the
//     worst queueing the configuration allows);
//   - graceful drain within the configured deadline while chaos is
//     active, submits racing the shutdown.
//
// Run under -race by scripts/check.sh: any shared mutable state across
// sessions (arenas, routing slabs, registries, the scheduler itself)
// is a race report here.
func TestThousandConcurrentSessions(t *testing.T) {
	const (
		tenants      = 50
		perTenant    = 20 // 1000 sessions
		sessions     = tenants * perTenant
		runsPer      = 2
		pktsPerRun   = 8
		submitters   = 32
		queueDepth   = 32
		drainBudget  = 1 << 40 // logical-clock units; generous but finite
		requestLimit = 1 << 40
	)
	s := newTestScheduler(t, Config{
		MaxSessions:   sessions,
		QueueDepth:    queueDepth,
		DrainDeadline: drainBudget,
		ChaosRate:     4,
		ChaosSeed:     7,
	})
	if err := s.Start(8); err != nil {
		t.Fatal(err)
	}

	tenantNames := make([]string, tenants)
	sids := make([]int64, 0, sessions)
	for ti := 0; ti < tenants; ti++ {
		name := "tenant_" + itoa2(ti)
		tenantNames[ti] = name
		for k := 0; k < perTenant; k++ {
			sid, err := s.CreateSession(TenantConfig{
				Tenant:         name,
				RequestTimeout: requestLimit,
			})
			if err != nil {
				t.Fatal(err)
			}
			sids = append(sids, sid)
		}
	}
	if len(sids) != sessions {
		t.Fatalf("created %d sessions, want %d", len(sids), sessions)
	}

	// Every session gets runsPer submits, partitioned across submitter
	// goroutines so all sessions are exercised and submits overlap.
	var wg sync.WaitGroup
	wg.Add(submitters)
	var mu sync.Mutex
	outcomes := map[string]int{}
	for w := 0; w < submitters; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < sessions; i += submitters {
				for r := 0; r < runsPer; r++ {
					out, err := s.Submit(sids[i], simnet.UniformRandom(s.g.N(), pktsPerRun, int64(i*runsPer+r)))
					if err != nil {
						t.Errorf("session %d: %v", sids[i], err)
						return
					}
					key := out.Status
					if out.Status == StatusShed {
						key = out.Cause
					}
					mu.Lock()
					outcomes[key]++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	stats, err := s.Shutdown()
	if err != nil {
		t.Fatalf("drain overran its deadline: %v", err)
	}
	if stats.Sessions != sessions {
		t.Errorf("drained %d sessions, want %d", stats.Sessions, sessions)
	}

	rep := s.SLOReport()
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSLOReport(data); err != nil {
		t.Fatalf("SLO report does not validate after load: %v", err)
	}
	if len(rep.Tenants) != tenants {
		t.Fatalf("report has %d tenants, want %d", len(rep.Tenants), tenants)
	}
	wantOffered := int64(sessions * runsPer * pktsPerRun)
	if rep.Total.Offered != wantOffered {
		t.Errorf("total offered = %d, want %d", rep.Total.Offered, wantOffered)
	}
	if got := rep.Total.Delivered + rep.Total.Dropped + rep.Total.Shed; got != rep.Total.Offered {
		t.Errorf("aggregate accounting %d != offered %d — packets lost", got, rep.Total.Offered)
	}
	for _, e := range rep.Tenants {
		if e.Offered != int64(perTenant*runsPer*pktsPerRun) {
			t.Errorf("tenant %s offered %d, want %d", e.Tenant, e.Offered, perTenant*runsPer*pktsPerRun)
		}
		if e.DeadlineMisses != 0 {
			t.Errorf("tenant %s missed %d deadlines at rated load", e.Tenant, e.DeadlineMisses)
		}
		if e.ChaosFaults == 0 {
			t.Errorf("tenant %s has no chaos faults; chaos must be always-on", e.Tenant)
		}
	}
	if outcomes[StatusOK] == 0 {
		t.Fatalf("no request succeeded: %v", outcomes)
	}
	t.Logf("outcomes: %v; drain took %d clock units over %d sessions", outcomes, stats.Duration, stats.Sessions)
}

// TestDrainUnderFire shuts down while submitters are still pounding the
// scheduler and chaos is active: the drain must complete, every submit
// must resolve (ok or shed, never hang), and accounting must stay
// exact.
func TestDrainUnderFire(t *testing.T) {
	const sessions = 64
	s := newTestScheduler(t, Config{
		MaxSessions:   sessions,
		ChaosRate:     8,
		DrainDeadline: 1 << 40,
	})
	if err := s.Start(4); err != nil {
		t.Fatal(err)
	}
	sids := make([]int64, sessions)
	for i := range sids {
		var err error
		sids[i], err = s.CreateSession(TenantConfig{Tenant: "fire"})
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	const submitters = 16
	wg.Add(submitters)
	start := make(chan struct{})
	for w := 0; w < submitters; w++ {
		go func(w int) {
			defer wg.Done()
			<-start
			for r := 0; r < 20; r++ {
				if _, err := s.Submit(sids[(w*7+r)%sessions], simnet.UniformRandom(s.g.N(), 16, int64(w*100+r))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	close(start)
	// Shut down immediately — most submits race the drain.
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	tn := s.Tenant("fire")
	if got := tn.delivered.Value() + tn.dropped.Value() + tn.shed.Value(); got != tn.offered.Value() {
		t.Fatalf("accounting %d != offered %d after drain under fire", got, tn.offered.Value())
	}
	if tn.offered.Value() != submitters*20*16 {
		t.Fatalf("offered %d, want %d", tn.offered.Value(), submitters*20*16)
	}
}

// itoa2 is a tiny zero-dependency int formatter for tenant names.
func itoa2(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
