package serve

import (
	"math/rand"

	"repro/internal/digraph"
	"repro/internal/simnet"
)

// Always-on background chaos. Every session is born with a seeded fault
// plan spanning its chaos horizon, so faults keep firing for the whole
// life of the session — failure is the service's steady state, and the
// per-tenant SLO numbers are measured under it, not in a lab-clean run.
//
// Two deliberate differences from the PR 5 chaos smoke it descends
// from: faults here are always transient (a permanent fault in a
// session that lives forever would degrade the network monotonically
// until nothing routes — real hardware gets repaired), and fault starts
// are spread over the whole horizon (session-absolute cycles, which is
// what SelfHealing feeds its FaultState) instead of the first 100
// cycles of a single batch run.

// chaosPlan builds a fault plan for g with an expected rate faults per
// 1000 cycles over horizon cycles, drawn from rng. Returns the plan and
// the number of faults injected.
func chaosPlan(rng *rand.Rand, g *digraph.Digraph, rate float64, horizon int) (*simnet.FaultPlan, int) {
	plan := simnet.NewFaultPlanFor(g)
	n := int(rate * float64(horizon) / 1000)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		start := rng.Intn(horizon)
		duration := 20 + rng.Intn(200) // transient: always repaired
		switch rng.Intn(3) {
		case 0:
			tail := rng.Intn(g.N())
			plan.LinkDown(start, duration, tail, rng.Intn(g.OutDegree(tail)))
		case 1:
			plan.NodeDown(start, duration, rng.Intn(g.N()))
		case 2:
			group := make([]simnet.Arc, 0, 3)
			for j := 0; j < 3; j++ {
				tail := rng.Intn(g.N())
				group = append(group, simnet.Arc{Tail: tail, Index: rng.Intn(g.OutDegree(tail))})
			}
			plan.LensDown(start, duration, rng.Intn(8), group)
		}
	}
	return plan, n
}
