// Package multistage implements the de Bruijn-derived multistage
// interconnection networks the paper's introduction cites as applications:
// the (wrapped) Butterfly [30], ShuffleNet [27] and GEMNET [27] — all of
// which are, up to isomorphism, conjunctions of a circuit with a de Bruijn
// or RRK digraph. This makes Remark 3.10 concrete: a non-cyclic OTIS
// split H(p, q, d) does not realize B(d, D), but its components are
// exactly such circuit ⊗ de Bruijn networks, i.e. failed de Bruijn
// layouts optically realize stacks of ShuffleNet-style networks.
package multistage

import (
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/word"
)

// WrappedButterfly returns the directed wrapped butterfly WBF(d, D):
// vertices (ℓ, x) with level ℓ ∈ Z_D and word x ∈ Z_d^D, and arcs
// (ℓ, x) → (ℓ+1 mod D, x with letter ℓ replaced by α) for α ∈ Z_d.
// Vertex (ℓ, x) is labelled ℓ·d^D + Horner(x). It has D·d^D vertices and
// degree d.
func WrappedButterfly(d, D int) *digraph.Digraph {
	if d < 1 || D < 1 {
		panic("multistage: need d >= 1 and D >= 1")
	}
	n := word.Pow(d, D)
	return digraph.FromFunc(D*n, func(id int) []int {
		level, u := id/n, id%n
		x := word.MustFromInt(d, D, u)
		next := (level + 1) % D
		out := make([]int, d)
		for alpha := 0; alpha < d; alpha++ {
			out[alpha] = next*n + x.WithLetter(level, alpha).Int()
		}
		return out
	})
}

// ButterflyWitness returns the isomorphism from WBF(d, D) onto
// C_D ⊗ B(d, D) (conjunction labelling ℓ·d^D + v): vertex (ℓ, x) maps to
// (ℓ, v) where v is x read cyclically upward from position ℓ,
// v = x_ℓ x_{ℓ+1} ... x_{D-1} x_0 ... x_{ℓ-1}. Replacing letter ℓ and
// advancing the level is then exactly the de Bruijn left shift.
func ButterflyWitness(d, D int) []int {
	n := word.Pow(d, D)
	mapping := make([]int, D*n)
	for id := range mapping {
		level, u := id/n, id%n
		x := word.MustFromInt(d, D, u)
		v := word.New(d, D)
		// v's letter at position D-1-k is x at position (ℓ+k) mod D.
		for k := 0; k < D; k++ {
			v = v.WithLetter(D-1-k, x.Letter((level+k)%D))
		}
		mapping[id] = level*n + v.Int()
	}
	return mapping
}

// ButterflyConjunction returns C_D ⊗ B(d, D) with the conjunction
// labelling, the canonical form of the wrapped butterfly.
func ButterflyConjunction(d, D int) *digraph.Digraph {
	return digraph.Conjunction(digraph.Circuit(D), debruijn.DeBruijn(d, D))
}

// ShuffleNet returns the (directed, single-fiber) ShuffleNet SN(d, k) of
// Hluchyj and Karol: k columns of d^k nodes, node (c, u) connected to
// (c+1 mod k, du+α mod d^k) — which is, by construction, the conjunction
// C_k ⊗ B(d, k). It has k·d^k nodes and degree d.
func ShuffleNet(d, k int) *digraph.Digraph {
	if d < 1 || k < 1 {
		panic("multistage: need d >= 1 and k >= 1")
	}
	return digraph.Conjunction(digraph.Circuit(k), debruijn.DeBruijn(d, k))
}

// ShuffleNetOrder returns k·d^k.
func ShuffleNetOrder(d, k int) int { return k * word.Pow(d, k) }

// GEMNET returns GEMNET(K, M, d) (Iness, Banerjee, Mukherjee): K columns
// of M nodes, node (c, i) connected to (c+1 mod K, (di+α) mod M) — the
// conjunction C_K ⊗ RRK(d, M). GEMNET(k, d^k, d) is ShuffleNet(d, k);
// GEMNET generalizes it to any number of nodes per column.
func GEMNET(K, M, d int) *digraph.Digraph {
	if K < 1 || M < 1 || d < 1 {
		panic("multistage: need K, M, d >= 1")
	}
	return digraph.Conjunction(digraph.Circuit(K), debruijn.RRK(d, M))
}

// GEMNETDiameter returns the diameter of GEMNET(K, M, d) computed by BFS
// (the closed form is K·⌈log_d M⌉-ish but ragged; we measure).
func GEMNETDiameter(K, M, d int) int {
	return GEMNET(K, M, d).Diameter()
}

// Stack describes a disjoint union of isomorphic circuit ⊗ de Bruijn
// networks, the structure Remark 3.10 gives to non-layout OTIS splits.
type Stack struct {
	Copies      int // number of disjoint components
	CircuitLen  int // c in C_c ⊗ B(d, r)
	DeBruijnDim int // r
}

// String renders e.g. "12 × (C_2 ⊗ B(2,3))".
func (s Stack) String() string {
	return fmt.Sprintf("%d × (C_%d ⊗ B(d,%d))", s.Copies, s.CircuitLen, s.DeBruijnDim)
}

// IsShuffleNet reports whether each component is a ShuffleNet proper
// (circuit length equal to the de Bruijn dimension).
func (s Stack) IsShuffleNet() bool { return s.CircuitLen == s.DeBruijnDim }
