package multistage

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

func TestWrappedButterflyShape(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 2}, {2, 3}, {3, 2}} {
		g := WrappedButterfly(c.d, c.D)
		want := c.D * pow(c.d, c.D)
		if g.N() != want {
			t.Fatalf("WBF(%d,%d) has %d vertices, want %d", c.d, c.D, g.N(), want)
		}
		if !g.IsRegular(c.d) {
			t.Errorf("WBF(%d,%d) not %d-regular", c.d, c.D, c.d)
		}
		if !g.IsStronglyConnected() {
			t.Errorf("WBF(%d,%d) not strongly connected", c.d, c.D)
		}
	}
}

func TestWrappedButterflyLevelStructure(t *testing.T) {
	// Arcs only go from level ℓ to level ℓ+1 mod D.
	d, D := 2, 3
	g := WrappedButterfly(d, D)
	n := pow(d, D)
	for id := 0; id < g.N(); id++ {
		level := id / n
		for _, v := range g.Out(id) {
			if v/n != (level+1)%D {
				t.Fatalf("arc from level %d to level %d", level, v/n)
			}
		}
	}
}

func TestButterflyIsCircuitConjunctionDeBruijn(t *testing.T) {
	// WBF(d,D) ≅ C_D ⊗ B(d,D) via the explicit rotation witness.
	for _, c := range []struct{ d, D int }{{2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}} {
		wbf := WrappedButterfly(c.d, c.D)
		conj := ButterflyConjunction(c.d, c.D)
		mapping := ButterflyWitness(c.d, c.D)
		if err := digraph.VerifyIsomorphism(wbf, conj, mapping); err != nil {
			t.Errorf("WBF(%d,%d) ≇ C_%d ⊗ B(%d,%d): %v", c.d, c.D, c.D, c.d, c.D, err)
		}
	}
}

func TestButterflyQuotientIsDeBruijn(t *testing.T) {
	// Collapsing the level coordinate of WBF(d,D) (through the witness)
	// gives a homomorphism onto B(d,D): every butterfly arc projects to a
	// de Bruijn arc.
	d, D := 2, 3
	wbf := WrappedButterfly(d, D)
	mapping := ButterflyWitness(d, D)
	b := debruijn.DeBruijn(d, D)
	n := pow(d, D)
	for id := 0; id < wbf.N(); id++ {
		u := mapping[id] % n
		for _, w := range wbf.Out(id) {
			v := mapping[w] % n
			if !b.HasArc(u, v) {
				t.Fatalf("projected arc (%d,%d) missing in B(%d,%d)", u, v, d, D)
			}
		}
	}
}

func TestShuffleNet(t *testing.T) {
	g := ShuffleNet(2, 3)
	if g.N() != ShuffleNetOrder(2, 3) || g.N() != 24 {
		t.Fatalf("SN(2,3) has %d nodes", g.N())
	}
	if !g.IsRegular(2) {
		t.Error("SN(2,3) not 2-regular")
	}
	// Known ShuffleNet diameter: 2k-1 for k columns.
	if got := g.Diameter(); got != 5 {
		t.Errorf("SN(2,3) diameter = %d, want 5", got)
	}
	// Column structure: arcs advance the column cyclically.
	n := pow(2, 3)
	for id := 0; id < g.N(); id++ {
		col := id / n
		for _, v := range g.Out(id) {
			if v/n != (col+1)%3 {
				t.Fatalf("SN arc from column %d to %d", col, v/n)
			}
		}
	}
}

func TestGEMNETGeneralizesShuffleNet(t *testing.T) {
	// GEMNET(k, d^k, d) = ShuffleNet(d, k) as labelled digraphs.
	if !GEMNET(3, 8, 2).Equal(ShuffleNet(2, 3)) {
		t.Error("GEMNET(3,8,2) != SN(2,3)")
	}
}

func TestGEMNETArbitrarySize(t *testing.T) {
	// GEMNET's point: any number of nodes per column, e.g. 2 columns of
	// 11 nodes at degree 2 — 22 nodes, impossible for ShuffleNet.
	g := GEMNET(2, 11, 2)
	if g.N() != 22 || !g.IsRegular(2) {
		t.Fatalf("GEMNET(2,11,2): n=%d", g.N())
	}
	if !g.IsStronglyConnected() {
		t.Error("GEMNET(2,11,2) not strongly connected")
	}
	if d := GEMNETDiameter(2, 11, 2); d < 4 || d > 10 {
		t.Errorf("GEMNET(2,11,2) diameter = %d, implausible", d)
	}
}

func TestStackString(t *testing.T) {
	s := Stack{Copies: 12, CircuitLen: 2, DeBruijnDim: 2}
	if s.String() != "12 × (C_2 ⊗ B(d,2))" {
		t.Errorf("String = %q", s.String())
	}
	if !s.IsShuffleNet() {
		t.Error("C_2 ⊗ B(d,2) is a ShuffleNet")
	}
	if (Stack{Copies: 1, CircuitLen: 2, DeBruijnDim: 3}).IsShuffleNet() {
		t.Error("C_2 ⊗ B(d,3) is not a ShuffleNet")
	}
}

func pow(d, k int) int {
	n := 1
	for i := 0; i < k; i++ {
		n *= d
	}
	return n
}
