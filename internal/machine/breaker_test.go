package machine

import (
	"testing"

	"repro/internal/optics"
	"repro/internal/simnet"
)

// Lens quarantine: a dead lens's failures concentrate on its breaker
// and trip it, while innocent lenses sharing single beams with it stay
// closed; a transient lens fault walks the breaker through the full
// open → half-open → closed hysteresis loop.

func breakerWorkload(n, waves, stride int) []simnet.Packet {
	var pkts []simnet.Packet
	id := 0
	for w := 0; w < waves; w++ {
		for s := 0; s < n; s += stride {
			for d := 0; d < n; d += stride {
				if s == d {
					continue
				}
				pkts = append(pkts, simnet.Packet{ID: id, Src: s, Dst: d, Release: w * 8})
				id++
			}
		}
	}
	return pkts
}

func TestLensBreakerTripsOnlyTheDeadLens(t *testing.T) {
	m, err := Build(3, 4, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	const deadLens = 2
	plan, err := m.LensFaultPlan(0, 0, deadLens) // permanent
	if err != nil {
		t.Fatal(err)
	}
	breaker, err := NewLensBreaker(m, BreakerConfig{Threshold: 4, Window: 64, HoldBase: 512, HoldCap: 4096}, nil)
	if err != nil {
		t.Fatal(err)
	}
	session, err := m.SelfHeal(plan, simnet.HealConfig{Monitor: breaker})
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run(breakerWorkload(m.Nodes(), 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Nacks == 0 {
		t.Fatalf("no NACKs on a permanent lens fault: %v", res)
	}
	states := breaker.States()
	if states[deadLens].State == BreakerClosed {
		t.Fatalf("dead lens %d breaker still closed after %d NACKs", deadLens, res.Nacks)
	}
	for _, st := range states {
		if st.Lens != deadLens && st.State != BreakerClosed {
			t.Fatalf("innocent lens %d (%s) tripped: %+v", st.Lens, st.Side, st)
		}
	}
	trips := breaker.Transitions()
	if len(trips) == 0 || trips[0].Lens != deadLens || trips[0].To != BreakerOpen {
		t.Fatalf("first transition %+v, want lens %d tripping open", trips, deadLens)
	}
}

func TestLensBreakerHalfOpenClosesAfterRecovery(t *testing.T) {
	m, err := Build(3, 4, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	const deadLens = 1
	plan, err := m.LensFaultPlan(0, 120, deadLens) // transient: heals at cycle 120
	if err != nil {
		t.Fatal(err)
	}
	breaker, err := NewLensBreaker(m, BreakerConfig{Threshold: 3, Window: 32, HoldBase: 48, HoldCap: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	session, err := m.SelfHeal(plan, simnet.HealConfig{ProbeInterval: 16, Monitor: breaker})
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run(breakerWorkload(m.Nodes(), 40, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Dropped != len(res.Packets) {
		t.Fatalf("accounting: delivered %d + dropped %d != offered %d", res.Delivered, res.Dropped, len(res.Packets))
	}
	if breaker.States()[deadLens].State != BreakerClosed {
		t.Fatalf("lens %d breaker %v at end, want closed after the fault healed (transitions %+v)",
			deadLens, breaker.States()[deadLens].State, breaker.Transitions())
	}
	var sawHalfOpen, sawClose bool
	for _, tr := range breaker.Transitions() {
		if tr.Lens != deadLens {
			continue
		}
		if tr.From == BreakerOpen && tr.To == BreakerHalfOpen {
			sawHalfOpen = true
		}
		if tr.From == BreakerHalfOpen && tr.To == BreakerClosed {
			sawClose = true
		}
	}
	if !sawHalfOpen || !sawClose {
		t.Fatalf("hysteresis loop incomplete (halfOpen=%v close=%v): %+v", sawHalfOpen, sawClose, breaker.Transitions())
	}
	if got := session.Quarantined(); len(got) != 0 {
		t.Fatalf("arcs still quarantined after close: %v", got)
	}
}

func TestLensBreakerExponentialHold(t *testing.T) {
	m, err := Build(3, 4, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	breaker, err := NewLensBreaker(m, BreakerConfig{Threshold: 2, Window: 16, HoldBase: 10, HoldCap: 35}, nil)
	if err != nil {
		t.Fatal(err)
	}
	arc, err := m.Layout.LensArcs(0)
	if err != nil {
		t.Fatal(err)
	}
	a := simnet.Arc{Tail: arc[0][0], Index: arc[0][1]}
	// Trip 1 at cycle 0: hold 10.
	breaker.ArcFailed(0, a)
	breaker.ArcFailed(0, a)
	if got := breaker.States()[0]; got.State != BreakerOpen || got.HoldUntil != 10 {
		t.Fatalf("after trip 1: %+v, want open until 10", got)
	}
	// Failed probe re-trips: hold doubles (20), then caps at 35.
	breaker.Tick(10) // open → half-open, emits probe
	breaker.ProbeResult(10, a, false)
	if got := breaker.States()[0]; got.State != BreakerOpen || got.HoldUntil != 10+20 {
		t.Fatalf("after trip 2: %+v, want open until 30", got)
	}
	breaker.Tick(30)
	breaker.ProbeResult(30, a, false)
	if got := breaker.States()[0]; got.State != BreakerOpen || got.HoldUntil != 30+35 {
		t.Fatalf("after trip 3: %+v, want hold capped at 35", got)
	}
	// A successful probe closes and resets the ladder.
	breaker.Tick(65)
	breaker.ProbeResult(65, a, true)
	if got := breaker.States()[0]; got.State != BreakerClosed || got.Trips != 0 {
		t.Fatalf("after successful probe: %+v, want closed with trips reset", got)
	}
}
