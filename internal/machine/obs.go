package machine

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// Observability. A Recorder attached here flows into every simulator run
// on the machine, and the OTIS layout lets the flat per-arc traversal
// slab be rolled up into per-lens utilization — the metric an optics
// bench actually cares about, since a lens is the shared aperture (and
// shared failure domain) of a whole arc group.

// Observe attaches a metrics recorder to the machine's packet simulator.
// Subsequent Run/Broadcast/RunOpts/RunWithFaults calls record into it.
// Passing nil detaches.
func (m *Machine) Observe(rec *obs.Recorder) {
	m.net.Observe(rec)
}

// RunOpts executes a workload on the machine's simulator under
// functional options — the machine-level mirror of simnet's unified
// entry point. Workload node ids are physical.
func (m *Machine) RunOpts(w simnet.Workload, opts ...simnet.RunOption) (simnet.RunReport, error) {
	return m.net.RunOpts(w, opts...)
}

// PhysicalArcIndex returns the flat slab index of out-arc k of physical
// node tail — the CSR layout shared by the simulator's queues and the
// recorder's per-arc slabs.
func (m *Machine) PhysicalArcIndex(tail, k int) int {
	return m.net.ArcIndex(tail, k)
}

// LensUtilization rolls the recorder's per-arc traversal counts up into
// per-lens totals using the layout's arc groups. Every hop crosses
// exactly one transmitter-side and one receiver-side lens, so within
// each side the Share values sum to 1 (when any traffic flowed at all).
// The recorder must have been sized by an Observe on this machine (or a
// network of identical arc count) before the runs being rolled up.
func (m *Machine) LensUtilization(rec *obs.Recorder) ([]obs.LensUtilization, error) {
	if rec == nil {
		return nil, fmt.Errorf("machine: LensUtilization needs a recorder")
	}
	trav := rec.ArcTraversals()
	wantArcs := m.Nodes() * m.Degree
	if len(trav) != wantArcs {
		return nil, fmt.Errorf("machine: recorder sized for %d arcs, machine has %d", len(trav), wantArcs)
	}
	var total int64
	for _, t := range trav {
		total += t
	}
	p := m.Layout.P()
	lenses := m.Lenses()
	out := make([]obs.LensUtilization, 0, lenses)
	for lens := 0; lens < lenses; lens++ {
		arcs, err := m.Layout.LensArcs(lens)
		if err != nil {
			return nil, fmt.Errorf("machine: lens %d: %w", lens, err)
		}
		var sum int64
		for _, a := range arcs {
			sum += trav[m.net.ArcIndex(a[0], a[1])]
		}
		u := obs.LensUtilization{Lens: lens, Side: "tx", Arcs: len(arcs), Traversals: sum}
		if lens >= p {
			u.Side = "rx"
		}
		if total > 0 {
			u.Share = float64(sum) / float64(total)
		}
		out = append(out, u)
	}
	return out, nil
}

// LensCongestion rolls the recorder's per-arc peak queue depths up into
// per-lens congestion: for each lens, the deepest any queue in its arc
// group got. Under bounded queues (WithQueueCapacity) no entry exceeds
// the capacity, and a lens pinned at it is the aperture backpressure
// propagates from — the congestion analogue of LensUtilization. The
// recorder must have been sized by an Observe on this machine before
// the runs being rolled up.
func (m *Machine) LensCongestion(rec *obs.Recorder) ([]obs.LensCongestion, error) {
	if rec == nil {
		return nil, fmt.Errorf("machine: LensCongestion needs a recorder")
	}
	peaks := rec.ArcPeakQueue()
	wantArcs := m.Nodes() * m.Degree
	if len(peaks) != wantArcs {
		return nil, fmt.Errorf("machine: recorder sized for %d arcs, machine has %d", len(peaks), wantArcs)
	}
	p := m.Layout.P()
	lenses := m.Lenses()
	out := make([]obs.LensCongestion, 0, lenses)
	for lens := 0; lens < lenses; lens++ {
		arcs, err := m.Layout.LensArcs(lens)
		if err != nil {
			return nil, fmt.Errorf("machine: lens %d: %w", lens, err)
		}
		var peak int64
		for _, a := range arcs {
			if d := peaks[m.net.ArcIndex(a[0], a[1])]; d > peak {
				peak = d
			}
		}
		c := obs.LensCongestion{Lens: lens, Side: "tx", Arcs: len(arcs), PeakQueue: peak}
		if lens >= p {
			c.Side = "rx"
		}
		out = append(out, c)
	}
	return out, nil
}

// RunMetrics snapshots the recorder and attaches the machine's per-lens
// utilization and congestion roll-ups, yielding a complete OBS_run/v1
// document.
func (m *Machine) RunMetrics(rec *obs.Recorder) (obs.RunMetrics, error) {
	lenses, err := m.LensUtilization(rec)
	if err != nil {
		return obs.RunMetrics{}, err
	}
	congestion, err := m.LensCongestion(rec)
	if err != nil {
		return obs.RunMetrics{}, err
	}
	snap := rec.Snapshot()
	snap.Lenses = lenses
	snap.Congestion = congestion
	return snap, nil
}
