package machine

import (
	"fmt"

	"repro/internal/simnet"
)

// Runtime faults on the assembled machine. The machine knows what simnet
// cannot: which arcs share a lens. A lens fault — the physically likely
// correlated failure of a free-space optical interconnect — is expanded
// here from a lens number into its arc group via the OTIS layout, and
// handed to the simnet fault engine as one scheduled event.

// LensFaultPlan returns a fault plan downing the given lenses at cycle
// start for duration cycles (duration <= 0: permanent). Lenses are
// numbered 0..P-1 on the transmitter side, P..P+Q-1 on the receiver side
// (Lenses() in total).
func (m *Machine) LensFaultPlan(start, duration int, lenses ...int) (*simnet.FaultPlan, error) {
	plan := simnet.NewFaultPlan()
	for _, lens := range lenses {
		arcs, err := m.Layout.LensArcs(lens)
		if err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
		group := make([]simnet.Arc, len(arcs))
		for i, a := range arcs {
			group[i] = simnet.Arc{Tail: a[0], Index: a[1]}
		}
		plan.LensDown(start, duration, lens, group)
	}
	return plan, nil
}

// LensShadow returns the physical nodes fully silenced by a fault of the
// given lens: senders (every out-arc dead) for a transmitter-side lens,
// receivers (every in-arc dead) for a receiver-side lens.
func (m *Machine) LensShadow(lens int) (silencedOut, silencedIn []int, err error) {
	return m.Layout.LensShadow(lens)
}

// RunWithFaults executes a workload (physical ids) under the fault plan,
// with fault-aware rerouting, bounded retries and TTL; see
// simnet.FaultConfig for the knobs.
func (m *Machine) RunWithFaults(pkts []simnet.Packet, plan *simnet.FaultPlan, cfg simnet.FaultConfig) (simnet.FaultResult, error) {
	return m.net.RunWithFaults(pkts, plan, cfg)
}

// DegradationSweep measures delivered fraction, latency and reroutes on
// the physical interconnect as the per-arc fault rate rises; see
// simnet.DegradationSweep.
func (m *Machine) DegradationSweep(rates []float64, packets int, seed int64, workers int) ([]simnet.DegradationPoint, error) {
	return m.net.DegradationSweep(rates, packets, seed, workers)
}
