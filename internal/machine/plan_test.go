package machine

import (
	"testing"

	"repro/internal/optics"
)

func TestPlan(t *testing.T) {
	// A 300-processor budget at degree 2 buys B(2,8) = 256 nodes.
	p, ok := Plan(2, 300)
	if !ok {
		t.Fatal("no plan")
	}
	if p.Diam != 8 || p.Nodes != 256 || p.Lenses != 48 {
		t.Errorf("plan = %+v", p)
	}
	if p.String() == "" {
		t.Error("empty plan string")
	}
	// Exactly at a power: 256 buys B(2,8) too.
	p, _ = Plan(2, 256)
	if p.Nodes != 256 {
		t.Errorf("exact budget plan = %+v", p)
	}
	// One less: drops to B(2,7).
	p, _ = Plan(2, 255)
	if p.Diam != 7 || p.Nodes != 128 {
		t.Errorf("255 budget plan = %+v", p)
	}
}

func TestPlanEdges(t *testing.T) {
	if _, ok := Plan(2, 1); ok {
		t.Error("1-node budget accepted")
	}
	if _, ok := Plan(1, 100); ok {
		t.Error("degree 1 accepted")
	}
	// Degree 3, budget 100 → B(3,4) = 81.
	p, ok := Plan(3, 100)
	if !ok || p.Nodes != 81 || p.Diam != 4 {
		t.Errorf("plan(3,100) = %+v ok=%v", p, ok)
	}
}

func TestPlanAndBuild(t *testing.T) {
	m, err := PlanAndBuild(2, 70, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 64 || m.Diam != 6 {
		t.Errorf("built machine n=%d D=%d", m.Nodes(), m.Diam)
	}
	if _, err := PlanAndBuild(2, 1, optics.DefaultPitch); err == nil {
		t.Error("impossible budget accepted")
	}
}

func TestBuildErrorPaths(t *testing.T) {
	// Degree with no layout at any diameter would need d < 2 (covered by
	// Plan); exercise the pitch validation path of Build.
	if _, err := Build(2, 4, 0); err == nil {
		t.Error("zero pitch accepted")
	}
}
