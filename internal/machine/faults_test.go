package machine

import (
	"testing"

	"repro/internal/digraph"
	"repro/internal/optics"
	"repro/internal/simnet"
)

func buildB34(t *testing.T) *Machine {
	t.Helper()
	m, err := Build(3, 4, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLensFaultPlanExpansion(t *testing.T) {
	m := buildB34(t)
	plan, err := m.LensFaultPlan(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	faults := plan.Faults()
	if len(faults) != 1 || faults[0].Kind != simnet.FaultLens {
		t.Fatalf("plan = %v", faults)
	}
	if len(faults[0].Arcs) != m.Layout.Q() {
		t.Errorf("transmitter lens group has %d arcs, want %d", len(faults[0].Arcs), m.Layout.Q())
	}
	plan, err = m.LensFaultPlan(0, 0, m.Layout.P())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.Faults()[0].Arcs); got != m.Layout.P() {
		t.Errorf("receiver lens group has %d arcs, want %d", got, m.Layout.P())
	}
	if _, err := m.LensFaultPlan(0, 0, m.Lenses()); err == nil {
		t.Error("out-of-range lens accepted")
	}
	if _, err := m.LensFaultPlan(0, 0, -1); err == nil {
		t.Error("negative lens accepted")
	}
}

func TestLensShadowMachine(t *testing.T) {
	m := buildB34(t)
	out, in, err := m.LensShadow(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != m.Layout.Q()/m.Degree || len(in) != 0 {
		t.Errorf("transmitter lens shadow: out=%v in=%v", out, in)
	}
	out, in, err = m.LensShadow(m.Layout.P())
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != m.Layout.P()/m.Degree || len(out) != 0 {
		t.Errorf("receiver lens shadow: out=%v in=%v", out, in)
	}
}

// lensResidualReach returns reach[u][v] distances of the physical digraph
// minus the lens's arc group.
func lensResidualReach(t *testing.T, m *Machine, lens int) [][]int {
	t.Helper()
	arcs, err := m.Layout.LensArcs(lens)
	if err != nil {
		t.Fatal(err)
	}
	dead := map[[2]int]bool{}
	for _, a := range arcs {
		dead[a] = true
	}
	g := m.Physical
	residual := digraph.New(g.N())
	for u := 0; u < g.N(); u++ {
		for k, v := range g.Out(u) {
			if !dead[[2]int{u, k}] {
				residual.AddArc(u, v)
			}
		}
	}
	reach := make([][]int, g.N())
	for u := 0; u < g.N(); u++ {
		reach[u] = residual.BFSFrom(u)
	}
	return reach
}

func TestSingleLensFaultServiceability(t *testing.T) {
	// One lens dies permanently at cycle 0. Every pair still connected in
	// the residual interconnect (the serviceable pairs) keeps 100%
	// delivery; the rest drop with explicit accounting. Exercised on one
	// transmitter-side and one receiver-side lens; claim X-FAULT sweeps
	// all 36.
	m := buildB34(t)
	for _, lens := range []int{2, m.Layout.P() + 5} {
		reach := lensResidualReach(t, m, lens)
		plan, err := m.LensFaultPlan(0, 0, lens)
		if err != nil {
			t.Fatal(err)
		}
		pkts := simnet.UniformRandom(m.Nodes(), 2000, 37)
		res, err := m.RunWithFaults(pkts, plan, simnet.DefaultFaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Stuck != 0 {
			t.Fatalf("lens %d: %d packets stuck", lens, res.Stuck)
		}
		for _, p := range res.Packets {
			serviceable := reach[p.Src][p.Dst] != digraph.Unreachable
			if serviceable && p.Delivered < 0 {
				t.Errorf("lens %d: serviceable packet %d (%d→%d) lost", lens, p.ID, p.Src, p.Dst)
			}
			if !serviceable && p.Delivered >= 0 {
				t.Errorf("lens %d: packet %d (%d→%d) delivered across a partition", lens, p.ID, p.Src, p.Dst)
			}
		}
	}
}

func TestTransientLensFaultHeals(t *testing.T) {
	// A lens knocked out for 50 cycles (dirt, vibration) loses nothing:
	// blocked packets back off and go when the optics clear.
	m := buildB34(t)
	plan, err := m.LensFaultPlan(0, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	pkts := simnet.UniformRandom(m.Nodes(), 1000, 5)
	res, err := m.RunWithFaults(pkts, plan, simnet.DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != len(pkts) || res.Dropped != 0 || res.Stuck != 0 {
		t.Fatalf("transient lens fault lost traffic: %v", res)
	}
}

func TestMachineDegradationSweep(t *testing.T) {
	m := buildB34(t)
	points, err := m.DegradationSweep([]float64{0, 1}, 200, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].DeliveredFraction != 1 {
		t.Errorf("fault-free point: %v", points[0])
	}
	if points[1].DeliveredFraction > 0.1 {
		t.Errorf("blackout point: %v", points[1])
	}
}
