package machine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/optics"
	"repro/internal/simnet"
)

func TestBuild(t *testing.T) {
	m, err := Build(2, 8, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 256 || m.Lenses() != 48 {
		t.Fatalf("machine shape: n=%d lenses=%d", m.Nodes(), m.Lenses())
	}
	if m.Layout.P() != 16 || m.Layout.Q() != 32 {
		t.Errorf("layout %v", m.Layout)
	}
	// Witness maps are mutually inverse.
	for p := 0; p < m.Nodes(); p++ {
		if m.ToPhysical[m.ToLogical[p]] != p {
			t.Fatal("witness maps not inverse")
		}
	}
}

func TestBuildFailsWithoutLayout(t *testing.T) {
	// d = 1 has no layouts.
	if _, err := Build(1, 4, optics.DefaultPitch); err == nil {
		t.Error("degree 1 accepted")
	}
	if _, err := Build(2, 8, -1); err == nil {
		t.Error("negative pitch accepted")
	}
}

func TestRouteAndVerify(t *testing.T) {
	m, err := Build(2, 6, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyRoutes(1); err != nil {
		t.Fatal(err)
	}
	path := m.Route(3, 42)
	if path[0] != 3 || path[len(path)-1] != 42 {
		t.Fatalf("route endpoints: %v", path)
	}
	// Route length equals the physical BFS distance (shortest).
	dist := m.Physical.BFSFrom(3)
	if len(path)-1 != dist[42] {
		t.Errorf("route length %d, BFS %d", len(path)-1, dist[42])
	}
	if self := m.Route(7, 7); len(self) != 1 {
		t.Errorf("self route %v", self)
	}
}

func TestRunWorkload(t *testing.T) {
	m, err := Build(2, 6, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(simnet.UniformRandom(m.Nodes(), 500, 99))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 500 || res.MaxHops > 6 {
		t.Fatalf("workload result %v", res)
	}
}

func TestBroadcast(t *testing.T) {
	m, _ := Build(2, 5, optics.DefaultPitch)
	res, err := m.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != m.Nodes()-1 {
		t.Fatalf("broadcast %v", res)
	}
}

func TestAudit(t *testing.T) {
	m, _ := Build(2, 8, optics.DefaultPitch)
	report, err := m.Audit()
	if err != nil {
		t.Fatalf("audit failed: %v\n%s", err, report)
	}
	for _, want := range []string{"diameter 8", "optics", "diffraction", "link margin", "self-routing"} {
		if !strings.Contains(report, want) {
			t.Errorf("audit report missing %q:\n%s", want, report)
		}
	}
}

func TestBOM(t *testing.T) {
	m, _ := Build(2, 8, optics.DefaultPitch)
	bom := m.BOM()
	if bom.Nodes != 256 || bom.Lenses != 48 || bom.TransceiversNode != 2 {
		t.Errorf("BOM %+v", bom)
	}
}

func TestRunDeflection(t *testing.T) {
	m, _ := Build(2, 5, optics.DefaultPitch)
	res, err := m.RunDeflection(simnet.UniformRandom(m.Nodes(), 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 100 {
		t.Fatalf("deflection on the machine: %v", res)
	}
}

func TestTDMSchedule(t *testing.T) {
	m, _ := Build(2, 5, optics.DefaultPitch)
	slots, err := m.TDMSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 2 {
		t.Fatalf("%d slots, want degree 2", len(slots))
	}
	// Each slot is a permutation of the physical nodes.
	for s, f := range slots {
		seen := make([]bool, m.Nodes())
		for _, v := range f {
			if seen[v] {
				t.Fatalf("slot %d: receiver %d collides", s, v)
			}
			seen[v] = true
		}
	}
}

func TestOddDiameterMachine(t *testing.T) {
	// Odd D uses the best unbalanced split and still assembles.
	m, err := Build(2, 7, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 128 {
		t.Fatalf("n = %d", m.Nodes())
	}
	if err := m.VerifyRoutes(1); err != nil {
		t.Fatal(err)
	}
}

// TestRunOptsShardsPassThrough pins that the machine-level RunOpts
// forwards WithShards to the simulator and that the sharded run
// reproduces the sequential one exactly on the physical interconnect.
func TestRunOptsShardsPassThrough(t *testing.T) {
	m, err := Build(2, 8, optics.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := m.RunOpts(simnet.PermutationLoad(), simnet.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := m.RunOpts(simnet.PermutationLoad(), simnet.WithSeed(3), simnet.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, sh) {
		t.Fatal("WithShards(4) through Machine.RunOpts diverged from the sequential run")
	}
}
