// Package machine assembles the repository's layers into a single
// artifact: an optical de Bruijn machine. Given a degree and diameter it
// selects the lens-minimizing OTIS layout (Corollary 4.6), builds the
// physical bench, constructs and verifies the layout isomorphism
// (Propositions 4.1 + 3.9), and exposes routing, broadcast and workload
// execution in physical (H-space) coordinates. This is the API a systems
// group adopting the paper's design would program against.
package machine

import (
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/optics"
	"repro/internal/otis"
	"repro/internal/simnet"
)

// Machine is a fully assembled optical de Bruijn machine.
type Machine struct {
	Degree int
	Diam   int

	// Layout is the chosen OTIS split.
	Layout otis.Layout
	// Bench is the physical optical model of the interconnect.
	Bench *optics.Bench
	// Physical is the digraph OTIS actually wires: H(p, q, d) on
	// physical node ids.
	Physical *digraph.Digraph
	// ToLogical maps physical node ids to B(d, D) Horner labels; the
	// verified layout witness.
	ToLogical []int
	// ToPhysical is its inverse.
	ToPhysical []int

	// net is the packet simulator over Physical, compiled once at Build:
	// the routing slab, distance slab and scratch arenas are shared by
	// every Run/Broadcast/RunWithFaults/DegradationSweep on this machine.
	net *simnet.Network
}

// Build assembles the machine for B(d, D), verifying every layer:
// the layout criterion, the witness isomorphism, and the optical
// transpose. Pitch is the transceiver pitch in metres (use
// optics.DefaultPitch for the standard 250 µm).
func Build(d, D int, pitch float64) (*Machine, error) {
	layout, ok := otis.OptimalLayout(d, D)
	if !ok {
		return nil, fmt.Errorf("machine: no OTIS layout realizes B(%d,%d)", d, D)
	}
	bench, err := optics.NewBench(layout.P(), layout.Q(), pitch)
	if err != nil {
		return nil, fmt.Errorf("machine: bench: %w", err)
	}
	if err := bench.VerifyTranspose(); err != nil {
		return nil, fmt.Errorf("machine: optical verification: %w", err)
	}
	physical, err := otis.H(layout.P(), layout.Q(), d)
	if err != nil {
		return nil, fmt.Errorf("machine: H digraph: %w", err)
	}
	toLogical, err := otis.LayoutWitness(d, layout.PPrime, layout.QPrime)
	if err != nil {
		return nil, fmt.Errorf("machine: witness: %w", err)
	}
	if err := digraph.VerifyIsomorphism(physical, debruijn.DeBruijn(d, D), toLogical); err != nil {
		return nil, fmt.Errorf("machine: witness verification: %w", err)
	}
	toPhysical := make([]int, len(toLogical))
	for p, l := range toLogical {
		toPhysical[l] = p
	}
	net, err := simnet.New(physical, simnet.NewTableRouter(physical), simnet.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("machine: simulator: %w", err)
	}
	return &Machine{
		Degree:     d,
		Diam:       D,
		Layout:     layout,
		Bench:      bench,
		Physical:   physical,
		ToLogical:  toLogical,
		ToPhysical: toPhysical,
		net:        net,
	}, nil
}

// Nodes returns the processor count d^D.
func (m *Machine) Nodes() int { return m.Physical.N() }

// Lenses returns the lens count of the interconnect.
func (m *Machine) Lenses() int { return m.Layout.Lenses() }

// Route returns the shortest physical path between two physical node
// ids, computed by logical de Bruijn self-routing and mapped back — no
// tables needed.
func (m *Machine) Route(srcPhys, dstPhys int) []int {
	logical := debruijn.RouteInts(m.Degree, m.Diam,
		m.ToLogical[srcPhys], m.ToLogical[dstPhys])
	path := make([]int, len(logical))
	for i, l := range logical {
		path[i] = m.ToPhysical[l]
	}
	return path
}

// VerifyRoutes checks, for a sample stride, that witness-mapped logical
// routes are valid physical paths — the property that makes the machine
// self-routing without per-node tables.
func (m *Machine) VerifyRoutes(stride int) error {
	if stride < 1 {
		stride = 1
	}
	n := m.Nodes()
	for s := 0; s < n; s += stride {
		for t := 0; t < n; t += stride {
			path := m.Route(s, t)
			for i := 0; i+1 < len(path); i++ {
				if !m.Physical.HasArc(path[i], path[i+1]) {
					return fmt.Errorf("machine: route %d→%d leaves the physical arcs at step %d", s, t, i)
				}
			}
			if len(path)-1 > m.Diam {
				return fmt.Errorf("machine: route %d→%d has %d hops > diameter %d", s, t, len(path)-1, m.Diam)
			}
		}
	}
	return nil
}

// Run executes a workload (physical ids) on the machine's packet
// simulator with unit hop latency.
func (m *Machine) Run(pkts []simnet.Packet) (simnet.Result, error) {
	return m.net.Run(pkts), nil
}

// Broadcast runs a one-to-all broadcast from a physical root and returns
// the result.
func (m *Machine) Broadcast(rootPhys int) (simnet.Result, error) {
	return m.Run(simnet.Broadcast(m.Nodes(), rootPhys))
}

// RunDeflection executes a workload under bufferless hot-potato routing —
// the regime of a machine whose nodes have no optical buffers.
func (m *Machine) RunDeflection(pkts []simnet.Packet) (simnet.DeflectionResult, error) {
	dn, err := simnet.NewDeflection(m.Physical, m.Degree)
	if err != nil {
		return simnet.DeflectionResult{}, err
	}
	return dn.Run(pkts), nil
}

// TDMSchedule returns the d conflict-free transmission slots of the
// physical interconnect (König 1-factorization): in slot t every node
// transmits on exactly one beam with no receiver collisions.
func (m *Machine) TDMSchedule() ([][]int, error) {
	factors, err := m.Physical.OneFactorization(m.Degree)
	if err != nil {
		return nil, err
	}
	if err := m.Physical.VerifyFactorization(factors); err != nil {
		return nil, err
	}
	return factors, nil
}

// BOM returns the hardware bill of materials.
func (m *Machine) BOM() optics.BOM {
	return optics.BillOfMaterials(m.Bench, m.Degree)
}

// Audit re-verifies the machine end to end: regularity, diameter,
// optical transpose, witness, diffraction feasibility and link margin.
// It returns a human-readable report and an error if any check fails.
func (m *Machine) Audit() (string, error) {
	report := fmt.Sprintf("machine %v\n", m.Layout)
	if !m.Physical.IsRegular(m.Degree) {
		return report, fmt.Errorf("machine: physical digraph not %d-regular", m.Degree)
	}
	diam := m.Physical.Diameter()
	report += fmt.Sprintf("  diameter %d (= D)\n", diam)
	if diam != m.Diam {
		return report, fmt.Errorf("machine: diameter %d != %d", diam, m.Diam)
	}
	if err := m.Bench.VerifyTranspose(); err != nil {
		return report, err
	}
	report += fmt.Sprintf("  optics: %d beams verified\n", m.Layout.P()*m.Layout.Q())
	diff, err := optics.Diffract(m.Bench, optics.DefaultWavelength)
	if err != nil {
		return report, err
	}
	if !diff.Feasible {
		return report, fmt.Errorf("machine: diffraction-infeasible at 850 nm")
	}
	report += fmt.Sprintf("  diffraction: feasible (spot %.1f µm in %.1f µm cells)\n",
		diff.SpotDiameter2*1e6, m.Bench.Pitch*1e6)
	margin, _ := optics.WorstCaseMargin(m.Bench, optics.DefaultBudget())
	report += fmt.Sprintf("  link margin: %.2f dB worst case\n", margin)
	if margin <= 0 {
		return report, fmt.Errorf("machine: link does not close")
	}
	if err := m.VerifyRoutes(maxInt(1, m.Nodes()/16)); err != nil {
		return report, err
	}
	report += "  self-routing verified on sampled pairs\n"
	return report, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
