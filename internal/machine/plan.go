package machine

import (
	"fmt"

	"repro/internal/otis"
)

// Capacity planning: the question a systems group actually asks is not
// "lay out B(2,8)" but "I can afford N processors at degree d — what do I
// build?". Plan answers it: the largest de Bruijn machine within the
// budget, with its lens bill.

// PlanResult describes the recommended machine.
type PlanResult struct {
	Degree int
	Diam   int
	Nodes  int
	Layout otis.Layout
	Lenses int
}

// String renders e.g. "256 nodes as OTIS(16,32) ⊢ B(2,8), 48 lenses".
func (p PlanResult) String() string {
	return fmt.Sprintf("%d nodes as %v", p.Nodes, p.Layout)
}

// Plan returns the largest-diameter (hence largest) de Bruijn machine of
// degree d with at most maxNodes processors that admits an OTIS layout.
// ok is false when even B(d, 1) exceeds the budget.
func Plan(d, maxNodes int) (PlanResult, bool) {
	if d < 2 || maxNodes < d {
		return PlanResult{}, false
	}
	best := PlanResult{}
	found := false
	nodes := 1
	for D := 1; ; D++ {
		if nodes > maxNodes/d {
			break // d^D would exceed the budget
		}
		nodes *= d
		layout, ok := otis.OptimalLayout(d, D)
		if !ok {
			continue
		}
		best = PlanResult{
			Degree: d,
			Diam:   D,
			Nodes:  nodes,
			Layout: layout,
			Lenses: layout.Lenses(),
		}
		found = true
	}
	return best, found
}

// PlanAndBuild plans for the budget and assembles the machine.
func PlanAndBuild(d, maxNodes int, pitch float64) (*Machine, error) {
	plan, ok := Plan(d, maxNodes)
	if !ok {
		return nil, fmt.Errorf("machine: no de Bruijn machine of degree %d fits %d nodes", d, maxNodes)
	}
	return Build(plan.Degree, plan.Diam, pitch)
}
