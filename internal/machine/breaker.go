package machine

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// Lens quarantine. In a free-space optical machine the physically
// likely failure is not one beam but one lens — a whole arc group dying
// together. The simnet self-healing layer detects and repairs per arc;
// the machine layer knows the correlation structure and can do better:
// a circuit breaker per lens that watches per-arc transmission failures
// roll up by lens, trips the whole group after Threshold failures
// inside a sliding Window, holds it quarantined with exponential
// backoff, and re-admits it through a half-open probe. While a lens is
// quarantined no packet attempts its arcs at all — the senders stop
// paying the detection timeout on every beam of a dead lens.

// BreakerState is a lens circuit breaker phase.
type BreakerState int

const (
	// BreakerClosed: the lens carries traffic normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the lens is quarantined; no traffic, waiting out the
	// hold.
	BreakerOpen
	// BreakerHalfOpen: the hold expired; one probe decides between
	// closing and re-opening with a doubled hold.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig tunes the lens circuit breaker. The zero value selects
// defaults.
type BreakerConfig struct {
	// Threshold is how many arc failures within Window trip the lens
	// (0: 4).
	Threshold int
	// Window is the sliding failure window in cycles (0: 64).
	Window int
	// HoldBase is the first quarantine hold in cycles (0: 128); each
	// consecutive trip doubles it, up to HoldCap (0: 2048).
	HoldBase int
	HoldCap  int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold < 1 {
		c.Threshold = 4
	}
	if c.Window < 1 {
		c.Window = 64
	}
	if c.HoldBase < 1 {
		c.HoldBase = 128
	}
	if c.HoldCap < 1 {
		c.HoldCap = 2048
	}
	return c
}

// BreakerTransition is one state change of one lens breaker, for
// reporting and tests.
type BreakerTransition struct {
	Cycle int
	Lens  int
	From  BreakerState
	To    BreakerState
}

// LensBreakerStatus is the reportable state of one lens breaker.
type LensBreakerStatus struct {
	Lens      int
	Side      string // "tx" or "rx"
	State     BreakerState
	Trips     int
	HoldUntil int // meaningful while Open
}

// lensSlot is the mutable per-lens breaker state.
type lensSlot struct {
	state     BreakerState
	fails     []int // failure cycles inside the sliding window
	trips     int   // consecutive trips since the last close
	holdUntil int
}

// LensBreaker is a per-lens circuit breaker implementing
// simnet.HealMonitor over a machine's OTIS lens groups. Every arc
// failure is charged to both lenses it crosses (its transmitter- and
// receiver-side lens); the OTIS transpose spreads one lens's beams
// across all lenses of the other side, so only a lens that is actually
// dying accumulates failures fast enough to trip (with Threshold ≥ 2),
// while innocent lenses sharing single arcs with it stay below
// threshold.
type LensBreaker struct {
	cfg    BreakerConfig
	rec    *obs.Recorder
	p      int // transmitter-side lens count (side boundary)
	groups [][]simnet.Arc
	// lensesOf maps each arc to its [tx, rx] lens pair.
	lensesOf map[simnet.Arc][2]int
	slots    []lensSlot

	pendingQuarantine []simnet.Arc
	pendingRelease    []simnet.Arc
	transitions       []BreakerTransition
}

// NewLensBreaker builds a breaker over every lens of the machine. rec
// may be nil (uninstrumented); when set, trips, half-opens and closes
// are counted into the quarantine_* metrics.
func NewLensBreaker(m *Machine, cfg BreakerConfig, rec *obs.Recorder) (*LensBreaker, error) {
	lenses := m.Lenses()
	b := &LensBreaker{
		cfg:      cfg.withDefaults(),
		rec:      rec,
		p:        m.Layout.P(),
		groups:   make([][]simnet.Arc, lenses),
		lensesOf: map[simnet.Arc][2]int{},
		slots:    make([]lensSlot, lenses),
	}
	for lens := 0; lens < lenses; lens++ {
		arcs, err := m.Layout.LensArcs(lens)
		if err != nil {
			return nil, fmt.Errorf("machine: breaker: lens %d: %w", lens, err)
		}
		group := make([]simnet.Arc, len(arcs))
		for i, a := range arcs {
			arc := simnet.Arc{Tail: a[0], Index: a[1]}
			group[i] = arc
			pair := b.lensesOf[arc]
			if lens < b.p {
				pair[0] = lens
			} else {
				pair[1] = lens
			}
			b.lensesOf[arc] = pair
		}
		b.groups[lens] = group
	}
	return b, nil
}

// ArcFailed implements simnet.HealMonitor: charge the failure to both
// lenses the arc crosses and trip any that reach threshold.
func (b *LensBreaker) ArcFailed(cycle int, arc simnet.Arc) {
	pair, ok := b.lensesOf[arc]
	if !ok {
		return
	}
	for _, lens := range []int{pair[0], pair[1]} {
		slot := &b.slots[lens]
		if slot.state != BreakerClosed {
			continue
		}
		slot.fails = append(slot.fails, cycle)
		keep := slot.fails[:0]
		for _, c := range slot.fails {
			if c > cycle-b.cfg.Window {
				keep = append(keep, c)
			}
		}
		slot.fails = keep
		if len(slot.fails) >= b.cfg.Threshold {
			b.trip(cycle, lens)
		}
	}
}

// ArcOK implements simnet.HealMonitor. A success is no evidence about
// the rest of the lens's beams, so it only ages the window (which
// ArcFailed prunes anyway); nothing to do.
func (b *LensBreaker) ArcOK(cycle int, arc simnet.Arc) {}

// trip opens the lens: quarantine its whole group with an exponential
// hold.
func (b *LensBreaker) trip(cycle, lens int) {
	slot := &b.slots[lens]
	from := slot.state
	slot.state = BreakerOpen
	slot.trips++
	hold := b.cfg.HoldBase
	for i := 1; i < slot.trips && hold < b.cfg.HoldCap; i++ {
		//lint:ignore overflowguard hold < HoldCap on entry, so the product is ≤ 2·HoldCap and capped below
		hold *= 2
	}
	if hold > b.cfg.HoldCap {
		hold = b.cfg.HoldCap
	}
	slot.holdUntil = cycle + hold
	slot.fails = slot.fails[:0]
	b.pendingQuarantine = append(b.pendingQuarantine, b.groups[lens]...)
	b.transitions = append(b.transitions, BreakerTransition{Cycle: cycle, Lens: lens, From: from, To: BreakerOpen})
	b.rec.QuarantineTrip()
}

// Tick implements simnet.HealMonitor: deliver buffered quarantine and
// release requests, and move expired holds to half-open with one probe
// arc each.
func (b *LensBreaker) Tick(cycle int) (quarantine, release, probe []simnet.Arc) {
	quarantine = b.pendingQuarantine
	release = b.pendingRelease
	b.pendingQuarantine = nil
	b.pendingRelease = nil
	for lens := range b.slots {
		slot := &b.slots[lens]
		if slot.state == BreakerOpen && cycle >= slot.holdUntil {
			slot.state = BreakerHalfOpen
			probe = append(probe, b.groups[lens][0])
			b.transitions = append(b.transitions, BreakerTransition{Cycle: cycle, Lens: lens, From: BreakerOpen, To: BreakerHalfOpen})
			b.rec.QuarantineHalfOpen()
		}
	}
	return quarantine, release, probe
}

// ProbeResult implements simnet.HealMonitor: a half-open probe closes
// the lens (releasing its group) or re-opens it with a doubled hold.
func (b *LensBreaker) ProbeResult(cycle int, arc simnet.Arc, ok bool) {
	for lens := range b.slots {
		slot := &b.slots[lens]
		if slot.state != BreakerHalfOpen || b.groups[lens][0] != arc {
			continue
		}
		if ok {
			slot.state = BreakerClosed
			slot.trips = 0
			b.pendingRelease = append(b.pendingRelease, b.groups[lens]...)
			b.transitions = append(b.transitions, BreakerTransition{Cycle: cycle, Lens: lens, From: BreakerHalfOpen, To: BreakerClosed})
			b.rec.QuarantineClose()
			continue
		}
		b.trip(cycle, lens)
	}
}

// States returns the reportable state of every lens breaker.
func (b *LensBreaker) States() []LensBreakerStatus {
	out := make([]LensBreakerStatus, len(b.slots))
	for lens := range b.slots {
		slot := &b.slots[lens]
		side := "tx"
		if lens >= b.p {
			side = "rx"
		}
		out[lens] = LensBreakerStatus{
			Lens: lens, Side: side, State: slot.state,
			Trips: slot.trips, HoldUntil: slot.holdUntil,
		}
	}
	return out
}

// Transitions returns the state-change log in order.
func (b *LensBreaker) Transitions() []BreakerTransition {
	out := make([]BreakerTransition, len(b.transitions))
	copy(out, b.transitions)
	return out
}

// SelfHeal opens a self-healing session on the machine's simulator: the
// plan is physical truth only, and routing recovers by detection,
// gossip and incremental slab repair (see simnet.SelfHealing). Wire a
// LensBreaker in via cfg.Monitor for lens quarantine.
func (m *Machine) SelfHeal(plan *simnet.FaultPlan, cfg simnet.HealConfig) (*simnet.SelfHealing, error) {
	return m.net.SelfHeal(plan, cfg)
}
