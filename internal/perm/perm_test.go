package perm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 17} {
		p := Identity(n)
		if err := p.Validate(); err != nil {
			t.Fatalf("Identity(%d) invalid: %v", n, err)
		}
		if !p.IsIdentity() {
			t.Errorf("Identity(%d).IsIdentity() = false", n)
		}
		for i := 0; i < n; i++ {
			if p.Apply(i) != i {
				t.Errorf("Identity(%d)(%d) = %d", n, i, p.Apply(i))
			}
		}
	}
}

func TestComplement(t *testing.T) {
	c := Complement(8)
	want := Perm{7, 6, 5, 4, 3, 2, 1, 0}
	if !c.Equal(want) {
		t.Fatalf("Complement(8) = %v, want %v", c, want)
	}
	// C is an involution: C∘C = Id.
	if !c.Compose(c).IsIdentity() {
		t.Error("Complement(8) is not an involution")
	}
}

func TestComplementInvolutionProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%32) + 1
		c := Complement(n)
		return c.Compose(c).IsIdentity() && c.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclicShift(t *testing.T) {
	p := CyclicShift(4)
	want := Perm{1, 2, 3, 0}
	if !p.Equal(want) {
		t.Fatalf("CyclicShift(4) = %v, want %v", p, want)
	}
	if !p.IsCyclic() {
		t.Error("CyclicShift(4) not reported cyclic")
	}
	if p.Order() != 4 {
		t.Errorf("CyclicShift(4).Order() = %d, want 4", p.Order())
	}
}

func TestFromImageValidation(t *testing.T) {
	cases := []struct {
		image []int
		ok    bool
	}{
		{[]int{}, true},
		{[]int{0}, true},
		{[]int{1, 0}, true},
		{[]int{0, 0}, false},
		{[]int{0, 2}, false},
		{[]int{-1, 0}, false},
		{[]int{2, 0, 1}, true},
	}
	for _, c := range cases {
		_, err := FromImage(c.image)
		if (err == nil) != c.ok {
			t.Errorf("FromImage(%v) err = %v, want ok=%v", c.image, err, c.ok)
		}
	}
}

func TestFromCycles(t *testing.T) {
	p, err := FromCycles(6, [][]int{{0, 3, 1}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	want := Perm{3, 0, 2, 1, 5, 4}
	if !p.Equal(want) {
		t.Fatalf("FromCycles = %v, want %v", p, want)
	}

	if _, err := FromCycles(3, [][]int{{0, 1}, {1, 2}}); err == nil {
		t.Error("overlapping cycles accepted")
	}
	if _, err := FromCycles(3, [][]int{{0, 5}}); err == nil {
		t.Error("out-of-range cycle element accepted")
	}
}

func TestComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		p := Random(n, rng)
		q := Random(n, rng)
		if !p.Compose(p.Inverse()).IsIdentity() {
			t.Fatalf("p∘p⁻¹ ≠ id for p=%v", p)
		}
		if !p.Inverse().Compose(p).IsIdentity() {
			t.Fatalf("p⁻¹∘p ≠ id for p=%v", p)
		}
		// (p∘q)⁻¹ = q⁻¹∘p⁻¹
		lhs := p.Compose(q).Inverse()
		rhs := q.Inverse().Compose(p.Inverse())
		if !lhs.Equal(rhs) {
			t.Fatalf("(pq)⁻¹ ≠ q⁻¹p⁻¹ for p=%v q=%v", p, q)
		}
	}
}

func TestComposeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		p, q, r := Random(n, rng), Random(n, rng), Random(n, rng)
		lhs := p.Compose(q).Compose(r)
		rhs := p.Compose(q.Compose(r))
		if !lhs.Equal(rhs) {
			t.Fatalf("associativity fails: p=%v q=%v r=%v", p, q, r)
		}
	}
}

func TestComposeConvention(t *testing.T) {
	// Compose(p, q)(i) must be p(q(i)): apply q first.
	p := MustFromImage([]int{1, 2, 0}) // 0→1→2→0
	q := MustFromImage([]int{0, 2, 1}) // swap 1,2
	r := p.Compose(q)
	// r(1) = p(q(1)) = p(2) = 0.
	if r.Apply(1) != 0 {
		t.Fatalf("Compose convention broken: got r(1)=%d, want 0", r.Apply(1))
	}
}

func TestPow(t *testing.T) {
	p := CyclicShift(5)
	if !p.Pow(0).IsIdentity() {
		t.Error("p^0 ≠ id")
	}
	if !p.Pow(1).Equal(p) {
		t.Error("p^1 ≠ p")
	}
	if !p.Pow(5).IsIdentity() {
		t.Error("shift^5 ≠ id on Z_5")
	}
	if !p.Pow(-1).Equal(p.Inverse()) {
		t.Error("p^-1 ≠ inverse")
	}
	if !p.Pow(7).Equal(p.Pow(2)) {
		t.Error("p^7 ≠ p^2 for 5-cycle")
	}
	// Iterated definition from Section 2.1: f^{i+1} = f∘f^i.
	rng := rand.New(rand.NewSource(3))
	q := Random(9, rng)
	iter := Identity(9)
	for k := 0; k <= 12; k++ {
		if !q.Pow(k).Equal(iter) {
			t.Fatalf("q^%d mismatch with iterated composition", k)
		}
		iter = q.Compose(iter)
	}
}

func TestOrbitsAndCycleType(t *testing.T) {
	p := MustFromImage([]int{3, 0, 2, 1, 5, 4})
	orbits := p.Orbits()
	want := [][]int{{0, 3, 1}, {2}, {4, 5}}
	if !reflect.DeepEqual(orbits, want) {
		t.Fatalf("Orbits = %v, want %v", orbits, want)
	}
	if got := p.CycleType(); !reflect.DeepEqual(got, []int{3, 2, 1}) {
		t.Fatalf("CycleType = %v, want [3 2 1]", got)
	}
	if got := p.FixedPoints(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("FixedPoints = %v, want [2]", got)
	}
}

func TestIsCyclic(t *testing.T) {
	cases := []struct {
		p    Perm
		want bool
	}{
		{Identity(1), true},
		{Identity(2), false},
		{CyclicShift(6), true},
		{MustFromImage([]int{1, 0, 3, 2}), false},
		{MustFromImage([]int{2, 0, 1}), true},
		{Perm{}, false},
	}
	for _, c := range cases {
		if got := c.p.IsCyclic(); got != c.want {
			t.Errorf("IsCyclic(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// The permutation f from the paper's example 3.3.1 (D = 6) must be cyclic,
// and the one from example 3.3.2 (f(i) = 2 - i on Z_3) must not be.
func TestPaperExamplePermutations(t *testing.T) {
	f331 := MustFromFunc(6, func(i int) int {
		switch {
		case i < 3:
			return i + 3
		case i == 3:
			return 2
		default:
			return (i + 2) % 6
		}
	})
	if !f331.IsCyclic() {
		t.Errorf("example 3.3.1 permutation %v should be cyclic", f331)
	}
	f332 := Complement(3)
	if f332.IsCyclic() {
		t.Errorf("example 3.3.2 permutation %v should not be cyclic", f332)
	}
}

func TestOrderAndSign(t *testing.T) {
	p := MustFromImage([]int{3, 0, 2, 1, 5, 4}) // cycle type (3,2,1)
	if p.Order() != 6 {
		t.Errorf("Order = %d, want 6", p.Order())
	}
	if p.Sign() != -1 {
		t.Errorf("Sign = %d, want -1 (one even-length cycle)", p.Sign())
	}
	if Identity(5).Sign() != 1 {
		t.Error("identity must be even")
	}
	if Transposition(5, 1, 3).Sign() != -1 {
		t.Error("transposition must be odd")
	}
}

func TestOrderDividesGroupExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		p := Random(n, rng)
		if !p.Pow(p.Order()).IsIdentity() {
			t.Fatalf("p^order(p) ≠ id for p=%v", p)
		}
	}
}

func TestConjugatePreservesCycleType(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		p, q := Random(n, rng), Random(n, rng)
		if !reflect.DeepEqual(p.CycleType(), p.Conjugate(q).CycleType()) {
			t.Fatalf("conjugation changed cycle type: p=%v q=%v", p, q)
		}
	}
}

func TestString(t *testing.T) {
	p := MustFromImage([]int{3, 0, 2, 1, 5, 4})
	if got := p.String(); got != "(0 3 1)(4 5)" {
		t.Errorf("String = %q, want %q", got, "(0 3 1)(4 5)")
	}
	if got := Identity(4).String(); got != "()" {
		t.Errorf("identity String = %q, want ()", got)
	}
	if got := p.OneLine(); got != "[3 0 2 1 5 4]" {
		t.Errorf("OneLine = %q", got)
	}
}

func TestRandomIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		p := Random(rng.Intn(20), rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("Random produced invalid perm: %v", err)
		}
	}
}

func TestAllEnumerationCount(t *testing.T) {
	for n := 0; n <= 6; n++ {
		count := 0
		All(n, func(Perm) bool {
			count++
			return true
		})
		if count != Factorial(n) {
			t.Errorf("All(%d) visited %d perms, want %d", n, count, Factorial(n))
		}
	}
}

func TestAllEnumerationValidAndDistinct(t *testing.T) {
	seen := make(map[string]bool)
	All(5, func(p Perm) bool {
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid perm enumerated: %v", err)
		}
		key := p.OneLine()
		if seen[key] {
			t.Fatalf("duplicate perm enumerated: %v", p)
		}
		seen[key] = true
		return true
	})
	if len(seen) != 120 {
		t.Fatalf("expected 120 distinct perms, got %d", len(seen))
	}
}

func TestAllEarlyStop(t *testing.T) {
	count := 0
	All(5, func(Perm) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop visited %d, want 7", count)
	}
}

func TestAllCyclicCount(t *testing.T) {
	// (n-1)! cyclic permutations of Z_n — the count used in Section 3.2
	// to derive the d!(D-1)! alternative de Bruijn definitions.
	for n := 1; n <= 7; n++ {
		if got, want := CountCyclic(n), Factorial(n-1); got != want {
			t.Errorf("CountCyclic(%d) = %d, want %d", n, got, want)
		}
	}
	if CountCyclic(0) != 0 {
		t.Error("CountCyclic(0) should be 0")
	}
}

func TestAllCyclicAreCyclic(t *testing.T) {
	AllCyclic(6, func(p Perm) bool {
		if !p.IsCyclic() {
			t.Fatalf("AllCyclic emitted non-cyclic perm %v", p)
		}
		return true
	})
}

func TestAllCyclicMatchesFilter(t *testing.T) {
	// Cross-check the dedicated cyclic enumerator against filtering the
	// full enumeration.
	for n := 1; n <= 6; n++ {
		viaFilter := Count(n, Perm.IsCyclic)
		if got := CountCyclic(n); got != viaFilter {
			t.Errorf("n=%d: CountCyclic=%d, filtered count=%d", n, got, viaFilter)
		}
	}
}

func TestFactorial(t *testing.T) {
	want := []int{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestQuickPermLaws(t *testing.T) {
	// Property: for random images reduced to valid permutations, the
	// group laws hold.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		rng := rand.New(rand.NewSource(seed))
		p := Random(n, rng)
		q := Random(n, rng)
		if p.Compose(Identity(n)) == nil {
			return false
		}
		return p.Compose(Identity(n)).Equal(p) &&
			Identity(n).Compose(p).Equal(p) &&
			p.Compose(q).Inverse().Equal(q.Inverse().Compose(p.Inverse()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickOrbitPartition(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 1
		rng := rand.New(rand.NewSource(seed))
		p := Random(n, rng)
		covered := make([]bool, n)
		total := 0
		for _, orbit := range p.Orbits() {
			for _, u := range orbit {
				if covered[u] {
					return false
				}
				covered[u] = true
				total++
			}
			// Closing under p: p(last) = first.
			if p.Apply(orbit[len(orbit)-1]) != orbit[0] {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
