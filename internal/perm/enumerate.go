package perm

// This file provides exhaustive enumeration of permutations. The paper
// counts d!(D-1)! alternative definitions of the de Bruijn digraph
// (Section 3.2): d! choices for the alphabet permutation σ and (D-1)!
// cyclic permutations f of the index set Z_D. The enumerators below are
// used by the tests and benches that verify those counts by brute force.

// All calls visit with every permutation of Z_n in lexicographic order of
// one-line notation. The Perm passed to visit is reused between calls;
// Clone it to retain. Enumeration stops early if visit returns false.
// The number of permutations visited is n! (1 for n = 0).
func All(n int, visit func(Perm) bool) {
	p := Identity(n)
	for {
		if !visit(p) {
			return
		}
		if !nextLex(p) {
			return
		}
	}
}

// Count returns the number of permutations of Z_n satisfying pred.
func Count(n int, pred func(Perm) bool) int {
	count := 0
	All(n, func(p Perm) bool {
		if pred(p) {
			count++
		}
		return true
	})
	return count
}

// AllCyclic calls visit with every cyclic permutation of Z_n. There are
// (n-1)! of them for n ≥ 1. The Perm passed to visit is reused; Clone it to
// retain. Enumeration stops early if visit returns false.
func AllCyclic(n int, visit func(Perm) bool) {
	if n == 0 {
		return
	}
	// A cyclic permutation of Z_n corresponds to an arrangement of
	// {1, ..., n-1} after the fixed leading 0 in cycle notation:
	// (0 a_1 a_2 ... a_{n-1}).
	rest := make([]int, n-1)
	for i := range rest {
		rest[i] = i + 1
	}
	cycle := make([]int, n)
	cycle[0] = 0
	for {
		copy(cycle[1:], rest)
		p, err := FromCycles(n, [][]int{cycle})
		if err != nil {
			panic("perm: internal enumeration error: " + err.Error())
		}
		if !visit(p) {
			return
		}
		if !nextLexInts(rest) {
			return
		}
	}
}

// CountCyclic returns the number of cyclic permutations of Z_n, computed by
// enumeration. It equals (n-1)! for n ≥ 1 and 0 for n = 0.
func CountCyclic(n int) int {
	count := 0
	AllCyclic(n, func(Perm) bool {
		count++
		return true
	})
	return count
}

// Factorial returns n! for small n, panicking on overflow-prone inputs
// (n > 20 overflows int64 and is far beyond any use in this repository).
func Factorial(n int) int {
	if n < 0 {
		panic("perm: factorial of negative number")
	}
	if n > 20 {
		panic("perm: factorial argument too large")
	}
	f := 1
	for i := 2; i <= n; i++ {
		//lint:ignore overflowguard n ≤ 20 is enforced above and 20! fits in int64
		f *= i
	}
	return f
}

// nextLex advances p to the next permutation in lexicographic order,
// reporting false when p was already the last one.
func nextLex(p Perm) bool { return nextLexInts(p) }

func nextLexInts(p []int) bool {
	n := len(p)
	i := n - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := n - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
		p[l], p[r] = p[r], p[l]
	}
	return true
}
