// Package perm implements finite permutations of Z_n = {0, 1, ..., n-1}.
//
// Permutations are the algebraic backbone of the paper "De Bruijn
// Isomorphisms and Free Space Optical Networks" (Coudert, Ferreira,
// Pérennes, IPDPS 2000): the alphabet digraphs A(f, σ, j) of Definition 3.7
// are parameterized by a permutation f on word indices Z_D and a permutation
// σ on the alphabet Z_d, and the central result (Proposition 3.9) states
// that A(f, σ, j) is isomorphic to the de Bruijn digraph B(d, D) exactly
// when f is a cyclic permutation.
//
// A Perm p represents the mapping i ↦ p[i]. The zero-length Perm is the
// (vacuous) permutation of the empty set and is valid.
package perm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Perm is a permutation of Z_n represented in one-line notation:
// the permutation maps i to p[i]. Perm values are plain slices; use Clone
// when an independent copy is required.
type Perm []int

// Identity returns the identity permutation of Z_n.
func Identity(n int) Perm {
	if n < 0 {
		panic("perm: negative size")
	}
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Complement returns the complement permutation C of Z_n from Definition 2.1
// of the paper: C(u) = n - u - 1, often written ū.
func Complement(n int) Perm {
	if n < 0 {
		panic("perm: negative size")
	}
	p := make(Perm, n)
	for i := range p {
		p[i] = n - i - 1
	}
	return p
}

// CyclicShift returns the permutation ρ of Z_n defined by ρ(i) = i+1 mod n.
// This is the permutation that makes the de Bruijn digraph an alphabet
// digraph: B(d, D) = A(ρ, Id, 0) (Remark 3.8).
func CyclicShift(n int) Perm {
	if n < 0 {
		panic("perm: negative size")
	}
	p := make(Perm, n)
	for i := range p {
		p[i] = (i + 1) % n
	}
	return p
}

// Transposition returns the permutation of Z_n exchanging a and b.
func Transposition(n, a, b int) Perm {
	p := Identity(n)
	if a < 0 || a >= n || b < 0 || b >= n {
		panic("perm: transposition index out of range")
	}
	p[a], p[b] = b, a
	return p
}

// FromImage builds a Perm from an explicit image slice and validates it.
func FromImage(image []int) (Perm, error) {
	p := make(Perm, len(image))
	copy(p, image)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustFromImage is like FromImage but panics on invalid input. It is
// intended for package-level variables and tests.
func MustFromImage(image []int) Perm {
	p, err := FromImage(image)
	if err != nil {
		//lint:ignore panicstyle the error from FromImage already carries the "perm: " prefix
		panic(err)
	}
	return p
}

// FromFunc builds the permutation of Z_n with image f(i) and validates it.
func FromFunc(n int, f func(int) int) (Perm, error) {
	image := make([]int, n)
	for i := range image {
		image[i] = f(i)
	}
	return FromImage(image)
}

// MustFromFunc is like FromFunc but panics on invalid input.
func MustFromFunc(n int, f func(int) int) Perm {
	p, err := FromFunc(n, f)
	if err != nil {
		//lint:ignore panicstyle the error from FromFunc already carries the "perm: " prefix
		panic(err)
	}
	return p
}

// FromCycles builds a permutation of Z_n from disjoint cycles. Elements not
// mentioned in any cycle are fixed. For example FromCycles(6, [][]int{{0,3,1}})
// maps 0→3, 3→1, 1→0 and fixes 2, 4, 5.
func FromCycles(n int, cycles [][]int) (Perm, error) {
	p := Identity(n)
	seen := make([]bool, n)
	for _, c := range cycles {
		for i, u := range c {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("perm: cycle element %d out of range [0,%d)", u, n)
			}
			if seen[u] {
				return nil, fmt.Errorf("perm: element %d appears in two cycles", u)
			}
			seen[u] = true
			v := c[(i+1)%len(c)]
			p[u] = v
		}
	}
	return p, nil
}

// Random returns a uniformly random permutation of Z_n drawn from rng.
func Random(n int, rng *rand.Rand) Perm {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Validate reports whether p is a well-formed permutation: every value in
// [0, len(p)) appears exactly once.
func (p Perm) Validate() error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("perm: image %d of %d out of range [0,%d)", v, i, len(p))
		}
		if seen[v] {
			return fmt.Errorf("perm: image %d repeated", v)
		}
		seen[v] = true
	}
	return nil
}

// N returns the size of the ground set Z_n.
func (p Perm) N() int { return len(p) }

// Apply returns p(i).
func (p Perm) Apply(i int) int { return p[i] }

// Clone returns an independent copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsIdentity reports whether p fixes every point.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Compose returns the composition p∘q, the permutation mapping i to p(q(i)).
// This matches the paper's convention f^{i+1} = f ∘ f^i.
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic("perm: compose size mismatch")
	}
	r := make(Perm, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Inverse returns p⁻¹.
func (p Perm) Inverse() Perm {
	r := make(Perm, len(p))
	for i, v := range p {
		r[v] = i
	}
	return r
}

// Pow returns p^k for any integer k (negative powers use the inverse).
// p^0 is the identity, matching Section 2.1 of the paper.
func (p Perm) Pow(k int) Perm {
	n := len(p)
	if n == 0 {
		return Perm{}
	}
	base := p
	if k < 0 {
		base = p.Inverse()
		k = -k
	}
	// Exponentiation by squaring on the symmetric group.
	result := Identity(n)
	sq := base.Clone()
	for k > 0 {
		if k&1 == 1 {
			result = sq.Compose(result)
		}
		sq = sq.Compose(sq)
		k >>= 1
	}
	return result
}

// Conjugate returns q∘p∘q⁻¹.
func (p Perm) Conjugate(q Perm) Perm {
	return q.Compose(p).Compose(q.Inverse())
}

// Orbits returns the cycle decomposition of p as a slice of orbits, each
// orbit listed starting from its smallest element and ordered by that
// smallest element. Fixed points appear as singleton orbits.
func (p Perm) Orbits() [][]int {
	n := len(p)
	seen := make([]bool, n)
	var orbits [][]int
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		var orbit []int
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			orbit = append(orbit, j)
		}
		orbits = append(orbits, orbit)
	}
	return orbits
}

// IsCyclic reports whether p is a cyclic permutation of Z_n, i.e. its cycle
// decomposition is a single orbit covering all of Z_n. This is the exact
// hypothesis of Proposition 3.9. By convention the unique permutation of a
// singleton is cyclic and the empty permutation is not.
func (p Perm) IsCyclic() bool {
	n := len(p)
	if n == 0 {
		return false
	}
	// Walk the orbit of 0; p is cyclic iff the orbit has length n.
	count := 0
	for j := 0; ; j = p[j] {
		count++
		if p[j] == 0 {
			break
		}
		if count > n {
			return false // defensive; cannot happen for valid perms
		}
	}
	return count == n
}

// Order returns the order of p in the symmetric group (the lcm of its cycle
// lengths). The identity has order 1; the empty permutation has order 1.
func (p Perm) Order() int {
	order := 1
	for _, orbit := range p.Orbits() {
		order = lcm(order, len(orbit))
	}
	return order
}

// Sign returns +1 for even permutations and -1 for odd ones.
func (p Perm) Sign() int {
	sign := 1
	for _, orbit := range p.Orbits() {
		if len(orbit)%2 == 0 {
			sign = -sign
		}
	}
	return sign
}

// FixedPoints returns the elements fixed by p, in increasing order.
func (p Perm) FixedPoints() []int {
	var fixed []int
	for i, v := range p {
		if i == v {
			fixed = append(fixed, i)
		}
	}
	return fixed
}

// CycleType returns the multiset of cycle lengths sorted decreasingly.
// Two permutations are conjugate iff they share a cycle type.
func (p Perm) CycleType() []int {
	orbits := p.Orbits()
	lengths := make([]int, len(orbits))
	for i, orbit := range orbits {
		lengths[i] = len(orbit)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	return lengths
}

// String renders p in disjoint cycle notation, e.g. "(0 3 1)(2)(4 5)".
// The identity of a nonempty set renders as "()"; the empty permutation
// renders as "()".
func (p Perm) String() string {
	if p.IsIdentity() {
		return "()"
	}
	var b strings.Builder
	for _, orbit := range p.Orbits() {
		if len(orbit) == 1 {
			continue // conventionally omit fixed points when non-identity
		}
		b.WriteByte('(')
		for i, u := range orbit {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", u)
		}
		b.WriteByte(')')
	}
	return b.String()
}

// OneLine renders p in one-line notation, e.g. "[3 0 2 1]".
func (p Perm) OneLine() string {
	return fmt.Sprint([]int(p))
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}
