package perm

import (
	"math/rand"
	"testing"
)

func TestParseCycles(t *testing.T) {
	p, err := Parse(6, "(0 3 1)(4 5)")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(MustFromImage([]int{3, 0, 2, 1, 5, 4})) {
		t.Fatalf("parsed %v", p)
	}
	id, err := Parse(4, "()")
	if err != nil || !id.IsIdentity() {
		t.Fatalf("identity parse: %v %v", id, err)
	}
}

func TestParseOneLine(t *testing.T) {
	p, err := Parse(4, "[2 3 1 0]")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(MustFromImage([]int{2, 3, 1, 0})) {
		t.Fatalf("parsed %v", p)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "hello", "(0 1", "(0 1)(1 2)", "[1 2]", "[0 1 2]x", "(0 9)", "[a b c d]",
	}
	for _, s := range bad {
		if _, err := Parse(4, s); err == nil {
			t.Errorf("Parse(4, %q) accepted", s)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		p := Random(n, rng)
		viaCycle, err := Parse(n, p.String())
		if err != nil {
			t.Fatalf("cycle round trip of %v: %v", p, err)
		}
		if !viaCycle.Equal(p) {
			t.Fatalf("cycle round trip %v -> %v", p, viaCycle)
		}
		viaOneLine, err := Parse(n, p.OneLine())
		if err != nil {
			t.Fatalf("one-line round trip of %v: %v", p, err)
		}
		if !viaOneLine.Equal(p) {
			t.Fatalf("one-line round trip %v -> %v", p, viaOneLine)
		}
	}
}
