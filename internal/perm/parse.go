package perm

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a permutation of Z_n from either disjoint cycle notation
// ("(0 3 1)(4 5)", "()" for the identity) or one-line notation
// ("[3 0 2 1 5 4]"). Elements not mentioned in cycle notation are fixed.
// The inverse of String and OneLine, used by the CLI tools to accept
// permutations on the command line.
func Parse(n int, s string) (Perm, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("perm: empty input")
	}
	if s[0] == '[' {
		return parseOneLine(n, s)
	}
	if s[0] == '(' {
		return parseCycles(n, s)
	}
	return nil, fmt.Errorf("perm: expected '(' or '[', got %q", s[0])
}

func parseOneLine(n int, s string) (Perm, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("perm: unterminated one-line notation")
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		if n != 0 {
			return nil, fmt.Errorf("perm: empty image for n=%d", n)
		}
		return Perm{}, nil
	}
	fields := strings.Fields(body)
	if len(fields) != n {
		return nil, fmt.Errorf("perm: %d entries for n=%d", len(fields), n)
	}
	image := make([]int, n)
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("perm: bad entry %q: %w", f, err)
		}
		image[i] = v
	}
	return FromImage(image)
}

func parseCycles(n int, s string) (Perm, error) {
	var cycles [][]int
	rest := s
	for rest != "" {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		if rest[0] != '(' {
			return nil, fmt.Errorf("perm: expected '(' at %q", rest)
		}
		end := strings.IndexByte(rest, ')')
		if end < 0 {
			return nil, fmt.Errorf("perm: unterminated cycle in %q", rest)
		}
		body := strings.TrimSpace(rest[1:end])
		rest = rest[end+1:]
		if body == "" {
			continue // "()" — identity contribution
		}
		fields := strings.Fields(body)
		cycle := make([]int, len(fields))
		for i, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("perm: bad cycle element %q: %w", f, err)
			}
			cycle[i] = v
		}
		cycles = append(cycles, cycle)
	}
	return FromCycles(n, cycles)
}
