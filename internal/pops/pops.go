// Package pops implements the multi-OPS networks the paper positions
// itself against: the Partitioned Optical Passive Star network POPS(t, g)
// of Chiarulli et al. (reference [10]), the stack-Kautz network of
// Coudert, Ferreira and Muñoz (reference [13]), and the OTIS-realized
// complete digraph of Zane et al. (reference [34]). These are the
// "layouts that scale badly" of the introduction: they need many
// transceivers per processor or many couplers, which is what motivates
// the paper's Θ(√n)-lens de Bruijn layouts.
package pops

import (
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/otis"
)

// POPS describes a POPS(t, g) network: n = t·g processors in g groups of
// t, fully interconnected by g² optical passive star couplers. Coupler
// (i, j) accepts light from the t processors of group i and broadcasts to
// the t processors of group j, so every processor needs g transmitters
// and g receivers and any pair is one hop apart.
type POPS struct {
	T int // processors per group
	G int // groups
}

// NewPOPS validates t, g ≥ 1.
func NewPOPS(t, g int) (POPS, error) {
	if t < 1 || g < 1 {
		return POPS{}, fmt.Errorf("pops: need t, g >= 1, got (%d,%d)", t, g)
	}
	return POPS{T: t, G: g}, nil
}

// Processors returns n = t·g.
func (p POPS) Processors() int { return p.T * p.G }

// Couplers returns the number of passive star couplers, g².
func (p POPS) Couplers() int { return p.G * p.G }

// TransceiversPerNode returns g (one transmitter and one receiver per
// destination/source group).
func (p POPS) TransceiversPerNode() int { return p.G }

// CouplerOf returns the coupler (srcGroup, dstGroup) used by a
// transmission from processor u to processor v.
func (p POPS) CouplerOf(u, v int) (int, int) {
	n := p.Processors()
	if u < 0 || u >= n || v < 0 || v >= n {
		panic(fmt.Sprintf("pops: processors (%d,%d) out of range", u, v))
	}
	return u / p.T, v / p.T
}

// Digraph returns the one-hop connectivity: the symmetric complete
// digraph with loops K*_n (every processor reaches every processor,
// including itself through its own group's coupler).
func (p POPS) Digraph() *digraph.Digraph {
	return digraph.CompleteWithLoops(p.Processors())
}

// StackKautz returns the stack-Kautz network SK(s, d, k) of [13]: the
// Kautz digraph K(d, k) with every vertex expanded into a stack of s
// processors, every arc into full s×s connectivity — the conjunction
// K(d, k) ⊗ K*_s. It has s·d^{k-1}(d+1) processors of degree s·d.
// The second return maps vertex ids to (kautzVertex, stackIndex).
func StackKautz(s, d, k int) (*digraph.Digraph, func(id int) (int, int)) {
	if s < 1 {
		panic("pops: stack size must be >= 1")
	}
	kautz, _ := debruijn.Kautz(d, k)
	g := digraph.Conjunction(kautz, digraph.CompleteWithLoops(s))
	decode := func(id int) (int, int) { return id / s, id % s }
	return g, decode
}

// StackKautzOrder returns s·d^{k-1}(d+1).
func StackKautzOrder(s, d, k int) int { return s * debruijn.KautzOrder(d, k) }

// VerifyZaneCompleteLayout checks the result of [34] recalled in the
// introduction: OTIS(n, n) with degree n realizes the complete digraph
// with loops K*_n — each of the n processors owning n transceivers
// (the 64-processor, 64-transceiver layout the paper mentions has
// n = 64). H(n, n, n) equals K*_n exactly.
func VerifyZaneCompleteLayout(n int) error {
	h, err := otis.H(n, n, n)
	if err != nil {
		return err
	}
	if !h.Equal(digraph.CompleteWithLoops(n)) {
		return fmt.Errorf("pops: H(%d,%d,%d) is not K*_%d", n, n, n, n)
	}
	return nil
}

// HardwareComparison contrasts the per-processor optics of three designs
// for an n-processor machine: the POPS single-hop network, the Zane
// complete-digraph OTIS layout, and the paper's de Bruijn OTIS layout.
type HardwareComparison struct {
	N                     int
	POPSTransceivers      int // per node, POPS(t, g)
	POPSCouplers          int
	CompleteTransceivers  int // per node, OTIS K*_n layout [34]
	CompleteLenses        int
	DeBruijnTransceivers  int // per node, B(d, D) layout (this paper)
	DeBruijnLenses        int
	DeBruijnDiameter      int
	DeBruijnLayoutExplain string
}

// Compare builds the comparison for n = d^D processors using POPS groups
// of size t (t must divide n).
func Compare(d, D, t int) (HardwareComparison, error) {
	layout, ok := otis.OptimalLayout(d, D)
	if !ok {
		return HardwareComparison{}, fmt.Errorf("pops: no de Bruijn layout for d=%d D=%d", d, D)
	}
	n := layout.Nodes()
	if t < 1 || n%t != 0 {
		return HardwareComparison{}, fmt.Errorf("pops: group size %d does not divide n=%d", t, n)
	}
	p, err := NewPOPS(t, n/t)
	if err != nil {
		return HardwareComparison{}, err
	}
	return HardwareComparison{
		N:                     n,
		POPSTransceivers:      p.TransceiversPerNode(),
		POPSCouplers:          p.Couplers(),
		CompleteTransceivers:  n,
		CompleteLenses:        2 * n, // OTIS(n, n)
		DeBruijnTransceivers:  d,
		DeBruijnLenses:        layout.Lenses(),
		DeBruijnDiameter:      D,
		DeBruijnLayoutExplain: layout.String(),
	}, nil
}
