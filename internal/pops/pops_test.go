package pops

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

func TestPOPSValidation(t *testing.T) {
	if _, err := NewPOPS(0, 4); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := NewPOPS(4, 0); err == nil {
		t.Error("g=0 accepted")
	}
	p, err := NewPOPS(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Processors() != 32 || p.Couplers() != 64 || p.TransceiversPerNode() != 8 {
		t.Errorf("POPS(4,8) counts wrong: %+v", p)
	}
}

func TestPOPSCouplerRouting(t *testing.T) {
	p, _ := NewPOPS(4, 3)
	i, j := p.CouplerOf(0, 11)
	if i != 0 || j != 2 {
		t.Errorf("CouplerOf(0,11) = (%d,%d), want (0,2)", i, j)
	}
	i, j = p.CouplerOf(5, 5)
	if i != 1 || j != 1 {
		t.Errorf("self coupler = (%d,%d)", i, j)
	}
}

func TestPOPSIsSingleHop(t *testing.T) {
	p, _ := NewPOPS(3, 4)
	g := p.Digraph()
	if g.Diameter() != 1 {
		t.Errorf("POPS diameter = %d, want 1", g.Diameter())
	}
	if !g.IsRegular(p.Processors()) {
		t.Error("POPS graph not complete")
	}
}

func TestStackKautzShape(t *testing.T) {
	for _, c := range []struct{ s, d, k int }{{2, 2, 2}, {3, 2, 3}, {2, 3, 2}} {
		g, decode := StackKautz(c.s, c.d, c.k)
		if g.N() != StackKautzOrder(c.s, c.d, c.k) {
			t.Fatalf("SK(%d,%d,%d): n = %d", c.s, c.d, c.k, g.N())
		}
		if !g.IsRegular(c.s * c.d) {
			t.Errorf("SK(%d,%d,%d) not %d-regular", c.s, c.d, c.k, c.s*c.d)
		}
		if !g.IsStronglyConnected() {
			t.Error("stack-Kautz disconnected")
		}
		kv, si := decode(c.s + 1)
		if kv != 1 || si != 1 {
			t.Errorf("decode(%d) = (%d,%d)", c.s+1, kv, si)
		}
	}
}

func TestStackKautzProjectsToKautz(t *testing.T) {
	// Collapsing stacks gives a homomorphism onto K(d,k): every SK arc
	// projects to a Kautz arc.
	s, d, k := 2, 2, 3
	g, decode := StackKautz(s, d, k)
	kautz, _ := debruijn.Kautz(d, k)
	for id := 0; id < g.N(); id++ {
		u, _ := decode(id)
		for _, w := range g.Out(id) {
			v, _ := decode(w)
			if !kautz.HasArc(u, v) {
				t.Fatalf("SK arc projects to non-Kautz arc (%d,%d)", u, v)
			}
		}
	}
}

func TestStackKautzDiameter(t *testing.T) {
	// One Kautz hop moves between any two stacks of adjacent vertices, so
	// the stack-Kautz diameter is governed by the Kautz diameter; pairs
	// within one stack need a closed Kautz walk (girth ≤ 3), so the
	// diameter is max(k, girth considerations) — measured: k for k ≥ 3.
	g, _ := StackKautz(2, 2, 3)
	if got := g.Diameter(); got != 3 {
		t.Errorf("SK(2,2,3) diameter = %d, want 3", got)
	}
}

func TestVerifyZaneCompleteLayout(t *testing.T) {
	// [34]: OTIS(n,n) at degree n is K*_n; the paper's example is n = 64.
	for _, n := range []int{2, 4, 8, 64} {
		if err := VerifyZaneCompleteLayout(n); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestCompare(t *testing.T) {
	c, err := Compare(2, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 256 {
		t.Fatalf("n = %d", c.N)
	}
	// The paper's scaling story in numbers: POPS needs 16 transceivers
	// per node (g = 16 groups), the complete layout needs 256, the
	// de Bruijn layout needs d = 2.
	if c.POPSTransceivers != 16 || c.CompleteTransceivers != 256 || c.DeBruijnTransceivers != 2 {
		t.Errorf("transceivers: %+v", c)
	}
	if c.DeBruijnLenses != 48 || c.CompleteLenses != 512 {
		t.Errorf("lenses: %+v", c)
	}
	if c.DeBruijnDiameter != 8 {
		t.Errorf("diameter: %+v", c)
	}
	if _, err := Compare(2, 8, 7); err == nil {
		t.Error("non-dividing group size accepted")
	}
}

func TestStackKautzIsConjunction(t *testing.T) {
	// Definitional cross-check against an independent construction.
	kautz, _ := debruijn.Kautz(2, 2)
	want := digraph.Conjunction(kautz, digraph.CompleteWithLoops(3))
	got, _ := StackKautz(3, 2, 2)
	if !got.Equal(want) {
		t.Error("StackKautz != K ⊗ K*_s")
	}
}
