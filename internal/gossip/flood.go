package gossip

import (
	"fmt"

	"repro/internal/digraph"
)

// Flood is an incremental, fault-tolerant all-port flood: the
// dissemination primitive the self-healing network layer piggybacks on
// its cycle loop. Unlike the one-shot BroadcastAllPort simulation, a
// Flood is advanced one round at a time by the caller, and each round
// may see a different set of live arcs — the situation of a link-state
// update spreading through a network that is itself degraded.
//
// The flood is persistent, not frontier-based: every informed node
// re-offers the message to every uninformed out-neighbour each round, so
// a transiently-down arc delays the message instead of losing it. On a
// fully-live digraph the flood therefore completes in exactly the
// all-port broadcast time of the origin (its eccentricity), which the
// tests cross-check against BroadcastAllPort.
type Flood struct {
	g        *digraph.Digraph
	informed []bool
	seen     []bool // per-round dedup marks, cleared again before Step returns
	fresh    []int  // per-round newly-informed scratch, reused across Steps
	count    int
	rounds   int
}

// NewFlood starts a flood of one message from origin.
func NewFlood(g *digraph.Digraph, origin int) (*Flood, error) {
	if origin < 0 || origin >= g.N() {
		return nil, fmt.Errorf("gossip: flood origin %d out of range [0,%d)", origin, g.N())
	}
	f := &Flood{
		g:        g,
		informed: make([]bool, g.N()),
		seen:     make([]bool, g.N()),
		fresh:    make([]int, 0, g.N()),
	}
	f.informed[origin] = true
	f.count = 1
	return f, nil
}

// Step performs one all-port round: every informed node informs every
// uninformed out-neighbour whose connecting arc is live. live reports
// whether the out-arc at (tail, index) can carry the message this round;
// nil means every arc is live. Step returns the number of nodes newly
// informed. Calling Step on a complete flood is a no-op returning 0.
//
// Step is the gossip inner loop of the self-healing cycle: it runs once
// per flood per cycle, so it reuses the Flood's scratch slabs and the
// per-round dedup is O(1) per offer via the seen marks.
//
//lint:hotpath
func (f *Flood) Step(live func(tail, index int) bool) int {
	if f.Complete() {
		return 0
	}
	f.rounds++
	// Nodes informed this round must not relay until the next one, so
	// collect first and mark after the scan.
	fresh := f.fresh[:0]
	for u := 0; u < f.g.N(); u++ {
		if !f.informed[u] {
			continue
		}
		for k, v := range f.g.Out(u) {
			if f.informed[v] || f.seen[v] {
				continue
			}
			if live != nil && !live(u, k) {
				continue
			}
			f.seen[v] = true
			fresh = append(fresh, v)
		}
	}
	for _, v := range fresh {
		f.informed[v] = true
		f.seen[v] = false
		f.count++
	}
	f.fresh = fresh
	return len(fresh)
}

// Mark records out-of-band knowledge: node u learned the message
// directly (e.g. by observing the failure itself) rather than from a
// neighbour. Marked nodes join the flood as relays next round.
func (f *Flood) Mark(u int) {
	if u < 0 || u >= len(f.informed) || f.informed[u] {
		return
	}
	f.informed[u] = true
	f.count++
}

// Informed reports whether node u has the message.
func (f *Flood) Informed(u int) bool { return f.informed[u] }

// Count returns how many nodes have the message.
func (f *Flood) Count() int { return f.count }

// Rounds returns how many Step calls have run.
func (f *Flood) Rounds() int { return f.rounds }

// Complete reports whether every node has the message.
func (f *Flood) Complete() bool { return f.count == f.g.N() }
