package gossip

import (
	"fmt"
	"math/bits"

	"repro/internal/digraph"
)

// Exact optimal single-port broadcast, by breadth-first search over
// informed-set states. The state space is 2^n, so this is for n ≤ ~20 —
// enough to grade the greedy heuristic on the small de Bruijn digraphs
// and to certify lower bounds stronger than ⌈log₂ n⌉.

// OptimalBroadcastTime returns the minimum number of rounds needed to
// inform every vertex from root under the single-port model, or -1 if
// some vertex is unreachable. Exponential in n; refuses n > 22.
func OptimalBroadcastTime(g *digraph.Digraph, root int) (int, error) {
	n := g.N()
	if n > 22 {
		return 0, fmt.Errorf("gossip: optimal broadcast limited to 22 vertices, got %d", n)
	}
	if root < 0 || root >= n {
		return 0, fmt.Errorf("gossip: root %d out of range", root)
	}
	full := uint32(1)<<uint(n) - 1
	start := uint32(1) << uint(root)
	if start == full {
		return 0, nil
	}
	// Precompute neighbourhood masks.
	outMask := make([]uint32, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			outMask[u] |= 1 << uint(v)
		}
	}
	visited := map[uint32]bool{start: true}
	frontier := []uint32{start}
	for rounds := 1; len(frontier) > 0; rounds++ {
		var next []uint32
		for _, state := range frontier {
			for _, succ := range successorStates(state, outMask, n) {
				if visited[succ] {
					continue
				}
				if succ == full {
					return rounds, nil
				}
				visited[succ] = true
				next = append(next, succ)
			}
		}
		frontier = next
	}
	return -1, nil
}

// successorStates returns the informed sets reachable in one round: each
// informed vertex calls at most one uninformed out-neighbour. To keep the
// branching manageable we enumerate, for each informed vertex, the choice
// of which new vertex it informs (or none), deduplicating aggressively.
// A round is maximal-progress without loss of generality only for
// monotone objectives, which broadcast time is, so we can restrict to
// rounds where every caller with an available target calls — a classical
// reduction that keeps optimality.
func successorStates(state uint32, outMask []uint32, n int) []uint32 {
	// Collect, per informed vertex, its callable (uninformed) targets.
	type caller struct {
		targets uint32
	}
	var callers []caller
	rest := state
	for rest != 0 {
		u := bits.TrailingZeros32(rest)
		rest &^= 1 << uint(u)
		t := outMask[u] &^ state
		if t != 0 {
			callers = append(callers, caller{targets: t})
		}
	}
	if len(callers) == 0 {
		return nil
	}
	// DFS over caller choices; each caller must call some target if one
	// remains (maximal rounds preserve optimality), but targets can
	// collide, in which case a caller may effectively idle by choosing an
	// already-chosen target.
	seen := map[uint32]bool{}
	var out []uint32
	var rec func(idx int, acc uint32)
	rec = func(idx int, acc uint32) {
		if idx == len(callers) {
			s := state | acc
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
			return
		}
		t := callers[idx].targets
		for t != 0 {
			v := bits.TrailingZeros32(t)
			t &^= 1 << uint(v)
			rec(idx+1, acc|1<<uint(v))
		}
	}
	rec(0, 0)
	return out
}

// GreedyGap measures how far the greedy single-port schedule is from
// optimal on g, over all roots: (sum of greedy lengths, sum of optimal
// lengths). Small digraphs only.
func GreedyGap(g *digraph.Digraph) (greedy, optimal int, err error) {
	for root := 0; root < g.N(); root++ {
		s, err := BroadcastSinglePort(g, root)
		if err != nil {
			return 0, 0, err
		}
		opt, err := OptimalBroadcastTime(g, root)
		if err != nil {
			return 0, 0, err
		}
		if opt < 0 {
			return 0, 0, fmt.Errorf("gossip: root %d cannot broadcast", root)
		}
		greedy += s.Length()
		optimal += opt
	}
	return greedy, optimal, nil
}
