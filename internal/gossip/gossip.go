// Package gossip implements the information-dissemination primitives whose
// de Bruijn literature the paper builds on: broadcasting (one-to-all) and
// gossiping (all-to-all) under the two classical synchronous models —
// all-port (a node may inform every out-neighbour each round) and
// single-port (one out-neighbour per round), the model of Bermond and
// Fraigniaud's de Bruijn broadcasting bounds (reference [3]) and of
// Pérennes's gossiping results (reference [28]).
package gossip

import (
	"fmt"
	"sort"

	"repro/internal/digraph"
)

// Call is one communication: From informs To during a round.
type Call struct{ From, To int }

// Schedule is a single-port broadcast schedule: Rounds[t] lists the calls
// of round t. Validity: every caller is informed before round t, each
// caller makes at most one call per round, every call follows an arc, and
// everyone ends up informed.
type Schedule struct {
	Root   int
	Rounds [][]Call
}

// Length returns the number of rounds.
func (s Schedule) Length() int { return len(s.Rounds) }

// BroadcastAllPort returns the number of rounds to broadcast from root
// when informed nodes inform all out-neighbours each round. This equals
// the eccentricity of root; the function simulates rather than assumes,
// and returns -1 if some node is unreachable.
func BroadcastAllPort(g *digraph.Digraph, root int) int {
	n := g.N()
	informed := make([]bool, n)
	informed[root] = true
	count := 1
	frontier := []int{root}
	rounds := 0
	for count < n {
		var next []int
		for _, u := range frontier {
			for _, v := range g.Out(u) {
				if !informed[v] {
					informed[v] = true
					count++
					next = append(next, v)
				}
			}
		}
		if len(next) == 0 {
			return -1
		}
		frontier = next
		rounds++
	}
	return rounds
}

// BroadcastSinglePort constructs a single-port broadcast schedule from
// root greedily: each round, every informed node calls its uninformed
// out-neighbour with the largest uninformed out-degree (a standard
// effective heuristic on de Bruijn-like digraphs). Returns an error if
// some node is unreachable.
func BroadcastSinglePort(g *digraph.Digraph, root int) (Schedule, error) {
	n := g.N()
	informed := make([]bool, n)
	informed[root] = true
	count := 1
	order := []int{root} // informed nodes, oldest first
	sched := Schedule{Root: root}

	uninformedOut := func(u int) int {
		c := 0
		for _, v := range g.Out(u) {
			if !informed[v] {
				c++
			}
		}
		return c
	}

	for count < n {
		var calls []Call
		var newlyInformed []int
		// Snapshot: only nodes informed before this round may call.
		callers := append([]int(nil), order...)
		for _, u := range callers {
			best, bestScore := -1, -1
			for _, v := range g.Out(u) {
				if informed[v] {
					continue
				}
				if score := uninformedOut(v); score > bestScore {
					best, bestScore = v, score
				}
			}
			if best == -1 {
				continue
			}
			informed[best] = true
			count++
			calls = append(calls, Call{From: u, To: best})
			newlyInformed = append(newlyInformed, best)
		}
		if len(calls) == 0 {
			return Schedule{}, fmt.Errorf("gossip: broadcast stalled with %d/%d informed", count, n)
		}
		order = append(order, newlyInformed...)
		sched.Rounds = append(sched.Rounds, calls)
	}
	return sched, nil
}

// VerifySchedule checks single-port validity of a schedule on g.
func VerifySchedule(g *digraph.Digraph, s Schedule) error {
	n := g.N()
	if s.Root < 0 || s.Root >= n {
		return fmt.Errorf("gossip: root %d out of range", s.Root)
	}
	informed := make([]bool, n)
	informed[s.Root] = true
	count := 1
	for t, calls := range s.Rounds {
		busy := make(map[int]bool, len(calls))
		var newly []int
		for _, c := range calls {
			if !informed[c.From] {
				return fmt.Errorf("gossip: round %d: caller %d not informed", t, c.From)
			}
			if busy[c.From] {
				return fmt.Errorf("gossip: round %d: node %d calls twice", t, c.From)
			}
			busy[c.From] = true
			if informed[c.To] {
				return fmt.Errorf("gossip: round %d: %d already informed", t, c.To)
			}
			if !g.HasArc(c.From, c.To) {
				return fmt.Errorf("gossip: round %d: call (%d,%d) is not an arc", t, c.From, c.To)
			}
			newly = append(newly, c.To)
		}
		for _, v := range newly {
			informed[v] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("gossip: schedule informs %d of %d nodes", count, n)
	}
	return nil
}

// LogLowerBound returns ⌈log2 n⌉, the universal single-port broadcast
// lower bound (the informed set can at most double each round).
func LogLowerBound(n int) int {
	rounds := 0
	for span := 1; span < n; span *= 2 {
		rounds++
	}
	return rounds
}

// GossipAllPort returns the number of rounds for every node to learn every
// node's token when each round every node forwards everything it knows to
// all out-neighbours. This equals the diameter; simulated with bitsets.
// Returns -1 if the digraph is not strongly connected.
func GossipAllPort(g *digraph.Digraph) int {
	n := g.N()
	words := (n + 63) / 64
	know := make([][]uint64, n)
	for u := 0; u < n; u++ {
		know[u] = make([]uint64, words)
		know[u][u/64] |= 1 << uint(u%64)
	}
	full := func(k []uint64) bool {
		for i := 0; i < n; i++ {
			if k[i/64]&(1<<uint(i%64)) == 0 {
				return false
			}
		}
		return true
	}
	allFull := func() bool {
		for u := 0; u < n; u++ {
			if !full(know[u]) {
				return false
			}
		}
		return true
	}
	next := make([][]uint64, n)
	for u := range next {
		next[u] = make([]uint64, words)
	}
	for rounds := 0; ; rounds++ {
		if allFull() {
			return rounds
		}
		if rounds > 2*n {
			return -1
		}
		for u := 0; u < n; u++ {
			copy(next[u], know[u])
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				for w := range next[v] {
					next[v][w] |= know[u][w]
				}
			}
		}
		know, next = next, know
	}
}

// BroadcastTimes returns the single-port greedy broadcast length from
// every vertex, sorted ascending — the empirical broadcast-time profile
// of the digraph.
func BroadcastTimes(g *digraph.Digraph) ([]int, error) {
	times := make([]int, g.N())
	for u := 0; u < g.N(); u++ {
		s, err := BroadcastSinglePort(g, u)
		if err != nil {
			return nil, err
		}
		times[u] = s.Length()
	}
	sort.Ints(times)
	return times, nil
}
