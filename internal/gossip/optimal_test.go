package gossip

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

func TestOptimalBroadcastTimeSmallKnown(t *testing.T) {
	// Complete digraph: perfect doubling, ⌈log₂ n⌉ rounds.
	for _, n := range []int{2, 4, 7, 8} {
		g := digraph.CompleteWithLoops(n)
		opt, err := OptimalBroadcastTime(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if opt != LogLowerBound(n) {
			t.Errorf("K*_%d optimal = %d, want %d", n, opt, LogLowerBound(n))
		}
	}
	// Directed circuit: n-1 rounds (one new vertex per round).
	opt, _ := OptimalBroadcastTime(digraph.Circuit(6), 2)
	if opt != 5 {
		t.Errorf("C6 optimal = %d, want 5", opt)
	}
}

func TestOptimalBroadcastEdgeCases(t *testing.T) {
	g := digraph.Circuit(1)
	if opt, _ := OptimalBroadcastTime(g, 0); opt != 0 {
		t.Error("singleton broadcast should take 0 rounds")
	}
	disc := digraph.New(3)
	disc.AddArc(0, 1)
	if opt, _ := OptimalBroadcastTime(disc, 0); opt != -1 {
		t.Error("unreachable broadcast should report -1")
	}
	big := digraph.New(30)
	if _, err := OptimalBroadcastTime(big, 0); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, err := OptimalBroadcastTime(digraph.Circuit(3), 9); err == nil {
		t.Error("bad root accepted")
	}
}

func TestOptimalNeverExceedsGreedy(t *testing.T) {
	for _, g := range []*digraph.Digraph{
		debruijn.DeBruijn(2, 3),
		debruijn.DeBruijn(2, 4),
		debruijn.DeBruijn(3, 2),
		digraph.Circuit(9),
	} {
		greedy, optimal, err := GreedyGap(g)
		if err != nil {
			t.Fatal(err)
		}
		if optimal > greedy {
			t.Errorf("optimal %d exceeds greedy %d?!", optimal, greedy)
		}
		// The greedy heuristic should be close on these small digraphs:
		// within 50% aggregate.
		if greedy*2 > optimal*3 {
			t.Errorf("greedy %d too far above optimal %d", greedy, optimal)
		}
	}
}

func TestOptimalRespectsLogBound(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	opt, err := OptimalBroadcastTime(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt < LogLowerBound(g.N()) {
		t.Errorf("optimal %d beats the log lower bound", opt)
	}
	if opt > 3*4 {
		t.Errorf("optimal %d implausibly large for B(2,4)", opt)
	}
}
