package gossip

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

func TestBroadcastAllPortEqualsEccentricity(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 4}, {2, 6}, {3, 3}} {
		g := debruijn.DeBruijn(c.d, c.D)
		for _, root := range []int{0, 1, g.N() / 2} {
			rounds := BroadcastAllPort(g, root)
			if ecc := g.Eccentricity(root); rounds != ecc {
				t.Errorf("B(%d,%d) root %d: all-port %d rounds, eccentricity %d",
					c.d, c.D, root, rounds, ecc)
			}
		}
	}
}

func TestBroadcastAllPortUnreachable(t *testing.T) {
	g := digraph.New(3)
	g.AddArc(0, 1)
	if BroadcastAllPort(g, 0) != -1 {
		t.Error("unreachable broadcast did not report -1")
	}
}

func TestBroadcastSinglePortValidAndBounded(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 4}, {2, 6}, {2, 8}, {3, 3}} {
		g := debruijn.DeBruijn(c.d, c.D)
		s, err := BroadcastSinglePort(g, 0)
		if err != nil {
			t.Fatalf("B(%d,%d): %v", c.d, c.D, err)
		}
		if err := VerifySchedule(g, s); err != nil {
			t.Fatalf("B(%d,%d) schedule invalid: %v", c.d, c.D, err)
		}
		lower := LogLowerBound(g.N())
		if s.Length() < lower {
			t.Errorf("B(%d,%d): %d rounds beats the log lower bound %d", c.d, c.D, s.Length(), lower)
		}
		// Bermond–Fraigniaud-style upper bounds put b(B(2,D)) well under
		// 2.5(D+1); allow 3(D+1) slack for the greedy heuristic.
		if s.Length() > 3*(c.D+1) {
			t.Errorf("B(%d,%d): greedy broadcast took %d rounds (diameter %d)",
				c.d, c.D, s.Length(), c.D)
		}
	}
}

func TestBroadcastSinglePortStalls(t *testing.T) {
	g := digraph.New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 1)
	if _, err := BroadcastSinglePort(g, 0); err == nil {
		t.Error("stalled broadcast did not error")
	}
}

func TestVerifyScheduleRejects(t *testing.T) {
	g := debruijn.DeBruijn(2, 2)
	// Caller not informed.
	bad := Schedule{Root: 0, Rounds: [][]Call{{{From: 3, To: 2}}}}
	if VerifySchedule(g, bad) == nil {
		t.Error("uninformed caller accepted")
	}
	// Two calls from one node in one round.
	bad = Schedule{Root: 0, Rounds: [][]Call{{{From: 0, To: 1}}, {{From: 0, To: 0}}}}
	if VerifySchedule(g, bad) == nil {
		t.Error("re-informing accepted")
	}
	// Non-arc call.
	bad = Schedule{Root: 0, Rounds: [][]Call{{{From: 0, To: 3}}}}
	if VerifySchedule(g, bad) == nil {
		t.Error("non-arc call accepted")
	}
	// Incomplete schedule.
	bad = Schedule{Root: 0, Rounds: [][]Call{{{From: 0, To: 1}}}}
	if VerifySchedule(g, bad) == nil {
		t.Error("incomplete schedule accepted")
	}
}

func TestSinglePortDoublingRealized(t *testing.T) {
	// On the complete digraph the greedy schedule must achieve the log
	// lower bound exactly (perfect doubling).
	g := digraph.CompleteWithLoops(16)
	s, err := BroadcastSinglePort(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != LogLowerBound(16) {
		t.Errorf("complete digraph broadcast %d rounds, want %d", s.Length(), 4)
	}
}

func TestGossipAllPortEqualsDiameter(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 5}, {3, 2}} {
		g := debruijn.DeBruijn(c.d, c.D)
		if got := GossipAllPort(g); got != c.D {
			t.Errorf("B(%d,%d) gossip %d rounds, want diameter %d", c.d, c.D, got, c.D)
		}
	}
	if GossipAllPort(digraph.Circuit(6)) != 5 {
		t.Error("C6 gossip != 5")
	}
}

func TestGossipAllPortDisconnected(t *testing.T) {
	g := digraph.New(4)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(2, 3)
	g.AddArc(3, 2)
	if GossipAllPort(g) != -1 {
		t.Error("disconnected gossip did not report -1")
	}
}

func TestBroadcastTimesProfile(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	times, err := BroadcastTimes(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 16 {
		t.Fatalf("profile size %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("profile not sorted")
		}
	}
	if times[0] < LogLowerBound(16) {
		t.Errorf("best broadcast %d beats lower bound", times[0])
	}
}

func TestLogLowerBound(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := LogLowerBound(n); got != want {
			t.Errorf("LogLowerBound(%d) = %d, want %d", n, got, want)
		}
	}
}
