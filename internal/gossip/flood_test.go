package gossip

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

// Flood is the dissemination primitive of the self-healing layer, so its
// round semantics must be exact: one hop of spread per Step, agreement
// with the all-port broadcast number on live graphs, and delay-not-loss
// under transient arc failures.

// TestFloodMatchesBroadcastAllPort: on a fully live digraph, the flood
// from any origin completes in exactly BroadcastAllPort rounds — the
// origin's eccentricity.
func TestFloodMatchesBroadcastAllPort(t *testing.T) {
	for name, g := range map[string]*digraph.Digraph{
		"B(2,4)": debruijn.DeBruijn(2, 4),
		"B(3,3)": debruijn.DeBruijn(3, 3),
	} {
		for origin := 0; origin < g.N(); origin++ {
			f, err := NewFlood(g, origin)
			if err != nil {
				t.Fatalf("%s origin %d: %v", name, origin, err)
			}
			for !f.Complete() {
				if f.Step(nil) == 0 {
					t.Fatalf("%s origin %d: flood stalled at %d/%d informed", name, origin, f.Count(), g.N())
				}
			}
			if want := BroadcastAllPort(g, origin); f.Rounds() != want {
				t.Fatalf("%s origin %d: flood took %d rounds, all-port broadcast time is %d", name, origin, f.Rounds(), want)
			}
		}
	}
}

// TestFloodOneHopPerRound: on a directed path, the flood advances one
// node per round — newly informed nodes must not relay until the next
// round.
func TestFloodOneHopPerRound(t *testing.T) {
	g := digraph.New(5)
	for u := 0; u+1 < 5; u++ {
		g.AddArc(u, u+1)
	}
	f, err := NewFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 4; round++ {
		if newly := f.Step(nil); newly != 1 {
			t.Fatalf("round %d: %d newly informed, want exactly 1", round, newly)
		}
	}
	if !f.Complete() || f.Rounds() != 4 {
		t.Fatalf("path flood: complete=%v rounds=%d, want complete in 4", f.Complete(), f.Rounds())
	}
	if f.Step(nil) != 0 {
		t.Fatal("Step on a complete flood must be a no-op")
	}
}

// TestFloodTransientFaultDelaysNotLoses: blocking every arc stalls the
// flood without losing the message; once arcs come back the flood
// completes in the usual time.
func TestFloodTransientFaultDelaysNotLoses(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	f, err := NewFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocked := func(tail, index int) bool { return false }
	for i := 0; i < 5; i++ {
		if f.Step(blocked) != 0 {
			t.Fatal("blocked round informed someone")
		}
	}
	if f.Count() != 1 {
		t.Fatalf("count %d after blocked rounds, want 1", f.Count())
	}
	rounds := 0
	for !f.Complete() {
		if f.Step(nil) == 0 {
			t.Fatal("flood stalled on live digraph")
		}
		rounds++
	}
	if want := BroadcastAllPort(g, 0); rounds != want {
		t.Fatalf("post-block spread took %d rounds, want %d", rounds, want)
	}
}

// TestFloodMark: out-of-band knowledge joins the flood as a relay on
// the next round.
func TestFloodMark(t *testing.T) {
	g := digraph.New(4) // two disconnected pairs: 0→1, 2→3
	g.AddArc(0, 1)
	g.AddArc(2, 3)
	f, err := NewFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Step(nil)
	if f.Informed(3) || f.Count() != 2 {
		t.Fatalf("count %d informed(3)=%v before Mark", f.Count(), f.Informed(3))
	}
	f.Mark(2)
	f.Mark(2) // idempotent
	f.Mark(-1)
	f.Mark(99)
	if f.Count() != 3 {
		t.Fatalf("count %d after Mark(2), want 3", f.Count())
	}
	f.Step(nil)
	if !f.Complete() {
		t.Fatal("marked node 2 did not relay to 3")
	}
}

// TestFloodOriginOutOfRange: bad origins are rejected.
func TestFloodOriginOutOfRange(t *testing.T) {
	g := debruijn.DeBruijn(2, 2)
	for _, origin := range []int{-1, g.N()} {
		if _, err := NewFlood(g, origin); err == nil {
			t.Fatalf("NewFlood accepted origin %d", origin)
		}
	}
}
