package otis

import (
	"reflect"
	"testing"
)

func TestParallelSearchMatchesSequential(t *testing.T) {
	seq := SearchDegreeDiameter(2, 8, 253, 511)
	for _, workers := range []int{1, 2, 4, 0} {
		par := SearchDegreeDiameterParallel(2, 8, 253, 511, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: parallel search diverged", workers)
		}
	}
}

func TestParallelSearchEmptyRange(t *testing.T) {
	if rows := SearchDegreeDiameterParallel(2, 8, 600, 500, 4); rows != nil {
		t.Errorf("inverted range returned %v", rows)
	}
}

func BenchmarkSearchSequentialD9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(SearchDegreeDiameter(2, 9, 509, 1023)) != 9 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkSearchParallelD9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(SearchDegreeDiameterParallel(2, 9, 509, 1023, 0)) != 9 {
			b.Fatal("bad row count")
		}
	}
}
