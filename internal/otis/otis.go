// Package otis models the Optical Transpose Interconnection System
// (OTIS) architecture of Marsden, Marchand, Harvey and Esener, and the
// digraphs H(p, q, d) it realizes, following Section 4 of Coudert,
// Ferreira, Pérennes, "De Bruijn Isomorphisms and Free Space Optical
// Networks" (IPDPS 2000).
//
// OTIS(p, q) optically connects p groups of q transmitters to q groups of
// p receivers through p + q lenses: transmitter (i, j) reaches receiver
// (q-j-1, p-i-1). Given a degree d dividing pq, grouping consecutive
// transceivers by d yields the d-regular digraph H(p, q, d) on
// n = pq/d processing nodes (Section 4.2). The package provides the
// layout-existence criteria of Corollaries 4.2–4.6 and the exhaustive
// degree–diameter search behind Table 1.
package otis

import (
	"fmt"

	"repro/internal/digraph"
)

// System describes an OTIS(p, q) free-space optical interconnect.
type System struct {
	P int // number of transmitter groups (= lenses on the transmitter side)
	Q int // transmitters per group (= lenses on the receiver side)
}

// NewSystem validates p, q ≥ 1 and returns the system.
func NewSystem(p, q int) (System, error) {
	if p < 1 || q < 1 {
		return System{}, fmt.Errorf("otis: need p, q >= 1, got (%d,%d)", p, q)
	}
	return System{P: p, Q: q}, nil
}

// Lenses returns the lens count p + q, the hardware cost the paper
// minimizes (two lenslet arrays of p and q lenses).
func (s System) Lenses() int { return s.P + s.Q }

// Transceivers returns the number of transmitter (equivalently receiver)
// units, m = pq.
func (s System) Transceivers() int { return s.P * s.Q }

// Receiver returns the receiver (group, index) reached by transmitter
// (i, j): the optical transpose (q-j-1, p-i-1).
func (s System) Receiver(i, j int) (ri, rj int) {
	if i < 0 || i >= s.P || j < 0 || j >= s.Q {
		panic(fmt.Sprintf("otis: transmitter (%d,%d) out of OTIS(%d,%d)", i, j, s.P, s.Q))
	}
	return s.Q - j - 1, s.P - i - 1
}

// Transmitter returns the transmitter (group, index) reaching receiver
// (ri, rj) — the inverse transpose.
func (s System) Transmitter(ri, rj int) (i, j int) {
	if ri < 0 || ri >= s.Q || rj < 0 || rj >= s.P {
		panic(fmt.Sprintf("otis: receiver (%d,%d) out of OTIS(%d,%d)", ri, rj, s.P, s.Q))
	}
	return s.P - rj - 1, s.Q - ri - 1
}

// TransmitterID returns the global transmitter number t = i·q + j.
func (s System) TransmitterID(i, j int) int { return i*s.Q + j }

// ReceiverID returns the global receiver number r = ri·p + rj.
func (s System) ReceiverID(ri, rj int) int { return ri*s.P + rj }

// ConnectionID returns the global receiver number reached by global
// transmitter t.
func (s System) ConnectionID(t int) int {
	i, j := t/s.Q, t%s.Q
	ri, rj := s.Receiver(i, j)
	return s.ReceiverID(ri, rj)
}

// H returns the d-regular digraph H(p, q, d) realized by OTIS(p, q) when
// each processing node owns d consecutive transmitters and d consecutive
// receivers (Section 4.2): node u ∈ Z_n (n = pq/d) has transmitters
// du+β and receivers du+β for β ∈ Z_d, and u → v iff some transmitter of
// u reaches some receiver of v. Out-neighbour β of u is listed at
// adjacency position β. Errors if d does not divide pq.
func H(p, q, d int) (*digraph.Digraph, error) {
	s, err := NewSystem(p, q)
	if err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("otis: degree %d < 1", d)
	}
	m := p * q
	if m%d != 0 {
		return nil, fmt.Errorf("otis: degree %d does not divide pq = %d", d, m)
	}
	n := m / d
	g := digraph.FromFunc(n, func(u int) []int {
		out := make([]int, d)
		for beta := 0; beta < d; beta++ {
			t := d*u + beta
			out[beta] = s.ConnectionID(t) / d
		}
		return out
	})
	return g, nil
}

// MustH is H panicking on error, for fixtures and tables.
func MustH(p, q, d int) *digraph.Digraph {
	g, err := H(p, q, d)
	if err != nil {
		//lint:ignore panicstyle the error from H already carries the "otis: " prefix
		panic(err)
	}
	return g
}

// NodeOfTransmitter returns the node owning global transmitter t.
func NodeOfTransmitter(t, d int) int { return t / d }

// NodeTransmitters returns the positions (group, index) of node u's d
// transmitters in OTIS(p, q), as the paper writes them:
// (⌊(du+β)/q⌋, (du+β) mod q) for β ∈ Z_d.
func (s System) NodeTransmitters(u, d int) [][2]int {
	out := make([][2]int, d)
	for beta := 0; beta < d; beta++ {
		t := d*u + beta
		out[beta] = [2]int{t / s.Q, t % s.Q}
	}
	return out
}

// NodeReceivers returns the positions (group, index) of node u's d
// receivers: (⌊(du+β)/p⌋, (du+β) mod p) for β ∈ Z_d.
func (s System) NodeReceivers(u, d int) [][2]int {
	out := make([][2]int, d)
	for beta := 0; beta < d; beta++ {
		r := d*u + beta
		out[beta] = [2]int{r / s.P, r % s.P}
	}
	return out
}
