package otis

import "testing"

// The B(3,4) optimal layout, OTIS(9,27) ⊢ B(3,4): the fixture of claim
// X-FAULT and of the examples.
func layout34(t *testing.T) Layout {
	t.Helper()
	l, ok := OptimalLayout(3, 4)
	if !ok {
		t.Fatal("OptimalLayout(3,4) not found")
	}
	if l.P() != 9 || l.Q() != 27 {
		t.Fatalf("OptimalLayout(3,4) = OTIS(%d,%d), want OTIS(9,27)", l.P(), l.Q())
	}
	return l
}

// Every arc of H traverses exactly one transmitter lens and exactly one
// receiver lens, so each lens array partitions the arc set.
func TestLensArcsPartition(t *testing.T) {
	l := layout34(t)
	s := l.System()
	d := l.Degree
	n := l.Nodes()

	count := func(first, last int) map[[2]int]int {
		seen := map[[2]int]int{}
		for lens := first; lens < last; lens++ {
			arcs, err := l.LensArcs(lens)
			if err != nil {
				t.Fatalf("LensArcs(%d): %v", lens, err)
			}
			for _, a := range arcs {
				seen[a]++
			}
		}
		return seen
	}
	check := func(side string, seen map[[2]int]int) {
		if len(seen) != n*d {
			t.Fatalf("%s lenses cover %d distinct arcs, want %d", side, len(seen), n*d)
		}
		for u := 0; u < n; u++ {
			for k := 0; k < d; k++ {
				if seen[[2]int{u, k}] != 1 {
					t.Fatalf("%s lenses cover arc (%d,%d) %d times, want 1",
						side, u, k, seen[[2]int{u, k}])
				}
			}
		}
	}
	check("transmitter", count(0, s.P))
	check("receiver", count(s.P, s.P+s.Q))
}

// A transmitter lens of OTIS(9,27) ⊢ B(3,4) carries the complete out-arc
// sets of q/d = 9 consecutive nodes; a receiver lens the complete in-arc
// sets of p/d = 3 nodes. LensShadow names exactly those nodes, and the
// arc group agrees with the physical digraph H.
func TestLensShadow(t *testing.T) {
	l := layout34(t)
	s := l.System()
	d := l.Degree
	g := MustH(s.P, s.Q, d)

	for lens := 0; lens < s.P; lens++ {
		out, in, err := l.LensShadow(lens)
		if err != nil {
			t.Fatalf("LensShadow(%d): %v", lens, err)
		}
		if len(in) != 0 {
			t.Fatalf("transmitter lens %d silences in-arcs of %v", lens, in)
		}
		if len(out) != s.Q/d {
			t.Fatalf("transmitter lens %d silences %d nodes, want %d", lens, len(out), s.Q/d)
		}
		for i, u := range out {
			if want := lens*s.Q/d + i; u != want {
				t.Fatalf("transmitter lens %d shadow[%d] = %d, want %d", lens, i, u, want)
			}
		}
		// The arc group is exactly the out-arcs of the shadowed nodes.
		arcs, err := l.LensArcs(lens)
		if err != nil {
			t.Fatal(err)
		}
		tails := map[int]int{}
		for _, a := range arcs {
			tails[a[0]]++
		}
		for _, u := range out {
			if tails[u] != d {
				t.Fatalf("transmitter lens %d carries %d arcs of node %d, want %d",
					lens, tails[u], u, d)
			}
		}
	}

	for ri := 0; ri < s.Q; ri++ {
		lens := s.P + ri
		out, in, err := l.LensShadow(lens)
		if err != nil {
			t.Fatalf("LensShadow(%d): %v", lens, err)
		}
		if len(out) != 0 {
			t.Fatalf("receiver lens %d silences out-arcs of %v", ri, out)
		}
		if len(in) != s.P/d {
			t.Fatalf("receiver lens %d silences %d nodes, want %d", ri, len(in), s.P/d)
		}
		for i, v := range in {
			if want := ri*s.P/d + i; v != want {
				t.Fatalf("receiver lens %d shadow[%d] = %d, want %d", ri, i, v, want)
			}
		}
		// Every arc of the group lands at a shadowed node, and the group
		// holds all d in-arcs of each: the complete in-arc sets.
		arcs, err := l.LensArcs(lens)
		if err != nil {
			t.Fatal(err)
		}
		heads := map[int]int{}
		for _, a := range arcs {
			heads[g.Out(a[0])[a[1]]]++
		}
		if len(heads) != len(in) {
			t.Fatalf("receiver lens %d arcs land at %d nodes, want %d", ri, len(heads), len(in))
		}
		for _, v := range in {
			if heads[v] != d {
				t.Fatalf("receiver lens %d carries %d in-arcs of node %d, want %d",
					ri, heads[v], v, d)
			}
		}
	}
}

func TestLensArcsErrors(t *testing.T) {
	l := layout34(t)
	s := l.System()
	if _, err := l.LensArcs(-1); err == nil {
		t.Error("LensArcs(-1) accepted")
	}
	if _, err := l.LensArcs(s.P + s.Q); err == nil {
		t.Error("LensArcs(P+Q) accepted")
	}
	if _, _, err := l.LensShadow(-1); err == nil {
		t.Error("LensShadow(-1) accepted")
	}
	if _, _, err := l.LensShadow(s.P + s.Q); err == nil {
		t.Error("LensShadow(P+Q) accepted")
	}
	if _, err := s.TransmitterLensArcs(0, 5); err == nil {
		t.Error("TransmitterLensArcs with non-dividing degree accepted")
	}
	if _, err := s.ReceiverLensArcs(0, 5); err == nil {
		t.Error("ReceiverLensArcs with non-dividing degree accepted")
	}
	if _, err := s.TransmitterLensArcs(s.P, 3); err == nil {
		t.Error("TransmitterLensArcs out-of-range lens accepted")
	}
	if _, err := s.ReceiverLensArcs(s.Q, 3); err == nil {
		t.Error("ReceiverLensArcs out-of-range lens accepted")
	}
}
