package otis

import (
	"testing"
)

// A structural observation extracted from reproducing Table 1: beyond the
// consecutive block ending at n = 2^D, the qualifying node counts are
// exactly the family n = 2^a(2^b+1) with a+b = D, a >= 0 and b odd — these are
// the Imase–Itoh digraphs II(2, n) (realized as H(2, n, 2)) that keep
// diameter D past the de Bruijn order. b = 1 gives the Kautz digraph
// 2^{D-1}·3, the family's largest member and Table 1's last row.
func TestTable1FamilyPattern(t *testing.T) {
	for _, D := range []int{8, 9, 10} {
		for a := 0; a < D; a++ {
			b := D - a
			n := (1 << uint(a)) * ((1 << uint(b)) + 1)
			got := hasExactDiameter(2, D, 2, n)
			want := b%2 == 1
			if got != want {
				t.Errorf("D=%d: n = 2^%d(2^%d+1) = %d: diameter-%d layout %v, want %v",
					D, a, b, n, D, got, want)
			}
		}
	}
}

// The family members really are Imase–Itoh digraphs: H(2, n, 2) = II(2, n).
func TestTable1FamilyIsImaseItoh(t *testing.T) {
	for _, n := range []int{258, 264, 288, 384, 516, 528, 576, 768} {
		if err := VerifyIILayout(2, n); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}
