package otis

import (
	"fmt"
	"sort"
)

// Lens fault groups. Each beam of OTIS(p, q) traverses exactly two
// lenses: transmitter-side lens i (one of p, imaging transmitter group
// i) and receiver-side lens ri (one of q, imaging receiver group ri).
// A lens that fails — misaligned, occluded, delaminated — therefore
// kills a *structured group* of arcs of H(p, q, d) at once, not an
// isolated link ("OTIS Layouts of De Bruijn Digraphs", Wu & Deng). These
// functions compute the group, as (node, adjacency-position) pairs in
// the physical H digraph, for the runtime fault engine in simnet.
//
// The group structure is brutal by design and worth stating: when d
// divides q (always true in a power-of-d layout), the q transmitters
// under one transmitter lens are the *complete* out-arc sets of q/d
// consecutive nodes — those nodes are silenced as senders. Dually a
// receiver lens silences p/d consecutive nodes as receivers. The
// simulator's job is not to route around the silenced block (no route
// exists) but to keep everyone else at full service, which the d−1
// arc-disjoint redundancy delivers.

// TransmitterLensArcs returns the arcs of H(p, q, d) carried by
// transmitter-side lens i (0 <= i < p): the arcs whose beams originate
// from transmitter group i. Each arc is (tail node, adjacency position).
func (s System) TransmitterLensArcs(lens, d int) ([][2]int, error) {
	if lens < 0 || lens >= s.P {
		return nil, fmt.Errorf("otis: transmitter lens %d out of [0,%d)", lens, s.P)
	}
	if err := s.checkDegree(d); err != nil {
		return nil, err
	}
	arcs := make([][2]int, 0, s.Q)
	for j := 0; j < s.Q; j++ {
		t := s.TransmitterID(lens, j)
		arcs = append(arcs, [2]int{t / d, t % d})
	}
	return arcs, nil
}

// ReceiverLensArcs returns the arcs of H(p, q, d) carried by
// receiver-side lens ri (0 <= ri < q): the arcs whose beams land in
// receiver group ri. Each arc is (tail node, adjacency position).
func (s System) ReceiverLensArcs(lens, d int) ([][2]int, error) {
	if lens < 0 || lens >= s.Q {
		return nil, fmt.Errorf("otis: receiver lens %d out of [0,%d)", lens, s.Q)
	}
	if err := s.checkDegree(d); err != nil {
		return nil, err
	}
	arcs := make([][2]int, 0, s.P)
	for rj := 0; rj < s.P; rj++ {
		i, j := s.Transmitter(lens, rj)
		t := s.TransmitterID(i, j)
		arcs = append(arcs, [2]int{t / d, t % d})
	}
	return arcs, nil
}

func (s System) checkDegree(d int) error {
	if d < 1 || (s.P*s.Q)%d != 0 {
		return fmt.Errorf("otis: degree %d does not divide pq = %d", d, s.P*s.Q)
	}
	return nil
}

// LensArcs returns the arc group of lens number `lens` of the layout's
// OTIS system, under the convention that lenses 0..P-1 are the
// transmitter-side array and P..P+Q-1 the receiver-side array (P + Q =
// Lenses()). Arcs are (tail node, adjacency position) in the physical
// digraph H(P, Q, d).
func (l Layout) LensArcs(lens int) ([][2]int, error) {
	s := l.System()
	if lens < 0 || lens >= s.P+s.Q {
		return nil, fmt.Errorf("otis: lens %d out of [0,%d)", lens, s.P+s.Q)
	}
	if lens < s.P {
		return s.TransmitterLensArcs(lens, l.Degree)
	}
	return s.ReceiverLensArcs(lens-s.P, l.Degree)
}

// LensShadow returns the physical nodes fully silenced by a lens fault:
// silencedOut lists nodes losing every out-arc (transmitter-side lens),
// silencedIn nodes losing every in-arc (receiver-side lens). Nodes only
// partially affected (possible when d does not divide the group size)
// appear in neither list.
func (l Layout) LensShadow(lens int) (silencedOut, silencedIn []int, err error) {
	s := l.System()
	d := l.Degree
	if lens < 0 || lens >= s.P+s.Q {
		return nil, nil, fmt.Errorf("otis: lens %d out of [0,%d)", lens, s.P+s.Q)
	}
	if lens < s.P {
		// Transmitter lens: node u is silenced when all d of its
		// transmitters sit under this lens.
		hit := map[int]int{}
		for j := 0; j < s.Q; j++ {
			hit[s.TransmitterID(lens, j)/d]++
		}
		for u, c := range hit {
			if c >= d {
				silencedOut = append(silencedOut, u)
			}
		}
		sort.Ints(silencedOut)
		return silencedOut, nil, nil
	}
	// Receiver lens: node v is silenced when all d of its receivers sit
	// under this lens.
	ri := lens - s.P
	hit := map[int]int{}
	for rj := 0; rj < s.P; rj++ {
		hit[s.ReceiverID(ri, rj)/d]++
	}
	for v, c := range hit {
		if c >= d {
			silencedIn = append(silencedIn, v)
		}
	}
	sort.Ints(silencedIn)
	return nil, silencedIn, nil
}
