package otis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/word"
)

// Catalog: a structural survey of every power-of-d OTIS digraph of a
// given degree up to a dimension bound — what each OTIS(d^p', d^q')
// physically realizes. It generalizes Table 1's question ("which are
// largest at a diameter?") to "what does each one build?": a de Bruijn
// digraph when the Proposition 4.1 permutation is cyclic, a stack of
// circuit ⊗ de Bruijn networks otherwise.

// CatalogEntry describes one H(d^p', d^q', d).
type CatalogEntry struct {
	Degree         int // d
	PPrime, QPrime int
	D              int  // dimension p'+q'-1
	Nodes          int  // d^D
	Lenses         int  // d^p' + d^q'
	IsDeBruijn     bool // Corollary 4.2
	// Components counts the weak components (1 when IsDeBruijn).
	Components int
	// Structure renders what the hardware realizes, e.g. "B(2,8)" or
	// "2×(C_2⊗B(d,2)) + 10×(C_6⊗B(d,2))".
	Structure string
}

// String renders one catalog line.
func (e CatalogEntry) String() string {
	return fmt.Sprintf("OTIS(%d,%d)  n=%d lenses=%d  %s",
		word.Pow(e.Degree, e.PPrime), word.Pow(e.Degree, e.QPrime),
		e.Nodes, e.Lenses, e.Structure)
}

// Catalog enumerates every split p' + q' - 1 = D for D in [1, maxD],
// sorted by (D, p').
func Catalog(d, maxD int) []CatalogEntry {
	var entries []CatalogEntry
	for D := 1; D <= maxD; D++ {
		for pPrime := 1; pPrime <= D; pPrime++ {
			qPrime := D + 1 - pPrime
			e := CatalogEntry{
				Degree: d,
				PPrime: pPrime,
				QPrime: qPrime,
				D:      D,
				Nodes:  word.Pow(d, D),
				Lenses: word.Pow(d, pPrime) + word.Pow(d, qPrime),
			}
			if IsDeBruijnLayout(pPrime, qPrime) {
				e.IsDeBruijn = true
				e.Components = 1
				e.Structure = fmt.Sprintf("B(%d,%d)", d, D)
			} else {
				stacks := RealizedStructure(d, pPrime, qPrime)
				parts := make([]string, len(stacks))
				total := 0
				for i, s := range stacks {
					parts[i] = s.String()
					total += s.Copies
				}
				e.Components = total
				e.Structure = strings.Join(parts, " + ")
			}
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].D != entries[j].D {
			return entries[i].D < entries[j].D
		}
		return entries[i].PPrime < entries[j].PPrime
	})
	return entries
}

// CatalogSummary aggregates a catalog: how many splits realize the
// de Bruijn digraph per dimension, matching the (D-1)-out-of-D pattern
// predicted by Corollary 4.2 for prime... measured, not assumed.
func CatalogSummary(entries []CatalogEntry) map[int][2]int {
	out := map[int][2]int{}
	for _, e := range entries {
		c := out[e.D]
		c[1]++
		if e.IsDeBruijn {
			c[0]++
		}
		out[e.D] = c
	}
	return out
}
