package otis

import (
	"strings"
	"testing"

	"repro/internal/word"
)

func TestCatalogShape(t *testing.T) {
	entries := Catalog(2, 5)
	// Splits per dimension: D of them → 1+2+3+4+5 = 15.
	if len(entries) != 15 {
		t.Fatalf("%d entries, want 15", len(entries))
	}
	for _, e := range entries {
		if e.PPrime+e.QPrime-1 != e.D {
			t.Fatalf("split arithmetic wrong: %+v", e)
		}
		if e.Nodes != word.Pow(2, e.D) {
			t.Fatalf("node count wrong: %+v", e)
		}
		if e.Structure == "" || e.Components < 1 {
			t.Fatalf("structure missing: %+v", e)
		}
		if e.IsDeBruijn != (e.Components == 1 && strings.HasPrefix(e.Structure, "B(")) {
			t.Fatalf("inconsistent entry: %+v", e)
		}
	}
}

func TestCatalogAgainstCriterion(t *testing.T) {
	for _, e := range Catalog(2, 6) {
		if e.IsDeBruijn != IsDeBruijnLayout(e.PPrime, e.QPrime) {
			t.Errorf("catalog disagrees with Corollary 4.2 at (%d,%d)", e.PPrime, e.QPrime)
		}
	}
}

func TestCatalogVertexAccounting(t *testing.T) {
	// Non-de Bruijn entries: component structure accounts for all nodes.
	for _, e := range Catalog(2, 6) {
		if e.IsDeBruijn {
			continue
		}
		stacks := RealizedStructure(2, e.PPrime, e.QPrime)
		total := 0
		for _, s := range stacks {
			total += s.Copies * s.CircuitLen * word.Pow(2, s.DeBruijnDim)
		}
		if total != e.Nodes {
			t.Errorf("(%d,%d): stacks cover %d of %d nodes", e.PPrime, e.QPrime, total, e.Nodes)
		}
	}
}

func TestCatalogSummary(t *testing.T) {
	entries := Catalog(2, 6)
	summary := CatalogSummary(entries)
	// D=6: splits (1,6),(2,5),(3,4),(4,3),(5,2),(6,1); Corollary 4.4
	// guarantees (3,4); how many in total is measured.
	c := summary[6]
	if c[1] != 6 {
		t.Fatalf("D=6 has %d splits", c[1])
	}
	if c[0] < 1 || c[0] > 6 {
		t.Fatalf("D=6 de Bruijn count %d out of range", c[0])
	}
	// D=1 single split always works.
	if summary[1] != [2]int{1, 1} {
		t.Errorf("D=1 summary %v", summary[1])
	}
}

func TestCatalogEntryString(t *testing.T) {
	entries := Catalog(2, 2)
	found := false
	for _, e := range entries {
		if strings.Contains(e.String(), "OTIS(") && strings.Contains(e.String(), "lenses=") {
			found = true
		}
	}
	if !found {
		t.Error("catalog strings malformed")
	}
}
