package otis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/word"
)

// The degree–diameter problem for OTIS layouts (Section 4.3, Table 1):
// for fixed degree d and diameter D, find the largest n such that some
// H(p, q, d) with pq = dn has diameter D. The paper reports the results of
// an exhaustive search for d = 2 and D ∈ {8, 9, 10}; SearchDegreeDiameter
// reruns that search.

// TableRow is one line of Table 1: a node count and every (p, q) split
// (p ≤ q) for which H(p, q, d) achieves the target diameter.
type TableRow struct {
	N     int      // number of nodes
	Pairs [][2]int // (p, q) splits, p ≤ q, ordered by p
	Note  string   // "B(d,D)" or "K(d,D)" when n matches those orders
}

// String renders the row roughly as in the paper: "256  2 256 | 4 128 | 16 32  B(2,8)".
func (r TableRow) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d  ", r.N)
	for i, pq := range r.Pairs {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%d %d", pq[0], pq[1])
	}
	if r.Note != "" {
		fmt.Fprintf(&b, "  %s", r.Note)
	}
	return b.String()
}

// SearchDegreeDiameter enumerates, for every n in [minN, maxN], the splits
// (p, q) with pq = dn and p ≤ q such that H(p, q, d) has diameter exactly
// diam, returning one TableRow per qualifying n in increasing order.
// Rows are annotated when n equals the de Bruijn order d^diam or the Kautz
// order d^{diam-1}(d+1).
func SearchDegreeDiameter(d, diam, minN, maxN int) []TableRow {
	var rows []TableRow
	for n := minN; n <= maxN; n++ {
		pairs := splitsWithDiameter(d, diam, n)
		if len(pairs) == 0 {
			continue
		}
		row := TableRow{N: n, Pairs: pairs}
		annotate(&row, d, diam)
		rows = append(rows, row)
	}
	return rows
}

// annotate marks rows whose node count is the de Bruijn or Kautz order.
func annotate(row *TableRow, d, diam int) {
	if row.N == word.Pow(d, diam) {
		row.Note = fmt.Sprintf("B(%d,%d)", d, diam)
	}
	if row.N == debruijn.KautzOrder(d, diam) {
		row.Note = fmt.Sprintf("K(%d,%d)", d, diam)
	}
}

// LargestWithDiameter returns the largest n ≤ maxN admitting an
// OTIS-realizable digraph H(p, q, d) of diameter exactly diam, and that
// row; ok is false if none exists in range. Passing maxN at least the
// Moore bound makes the answer unconditional, since no digraph of degree d
// and diameter diam exceeds the Moore bound.
func LargestWithDiameter(d, diam, maxN int) (TableRow, bool) {
	for n := maxN; n >= 1; n-- {
		pairs := splitsWithDiameter(d, diam, n)
		if len(pairs) != 0 {
			row := TableRow{N: n, Pairs: pairs}
			if n == debruijn.KautzOrder(d, diam) {
				row.Note = fmt.Sprintf("K(%d,%d)", d, diam)
			}
			return row, true
		}
	}
	return TableRow{}, false
}

// splitsWithDiameter returns the (p, q) splits, p ≤ q, pq = dn, for which
// H(p, q, d) has diameter exactly diam.
func splitsWithDiameter(d, diam, n int) [][2]int {
	m := d * n
	var pairs [][2]int
	for p := 1; p*p <= m; p++ {
		if m%p != 0 {
			continue
		}
		q := m / p
		if hasExactDiameter(d, diam, p, q) {
			pairs = append(pairs, [2]int{p, q})
		}
	}
	sort.Slice(pairs, func(i, k int) bool { return pairs[i][0] < pairs[k][0] })
	return pairs
}

func hasExactDiameter(d, diam, p, q int) bool {
	g, err := H(p, q, d)
	if err != nil {
		return false
	}
	// DiameterAtMost aborts on the first too-eccentric vertex, which
	// rejects the vast majority of candidates after a single BFS.
	return g.DiameterAtMost(diam) && !g.DiameterAtMost(diam-1)
}

// VerifyIILayout checks the result of [14] recalled in Section 4.2:
// H(d, n, d) is exactly II(d, n) as a labelled digraph, so the Imase–Itoh
// digraph (and with it the de Bruijn and Kautz digraphs, by Proposition
// 3.3 and [21]) has an OTIS(d, n)-layout with d + n lenses.
func VerifyIILayout(d, n int) error {
	h, err := H(d, n, d)
	if err != nil {
		return err
	}
	if !h.Equal(debruijn.ImaseItoh(d, n)) {
		return fmt.Errorf("otis: H(%d,%d,%d) differs from II(%d,%d)", d, n, d, d, n)
	}
	return nil
}

// ReverseLayout checks the remark of Section 4.2: if G has an
// OTIS(p, q)-layout then the reverse digraph G⁻ has an OTIS(q, p)-layout.
// It reports whether H(q, p, d) equals the reverse of H(p, q, d) up to
// isomorphism (checked with the generic matcher, so keep instances small).
func ReverseLayout(p, q, d int) (bool, error) {
	g, err := H(p, q, d)
	if err != nil {
		return false, err
	}
	rg, err := H(q, p, d)
	if err != nil {
		return false, err
	}
	_, ok := digraph.FindIsomorphism(g.Reverse(), rg)
	return ok, nil
}
