package otis

import (
	"fmt"

	"repro/internal/alpha"
	"repro/internal/perm"
	"repro/internal/word"
)

// De Bruijn layouts on OTIS: Proposition 4.1, Corollaries 4.2–4.6.

// IndexPermutation returns the permutation f of Z_D (D = p' + q' - 1) from
// Proposition 4.1, for which H(d^p', d^q', d) = A(f, C, p'-1):
//
//	f(i) = i + p'          if i < q' - 1
//	     = p' - 1          if i = q' - 1
//	     = i + p' - 1 mod D otherwise.
func IndexPermutation(pPrime, qPrime int) perm.Perm {
	if pPrime < 1 || qPrime < 1 {
		panic("otis: need p', q' >= 1")
	}
	D := pPrime + qPrime - 1
	return perm.MustFromFunc(D, func(i int) int {
		switch {
		case i < qPrime-1:
			return i + pPrime
		case i == qPrime-1:
			return pPrime - 1
		default:
			return (i + pPrime - 1) % D
		}
	})
}

// AlphaForLayout returns the alphabet digraph A(f, C, p'-1) that
// Proposition 4.1 proves equal to H(d^p', d^q', d).
func AlphaForLayout(d, pPrime, qPrime int) *alpha.Alpha {
	f := IndexPermutation(pPrime, qPrime)
	return alpha.MustNew(f, perm.Complement(d), pPrime-1)
}

// IsDeBruijnLayout reports whether H(d^p', d^q', d) is isomorphic to
// B(d, D), D = p' + q' - 1 (Corollary 4.2): exactly when the Proposition
// 4.1 permutation is cyclic. This is the O(D) verification of
// Corollary 4.5 — no digraph is materialized.
func IsDeBruijnLayout(pPrime, qPrime int) bool {
	return IndexPermutation(pPrime, qPrime).IsCyclic()
}

// LayoutWitness returns the isomorphism from H(d^p', d^q', d) onto
// B(d, D) as a vertex mapping, combining Proposition 4.1 (H = A(f, C,
// p'-1) on identical labels) with the Proposition 3.9 witness. Errors when
// the layout criterion fails.
func LayoutWitness(d, pPrime, qPrime int) ([]int, error) {
	a := AlphaForLayout(d, pPrime, qPrime)
	mapping, err := a.IsoToDeBruijn()
	if err != nil {
		return nil, fmt.Errorf("otis: H(%d^%d, %d^%d, %d) is not a de Bruijn layout: %w",
			d, pPrime, d, qPrime, d, err)
	}
	return mapping, nil
}

// Layout describes an OTIS realization of B(d, D).
type Layout struct {
	Degree int // d
	Diam   int // diameter D of the realized de Bruijn digraph
	PPrime int // p = d^PPrime transmitter groups
	QPrime int // q = d^QPrime transmitters per group
}

// P returns the transmitter-group count p = d^p'.
func (l Layout) P() int { return word.Pow(l.Degree, l.PPrime) }

// Q returns the per-group transmitter count q = d^q'.
func (l Layout) Q() int { return word.Pow(l.Degree, l.QPrime) }

// Lenses returns p + q.
func (l Layout) Lenses() int { return l.P() + l.Q() }

// Nodes returns n = d^Diam.
func (l Layout) Nodes() int { return word.Pow(l.Degree, l.Diam) }

// System returns the OTIS(p, q) system of the layout.
func (l Layout) System() System { return System{P: l.P(), Q: l.Q()} }

// String renders e.g. "OTIS(16,32) ⊢ B(2,8), 48 lenses".
func (l Layout) String() string {
	return fmt.Sprintf("OTIS(%d,%d) ⊢ B(%d,%d), %d lenses", l.P(), l.Q(), l.Degree, l.Diam, l.Lenses())
}

// OptimalLayout returns the OTIS layout of B(d, D) minimizing the lens
// count p + q over all splits p = d^p', q = d^q' with p' + q' - 1 = D
// (Corollary 4.6, an O(D²) procedure using the O(D) check of Corollary
// 4.5). ok is false when no split yields a de Bruijn layout.
//
// For even D the optimum is always p' = D/2, q' = D/2 + 1 (Corollary 4.4),
// giving p + q = Θ(√n) lenses. For odd D > 1, p' = q' is impossible
// (Proposition 4.3) and the balanced-most cyclic split wins when one
// exists.
func OptimalLayout(d, D int) (Layout, bool) {
	if d < 2 || D < 1 {
		return Layout{}, false
	}
	best := Layout{}
	found := false
	for pPrime := 1; pPrime <= D; pPrime++ {
		qPrime := D + 1 - pPrime
		if qPrime < 1 {
			continue
		}
		if !IsDeBruijnLayout(pPrime, qPrime) {
			continue
		}
		cand := Layout{Degree: d, Diam: D, PPrime: pPrime, QPrime: qPrime}
		// With p' + q' fixed, d^p' + d^q' is minimized by the most
		// balanced split, so compare max(p', q') instead of materializing
		// the (possibly huge) powers; tie-break on p' ≤ q', the paper's
		// w.l.o.g. orientation.
		if !found || maxInt(cand.PPrime, cand.QPrime) < maxInt(best.PPrime, best.QPrime) ||
			(maxInt(cand.PPrime, cand.QPrime) == maxInt(best.PPrime, best.QPrime) &&
				cand.PPrime < best.PPrime) {
			best = cand
			found = true
		}
	}
	return best, found
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MinimizeLenses returns the minimum lens count of an OTIS layout of
// B(d, D) over power-of-d splits, with the achieving split.
func MinimizeLenses(d, D int) (pPrime, qPrime, lenses int, ok bool) {
	l, found := OptimalLayout(d, D)
	if !found {
		return 0, 0, 0, false
	}
	return l.PPrime, l.QPrime, l.Lenses(), true
}

// IILayoutLenses returns the lens count of the Imase–Itoh-derived layout
// of [14], OTIS(d, n): d + n = O(n) lenses. It is the baseline the
// Θ(√n) result of Corollary 4.4 improves on.
func IILayoutLenses(d, n int) int { return d + n }
