package otis

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/word"
)

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(0, 3); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewSystem(3, -1); err == nil {
		t.Error("q<0 accepted")
	}
	s, err := NewSystem(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lenses() != 9 || s.Transceivers() != 18 {
		t.Error("lens/transceiver counts wrong")
	}
}

func TestTransposeRule(t *testing.T) {
	// Transmitter (i,j) → receiver (q-j-1, p-i-1).
	s := System{P: 3, Q: 6}
	cases := []struct{ i, j, ri, rj int }{
		{0, 0, 5, 2},
		{0, 5, 0, 2},
		{2, 0, 5, 0},
		{1, 3, 2, 1},
	}
	for _, c := range cases {
		ri, rj := s.Receiver(c.i, c.j)
		if ri != c.ri || rj != c.rj {
			t.Errorf("Receiver(%d,%d) = (%d,%d), want (%d,%d)", c.i, c.j, ri, rj, c.ri, c.rj)
		}
		// Inverse.
		i, j := s.Transmitter(ri, rj)
		if i != c.i || j != c.j {
			t.Errorf("Transmitter(%d,%d) = (%d,%d), want (%d,%d)", ri, rj, i, j, c.i, c.j)
		}
	}
}

func TestTransposeIsBijection(t *testing.T) {
	// Figure 6: OTIS(3,6) is a one-to-one map from 18 transmitters onto
	// 18 receivers.
	s := System{P: 3, Q: 6}
	seen := make(map[int]bool)
	for t1 := 0; t1 < s.Transceivers(); t1++ {
		r := s.ConnectionID(t1)
		if r < 0 || r >= s.Transceivers() {
			t.Fatalf("receiver id %d out of range", r)
		}
		if seen[r] {
			t.Fatalf("receiver %d hit twice", r)
		}
		seen[r] = true
	}
}

func TestHValidation(t *testing.T) {
	if _, err := H(3, 5, 2); err == nil {
		t.Error("d=2 with pq=15 accepted")
	}
	if _, err := H(0, 4, 2); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := H(4, 4, 0); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestH482Figure7(t *testing.T) {
	// Figure 7/8: H(4,8,2) has n = 16 vertices and adjacency
	// Γ⁺(x3x2x1x0) = {x̄1 x̄0 γ x̄3 : γ ∈ Z_2} — letters complemented,
	// free letter at position 1 (Proposition 4.1 with p' = 2, q' = 3).
	g := MustH(4, 8, 2)
	if g.N() != 16 || !g.IsRegular(2) {
		t.Fatalf("H(4,8,2): n=%d", g.N())
	}
	word.Enumerate(2, 4, func(x word.Word) bool {
		for gamma := 0; gamma < 2; gamma++ {
			y := word.MustFromLetters(2,
				1-x.Letter(1), 1-x.Letter(0), gamma, 1-x.Letter(3))
			if !g.HasArc(x.Int(), y.Int()) {
				t.Errorf("H(4,8,2) missing arc %s -> %s", x, y)
			}
		}
		return true
	})
	// Spot-check node 0000 → {1111, 1101} as derived from the raw
	// transpose: transmitters 0,1 reach receivers 31, 27, nodes 15, 13.
	if !g.HasArc(0, 15) || !g.HasArc(0, 13) {
		t.Error("H(4,8,2) node 0 adjacency wrong")
	}
}

func TestProposition41Equality(t *testing.T) {
	// H(d^p', d^q', d) is *equal* (not merely isomorphic) to
	// A(f, C, p'-1) under the Horner labelling used in the proof.
	cases := []struct{ d, pPrime, qPrime int }{
		{2, 2, 3}, {2, 1, 4}, {2, 3, 3}, {2, 4, 2},
		{3, 2, 2}, {3, 1, 3}, {2, 3, 6},
	}
	for _, c := range cases {
		h := MustH(word.Pow(c.d, c.pPrime), word.Pow(c.d, c.qPrime), c.d)
		a := AlphaForLayout(c.d, c.pPrime, c.qPrime).Digraph()
		if !h.Equal(a) {
			t.Errorf("H(%d^%d,%d^%d,%d) != A(f,C,%d)", c.d, c.pPrime, c.d, c.qPrime, c.d, c.pPrime-1)
		}
	}
}

func TestIndexPermutationExamples(t *testing.T) {
	// p'=2, q'=3 (H(4,8,2)): f = [2 3 1 0], cyclic.
	f := IndexPermutation(2, 3)
	want := []int{2, 3, 1, 0}
	for i, w := range want {
		if f.Apply(i) != w {
			t.Fatalf("f(%d) = %d, want %d", i, f.Apply(i), w)
		}
	}
	if !f.IsCyclic() {
		t.Error("f for (2,3) must be cyclic")
	}
	// p'=3, q'=6 is the D=8 split (8,64) absent from Table 1: f has the
	// short orbit {0,3,6} and is not cyclic.
	if IndexPermutation(3, 6).IsCyclic() {
		t.Error("f for (3,6) must not be cyclic — H(8,64,2) is not B(2,8)")
	}
}

func TestCorollary42AgainstBruteForce(t *testing.T) {
	// The O(D) criterion must agree with actual digraph isomorphism for
	// every split of small diameters.
	d := 2
	for D := 2; D <= 6; D++ {
		b := debruijn.DeBruijn(d, D)
		for pPrime := 1; pPrime <= D; pPrime++ {
			qPrime := D + 1 - pPrime
			h := MustH(word.Pow(d, pPrime), word.Pow(d, qPrime), d)
			fast := IsDeBruijnLayout(pPrime, qPrime)
			slow := digraph.AreIsomorphic(h, b)
			if fast != slow {
				t.Errorf("D=%d split (%d,%d): criterion says %v, brute force %v",
					D, pPrime, qPrime, fast, slow)
			}
		}
	}
}

func TestLayoutWitnessVerified(t *testing.T) {
	cases := []struct{ d, pPrime, qPrime int }{
		{2, 2, 3}, {2, 4, 5}, {3, 2, 3}, {2, 1, 8},
	}
	for _, c := range cases {
		mapping, err := LayoutWitness(c.d, c.pPrime, c.qPrime)
		if err != nil {
			t.Errorf("LayoutWitness(%v): %v", c, err)
			continue
		}
		h := MustH(word.Pow(c.d, c.pPrime), word.Pow(c.d, c.qPrime), c.d)
		b := debruijn.DeBruijn(c.d, c.pPrime+c.qPrime-1)
		if err := digraph.VerifyIsomorphism(h, b, mapping); err != nil {
			t.Errorf("witness for %v fails: %v", c, err)
		}
	}
	if _, err := LayoutWitness(2, 3, 6); err == nil {
		t.Error("LayoutWitness accepted the non-cyclic (3,6) split")
	}
}

func TestSection43Claims(t *testing.T) {
	// H(2,256,2), H(4,128,2), H(16,32,2) are isomorphic to B(2,8);
	// H(8,128,2) to B(2,9); the five splits of D=10 from Table 1.
	good := []struct{ pPrime, qPrime int }{
		{1, 8}, {2, 7}, {4, 5}, // D = 8
		{3, 7},                                  // D = 9
		{1, 10}, {2, 9}, {3, 8}, {4, 7}, {5, 6}, // D = 10
	}
	for _, c := range good {
		if !IsDeBruijnLayout(c.pPrime, c.qPrime) {
			t.Errorf("split (%d,%d) should be a de Bruijn layout", c.pPrime, c.qPrime)
		}
	}
	// (8,64) = (3,6) for D=8 is famously absent.
	if IsDeBruijnLayout(3, 6) {
		t.Error("(3,6) should not be a layout")
	}
}

func TestProposition43OddBalanced(t *testing.T) {
	// D odd, p' = q' = (D+1)/2: no layout unless D = 1.
	if !IsDeBruijnLayout(1, 1) {
		t.Error("D=1: H(d,d,d) ≅ B(d,1) must hold")
	}
	for _, pp := range []int{2, 3, 4, 5, 6} {
		if IsDeBruijnLayout(pp, pp) {
			t.Errorf("balanced split (%d,%d) accepted for odd D=%d", pp, pp, 2*pp-1)
		}
	}
}

func TestCorollary44EvenD(t *testing.T) {
	// Even D: p' = D/2, q' = D/2+1 always works.
	for D := 2; D <= 20; D += 2 {
		if !IsDeBruijnLayout(D/2, D/2+1) {
			t.Errorf("Corollary 4.4 fails for D=%d", D)
		}
	}
}

func TestSection44OddCases(t *testing.T) {
	// H(2^5, 2^7, 2) ≅ B(2,11) but H(d^6, d^8, d) ≇ B(d,13).
	if !IsDeBruijnLayout(5, 7) {
		t.Error("(5,7) should be a layout (D=11)")
	}
	if IsDeBruijnLayout(6, 8) {
		t.Error("(6,8) should not be a layout (D=13)")
	}
}

func TestOptimalLayout(t *testing.T) {
	// Even D: balanced split, Θ(√n) lenses.
	l, ok := OptimalLayout(2, 8)
	if !ok {
		t.Fatal("no layout for B(2,8)")
	}
	if l.PPrime != 4 || l.QPrime != 5 {
		t.Errorf("optimal split for D=8 is (%d,%d), want (4,5)", l.PPrime, l.QPrime)
	}
	if l.Lenses() != 16+32 {
		t.Errorf("lenses = %d, want 48", l.Lenses())
	}
	if l.Nodes() != 256 || l.P() != 16 || l.Q() != 32 {
		t.Error("layout accessors wrong")
	}
	// Odd D = 11: balanced impossible; (5,7) is the best cyclic split.
	l11, ok := OptimalLayout(2, 11)
	if !ok {
		t.Fatal("no layout for B(2,11)")
	}
	if l11.PPrime != 5 || l11.QPrime != 7 {
		t.Errorf("optimal split for D=11 is (%d,%d), want (5,7)", l11.PPrime, l11.QPrime)
	}
	// D = 1.
	l1, ok := OptimalLayout(2, 1)
	if !ok || l1.PPrime != 1 || l1.QPrime != 1 {
		t.Errorf("D=1 layout = %+v, ok=%v", l1, ok)
	}
}

func TestMinimizeLensesScaling(t *testing.T) {
	// The headline: minimized lens count is Θ(√n) for even D, versus the
	// O(n) Imase–Itoh baseline.
	for D := 2; D <= 16; D += 2 {
		_, _, lenses, ok := MinimizeLenses(2, D)
		if !ok {
			t.Fatalf("no layout for D=%d", D)
		}
		n := word.Pow(2, D)
		sqrtN := word.Pow(2, D/2)
		// p + q = d^{D/2} + d^{D/2+1} = 3·√n for d=2.
		if lenses != 3*sqrtN {
			t.Errorf("D=%d: lenses = %d, want %d", D, lenses, 3*sqrtN)
		}
		if base := IILayoutLenses(2, n); base <= lenses && D > 2 {
			t.Errorf("D=%d: baseline %d not worse than optimized %d", D, base, lenses)
		}
	}
}

func TestVerifyIILayout(t *testing.T) {
	// [14]: II(d, n) has an OTIS(d, n)-layout — H(d, n, d) = II(d, n)
	// exactly, for any n, even when n is not a power of d.
	for _, c := range []struct{ d, n int }{
		{2, 8}, {2, 12}, {2, 256}, {2, 384}, {3, 27}, {3, 36}, {4, 64}, {2, 253},
	} {
		if err := VerifyIILayout(c.d, c.n); err != nil {
			t.Errorf("II(%d,%d): %v", c.d, c.n, err)
		}
	}
}

func TestH482IsoB24Figure8(t *testing.T) {
	// Figure 8: B(2,4) relabelled by the H(4,8,2) adjacency. Verify the
	// isomorphism both by witness and brute force.
	mapping, err := LayoutWitness(2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	h := MustH(4, 8, 2)
	b := debruijn.DeBruijn(2, 4)
	if err := digraph.VerifyIsomorphism(h, b, mapping); err != nil {
		t.Fatal(err)
	}
	if !digraph.AreIsomorphic(h, b) {
		t.Error("brute force disagrees")
	}
}

func TestReverseLayoutRemark(t *testing.T) {
	ok, err := ReverseLayout(4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("H(8,4,2) should realize the reverse of H(4,8,2)")
	}
}

func TestNodeTransmittersReceivers(t *testing.T) {
	s := System{P: 4, Q: 8}
	// Node 0 of H(4,8,2): transmitters 0,1 → positions (0,0),(0,1);
	// receivers 0,1 → positions (0,0),(0,1).
	tx := s.NodeTransmitters(0, 2)
	if tx[0] != [2]int{0, 0} || tx[1] != [2]int{0, 1} {
		t.Errorf("transmitters of node 0: %v", tx)
	}
	rx := s.NodeReceivers(5, 2)
	// Receivers 10, 11 → groups 10/4=2 pos 2; 11/4=2 pos 3.
	if rx[0] != [2]int{2, 2} || rx[1] != [2]int{2, 3} {
		t.Errorf("receivers of node 5: %v", rx)
	}
}

func TestLayoutString(t *testing.T) {
	l, _ := OptimalLayout(2, 8)
	if got := l.String(); got != "OTIS(16,32) ⊢ B(2,8), 48 lenses" {
		t.Errorf("String = %q", got)
	}
}

func TestHDiameters(t *testing.T) {
	// A layout split gives diameter exactly D; the (3,6) non-split is
	// disconnected.
	g := MustH(16, 32, 2)
	if got := g.Diameter(); got != 8 {
		t.Errorf("H(16,32,2) diameter = %d, want 8", got)
	}
	bad := MustH(8, 64, 2)
	if bad.IsWeaklyConnected() {
		t.Error("H(8,64,2) should be disconnected (σ = C complements... the f orbit {0,3,6} splits it)")
	}
}
