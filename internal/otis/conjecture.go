package otis

import (
	"sort"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/word"
)

// The paper's concluding conjecture: OTIS(p, q)-layouts of B(d, D) with
// p, q not powers of d do not exist "except for trivial cases". This file
// reruns (and extends) the exhaustive search behind that intuition.

// SplitResult records one (p, q) candidate of the conjecture scan.
type SplitResult struct {
	P, Q        int
	PowerSplit  bool // both p and q are powers of d
	Isomorphic  bool // H(p, q, d) ≅ B(d, D)
	ViaCriteria bool // decided by Corollary 4.2 (power splits only)
}

// ConjectureScan enumerates every ordered factorization p·q = d^(D+1)
// (p ≤ q and p ≥ q both included via symmetry of interest — we scan all
// p dividing m) and decides whether H(p, q, d) ≅ B(d, D). Power-of-d
// splits use the O(D) criterion of Corollary 4.2; general splits are
// decided by materializing both digraphs, pre-filtering on cheap
// invariants and finishing with the generic isomorphism search, so keep
// d^D modest (≤ a few hundred vertices).
func ConjectureScan(d, D int) []SplitResult {
	m := word.Pow(d, D+1)
	b := debruijn.DeBruijn(d, D)
	var results []SplitResult
	for p := 1; p <= m; p++ {
		if m%p != 0 {
			continue
		}
		q := m / p
		r := SplitResult{P: p, Q: q}
		pp, pok := logExact(p, d)
		qp, qok := logExact(q, d)
		r.PowerSplit = pok && qok
		if pok && qok && pp >= 1 && qp >= 1 {
			// Proposition 4.1 requires d | p and d | q, so the O(D)
			// criterion applies only to splits with p', q' ≥ 1; the
			// degenerate p = 1 (or q = 1) splits are handled generally.
			r.ViaCriteria = true
			r.Isomorphic = IsDeBruijnLayout(pp, qp)
		} else {
			h := MustH(p, q, d)
			r.Isomorphic = looksLikeDeBruijn(h, b, d, D) && digraph.AreIsomorphic(h, b)
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].P < results[j].P })
	return results
}

// looksLikeDeBruijn applies cheap isomorphism invariants before the
// expensive search: regularity, loop count, strong connectivity and the
// full distance histogram.
func looksLikeDeBruijn(h, b *digraph.Digraph, d, D int) bool {
	if h.N() != b.N() || h.M() != b.M() {
		return false
	}
	if !h.IsRegular(d) {
		return false
	}
	if len(h.Loops()) != len(b.Loops()) {
		return false
	}
	if !h.IsStronglyConnected() {
		return false
	}
	hHist, hUnreach := h.DistanceHistogram()
	bHist, bUnreach := b.DistanceHistogram()
	if hUnreach != bUnreach || len(hHist) != len(bHist) {
		return false
	}
	for i := range hHist {
		if hHist[i] != bHist[i] {
			return false
		}
	}
	return true
}

// NonPowerLayouts filters a scan down to the conjecture's subject: splits
// with p or q not a power of d that nevertheless realize B(d, D).
func NonPowerLayouts(results []SplitResult) []SplitResult {
	var out []SplitResult
	for _, r := range results {
		if !r.PowerSplit && r.Isomorphic {
			out = append(out, r)
		}
	}
	return out
}

// logExact returns e with base^e = v for exact powers (1 = base^0).
func logExact(v, base int) (int, bool) {
	if v < 1 || base < 2 {
		return 0, false
	}
	e := 0
	for v > 1 {
		if v%base != 0 {
			return 0, false
		}
		v /= base
		e++
	}
	return e, true
}
