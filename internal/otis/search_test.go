package otis

import (
	"reflect"
	"testing"

	"repro/internal/digraph"
)

func TestTable1D8Rows(t *testing.T) {
	// The D = 8 block of Table 1: rows n = 253..256, 258, 264, 288, 384
	// with exactly the splits the paper lists.
	rows := SearchDegreeDiameter(2, 8, 253, 511)
	want := []TableRow{
		{N: 253, Pairs: [][2]int{{2, 253}}},
		{N: 254, Pairs: [][2]int{{2, 254}}},
		{N: 255, Pairs: [][2]int{{2, 255}}},
		{N: 256, Pairs: [][2]int{{2, 256}, {4, 128}, {16, 32}}, Note: "B(2,8)"},
		{N: 258, Pairs: [][2]int{{2, 258}}},
		{N: 264, Pairs: [][2]int{{2, 264}}},
		{N: 288, Pairs: [][2]int{{2, 288}}},
		{N: 384, Pairs: [][2]int{{2, 384}}, Note: "K(2,8)"},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("Table 1 (D=8) mismatch:\n got %v\nwant %v", rows, want)
	}
}

func TestTable1D8KautzIsLargest(t *testing.T) {
	// "The Kautz digraph appears to be the largest digraph of degree d and
	// diameter D which has an OTIS(p,q)-layout." Scanning up to the Moore
	// bound (above which no digraph of degree 2 and diameter 8 exists at
	// all) makes the claim unconditional.
	row, ok := LargestWithDiameter(2, 8, digraph.MooreBound(2, 8))
	if !ok {
		t.Fatal("no diameter-8 OTIS digraph found")
	}
	if row.N != 384 {
		t.Errorf("largest n = %d, want 384 (Kautz)", row.N)
	}
	if row.Note != "K(2,8)" {
		t.Errorf("note = %q", row.Note)
	}
	// The realized digraph is indeed the Kautz digraph: H(2,384,2) =
	// II(2,384) ≅ K(2,8).
	if err := VerifyIILayout(2, 384); err != nil {
		t.Error(err)
	}
}

func TestTable1D9Probe(t *testing.T) {
	// The D = 9 block near its top: 512 has splits (2,512) and (8,128)
	// only; 768 = K(2,9) is the largest.
	rows := SearchDegreeDiameter(2, 9, 509, 520)
	byN := map[int]TableRow{}
	for _, r := range rows {
		byN[r.N] = r
	}
	r512, ok := byN[512]
	if !ok {
		t.Fatal("n=512 missing for D=9")
	}
	want := [][2]int{{2, 512}, {8, 128}}
	if !reflect.DeepEqual(r512.Pairs, want) {
		t.Errorf("splits for 512: %v, want %v", r512.Pairs, want)
	}
	if r512.Note != "B(2,9)" {
		t.Errorf("note = %q", r512.Note)
	}
	if _, ok := byN[513]; !ok {
		t.Error("n=513 row missing (paper lists it)")
	}
}

func TestSearchRejectsDisconnected(t *testing.T) {
	// (8,64) must not appear among the n=256 splits.
	rows := SearchDegreeDiameter(2, 8, 256, 256)
	if len(rows) != 1 {
		t.Fatal("expected exactly the n=256 row")
	}
	for _, pq := range rows[0].Pairs {
		if pq == [2]int{8, 64} {
			t.Error("(8,64) wrongly listed for n=256")
		}
	}
}

func TestSearchEmptyRange(t *testing.T) {
	if rows := SearchDegreeDiameter(2, 8, 600, 700); len(rows) != 0 {
		t.Errorf("diameter-8 digraphs beyond Moore bound territory: %v", rows)
	}
}

func TestTableRowString(t *testing.T) {
	r := TableRow{N: 256, Pairs: [][2]int{{2, 256}, {16, 32}}, Note: "B(2,8)"}
	if got := r.String(); got != "   256  2 256 | 16 32  B(2,8)" {
		t.Errorf("String = %q", got)
	}
}
