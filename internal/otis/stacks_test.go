package otis

import (
	"reflect"
	"testing"

	"repro/internal/digraph"
	"repro/internal/multistage"
	"repro/internal/word"
)

func TestRealizedStructureCyclic(t *testing.T) {
	// A layout split realizes exactly one de Bruijn digraph:
	// 1 × (C_1 ⊗ B(d, D)).
	stacks := RealizedStructure(2, 4, 5)
	want := []multistage.Stack{{Copies: 1, CircuitLen: 1, DeBruijnDim: 8}}
	if !reflect.DeepEqual(stacks, want) {
		t.Fatalf("stacks = %v, want %v", stacks, want)
	}
}

func TestRealizedStructureH864(t *testing.T) {
	// The missing (8,64) split of the n = 256 Table 1 row: OTIS wires 12
	// disjoint multistage networks, 2 of C_2 ⊗ B(2,2) and 10 of
	// C_6 ⊗ B(2,2).
	stacks := RealizedStructure(2, 3, 6)
	want := []multistage.Stack{
		{Copies: 2, CircuitLen: 2, DeBruijnDim: 2},
		{Copies: 10, CircuitLen: 6, DeBruijnDim: 2},
	}
	if !reflect.DeepEqual(stacks, want) {
		t.Fatalf("stacks = %v, want %v", stacks, want)
	}
	// Vertex accounting: Σ copies·c·d^r = n.
	total := 0
	for _, s := range stacks {
		total += s.Copies * s.CircuitLen * word.Pow(2, s.DeBruijnDim)
	}
	if total != 256 {
		t.Errorf("stack vertices total %d, want 256", total)
	}
}

func TestRealizedStructureComponentsVerified(t *testing.T) {
	// Every component of H(8,64,2) must actually be isomorphic to its
	// claimed conjunction — checked structurally via the alpha machinery
	// and independently against the multistage constructions.
	a := AlphaForLayout(2, 3, 6)
	if err := a.VerifyDecomposition(); err != nil {
		t.Fatal(err)
	}
	// Independent check: an induced C_2 ⊗ B(2,2) component is isomorphic
	// to the GEMNET(2, 4, 2) network.
	g := a.Digraph()
	for _, comp := range a.Decompose() {
		if comp.CircuitLen != 2 {
			continue
		}
		sub, _ := g.InducedSubgraph(comp.Vertices)
		gem := multistage.GEMNET(2, 4, 2)
		if _, ok := digraph.FindIsomorphism(sub, gem); !ok {
			t.Error("C_2 ⊗ B(2,2) component not isomorphic to GEMNET(2,4,2)")
		}
		break
	}
}

func TestRealizedStructureMatchesH(t *testing.T) {
	// The stack description must agree with the weak components of the
	// actual OTIS digraph H(8,64,2) (not just the alpha form).
	h := MustH(8, 64, 2)
	comps := h.WeaklyConnectedComponents()
	if len(comps) != 12 {
		t.Fatalf("H(8,64,2) has %d components, want 12", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	// 2 components of 2·4 = 8 vertices, 10 of 6·4 = 24.
	if sizes[8] != 2 || sizes[24] != 10 {
		t.Errorf("component sizes = %v", sizes)
	}
}
