package otis

import (
	"testing"
	"testing/quick"

	"repro/internal/word"
)

// Property-based tests on the OTIS transpose and layout algebra.

func TestQuickTransposeInverse(t *testing.T) {
	// Transposing OTIS(p,q) and then OTIS(q,p) is the identity on
	// transceiver coordinates.
	f := func(pRaw, qRaw, iRaw, jRaw uint8) bool {
		p := int(pRaw%16) + 1
		q := int(qRaw%16) + 1
		i := int(iRaw) % p
		j := int(jRaw) % q
		s := System{P: p, Q: q}
		sT := System{P: q, Q: p}
		ri, rj := s.Receiver(i, j)
		// The receiver of OTIS(p,q) is a transmitter coordinate of
		// OTIS(q,p); transposing again must return (i,j).
		bi, bj := sT.Receiver(ri, rj)
		return bi == i && bj == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickConnectionBijective(t *testing.T) {
	f := func(pRaw, qRaw uint8) bool {
		p := int(pRaw%8) + 1
		q := int(qRaw%8) + 1
		s := System{P: p, Q: q}
		seen := make([]bool, p*q)
		for t1 := 0; t1 < p*q; t1++ {
			r := s.ConnectionID(t1)
			if r < 0 || r >= p*q || seen[r] {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickHRegularAndSized(t *testing.T) {
	f := func(ppRaw, qpRaw, dRaw uint8) bool {
		d := int(dRaw%2) + 2   // 2..3
		pp := int(ppRaw%3) + 1 // 1..3
		qp := int(qpRaw%3) + 1 // 1..3
		p, q := word.Pow(d, pp), word.Pow(d, qp)
		g := MustH(p, q, d)
		return g.N() == p*q/d && g.IsOutRegular(d) && g.IsInRegular(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickIndexPermutationValid(t *testing.T) {
	// The Proposition 4.1 permutation is a valid permutation for every
	// split, cyclic or not.
	f := func(ppRaw, qpRaw uint8) bool {
		pp := int(ppRaw%12) + 1
		qp := int(qpRaw%12) + 1
		return IndexPermutation(pp, qp).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickReverseSplitSymmetry(t *testing.T) {
	// IsDeBruijnLayout(p', q') and IsDeBruijnLayout(q', p') agree:
	// B(d,D) is isomorphic to its reverse, so a split works iff its
	// transpose does.
	f := func(ppRaw, qpRaw uint8) bool {
		pp := int(ppRaw%10) + 1
		qp := int(qpRaw%10) + 1
		return IsDeBruijnLayout(pp, qp) == IsDeBruijnLayout(qp, pp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickOptimalLayoutBalanced(t *testing.T) {
	// For even D the optimum is always the balanced split.
	f := func(dRaw, DRaw uint8) bool {
		d := int(dRaw%3) + 2
		D := (int(DRaw%10) + 1) * 2 // even, 2..20
		l, ok := OptimalLayout(d, D)
		return ok && l.PPrime == D/2 && l.QPrime == D/2+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
