package otis

import (
	"testing"

	"repro/internal/word"
)

func TestConjectureScanPowerSplitsMatchTable(t *testing.T) {
	// Within a scan, the power-of-d splits must agree with Corollary 4.2.
	res := ConjectureScan(2, 4)
	found := map[[2]int]bool{}
	for _, r := range res {
		if r.Isomorphic {
			found[[2]int{r.P, r.Q}] = true
		}
	}
	// D=4: cyclic splits are (1,4),(2,3),(3,2),(4,1) in p'-q' space —
	// i.e. (2,16),(4,8),(8,4),(16,2).
	for _, pq := range [][2]int{{2, 16}, {4, 8}, {8, 4}, {16, 2}} {
		if !found[pq] {
			t.Errorf("power split %v missing from scan results", pq)
		}
	}
}

func TestConjectureNoNonPowerLayouts(t *testing.T) {
	// The concluding conjecture of the paper: no OTIS(p,q)-layout of
	// B(d,D) exists with p or q not a power of d. Verified exhaustively
	// over every factorization of d^(D+1) for all cases below (composite
	// d gives genuinely non-power divisors). Our scan finds not even the
	// "trivial cases" the authors hedge about: the degenerate p = 1
	// splits fail too, because H(1, m, d) has double arcs.
	cases := []struct{ d, D int }{
		{2, 2}, {2, 3}, {2, 4},
		{4, 1}, {4, 2}, {4, 3},
		{6, 1}, {6, 2},
		{8, 1}, {8, 2},
		{9, 1}, {9, 2},
	}
	for _, c := range cases {
		res := ConjectureScan(c.d, c.D)
		if np := NonPowerLayouts(res); len(np) != 0 {
			t.Errorf("d=%d D=%d: non-power layouts found: %v — the conjecture is false!", c.d, c.D, np)
		}
		// Sanity: the scan covered every divisor pair.
		m := word.Pow(c.d, c.D+1)
		for _, r := range res {
			if r.P*r.Q != m {
				t.Fatalf("scan emitted non-factorization %d·%d != %d", r.P, r.Q, m)
			}
		}
	}
}

func TestConjectureDegenerateSplits(t *testing.T) {
	// H(1, m, d): every node's d transmitters sit in the single group and
	// all image to one receiver block — the digraph has parallel arcs and
	// cannot be B(d, D) for D ≥ 1, d ≥ 2.
	h := MustH(1, 16, 2)
	parallel := false
	for u := 0; u < h.N() && !parallel; u++ {
		out := h.SortedOut(u)
		for i := 1; i < len(out); i++ {
			if out[i] == out[i-1] {
				parallel = true
			}
		}
	}
	if !parallel {
		t.Error("H(1,16,2) unexpectedly simple — revisit the degenerate analysis")
	}
}

func TestLogExact(t *testing.T) {
	if e, ok := logExact(32, 2); !ok || e != 5 {
		t.Error("logExact(32,2) wrong")
	}
	if e, ok := logExact(1, 2); !ok || e != 0 {
		t.Error("logExact(1,2) wrong")
	}
	if _, ok := logExact(12, 2); ok {
		t.Error("12 is not a power of 2")
	}
	if _, ok := logExact(0, 2); ok {
		t.Error("0 accepted")
	}
}
