package otis

import (
	"sort"

	"repro/internal/multistage"
)

// RealizedStructure describes what a power-of-d OTIS split actually
// builds. For a cyclic split it is a single de Bruijn digraph
// (Corollary 4.2): one stack entry, 1 × (C_1 ⊗ B(d, D)). For a non-cyclic
// split, Remark 3.10 says the weak components are circuit ⊗ de Bruijn
// conjunctions — i.e. the OTIS hardware realizes a collection of disjoint
// ShuffleNet-style multistage networks. The circuit lengths are the orbit
// lengths of the residual letter dynamics and need not be uniform: the
// missing (8,64) split of Table 1's n = 256 row realizes
// 2 × (C_2 ⊗ B(2,2)) plus 10 × (C_6 ⊗ B(2,2)).
//
// Stacks are returned grouped by shape, ordered by circuit length then
// de Bruijn dimension.
func RealizedStructure(d, pPrime, qPrime int) []multistage.Stack {
	a := AlphaForLayout(d, pPrime, qPrime)
	counts := map[[2]int]int{}
	for _, comp := range a.Decompose() {
		counts[[2]int{comp.CircuitLen, comp.DeBruijnDim}]++
	}
	shapes := make([][2]int, 0, len(counts))
	for shape := range counts {
		shapes = append(shapes, shape)
	}
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i][0] != shapes[j][0] {
			return shapes[i][0] < shapes[j][0]
		}
		return shapes[i][1] < shapes[j][1]
	})
	stacks := make([]multistage.Stack, len(shapes))
	for i, shape := range shapes {
		stacks[i] = multistage.Stack{
			Copies:      counts[shape],
			CircuitLen:  shape[0],
			DeBruijnDim: shape[1],
		}
	}
	return stacks
}
