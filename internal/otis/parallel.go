package otis

import (
	"runtime"
	"sort"
	"sync"
)

// Parallel Table 1 search: the candidate (n, p, q) triples are
// independent, so a worker pool over n values reruns the exhaustive
// degree–diameter search with near-linear speedup. Results are identical
// to SearchDegreeDiameter (verified by tests).

// SearchDegreeDiameterParallel is SearchDegreeDiameter distributed over a
// worker pool (workers <= 0 selects GOMAXPROCS).
func SearchDegreeDiameterParallel(d, diam, minN, maxN, workers int) []TableRow {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	span := maxN - minN + 1
	if span <= 0 {
		return nil
	}
	if workers > span {
		workers = span
	}
	type job struct{ n int }
	jobs := make(chan job, workers)
	var mu sync.Mutex
	var rows []TableRow
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				pairs := splitsWithDiameter(d, diam, j.n)
				if len(pairs) == 0 {
					continue
				}
				row := TableRow{N: j.n, Pairs: pairs}
				annotate(&row, d, diam)
				mu.Lock()
				rows = append(rows, row)
				mu.Unlock()
			}
		}()
	}
	for n := minN; n <= maxN; n++ {
		jobs <- job{n: n}
	}
	close(jobs)
	wg.Wait()
	sort.Slice(rows, func(i, j int) bool { return rows[i].N < rows[j].N })
	return rows
}
