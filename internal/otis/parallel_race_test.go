package otis

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// Race-focused exercise of the parallel Table 1 search: several
// goroutines run SearchDegreeDiameterParallel concurrently over the same
// range at worker counts 1, 2, GOMAXPROCS, and span+1 (more workers than
// jobs, so the worker clamp engages). scripts/check.sh runs this under
// -race; the assertions pin that the mutex-merged row set is identical
// to the sequential search under contention.
func TestSearchParallelRaceMatrix(t *testing.T) {
	const d, diam, minN, maxN = 2, 8, 480, 520
	span := maxN - minN + 1
	want := SearchDegreeDiameter(d, diam, minN, maxN)
	const callers = 3
	var wg sync.WaitGroup
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0), span + 1} {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(workers int) {
				defer wg.Done()
				got := SearchDegreeDiameterParallel(d, diam, minN, maxN, workers)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: parallel rows diverged from sequential under contention", workers)
				}
			}(workers)
		}
	}
	wg.Wait()
}
