package alpha

import (
	"math/rand"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/perm"
	"repro/internal/word"
)

// f331 is the index permutation from the paper's example 3.3.1 (D = 6).
func f331() perm.Perm {
	return perm.MustFromFunc(6, func(i int) int {
		switch {
		case i < 3:
			return i + 3
		case i == 3:
			return 2
		default:
			return (i + 2) % 6
		}
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(perm.Identity(3), perm.Identity(2), 5); err == nil {
		t.Error("out-of-range j accepted")
	}
	if _, err := New(perm.Perm{}, perm.Identity(2), 0); err == nil {
		t.Error("empty f accepted")
	}
	if _, err := New(perm.Identity(3), perm.Perm{}, 0); err == nil {
		t.Error("empty sigma accepted")
	}
	if _, err := New(perm.Perm{0, 0, 1}, perm.Identity(2), 0); err == nil {
		t.Error("invalid f accepted")
	}
	a, err := New(perm.CyclicShift(3), perm.Identity(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.D() != 2 || a.Dim() != 3 || a.FreePosition() != 0 || a.N() != 8 {
		t.Error("accessors wrong")
	}
}

func TestRemark38DeBruijnIsAlphabetDigraph(t *testing.T) {
	// B(d, D) = A(ρ, Id, 0) exactly, as labelled digraphs.
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 5}, {3, 3}} {
		a := DeBruijnAlpha(c.d, c.D)
		if !a.Digraph().Equal(debruijn.DeBruijn(c.d, c.D)) {
			t.Errorf("A(ρ,Id,0) != B(%d,%d)", c.d, c.D)
		}
	}
}

func TestBSigmaIsAlphabetDigraph(t *testing.T) {
	// Remark 3.8: B_σ(d,D) and A(ρ, σ, 0) are isomorphic; in fact with
	// our conventions they are equal as labelled digraphs.
	d, D := 3, 3
	sigma := perm.MustFromImage([]int{1, 2, 0})
	a := MustNew(perm.CyclicShift(D), sigma, 0)
	if !a.Digraph().Equal(debruijn.BSigma(d, D, sigma)) {
		t.Error("A(ρ,σ,0) != B_σ")
	}
}

func TestExample331(t *testing.T) {
	// H = A(f, Id, 2) of example 3.3.1: degree d, dimension 6,
	// Γ⁺(x5x4x3x2x1x0) = x2x1x0αx5x4.
	f := f331()
	if !f.IsCyclic() {
		t.Fatal("example 3.3.1 f must be cyclic")
	}
	d := 2
	a := MustNew(f, perm.Identity(d), 2)

	// Check the adjacency relation spelled out in the paper.
	x := word.MustFromLetters(d, 1, 0, 1, 1, 0, 1) // x5..x0 = 101101
	succ := a.Successors(x)
	if len(succ) != d {
		t.Fatalf("degree %d", len(succ))
	}
	for alphaVal, y := range succ {
		// Expected: x2 x1 x0 α x5 x4 = 1 0 1 α 1 0.
		want := word.MustFromLetters(d, 1, 0, 1, alphaVal, 1, 0)
		if !y.Equal(want) {
			t.Errorf("successor(α=%d) = %s, want %s", alphaVal, y, want)
		}
	}

	// The g permutation of Figure 4: g(i) = f^i(2) giving
	// g = [2 5 1 4 0 3].
	g, ok := a.GPerm()
	if !ok {
		t.Fatal("g not a permutation despite cyclic f")
	}
	wantG := perm.MustFromImage([]int{2, 5, 1, 4, 0, 3})
	if !g.Equal(wantG) {
		t.Errorf("g = %v, want %v (Figure 4)", g, wantG)
	}

	// H ≅ B(d, 6), verified through the Proposition 3.9 witness.
	if _, err := a.VerifiedIsoToDeBruijn(); err != nil {
		t.Errorf("example 3.3.1 isomorphism fails: %v", err)
	}
}

func TestExample331GVectorAction(t *testing.T) {
	// The paper states g→(x5x4x3x2x1x0) = x1x3x5x0x2x4.
	d := 10
	g := perm.MustFromImage([]int{2, 5, 1, 4, 0, 3})
	x := word.MustFromLetters(d, 5, 4, 3, 2, 1, 0) // x_i = i
	got := x.ApplyIndex(g)
	// Expected spelled word: x1x3x5x0x2x4 = 1 3 5 0 2 4.
	want := word.MustFromLetters(d, 1, 3, 5, 0, 2, 4)
	if !got.Equal(want) {
		t.Errorf("g→(543210) = %s, want %s", got, want)
	}
}

func TestExample332Disconnected(t *testing.T) {
	// H = A(f, Id, 1) with f(i) = 2-i on Z_3: g degenerates
	// (g(0)=g(1)=g(2)=1) and H is disconnected.
	d := 2
	f := perm.Complement(3)
	a := MustNew(f, perm.Identity(d), 1)
	if a.IsDeBruijn() {
		t.Fatal("example 3.3.2 digraph claimed to be de Bruijn")
	}
	if _, ok := a.GPerm(); ok {
		t.Error("degenerate g accepted as a permutation")
	}
	if _, err := a.IsoToDeBruijn(); err == nil {
		t.Error("IsoToDeBruijn succeeded on non-cyclic f")
	}
	g := a.Digraph()
	if g.IsWeaklyConnected() {
		t.Fatal("example 3.3.2 digraph should be disconnected")
	}
	// Figure 5 (d = 2): components {000,010}, {101,111} (the C_1⊗B(2,1)
	// pieces carry loops... they are the 4-vertex piece and two 2-vertex
	// pieces): d² - d² ... the paper's count: (d²-d)/2 components
	// C_2 ⊗ B(d,1) and d components C_1 ⊗ B(d,1).
	comps := a.Decompose()
	var big, small int
	for _, c := range comps {
		switch c.CircuitLen {
		case 2:
			big++
		case 1:
			small++
		default:
			t.Errorf("unexpected circuit length %d", c.CircuitLen)
		}
		if c.DeBruijnDim != 1 {
			t.Errorf("de Bruijn dimension %d, want 1", c.DeBruijnDim)
		}
	}
	if big != (d*d-d)/2 || small != d {
		t.Errorf("component counts: %d of C_2⊗B, %d of C_1⊗B; want %d and %d",
			big, small, (d*d-d)/2, d)
	}
	if err := a.VerifyDecomposition(); err != nil {
		t.Errorf("Remark 3.10 verification fails: %v", err)
	}
}

func TestExample332Figure5Vertices(t *testing.T) {
	// Figure 5 shows the d=2 components: {000, 010}, {101, 111} as the
	// two C_1⊗B(2,1) pieces and {001, 100, 011, 110} as C_2⊗B(2,1).
	a := MustNew(perm.Complement(3), perm.Identity(2), 1)
	comps := a.Decompose()
	bySize := map[int][][]int{}
	for _, c := range comps {
		bySize[len(c.Vertices)] = append(bySize[len(c.Vertices)], c.Vertices)
	}
	if len(bySize[2]) != 2 || len(bySize[4]) != 1 {
		t.Fatalf("component sizes wrong: %v", bySize)
	}
	toSet := func(words ...string) map[int]bool {
		s := map[int]bool{}
		for _, w := range words {
			x, _ := word.Parse(2, w)
			s[x.Int()] = true
		}
		return s
	}
	wantSmall := []map[int]bool{toSet("000", "010"), toSet("101", "111")}
	for _, got := range bySize[2] {
		matched := false
		for _, want := range wantSmall {
			if want[got[0]] && want[got[1]] {
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected small component %v", got)
		}
	}
	wantBig := toSet("001", "100", "011", "110")
	for _, v := range bySize[4][0] {
		if !wantBig[v] {
			t.Errorf("vertex %d not expected in the 4-cycle component", v)
		}
	}
}

func TestProposition39Exhaustive(t *testing.T) {
	// For every permutation f of Z_D (small D), every j, and a sample of
	// σ: f cyclic ⇔ A(f,σ,j) ≅ B(d,D). For non-cyclic f with σ = Id the
	// digraph is disconnected, as the paper asserts. (For general σ the
	// disconnectedness claim of Proposition 3.9 — whose proof the paper
	// omits — can fail: A(f,C,j) with f = (0 1 2) on Z_4, j = 1 is the
	// connected digraph C_2 ⊗ B(2,3). The isomorphism "iff" is what
	// matters and it does hold: that digraph is loopless, B(2,4) is not.
	// See EXPERIMENTS.md, erratum E-1.)
	d := 2
	for _, D := range []int{2, 3, 4} {
		sigmas := []perm.Perm{perm.Identity(d), perm.Complement(d)}
		perm.All(D, func(f perm.Perm) bool {
			for j := 0; j < D; j++ {
				for _, sigma := range sigmas {
					a := MustNew(f.Clone(), sigma, j)
					if f.IsCyclic() {
						if _, err := a.VerifiedIsoToDeBruijn(); err != nil {
							t.Errorf("D=%d f=%v j=%d σ=%v: %v", D, f, j, sigma, err)
						}
						continue
					}
					if sigma.IsIdentity() && a.Digraph().IsWeaklyConnected() {
						t.Errorf("D=%d f=%v j=%d σ=Id: non-cyclic f gave connected digraph", D, f, j)
					}
					// The iff: never isomorphic to B(d, D).
					if digraph.AreIsomorphic(a.Digraph(), debruijn.DeBruijn(d, D)) {
						t.Errorf("D=%d f=%v j=%d σ=%v: non-cyclic f gave B(d,D)", D, f, j, sigma)
					}
				}
			}
			return true
		})
	}
}

func TestErratumConnectedNonCyclic(t *testing.T) {
	// The counterexample to the disconnectedness sentence of
	// Proposition 3.9: f = (0 1 2) fixing 3, σ = C, j = 1 on Z_2^4.
	// The non-orbit position 3 has its letter complemented every step, so
	// the whole digraph is one Remark 3.10 component C_2 ⊗ B(2,3):
	// connected, yet (consistently with the Proposition's isomorphism
	// claim) not isomorphic to B(2,4).
	f := perm.MustFromImage([]int{1, 2, 0, 3})
	a := MustNew(f, perm.Complement(2), 1)
	g := a.Digraph()
	if !g.IsWeaklyConnected() {
		t.Fatal("counterexample digraph should be weakly connected")
	}
	if !g.IsStronglyConnected() {
		t.Error("counterexample digraph should even be strongly connected")
	}
	comps := a.Decompose()
	if len(comps) != 1 || comps[0].CircuitLen != 2 || comps[0].DeBruijnDim != 3 {
		t.Fatalf("decomposition = %+v, want single C_2 ⊗ B(2,3)", comps)
	}
	if err := a.VerifyDecomposition(); err != nil {
		t.Errorf("Remark 3.10 still holds for the counterexample: %v", err)
	}
	if digraph.AreIsomorphic(g, debruijn.DeBruijn(2, 4)) {
		t.Error("counterexample must not be isomorphic to B(2,4)")
	}
	if len(g.Loops()) != 0 {
		t.Error("C_2 ⊗ B(2,3) is loopless")
	}
}

func TestRemark310AllNonCyclic(t *testing.T) {
	// Every component of every non-cyclic A(f, σ, j) (small cases) is a
	// circuit ⊗ de Bruijn conjunction.
	d := 2
	D := 3
	perm.All(D, func(f perm.Perm) bool {
		if f.IsCyclic() {
			return true
		}
		for j := 0; j < D; j++ {
			a := MustNew(f.Clone(), perm.Identity(d), j)
			if err := a.VerifyDecomposition(); err != nil {
				t.Errorf("f=%v j=%d: %v", f, j, err)
			}
		}
		return true
	})
}

func TestDecomposeCyclicCase(t *testing.T) {
	a := DeBruijnAlpha(2, 4)
	comps := a.Decompose()
	if len(comps) != 1 {
		t.Fatalf("cyclic case has %d components", len(comps))
	}
	if comps[0].CircuitLen != 1 || comps[0].DeBruijnDim != 4 {
		t.Errorf("cyclic decomposition = C_%d ⊗ B(2,%d)", comps[0].CircuitLen, comps[0].DeBruijnDim)
	}
	if err := a.VerifyDecomposition(); err != nil {
		t.Error(err)
	}
}

func TestCountDefinitions(t *testing.T) {
	// Section 3.2: d!(D-1)! alternative definitions of B(d,D).
	if CountDefinitions(2, 3) != 4 {
		t.Errorf("CountDefinitions(2,3) = %d, want 4", CountDefinitions(2, 3))
	}
	if CountDefinitions(3, 4) != 36 {
		t.Errorf("CountDefinitions(3,4) = %d, want 36", CountDefinitions(3, 4))
	}
}

func TestCountDefinitionsByEnumeration(t *testing.T) {
	// Verify the count by enumerating all (σ, cyclic f) pairs and checking
	// each really is isomorphic to B(d, D) with j = 0.
	d, D := 2, 3
	count := 0
	perm.AllCyclic(D, func(f perm.Perm) bool {
		fc := f.Clone()
		perm.All(d, func(sigma perm.Perm) bool {
			a := MustNew(fc, sigma.Clone(), 0)
			if _, err := a.VerifiedIsoToDeBruijn(); err != nil {
				t.Errorf("f=%v σ=%v: %v", fc, sigma, err)
			}
			count++
			return true
		})
		return true
	})
	if count != CountDefinitions(d, D) {
		t.Errorf("enumerated %d definitions, formula says %d", count, CountDefinitions(d, D))
	}
}

func TestAlphaRandomCyclic(t *testing.T) {
	// Random larger cyclic cases (including d=3, D=5: 243 vertices).
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 8; trial++ {
		D := 3 + rng.Intn(3)
		d := 2 + rng.Intn(2)
		// Random cyclic f: conjugate the shift by a random permutation.
		f := perm.CyclicShift(D).Conjugate(perm.Random(D, rng))
		if !f.IsCyclic() {
			t.Fatal("conjugate of cycle not cyclic")
		}
		sigma := perm.Random(d, rng)
		j := rng.Intn(D)
		a := MustNew(f, sigma, j)
		if _, err := a.VerifiedIsoToDeBruijn(); err != nil {
			t.Errorf("d=%d D=%d f=%v σ=%v j=%d: %v", d, D, f, sigma, j, err)
		}
	}
}

func TestSuccessorsDegreeAndRegularity(t *testing.T) {
	a := MustNew(f331(), perm.Complement(2), 2)
	g := a.Digraph()
	if !g.IsRegular(2) {
		t.Error("A(f,C,2) not 2-regular")
	}
	if g.N() != 64 {
		t.Errorf("n = %d", g.N())
	}
}

func TestComponentCount(t *testing.T) {
	a := MustNew(perm.Complement(3), perm.Identity(2), 1)
	if got := a.ComponentCount(); got != 3 {
		t.Errorf("ComponentCount = %d, want 3", got)
	}
}

func TestIsoBetween(t *testing.T) {
	// Two different alphabet-digraph presentations of B(2,6) map onto
	// each other directly.
	a1 := MustNew(f331(), perm.Identity(2), 2)
	a2 := DeBruijnAlpha(2, 6)
	mapping, err := IsoBetween(a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	if err := digraph.VerifyIsomorphism(a1.Digraph(), a2.Digraph(), mapping); err != nil {
		t.Fatalf("composed witness invalid: %v", err)
	}
	// Shape mismatch and non-cyclic inputs are rejected.
	if _, err := IsoBetween(a1, DeBruijnAlpha(2, 5)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	bad := MustNew(perm.Complement(3), perm.Identity(2), 1)
	if _, err := IsoBetween(bad, DeBruijnAlpha(2, 3)); err == nil {
		t.Error("non-cyclic source accepted")
	}
}

func TestDigraphDiameterMatchesDeBruijn(t *testing.T) {
	// An isomorphic copy must share B(d,D)'s diameter D.
	a := MustNew(f331(), perm.Identity(2), 2)
	if got := a.Digraph().Diameter(); got != 6 {
		t.Errorf("diameter = %d, want 6", got)
	}
}
