package alpha

import (
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/word"
)

// Remark 3.10: when f is not cyclic, A(f, σ, s) is disconnected and each
// weak component is the conjunction of a de Bruijn digraph with a circuit.
// Decompose materializes that structure.

// Component describes one weak component of a (possibly disconnected)
// alphabet digraph.
type Component struct {
	// Vertices lists the component's Horner labels, increasing.
	Vertices []int
	// CircuitLen is the length c of the circuit factor C_c.
	CircuitLen int
	// DeBruijnDim is the dimension r of the de Bruijn factor B(d, r):
	// the length of the orbit of the free position j under f.
	DeBruijnDim int
}

// Model returns the reference digraph C_c ⊗ B(d, r) the component is
// claimed (by Remark 3.10) to be isomorphic to.
func (c Component) Model(d int) *digraph.Digraph {
	return digraph.Conjunction(digraph.Circuit(c.CircuitLen), debruijn.DeBruijn(d, c.DeBruijnDim))
}

// Decompose splits A(f, σ, j) into weak components and annotates each with
// its Remark 3.10 structure: the de Bruijn dimension r is the orbit length
// of j under f, and the circuit length is |component| / d^r. When f is
// cyclic the result is a single component with CircuitLen 1 and
// DeBruijnDim D (C_1 ⊗ B(d, D) = B(d, D)).
func (a *Alpha) Decompose() []Component {
	g := a.Digraph()
	comps := g.WeaklyConnectedComponents()
	r := a.orbitLenOfJ()
	dr := word.Pow(a.D(), r)
	out := make([]Component, len(comps))
	for i, vs := range comps {
		if len(vs)%dr != 0 {
			panic(fmt.Sprintf("alpha: component size %d not divisible by d^r = %d", len(vs), dr))
		}
		out[i] = Component{
			Vertices:    vs,
			CircuitLen:  len(vs) / dr,
			DeBruijnDim: r,
		}
	}
	return out
}

// VerifyDecomposition checks Remark 3.10 constructively: every component's
// induced subgraph must be isomorphic to its C_c ⊗ B(d, r) model. The check
// uses the generic backtracking matcher, so it is intended for small
// instances (tests and the figure generator).
func (a *Alpha) VerifyDecomposition() error {
	g := a.Digraph()
	for i, comp := range a.Decompose() {
		sub, _ := g.InducedSubgraph(comp.Vertices)
		model := comp.Model(a.D())
		if sub.N() != model.N() || sub.M() != model.M() {
			return fmt.Errorf("alpha: component %d size %d/%d arcs differs from model %d/%d",
				i, sub.N(), sub.M(), model.N(), model.M())
		}
		if _, ok := digraph.FindIsomorphism(sub, model); !ok {
			return fmt.Errorf("alpha: component %d (c=%d, r=%d) not isomorphic to C_%d ⊗ B(%d,%d)",
				i, comp.CircuitLen, comp.DeBruijnDim, comp.CircuitLen, a.D(), comp.DeBruijnDim)
		}
	}
	return nil
}

// orbitLenOfJ returns the length of the orbit of the free position j under
// the index permutation f.
func (a *Alpha) orbitLenOfJ() int {
	length := 0
	cur := a.j
	for {
		length++
		cur = a.f.Apply(cur)
		if cur == a.j {
			return length
		}
	}
}

// ComponentCount returns the number of weak components without
// materializing the decomposition models.
func (a *Alpha) ComponentCount() int {
	return len(a.Digraph().WeaklyConnectedComponents())
}
