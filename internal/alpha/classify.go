package alpha

import (
	"fmt"
	"sort"

	"repro/internal/perm"
	"repro/internal/word"
)

// Classification of the full A(f, σ, j) family. Proposition 3.9 splits it
// into "isomorphic to B(d, D)" and "disconnected-ish" cases; Remark 3.10
// refines the latter into stacks of circuit ⊗ de Bruijn conjunctions.
// Classify computes, for every (f, σ, j) of a small (d, D), the
// structural signature — the sorted multiset of (c, r) component shapes —
// and groups the parameter space by it. The de Bruijn class has signature
// {(1, D)}.

// Signature is a canonical string for a component-shape multiset, e.g.
// "1x(C1⊗B2)" for B(d, 2) itself or "2x(C2⊗B2) 10x(C6⊗B2)".
type Signature string

// SignatureOf computes the structural signature of one alphabet digraph.
func SignatureOf(a *Alpha) Signature {
	counts := map[[2]int]int{}
	for _, comp := range a.Decompose() {
		counts[[2]int{comp.CircuitLen, comp.DeBruijnDim}]++
	}
	keys := make([][2]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%dx(C%d⊗B%d)", counts[k], k[0], k[1])
	}
	return Signature(s)
}

// DeBruijnSignature returns the signature of B(d, D) itself.
func DeBruijnSignature(D int) Signature {
	return Signature(fmt.Sprintf("1x(C1⊗B%d)", D))
}

// ClassCount maps a signature to how many (f, σ, j) triples produce it.
type ClassCount struct {
	Sig   Signature
	Count int
}

// Classify enumerates every (f, σ, j) for the given degree and dimension
// and tallies structural signatures, sorted by descending count then
// signature. The total is D!·d!·D.
func Classify(d, D int) []ClassCount {
	counts := map[Signature]int{}
	perm.All(D, func(f perm.Perm) bool {
		fc := f.Clone()
		perm.All(d, func(sigma perm.Perm) bool {
			sc := sigma.Clone()
			for j := 0; j < D; j++ {
				a := MustNew(fc, sc, j)
				counts[SignatureOf(a)]++
			}
			return true
		})
		return true
	})
	out := make([]ClassCount, 0, len(counts))
	for sig, c := range counts {
		out = append(out, ClassCount{Sig: sig, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Sig < out[j].Sig
	})
	return out
}

// TotalTriples returns D!·d!·D, the size of the parameter space Classify
// covers.
func TotalTriples(d, D int) int {
	return perm.Factorial(D) * perm.Factorial(d) * D
}

// DeBruijnFraction returns how many of the triples realize B(d, D): by
// Proposition 3.9 this is exactly (D-1)!·d!·D (the cyclic f's), i.e. a
// 1/D fraction of the space.
func DeBruijnFraction(classes []ClassCount, D int) (deBruijn, total int) {
	target := DeBruijnSignature(D)
	for _, c := range classes {
		total += c.Count
		if c.Sig == target {
			deBruijn += c.Count
		}
	}
	return deBruijn, total
}

// VerifySignatureTotals checks vertex accounting of a signature against
// d^D (each component shape (c, r) covers c·d^r vertices per copy).
func VerifySignatureTotals(d, D int, a *Alpha) error {
	total := 0
	for _, comp := range a.Decompose() {
		total += comp.CircuitLen * word.Pow(d, comp.DeBruijnDim)
	}
	if total != word.Pow(d, D) {
		return fmt.Errorf("alpha: signature covers %d of %d vertices", total, word.Pow(d, D))
	}
	return nil
}
