package alpha

import (
	"testing"

	"repro/internal/perm"
)

func TestSignatureOfDeBruijn(t *testing.T) {
	a := DeBruijnAlpha(2, 4)
	if got := SignatureOf(a); got != DeBruijnSignature(4) {
		t.Errorf("signature = %q, want %q", got, DeBruijnSignature(4))
	}
}

func TestSignatureOfExample332(t *testing.T) {
	a := MustNew(perm.Complement(3), perm.Identity(2), 1)
	// Figure 5: two C1⊗B1 components and one C2⊗B1.
	if got := SignatureOf(a); got != "2x(C1⊗B1) 1x(C2⊗B1)" {
		t.Errorf("signature = %q", got)
	}
}

func TestClassifyTotals(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 2}, {2, 3}, {3, 2}} {
		classes := Classify(c.d, c.D)
		_, total := DeBruijnFraction(classes, c.D)
		if total != TotalTriples(c.d, c.D) {
			t.Errorf("d=%d D=%d: classified %d of %d triples", c.d, c.D, total, TotalTriples(c.d, c.D))
		}
	}
}

func TestClassifyDeBruijnFractionIsOneOverD(t *testing.T) {
	// Proposition 3.9 quantified: exactly the cyclic f's — (D-1)! of D!
	// permutations, i.e. a 1/D fraction — give B(d, D), regardless of
	// σ and j.
	for _, c := range []struct{ d, D int }{{2, 2}, {2, 3}, {3, 2}, {2, 4}} {
		classes := Classify(c.d, c.D)
		deBruijn, total := DeBruijnFraction(classes, c.D)
		if deBruijn*c.D != total {
			t.Errorf("d=%d D=%d: %d of %d triples are de Bruijn (want 1/%d)",
				c.d, c.D, deBruijn, total, c.D)
		}
	}
}

func TestClassifySorted(t *testing.T) {
	classes := Classify(2, 3)
	for i := 1; i < len(classes); i++ {
		if classes[i].Count > classes[i-1].Count {
			t.Fatal("classes not sorted by count")
		}
	}
	if len(classes) < 2 {
		t.Fatalf("expected multiple structural classes, got %d", len(classes))
	}
}

func TestVerifySignatureTotals(t *testing.T) {
	perm.All(3, func(f perm.Perm) bool {
		for j := 0; j < 3; j++ {
			a := MustNew(f.Clone(), perm.Complement(2), j)
			if err := VerifySignatureTotals(2, 3, a); err != nil {
				t.Errorf("f=%v j=%d: %v", f, j, err)
			}
		}
		return true
	})
}
