// Package alpha implements the alphabet digraphs A(f, σ, j) of
// Definition 3.7 of Coudert, Ferreira, Pérennes (IPDPS 2000) and the
// isomorphism theory of Section 3.2:
//
//   - vertices are the words Z_d^D;
//   - Γ⁺(x) = σ(f→(x)) + Z_d·e_j, i.e. permute the letter positions by f,
//     replace every letter through σ, then let the letter at position j
//     range over the whole alphabet.
//
// Proposition 3.9: A(f, σ, j) ≅ B(d, D) iff f is a cyclic permutation of
// Z_D, with the isomorphism induced by g(i) = f^i(j); otherwise A(f, σ, j)
// is disconnected and (Remark 3.10) each weak component is the conjunction
// of a circuit with a de Bruijn digraph.
package alpha

import (
	"errors"
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/perm"
	"repro/internal/word"
)

// Alpha describes an alphabet digraph A(f, σ, j) of degree d = |σ| and
// dimension D = |f|.
type Alpha struct {
	f     perm.Perm // permutation of the index set Z_D
	sigma perm.Perm // permutation of the alphabet Z_d
	j     int       // the free position
}

// New validates the parameters and returns the alphabet digraph
// description. d and D are implied by the permutation sizes.
func New(f, sigma perm.Perm, j int) (*Alpha, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("alpha: index permutation: %w", err)
	}
	if err := sigma.Validate(); err != nil {
		return nil, fmt.Errorf("alpha: alphabet permutation: %w", err)
	}
	if f.N() == 0 {
		return nil, errors.New("alpha: dimension D must be positive")
	}
	if sigma.N() == 0 {
		return nil, errors.New("alpha: degree d must be positive")
	}
	if j < 0 || j >= f.N() {
		return nil, fmt.Errorf("alpha: free position %d out of Z_%d", j, f.N())
	}
	return &Alpha{f: f.Clone(), sigma: sigma.Clone(), j: j}, nil
}

// MustNew is New panicking on error.
func MustNew(f, sigma perm.Perm, j int) *Alpha {
	a, err := New(f, sigma, j)
	if err != nil {
		//lint:ignore panicstyle the error from New already carries the "alpha: " prefix
		panic(err)
	}
	return a
}

// DeBruijnAlpha returns the parameters exhibiting B(d, D) itself as an
// alphabet digraph (Remark 3.8): A(ρ, Id, 0) with ρ(i) = i+1 mod D.
func DeBruijnAlpha(d, D int) *Alpha {
	return MustNew(perm.CyclicShift(D), perm.Identity(d), 0)
}

// D returns the degree d (alphabet size).
func (a *Alpha) D() int { return a.sigma.N() }

// Dim returns the dimension D (word length).
func (a *Alpha) Dim() int { return a.f.N() }

// FreePosition returns j, the position whose letter is free.
func (a *Alpha) FreePosition() int { return a.j }

// F returns a copy of the index permutation f.
func (a *Alpha) F() perm.Perm { return a.f.Clone() }

// Sigma returns a copy of the alphabet permutation σ.
func (a *Alpha) Sigma() perm.Perm { return a.sigma.Clone() }

// N returns the number of vertices d^D.
func (a *Alpha) N() int { return word.Pow(a.D(), a.Dim()) }

// Successors returns Γ⁺(x) = σ(f→(x)) + Z_d·e_j in word form, ordered by
// the letter placed at position j. Adding Z_d at position j is the same as
// letting that letter range over the alphabet.
func (a *Alpha) Successors(x word.Word) []word.Word {
	base := x.ApplyIndex(a.f).ApplyAlphabet(a.sigma)
	d := a.D()
	out := make([]word.Word, d)
	for alpha := 0; alpha < d; alpha++ {
		out[alpha] = base.WithLetter(a.j, alpha)
	}
	return out
}

// Digraph materializes A(f, σ, j) on Horner labels.
func (a *Alpha) Digraph() *digraph.Digraph {
	d, D := a.D(), a.Dim()
	return digraph.FromFunc(a.N(), func(u int) []int {
		x := word.MustFromInt(d, D, u)
		succ := a.Successors(x)
		out := make([]int, len(succ))
		for i, y := range succ {
			out[i] = y.Int()
		}
		return out
	})
}

// GPerm returns the permutation g of Z_D associated with f in the proof of
// Proposition 3.9: g(i) = f^i(j). The second return reports whether g is a
// permutation at all, which holds exactly when f is cyclic (otherwise the
// orbit of j does not cover Z_D and values repeat).
func (a *Alpha) GPerm() (perm.Perm, bool) {
	D := a.Dim()
	image := make([]int, D)
	cur := a.j // f^0(j)
	for i := 0; i < D; i++ {
		image[i] = cur
		cur = a.f.Apply(cur)
	}
	g, err := perm.FromImage(image)
	if err != nil {
		return nil, false
	}
	return g, true
}

// IsDeBruijn reports whether A(f, σ, j) is isomorphic to B(d, D), i.e.
// whether f is cyclic (Proposition 3.9). This is the O(D) verification of
// Corollary 4.5.
func (a *Alpha) IsDeBruijn() bool { return a.f.IsCyclic() }

// IsoToDeBruijn returns an isomorphism from A(f, σ, j) onto B(d, D) as a
// vertex mapping on Horner labels, constructed from the proof of
// Proposition 3.9: g→ maps B_σ(d, D) onto A(f, σ, j), and the
// Proposition 3.2 witness W maps B_σ(d, D) onto B(d, D); the composition
// W ∘ (g→)⁻¹ is the required isomorphism. Returns an error when f is not
// cyclic.
func (a *Alpha) IsoToDeBruijn() ([]int, error) {
	if !a.f.IsCyclic() {
		return nil, fmt.Errorf("alpha: f = %v is not cyclic; A(f,σ,%d) is disconnected (Proposition 3.9)", a.f, a.j)
	}
	g, ok := a.GPerm()
	if !ok {
		return nil, errors.New("alpha: internal error: cyclic f produced non-bijective g")
	}
	gInv := g.Inverse()
	d, D := a.D(), a.Dim()
	w := debruijn.WitnessW(d, D, a.sigma)
	n := a.N()
	mapping := make([]int, n)
	for u := 0; u < n; u++ {
		x := word.MustFromInt(d, D, u)
		// (g→)⁻¹ = (g⁻¹)→ carries the A-vertex back to its B_σ label,
		// then W carries B_σ onto B.
		mapping[u] = w[x.ApplyIndex(gInv).Int()]
	}
	return mapping, nil
}

// VerifiedIsoToDeBruijn builds the witness and checks it against the
// materialized digraphs, returning the mapping.
func (a *Alpha) VerifiedIsoToDeBruijn() ([]int, error) {
	mapping, err := a.IsoToDeBruijn()
	if err != nil {
		return nil, err
	}
	g := a.Digraph()
	b := debruijn.DeBruijn(a.D(), a.Dim())
	if err := digraph.VerifyIsomorphism(g, b, mapping); err != nil {
		return nil, fmt.Errorf("alpha: witness failed verification: %w", err)
	}
	return mapping, nil
}

// CountDefinitions returns d!(D-1)!, the number of alternative definitions
// of B(d, D) obtained by combining Propositions 3.2 and 3.9 (Section 3.2):
// d! alphabet permutations times (D-1)! cyclic index permutations.
func CountDefinitions(d, D int) int {
	return perm.Factorial(d) * perm.Factorial(D-1)
}

// IsoBetween returns an isomorphism from A(f1, σ1, j1) onto A(f2, σ2, j2)
// when both index permutations are cyclic, by composing the two
// Proposition 3.9 witnesses through B(d, D): mapping = iso2⁻¹ ∘ iso1.
// The two digraphs must share degree and dimension.
func IsoBetween(a1, a2 *Alpha) ([]int, error) {
	if a1.D() != a2.D() || a1.Dim() != a2.Dim() {
		return nil, fmt.Errorf("alpha: shape mismatch (d=%d,D=%d) vs (d=%d,D=%d)",
			a1.D(), a1.Dim(), a2.D(), a2.Dim())
	}
	m1, err := a1.IsoToDeBruijn()
	if err != nil {
		return nil, err
	}
	m2, err := a2.IsoToDeBruijn()
	if err != nil {
		return nil, err
	}
	inv2 := make([]int, len(m2))
	for u, v := range m2 {
		inv2[v] = u
	}
	mapping := make([]int, len(m1))
	for u, v := range m1 {
		mapping[u] = inv2[v]
	}
	return mapping, nil
}
