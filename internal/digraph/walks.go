package digraph

// Walk counting. The algebraic signature of the de Bruijn digraph is
// A^D = J (the all-ones matrix): between any ordered pair of vertices
// there is exactly one walk of length D. The Kautz digraph satisfies
// A^D + A^{D-1} = J. These identities pin the constructions down far more
// tightly than degree/diameter checks, so the tests use them as a final
// cross-validation of every builder in the repository.

// CountWalks returns the matrix W with W[u][v] = number of directed walks
// of length k from u to v, by repeated adjacency multiplication. O(k·n·m);
// keep n modest.
func (g *Digraph) CountWalks(k int) [][]int {
	n := g.N()
	w := make([][]int, n)
	for u := 0; u < n; u++ {
		w[u] = make([]int, n)
		w[u][u] = 1 // walks of length 0
	}
	for step := 0; step < k; step++ {
		next := make([][]int, n)
		for u := 0; u < n; u++ {
			next[u] = make([]int, n)
		}
		for u := 0; u < n; u++ {
			row := w[u]
			for mid, cnt := range row {
				if cnt == 0 {
					continue
				}
				for _, v := range g.adj[mid] {
					next[u][v] += cnt
				}
			}
		}
		w = next
	}
	return w
}

// IsWalkRegular reports whether every ordered pair has exactly c walks of
// length k (A^k = c·J).
func (g *Digraph) IsWalkRegular(k, c int) bool {
	w := g.CountWalks(k)
	for u := range w {
		for _, cnt := range w[u] {
			if cnt != c {
				return false
			}
		}
	}
	return true
}

// WalkPolynomialIsAllOnes reports whether Σ_k A^{k} over the given
// lengths equals J — e.g. Kautz satisfies it for lengths {D-1, D}.
func (g *Digraph) WalkPolynomialIsAllOnes(lengths []int) bool {
	n := g.N()
	total := make([][]int, n)
	for u := 0; u < n; u++ {
		total[u] = make([]int, n)
	}
	for _, k := range lengths {
		w := g.CountWalks(k)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				total[u][v] += w[u][v]
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if total[u][v] != 1 {
				return false
			}
		}
	}
	return true
}
