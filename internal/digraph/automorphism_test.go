package digraph

import (
	"testing"
)

func TestAutomorphismsOfCircuit(t *testing.T) {
	// Directed C_n has exactly the n rotations.
	for _, n := range []int{1, 3, 5, 8} {
		if got := Circuit(n).AutomorphismCount(0); got != n {
			t.Errorf("Aut(C_%d) = %d, want %d", n, got, n)
		}
	}
}

func TestAutomorphismsOfComplete(t *testing.T) {
	// K*_n admits every permutation.
	if got := CompleteWithLoops(4).AutomorphismCount(0); got != 24 {
		t.Errorf("Aut(K*_4) = %d, want 24", got)
	}
}

func TestAutomorphismsAreValid(t *testing.T) {
	g := deBruijnCongruence(2, 3)
	count := 0
	g.Automorphisms(func(m []int) bool {
		mapping := append([]int(nil), m...)
		if err := VerifyIsomorphism(g, g, mapping); err != nil {
			t.Fatalf("emitted non-automorphism: %v", err)
		}
		count++
		return true
	})
	if count == 0 {
		t.Fatal("no automorphisms found (identity must exist)")
	}
}

func TestAutomorphismCountLimit(t *testing.T) {
	g := CompleteWithLoops(5)
	if got := g.AutomorphismCount(7); got != 7 {
		t.Errorf("limited count = %d, want 7", got)
	}
}

func TestDeBruijnAutomorphismGroup(t *testing.T) {
	// |Aut(B(d,D))| = d!: exactly the letterwise alphabet permutations
	// (letterwise σ maps the successor set of x onto the successor set
	// of σ(x), and the search finds nothing else).
	want := map[int]int{2: 2, 3: 6, 4: 24}
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 2}} {
		g := deBruijnCongruence(c.d, c.D)
		if got := g.AutomorphismCount(0); got != want[c.d] {
			t.Errorf("|Aut(B(%d,%d))| = %d, want %d", c.d, c.D, got, want[c.d])
		}
	}
}

func TestVertexTransitivity(t *testing.T) {
	if !Circuit(6).IsVertexTransitive() {
		t.Error("C_6 should be vertex transitive")
	}
	if !CompleteWithLoops(4).IsVertexTransitive() {
		t.Error("K*_4 should be vertex transitive")
	}
	// De Bruijn digraphs are famously NOT vertex transitive (loop
	// vertices differ from the rest).
	if deBruijnCongruence(2, 3).IsVertexTransitive() {
		t.Error("B(2,3) should not be vertex transitive")
	}
	p := New(2)
	p.AddArc(0, 1)
	if p.IsVertexTransitive() {
		t.Error("path should not be vertex transitive")
	}
}

func TestEmptyAutomorphisms(t *testing.T) {
	if got := New(0).AutomorphismCount(0); got != 1 {
		t.Errorf("empty digraph Aut count = %d, want 1 (empty mapping)", got)
	}
}
