package digraph

import (
	"math/rand"
	"reflect"
	"testing"
)

// deBruijnCongruence builds B(d, D) in RRK congruence form (Remark 2.6) for
// use as a test fixture without importing the debruijn package (which would
// create an import cycle: debruijn depends on digraph).
func deBruijnCongruence(d, D int) *Digraph {
	n := 1
	for i := 0; i < D; i++ {
		n *= d
	}
	return FromFunc(n, func(u int) []int {
		out := make([]int, d)
		for a := 0; a < d; a++ {
			out[a] = (d*u + a) % n
		}
		return out
	})
}

func TestNewAndAddArc(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("fresh digraph n=%d m=%d", g.N(), g.M())
	}
	g.AddArc(0, 1)
	g.AddArc(0, 1) // parallel arc
	g.AddArc(2, 2) // loop
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if g.ArcMultiplicity(0, 1) != 2 {
		t.Error("parallel arc not counted")
	}
	if !g.HasArc(2, 2) {
		t.Error("loop missing")
	}
	if got := g.Loops(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("Loops = %v", got)
	}
}

func TestAddArcBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range arc accepted")
		}
	}()
	New(2).AddArc(0, 5)
}

func TestDegrees(t *testing.T) {
	g := deBruijnCongruence(2, 3)
	if !g.IsOutRegular(2) || !g.IsInRegular(2) || !g.IsRegular(2) {
		t.Error("B(2,3) must be 2-regular")
	}
	if g.IsRegular(3) {
		t.Error("B(2,3) reported 3-regular")
	}
	in := g.InDegrees()
	for u, d := range in {
		if d != 2 {
			t.Errorf("in-degree of %d = %d", u, d)
		}
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 2)
	r := g.Reverse()
	if !r.HasArc(1, 0) || !r.HasArc(2, 1) || !r.HasArc(2, 2) {
		t.Error("Reverse missing arcs")
	}
	if r.M() != 3 {
		t.Error("Reverse arc count wrong")
	}
	if !r.Reverse().Equal(g) {
		t.Error("double reverse != original")
	}
}

func TestEqual(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	h := New(2)
	h.AddArc(0, 1)
	if g.Equal(h) {
		t.Error("different multiplicities reported equal")
	}
	h.AddArc(0, 1)
	if !g.Equal(h) {
		t.Error("equal digraphs reported different")
	}
}

func TestBFSAndDiameter(t *testing.T) {
	// Directed path 0→1→2→3.
	g := New(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	dist := g.BFSFrom(0)
	if !reflect.DeepEqual(dist, []int{0, 1, 2, 3}) {
		t.Fatalf("BFS dist = %v", dist)
	}
	if d := g.BFSFrom(3)[0]; d != Unreachable {
		t.Error("reverse reachability reported on a path")
	}
	if g.Diameter() != Unreachable {
		t.Error("path digraph has no finite directed diameter")
	}
	// Close the cycle: now diameter 3.
	g.AddArc(3, 0)
	if got := g.Diameter(); got != 3 {
		t.Errorf("C4 diameter = %d, want 3", got)
	}
}

func TestDeBruijnDiameter(t *testing.T) {
	// The defining property: B(d, D) has diameter exactly D.
	cases := []struct{ d, D int }{{2, 3}, {2, 6}, {3, 3}, {4, 2}, {2, 8}}
	for _, c := range cases {
		g := deBruijnCongruence(c.d, c.D)
		if got := g.Diameter(); got != c.D {
			t.Errorf("B(%d,%d) diameter = %d, want %d", c.d, c.D, got, c.D)
		}
	}
}

func TestDiameterAtMost(t *testing.T) {
	g := deBruijnCongruence(2, 5)
	if !g.DiameterAtMost(5) {
		t.Error("B(2,5) diameter should be at most 5")
	}
	if g.DiameterAtMost(4) {
		t.Error("B(2,5) diameter should exceed 4")
	}
	// Disconnected digraph: never within any bound.
	h := New(2)
	if h.DiameterAtMost(10) {
		t.Error("arcless digraph reported within diameter bound")
	}
}

func TestEccentricity(t *testing.T) {
	g := deBruijnCongruence(2, 4)
	for u := 0; u < g.N(); u++ {
		ecc := g.Eccentricity(u)
		// In B(2,4): from vertex u every vertex is within 4, and some
		// vertex is exactly 4 away except... in fact eccentricity of
		// every de Bruijn vertex is exactly D.
		if ecc != 4 {
			t.Errorf("ecc(%d) = %d, want 4", u, ecc)
		}
	}
}

func TestDistanceHistogram(t *testing.T) {
	g := deBruijnCongruence(2, 3)
	hist, unreachable := g.DistanceHistogram()
	if unreachable != 0 {
		t.Fatalf("unreachable = %d", unreachable)
	}
	// Total ordered pairs = n².
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != 64 {
		t.Fatalf("histogram total = %d, want 64", total)
	}
	if hist[0] != 8 {
		t.Errorf("hist[0] = %d, want 8", hist[0])
	}
	if len(hist)-1 != 3 {
		t.Errorf("max distance %d, want 3", len(hist)-1)
	}
}

func TestMeanDistance(t *testing.T) {
	g := Circuit(4)
	mean, ok := g.MeanDistance()
	if !ok {
		t.Fatal("circuit should be strongly connected")
	}
	// Distances from any vertex: 1, 2, 3 → mean = 2.
	if mean != 2.0 {
		t.Errorf("mean distance = %v, want 2", mean)
	}
	if _, ok := New(3).MeanDistance(); ok {
		t.Error("arcless digraph should report not-ok")
	}
}

func TestShortestPath(t *testing.T) {
	g := deBruijnCongruence(2, 4)
	path := g.ShortestPath(3, 12)
	if path == nil || path[0] != 3 || path[len(path)-1] != 12 {
		t.Fatalf("bad path %v", path)
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.HasArc(path[i], path[i+1]) {
			t.Fatalf("path uses missing arc (%d,%d)", path[i], path[i+1])
		}
	}
	dist := g.BFSFrom(3)
	if len(path)-1 != dist[12] {
		t.Errorf("path length %d, BFS distance %d", len(path)-1, dist[12])
	}
	if p := g.ShortestPath(0, 0); len(p) != 1 {
		t.Errorf("trivial path = %v", p)
	}
	h := New(2)
	if h.ShortestPath(0, 1) != nil {
		t.Error("path found in arcless digraph")
	}
}

func TestGirth(t *testing.T) {
	if got := Circuit(5).Girth(); got != 5 {
		t.Errorf("C5 girth = %d", got)
	}
	if got := deBruijnCongruence(2, 3).Girth(); got != 1 {
		t.Errorf("B(2,3) girth = %d, want 1 (loops at 000, 111)", got)
	}
	acyclic := New(3)
	acyclic.AddArc(0, 1)
	acyclic.AddArc(1, 2)
	if acyclic.Girth() != Unreachable {
		t.Error("acyclic digraph has a girth")
	}
}

func TestSCCTarjan(t *testing.T) {
	// Two 2-cycles joined by a one-way arc, plus an isolated vertex.
	g := New(5)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	g.AddArc(3, 2)
	comps := g.StronglyConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d SCCs: %v", len(comps), comps)
	}
	// Check the partition regardless of order.
	byVertex := map[int][]int{}
	for _, c := range comps {
		for _, v := range c {
			byVertex[v] = c
		}
	}
	if !reflect.DeepEqual(byVertex[0], []int{0, 1}) {
		t.Errorf("SCC of 0 = %v", byVertex[0])
	}
	if !reflect.DeepEqual(byVertex[2], []int{2, 3}) {
		t.Errorf("SCC of 2 = %v", byVertex[2])
	}
	if !reflect.DeepEqual(byVertex[4], []int{4}) {
		t.Errorf("SCC of 4 = %v", byVertex[4])
	}
}

func TestSCCReverseTopologicalOrder(t *testing.T) {
	// Tarjan emits components in reverse topological order: a component
	// is emitted before any component that can reach it.
	g := New(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 1)
	g.AddArc(2, 3)
	comps := g.StronglyConnectedComponents()
	pos := map[int]int{}
	for i, c := range comps {
		for _, v := range c {
			pos[v] = i
		}
	}
	if !(pos[3] < pos[1] && pos[1] < pos[0]) {
		t.Errorf("not reverse topological: %v", comps)
	}
}

func TestSCCDeBruijnIsOneComponent(t *testing.T) {
	g := deBruijnCongruence(2, 6)
	comps := g.StronglyConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 64 {
		t.Fatalf("B(2,6) SCCs = %d", len(comps))
	}
	if !g.IsStronglyConnected() {
		t.Error("IsStronglyConnected disagrees")
	}
}

func TestSCCLargeRandomAgainstDefinition(t *testing.T) {
	// Validate Tarjan against the O(n²) definition on random digraphs.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := New(n)
		for k := 0; k < n*2; k++ {
			g.AddArc(rng.Intn(n), rng.Intn(n))
		}
		comps := g.StronglyConnectedComponents()
		compOf := make([]int, n)
		for i, c := range comps {
			for _, v := range c {
				compOf[v] = i
			}
		}
		// Mutual reachability check.
		reach := make([][]int, n)
		for u := 0; u < n; u++ {
			reach[u] = g.BFSFrom(u)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := reach[u][v] != Unreachable && reach[v][u] != Unreachable
				if mutual != (compOf[u] == compOf[v]) {
					t.Fatalf("trial %d: SCC disagrees for (%d,%d)", trial, u, v)
				}
			}
		}
	}
}

func TestWeakComponents(t *testing.T) {
	g := New(6)
	g.AddArc(0, 1)
	g.AddArc(2, 1) // weakly joins 2 to {0,1}
	g.AddArc(3, 4)
	comps := g.WeaklyConnectedComponents()
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("weak components = %v, want %v", comps, want)
	}
	if g.IsWeaklyConnected() {
		t.Error("disconnected digraph reported weakly connected")
	}
	if !Circuit(3).IsWeaklyConnected() {
		t.Error("C3 not weakly connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := deBruijnCongruence(2, 3)
	sub, old := g.InducedSubgraph([]int{0, 1, 2})
	if sub.N() != 3 {
		t.Fatalf("sub n=%d", sub.N())
	}
	if !reflect.DeepEqual(old, []int{0, 1, 2}) {
		t.Fatalf("old labels %v", old)
	}
	// 0→{0,1}, 1→{2,3}, 2→{4,5}: induced arcs 0→0, 0→1, 1→2.
	if sub.M() != 3 || !sub.HasArc(0, 0) || !sub.HasArc(0, 1) || !sub.HasArc(1, 2) {
		t.Errorf("induced arcs wrong: %v", sub)
	}
}

func TestConjunctionDefinition(t *testing.T) {
	// Check Definition 2.3 directly on small digraphs.
	g1 := Circuit(2)
	g2 := Circuit(3)
	c := Conjunction(g1, g2)
	if c.N() != 6 || c.M() != 6 {
		t.Fatalf("C2⊗C3: n=%d m=%d", c.N(), c.M())
	}
	// (0,0) → (1,1): label 0*3+0=0 → 1*3+1=4.
	if !c.HasArc(0, 4) {
		t.Error("C2⊗C3 missing arc (0,0)→(1,1)")
	}
	// C2 ⊗ C3 = C6 (gcd(2,3)=1).
	if got := c.Diameter(); got != 5 {
		t.Errorf("C2⊗C3 diameter = %d, want 5 (it is C6)", got)
	}
}

func TestConjunctionDeBruijnIdentity(t *testing.T) {
	// Remark 2.4: B(d,k) ⊗ B(d',k) = B(dd',k).
	b2 := deBruijnCongruence(2, 2)
	b3 := deBruijnCongruence(3, 2)
	prod := Conjunction(b2, b3)
	b6 := deBruijnCongruence(6, 2)
	if prod.N() != b6.N() || prod.M() != b6.M() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", prod.N(), prod.M(), b6.N(), b6.M())
	}
	if _, ok := FindIsomorphism(prod, b6); !ok {
		t.Error("B(2,2)⊗B(3,2) not isomorphic to B(6,2)")
	}
}

func TestLineDigraphOfDeBruijn(t *testing.T) {
	// L(B(d,D)) = B(d,D+1).
	for _, c := range []struct{ d, D int }{{2, 2}, {2, 3}, {3, 2}} {
		b := deBruijnCongruence(c.d, c.D)
		l, arcs := LineDigraph(b)
		next := deBruijnCongruence(c.d, c.D+1)
		if l.N() != next.N() {
			t.Fatalf("L(B(%d,%d)) has %d vertices, want %d", c.d, c.D, l.N(), next.N())
		}
		if len(arcs) != b.M() {
			t.Fatalf("arc table size %d != m %d", len(arcs), b.M())
		}
		if _, ok := FindIsomorphism(l, next); !ok {
			t.Errorf("L(B(%d,%d)) not isomorphic to B(%d,%d)", c.d, c.D, c.d, c.D+1)
		}
	}
}

func TestCircuit(t *testing.T) {
	c1 := Circuit(1)
	if c1.N() != 1 || !c1.HasArc(0, 0) {
		t.Error("C1 must be a loop")
	}
	c4 := Circuit(4)
	if !c4.IsRegular(1) || c4.Diameter() != 3 {
		t.Error("C4 malformed")
	}
}

func TestCompleteWithLoops(t *testing.T) {
	k := CompleteWithLoops(4)
	if k.M() != 16 || !k.IsRegular(4) {
		t.Fatalf("K*_4: m=%d", k.M())
	}
	if k.Diameter() != 1 {
		t.Errorf("K*_4 diameter = %d", k.Diameter())
	}
}

func TestMooreBound(t *testing.T) {
	if MooreBound(2, 3) != 15 {
		t.Errorf("Moore(2,3) = %d, want 15", MooreBound(2, 3))
	}
	if MooreBound(2, 8) != 511 {
		t.Errorf("Moore(2,8) = %d, want 511", MooreBound(2, 8))
	}
	// Kautz K(2,8) from Table 1 has 384 = 2^7·3 nodes < 511.
	if 384 >= MooreBound(2, 8) {
		t.Error("Kautz exceeds Moore bound?!")
	}
}

func TestVerifyIsomorphism(t *testing.T) {
	g := Circuit(4)
	h := New(4)
	// Same cycle relabelled 0→2→1→3→0.
	h.AddArc(0, 2)
	h.AddArc(2, 1)
	h.AddArc(1, 3)
	h.AddArc(3, 0)
	mapping := []int{0, 3, 2, 1} // g vertex i ↦ h vertex
	// g arc 0→1 must become h arc 0→3? h has 0→2. Find correct mapping:
	// follow cycles: g: 0,1,2,3; h cycle from 0: 0,2,1,3.
	mapping = []int{0, 2, 1, 3}
	if err := VerifyIsomorphism(g, h, mapping); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	bad := []int{0, 1, 2, 3}
	if VerifyIsomorphism(g, h, bad) == nil {
		t.Error("invalid mapping accepted")
	}
	if VerifyIsomorphism(g, h, []int{0, 0, 1, 2}) == nil {
		t.Error("non-injective mapping accepted")
	}
	if VerifyIsomorphism(g, h, []int{0, 1}) == nil {
		t.Error("short mapping accepted")
	}
}

func TestFindIsomorphismPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(12)
		g := New(n)
		for k := 0; k < 2*n; k++ {
			g.AddArc(rng.Intn(n), rng.Intn(n))
		}
		// Random relabelling of g.
		pi := rng.Perm(n)
		h := New(n)
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				h.AddArc(pi[u], pi[v])
			}
		}
		mapping, ok := FindIsomorphism(g, h)
		if !ok {
			t.Fatalf("trial %d: isomorphic digraphs not matched", trial)
		}
		if err := VerifyIsomorphism(g, h, mapping); err != nil {
			t.Fatalf("trial %d: returned mapping invalid: %v", trial, err)
		}
	}
}

func TestFindIsomorphismNegative(t *testing.T) {
	// C6 vs C3+C3: same degree sequence, not isomorphic.
	c6 := Circuit(6)
	two := New(6)
	for _, base := range []int{0, 3} {
		for i := 0; i < 3; i++ {
			two.AddArc(base+i, base+(i+1)%3)
		}
	}
	if AreIsomorphic(c6, two) {
		t.Error("C6 ≅ C3⊎C3 reported")
	}
	// Different sizes.
	if AreIsomorphic(Circuit(3), Circuit(4)) {
		t.Error("C3 ≅ C4 reported")
	}
	// Same size, different arc counts.
	g := Circuit(4)
	h := g.Clone()
	h.AddArc(0, 2)
	if AreIsomorphic(g, h) {
		t.Error("different arc counts reported isomorphic")
	}
}

func TestFindIsomorphismDeBruijnSelf(t *testing.T) {
	g := deBruijnCongruence(2, 4)
	mapping, ok := FindIsomorphism(g, g.Clone())
	if !ok {
		t.Fatal("B(2,4) not isomorphic to itself")
	}
	if err := VerifyIsomorphism(g, g, mapping); err != nil {
		t.Fatal(err)
	}
}

func TestColorInvariant(t *testing.T) {
	g := deBruijnCongruence(2, 3)
	h := deBruijnCongruence(2, 3)
	if g.ColorInvariant() != h.ColorInvariant() {
		t.Error("identical digraphs, different invariants")
	}
	k := CompleteWithLoops(8)
	if g.ColorInvariant() == k.ColorInvariant() {
		t.Error("B(2,3) and K*_8 share an invariant (unlucky but suspicious)")
	}
}

func TestDegreeSequence(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(1, 2)
	seq := g.DegreeSequence()
	if len(seq) != 3 {
		t.Fatalf("len = %d", len(seq))
	}
	h := g.Reverse()
	// Degree sequences of g and its reverse differ in general (out/in swap).
	_ = h.DegreeSequence()
}

func TestCloneIndependence(t *testing.T) {
	g := Circuit(3)
	h := g.Clone()
	h.AddArc(0, 0)
	if g.M() != 3 {
		t.Error("Clone shares storage")
	}
	if !g.Equal(Circuit(3)) {
		t.Error("original mutated")
	}
}

func TestStringRendering(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	s := g.String()
	if s == "" {
		t.Error("empty String")
	}
}

func TestEmptyDigraph(t *testing.T) {
	g := New(0)
	if g.Diameter() != Unreachable {
		t.Error("empty diameter")
	}
	if g.IsStronglyConnected() {
		t.Error("empty digraph strongly connected")
	}
	if comps := g.StronglyConnectedComponents(); len(comps) != 0 {
		t.Error("empty digraph has components")
	}
	mapping, ok := FindIsomorphism(g, New(0))
	if !ok || len(mapping) != 0 {
		t.Error("empty digraphs not isomorphic")
	}
}
