package digraph

import "math"

// Digraph constructions used by the paper: conjunction (Definition 2.3),
// line digraphs, circuits and complete digraphs with loops.

// Conjunction returns G1 ⊗ G2 (Definition 2.3): vertex set V1 × V2 with an
// arc from (u1, u2) to (v1, v2) iff (u1, v1) ∈ E1 and (u2, v2) ∈ E2.
// Vertex (u1, u2) is labelled u1*|V2| + u2. Remark 2.4 gives
// B(d, k) ⊗ B(d', k) = B(dd', k); Remark 3.10 describes the components of
// a non-cyclic A(f, σ, s) as conjunctions of de Bruijn digraphs with
// circuits. Arc multiplicities multiply.
func Conjunction(g1, g2 *Digraph) *Digraph {
	n1, n2 := g1.N(), g2.N()
	g := New(n1 * n2)
	for u1 := 0; u1 < n1; u1++ {
		for _, v1 := range g1.adj[u1] {
			for u2 := 0; u2 < n2; u2++ {
				for _, v2 := range g2.adj[u2] {
					g.AddArc(u1*n2+u2, v1*n2+v2)
				}
			}
		}
	}
	return g
}

// ConjunctionLabel returns the conjunction vertex label of (u1, u2) given
// |V2| = n2, matching the labelling used by Conjunction.
func ConjunctionLabel(u1, u2, n2 int) int { return u1*n2 + u2 }

// LineDigraph returns the line digraph L(G): one vertex per arc of G, with
// an arc from a = (u, v) to b = (v', w) iff v = v'. The de Bruijn digraph
// satisfies L(B(d, D)) = B(d, D+1), which the tests exploit as an
// independent construction cross-check. The second return maps each line
// vertex to its originating arc (tail, head).
func LineDigraph(g *Digraph) (*Digraph, [][2]int) {
	arcs := make([][2]int, 0, g.M())
	arcsFrom := make([][]int, g.N()) // arc ids leaving each vertex
	for u, heads := range g.adj {
		for _, v := range heads {
			arcsFrom[u] = append(arcsFrom[u], len(arcs))
			arcs = append(arcs, [2]int{u, v})
		}
	}
	l := New(len(arcs))
	for id, arc := range arcs {
		for _, next := range arcsFrom[arc[1]] {
			l.AddArc(id, next)
		}
	}
	return l, arcs
}

// Circuit returns the directed cycle C_k on k vertices (0→1→...→k-1→0).
// C_1 is a single vertex with a loop, matching the paper's usage in
// example 3.3.2 where components C_1 ⊗ B(d, 1) appear.
func Circuit(k int) *Digraph {
	if k < 1 {
		panic("digraph: circuit length must be >= 1")
	}
	g := New(k)
	for u := 0; u < k; u++ {
		g.AddArc(u, (u+1)%k)
	}
	return g
}

// CompleteWithLoops returns the symmetric complete digraph with loops K*_n
// (every ordered pair including (u, u) is an arc). Zane et al. showed OTIS
// realizes this digraph; it is the baseline whose per-node transceiver
// count the de Bruijn layouts improve on.
func CompleteWithLoops(n int) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			g.AddArc(u, v)
		}
	}
	return g
}

// MooreBound returns the directed Moore bound 1 + d + d² + ... + d^D, the
// maximum possible number of vertices of a digraph with maximum out-degree d
// and diameter D. Bridges and Toueg proved it is unattainable for d, D ≥ 2;
// Kautz digraphs, which Table 1 finds as the largest OTIS-realizable
// digraphs, come within a factor (d+1)/d of d^D.
func MooreBound(d, D int) int {
	bound := 1
	pow := 1
	for i := 1; i <= D; i++ {
		if pow > math.MaxInt/d {
			panic("digraph: Moore bound overflows int")
		}
		pow *= d
		if bound > math.MaxInt-pow {
			panic("digraph: Moore bound overflows int")
		}
		bound += pow
	}
	return bound
}
