package digraph

// Connectivity: strongly connected components (iterative Tarjan) and weak
// components (union-find). Proposition 3.9 of the paper states that
// A(f, σ, j) is disconnected whenever f is not cyclic; Remark 3.10 describes
// the components. These routines let the alpha package verify both claims.

// StronglyConnectedComponents returns the strongly connected components of g
// in reverse topological order of the component DAG. Each component lists
// its vertices in increasing order.
func (g *Digraph) StronglyConnectedComponents() [][]int {
	n := g.N()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	var components [][]int
	next := 0

	// Iterative Tarjan with an explicit call stack: the de Bruijn digraphs
	// searched in Table 1 reach thousands of vertices, too deep for the
	// goroutine stack with naive recursion on adversarial shapes.
	type frame struct {
		u       int
		arcIdx  int
		fromArc bool
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		callStack := []frame{{u: root}}
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			u := f.u
			if f.arcIdx == 0 && !f.fromArc {
				index[u] = next
				low[u] = next
				next++
				stack = append(stack, u)
				onStack[u] = true
				f.fromArc = true
			}
			advanced := false
			for f.arcIdx < len(g.adj[u]) {
				v := g.adj[u][f.arcIdx]
				f.arcIdx++
				if index[v] == -1 {
					callStack = append(callStack, frame{u: v})
					advanced = true
					break
				}
				if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
			}
			if advanced {
				continue
			}
			// u is finished.
			if low[u] == index[u] {
				var component []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(components)
					component = append(component, w)
					if w == u {
						break
					}
				}
				sortInts(component)
				components = append(components, component)
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].u
				if low[u] < low[parent] {
					low[parent] = low[u]
				}
			}
		}
	}
	return components
}

// IsStronglyConnected reports whether g has a single strongly connected
// component covering every vertex. The empty digraph is not strongly
// connected.
func (g *Digraph) IsStronglyConnected() bool {
	if g.N() == 0 {
		return false
	}
	// Two BFS passes are cheaper than full Tarjan for a yes/no answer.
	for _, d := range g.BFSFrom(0) {
		if d == Unreachable {
			return false
		}
	}
	for _, d := range g.Reverse().BFSFrom(0) {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// WeaklyConnectedComponents returns the weak components (components of the
// underlying undirected graph), each listed increasing, ordered by smallest
// vertex.
func (g *Digraph) WeaklyConnectedComponents() [][]int {
	n := g.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for u, heads := range g.adj {
		for _, v := range heads {
			union(u, v)
		}
	}
	groups := make(map[int][]int)
	for u := 0; u < n; u++ {
		r := find(u)
		groups[r] = append(groups[r], u)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sortInts(roots)
	components := make([][]int, 0, len(roots))
	for _, r := range roots {
		members := groups[r]
		sortInts(members)
		components = append(components, members)
	}
	return components
}

// IsWeaklyConnected reports whether the underlying undirected graph is
// connected (the sense in which Proposition 3.9 says "connected").
func (g *Digraph) IsWeaklyConnected() bool {
	return g.N() > 0 && len(g.WeaklyConnectedComponents()) == 1
}

// InducedSubgraph returns the subgraph induced by vertices (which must be
// distinct), relabelled 0..len(vertices)-1 in the given order, together with
// the mapping from new labels back to old.
func (g *Digraph) InducedSubgraph(vertices []int) (*Digraph, []int) {
	newLabel := make(map[int]int, len(vertices))
	for i, v := range vertices {
		if _, dup := newLabel[v]; dup {
			panic("digraph: duplicate vertex in InducedSubgraph")
		}
		newLabel[v] = i
	}
	h := New(len(vertices))
	for i, u := range vertices {
		for _, v := range g.adj[u] {
			if j, ok := newLabel[v]; ok {
				h.AddArc(i, j)
			}
		}
	}
	old := append([]int(nil), vertices...)
	return h, old
}

func sortInts(a []int) {
	// insertion sort: component slices are small and this avoids pulling
	// sort into the hot path with interface conversions.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
