package digraph

// Maximum flow and connectivity. The de Bruijn/Kautz networks the paper
// lays out are prized for fault tolerance: B(d, D) is (d-1)-connected and
// K(d, D) is d-connected, so the optical machine survives transceiver
// failures. These routines verify those classical facts on the digraphs
// this repository constructs (Menger: max-flow = disjoint paths).

// MaxFlowUnit computes the maximum number of arc-disjoint s→t paths
// (max flow with unit arc capacities, counting parallel arcs separately)
// via Edmonds–Karp BFS augmentation, and returns the paths.
func (g *Digraph) MaxFlowUnit(s, t int) (int, [][]int) {
	if s == t {
		return 0, nil
	}
	n := g.N()
	// Build residual structure: arcs with flow flags plus reverse
	// residual adjacency.
	type arcRec struct {
		to   int
		used bool
	}
	arcs := make([]arcRec, 0, g.M())
	fwd := make([][]int, n) // arc ids leaving each vertex
	for u := 0; u < n; u++ {
		for _, v := range g.adj[u] {
			fwd[u] = append(fwd[u], len(arcs))
			arcs = append(arcs, arcRec{to: v})
		}
	}
	tails := make([]int, len(arcs))
	for u := 0; u < n; u++ {
		for _, id := range fwd[u] {
			tails[id] = u
		}
	}
	rev := make([][]int, n) // arc ids entering each vertex
	for id, a := range arcs {
		rev[a.to] = append(rev[a.to], id)
	}

	flow := 0
	parentArc := make([]int, n)
	parentDir := make([]bool, n) // true: forward arc, false: cancel
	for {
		for i := range parentArc {
			parentArc[i] = -1
		}
		parentArc[s] = -2
		queue := []int{s}
		found := false
		for len(queue) > 0 && !found {
			u := queue[0]
			queue = queue[1:]
			for _, id := range fwd[u] {
				if arcs[id].used || parentArc[arcs[id].to] != -1 {
					continue
				}
				parentArc[arcs[id].to] = id
				parentDir[arcs[id].to] = true
				if arcs[id].to == t {
					found = true
					break
				}
				queue = append(queue, arcs[id].to)
			}
			if found {
				break
			}
			// Residual (cancellation) edges: traverse used arcs backwards.
			for _, id := range rev[u] {
				if !arcs[id].used {
					continue
				}
				w := tails[id]
				if parentArc[w] != -1 {
					continue
				}
				parentArc[w] = id
				parentDir[w] = false
				queue = append(queue, w)
			}
		}
		if !found {
			break
		}
		// Augment along the path.
		for v := t; v != s; {
			id := parentArc[v]
			if parentDir[v] {
				arcs[id].used = true
				v = tails[id]
			} else {
				arcs[id].used = false
				v = arcs[id].to
			}
		}
		flow++
	}

	// Decompose the flow into arc-disjoint paths.
	next := make([][]int, n)
	for id, a := range arcs {
		if a.used {
			next[tails[id]] = append(next[tails[id]], a.to)
		}
	}
	var paths [][]int
	for i := 0; i < flow; i++ {
		path := []int{s}
		u := s
		for u != t {
			v := next[u][len(next[u])-1]
			next[u] = next[u][:len(next[u])-1]
			path = append(path, v)
			u = v
		}
		paths = append(paths, path)
	}
	return flow, paths
}

// ArcConnectivity returns the arc connectivity λ(g): the minimum over
// ordered vertex pairs of the max number of arc-disjoint paths. 0 for
// digraphs that are not strongly connected or have fewer than 2 vertices.
func (g *Digraph) ArcConnectivity() int {
	n := g.N()
	if n < 2 || !g.IsStronglyConnected() {
		return 0
	}
	// λ = min over v of min(flow(0→v), flow(v→0)) suffices for strongly
	// connected digraphs (a minimum cut separates some vertex from
	// vertex 0 in one direction).
	best := -1
	for v := 1; v < n; v++ {
		f1, _ := g.MaxFlowUnit(0, v)
		if best == -1 || f1 < best {
			best = f1
		}
		f2, _ := g.MaxFlowUnit(v, 0)
		if f2 < best {
			best = f2
		}
	}
	return best
}

// VertexConnectivity returns the vertex connectivity κ(g) of a loop-free
// view of g: the minimum number of internal vertices whose removal
// disconnects some ordered pair, computed by vertex splitting. Loops are
// ignored (they never affect connectivity). Returns n-1 for complete-like
// digraphs where no pair is non-adjacent.
func (g *Digraph) VertexConnectivity() int {
	n := g.N()
	if n < 2 || !g.IsStronglyConnected() {
		return 0
	}
	// Split each vertex v into v_in (v) and v_out (v+n) with a unit arc;
	// original arc (u, v) becomes (u_out, v_in) with unit capacity.
	split := New(2 * n)
	for v := 0; v < n; v++ {
		split.AddArc(v, v+n)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.adj[u] {
			if v == u {
				continue // loops are irrelevant
			}
			split.AddArc(u+n, v)
		}
	}
	best := -1
	// κ = min over non-adjacent ordered pairs (u, v) of flow(u_out, v_in).
	// Checking all pairs against vertex 0 in both directions is not
	// sufficient for κ in general; we scan all non-adjacent pairs, which
	// is fine at the sizes used here.
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || g.HasArc(u, v) {
				continue
			}
			f, _ := split.MaxFlowUnit(u+n, v)
			if best == -1 || f < best {
				best = f
			}
		}
	}
	if best == -1 {
		return n - 1 // every ordered pair adjacent
	}
	return best
}

// ArcDisjointPaths returns a maximum set of pairwise arc-disjoint s→t
// paths.
func (g *Digraph) ArcDisjointPaths(s, t int) [][]int {
	_, paths := g.MaxFlowUnit(s, t)
	return paths
}
