package digraph

import "testing"

func TestRemoveArc(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1)
	g.AddArc(0, 1) // parallel
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	g.AddArc(3, 0)

	h := g.RemoveArc(0, 1)
	if h.M() != g.M()-1 {
		t.Fatalf("RemoveArc: m = %d, want %d", h.M(), g.M()-1)
	}
	if h.ArcMultiplicity(0, 1) != 1 {
		t.Errorf("RemoveArc dropped %d parallel arcs, want exactly 1 left",
			2-h.ArcMultiplicity(0, 1))
	}
	if g.ArcMultiplicity(0, 1) != 2 {
		t.Error("RemoveArc mutated the receiver")
	}
	// Removing an absent arc yields an equal copy.
	same := g.RemoveArc(1, 3)
	if !same.Equal(g) {
		t.Error("RemoveArc of an absent arc changed the digraph")
	}
}

func TestRemoveVertex(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 1)
	g.AddArc(2, 3)
	g.AddArc(3, 0)
	g.AddArc(1, 1) // loop at the victim

	h := g.RemoveVertex(1)
	if h.N() != g.N() {
		t.Fatalf("RemoveVertex changed the vertex count: %d != %d", h.N(), g.N())
	}
	if h.OutDegree(1) != 0 {
		t.Errorf("vertex 1 still has %d out-arcs", h.OutDegree(1))
	}
	for u := 0; u < h.N(); u++ {
		if h.HasArc(u, 1) {
			t.Errorf("arc (%d,1) survived RemoveVertex", u)
		}
	}
	if h.M() != 2 { // only (2,3) and (3,0) avoid vertex 1
		t.Errorf("residual m = %d, want 2", h.M())
	}
	if g.M() != 6 {
		t.Error("RemoveVertex mutated the receiver")
	}
}

func TestRemoveArcPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RemoveArc out of range did not panic")
		}
	}()
	New(2).RemoveArc(0, 5)
}

func TestRemoveVertexPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RemoveVertex out of range did not panic")
		}
	}()
	New(2).RemoveVertex(-1)
}
