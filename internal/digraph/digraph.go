// Package digraph implements directed multigraphs and the graph algorithms
// required by the de Bruijn / OTIS reproduction: BFS distances and diameter,
// strong and weak connectivity, digraph conjunction (Definition 2.3 of the
// paper), line digraphs, reversal, and isomorphism testing.
//
// Digraphs here are multigraphs with loops allowed: the de Bruijn digraph
// B(d, D) has d loops-free... in fact B(d, D) contains d loops (at the
// constant words) and, for D = 1, parallel structure arises in conjunctions,
// so arcs are stored as an adjacency list that may repeat a head vertex.
package digraph

import (
	"fmt"
	"sort"
)

// Digraph is a directed multigraph on vertices 0..n-1 with adjacency lists.
// The zero value is the empty digraph on zero vertices.
type Digraph struct {
	adj [][]int // adj[u] lists the heads of arcs leaving u, in insertion order
	m   int     // arc count
}

// New returns an arcless digraph on n vertices.
func New(n int) *Digraph {
	if n < 0 {
		panic("digraph: negative vertex count")
	}
	return &Digraph{adj: make([][]int, n)}
}

// FromFunc builds a digraph on n vertices whose out-neighbourhood of u is
// out(u). The returned slice is copied. Heads must be in [0, n).
func FromFunc(n int, out func(u int) []int) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for _, v := range out(u) {
			g.AddArc(u, v)
		}
	}
	return g
}

// AddArc adds the arc (u, v). Parallel arcs and loops are allowed.
func (g *Digraph) AddArc(u, v int) {
	n := g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		panic(fmt.Sprintf("digraph: arc (%d,%d) out of range [0,%d)", u, v, n))
	}
	g.adj[u] = append(g.adj[u], v)
	g.m++
}

// N returns the number of vertices.
func (g *Digraph) N() int { return len(g.adj) }

// M returns the number of arcs.
func (g *Digraph) M() int { return g.m }

// Out returns the out-neighbour list Γ⁺(u). The slice is shared with the
// digraph; callers must not modify it.
func (g *Digraph) Out(u int) []int { return g.adj[u] }

// OutDegree returns |Γ⁺(u)| counted with multiplicity.
func (g *Digraph) OutDegree(u int) int { return len(g.adj[u]) }

// InDegrees returns the in-degree of every vertex, counted with
// multiplicity.
func (g *Digraph) InDegrees() []int {
	in := make([]int, g.N())
	for _, heads := range g.adj {
		for _, v := range heads {
			in[v]++
		}
	}
	return in
}

// IsOutRegular reports whether every vertex has out-degree exactly d.
func (g *Digraph) IsOutRegular(d int) bool {
	for u := range g.adj {
		if len(g.adj[u]) != d {
			return false
		}
	}
	return true
}

// IsInRegular reports whether every vertex has in-degree exactly d.
func (g *Digraph) IsInRegular(d int) bool {
	for _, in := range g.InDegrees() {
		if in != d {
			return false
		}
	}
	return true
}

// IsRegular reports whether g is d-in-regular and d-out-regular, the
// regularity the de Bruijn-like digraphs of the paper all satisfy.
func (g *Digraph) IsRegular(d int) bool {
	return g.IsOutRegular(d) && g.IsInRegular(d)
}

// HasArc reports whether at least one arc (u, v) exists.
func (g *Digraph) HasArc(u, v int) bool {
	for _, head := range g.adj[u] {
		if head == v {
			return true
		}
	}
	return false
}

// ArcMultiplicity returns the number of parallel (u, v) arcs.
func (g *Digraph) ArcMultiplicity(u, v int) int {
	count := 0
	for _, head := range g.adj[u] {
		if head == v {
			count++
		}
	}
	return count
}

// Loops returns the vertices carrying at least one loop, increasing.
func (g *Digraph) Loops() []int {
	var loops []int
	for u := range g.adj {
		if g.HasArc(u, u) {
			loops = append(loops, u)
		}
	}
	return loops
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	h := New(g.N())
	for u, heads := range g.adj {
		h.adj[u] = append([]int(nil), heads...)
	}
	h.m = g.m
	return h
}

// Equal reports whether g and h have identical vertex sets and identical
// arc multisets (adjacency order is ignored).
func (g *Digraph) Equal(h *Digraph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for u := range g.adj {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		a := append([]int(nil), g.adj[u]...)
		b := append([]int(nil), h.adj[u]...)
		sort.Ints(a)
		sort.Ints(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// Reverse returns the digraph G⁻ obtained by reversing every arc. The paper
// uses it in Section 4.2: if G has an OTIS(p,q)-layout then G⁻ has an
// OTIS(q,p)-layout.
func (g *Digraph) Reverse() *Digraph {
	h := New(g.N())
	for u, heads := range g.adj {
		for _, v := range heads {
			h.AddArc(v, u)
		}
	}
	return h
}

// SortedOut returns a sorted copy of Γ⁺(u); useful for deterministic output.
func (g *Digraph) SortedOut(u int) []int {
	out := append([]int(nil), g.adj[u]...)
	sort.Ints(out)
	return out
}

// DegreeSequence returns the sorted multiset of (out-degree, in-degree)
// pairs encoded as out*stride+in with stride = max degree + 1; used as a
// cheap isomorphism invariant.
func (g *Digraph) DegreeSequence() []int {
	in := g.InDegrees()
	maxDeg := 0
	for u := range g.adj {
		if len(g.adj[u]) > maxDeg {
			maxDeg = len(g.adj[u])
		}
		if in[u] > maxDeg {
			maxDeg = in[u]
		}
	}
	stride := maxDeg + 1
	seq := make([]int, g.N())
	for u := range g.adj {
		seq[u] = len(g.adj[u])*stride + in[u]
	}
	sort.Ints(seq)
	return seq
}

// String renders a small digraph as one adjacency line per vertex.
func (g *Digraph) String() string {
	s := fmt.Sprintf("digraph n=%d m=%d\n", g.N(), g.M())
	for u := range g.adj {
		s += fmt.Sprintf("  %d -> %v\n", u, g.SortedOut(u))
	}
	return s
}
