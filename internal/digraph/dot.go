package digraph

import (
	"fmt"
	"io"
	"sort"
)

// Graphviz DOT export, for inspecting the small digraphs of the paper's
// figures with standard tooling (dot -Tsvg ...).

// WriteDOT writes g in DOT format. label, if non-nil, names each vertex
// (e.g. its word spelling); otherwise numeric ids are used. Parallel arcs
// are written once per multiplicity; loops render as self-edges.
func (g *Digraph) WriteDOT(w io.Writer, name string, label func(int) string) error {
	if name == "" {
		name = "G"
	}
	if label == nil {
		label = func(u int) string { return fmt.Sprintf("%d", u) }
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		if _, err := fmt.Fprintf(w, "  n%d [label=%q];\n", u, label(u)); err != nil {
			return err
		}
	}
	for u := 0; u < g.N(); u++ {
		heads := append([]int(nil), g.adj[u]...)
		sort.Ints(heads)
		for _, v := range heads {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", u, v); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
