package digraph

import (
	"fmt"
)

// One-factorization. A d-in/d-out-regular digraph decomposes into d
// arc-disjoint permutation digraphs (König's theorem on the bipartite
// tail/head incidence graph). For an OTIS machine this is the TDM
// schedule: in time slot t every node transmits on exactly one beam
// (factor t) with no receiver conflicts, so d slots serve the whole arc
// set — the optical network's collision-free round-robin.

// OneFactorization splits a d-regular digraph into d permutations:
// factors[t][u] is the head of u's arc in slot t. Parallel arcs occupy
// distinct slots. Errors if the digraph is not d-regular.
func (g *Digraph) OneFactorization(d int) ([][]int, error) {
	if !g.IsRegular(d) {
		return nil, fmt.Errorf("digraph: not %d-regular", d)
	}
	n := g.N()
	// Remaining multiplicity of each (u, v) arc.
	remaining := make([]map[int]int, n)
	for u := 0; u < n; u++ {
		remaining[u] = make(map[int]int, d)
		for _, v := range g.adj[u] {
			remaining[u][v]++
		}
	}
	factors := make([][]int, 0, d)
	for t := 0; t < d; t++ {
		match, err := perfectMatching(n, remaining)
		if err != nil {
			return nil, fmt.Errorf("digraph: factor %d: %w", t, err)
		}
		for u, v := range match {
			remaining[u][v]--
			if remaining[u][v] == 0 {
				delete(remaining[u], v)
			}
		}
		factors = append(factors, match)
	}
	return factors, nil
}

// perfectMatching finds a perfect matching tails→heads in the bipartite
// graph with edges (u, v) for remaining[u][v] > 0, by Kuhn's augmenting
// paths. The remaining graph of a regular digraph always has one (Hall).
func perfectMatching(n int, remaining []map[int]int) ([]int, error) {
	// Candidate heads in sorted order: Kuhn's search must not follow Go's
	// randomized map order, or the matching — and with it the TDM
	// schedule — would change from run to run under the same inputs.
	heads := make([][]int, n)
	for u := 0; u < n; u++ {
		hs := make([]int, 0, len(remaining[u]))
		for v := range remaining[u] {
			hs = append(hs, v)
		}
		sortInts(hs)
		heads[u] = hs
	}
	matchHead := make([]int, n) // head v ← tail matched to it
	matchTail := make([]int, n) // tail u → head matched
	for i := 0; i < n; i++ {
		matchHead[i] = -1
		matchTail[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range heads[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchHead[v] == -1 || try(matchHead[v], seen) {
				matchHead[v] = u
				matchTail[u] = v
				return true
			}
		}
		return false
	}
	for u := 0; u < n; u++ {
		if matchTail[u] != -1 {
			continue
		}
		seen := make([]bool, n)
		if !try(u, seen) {
			return nil, fmt.Errorf("no perfect matching (tail %d unmatched)", u)
		}
	}
	return matchTail, nil
}

// VerifyFactorization checks that factors are d arc-disjoint permutations
// whose union is exactly g's arc multiset.
func (g *Digraph) VerifyFactorization(factors [][]int) error {
	n := g.N()
	used := make([]map[int]int, n)
	for u := range used {
		used[u] = make(map[int]int)
	}
	for t, f := range factors {
		if len(f) != n {
			return fmt.Errorf("digraph: factor %d has %d entries", t, len(f))
		}
		hit := make([]bool, n)
		for u, v := range f {
			if v < 0 || v >= n {
				return fmt.Errorf("digraph: factor %d maps %d out of range", t, u)
			}
			if hit[v] {
				return fmt.Errorf("digraph: factor %d is not a permutation (head %d reused)", t, v)
			}
			hit[v] = true
			used[u][v]++
		}
	}
	for u := 0; u < n; u++ {
		for v, cnt := range used[u] {
			if cnt != g.ArcMultiplicity(u, v) {
				return fmt.Errorf("digraph: arc (%d,%d) used %d times, multiplicity %d",
					u, v, cnt, g.ArcMultiplicity(u, v))
			}
		}
		total := 0
		for _, cnt := range used[u] {
			total += cnt
		}
		if total != g.OutDegree(u) {
			return fmt.Errorf("digraph: vertex %d covered %d of %d arcs", u, total, g.OutDegree(u))
		}
	}
	return nil
}
