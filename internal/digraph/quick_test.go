package digraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests on the digraph algebra.

func randomDigraph(rng *rand.Rand, maxN int) *Digraph {
	n := 1 + rng.Intn(maxN)
	g := New(n)
	arcs := rng.Intn(3 * n)
	for k := 0; k < arcs; k++ {
		g.AddArc(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestQuickReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDigraph(rng, 20)
		return g.Reverse().Reverse().Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickReversePreservesCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDigraph(rng, 20)
		r := g.Reverse()
		if g.N() != r.N() || g.M() != r.M() {
			return false
		}
		// Out-degrees of g are in-degrees of r.
		in := r.InDegrees()
		for u := 0; u < g.N(); u++ {
			if g.OutDegree(u) != in[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickConjunctionCounts(t *testing.T) {
	// |V(G1⊗G2)| = |V1||V2| and |E(G1⊗G2)| = |E1||E2|.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1 := randomDigraph(rng, 6)
		g2 := randomDigraph(rng, 6)
		c := Conjunction(g1, g2)
		return c.N() == g1.N()*g2.N() && c.M() == g1.M()*g2.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickConjunctionReverseCommute(t *testing.T) {
	// (G1⊗G2)⁻ = G1⁻ ⊗ G2⁻.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1 := randomDigraph(rng, 5)
		g2 := randomDigraph(rng, 5)
		lhs := Conjunction(g1, g2).Reverse()
		rhs := Conjunction(g1.Reverse(), g2.Reverse())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickLineDigraphCounts(t *testing.T) {
	// |V(L(G))| = |E(G)|; |E(L(G))| = Σ_v indeg(v)·outdeg(v).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDigraph(rng, 10)
		l, arcs := LineDigraph(g)
		if l.N() != g.M() || len(arcs) != g.M() {
			return false
		}
		in := g.InDegrees()
		want := 0
		for v := 0; v < g.N(); v++ {
			want += in[v] * g.OutDegree(v)
		}
		return l.M() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickSCCRefinesWeak(t *testing.T) {
	// Every strongly connected component lies inside one weak component.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDigraph(rng, 15)
		weakOf := make([]int, g.N())
		for i, comp := range g.WeaklyConnectedComponents() {
			for _, v := range comp {
				weakOf[v] = i
			}
		}
		for _, scc := range g.StronglyConnectedComponents() {
			for _, v := range scc[1:] {
				if weakOf[v] != weakOf[scc[0]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceTriangle(t *testing.T) {
	// BFS distances satisfy the triangle inequality dist(u,w) ≤
	// dist(u,v) + dist(v,w) whenever both legs are finite.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDigraph(rng, 12)
		n := g.N()
		dist := make([][]int, n)
		for u := 0; u < n; u++ {
			dist[u] = g.BFSFrom(u)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if dist[u][v] == Unreachable {
					continue
				}
				for w := 0; w < n; w++ {
					if dist[v][w] == Unreachable {
						continue
					}
					if dist[u][w] == Unreachable || dist[u][w] > dist[u][v]+dist[v][w] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickIsomorphicAfterRelabel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDigraph(rng, 8)
		pi := rng.Perm(g.N())
		h := New(g.N())
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Out(u) {
				h.AddArc(pi[u], pi[v])
			}
		}
		mapping, ok := FindIsomorphism(g, h)
		return ok && VerifyIsomorphism(g, h, mapping) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
