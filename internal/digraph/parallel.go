package digraph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel variants of the all-sources computations. Diameter and
// distance-histogram runs do one independent BFS per source, which
// parallelizes embarrassingly: a worker pool shares an atomic source
// counter and each worker keeps private scratch buffers. Results are
// bit-identical to the sequential versions; the Table 1 search uses these
// to cut wall-clock time roughly by the core count.

// DiameterParallel returns the same value as Diameter, computed with up
// to workers goroutines (workers <= 0 selects GOMAXPROCS).
func (g *Digraph) DiameterParallel(workers int) int {
	n := g.N()
	if n == 0 {
		return Unreachable
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var unreachable atomic.Bool
	diams := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dist := make([]int, n)
			queue := make([]int, 0, n)
			best := 0
			for !unreachable.Load() {
				u := int(next.Add(1)) - 1
				if u >= n {
					break
				}
				dist = g.bfsScratch(u, dist, queue)
				for _, dv := range dist {
					if dv == Unreachable {
						unreachable.Store(true)
						return
					}
					if dv > best {
						best = dv
					}
				}
			}
			diams[w] = best
		}(w)
	}
	wg.Wait()
	if unreachable.Load() {
		return Unreachable
	}
	diam := 0
	for _, d := range diams {
		if d > diam {
			diam = d
		}
	}
	return diam
}

// DiameterAtMostParallel is the parallel twin of DiameterAtMost: workers
// abort cooperatively as soon as any source exceeds the bound.
func (g *Digraph) DiameterAtMostParallel(maxDist, workers int) bool {
	n := g.N()
	if n == 0 {
		return false
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var exceeded atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist := make([]int, n)
			queue := make([]int, 0, n)
			for !exceeded.Load() {
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				dist = g.bfsScratch(u, dist, queue)
				for _, dv := range dist {
					if dv == Unreachable || dv > maxDist {
						exceeded.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return !exceeded.Load()
}

// DistanceHistogramParallel computes the same histogram as
// DistanceHistogram with a worker pool; per-worker partial histograms are
// merged at the end, so no locking is on the hot path.
func (g *Digraph) DistanceHistogramParallel(workers int) (hist []int, unreachable int) {
	n := g.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 0 {
		return nil, 0
	}
	partials := make([][]int, workers)
	partialUnreach := make([]int, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dist := make([]int, n)
			queue := make([]int, 0, n)
			var local []int
			for {
				u := int(next.Add(1)) - 1
				if u >= n {
					break
				}
				dist = g.bfsScratch(u, dist, queue)
				for _, dv := range dist {
					if dv == Unreachable {
						partialUnreach[w]++
						continue
					}
					for len(local) <= dv {
						local = append(local, 0)
					}
					local[dv]++
				}
			}
			partials[w] = local
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		unreachable += partialUnreach[w]
		for k, c := range partials[w] {
			for len(hist) <= k {
				hist = append(hist, 0)
			}
			hist[k] += c
		}
	}
	return hist, unreachable
}
