package digraph

import "fmt"

// Fault-model removals. Both operations return modified copies — the
// receiver is never mutated — and keep the vertex set intact so vertex
// labels (de Bruijn words, OTIS transceiver blocks) stay valid in the
// residual digraph. They are the building blocks of the runtime fault
// engine in internal/simnet: a failed link is RemoveArc, a failed node is
// RemoveVertex, and a failed OTIS lens is a RemoveArc per beam of its
// arc group.

// RemoveArc returns a copy of g with one (u, v) arc removed. If several
// parallel (u, v) arcs exist only the first (in adjacency order) is
// dropped; if none exists the copy equals g. Panics if u or v is out of
// range.
func (g *Digraph) RemoveArc(u, v int) *Digraph {
	n := g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		panic(fmt.Sprintf("digraph: RemoveArc(%d,%d) out of range [0,%d)", u, v, n))
	}
	h := New(n)
	removed := false
	for a := 0; a < n; a++ {
		for _, w := range g.adj[a] {
			if !removed && a == u && w == v {
				removed = true
				continue
			}
			h.AddArc(a, w)
		}
	}
	return h
}

// RemoveVertex returns a copy of g with every arc entering or leaving v
// removed. The vertex itself stays, isolated, preserving the labels of
// all other vertices — the convention the fault-injection tests and the
// simulator rely on. Panics if v is out of range.
func (g *Digraph) RemoveVertex(v int) *Digraph {
	n := g.N()
	if v < 0 || v >= n {
		panic(fmt.Sprintf("digraph: RemoveVertex(%d) out of range [0,%d)", v, n))
	}
	h := New(n)
	for u := 0; u < n; u++ {
		if u == v {
			continue
		}
		for _, w := range g.adj[u] {
			if w != v {
				h.AddArc(u, w)
			}
		}
	}
	return h
}
