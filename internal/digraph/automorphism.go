package digraph

// Automorphism enumeration. Section 3 of the paper produces d!(D-1)!
// alternative *definitions* of B(d, D); how many *automorphisms* the
// digraph itself has is a complementary question the library answers by
// exhaustive (pruned) search. The classical answer, which the tests
// verify on small instances, is |Aut(B(d, D))| = d! — exactly the
// alphabet permutations acting through the Proposition 3.2 witness — and
// |Aut(K(d, D))| = (d+1)!.

// Automorphisms enumerates automorphisms of g, calling visit with each
// mapping until visit returns false or the search space is exhausted.
// The mapping slice is reused; copy it to retain. Exponential in the
// worst case; intended for small, structured digraphs.
func (g *Digraph) Automorphisms(visit func([]int) bool) {
	n := g.N()
	if n == 0 {
		visit([]int{})
		return
	}
	gc, hc := refineColorsPair(g, g)
	byColor := make(map[int][]int)
	for v, c := range hc {
		byColor[c] = append(byColor[c], v)
	}
	order := constraintOrder(g, gc, byColor)
	gIn := buildInAdj(g)

	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	used := make([]bool, n)
	stopped := false

	var backtrack func(pos int) bool
	backtrack = func(pos int) bool {
		if stopped {
			return false
		}
		if pos == n {
			if !visit(mapping) {
				stopped = true
			}
			return true
		}
		u := order[pos]
		for _, v := range byColor[gc[u]] {
			if used[v] {
				continue
			}
			if !consistent(g, g, gIn, gIn, mapping, u, v) {
				continue
			}
			mapping[u] = v
			used[v] = true
			backtrack(pos + 1)
			mapping[u] = -1
			used[v] = false
			if stopped {
				return false
			}
		}
		return false
	}
	backtrack(0)
}

// AutomorphismCount returns |Aut(g)|, capped at limit (0 = unlimited).
func (g *Digraph) AutomorphismCount(limit int) int {
	count := 0
	g.Automorphisms(func([]int) bool {
		count++
		return limit == 0 || count < limit
	})
	return count
}

// IsVertexTransitive reports whether Aut(g) acts transitively on
// vertices, by checking that vertex 0 can be mapped to every vertex.
// Exponential in the worst case; small instances only.
func (g *Digraph) IsVertexTransitive() bool {
	n := g.N()
	if n == 0 {
		return true
	}
	images := make([]bool, n)
	seen := 0
	g.Automorphisms(func(m []int) bool {
		if !images[m[0]] {
			images[m[0]] = true
			seen++
		}
		return seen < n
	})
	return seen == n
}
