package digraph

import (
	"math/rand"
	"testing"
)

func TestMaxFlowUnitSimple(t *testing.T) {
	// Two disjoint 0→3 paths plus a chord.
	g := New(4)
	g.AddArc(0, 1)
	g.AddArc(1, 3)
	g.AddArc(0, 2)
	g.AddArc(2, 3)
	g.AddArc(1, 2)
	flow, paths := g.MaxFlowUnit(0, 3)
	if flow != 2 {
		t.Fatalf("flow = %d, want 2", flow)
	}
	checkArcDisjoint(t, g, paths, 0, 3)
}

func TestMaxFlowNeedsCancellation(t *testing.T) {
	// Classic example where a greedy first path must be partially undone.
	//
	//	0 → 1 → 3
	//	0 → 2 → 4
	//	1 → 4, 2 → 3, 3 → 5, 4 → 5
	g := New(6)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(1, 3)
	g.AddArc(1, 4)
	g.AddArc(2, 3)
	g.AddArc(2, 4)
	g.AddArc(3, 5)
	g.AddArc(4, 5)
	flow, paths := g.MaxFlowUnit(0, 5)
	if flow != 2 {
		t.Fatalf("flow = %d, want 2", flow)
	}
	checkArcDisjoint(t, g, paths, 0, 5)
}

func TestMaxFlowParallelArcs(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	flow, paths := g.MaxFlowUnit(0, 1)
	if flow != 3 || len(paths) != 3 {
		t.Fatalf("flow = %d with %d paths, want 3", flow, len(paths))
	}
}

func TestMaxFlowSelfAndUnreachable(t *testing.T) {
	g := Circuit(3)
	if f, _ := g.MaxFlowUnit(1, 1); f != 0 {
		t.Error("self flow nonzero")
	}
	h := New(2)
	if f, _ := h.MaxFlowUnit(0, 1); f != 0 {
		t.Error("unreachable flow nonzero")
	}
}

func TestMaxFlowAgainstBruteForceCuts(t *testing.T) {
	// Max-flow = min-cut on random small digraphs, with the cut checked
	// by enumerating arc subsets.
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(3)
		g := New(n)
		for k := 0; k < 2*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddArc(u, v)
			}
		}
		flow, paths := g.MaxFlowUnit(0, n-1)
		checkArcDisjoint(t, g, paths, 0, n-1)
		if minCut := bruteMinCut(g, 0, n-1); minCut != flow {
			t.Fatalf("trial %d: flow %d != brute min cut %d", trial, flow, minCut)
		}
	}
}

// bruteMinCut enumerates vertex bipartitions (S ∋ s, T ∋ t) and counts
// crossing arcs — valid for unit-capacity min cut.
func bruteMinCut(g *Digraph, s, t int) int {
	n := g.N()
	best := -1
	for mask := 0; mask < 1<<uint(n); mask++ {
		if mask&(1<<uint(s)) == 0 || mask&(1<<uint(t)) != 0 {
			continue
		}
		cut := 0
		for u := 0; u < n; u++ {
			if mask&(1<<uint(u)) == 0 {
				continue
			}
			for _, v := range g.Out(u) {
				if mask&(1<<uint(v)) == 0 {
					cut++
				}
			}
		}
		if best == -1 || cut < best {
			best = cut
		}
	}
	return best
}

func checkArcDisjoint(t *testing.T, g *Digraph, paths [][]int, s, dst int) {
	t.Helper()
	type arc struct{ u, v int }
	used := map[arc]int{}
	for _, p := range paths {
		if p[0] != s || p[len(p)-1] != dst {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		for i := 0; i+1 < len(p); i++ {
			a := arc{p[i], p[i+1]}
			used[a]++
			if used[a] > g.ArcMultiplicity(p[i], p[i+1]) {
				t.Fatalf("arc %v overused", a)
			}
		}
	}
}

func TestDeBruijnConnectivity(t *testing.T) {
	// Classical fault-tolerance facts the optical layouts inherit:
	// λ(B(d,D)) = κ(B(d,D)) = d-1 (the loops cost one).
	for _, c := range []struct{ d, D int }{{2, 3}, {2, 4}, {3, 2}, {3, 3}} {
		g := deBruijnCongruence(c.d, c.D)
		if got := g.ArcConnectivity(); got != c.d-1 {
			t.Errorf("λ(B(%d,%d)) = %d, want %d", c.d, c.D, got, c.d-1)
		}
		if got := g.VertexConnectivity(); got != c.d-1 {
			t.Errorf("κ(B(%d,%d)) = %d, want %d", c.d, c.D, got, c.d-1)
		}
	}
}

func TestKautzConnectivityViaII(t *testing.T) {
	// κ(K(d,D)) = d — Kautz is maximally fault-tolerant. Built in the II
	// congruence form to avoid an import cycle.
	for _, c := range []struct{ d, n int }{{2, 12}, {3, 36}, {2, 24}} {
		g := FromFunc(c.n, func(u int) []int {
			out := make([]int, c.d)
			for a := 1; a <= c.d; a++ {
				v := (-c.d*u - a) % c.n
				if v < 0 {
					v += c.n
				}
				out[a-1] = v
			}
			return out
		})
		if got := g.ArcConnectivity(); got != c.d {
			t.Errorf("λ(II(%d,%d)) = %d, want %d", c.d, c.n, got, c.d)
		}
		if got := g.VertexConnectivity(); got != c.d {
			t.Errorf("κ(II(%d,%d)) = %d, want %d", c.d, c.n, got, c.d)
		}
	}
}

func TestCircuitConnectivity(t *testing.T) {
	g := Circuit(5)
	if g.ArcConnectivity() != 1 || g.VertexConnectivity() != 1 {
		t.Error("circuit connectivity != 1")
	}
}

func TestCompleteConnectivity(t *testing.T) {
	g := CompleteWithLoops(5)
	if got := g.VertexConnectivity(); got != 4 {
		t.Errorf("κ(K*_5) = %d, want 4", got)
	}
	if got := g.ArcConnectivity(); got != 4 {
		t.Errorf("λ(K*_5) = %d, want 4 (loops don't help)", got)
	}
}

func TestDisconnectedConnectivity(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1)
	if g.ArcConnectivity() != 0 || g.VertexConnectivity() != 0 {
		t.Error("disconnected digraph has positive connectivity")
	}
}

func TestArcDisjointPathsCount(t *testing.T) {
	g := deBruijnCongruence(3, 2)
	paths := g.ArcDisjointPaths(1, 7)
	if len(paths) < 2 {
		t.Errorf("only %d arc-disjoint paths in B(3,2)", len(paths))
	}
	checkArcDisjoint(t, g, paths, 1, 7)
}
