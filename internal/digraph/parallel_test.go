package digraph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestDiameterParallelMatchesSequential(t *testing.T) {
	cases := []*Digraph{
		deBruijnCongruence(2, 6),
		deBruijnCongruence(3, 4),
		Circuit(17),
		CompleteWithLoops(9),
	}
	for i, g := range cases {
		want := g.Diameter()
		for _, workers := range []int{1, 2, 4, 0} {
			if got := g.DiameterParallel(workers); got != want {
				t.Errorf("case %d workers=%d: %d != %d", i, workers, got, want)
			}
		}
	}
}

func TestDiameterParallelDisconnected(t *testing.T) {
	g := New(5)
	g.AddArc(0, 1)
	if g.DiameterParallel(4) != Unreachable {
		t.Error("disconnected digraph got a finite parallel diameter")
	}
	if New(0).DiameterParallel(2) != Unreachable {
		t.Error("empty digraph")
	}
}

func TestDiameterAtMostParallel(t *testing.T) {
	g := deBruijnCongruence(2, 7)
	if !g.DiameterAtMostParallel(7, 4) {
		t.Error("B(2,7) should be within 7")
	}
	if g.DiameterAtMostParallel(6, 4) {
		t.Error("B(2,7) should exceed 6")
	}
	if New(3).DiameterAtMostParallel(10, 2) {
		t.Error("arcless digraph within bound")
	}
}

func TestDistanceHistogramParallelMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		g := New(n)
		for k := 0; k < 3*n; k++ {
			g.AddArc(rng.Intn(n), rng.Intn(n))
		}
		h1, u1 := g.DistanceHistogram()
		for _, workers := range []int{1, 3, 0} {
			h2, u2 := g.DistanceHistogramParallel(workers)
			if u1 != u2 || !reflect.DeepEqual(h1, h2) {
				t.Fatalf("trial %d workers=%d: (%v,%d) != (%v,%d)", trial, workers, h2, u2, h1, u1)
			}
		}
	}
}

func TestParallelRace(t *testing.T) {
	// Exercise concurrent workers heavily; run with -race in CI.
	g := deBruijnCongruence(2, 8)
	done := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func() {
			done <- g.DiameterParallel(4)
		}()
	}
	for i := 0; i < 4; i++ {
		if d := <-done; d != 8 {
			t.Errorf("concurrent diameter = %d", d)
		}
	}
}

func BenchmarkDiameterSequentialB210(b *testing.B) {
	g := deBruijnCongruence(2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Diameter() != 10 {
			b.Fatal("bad diameter")
		}
	}
}

func BenchmarkDiameterParallelB210(b *testing.B) {
	g := deBruijnCongruence(2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.DiameterParallel(0) != 10 {
			b.Fatal("bad diameter")
		}
	}
}
