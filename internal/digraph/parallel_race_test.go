package digraph

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// Race-focused exercises of the parallel BFS kernels: several goroutines
// drive each kernel concurrently on a shared digraph, at every worker
// count the contract cares about — 1 (sequential degenerate), 2, the
// machine's GOMAXPROCS, and n+1 (more workers than sources, so the
// worker clamp engages). scripts/check.sh runs these under -race; the
// assertions also pin result stability under contention.

// raceWorkerCounts returns the worker counts the race tests sweep for a
// digraph on n vertices.
func raceWorkerCounts(n int) []int {
	return []int{1, 2, runtime.GOMAXPROCS(0), n + 1}
}

func TestDiameterParallelRaceMatrix(t *testing.T) {
	g := deBruijnCongruence(2, 7)
	want := g.Diameter()
	const callers = 4
	var wg sync.WaitGroup
	for _, workers := range raceWorkerCounts(g.N()) {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(workers int) {
				defer wg.Done()
				if got := g.DiameterParallel(workers); got != want {
					t.Errorf("workers=%d: diameter %d, want %d", workers, got, want)
				}
			}(workers)
		}
	}
	wg.Wait()
}

func TestDiameterAtMostParallelRaceMatrix(t *testing.T) {
	g := deBruijnCongruence(2, 7)
	const callers = 3
	var wg sync.WaitGroup
	for _, workers := range raceWorkerCounts(g.N()) {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(workers int) {
				defer wg.Done()
				if !g.DiameterAtMostParallel(7, workers) {
					t.Errorf("workers=%d: B(2,7) not within 7", workers)
				}
				if g.DiameterAtMostParallel(6, workers) {
					t.Errorf("workers=%d: B(2,7) within 6", workers)
				}
			}(workers)
		}
	}
	wg.Wait()
}

func TestDistanceHistogramParallelRaceMatrix(t *testing.T) {
	g := deBruijnCongruence(2, 7)
	wantHist, wantUnreach := g.DistanceHistogram()
	const callers = 4
	var wg sync.WaitGroup
	for _, workers := range raceWorkerCounts(g.N()) {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(workers int) {
				defer wg.Done()
				hist, unreach := g.DistanceHistogramParallel(workers)
				if unreach != wantUnreach || !reflect.DeepEqual(hist, wantHist) {
					t.Errorf("workers=%d: histogram diverged under contention", workers)
				}
			}(workers)
		}
	}
	wg.Wait()
}

// TestParallelKernelsInterleavedRace runs different kernels against the
// same shared digraph at once, the way the Table 1 search mixes
// diameter checks and histogram collection.
func TestParallelKernelsInterleavedRace(t *testing.T) {
	g := deBruijnCongruence(3, 4)
	want := g.Diameter()
	wantHist, _ := g.DistanceHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			if got := g.DiameterParallel(0); got != want {
				t.Errorf("interleaved diameter %d, want %d", got, want)
			}
		}()
		go func() {
			defer wg.Done()
			if hist, _ := g.DistanceHistogramParallel(0); !reflect.DeepEqual(hist, wantHist) {
				t.Error("interleaved histogram diverged")
			}
		}()
		go func() {
			defer wg.Done()
			if !g.DiameterAtMostParallel(want, 0) {
				t.Error("interleaved bound check failed")
			}
		}()
	}
	wg.Wait()
}
