package digraph

import (
	"fmt"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := Circuit(3)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "C3", nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`digraph "C3"`, "n0 -> n1;", "n1 -> n2;", "n2 -> n0;", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTCustomLabels(t *testing.T) {
	g := deBruijnCongruence(2, 2)
	var sb strings.Builder
	err := g.WriteDOT(&sb, "", func(u int) string { return fmt.Sprintf("w%02b", u) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `label="w01"`) {
		t.Errorf("custom label missing:\n%s", sb.String())
	}
	// Arc count: one line per arc.
	if got := strings.Count(sb.String(), "->"); got != g.M() {
		t.Errorf("%d arc lines, want %d", got, g.M())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n--
	if f.n <= 0 {
		return 0, fmt.Errorf("synthetic write failure")
	}
	return len(p), nil
}

func TestWriteDOTPropagatesErrors(t *testing.T) {
	g := Circuit(4)
	if err := g.WriteDOT(&failWriter{n: 2}, "x", nil); err == nil {
		t.Error("write failure swallowed")
	}
}
