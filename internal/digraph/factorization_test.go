package digraph

import (
	"testing"
)

func TestOneFactorizationDeBruijn(t *testing.T) {
	for _, c := range []struct{ d, D int }{{2, 4}, {2, 6}, {3, 3}} {
		g := deBruijnCongruence(c.d, c.D)
		factors, err := g.OneFactorization(c.d)
		if err != nil {
			t.Fatalf("B(%d,%d): %v", c.d, c.D, err)
		}
		if len(factors) != c.d {
			t.Fatalf("got %d factors, want %d", len(factors), c.d)
		}
		if err := g.VerifyFactorization(factors); err != nil {
			t.Errorf("B(%d,%d): %v", c.d, c.D, err)
		}
	}
}

func TestOneFactorizationComplete(t *testing.T) {
	g := CompleteWithLoops(5)
	factors, err := g.OneFactorization(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyFactorization(factors); err != nil {
		t.Fatal(err)
	}
}

func TestOneFactorizationParallelArcs(t *testing.T) {
	// The 2-regular multigraph with doubled cycle arcs: both factors are
	// the same permutation.
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddArc(i, (i+1)%3)
		g.AddArc(i, (i+1)%3)
	}
	factors, err := g.OneFactorization(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyFactorization(factors); err != nil {
		t.Fatal(err)
	}
}

func TestOneFactorizationRejectsIrregular(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	if _, err := g.OneFactorization(1); err == nil {
		t.Error("irregular digraph accepted")
	}
}

func TestVerifyFactorizationRejects(t *testing.T) {
	g := Circuit(4)
	good, _ := g.OneFactorization(1)
	if err := g.VerifyFactorization(good); err != nil {
		t.Fatal(err)
	}
	// Not a permutation.
	bad := [][]int{{1, 1, 3, 0}}
	if g.VerifyFactorization(bad) == nil {
		t.Error("non-permutation accepted")
	}
	// Wrong arcs.
	bad = [][]int{{2, 3, 0, 1}}
	if g.VerifyFactorization(bad) == nil {
		t.Error("non-arc factor accepted")
	}
	// Wrong length.
	if g.VerifyFactorization([][]int{{1, 2}}) == nil {
		t.Error("short factor accepted")
	}
}

func TestFactorizationIsTDMSchedule(t *testing.T) {
	// The TDM interpretation: in any slot, no two nodes transmit to the
	// same receiver (permutation) and every node transmits exactly once.
	g := deBruijnCongruence(2, 5)
	factors, _ := g.OneFactorization(2)
	for t1, f := range factors {
		seen := make([]bool, g.N())
		for _, v := range f {
			if seen[v] {
				t.Fatalf("slot %d: receiver %d hit twice", t1, v)
			}
			seen[v] = true
		}
	}
}
