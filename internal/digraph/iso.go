package digraph

import (
	"fmt"
	"sort"
)

// Isomorphism testing. The paper's isomorphism claims all come with explicit
// witness maps (Propositions 3.2, 3.3, 3.9, 4.1), so the primary tool is
// VerifyIsomorphism, which checks a proposed bijection in O(n + m). A
// generic backtracking search, FindIsomorphism, provides an independent
// cross-check on small instances and implements the "exhaustive search"
// the authors report using in Sections 4.3 and 5.

// VerifyIsomorphism checks that mapping is an isomorphism from g onto h:
// a bijection V(g) → V(h) preserving arc multiplicities in both directions.
// It returns nil on success and a descriptive error otherwise.
func VerifyIsomorphism(g, h *Digraph, mapping []int) error {
	n := g.N()
	if h.N() != n {
		return fmt.Errorf("digraph: vertex counts differ (%d vs %d)", n, h.N())
	}
	if len(mapping) != n {
		return fmt.Errorf("digraph: mapping has %d entries, want %d", len(mapping), n)
	}
	if g.M() != h.M() {
		return fmt.Errorf("digraph: arc counts differ (%d vs %d)", g.M(), h.M())
	}
	seen := make([]bool, n)
	for u, v := range mapping {
		if v < 0 || v >= n {
			return fmt.Errorf("digraph: mapping[%d] = %d out of range", u, v)
		}
		if seen[v] {
			return fmt.Errorf("digraph: mapping not injective at image %d", v)
		}
		seen[v] = true
	}
	// With equal arc counts it suffices to check that every g-arc maps to
	// an h-arc with matching multiplicities.
	for u := 0; u < n; u++ {
		gOut := make(map[int]int, len(g.adj[u]))
		for _, v := range g.adj[u] {
			gOut[mapping[v]]++
		}
		hOut := make(map[int]int, len(h.adj[mapping[u]]))
		for _, v := range h.adj[mapping[u]] {
			hOut[v]++
		}
		if len(gOut) != len(hOut) {
			return fmt.Errorf("digraph: out-neighbourhood of %d not preserved", u)
		}
		for v, mult := range gOut {
			if hOut[v] != mult {
				return fmt.Errorf("digraph: arc (%d→%d) multiplicity %d maps to multiplicity %d",
					u, v, mult, hOut[v])
			}
		}
	}
	return nil
}

// IsIsomorphismWitness is a boolean convenience over VerifyIsomorphism.
func IsIsomorphismWitness(g, h *Digraph, mapping []int) bool {
	return VerifyIsomorphism(g, h, mapping) == nil
}

// FindIsomorphism searches for an isomorphism from g onto h, returning the
// mapping and true if one exists. It uses iterated colour refinement to
// partition vertices into equivalence classes and then backtracks within
// classes. Worst-case exponential; intended for the small instances used as
// cross-checks (n up to a few hundred for the highly symmetric digraphs in
// this repository).
func FindIsomorphism(g, h *Digraph) ([]int, bool) {
	n := g.N()
	if h.N() != n || g.M() != h.M() {
		return nil, false
	}
	if n == 0 {
		return []int{}, true
	}
	gc, hc := refineColorsPair(g, h)
	if !sameColorHistogram(gc, hc) {
		return nil, false
	}

	// Candidate sets: h-vertices sharing the colour of each g-vertex.
	byColor := make(map[int][]int)
	for v, c := range hc {
		byColor[c] = append(byColor[c], v)
	}

	// Order g's vertices to maximize constraint propagation: rarest colour
	// class first, then vertices adjacent to already-placed ones.
	order := constraintOrder(g, gc, byColor)

	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	used := make([]bool, n)

	gIn := buildInAdj(g)
	hIn := buildInAdj(h)

	var backtrack func(pos int) bool
	backtrack = func(pos int) bool {
		if pos == n {
			return true
		}
		u := order[pos]
		for _, v := range byColor[gc[u]] {
			if used[v] {
				continue
			}
			if !consistent(g, h, gIn, hIn, mapping, u, v) {
				continue
			}
			mapping[u] = v
			used[v] = true
			if backtrack(pos + 1) {
				return true
			}
			mapping[u] = -1
			used[v] = false
		}
		return false
	}
	if backtrack(0) {
		if err := VerifyIsomorphism(g, h, mapping); err != nil {
			panic("digraph: internal error, found mapping fails verification: " + err.Error())
		}
		return mapping, true
	}
	return nil, false
}

// AreIsomorphic reports whether g and h are isomorphic (via FindIsomorphism).
func AreIsomorphic(g, h *Digraph) bool {
	_, ok := FindIsomorphism(g, h)
	return ok
}

// consistent checks that setting mapping[u] = v preserves adjacency (with
// multiplicity) against all previously mapped vertices, in both directions.
func consistent(g, h *Digraph, gIn, hIn [][]int, mapping []int, u, v int) bool {
	// Out-arcs u→w with w mapped.
	for _, w := range g.adj[u] {
		if mw := mappedImage(mapping, w, u, v); mw >= 0 {
			if g.ArcMultiplicity(u, w) != h.ArcMultiplicity(v, mw) {
				return false
			}
		}
	}
	// In-arcs w→u with w mapped.
	for _, w := range gIn[u] {
		if mw := mappedImage(mapping, w, u, v); mw >= 0 {
			if g.ArcMultiplicity(w, u) != h.ArcMultiplicity(mw, v) {
				return false
			}
		}
	}
	return true
}

func mappedImage(mapping []int, w, u, v int) int {
	if w == u {
		return v
	}
	return mapping[w]
}

func buildInAdj(g *Digraph) [][]int {
	in := make([][]int, g.N())
	for u, heads := range g.adj {
		for _, v := range heads {
			in[v] = append(in[v], u)
		}
	}
	return in
}

// refineColorsPair refines g and h in lockstep with a shared colour table,
// so equal colour ids across the two graphs mean structurally equivalent
// refinement classes. This is what makes byColor candidate lookup sound in
// FindIsomorphism.
func refineColorsPair(g, h *Digraph) (gc, hc []int) {
	gIn := buildInAdj(g)
	hIn := buildInAdj(h)
	gInDeg := g.InDegrees()
	hInDeg := h.InDegrees()

	initKey := make(map[[3]int]int)
	colorOf := func(graph *Digraph, inDeg []int, u int) int {
		k := [3]int{len(graph.adj[u]), inDeg[u], graph.ArcMultiplicity(u, u)}
		c, ok := initKey[k]
		if !ok {
			c = len(initKey)
			initKey[k] = c
		}
		return c
	}
	gc = make([]int, g.N())
	hc = make([]int, h.N())
	for u := range gc {
		gc[u] = colorOf(g, gInDeg, u)
	}
	for u := range hc {
		hc[u] = colorOf(h, hInDeg, u)
	}
	numColors := len(initKey)
	rounds := g.N()
	if h.N() > rounds {
		rounds = h.N()
	}
	for round := 0; round < rounds; round++ {
		key := make(map[string]int)
		nextG := make([]int, len(gc))
		nextH := make([]int, len(hc))
		for u := range gc {
			sig := pairSignature(gc, u, g.adj[u], gIn[u])
			c, ok := key[sig]
			if !ok {
				c = len(key)
				key[sig] = c
			}
			nextG[u] = c
		}
		for u := range hc {
			sig := pairSignature(hc, u, h.adj[u], hIn[u])
			c, ok := key[sig]
			if !ok {
				c = len(key)
				key[sig] = c
			}
			nextH[u] = c
		}
		gc, hc = nextG, nextH
		if len(key) == numColors {
			return gc, hc
		}
		numColors = len(key)
	}
	return gc, hc
}

func pairSignature(colors []int, u int, out, in []int) string {
	return signature(colors, u, out, in)
}

// refineColors runs directed colour refinement (1-dimensional
// Weisfeiler–Leman) to a fixed point and returns the final colour of each
// vertex. Colours are small ints canonicalized per round.
func refineColors(g *Digraph) []int {
	n := g.N()
	in := g.InDegrees()
	colors := make([]int, n)
	// Initial colour: (out-degree, in-degree, loop multiplicity).
	initKey := make(map[[3]int]int)
	for u := 0; u < n; u++ {
		k := [3]int{len(g.adj[u]), in[u], g.ArcMultiplicity(u, u)}
		c, ok := initKey[k]
		if !ok {
			c = len(initKey)
			initKey[k] = c
		}
		colors[u] = c
	}
	gIn := buildInAdj(g)
	numColors := len(initKey)
	for round := 0; round < n; round++ {
		next := make([]int, n)
		key := make(map[string]int)
		for u := 0; u < n; u++ {
			sig := signature(colors, u, g.adj[u], gIn[u])
			c, ok := key[sig]
			if !ok {
				c = len(key)
				key[sig] = c
			}
			next[u] = c
		}
		if len(key) == numColors {
			return next
		}
		numColors = len(key)
		colors = next
	}
	return colors
}

func signature(colors []int, u int, out, in []int) string {
	outC := make([]int, len(out))
	for i, v := range out {
		outC[i] = colors[v]
	}
	inC := make([]int, len(in))
	for i, v := range in {
		inC[i] = colors[v]
	}
	sort.Ints(outC)
	sort.Ints(inC)
	return fmt.Sprint(colors[u], outC, inC)
}

func sameColorHistogram(a, b []int) bool {
	ha := make(map[int]int)
	hb := make(map[int]int)
	for _, c := range a {
		ha[c]++
	}
	for _, c := range b {
		hb[c]++
	}
	if len(ha) != len(hb) {
		return false
	}
	// Colours are renamed independently per graph, so compare histograms of
	// class sizes rather than colour ids.
	sa := classSizes(ha)
	sb := classSizes(hb)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func classSizes(h map[int]int) []int {
	sizes := make([]int, 0, len(h))
	for _, s := range h {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return sizes
}

func constraintOrder(g *Digraph, gc []int, byColor map[int][]int) []int {
	n := g.N()
	gIn := buildInAdj(g)
	placed := make([]bool, n)
	order := make([]int, 0, n)
	classSize := func(u int) int { return len(byColor[gc[u]]) }
	adjacencyToPlaced := func(u int) int {
		count := 0
		for _, v := range g.adj[u] {
			if placed[v] {
				count++
			}
		}
		for _, v := range gIn[u] {
			if placed[v] {
				count++
			}
		}
		return count
	}
	for len(order) < n {
		best := -1
		for u := 0; u < n; u++ {
			if placed[u] {
				continue
			}
			if best == -1 {
				best = u
				continue
			}
			// Prefer more adjacency to placed vertices, then smaller
			// candidate class, then smaller id for determinism.
			au, ab := adjacencyToPlaced(u), adjacencyToPlaced(best)
			switch {
			case au > ab:
				best = u
			case au == ab && classSize(u) < classSize(best):
				best = u
			}
		}
		placed[best] = true
		order = append(order, best)
	}
	return order
}

// colorHistogramInvariant returns a canonical string of refined colour class
// sizes, a cheap isomorphism invariant used to bucket candidate digraphs in
// the Table 1 search before attempting expensive matching.
func (g *Digraph) ColorInvariant() string {
	colors := refineColors(g)
	h := make(map[int]int)
	for _, c := range colors {
		h[c]++
	}
	return fmt.Sprint(classSizes(h))
}
