package digraph

import (
	"fmt"
	"math"
)

// Traversal, distance and diameter algorithms. The degree–diameter search of
// the paper's Table 1 reduces to computing the diameter of each candidate
// H(p, q, d) digraph; these BFS routines are the workhorse.

// Unreachable is the distance reported for vertices not reachable from the
// BFS source.
const Unreachable = -1

// BFSFrom returns dist where dist[v] is the number of arcs on a shortest
// directed path from src to v, or Unreachable.
func (g *Digraph) BFSFrom(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// bfsScratch runs BFS reusing caller-provided buffers, avoiding per-source
// allocation during diameter computations over thousands of candidate
// digraphs (the Table 1 search).
func (g *Digraph) bfsScratch(src int, dist, queue []int) []int {
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue = queue[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// DistanceSlab returns all-pairs shortest-path distances as one flat
// row-major slab: slab[u*n+v] is the arc distance from u to v, or
// Unreachable. A single []int32 allocation instead of n ragged []int
// rows keeps the table cache-friendly at a quarter of the size — the
// form the simulator shares read-only between sweep workers.
func (g *Digraph) DistanceSlab() []int32 {
	n := g.N()
	guardNodeInt32(n)
	slab := make([]int32, n*n)
	for i := range slab {
		slab[i] = Unreachable
	}
	queue := make([]int32, 0, n)
	for u := 0; u < n; u++ {
		row := slab[u*n : (u+1)*n]
		row[u] = 0
		queue = append(queue[:0], int32(u))
		for head := 0; head < len(queue); head++ {
			x := int(queue[head])
			dx := row[x]
			for _, v := range g.adj[x] {
				if row[v] == Unreachable {
					row[v] = dx + 1
					queue = append(queue, int32(v))
				}
			}
		}
	}
	return slab
}

// guardNodeInt32 panics unless every vertex id fits the slab's int32
// entries; one call at builder entry dominates every narrowing below it.
func guardNodeInt32(n int) {
	if int64(n) > math.MaxInt32 {
		panic(fmt.Sprintf("digraph: %d vertices exceed the int32 slab entry range", n))
	}
}

// Eccentricity returns the maximum finite distance from src to any vertex,
// or Unreachable if some vertex cannot be reached.
func (g *Digraph) Eccentricity(src int) int {
	dist := g.BFSFrom(src)
	ecc := 0
	for _, d := range dist {
		if d == Unreachable {
			return Unreachable
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the directed diameter of g: the maximum over all ordered
// pairs of the shortest-path distance. It returns Unreachable if g is not
// strongly connected. The empty digraph has diameter Unreachable; a single
// vertex has diameter 0.
func (g *Digraph) Diameter() int {
	n := g.N()
	if n == 0 {
		return Unreachable
	}
	dist := make([]int, n)
	queue := make([]int, 0, n)
	diam := 0
	for u := 0; u < n; u++ {
		dist = g.bfsScratch(u, dist, queue)
		for _, dv := range dist {
			if dv == Unreachable {
				return Unreachable
			}
			if dv > diam {
				diam = dv
			}
		}
	}
	return diam
}

// DiameterAtMost reports whether every ordered pair is within maxDist arcs;
// it aborts early on the first eccentricity above the bound, which makes the
// exhaustive Table 1 search considerably cheaper than computing exact
// diameters for the (many) candidates that exceed the target diameter.
func (g *Digraph) DiameterAtMost(maxDist int) bool {
	n := g.N()
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for u := 0; u < n; u++ {
		dist = g.bfsScratch(u, dist, queue)
		for _, dv := range dist {
			if dv == Unreachable || dv > maxDist {
				return false
			}
		}
	}
	return true
}

// DistanceHistogram returns hist where hist[k] counts ordered pairs (u, v)
// at distance exactly k, for k up to the diameter, plus the count of
// unreachable pairs as the second return. hist[0] = n (every vertex is at
// distance 0 from itself).
func (g *Digraph) DistanceHistogram() (hist []int, unreachable int) {
	n := g.N()
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for u := 0; u < n; u++ {
		dist = g.bfsScratch(u, dist, queue)
		for _, dv := range dist {
			if dv == Unreachable {
				unreachable++
				continue
			}
			for len(hist) <= dv {
				hist = append(hist, 0)
			}
			hist[dv]++
		}
	}
	return hist, unreachable
}

// MeanDistance returns the average distance over all ordered pairs of
// distinct vertices, and ok=false if any pair is unreachable.
func (g *Digraph) MeanDistance() (mean float64, ok bool) {
	hist, unreachable := g.DistanceHistogram()
	if unreachable > 0 {
		return 0, false
	}
	n := g.N()
	if n <= 1 {
		return 0, true
	}
	total := 0
	pairs := 0
	for k := 1; k < len(hist); k++ {
		total += k * hist[k]
		pairs += hist[k]
	}
	return float64(total) / float64(pairs), true
}

// ShortestPath returns one shortest directed path from src to dst as a
// vertex sequence including both endpoints, or nil if unreachable.
func (g *Digraph) ShortestPath(src, dst int) []int {
	n := g.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[src] = -1
	queue := []int{src}
	for len(queue) > 0 && parent[dst] == -2 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if parent[v] == -2 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	if parent[dst] == -2 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = parent[v] {
		rev = append(rev, v)
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// Girth returns the length of a shortest directed cycle, or Unreachable in
// an acyclic digraph. Loops give girth 1.
func (g *Digraph) Girth() int {
	best := Unreachable
	n := g.N()
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for u := 0; u < n; u++ {
		dist = g.bfsScratch(u, dist, queue)
		// Shortest cycle through u = min over arcs (v, u) of dist(u, v)+1.
		for v := 0; v < n; v++ {
			if dist[v] == Unreachable {
				continue
			}
			for _, head := range g.adj[v] {
				if head == u {
					if c := dist[v] + 1; best == Unreachable || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}
