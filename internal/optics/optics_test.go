package optics

import (
	"math"
	"testing"

	"repro/internal/otis"
)

func TestNewBenchValidation(t *testing.T) {
	if _, err := NewBench(0, 4, DefaultPitch); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewBench(4, 4, -1); err == nil {
		t.Error("negative pitch accepted")
	}
	b, err := NewBench(3, 6, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	if b.P != 3 || b.Q != 6 {
		t.Error("dimensions wrong")
	}
	if b.Aperture() <= 0 || b.Length() <= 0 {
		t.Error("degenerate geometry")
	}
}

func TestThinLensEquationHolds(t *testing.T) {
	// The derived distances must satisfy 1/f = 1/o + 1/i for both stages.
	b, _ := NewBench(4, 8, DefaultPitch)
	check := func(f, o, i float64, stage string) {
		lhs := 1 / f
		rhs := 1/o + 1/i
		if math.Abs(lhs-rhs)/lhs > 1e-9 {
			t.Errorf("%s: 1/f = %g but 1/o+1/i = %g", stage, lhs, rhs)
		}
	}
	check(b.FocalLength1, b.Z01, b.Z12, "stage 1")
	check(b.FocalLength2, b.Z12, b.Z23, "stage 2")
}

func TestStage1Magnification(t *testing.T) {
	b, _ := NewBench(4, 8, DefaultPitch)
	if m := b.Z12 / b.Z01; math.Abs(m-4) > 1e-9 {
		t.Errorf("stage 1 magnification = %g, want 4 (= p)", m)
	}
	if m := b.Z23 / b.Z12; math.Abs(m-1.0/8) > 1e-9 {
		t.Errorf("stage 2 magnification = %g, want 1/8 (= 1/q)", m)
	}
}

func TestTraceTransposeOTIS36(t *testing.T) {
	// Figure 6 geometry: OTIS(3,6).
	b, _ := NewBench(3, 6, DefaultPitch)
	if err := b.VerifyTranspose(); err != nil {
		t.Fatal(err)
	}
	// Spot-check the corners.
	tr := b.Trace(0, 0)
	if tr.RxI != 5 || tr.RxJ != 2 {
		t.Errorf("(0,0) imaged to (%d,%d), want (5,2)", tr.RxI, tr.RxJ)
	}
	tr = b.Trace(2, 5)
	if tr.RxI != 0 || tr.RxJ != 0 {
		t.Errorf("(2,5) imaged to (%d,%d), want (0,0)", tr.RxI, tr.RxJ)
	}
}

func TestTraceMatchesOTISModelAcrossShapes(t *testing.T) {
	// The optical simulation and the combinatorial otis.System must agree
	// on every beam, for a variety of (p, q) including p > q and p = q.
	for _, c := range []struct{ p, q int }{
		{1, 8}, {8, 1}, {4, 4}, {4, 8}, {8, 4}, {16, 32}, {2, 256},
	} {
		b, err := NewBench(c.p, c.q, DefaultPitch)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := otis.NewSystem(c.p, c.q)
		for i := 0; i < c.p; i++ {
			for j := 0; j < c.q; j++ {
				tr := b.Trace(i, j)
				ri, rj := s.Receiver(i, j)
				if tr.RxI != ri || tr.RxJ != rj {
					t.Fatalf("OTIS(%d,%d) beam (%d,%d): optics (%d,%d), model (%d,%d)",
						c.p, c.q, i, j, tr.RxI, tr.RxJ, ri, rj)
				}
			}
		}
	}
}

func TestTraceImageLandsOnLensCenters(t *testing.T) {
	// Stage-1 images must land exactly on L2 lens centres (this is what
	// makes the lenslet design feasible: no beam straddles two lenses).
	b, _ := NewBench(4, 8, DefaultPitch)
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			tr := b.Trace(i, j)
			if c := b.Lens2X(tr.Lens2); math.Abs(tr.X2-c) > 1e-12 {
				t.Fatalf("beam (%d,%d) hits L2 at %g, lens centre %g", i, j, tr.X2, c)
			}
			if r := b.ReceiverX(tr.RxI, tr.RxJ); math.Abs(tr.X3-r) > 1e-12 {
				t.Fatalf("beam (%d,%d) lands at %g, receiver centre %g", i, j, tr.X3, r)
			}
		}
	}
}

func TestOpticalImageIsBijective(t *testing.T) {
	b, _ := NewBench(5, 7, DefaultPitch)
	seen := map[[2]int]bool{}
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			tr := b.Trace(i, j)
			key := [2]int{tr.RxI, tr.RxJ}
			if seen[key] {
				t.Fatalf("receiver (%d,%d) hit twice", tr.RxI, tr.RxJ)
			}
			seen[key] = true
		}
	}
	if len(seen) != 35 {
		t.Fatalf("only %d receivers hit", len(seen))
	}
}

func TestPathLengthSane(t *testing.T) {
	b, _ := NewBench(4, 8, DefaultPitch)
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			tr := b.Trace(i, j)
			if tr.Length < b.Length() {
				t.Fatalf("beam (%d,%d) path %g shorter than axial length %g", i, j, tr.Length, b.Length())
			}
			// Paraxial: transverse excursions are small compared to the
			// axial distance; allow 50% slack.
			if tr.Length > 1.5*b.Length() {
				t.Fatalf("beam (%d,%d) path %g suspiciously long", i, j, tr.Length)
			}
		}
	}
}

func TestLinkMargin(t *testing.T) {
	b, _ := NewBench(16, 32, DefaultPitch)
	pb := DefaultBudget()
	margin, worst := WorstCaseMargin(b, pb)
	if margin <= 0 {
		t.Errorf("link does not close: margin %.2f dB on beam (%d,%d)", margin, worst.I, worst.J)
	}
	// Margin must be below the zero-loss bound.
	if margin >= pb.EmitterPowerDBm-pb.ReceiverSensitivityDBm {
		t.Errorf("margin %.2f dB ignores losses", margin)
	}
}

func TestBillOfMaterials(t *testing.T) {
	// B(2,8) on the optimal OTIS(16,32) layout: 256 nodes, 48 lenses,
	// 512 VCSELs, 2 transceivers per node.
	b, _ := NewBench(16, 32, DefaultPitch)
	bom := BillOfMaterials(b, 2)
	if bom.Nodes != 256 || bom.Lenses != 48 || bom.Transmitters != 512 ||
		bom.TransceiversNode != 2 {
		t.Errorf("BOM = %+v", bom)
	}
	if bom.String() == "" {
		t.Error("empty BOM string")
	}
}

func TestCompareLayouts(t *testing.T) {
	// B(2,8): baseline OTIS(2,256) has 258 lenses; optimized OTIS(16,32)
	// has 48 — a 5.4× hardware saving.
	base, opt, ratio, err := CompareLayouts(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if base != 258 || opt != 48 {
		t.Errorf("lens counts = (%d,%d), want (258,48)", base, opt)
	}
	if ratio < 5 {
		t.Errorf("ratio = %.2f", ratio)
	}
	if _, _, _, err := CompareLayouts(2, 7); err == nil {
		t.Error("odd D accepted by CompareLayouts")
	}
}

func TestBudgetScalesWithBenchSize(t *testing.T) {
	// Bigger apertures mean longer benches and smaller margins.
	small, _ := NewBench(4, 8, DefaultPitch)
	large, _ := NewBench(32, 64, DefaultPitch)
	pb := DefaultBudget()
	ms, _ := WorstCaseMargin(small, pb)
	ml, _ := WorstCaseMargin(large, pb)
	if ml >= ms {
		t.Errorf("margin did not degrade with size: small %.2f, large %.2f", ms, ml)
	}
}
