package optics

import (
	"fmt"
	"math"
)

// Optical power budget and hardware bill of materials. The paper's case
// for free-space optics rests on the energy/speed crossover of Feldman et
// al. [16]; the budget model here uses representative numbers from the
// component papers it cites (ultralow-threshold VCSELs [15], optimized
// transimpedance receivers [5]).

// PowerBudget captures the link budget parameters of a bench.
type PowerBudget struct {
	// EmitterPowerDBm is the VCSEL launch power (dBm). 0 dBm = 1 mW.
	EmitterPowerDBm float64
	// ReceiverSensitivityDBm is the minimum detectable power (dBm).
	ReceiverSensitivityDBm float64
	// LensLossDB is the insertion loss per lenslet surface (dB).
	LensLossDB float64
	// GeometricLossDB models diffraction/clipping loss per metre of
	// free-space path (dB/m) — small for well-designed lenslets.
	GeometricLossDBPerM float64
}

// DefaultBudget returns a representative late-1990s smart-pixel budget:
// 1 mW VCSELs, -17 dBm receiver sensitivity, 0.25 dB per lens, 1 dB/m
// geometric loss.
func DefaultBudget() PowerBudget {
	return PowerBudget{
		EmitterPowerDBm:        0,
		ReceiverSensitivityDBm: -17,
		LensLossDB:             0.25,
		GeometricLossDBPerM:    1.0,
	}
}

// LinkMarginDB returns the power margin (dB) of the traced beam under the
// budget: launch power minus losses minus sensitivity. Positive margins
// close the link.
func (pb PowerBudget) LinkMarginDB(tr Trajectory) float64 {
	loss := 2*pb.LensLossDB + pb.GeometricLossDBPerM*tr.Length
	return pb.EmitterPowerDBm - loss - pb.ReceiverSensitivityDBm
}

// WorstCaseMargin traces every beam of the bench and returns the minimum
// link margin and the trajectory achieving it.
func WorstCaseMargin(b *Bench, pb PowerBudget) (float64, Trajectory) {
	worst := math.Inf(1)
	var worstTr Trajectory
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			tr := b.Trace(i, j)
			if m := pb.LinkMarginDB(tr); m < worst {
				worst = m
				worstTr = tr
			}
		}
	}
	return worst, worstTr
}

// BOM is the hardware bill of materials of an OTIS-realized network.
type BOM struct {
	Nodes            int // processing nodes
	Degree           int // network degree d
	Lenses           int // lenslets across both arrays: p + q
	Transmitters     int // VCSELs: d per node
	Receivers        int // photodetectors: d per node
	TransceiversNode int // transceiver pairs per node: d
	BenchLengthM     float64
	ApertureM        float64
}

// BillOfMaterials summarizes the hardware required to realize a d-regular
// n-node digraph on the bench.
func BillOfMaterials(b *Bench, d int) BOM {
	m := b.P * b.Q
	return BOM{
		Nodes:            m / d,
		Degree:           d,
		Lenses:           b.P + b.Q,
		Transmitters:     m,
		Receivers:        m,
		TransceiversNode: d,
		BenchLengthM:     b.Length(),
		ApertureM:        b.Aperture(),
	}
}

// String renders the BOM compactly.
func (bom BOM) String() string {
	return fmt.Sprintf("n=%d d=%d: %d lenses, %d VCSELs, %d receivers, bench %.3f m, aperture %.3f m",
		bom.Nodes, bom.Degree, bom.Lenses, bom.Transmitters, bom.Receivers,
		bom.BenchLengthM, bom.ApertureM)
}

// CompareLayouts returns the lens counts of the II-derived O(n) layout
// (OTIS(d, n)) versus the optimized Θ(√n) layout (OTIS(d^{D/2},
// d^{D/2+1})) for B(d, D), as the ratio baseline/optimized. Both counts
// come from actual benches so the comparison includes geometry.
func CompareLayouts(d, D int) (baselineLenses, optimizedLenses int, ratio float64, err error) {
	n := intPow(d, D)
	baseline, err := NewBench(d, n, DefaultPitch)
	if err != nil {
		return 0, 0, 0, err
	}
	if D%2 != 0 {
		return 0, 0, 0, fmt.Errorf("optics: optimized comparison requires even D, got %d", D)
	}
	p := intPow(d, D/2)
	optimized, err := NewBench(p, p*d, DefaultPitch)
	if err != nil {
		return 0, 0, 0, err
	}
	bl := baseline.P + baseline.Q
	ol := optimized.P + optimized.Q
	return bl, ol, float64(bl) / float64(ol), nil
}
