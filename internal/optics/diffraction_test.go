package optics

import (
	"testing"
)

func TestDiffractFeasibleAtPaperScale(t *testing.T) {
	// The paper's practical layouts must be physically buildable: the
	// OTIS(16,32) bench at 250 µm pitch and 850 nm comfortably passes.
	b, _ := NewBench(16, 32, DefaultPitch)
	d, err := Diffract(b, DefaultWavelength)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Feasible {
		t.Fatalf("OTIS(16,32) infeasible: %+v", d)
	}
	if d.SpotDiameter2 >= DefaultPitch {
		t.Errorf("stage-2 spot %g exceeds pitch", d.SpotDiameter2)
	}
	if d.FNumber1 <= 0 || d.FNumber2 <= 0 {
		t.Error("degenerate f-numbers")
	}
}

func TestDiffractValidation(t *testing.T) {
	b, _ := NewBench(4, 8, DefaultPitch)
	if _, err := Diffract(b, 0); err == nil {
		t.Error("zero wavelength accepted")
	}
	if _, err := Diffract(b, -1); err == nil {
		t.Error("negative wavelength accepted")
	}
}

func TestMaxFeasibleDiameterEven(t *testing.T) {
	maxD := MaxFeasibleDiameterEven(2, DefaultPitch, DefaultWavelength)
	if maxD < 8 {
		t.Errorf("physical limit D=%d; the paper's 256-node example should be feasible", maxD)
	}
	if maxD >= 30 {
		t.Errorf("no physical limit found (D=%d) — the model lost its physics", maxD)
	}
	// Shrinking the pitch extends the limit (smaller machine, shorter
	// bench, gentler f-numbers scale).
	finer := MaxFeasibleDiameterEven(2, 125e-6, DefaultWavelength)
	if finer < maxD {
		t.Errorf("finer pitch reduced the limit: %d < %d", finer, maxD)
	}
}

func TestRayleighRange(t *testing.T) {
	zr := RayleighRange(DefaultPitch, DefaultWavelength)
	if zr <= 0 {
		t.Fatal("non-positive Rayleigh range")
	}
	// ~5.8 cm for 250 µm pitch at 850 nm — the benches are longer than
	// this, which is exactly why lenslets (re-imaging) are required.
	if zr > 1 {
		t.Errorf("Rayleigh range %g m implausibly long", zr)
	}
	b, _ := NewBench(16, 32, DefaultPitch)
	if b.Length() < zr {
		t.Log("bench shorter than Rayleigh range; lenslets optional at this size")
	}
}
