// Package optics is the free-space optical hardware substrate of the
// reproduction: a paraxial (ideal thin-lens) model of the OTIS(p, q)
// two-lenslet-array interconnect of Marsden et al., which the paper treats
// as an exact transpose permutation between transmitters and receivers.
//
// The original system is physical hardware (VCSEL arrays, lenslet arrays,
// photoreceivers); we have no optics bench, so this package simulates the
// closest geometric equivalent and verifies, beam by beam, that the optical
// image of transmitter (i, j) is receiver (q-j-1, p-i-1) — the only
// property Section 4 of the paper uses. It also carries the hardware cost
// model (lens counts, apertures, optical power budget) that motivates
// minimizing p + q.
//
// Geometry (one transverse dimension; the physical system is separable in
// x and y so one dimension captures the mapping):
//
//	stage 1: lenslet array L1 has p lenses, one per transmitter group.
//	  Lens i images its q transmitters, inverted and magnified by p,
//	  across the full aperture of lenslet array L2 — transmitter (i, j)
//	  lands on lens q-j-1 of L2 regardless of i (the OTIS fan-out).
//	stage 2: lenslet array L2 has q lenses, one per receiver group.
//	  Lens k images the p lenses of L1, inverted and demagnified by q,
//	  onto its p receivers — a beam arriving from lens i of L1 lands on
//	  receiver (k, p-i-1).
//
// The composition is the optical transpose (i, j) ↦ (q-j-1, p-i-1).
package optics

import (
	"fmt"
	"math"
)

// Bench describes a concrete OTIS(p, q) optical bench.
type Bench struct {
	P, Q int

	// Pitch is the transceiver spacing in metres (VCSEL/receiver pitch).
	Pitch float64
	// FocalLength1 and FocalLength2 are the focal lengths of the two
	// lenslet arrays, derived from the geometry in NewBench.
	FocalLength1, FocalLength2 float64
	// Z01 is the transmitter-plane → L1 distance; Z12 the L1 → L2
	// distance; Z23 the L2 → receiver-plane distance (metres).
	Z01, Z12, Z23 float64
}

// DefaultPitch is a typical smart-pixel VCSEL pitch (250 µm, as in the
// UCSD demonstrators the paper cites).
const DefaultPitch = 250e-6

// NewBench builds a bench for OTIS(p, q) with the given transceiver pitch.
// The transmitter array has aperture A = p·q·pitch; stage 1 magnifies each
// group (width A/p) by p onto the L2 aperture (width A), and stage 2
// demagnifies the L1 aperture (width A) by q onto each receiver group
// (width A/q). Plane separations follow the thin-lens equation with an
// object distance of one focal length times (1+1/|M|).
func NewBench(p, q int, pitch float64) (*Bench, error) {
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("optics: need p, q >= 1, got (%d,%d)", p, q)
	}
	if pitch <= 0 {
		return nil, fmt.Errorf("optics: pitch must be positive, got %g", pitch)
	}
	// Stage 1: magnification M1 = p. Pick the object distance so the
	// lens diameter (group width) comfortably exceeds the beam; the
	// standard imaging choice o = f(1+1/M) follows from 1/f = 1/o + 1/i
	// with i = M·o. We normalize f1 to 10× the group width, a typical
	// lenslet f-number regime.
	a := float64(p*q) * pitch // full aperture
	groupW := a / float64(p)
	f1 := 10 * groupW
	o1 := f1 * (float64(p) + 1) / float64(p)
	i1 := o1 * float64(p)
	// Stage 2: demagnification M2 = 1/q, object = the L1 plane. The
	// object distance is fixed by the bench: o2 = Z12 = i1. Solve the
	// thin-lens equation for f2 with i2 = o2/q.
	o2 := i1
	i2 := o2 / float64(q)
	f2 := o2 * i2 / (o2 + i2)
	return &Bench{
		P: p, Q: q,
		Pitch:        pitch,
		FocalLength1: f1,
		FocalLength2: f2,
		Z01:          o1,
		Z12:          i1,
		Z23:          i2,
	}, nil
}

// Aperture returns the transverse extent of the transceiver planes, in
// metres: m·pitch with m = pq.
func (b *Bench) Aperture() float64 { return float64(b.P*b.Q) * b.Pitch }

// Length returns the total optical path length of the bench.
func (b *Bench) Length() float64 { return b.Z01 + b.Z12 + b.Z23 }

// TransmitterX returns the transverse position (metres) of transmitter
// (i, j): group i of p, element j of q, on a uniform grid.
func (b *Bench) TransmitterX(i, j int) float64 {
	if i < 0 || i >= b.P || j < 0 || j >= b.Q {
		panic(fmt.Sprintf("optics: transmitter (%d,%d) out of OTIS(%d,%d)", i, j, b.P, b.Q))
	}
	return (float64(i*b.Q+j) + 0.5) * b.Pitch
}

// ReceiverX returns the transverse position of receiver (k, l): group k of
// q, element l of p.
func (b *Bench) ReceiverX(k, l int) float64 {
	if k < 0 || k >= b.Q || l < 0 || l >= b.P {
		panic(fmt.Sprintf("optics: receiver (%d,%d) out of OTIS(%d,%d)", k, l, b.P, b.Q))
	}
	return (float64(k*b.P+l) + 0.5) * b.Pitch
}

// Lens1X returns the centre of lens i of array L1 (which spans one
// transmitter group).
func (b *Bench) Lens1X(i int) float64 {
	return (float64(i) + 0.5) * b.Aperture() / float64(b.P)
}

// Lens2X returns the centre of lens k of array L2 (which spans one
// receiver group).
func (b *Bench) Lens2X(k int) float64 {
	return (float64(k) + 0.5) * b.Aperture() / float64(b.Q)
}

// Trajectory records a traced beam through the bench.
type Trajectory struct {
	I, J   int     // source transmitter (group, element)
	X0     float64 // launch position on the transmitter plane
	Lens1  int     // index of the L1 lens traversed
	X2     float64 // arrival position on the L2 plane
	Lens2  int     // index of the L2 lens traversed
	X3     float64 // arrival position on the receiver plane
	RxI    int     // receiver group hit
	RxJ    int     // receiver element hit
	Loss   float64 // optical loss along the path, in dB
	Length float64 // geometric path length (paraxial, metres)
}

// LensLossDB is the per-surface insertion loss assumed for each lenslet
// (anti-reflection coated doublet, ~0.25 dB per lens, two lenses).
const LensLossDB = 0.25

// Trace images transmitter (i, j) through both lenslet arrays and returns
// the full trajectory. The imaging equations are exact in the paraxial
// model:
//
//	stage 1 (lens i of L1, inversion ×p about the lens centre):
//	    x2 = A/2 - p·(x0 - Lens1X(i))
//	stage 2 (lens k of L2, inversion ×1/q about the plane centre):
//	    x3 = Lens2X(k) - (Lens1X(i) - A/2)/q
func (b *Bench) Trace(i, j int) Trajectory {
	x0 := b.TransmitterX(i, j)
	a := b.Aperture()
	c1 := b.Lens1X(i)
	// Stage 1: each group lens images its group across the full L2
	// aperture, inverted.
	x2 := a/2 - float64(b.P)*(x0-c1)
	lens2 := int(x2 / (a / float64(b.Q)))
	if lens2 == b.Q { // exact upper edge
		lens2 = b.Q - 1
	}
	// Stage 2: lens2 images the L1 plane onto its receiver group,
	// inverted and demagnified.
	x3 := b.Lens2X(lens2) - (c1-a/2)/float64(b.Q)
	// Identify the receiver cell containing x3.
	slot := int(x3 / b.Pitch)
	if slot == b.P*b.Q {
		slot = b.P*b.Q - 1
	}
	rxI, rxJ := slot/b.P, slot%b.P
	return Trajectory{
		I: i, J: j,
		X0:     x0,
		Lens1:  i,
		X2:     x2,
		Lens2:  lens2,
		X3:     x3,
		RxI:    rxI,
		RxJ:    rxJ,
		Loss:   2 * LensLossDB,
		Length: b.pathLength(x0, c1, x2, x3),
	}
}

// pathLength sums the three straight paraxial segments.
func (b *Bench) pathLength(x0, x1, x2, x3 float64) float64 {
	seg := func(dx, dz float64) float64 { return math.Hypot(dx, dz) }
	return seg(x1-x0, b.Z01) + seg(x2-x1, b.Z12) + seg(x3-x2, b.Z23)
}

// VerifyTranspose traces every transmitter and checks that the optical
// image is the OTIS transpose (q-j-1, p-i-1). It returns the first
// discrepancy, or nil if the bench realizes the interconnect exactly.
func (b *Bench) VerifyTranspose() error {
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			tr := b.Trace(i, j)
			wantI, wantJ := b.Q-j-1, b.P-i-1
			if tr.RxI != wantI || tr.RxJ != wantJ {
				return fmt.Errorf("optics: transmitter (%d,%d) imaged to receiver (%d,%d), want (%d,%d)",
					i, j, tr.RxI, tr.RxJ, wantI, wantJ)
			}
		}
	}
	return nil
}
