package optics

import (
	"fmt"
)

// Two-dimensional bench. Physical OTIS demonstrators ([6], [25]) arrange
// transmitters, lenslets and receivers in 2-D grids; the optics are
// separable, so the system is the product of two 1-D transposes. An
// OTIS(p, q) with p = px·py and q = qx·qy factors into a horizontal
// OTIS(px, qx) and a vertical OTIS(py, qy): transmitter ((ix,iy),(jx,jy))
// images to receiver ((qx-jx-1, qy-jy-1), (px-ix-1, py-iy-1)), and the
// flattened indices reproduce the 1-D transpose exactly when groups are
// numbered row-major. 2-D packaging is what makes large p, q feasible:
// a 1024-lens 1-D array is a metre of glass, a 32×32 grid is centimetres.
type Bench2D struct {
	X *Bench // horizontal axis: OTIS(px, qx)
	Y *Bench // vertical axis: OTIS(py, qy)
}

// NewBench2D builds the separable bench for OTIS(px·py, qx·qy).
func NewBench2D(px, py, qx, qy int, pitch float64) (*Bench2D, error) {
	bx, err := NewBench(px, qx, pitch)
	if err != nil {
		return nil, fmt.Errorf("optics: x axis: %w", err)
	}
	by, err := NewBench(py, qy, pitch)
	if err != nil {
		return nil, fmt.Errorf("optics: y axis: %w", err)
	}
	return &Bench2D{X: bx, Y: by}, nil
}

// P returns the total transmitter group count px·py.
func (b *Bench2D) P() int { return b.X.P * b.Y.P }

// Q returns the total per-group transmitter count qx·qy.
func (b *Bench2D) Q() int { return b.X.Q * b.Y.Q }

// Lenses returns the physical lenslet count of the 2-D implementation:
// the first array is a px×py grid, the second a qx×qy grid.
func (b *Bench2D) Lenses() int { return b.X.P*b.Y.P + b.X.Q*b.Y.Q }

// Trajectory2D records a separable beam trace.
type Trajectory2D struct {
	TraceX, TraceY Trajectory
	// RxGroup and RxElem are the flattened receiver coordinates
	// (row-major over the two axes).
	RxGroup, RxElem int
}

// Trace images transmitter (i, j) (flattened, row-major: i = ix·py + iy,
// j = jx·qy + jy) through both axes.
func (b *Bench2D) Trace(i, j int) Trajectory2D {
	ix, iy := i/b.Y.P, i%b.Y.P
	jx, jy := j/b.Y.Q, j%b.Y.Q
	tx := b.X.Trace(ix, jx)
	ty := b.Y.Trace(iy, jy)
	return Trajectory2D{
		TraceX:  tx,
		TraceY:  ty,
		RxGroup: tx.RxI*b.Y.Q + ty.RxI,
		RxElem:  tx.RxJ*b.Y.P + ty.RxJ,
	}
}

// VerifyTranspose checks that the flattened 2-D image realizes the 1-D
// OTIS(p, q) transpose (q-j-1, p-i-1) for every transmitter, i.e. that
// the 2-D packaging is interconnect-equivalent to the abstract OTIS the
// graph theory assumes.
func (b *Bench2D) VerifyTranspose() error {
	p, q := b.P(), b.Q()
	for i := 0; i < p; i++ {
		for j := 0; j < q; j++ {
			tr := b.Trace(i, j)
			if tr.RxGroup != q-j-1 || tr.RxElem != p-i-1 {
				return fmt.Errorf("optics: 2D beam (%d,%d) imaged to (%d,%d), want (%d,%d)",
					i, j, tr.RxGroup, tr.RxElem, q-j-1, p-i-1)
			}
		}
	}
	return nil
}

// MaxArrayExtent returns the larger transverse aperture of the two axes —
// the figure of merit 2-D packaging improves: a 1-D OTIS(p, q) needs an
// aperture of pq·pitch, the 2-D version only max(px·qx, py·qy)·pitch.
func (b *Bench2D) MaxArrayExtent() float64 {
	if b.X.Aperture() > b.Y.Aperture() {
		return b.X.Aperture()
	}
	return b.Y.Aperture()
}
