package optics

import (
	"fmt"
)

// Misalignment analysis. A real bench's lenslet arrays are mounted with
// finite precision; lateral shifts move every image. This file measures
// how far an array can drift before beams land on wrong receivers — the
// assembly tolerance a builder of the paper's layouts must hold.

// MisalignedTrace traces transmitter (i, j) with the L2 array shifted
// laterally by dx2 metres and the receiver plane by dx3 metres, returning
// the receiver cell actually illuminated.
func (b *Bench) MisalignedTrace(i, j int, dx2, dx3 float64) (rxI, rxJ int, ok bool) {
	x0 := b.TransmitterX(i, j)
	a := b.Aperture()
	c1 := b.Lens1X(i)
	x2 := a/2 - float64(b.P)*(x0-c1)
	// Which (shifted) L2 lens catches the beam?
	rel := x2 - dx2
	lens2 := int(rel / (a / float64(b.Q)))
	if lens2 < 0 || lens2 >= b.Q {
		return 0, 0, false // beam misses the array
	}
	// The shifted lens images from its shifted centre.
	c2 := b.Lens2X(lens2) + dx2
	x3 := c2 - (c1-a/2)/float64(b.Q)
	// Receiver plane shifted by dx3.
	relRx := x3 - dx3
	slot := int(relRx / b.Pitch)
	if slot < 0 || slot >= b.P*b.Q {
		return 0, 0, false
	}
	return slot / b.P, slot % b.P, true
}

// MisalignmentErrors counts beams landing on the wrong receiver under
// the given array shifts.
func (b *Bench) MisalignmentErrors(dx2, dx3 float64) int {
	errors := 0
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			rxI, rxJ, ok := b.MisalignedTrace(i, j, dx2, dx3)
			if !ok || rxI != b.Q-j-1 || rxJ != b.P-i-1 {
				errors++
			}
		}
	}
	return errors
}

// ReceiverShiftTolerance returns the largest receiver-plane lateral shift
// (metres, searched in steps of pitch/100 up to one pitch) under which
// every beam still lands on its correct receiver. The analytic answer is
// half a pitch (beams land on cell centres); the search confirms the
// implementation agrees.
func (b *Bench) ReceiverShiftTolerance() float64 {
	step := b.Pitch / 100
	last := 0.0
	for dx := step; dx <= b.Pitch; dx += step {
		if b.MisalignmentErrors(0, dx) > 0 {
			return last
		}
		last = dx
	}
	return last
}

// Lens2ShiftTolerance returns the largest L2-array lateral shift under
// which every beam still lands correctly. Shifting L2 moves both which
// lens catches the beam and where the image lands, so the tolerance is
// tighter than the receiver plane's when lens cells are narrower than
// half a pitch... measured rather than assumed.
func (b *Bench) Lens2ShiftTolerance() float64 {
	step := b.Pitch / 100
	last := 0.0
	limit := b.Aperture() / float64(b.Q) // one lens width
	for dx := step; dx <= limit; dx += step {
		if b.MisalignmentErrors(dx, 0) > 0 {
			return last
		}
		last = dx
	}
	return last
}

// ToleranceReport summarizes assembly tolerances in human units.
func (b *Bench) ToleranceReport() string {
	return fmt.Sprintf("receiver plane ±%.1f µm, L2 array ±%.1f µm (pitch %.0f µm)",
		b.ReceiverShiftTolerance()*1e6, b.Lens2ShiftTolerance()*1e6, b.Pitch*1e6)
}
