package optics

import (
	"fmt"
	"io"
)

// SVG rendering of the optical bench: transmitter plane, the two lenslet
// arrays, receiver plane, and (a subsample of) the traced beams. The
// output is a scale drawing — the z axis is the optical axis, x the
// transverse axis — suitable for documentation and for eyeballing that
// the transpose geometry does what the algebra says.

// WriteSVG renders the bench. beamStride controls how many beams are
// drawn (every beamStride-th transmitter; 0 draws none, 1 draws all).
func (b *Bench) WriteSVG(w io.Writer, beamStride int) error {
	// Canvas: z horizontal, x vertical. Margins in user units.
	const width, height, margin = 960.0, 480.0, 40.0
	zSpan := b.Length()
	xSpan := b.Aperture()
	zx := func(z, x float64) (float64, float64) {
		return margin + z/zSpan*(width-2*margin),
			margin + x/xSpan*(height-2*margin)
	}

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		width, height, width, height); err != nil {
		return err
	}
	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format+"\n", args...)
		return err
	}
	if err := write(`<rect width="%g" height="%g" fill="white"/>`, width, height); err != nil {
		return err
	}

	// Planes: transmitters at z=0, L1 at Z01, L2 at Z01+Z12, receivers at
	// the end.
	planes := []struct {
		z     float64
		color string
		label string
	}{
		{0, "#444", "TX"},
		{b.Z01, "#1f77b4", "L1"},
		{b.Z01 + b.Z12, "#1f77b4", "L2"},
		{b.Length(), "#444", "RX"},
	}
	for _, p := range planes {
		x0, y0 := zx(p.z, 0)
		_, y1 := zx(p.z, xSpan)
		if err := write(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`,
			x0, y0, x0, y1, p.color); err != nil {
			return err
		}
		if err := write(`<text x="%g" y="%g" font-size="12" fill="%s">%s</text>`,
			x0-10, y0-8, p.color, p.label); err != nil {
			return err
		}
	}

	// Lens apertures as tick marks.
	for i := 0; i < b.P; i++ {
		x, y := zx(b.Z01, b.Lens1X(i))
		if err := write(`<circle cx="%g" cy="%g" r="3" fill="#1f77b4"/>`, x, y); err != nil {
			return err
		}
	}
	for k := 0; k < b.Q; k++ {
		x, y := zx(b.Z01+b.Z12, b.Lens2X(k))
		if err := write(`<circle cx="%g" cy="%g" r="3" fill="#1f77b4"/>`, x, y); err != nil {
			return err
		}
	}

	// Beams.
	if beamStride > 0 {
		idx := 0
		for i := 0; i < b.P; i++ {
			for j := 0; j < b.Q; j++ {
				if idx%beamStride != 0 {
					idx++
					continue
				}
				idx++
				tr := b.Trace(i, j)
				pts := [][2]float64{}
				for _, p := range [][2]float64{
					{0, tr.X0},
					{b.Z01, b.Lens1X(i)},
					{b.Z01 + b.Z12, tr.X2},
					{b.Length(), tr.X3},
				} {
					x, y := zx(p[0], p[1])
					pts = append(pts, [2]float64{x, y})
				}
				if err := write(`<polyline points="%g,%g %g,%g %g,%g %g,%g" fill="none" stroke="#d62728" stroke-width="0.6" opacity="0.5"/>`,
					pts[0][0], pts[0][1], pts[1][0], pts[1][1],
					pts[2][0], pts[2][1], pts[3][0], pts[3][1]); err != nil {
					return err
				}
			}
		}
	}

	if err := write(`<text x="%g" y="%g" font-size="13" fill="#222">OTIS(%d,%d): %d lenses, bench %.3f m</text>`,
		margin, height-10.0, b.P, b.Q, b.P+b.Q, b.Length()); err != nil {
		return err
	}
	return write(`</svg>`)
}
