package optics

import (
	"testing"
)

func TestBench2DValidation(t *testing.T) {
	if _, err := NewBench2D(0, 4, 4, 4, DefaultPitch); err == nil {
		t.Error("px=0 accepted")
	}
	if _, err := NewBench2D(4, 4, 4, 0, DefaultPitch); err == nil {
		t.Error("qy=0 accepted")
	}
	b, err := NewBench2D(4, 4, 8, 4, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	if b.P() != 16 || b.Q() != 32 || b.Lenses() != 48 {
		t.Errorf("dims: p=%d q=%d lenses=%d", b.P(), b.Q(), b.Lenses())
	}
}

func TestBench2DTranspose(t *testing.T) {
	// The 2-D packaging of the optimal B(2,8) layout OTIS(16,32).
	for _, c := range []struct{ px, py, qx, qy int }{
		{4, 4, 8, 4}, {2, 8, 4, 8}, {1, 16, 32, 1}, {3, 2, 2, 5},
	} {
		b, err := NewBench2D(c.px, c.py, c.qx, c.qy, DefaultPitch)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.VerifyTranspose(); err != nil {
			t.Errorf("(%d×%d, %d×%d): %v", c.px, c.py, c.qx, c.qy, err)
		}
	}
}

func TestBench2DShrinksAperture(t *testing.T) {
	// The engineering payoff: the 2-D OTIS(16,32) needs a far smaller
	// transverse extent than the 1-D version.
	flat, _ := NewBench(16, 32, DefaultPitch)
	square, _ := NewBench2D(4, 4, 8, 4, DefaultPitch)
	if square.MaxArrayExtent() >= flat.Aperture() {
		t.Errorf("2D extent %.4f not smaller than 1D %.4f",
			square.MaxArrayExtent(), flat.Aperture())
	}
	if flat.Aperture()/square.MaxArrayExtent() < 10 {
		t.Errorf("expected ≥10× aperture reduction, got %.1f×",
			flat.Aperture()/square.MaxArrayExtent())
	}
}

func TestBench2DBeamBijective(t *testing.T) {
	b, _ := NewBench2D(2, 3, 3, 2, DefaultPitch)
	seen := map[[2]int]bool{}
	for i := 0; i < b.P(); i++ {
		for j := 0; j < b.Q(); j++ {
			tr := b.Trace(i, j)
			key := [2]int{tr.RxGroup, tr.RxElem}
			if seen[key] {
				t.Fatalf("receiver %v hit twice", key)
			}
			seen[key] = true
		}
	}
	if len(seen) != 36 {
		t.Fatalf("%d receivers hit, want 36", len(seen))
	}
}
