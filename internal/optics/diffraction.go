package optics

import (
	"fmt"
	"math"
)

// Diffraction feasibility. The paraxial model is exact geometry; real
// lenslets are diffraction-limited, and the paper's remark that
// "technological considerations prefer p ≈ q" has a physical root: the
// focused spot must fit inside a receiver cell, and the spot size grows
// with the lens f-number. This file adds that check.

// DefaultWavelength is a typical VCSEL wavelength (850 nm).
const DefaultWavelength = 850e-9

// Diffraction summarizes the diffraction analysis of one bench.
type Diffraction struct {
	// SpotDiameter1 is the Airy-disk diameter (2.44·λ·f/#) of a stage-1
	// lens focused on the L2 plane, in metres.
	SpotDiameter1 float64
	// SpotDiameter2 is the stage-2 spot on the receiver plane.
	SpotDiameter2 float64
	// LensAperture1 and LensAperture2 are the lenslet diameters.
	LensAperture1, LensAperture2 float64
	// FNumber1 and FNumber2 are the working f-numbers (image distance
	// over aperture).
	FNumber1, FNumber2 float64
	// Feasible reports that the stage-2 spot fits in a receiver cell and
	// the stage-1 spot fits within a single L2 lenslet.
	Feasible bool
}

// Diffract evaluates the bench at the given wavelength.
func Diffract(b *Bench, wavelength float64) (Diffraction, error) {
	if wavelength <= 0 {
		return Diffraction{}, fmt.Errorf("optics: wavelength must be positive")
	}
	a := b.Aperture()
	ap1 := a / float64(b.P)
	ap2 := a / float64(b.Q)
	f1 := b.Z12 / ap1 // working f-number of stage 1 (image side)
	f2 := b.Z23 / ap2
	spot1 := 2.44 * wavelength * f1
	spot2 := 2.44 * wavelength * f2
	d := Diffraction{
		SpotDiameter1: spot1,
		SpotDiameter2: spot2,
		LensAperture1: ap1,
		LensAperture2: ap2,
		FNumber1:      f1,
		FNumber2:      f2,
	}
	// Stage-1 spots land on L2 lens centres and must stay inside one
	// lenslet; stage-2 spots land on receiver centres and must stay
	// inside one pitch cell.
	d.Feasible = spot1 < ap2 && spot2 < b.Pitch
	return d, nil
}

// MaxFeasibleDiameterEven returns the largest even D such that the
// balanced OTIS layout of B(d, D) passes the diffraction check at the
// given pitch and wavelength — the physical scaling limit of the
// architecture. Returns 0 if even D = 2 already fails.
func MaxFeasibleDiameterEven(d int, pitch, wavelength float64) int {
	best := 0
	for D := 2; D <= 30; D += 2 {
		p := intPow(d, D/2)
		q := p * d
		// Guard against absurd array sizes (aperture > 10 m).
		if float64(p*q)*pitch > 10 {
			break
		}
		b, err := NewBench(p, q, pitch)
		if err != nil {
			break
		}
		diff, err := Diffract(b, wavelength)
		if err != nil || !diff.Feasible {
			break
		}
		best = D
	}
	return best
}

func intPow(d, k int) int {
	n := 1
	for i := 0; i < k; i++ {
		next := n * d
		if next/d != n {
			panic("optics: d^k overflows int")
		}
		n = next
	}
	return n
}

// RayleighRange returns the Rayleigh range of a Gaussian beam waist equal
// to half the pitch — the free-space distance over which an unguided beam
// stays collimated; OTIS works precisely because the lenslets re-image
// long before this matters.
func RayleighRange(pitch, wavelength float64) float64 {
	w0 := pitch / 2
	return math.Pi * w0 * w0 / wavelength
}
