package optics

import (
	"strings"
	"testing"
)

func TestWriteSVG(t *testing.T) {
	b, _ := NewBench(4, 8, DefaultPitch)
	var sb strings.Builder
	if err := b.WriteSVG(&sb, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "OTIS(4,8)"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// All 32 beams drawn at stride 1.
	if got := strings.Count(out, "polyline"); got != 32 {
		t.Errorf("%d beams drawn, want 32", got)
	}
}

func TestWriteSVGNoBeams(t *testing.T) {
	b, _ := NewBench(4, 8, DefaultPitch)
	var sb strings.Builder
	if err := b.WriteSVG(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "polyline") {
		t.Error("beams drawn despite stride 0")
	}
}

func TestWriteSVGStride(t *testing.T) {
	b, _ := NewBench(4, 8, DefaultPitch)
	var sb strings.Builder
	if err := b.WriteSVG(&sb, 4); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "polyline"); got != 8 {
		t.Errorf("%d beams at stride 4, want 8", got)
	}
}
