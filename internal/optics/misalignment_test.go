package optics

import (
	"math"
	"testing"
)

func TestAlignedTraceMatchesNominal(t *testing.T) {
	b, _ := NewBench(4, 8, DefaultPitch)
	for i := 0; i < b.P; i++ {
		for j := 0; j < b.Q; j++ {
			rxI, rxJ, ok := b.MisalignedTrace(i, j, 0, 0)
			if !ok {
				t.Fatalf("aligned beam (%d,%d) lost", i, j)
			}
			tr := b.Trace(i, j)
			if rxI != tr.RxI || rxJ != tr.RxJ {
				t.Fatalf("aligned misaligned-trace disagrees with Trace at (%d,%d)", i, j)
			}
		}
	}
	if b.MisalignmentErrors(0, 0) != 0 {
		t.Error("aligned bench reports errors")
	}
}

func TestReceiverShiftTolerance(t *testing.T) {
	b, _ := NewBench(8, 16, DefaultPitch)
	tol := b.ReceiverShiftTolerance()
	// Beams land on cell centres, so the analytic tolerance is half a
	// pitch (within the search step).
	if math.Abs(tol-b.Pitch/2) > b.Pitch/50 {
		t.Errorf("receiver tolerance %.1f µm, want ~%.1f µm", tol*1e6, b.Pitch/2*1e6)
	}
	// Beyond the tolerance, errors appear.
	if b.MisalignmentErrors(0, tol+b.Pitch/10) == 0 {
		t.Error("no errors beyond tolerance")
	}
}

func TestLens2ShiftTolerance(t *testing.T) {
	b, _ := NewBench(8, 16, DefaultPitch)
	tol := b.Lens2ShiftTolerance()
	if tol <= 0 {
		t.Fatal("zero L2 tolerance — bench unbuildable")
	}
	if b.MisalignmentErrors(tol, 0) != 0 {
		t.Error("errors within reported tolerance")
	}
	if b.ToleranceReport() == "" {
		t.Error("empty report")
	}
}

func TestGrossMisalignmentLosesBeams(t *testing.T) {
	b, _ := NewBench(4, 8, DefaultPitch)
	// Shift the receiver plane by many pitches: every beam lands wrong
	// (or off the array).
	if errs := b.MisalignmentErrors(0, 10*b.Pitch); errs != b.P*b.Q {
		t.Errorf("gross shift: %d errors, want all %d", errs, b.P*b.Q)
	}
}
