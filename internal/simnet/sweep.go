package simnet

import (
	"fmt"

	"repro/internal/digraph"
)

// Load–latency characterization: the classical throughput experiment run
// on the networks the paper lays out. Uniform Poisson traffic is offered
// at increasing rates; mean latency rises from the zero-load value (mean
// distance × hop latency) and diverges at the saturation throughput.

// SweepPoint is one offered-load measurement.
type SweepPoint struct {
	// Rate is the offered load in packets per cycle per network.
	Rate float64
	// MeanLatency is the mean delivery latency in cycles.
	MeanLatency float64
	// MeanWait is the mean queueing delay (latency minus wire time).
	MeanWait float64
	// Delivered and Dropped count packet outcomes.
	Delivered, Dropped int
	// Saturated reports that the run hit its cycle budget before
	// delivering everything — the offered load exceeds capacity.
	Saturated bool
}

// String renders one sweep row.
func (p SweepPoint) String() string {
	sat := ""
	if p.Saturated {
		sat = "  SATURATED"
	}
	return fmt.Sprintf("rate %.3f: latency %.2f (wait %.2f), delivered %d%s",
		p.Rate, p.MeanLatency, p.MeanWait, p.Delivered, sat)
}

// LoadSweep offers `packets` Poisson-arrival packets at each rate and
// measures latency. The cycle budget is generous but finite so saturated
// runs terminate and are flagged. All points run on one Network, so the
// compiled router and the scratch arena are built once and reused.
func LoadSweep(g *digraph.Digraph, router Router, rates []float64, packets int, seed int64) ([]SweepPoint, error) {
	nw, err := New(g, router, DefaultConfig())
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, 0, len(rates))
	for _, rate := range rates {
		if rate <= 0 || rate > 1 {
			return nil, fmt.Errorf("simnet: rate %v out of (0, 1]", rate)
		}
		// Budget: the ideal drain time plus ample slack; saturated loads
		// blow through it and get flagged rather than running forever.
		budget := int(float64(packets)/rate)*4 + 64*g.N()
		res := nw.run(PoissonArrivals(g.N(), packets, rate, seed), nw.baseTuning(budget), nw.rec)
		pt := SweepPoint{
			Rate:      rate,
			Delivered: res.Delivered,
			Dropped:   res.Dropped,
			Saturated: res.Delivered+res.Dropped+res.Shed < packets,
		}
		if res.Delivered > 0 {
			pt.MeanLatency = res.MeanLatency
			pt.MeanWait = float64(res.TotalWait) / float64(res.Delivered)
		}
		points = append(points, pt)
	}
	return points, nil
}

// ZeroLoadLatency returns the analytic zero-load latency: mean distance ×
// hop latency. ok is false when the digraph is not strongly connected.
func ZeroLoadLatency(g *digraph.Digraph, hopLatency int) (float64, bool) {
	mean, ok := g.MeanDistance()
	if !ok {
		return 0, false
	}
	return mean * float64(hopLatency), true
}
