package simnet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The prefix-sharded cycle engine. shardRun partitions the nodes into S
// contiguous label ranges (word-prefix shards: de Bruijn congruence
// labels sharing their high-order digits are contiguous integers) and
// executes the lean arc-major cycle kernel on every shard concurrently.
// Each shard exclusively owns the queue, pipe and activity-bitmap state
// of its nodes' out-arcs and every packet currently buffered there, so
// the per-cycle phases run without locks; the only cross-shard traffic
// is the hop handoff, carried in per-cycle batched outboxes (one append
// per crossing packet, drained by the receiver next phase) rather than
// shared queues. De Bruijn's left-shift arc structure keeps that cut
// statically enumerable and cheap: the out-arcs of a contiguous label
// range land in at most d+1 other ranges.
//
// A cycle is two barrier-separated phases:
//
//	A (arrive):  sweep own pipes; deliver in place; collect packets
//	             that must forward into outbox[destination shard],
//	             tagged with their arrival arc.
//	B (enqueue + depart): inject own released packets, drain inboxes
//	             in sender-shard order, route at the arrival node and
//	             push; then pop one packet per non-empty own queue
//	             into its pipe.
//
// The engine reproduces the sequential engine bit for bit, for every
// shard and worker count (TestShardRunMatchesSequential pins it):
//
//   - Queue push order. The sequential kernel pushes injections first
//     (global (Release, index) order) and then arrivals in ascending
//     arrival-arc order. Per-shard order slices are subsequences of the
//     global order; inbox concatenation in sender order is ascending in
//     arrival arc because sender arc ranges are disjoint and ascending.
//     Pushes to any single queue happen only on its owning shard, so
//     every queue sees exactly the sequential push sequence.
//   - MaxQueue / HotNode. Each lane records the first observation of
//     its local maximum depth keyed by the sequential processing order
//     (cycle, phase injection<arrival, global order position | arrival
//     arc); the merge takes the deepest lane, ties to the smallest key
//     — exactly the sequential first-strictly-greater update rule.
//   - PeakResident. Within a cycle the sequential engine injects before
//     any packet leaves, so its running peak is resident + injected;
//     the barrier-B reduction computes exactly that from per-lane
//     injection/leave counts regardless of physical phase order.
//
// Workers coordinate through a spin barrier (sense-reversing epoch, one
// atomic add per worker per phase); the last arriver runs the cycle
// reduction. min(S, GOMAXPROCS) workers each own a static stride of
// shards, so the schedule — and therefore the result — is independent
// of how the Go scheduler interleaves them.

// shardLane is the per-shard execution state. Lanes are padded apart so
// the per-cycle counters of neighbouring shards do not share a cache
// line.
type shardLane struct {
	nodeLo, nodeHi int32 // owned nodes [nodeLo, nodeHi)
	arcLo, arcHi   int32 // owned arcs [arcLo, arcHi) = arcBase[nodeLo:nodeHi]

	// Local activity bitmaps, bit b ⇔ arc arcLo+b (a shared global
	// bitmap would race on the words straddling shard boundaries).
	qBits, aBits []uint64

	// Per-cycle handoff outboxes: outPkt[t] holds the packets crossing
	// into shard t this cycle, outArc[t] their arrival arcs (the arc
	// they traversed — its head is the arrival node). Reset by the owner
	// at the start of phase A, read by shard t in phase B.
	outPkt, outArc [][]int32

	// order holds this shard's subsequence of the global injection
	// order, as positions into the engine's order slice; cursor walks it.
	order  []int32
	cursor int

	// Run accumulators, merged after the workers join.
	delivered, dropped int
	cycles             int // last delivery cycle seen by this lane
	maxQueue           int
	hotNode            int
	hotCycle           int32 // sequential-order key of the maxQueue observation
	hotPhase           int32 // 0: injection, 1: arrival
	hotKey             int32 // global order position (injection) or arrival arc

	// Per-cycle reduction inputs: packets entering the network's
	// buffers, leaving them (delivered or dropped mid-flight), and
	// removed from the remaining count (leavers plus injection-time
	// no-route drops). Reset by the owner each phase A, summed by the
	// barrier-B coordinator.
	injected, left, removed int32

	_ [8]int64 // pad lanes onto separate cache lines
}

// shardEngine is the pooled state of one sharded run. The global slabs
// are the same arena storage the sequential kernel uses; every entry is
// owned by exactly one lane at any instant (queues and pipes by the arc
// owner, packet metadata by the shard currently buffering the packet),
// and the barriers transfer ownership between phases.
type shardEngine struct {
	nw *Network
	S  int

	segCap int
	hopLat int32

	// Router devirtualization, as in the sequential kernel.
	tArcs []int8
	tN    int
	shift *DeBruijnRouter

	// Balanced contiguous partition: the first r shards own q+1 nodes,
	// the rest q; splitAt = r·(q+1) is the first node of the q-sized
	// tail.
	q, r, splitAt int

	pkts                []Packet
	order               []int32
	dst, rel, del, hops []int32
	qHead, qTail, qLen  []int32
	pNext               []int32
	pipePkt, pipeReady  []int32
	pipeLen             []int32

	lanes []shardLane

	maxCycles int

	// Spin barrier: arrive counts workers into the rendezvous, epoch
	// releases them. The last arriver (the coordinator) runs the cycle
	// reduction, then resets arrive and bumps epoch; the atomic epoch
	// publication orders its plain writes below before every other
	// worker's next read.
	arrive atomic.Int32
	epoch  atomic.Uint32

	// Cycle globals: written only by the barrier coordinator between
	// the last arrival and the epoch bump, read by all workers after
	// release.
	remaining int
	resident  int
	peak      int
}

// shardWorkers is the worker-pool size a shard count implies: one
// worker per shard, capped at GOMAXPROCS — goroutines beyond the
// runnable-thread count would only add scheduling overhead to the spin
// barriers.
func shardWorkers(shards int) int {
	if p := runtime.GOMAXPROCS(0); shards > p {
		return p
	}
	return shards
}

// newShardEngine builds the lane partition for S shards of nw's graph.
func newShardEngine(nw *Network, S int) *shardEngine {
	n := nw.g.N()
	guardIndexInt32(n, "nodes")
	e := &shardEngine{nw: nw, S: S}
	e.q, e.r = n/S, n%S
	e.splitAt = e.r * (e.q + 1)
	e.lanes = make([]shardLane, S)
	lo := 0
	for s := 0; s < S; s++ {
		size := e.q
		if s < e.r {
			size++
		}
		la := &e.lanes[s]
		la.nodeLo, la.nodeHi = int32(lo), int32(lo+size)
		la.arcLo, la.arcHi = nw.arcBase[lo], nw.arcBase[lo+size]
		words := (int(la.arcHi-la.arcLo) + 63) / 64
		la.qBits = make([]uint64, words)
		la.aBits = make([]uint64, words)
		la.outPkt = make([][]int32, S)
		la.outArc = make([][]int32, S)
		lo += size
	}
	return e
}

// shardOf maps a node to its owning shard under the balanced contiguous
// partition.
//
//lint:hotpath
func (e *shardEngine) shardOf(v int32) int {
	iv := int(v)
	if iv < e.splitAt {
		return iv / (e.q + 1)
	}
	return e.r + (iv-e.splitAt)/e.q
}

// getShardEngine checks a shard engine out of the pool, reset for a new
// run (a previous truncated run may have left bitmaps and outboxes
// populated). Engines are per-Network, so only the shard count can
// invalidate a pooled one.
func (nw *Network) getShardEngine(S int) *shardEngine {
	e, ok := nw.shardScratch.Get().(*shardEngine)
	if !ok || e.S != S {
		e = newShardEngine(nw, S)
	}
	for s := range e.lanes {
		la := &e.lanes[s]
		clearBits(la.qBits)
		clearBits(la.aBits)
		for t := range la.outPkt {
			la.outPkt[t] = la.outPkt[t][:0]
			la.outArc[t] = la.outArc[t][:0]
		}
		la.order = la.order[:0]
		la.cursor = 0
		la.delivered, la.dropped, la.cycles = 0, 0, 0
		la.maxQueue, la.hotNode = 0, 0
		la.hotCycle, la.hotPhase, la.hotKey = 0, 0, 0
		la.injected, la.left, la.removed = 0, 0, 0
	}
	e.arrive.Store(0)
	e.epoch.Store(0)
	e.remaining, e.resident, e.peak = 0, 0, 0
	return e
}

// nextArc routes with the devirtualized built-in router, falling back
// to interface dispatch for custom routers (routers are immutable and
// safe to share across lanes).
//
//lint:hotpath
func (e *shardEngine) nextArc(at, dst int) int {
	if e.tArcs != nil {
		return int(e.tArcs[at*e.tN+dst])
	}
	if e.shift != nil {
		return e.shift.NextArc(at, dst)
	}
	return e.nw.router.NextArc(at, dst)
}

// rendezvous is the spin barrier. The last arriver optionally runs the
// cycle reduction before releasing the epoch; everyone else yields
// until the epoch moves (Gosched keeps single-P runs live).
//
//lint:hotpath
func (e *shardEngine) rendezvous(workers int, reduce bool) {
	ep := e.epoch.Load()
	//lint:ignore slabindex workers <= shards <= node count, guarded at engine build
	if e.arrive.Add(1) == int32(workers) {
		if reduce {
			e.reduceCycle()
		}
		e.arrive.Store(0)
		e.epoch.Store(ep + 1)
		return
	}
	for e.epoch.Load() == ep {
		runtime.Gosched()
	}
}

// reduceCycle folds the lanes' per-cycle counters into the run globals,
// replaying the sequential engine's in-cycle order analytically:
// injections precede every leave within a cycle, so the running peak is
// resident + injected.
//
//lint:hotpath
func (e *shardEngine) reduceCycle() {
	inj, left, removed := 0, 0, 0
	for s := range e.lanes {
		la := &e.lanes[s]
		inj += int(la.injected)
		left += int(la.left)
		removed += int(la.removed)
	}
	peakCand := e.resident + inj
	if peakCand > e.peak {
		e.peak = peakCand
	}
	e.resident = peakCand - left
	e.remaining -= removed
}

// worker runs shards w, w+workers, w+2·workers, … through the cycle
// loop. Every worker computes the identical continue condition from the
// reduction-published remaining count, so all of them execute the same
// number of rendezvous.
//
//lint:hotpath
func (e *shardEngine) worker(w, workers int) {
	for cycle := 0; e.remaining > 0 && cycle <= e.maxCycles; cycle++ {
		//lint:ignore slabindex cycle ≤ maxCycles, dominated by shardRun's guardIndexInt32
		cycle32 := int32(cycle)
		for s := w; s < e.S; s += workers {
			e.phaseArrive(s, cycle, cycle32)
		}
		e.rendezvous(workers, false)
		for s := w; s < e.S; s += workers {
			e.phaseEnqueue(s, cycle32)
			e.phaseDepart(s, cycle32)
		}
		e.rendezvous(workers, true)
	}
}

// phaseArrive sweeps shard s's in-flight bitmap: packets whose wire
// time completes are delivered in place or appended to the destination
// shard's outbox with their arrival arc. Mirrors the lean kernel's
// pass 1.
//
//lint:hotpath
func (e *shardEngine) phaseArrive(s, cycle int, cycle32 int32) {
	la := &e.lanes[s]
	la.injected, la.left, la.removed = 0, 0, 0
	for t := range la.outPkt {
		la.outPkt[t] = la.outPkt[t][:0]
		la.outArc[t] = la.outArc[t][:0]
	}
	arcHead := e.nw.arcHead
	segCap := e.segCap
	arcLo := int(la.arcLo)
	dst, del, hops := e.dst, e.del, e.hops
	pipePkt, pipeReady, pipeLen := e.pipePkt, e.pipeReady, e.pipeLen
	for w := range la.aBits {
		bits := la.aBits[w]
		for bits != 0 {
			tz := trailingZeros64(bits)
			bits &= bits - 1
			a := arcLo + w<<6 + tz
			base := a * segCap
			cnt := int(pipeLen[a])
			v := arcHead[a]
			keep := 0
			for j := 0; j < cnt; j++ {
				pk := pipePkt[base+j]
				rdy := pipeReady[base+j]
				if rdy > cycle32 {
					pipePkt[base+keep] = pk
					pipeReady[base+keep] = rdy
					keep++
					continue
				}
				p := int(pk)
				if dst[p] == v {
					hops[p]++
					del[p] = cycle32
					la.delivered++
					la.left++
					la.removed++
					if cycle > la.cycles {
						la.cycles = cycle
					}
					continue
				}
				t := e.shardOf(v)
				la.outPkt[t] = append(la.outPkt[t], pk)
				//lint:ignore slabindex a < M, dominated by shardRun's guardIndexInt32
				la.outArc[t] = append(la.outArc[t], int32(a))
			}
			//lint:ignore slabindex keep ≤ segCap, a compacted prefix of an int32-counted segment
			pipeLen[a] = int32(keep)
			if keep == 0 {
				la.aBits[w] &^= 1 << uint(tz)
			}
		}
	}
}

// push routes nothing — the caller has the arc — it links pk onto the
// queue of out-arc arc of node at and maintains the lane's queued
// bitmap and MaxQueue observation. phase/key are the sequential-order
// tie-break key of the observation (see the package comment).
//
//lint:hotpath
func (e *shardEngine) push(la *shardLane, at, arc int, pk, cycle32, phase, key int32) {
	//lint:ignore slabindex arc < maxDeg ≤ M, dominated by shardRun's guardIndexInt32
	flat := e.nw.arcBase[at] + int32(arc)
	if e.qLen[flat] == 0 {
		e.qHead[flat] = pk
	} else {
		e.pNext[e.qTail[flat]] = pk
	}
	e.qTail[flat] = pk
	e.qLen[flat]++
	b := int(flat - la.arcLo)
	la.qBits[b>>6] |= 1 << (uint(b) & 63)
	if depth := int(e.qLen[flat]); depth > la.maxQueue {
		la.maxQueue = depth
		la.hotNode = at
		la.hotCycle, la.hotPhase, la.hotKey = cycle32, phase, key
	}
}

// phaseEnqueue injects shard s's released packets (its subsequence of
// the global (Release, index) order), then drains its inboxes in
// sender-shard order — sender arc ranges are disjoint and ascending, so
// the concatenation replays the sequential kernel's ascending-
// arrival-arc push order — routing each packet at its arrival node.
//
//lint:hotpath
func (e *shardEngine) phaseEnqueue(s int, cycle32 int32) {
	la := &e.lanes[s]
	for la.cursor < len(la.order) {
		pos := la.order[la.cursor]
		pk := e.order[pos]
		i := int(pk)
		if e.rel[i] > cycle32 {
			break
		}
		la.cursor++
		at := e.pkts[i].Src
		arc := e.nextArc(at, int(e.dst[i]))
		if arc < 0 {
			// Only a custom router reaches this: table/shift injections
			// were route-prechecked at setup. Matches the sequential
			// injection-time drop (never entered, so not a leave).
			la.dropped++
			la.removed++
			continue
		}
		e.push(la, at, arc, pk, cycle32, 0, pos)
		la.injected++
	}
	arcHead := e.nw.arcHead
	for from := range e.lanes {
		inPkt := e.lanes[from].outPkt[s]
		inArc := e.lanes[from].outArc[s]
		for k, pk := range inPkt {
			p := int(pk)
			a := inArc[k]
			v := int(arcHead[a])
			arc := e.nextArc(v, int(e.dst[p]))
			e.hops[p]++
			if arc < 0 {
				la.dropped++
				la.left++
				la.removed++
				continue
			}
			e.push(la, v, arc, pk, cycle32, 1, a)
		}
	}
}

// phaseDepart pops one packet per non-empty own queue into its pipe —
// the lean kernel's unconditional departure sweep (sharded queues are
// unbounded, so every link has credit).
//
//lint:hotpath
func (e *shardEngine) phaseDepart(s int, cycle32 int32) {
	la := &e.lanes[s]
	arcLo := int(la.arcLo)
	segCap := e.segCap
	for w := range la.qBits {
		bits := la.qBits[w]
		for bits != 0 {
			tz := trailingZeros64(bits)
			bits &= bits - 1
			a := arcLo + w<<6 + tz
			pk := e.qHead[a]
			e.qLen[a]--
			if e.qLen[a] == 0 {
				la.qBits[w] &^= 1 << uint(tz)
			} else {
				e.qHead[a] = e.pNext[pk]
			}
			slot := a*segCap + int(e.pipeLen[a])
			e.pipePkt[slot] = pk
			e.pipeReady[slot] = cycle32 + e.hopLat
			e.pipeLen[a]++
			la.aBits[w] |= 1 << uint(tz)
		}
	}
}

// shardRun is the sharded counterpart of run for the lean configuration
// (unbounded queues, no recorder, no admission): identical semantics,
// S-way concurrent execution. workers bounds the goroutines spawned;
// the result does not depend on it.
func (nw *Network) shardRun(packets []Packet, tun runTuning, shards, workers int) Result {
	guardIndexInt32(len(packets), "packets")
	pkts := make([]Packet, len(packets))
	copy(pkts, packets)

	n := nw.g.N()
	m := int(nw.arcBase[n])
	ar, _ := nw.getArena()
	defer nw.putArena(ar)

	maxCycles := tun.budget
	if maxCycles == 0 {
		maxCycles = nw.cfg.MaxCycles
	}
	if maxCycles == 0 {
		maxCycles = nw.defaultBudget(len(pkts), nw.cfg.HopLatency)
	}
	guardIndexInt32(maxCycles+nw.cfg.HopLatency+2, "cycles")

	segCap := nw.cfg.HopLatency
	pipePkt, pipeReady, pipeLen := ar.pipeSegments(m, segCap)
	dst, rel, del, hops, _ := ar.packetSlabs(len(pkts))
	qHead, qTail, qLen, pNext := ar.queueLinks(m, len(pkts))

	var tArcs []int8
	tN := 0
	if tr, ok := nw.router.(*TableRouter); ok {
		tArcs, tN = tr.arcs, tr.n
	}
	shift := nw.shift

	res := Result{}
	remaining := 0
	horizon := int32(maxCycles) + 1
	order := ar.order[:0]
	for i := range pkts {
		pkts[i].Delivered = -1
		pkts[i].Hops = 0
		dst[i] = int32(pkts[i].Dst)
		del[i] = -1
		hops[i] = 0
		if r := pkts[i].Release; r > maxCycles {
			rel[i] = horizon
		} else {
			rel[i] = int32(r)
		}
		if pkts[i].Src == pkts[i].Dst {
			pkts[i].Delivered = pkts[i].Release
			res.Delivered++
			continue
		}
		var arc int
		switch {
		case tArcs != nil:
			arc = int(tArcs[pkts[i].Src*tN+pkts[i].Dst])
		case shift != nil:
			arc = shift.NextArc(pkts[i].Src, pkts[i].Dst)
		default:
			arc = nw.router.NextArc(pkts[i].Src, pkts[i].Dst)
		}
		if arc < 0 {
			res.Dropped++
			continue
		}
		order = append(order, int32(i))
		remaining++
	}
	sortByRelease(order, pkts)
	ar.order = order

	e := nw.getShardEngine(shards)
	e.segCap = segCap
	e.hopLat = int32(nw.cfg.HopLatency)
	e.tArcs, e.tN, e.shift = tArcs, tN, shift
	e.pkts, e.order = pkts, order
	e.dst, e.rel, e.del, e.hops = dst, rel, del, hops
	e.qHead, e.qTail, e.qLen, e.pNext = qHead, qTail, qLen, pNext
	e.pipePkt, e.pipeReady, e.pipeLen = pipePkt, pipeReady, pipeLen
	e.maxCycles = maxCycles
	e.remaining = remaining

	// Partition the injection order: each lane walks its own
	// subsequence of positions with a private cursor.
	for pos, i32 := range order {
		s := e.shardOf(int32(pkts[i32].Src))
		e.lanes[s].order = append(e.lanes[s].order, int32(pos))
	}

	if workers > shards {
		workers = shards
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		e.worker(0, 1)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				e.worker(id, workers)
			}(w)
		}
		wg.Wait()
	}

	// Merge the lanes into the Result.
	res.PeakResident = e.peak
	best := -1
	for s := range e.lanes {
		la := &e.lanes[s]
		res.Delivered += la.delivered
		res.Dropped += la.dropped
		if la.cycles > res.Cycles {
			res.Cycles = la.cycles
		}
		if la.maxQueue == 0 {
			continue
		}
		if best < 0 || laneHotter(la, &e.lanes[best]) {
			best = s
		}
	}
	if best >= 0 {
		res.MaxQueue = e.lanes[best].maxQueue
		res.HotNode = e.lanes[best].hotNode
	}
	// Release the engine before the pooled arena: the engine's slab
	// references die with it being reset on next checkout.
	nw.shardScratch.Put(e)

	for _, i32 := range order {
		i := int(i32)
		pkts[i].Delivered = int(del[i])
		pkts[i].Hops = int(hops[i])
	}
	latencySum := 0
	for i := range pkts {
		p := pkts[i]
		if p.Delivered < 0 {
			continue
		}
		res.TotalHops += p.Hops
		if p.Hops > res.MaxHops {
			res.MaxHops = p.Hops
		}
		latencySum += p.Delivered - p.Release
		res.TotalWait += (p.Delivered - p.Release) - p.Hops*nw.cfg.HopLatency
	}
	if res.Delivered > 0 {
		res.MeanLatency = float64(latencySum) / float64(res.Delivered)
		res.MeanHops = float64(res.TotalHops) / float64(res.Delivered)
	}
	res.Packets = pkts
	return res
}

// laneHotter reports whether a's MaxQueue observation beats b's: deeper
// wins, equal depth ties to the earlier sequential-order key — the
// lane whose observation the sequential engine would have made first.
func laneHotter(a, b *shardLane) bool {
	if a.maxQueue != b.maxQueue {
		return a.maxQueue > b.maxQueue
	}
	if a.hotCycle != b.hotCycle {
		return a.hotCycle < b.hotCycle
	}
	if a.hotPhase != b.hotPhase {
		return a.hotPhase < b.hotPhase
	}
	return a.hotKey < b.hotKey
}
