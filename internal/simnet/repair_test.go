package simnet

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/digraph"
)

// TableRouter.Repair mirrors debruijn.RepairSlab on the arc-index slab;
// its contract is the same bit-identity against a from-scratch build on
// the residual digraph.

// residualDigraph rebuilds g minus the dead arcs, preserving adjacency
// order of the survivors.
func residualDigraph(g *digraph.Digraph, dead []Arc) *digraph.Digraph {
	mask := map[Arc]bool{}
	for _, a := range dead {
		mask[a] = true
	}
	h := digraph.New(g.N())
	for u := 0; u < g.N(); u++ {
		for k, v := range g.Out(u) {
			if mask[Arc{Tail: u, Index: k}] {
				continue
			}
			h.AddArc(u, v)
		}
	}
	return h
}

// residualRouterEquals checks the repaired slab against NewTableRouter
// on the residual digraph. The residual keeps surviving arcs at shifted
// adjacency positions, so the comparison translates: for every pair the
// two routers must pick the same physical arc (same flat position among
// survivors), not merely the same head.
func repairedEqualsScratch(t *testing.T, g *digraph.Digraph, got *TableRouter, dead []Arc) {
	t.Helper()
	residual := residualDigraph(g, dead)
	want := NewTableRouter(residual)
	mask := map[Arc]bool{}
	for _, a := range dead {
		mask[a] = true
	}
	n := g.N()
	// shift[u][k] maps g's arc position to residual's, -1 for dead arcs.
	for u := 0; u < n; u++ {
		shift := make([]int, g.OutDegree(u))
		live := 0
		for k := range g.Out(u) {
			if mask[Arc{Tail: u, Index: k}] {
				shift[k] = -1
				continue
			}
			shift[k] = live
			live++
		}
		for dst := 0; dst < n; dst++ {
			gotArc := got.NextArc(u, dst)
			wantArc := want.NextArc(u, dst)
			switch {
			case gotArc < 0:
				if wantArc >= 0 {
					t.Fatalf("dead %v: (%d,%d) repaired says unreachable, scratch routes arc %d", dead, u, dst, wantArc)
				}
			case shift[gotArc] != wantArc:
				t.Fatalf("dead %v: (%d,%d) repaired arc %d (residual pos %d) != scratch arc %d", dead, u, dst, gotArc, shift[gotArc], wantArc)
			}
		}
	}
}

// TestTableRouterRepairEverySingleArc: every single-arc fault of every
// catalog graph repairs to exactly the from-scratch residual router.
func TestTableRouterRepairEverySingleArc(t *testing.T) {
	for name, g := range catalogGraphs(t) {
		base := NewTableRouter(g)
		for u := 0; u < g.N(); u++ {
			for k := 0; k < g.OutDegree(u); k++ {
				dead := []Arc{{Tail: u, Index: k}}
				got, err := base.Repair(g, dead)
				if err != nil {
					t.Fatalf("%s arc (%d#%d): %v", name, u, k, err)
				}
				repairedEqualsScratch(t, g, got, dead)
			}
		}
	}
}

// TestTableRouterRepairRandomFaultSets: seeded multi-arc fault sets.
func TestTableRouterRepairRandomFaultSets(t *testing.T) {
	for name, g := range catalogGraphs(t) {
		rng := rand.New(rand.NewSource(11))
		base := NewTableRouter(g)
		for trial := 0; trial < 20; trial++ {
			seen := map[Arc]bool{}
			var dead []Arc
			for len(dead) < 1+rng.Intn(4) {
				u := rng.Intn(g.N())
				if g.OutDegree(u) == 0 {
					continue
				}
				a := Arc{Tail: u, Index: rng.Intn(g.OutDegree(u))}
				if seen[a] {
					continue
				}
				seen[a] = true
				dead = append(dead, a)
			}
			got, err := base.Repair(g, dead)
			if err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			repairedEqualsScratch(t, g, got, dead)
		}
	}
}

// TestTableRouterRepairIdentityAndErrors: the empty dead set reproduces
// the base slab in fresh storage; bad inputs are rejected.
func TestTableRouterRepairIdentityAndErrors(t *testing.T) {
	g := catalogGraphs(t)["B(2,4)"]
	base := NewTableRouter(g)
	same, err := base.Repair(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(same.arcs, base.arcs) {
		t.Fatal("empty dead set did not reproduce the base router")
	}
	if &same.arcs[0] == &base.arcs[0] {
		t.Fatal("Repair must not alias the base router's storage")
	}
	var nilRouter *TableRouter
	if _, err := nilRouter.Repair(g, nil); err == nil {
		t.Fatal("nil receiver accepted")
	}
	other := NewTableRouter(catalogGraphs(t)["B(3,3)"])
	if _, err := other.Repair(g, nil); err == nil {
		t.Fatal("mismatched router accepted")
	}
	for _, dead := range [][]Arc{
		{{Tail: -1, Index: 0}},
		{{Tail: g.N(), Index: 0}},
		{{Tail: 0, Index: -1}},
		{{Tail: 0, Index: g.OutDegree(0)}},
	} {
		if _, err := base.Repair(g, dead); err == nil {
			t.Fatalf("out-of-range dead arc %v accepted", dead)
		}
	}
}
