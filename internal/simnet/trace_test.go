package simnet

import (
	"strings"
	"testing"

	"repro/internal/debruijn"
)

func TestTracedRunMatchesPlainRun(t *testing.T) {
	g := debruijn.DeBruijn(2, 5)
	nw, _ := New(g, NewTableRouter(g), DefaultConfig())
	pkts := UniformRandom(g.N(), 100, 101)
	plain := nw.Run(pkts)
	traced, events := nw.TracedRun(pkts)
	if plain.Delivered != traced.Delivered || plain.TotalHops != traced.TotalHops {
		t.Fatalf("traced run diverged: %v vs %v", plain, traced)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	if err := VerifyTrace(g, pkts, events); err != nil {
		t.Fatal(err)
	}
}

func TestTraceEventCounts(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	nw, _ := New(g, NewDeBruijnRouter(2, 4), DefaultConfig())
	pkts := []Packet{{ID: 0, Src: 1, Dst: 9}}
	res, events := nw.TracedRun(pkts)
	if res.Delivered != 1 {
		t.Fatal("undelivered")
	}
	hops := res.Packets[0].Hops
	// inject + (depart+arrive)·hops + deliver.
	if want := 2 + 2*hops; len(events) != want {
		t.Fatalf("%d events, want %d: %v", len(events), want, events)
	}
	if events[0].Kind != EventInject || events[len(events)-1].Kind != EventDeliver {
		t.Error("trace endpoints wrong")
	}
}

func TestTraceStrings(t *testing.T) {
	e := Event{Cycle: 12, Kind: EventDepart, Packet: 3, Node: 5, Peer: 11}
	if got := e.String(); !strings.Contains(got, "depart") || !strings.Contains(got, "5→11") {
		t.Errorf("event string %q", got)
	}
	e2 := Event{Cycle: 1, Kind: EventInject, Packet: 0, Node: 2, Peer: -1}
	if got := e2.String(); !strings.Contains(got, "@2") {
		t.Errorf("event string %q", got)
	}
	for k := EventInject; k <= EventDeliver; k++ {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestVerifyTraceRejects(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	pkts := []Packet{{ID: 0, Src: 0, Dst: 5}}
	bad := []Event{
		{Kind: EventInject, Packet: 0, Node: 0, Peer: -1},
		{Kind: EventDepart, Packet: 0, Node: 0, Peer: 5}, // 0→5 is not an arc
	}
	if VerifyTrace(g, pkts, bad) == nil {
		t.Error("non-arc depart accepted")
	}
	bad = []Event{
		{Kind: EventInject, Packet: 0, Node: 3, Peer: -1}, // wrong source
	}
	if VerifyTrace(g, pkts, bad) == nil {
		t.Error("wrong injection node accepted")
	}
}
