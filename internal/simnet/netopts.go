package simnet

import (
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

// Network construction behind functional options. Historically a Network
// was assembled positionally — New(g, router, cfg) — which forced every
// caller to build a router by hand (almost always NewTableRouter(g)) and
// to thread a Config struct even for the defaults. NewNetwork folds
// router selection, Config fields and network-wide run defaults into one
// option set:
//
//	nw, err := simnet.NewNetwork(g,
//	        simnet.WithRouting(simnet.ShiftRouting),
//	        simnet.WithHopLatency(2),
//	        simnet.WithShards(8))
//
// Construction-only options (routing mode, router, hop latency, max
// cycles) are netOption values; every RunOption is also a NetworkOption,
// applied as a network-wide default that individual RunOpts calls
// override field by field. Invalid options and combinations fail eagerly
// with *OptionError values, before any table or slab is built. The old
// positional New remains as a thin deprecated wrapper.

// RoutingMode selects how a Network routes packets.
type RoutingMode int

const (
	// AutoRouting (the default) picks per graph: congruence-form de
	// Bruijn digraphs above autoShiftNodes vertices route table-free by
	// left shift, everything else gets the shortest-path table.
	AutoRouting RoutingMode = iota
	// TableRouting always builds the shortest-path next-arc slab
	// (NewTableRouter): n² bytes, any strongly-connected digraph.
	TableRouting
	// ShiftRouting routes by the de Bruijn congruence left-shift rule
	// (DeBruijnRouter): O(D) work and O(D) state, valid only on a
	// congruence-form B(d, D) — anything else fails eagerly.
	ShiftRouting
	// CustomRouting reports a caller-supplied Router (WithRouter). It is
	// not selectable via WithRouting.
	CustomRouting
)

// String renders the mode name.
func (m RoutingMode) String() string {
	switch m {
	case AutoRouting:
		return "auto"
	case TableRouting:
		return "table"
	case ShiftRouting:
		return "shift"
	case CustomRouting:
		return "custom"
	}
	return fmt.Sprintf("RoutingMode(%d)", int(m))
}

// autoShiftNodes is the AutoRouting crossover: at or below this many
// nodes the n² table still fits comfortably in cache-adjacent memory
// (4096² = 16 MB) and its one-load gather is preferred; above it the
// table-free shift router wins on footprint (and is the only option at
// million-node scale, where the table would need n² ≈ 1 TB).
const autoShiftNodes = 4096

// netConfig is the option state of one NewNetwork call.
type netConfig struct {
	cfg       Config
	hopSet    bool
	cyclesSet bool
	cfgSet    bool
	mode      RoutingMode
	modeSet   bool
	router    Router
	routerSet bool
	run       runConfig // network-wide run defaults (RunOptions)
	errs      []error
}

// fail records an eager option error, surfaced by NewNetwork.
func (c *netConfig) fail(option, format string, args ...any) {
	c.errs = append(c.errs, &OptionError{Option: option, Reason: fmt.Sprintf(format, args...)})
}

// NetworkOption configures one NewNetwork call. Both construction-only
// options (WithRouting, WithRouter, WithHopLatency, WithMaxCycles,
// WithConfig) and every RunOption satisfy it; a RunOption passed to
// NewNetwork becomes the network-wide default for that run knob.
type NetworkOption interface {
	applyNetwork(*netConfig)
}

// netOption is a construction-only NetworkOption.
type netOption func(*netConfig)

func (o netOption) applyNetwork(c *netConfig) { o(c) }

// applyNetwork makes every RunOption a NetworkOption: applied at
// construction it seeds the network-wide run defaults, which RunOpts
// merges under any per-run options.
func (o RunOption) applyNetwork(c *netConfig) { o(&c.run) }

// WithRouting selects the routing mode. Only AutoRouting, TableRouting
// and ShiftRouting are selectable (CustomRouting is what WithRouter
// reports); ShiftRouting on a digraph that is not a congruence-form
// de Bruijn B(d, D) fails eagerly at NewNetwork. Duplicate WithRouting
// options conflict, as does combining WithRouting with WithRouter.
func WithRouting(mode RoutingMode) NetworkOption {
	return netOption(func(c *netConfig) {
		if c.modeSet {
			c.fail("WithRouting", "conflicting duplicate option (two routing modes on one network)")
			return
		}
		switch mode {
		case AutoRouting, TableRouting, ShiftRouting:
		case CustomRouting:
			c.fail("WithRouting", "CustomRouting is not selectable; pass the router itself via WithRouter")
			return
		default:
			c.fail("WithRouting", "unknown routing mode %d", int(mode))
			return
		}
		c.mode = mode
		c.modeSet = true
	})
}

// WithRouter supplies the Router directly, bypassing mode selection
// (Routing() reports the mode the router implies: TableRouting for a
// *TableRouter, ShiftRouting for a *DeBruijnRouter, CustomRouting
// otherwise). A nil router and duplicate WithRouter options fail
// eagerly, as does combining WithRouter with WithRouting.
func WithRouter(r Router) NetworkOption {
	return netOption(func(c *netConfig) {
		if c.routerSet {
			c.fail("WithRouter", "conflicting duplicate option (two routers on one network)")
			return
		}
		if r == nil {
			c.fail("WithRouter", "router must not be nil")
			return
		}
		c.router = r
		c.routerSet = true
	})
}

// WithHopLatency sets the wire time of one hop in cycles (Config
// .HopLatency, default 1). Latencies below 1 fail eagerly.
func WithHopLatency(cycles int) NetworkOption {
	return netOption(func(c *netConfig) {
		if c.hopSet {
			c.fail("WithHopLatency", "conflicting duplicate option (two hop latencies on one network)")
			return
		}
		if cycles < 1 {
			c.fail("WithHopLatency", "hop latency must be >= 1 cycle, got %d", cycles)
			return
		}
		c.cfg.HopLatency = cycles
		c.hopSet = true
	})
}

// WithMaxCycles caps every run of the network at the given cycle budget
// (Config.MaxCycles; 0 keeps the generous per-run default). Negative
// budgets fail eagerly.
func WithMaxCycles(cycles int) NetworkOption {
	return netOption(func(c *netConfig) {
		if c.cyclesSet {
			c.fail("WithMaxCycles", "conflicting duplicate option (two cycle budgets on one network)")
			return
		}
		if cycles < 0 {
			c.fail("WithMaxCycles", "cycle budget must be >= 0, got %d", cycles)
			return
		}
		c.cfg.MaxCycles = cycles
		c.cyclesSet = true
	})
}

// WithConfig folds a whole legacy Config into the option set — the
// bridge the deprecated positional constructors ride through. Field
// validation matches New; combining WithConfig with the per-field
// options (WithHopLatency, WithMaxCycles) conflicts.
func WithConfig(cfg Config) NetworkOption {
	return netOption(func(c *netConfig) {
		if c.cfgSet {
			c.fail("WithConfig", "conflicting duplicate option (two configs on one network)")
			return
		}
		if c.hopSet || c.cyclesSet {
			c.fail("WithConfig", "conflicts with WithHopLatency/WithMaxCycles (pick one style)")
			return
		}
		switch {
		case cfg.HopLatency < 1:
			c.fail("WithConfig", "HopLatency must be >= 1, got %d", cfg.HopLatency)
			return
		case cfg.QueueCapacity < 0:
			c.fail("WithConfig", "QueueCapacity must be >= 0, got %d", cfg.QueueCapacity)
			return
		case cfg.HoldBudget < 0:
			c.fail("WithConfig", "HoldBudget must be >= 0, got %d", cfg.HoldBudget)
			return
		}
		c.cfg = cfg
		c.cfgSet = true
	})
}

// routingModeOf reports the mode a concrete router implies.
func routingModeOf(r Router) RoutingMode {
	switch r.(type) {
	case *TableRouter:
		return TableRouting
	case *DeBruijnRouter:
		return ShiftRouting
	}
	return CustomRouting
}

// NewNetwork creates a network simulation over g, configured by
// functional options. With no options it is New(g, NewTableRouter(g),
// DefaultConfig()) for small graphs; large congruence-form de Bruijn
// graphs route table-free (AutoRouting). All validation is eager: the
// first invalid option or combination is returned as an *OptionError
// before any routing table is built.
func NewNetwork(g *digraph.Digraph, opts ...NetworkOption) (*Network, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("simnet: empty digraph")
	}
	nc := netConfig{cfg: DefaultConfig()}
	for _, o := range opts {
		o.applyNetwork(&nc)
	}
	nc.errs = append(nc.errs, nc.run.errs...)
	if nc.routerSet && nc.modeSet {
		nc.fail("WithRouter", "conflicts with WithRouting (the supplied router fixes the routing mode)")
	}
	if nc.run.shardsSet && nc.run.shards > g.N() {
		nc.fail("WithShards", "shard count %d exceeds the %d-node digraph", nc.run.shards, g.N())
	}
	if len(nc.errs) > 0 {
		return nil, nc.errs[0]
	}

	var router Router
	switch {
	case nc.routerSet:
		router = nc.router
	case nc.mode == TableRouting:
		router = NewTableRouter(g)
	case nc.mode == ShiftRouting:
		d, D, ok := debruijn.Recognize(g)
		if !ok {
			return nil, &OptionError{Option: "WithRouting(ShiftRouting)",
				Reason: "digraph is not a congruence-form de Bruijn B(d, D); shift routing reads congruence labels"}
		}
		router = NewDeBruijnRouter(d, D)
	default: // AutoRouting
		if d, D, ok := debruijn.Recognize(g); ok && g.N() > autoShiftNodes {
			router = NewDeBruijnRouter(d, D)
		} else {
			router = NewTableRouter(g)
		}
	}
	nw := newNetwork(g, router, nc.cfg)
	nw.defaults = nc.run
	return nw, nil
}

// Routing reports the network's resolved routing mode: TableRouting or
// ShiftRouting for the built-in routers (however the network was
// constructed — AutoRouting resolves at NewNetwork and is never
// reported), CustomRouting for a caller-supplied Router.
func (nw *Network) Routing() RoutingMode { return routingModeOf(nw.router) }

// Shards reports the network-wide default shard count (WithShards at
// NewNetwork; 1 when unset — the sequential engine).
func (nw *Network) Shards() int {
	if nw.defaults.shardsSet {
		return nw.defaults.shards
	}
	return 1
}
