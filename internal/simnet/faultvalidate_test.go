package simnet

import (
	"strings"
	"testing"

	"repro/internal/debruijn"
)

// FaultPlan validation: a plan bound to a digraph with NewFaultPlanFor
// rejects malformed faults at build time with descriptive errors, and
// Compile reports the same first error. Unbound plans keep deferring to
// Compile.

func TestFaultPlanForValidatesEagerly(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	n := g.N()
	cases := []struct {
		name string
		plan *FaultPlan
		want string
	}{
		{"negative start", NewFaultPlanFor(g).LinkDown(-1, 0, 0, 0), "start cycle -1 < 0"},
		{"negative duration", NewFaultPlanFor(g).LinkDown(0, -5, 0, 0), "duration -5 < 0"},
		{"tail out of range", NewFaultPlanFor(g).LinkDown(0, 0, n, 0), "arc tail 8 out of range"},
		{"negative tail", NewFaultPlanFor(g).LinkDown(0, 0, -1, 0), "arc tail -1 out of range"},
		{"index out of range", NewFaultPlanFor(g).LinkDown(0, 0, 3, 2), "arc (3#2) out of range (node 3 has 2 out-arcs)"},
		{"node out of range", NewFaultPlanFor(g).NodeDown(0, 0, n), "node 8 out of range"},
		{"negative node", NewFaultPlanFor(g).NodeDown(0, 0, -2), "node -2 out of range"},
		{"negative lens", NewFaultPlanFor(g).LensDown(0, 0, -1, nil), "lens -1 < 0"},
		{"lens group arc", NewFaultPlanFor(g).LensDown(0, 0, 3, []Arc{{Tail: 0, Index: 0}, {Tail: 1, Index: 9}}), "(lens 3)"},
	}
	for _, tc := range cases {
		err := tc.plan.Err()
		if err == nil {
			t.Fatalf("%s: Err() = nil", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, cerr := tc.plan.Compile(g); cerr == nil || cerr.Error() != err.Error() {
			t.Fatalf("%s: Compile error %v != Err %v", tc.name, cerr, err)
		}
	}
}

func TestFaultPlanForKeepsFirstError(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	plan := NewFaultPlanFor(g).
		LinkDown(0, 0, -1, 0). // first mistake
		NodeDown(0, 0, 999).   // second mistake
		LinkDown(0, 0, 0, 0)   // valid
	err := plan.Err()
	if err == nil || !strings.Contains(err.Error(), "arc tail -1") {
		t.Fatalf("Err() = %v, want the first mistake (arc tail -1)", err)
	}
	if got := len(plan.Faults()); got != 3 {
		t.Fatalf("plan recorded %d faults, want all 3", got)
	}
}

func TestFaultPlanForValidPlanErrNil(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	plan := NewFaultPlanFor(g).
		LinkDown(0, 10, 1, 1).
		NodeDown(5, 0, 3).
		LensDown(2, 4, 0, []Arc{{Tail: 2, Index: 0}})
	if err := plan.Err(); err != nil {
		t.Fatalf("valid plan Err() = %v", err)
	}
	if _, err := plan.Compile(g); err != nil {
		t.Fatalf("valid plan Compile: %v", err)
	}
}

func TestUnboundFaultPlanValidatesAtCompile(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	plan := NewFaultPlan().LinkDown(0, 0, 99, 0)
	if err := plan.Err(); err != nil {
		t.Fatalf("unbound plan Err() = %v, want nil (validation deferred)", err)
	}
	if _, err := plan.Compile(g); err == nil || !strings.Contains(err.Error(), "arc tail 99") {
		t.Fatalf("Compile = %v, want arc tail 99 error", err)
	}
	// Graph-independent fields are rejected even unbound.
	bad := NewFaultPlan().NodeDown(0, -1, 2)
	if _, err := bad.Compile(g); err == nil || !strings.Contains(err.Error(), "duration -1 < 0") {
		t.Fatalf("Compile = %v, want duration error", err)
	}
}
