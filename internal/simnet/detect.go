package simnet

import (
	"fmt"
	"sort"

	"repro/internal/digraph"
	"repro/internal/gossip"
	"repro/internal/obs"
)

// Distributed failure knowledge. The fault-aware router of faultroute.go
// is omniscient: it reads the FaultState — the ground truth of the fault
// plan — directly. The self-healing layer removes that oracle. Nodes
// learn of a downed out-arc only by attempting it and timing out
// (detect), tell the rest of the network by flooding a link-state event
// over whatever arcs still work (disseminate), and patch their routing
// slabs incrementally per event (repair). healState is the knowledge
// side of that machinery: who has heard which event, and what routing
// slab a node with a given amount of knowledge uses.
//
// Knowledge is epoch-structured. Committed events are numbered 1, 2, …
// in commit order, and a node's epoch is the longest contiguous prefix
// of events it has heard (a later event heard out of order does not
// advance the epoch, but does feed the believedDown override so the
// node still avoids the arc). Every epoch has one routing slab — the
// pristine slab patched by TableRouter.Repair with the believed-down
// set after that prefix — built lazily and shared by every node at that
// epoch.

// linkEvent is one committed link-state update: an arc observed down
// (or recovered) by its tail, spreading through the network by flood.
type linkEvent struct {
	arc   Arc
	up    bool
	cycle int // commit cycle (session-absolute)
	// flood tracks which nodes have heard the event; its origin is the
	// observing tail.
	flood *gossip.Flood
	// doneAt is the session cycle the flood completed, -1 while it is
	// still spreading.
	doneAt int
}

// healState holds the distributed knowledge of one self-healing
// session: the committed event log, per-arc suspicion counters, and the
// lazily repaired per-epoch routing slabs.
type healState struct {
	g    *digraph.Digraph
	base *TableRouter // pristine fault-free slab: the epoch-0 routing

	events    []linkEvent
	suspicion map[Arc]int

	// slabs caches the repaired router per epoch (epoch 0 is base).
	// Epochs are prefix-indexed, so a new event never invalidates an
	// older slab.
	slabs   map[int]*TableRouter
	repairs int
}

func newHealState(g *digraph.Digraph, base *TableRouter) *healState {
	return &healState{
		g:         g,
		base:      base,
		suspicion: map[Arc]int{},
		slabs:     map[int]*TableRouter{},
	}
}

// commit appends a link-state event and starts its flood at the
// observing tail.
func (h *healState) commit(a Arc, up bool, cycle int) error {
	fl, err := gossip.NewFlood(h.g, a.Tail)
	if err != nil {
		return fmt.Errorf("simnet: heal: commit event for arc (%d#%d): %w", a.Tail, a.Index, err)
	}
	ev := linkEvent{arc: a, up: up, cycle: cycle, flood: fl, doneAt: -1}
	if fl.Complete() { // single-node digraph: nothing to spread
		ev.doneAt = cycle
	}
	h.events = append(h.events, ev)
	return nil
}

// stepFloods advances every incomplete flood by one round; live reports
// whether the arc at (tail, index) can carry gossip this cycle.
func (h *healState) stepFloods(cycle int, live func(tail, index int) bool) {
	for i := range h.events {
		ev := &h.events[i]
		if ev.flood.Complete() {
			continue
		}
		ev.flood.Step(live)
		if ev.flood.Complete() && ev.doneAt < 0 {
			ev.doneAt = cycle
		}
	}
}

// knownEpoch returns node u's epoch: the longest contiguous prefix of
// committed events u has heard.
func (h *healState) knownEpoch(u int) int {
	e := 0
	for i := range h.events {
		if !h.events[i].flood.Informed(u) {
			break
		}
		e++
	}
	return e
}

// believedDown reports whether node u currently believes the arc is
// down, judging by the events u has heard (in commit order, the last
// heard event about the arc wins). This is the override that lets a
// node act on knowledge beyond its contiguous epoch — most importantly
// an arc failure it detected itself.
func (h *healState) believedDown(u int, a Arc) bool {
	down := false
	for i := range h.events {
		ev := &h.events[i]
		if ev.arc == a && ev.flood.Informed(u) {
			down = !ev.up
		}
	}
	return down
}

// activeDown reports whether the committed event log, taken in full,
// leaves the arc down — the view a node at the latest epoch holds.
func (h *healState) activeDown(a Arc) bool {
	down := false
	for i := range h.events {
		if h.events[i].arc == a {
			down = !h.events[i].up
		}
	}
	return down
}

// downSet returns the believed-down arcs after the first e events,
// sorted for deterministic repair input.
func (h *healState) downSet(e int) []Arc {
	down := map[Arc]bool{}
	for i := range h.events[:e] {
		if h.events[i].up {
			delete(down, h.events[i].arc)
		} else {
			down[h.events[i].arc] = true
		}
	}
	dead := make([]Arc, 0, len(down))
	for a := range down {
		dead = append(dead, a)
	}
	sort.Slice(dead, func(i, j int) bool {
		if dead[i].Tail != dead[j].Tail {
			return dead[i].Tail < dead[j].Tail
		}
		return dead[i].Index < dead[j].Index
	})
	return dead
}

// routerFor returns the routing slab of the given epoch, repairing it
// from the pristine base on first use. Repair input arcs come from
// committed events, which the engine validated on commit, so a repair
// error is an internal invariant violation.
func (h *healState) routerFor(e int, rec *obs.Recorder) *TableRouter {
	if e == 0 {
		return h.base
	}
	if r, ok := h.slabs[e]; ok {
		return r
	}
	r, err := h.base.Repair(h.g, h.downSet(e))
	if err != nil {
		panic(fmt.Sprintf("simnet: heal: epoch %d slab repair: %v", e, err))
	}
	h.slabs[e] = r
	h.repairs++
	rec.RepairSlabBuild()
	return r
}

// converged reports whether every committed event has finished
// flooding: all nodes share the latest epoch.
func (h *healState) converged() bool {
	for i := range h.events {
		if !h.events[i].flood.Complete() {
			return false
		}
	}
	return true
}

// convergedCycle returns the session cycle at which the last flood
// completed (0 when no event was ever committed, -1 when a flood is
// still spreading).
func (h *healState) convergedCycle() int {
	at := 0
	for i := range h.events {
		if h.events[i].doneAt < 0 {
			return -1
		}
		if h.events[i].doneAt > at {
			at = h.events[i].doneAt
		}
	}
	return at
}

// firstEventCycle returns the commit cycle of the first event, or -1.
func (h *healState) firstEventCycle() int {
	if len(h.events) == 0 {
		return -1
	}
	return h.events[0].cycle
}
