package simnet

import (
	"math/rand"
	"testing"

	"repro/internal/debruijn"
)

// Chaos smoke test: 100 seeded random fault plans — mixed link, node
// and lens-style group faults, transient and permanent, against random
// workloads — must never break the accounting invariant (Delivered +
// Dropped == Offered) or produce an inconsistent trace. Every failure
// message carries the seed so a red run reproduces with one constant.

func randomChaosPlan(rng *rand.Rand, g interface {
	N() int
	OutDegree(int) int
}) *FaultPlan {
	plan := NewFaultPlan()
	for i, nf := 0, rng.Intn(7); i < nf; i++ {
		start := rng.Intn(100)
		duration := 0 // permanent
		if rng.Intn(3) > 0 {
			duration = 1 + rng.Intn(60)
		}
		switch rng.Intn(3) {
		case 0:
			tail := rng.Intn(g.N())
			plan.LinkDown(start, duration, tail, rng.Intn(g.OutDegree(tail)))
		case 1:
			plan.NodeDown(start, duration, rng.Intn(g.N()))
		case 2:
			group := make([]Arc, 0, 3)
			for j := 0; j < 3; j++ {
				tail := rng.Intn(g.N())
				group = append(group, Arc{Tail: tail, Index: rng.Intn(g.OutDegree(tail))})
			}
			plan.LensDown(start, duration, rng.Intn(8), group)
		}
	}
	return plan
}

func TestChaosRandomFaultPlans(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		plan := randomChaosPlan(rng, g)
		pkts := make([]Packet, 40+rng.Intn(40))
		for i := range pkts {
			pkts[i] = Packet{
				ID:      i,
				Src:     rng.Intn(g.N()),
				Dst:     rng.Intn(g.N()),
				Release: rng.Intn(50),
			}
		}
		res, events, err := nw.TracedRunWithFaults(pkts, plan, DefaultFaultConfig())
		if err != nil {
			t.Fatalf("seed %d: run failed: %v", seed, err)
		}
		if res.Delivered+res.Dropped != len(pkts) {
			t.Fatalf("seed %d: delivered %d + dropped %d != offered %d (%v)",
				seed, res.Delivered, res.Dropped, len(pkts), res)
		}
		if err := VerifyTrace(g, res.Packets, events); err != nil {
			t.Fatalf("seed %d: inconsistent trace: %v", seed, err)
		}
	}
}

// TestChaosSelfHealingInvariant runs a lighter chaos pass through the
// self-healing engine: the same accounting invariant must hold with
// detection, gossip and repair in the loop.
func TestChaosSelfHealingInvariant(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		plan := randomChaosPlan(rng, g)
		session, err := nw.SelfHeal(plan, HealConfig{ProbeInterval: 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pkts := make([]Packet, 30+rng.Intn(30))
		for i := range pkts {
			pkts[i] = Packet{
				ID:      i,
				Src:     rng.Intn(g.N()),
				Dst:     rng.Intn(g.N()),
				Release: rng.Intn(50),
			}
		}
		res, err := session.Run(pkts)
		if err != nil {
			t.Fatalf("seed %d: run failed: %v", seed, err)
		}
		if res.Delivered+res.Dropped != len(pkts) {
			t.Fatalf("seed %d: delivered %d + dropped %d != offered %d (%v)",
				seed, res.Delivered, res.Dropped, len(pkts), res)
		}
	}
}
