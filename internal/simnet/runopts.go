package simnet

import (
	"fmt"

	"repro/internal/obs"
)

// The unified run entry point. Historically the Network grew three
// parallel entry points — Run, RunWithFaults, TracedRunWithFaults —
// each with its own positional signature; every new cross-cutting
// concern (tracing, fault plans, now metrics recording) multiplied the
// surface. RunOpts collapses them behind functional options:
//
//	rep, err := nw.RunOpts(simnet.UniformLoad(5000),
//	        simnet.WithSeed(7),
//	        simnet.WithFaults(plan),
//	        simnet.WithRecorder(rec))
//
// The old names remain as thin deprecated wrappers.

// Workload produces the packets of one run, given the network size and
// a seed. Deterministic generators ignore the seed.
type Workload interface {
	Packets(n int, seed int64) []Packet
}

// WorkloadFunc adapts a function to the Workload interface.
type WorkloadFunc func(n int, seed int64) []Packet

// Packets implements Workload.
func (f WorkloadFunc) Packets(n int, seed int64) []Packet { return f(n, seed) }

// Fixed wraps a literal packet list as a Workload (the seed is unused).
func Fixed(pkts []Packet) Workload {
	return WorkloadFunc(func(int, int64) []Packet { return pkts })
}

// UniformLoad is the uniform-random workload of the given packet count.
func UniformLoad(packets int) Workload {
	return WorkloadFunc(func(n int, seed int64) []Packet { return UniformRandom(n, packets, seed) })
}

// PermutationLoad is the random-permutation workload (one packet per
// node, destinations a uniform permutation).
func PermutationLoad() Workload {
	return WorkloadFunc(func(n int, seed int64) []Packet { return Permutation(n, seed) })
}

// BroadcastLoad is the one-to-all workload from the given root.
func BroadcastLoad(root int) Workload {
	return WorkloadFunc(func(n int, _ int64) []Packet { return Broadcast(n, root) })
}

// AllToAllLoad is the complete-exchange workload.
func AllToAllLoad() Workload {
	return WorkloadFunc(func(n int, _ int64) []Packet { return AllToAll(n) })
}

// PoissonLoad is the Poisson-arrival workload at the given rate
// (packets per cycle per network).
func PoissonLoad(packets int, rate float64) Workload {
	return WorkloadFunc(func(n int, seed int64) []Packet { return PoissonArrivals(n, packets, rate, seed) })
}

// runConfig is the option state of one RunOpts call.
type runConfig struct {
	faults      bool
	plan        *FaultPlan
	faultCfg    FaultConfig
	traced      bool
	rec         *obs.Recorder
	recOverride bool
	seed        int64
}

// RunOption configures one RunOpts call.
type RunOption func(*runConfig)

// WithFaults runs the workload through the fault-aware engine under the
// given plan (nil: the fault engine with no scheduled faults — still
// useful for its TTL/retry semantics and Delivered+Dropped accounting).
func WithFaults(plan *FaultPlan) RunOption {
	return func(c *runConfig) {
		c.faults = true
		c.plan = plan
	}
}

// WithFaultConfig tunes the fault engine (TTL, retries, backoff) and
// implies the fault-aware engine like WithFaults(nil).
func WithFaultConfig(cfg FaultConfig) RunOption {
	return func(c *runConfig) {
		c.faults = true
		c.faultCfg = cfg
	}
}

// WithTrace records the full event log of the run into the report.
func WithTrace() RunOption {
	return func(c *runConfig) { c.traced = true }
}

// WithRecorder records metrics into rec for this run only, overriding
// (or, when the network has none, supplying) the recorder attached with
// Observe. WithRecorder(nil) forces an uninstrumented run.
func WithRecorder(rec *obs.Recorder) RunOption {
	return func(c *runConfig) {
		c.rec = rec
		c.recOverride = true
	}
}

// WithSeed seeds the workload generator (default 1).
func WithSeed(seed int64) RunOption {
	return func(c *runConfig) { c.seed = seed }
}

// RunReport is the unified result of RunOpts. The embedded FaultResult
// extends Result; its fault-path counters are zero for runs without
// WithFaults. Events is non-nil only under WithTrace.
type RunReport struct {
	FaultResult
	Events []Event
}

// RunOpts generates the workload and runs it under the given options,
// subsuming Run (no options), RunWithFaults (WithFaults) and
// TracedRunWithFaults (WithFaults + WithTrace). Plain runs take the
// allocation-free fast path; fault and traced runs use their engines.
func (nw *Network) RunOpts(w Workload, opts ...RunOption) (RunReport, error) {
	if w == nil {
		return RunReport{}, fmt.Errorf("simnet: RunOpts needs a workload")
	}
	cfg := runConfig{seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	rec := nw.rec
	if cfg.recOverride {
		rec = cfg.rec
		rec.SizeArcs(int(nw.arcBase[nw.g.N()]))
	}
	pkts := w.Packets(nw.g.N(), cfg.seed)

	if cfg.faults {
		res, events, err := nw.runWithFaults(pkts, cfg.plan, cfg.faultCfg, cfg.traced, rec)
		if err != nil {
			return RunReport{}, err
		}
		return RunReport{FaultResult: res, Events: events}, nil
	}
	if cfg.traced {
		res, events := nw.tracedRun(pkts, rec)
		return RunReport{FaultResult: FaultResult{Result: res}, Events: events}, nil
	}
	return RunReport{FaultResult: FaultResult{Result: nw.run(pkts, 0, rec)}}, nil
}
