package simnet

import (
	"fmt"

	"repro/internal/obs"
)

// The unified run entry point. Historically the Network grew three
// parallel entry points — Run, RunWithFaults, TracedRunWithFaults —
// each with its own positional signature; every new cross-cutting
// concern (tracing, fault plans, now metrics recording) multiplied the
// surface. RunOpts collapses them behind functional options:
//
//	rep, err := nw.RunOpts(simnet.UniformLoad(5000),
//	        simnet.WithSeed(7),
//	        simnet.WithFaults(plan),
//	        simnet.WithRecorder(rec))
//
// The old names remain as thin deprecated wrappers.

// Workload produces the packets of one run, given the network size and
// a seed. Deterministic generators ignore the seed.
type Workload interface {
	Packets(n int, seed int64) []Packet
}

// WorkloadFunc adapts a function to the Workload interface.
type WorkloadFunc func(n int, seed int64) []Packet

// Packets implements Workload.
func (f WorkloadFunc) Packets(n int, seed int64) []Packet { return f(n, seed) }

// Fixed wraps a literal packet list as a Workload (the seed is unused).
func Fixed(pkts []Packet) Workload {
	return WorkloadFunc(func(int, int64) []Packet { return pkts })
}

// UniformLoad is the uniform-random workload of the given packet count.
func UniformLoad(packets int) Workload {
	return WorkloadFunc(func(n int, seed int64) []Packet { return UniformRandom(n, packets, seed) })
}

// PermutationLoad is the random-permutation workload (one packet per
// node, destinations a uniform permutation).
func PermutationLoad() Workload {
	return WorkloadFunc(func(n int, seed int64) []Packet { return Permutation(n, seed) })
}

// BroadcastLoad is the one-to-all workload from the given root.
func BroadcastLoad(root int) Workload {
	return WorkloadFunc(func(n int, _ int64) []Packet { return Broadcast(n, root) })
}

// AllToAllLoad is the complete-exchange workload.
func AllToAllLoad() Workload {
	return WorkloadFunc(func(n int, _ int64) []Packet { return AllToAll(n) })
}

// PoissonLoad is the Poisson-arrival workload at the given rate
// (packets per cycle per network, 0 < rate ≤ 1). An out-of-range rate
// is reported eagerly by RunOpts as an *OptionError.
func PoissonLoad(packets int, rate float64) Workload {
	if rate <= 0 || rate > 1 {
		return errWorkload{&OptionError{Option: "PoissonLoad", Reason: fmt.Sprintf("rate must be in (0, 1], got %v", rate)}}
	}
	if packets < 0 {
		return errWorkload{&OptionError{Option: "PoissonLoad", Reason: fmt.Sprintf("packet count must be >= 0, got %d", packets)}}
	}
	return WorkloadFunc(func(n int, seed int64) []Packet { return PoissonArrivals(n, packets, rate, seed) })
}

// RatedLoad is the fixed-rate uniform workload (RatedUniform): packets
// with uniform random endpoints released at the given aggregate rate in
// packets per cycle. Unlike PoissonLoad the rate may exceed 1 — this is
// the workload saturation studies offer at multiples of the network's
// saturation throughput. A non-positive rate is reported eagerly by
// RunOpts as an *OptionError.
func RatedLoad(packets int, rate float64) Workload {
	if rate <= 0 {
		return errWorkload{&OptionError{Option: "RatedLoad", Reason: fmt.Sprintf("rate must be > 0, got %v", rate)}}
	}
	if packets < 0 {
		return errWorkload{&OptionError{Option: "RatedLoad", Reason: fmt.Sprintf("packet count must be >= 0, got %d", packets)}}
	}
	return WorkloadFunc(func(n int, seed int64) []Packet { return RatedUniform(n, packets, rate, seed) })
}

// OptionError reports an invalid RunOpts option or workload parameter,
// detected eagerly when the option is applied (mirroring
// NewFaultPlanFor's Err pattern) and returned by RunOpts before any
// simulation work happens.
type OptionError struct {
	// Option names the offending option or workload constructor.
	Option string
	// Reason says what was wrong with it.
	Reason string
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("simnet: %s: %s", e.Option, e.Reason)
}

// errWorkload carries a workload-construction error that RunOpts
// surfaces before generating any packets.
type errWorkload struct{ err error }

// Packets implements Workload; an errored workload generates nothing.
func (w errWorkload) Packets(int, int64) []Packet { return nil }

// Err reports the construction error.
func (w errWorkload) Err() error { return w.err }

// runConfig is the option state of one RunOpts call.
type runConfig struct {
	faults      bool
	plan        *FaultPlan
	planSet     bool
	faultCfg    FaultConfig
	faultCfgSet bool
	traced      bool
	rec         *obs.Recorder
	recOverride bool
	seed        int64
	seedSet     bool
	qcap        int
	qcapSet     bool
	hold        int
	holdSet     bool
	admission   AdmissionConfig
	admit       bool
	shards      int
	shardsSet   bool
	errs        []error
}

// overriddenBy returns base with every option the per-run config set
// layered on top — the merge rule of network-wide run defaults
// (NewNetwork with RunOptions) under per-run options: per-run wins field
// by field, untouched defaults persist.
func (c runConfig) overriddenBy(per runConfig) runConfig {
	out := c
	out.faults = c.faults || per.faults
	out.traced = c.traced || per.traced
	if per.planSet {
		out.plan, out.planSet = per.plan, true
	}
	if per.faultCfgSet {
		out.faultCfg, out.faultCfgSet = per.faultCfg, true
	}
	if per.recOverride {
		out.rec, out.recOverride = per.rec, true
	}
	if per.seedSet {
		out.seed, out.seedSet = per.seed, true
	}
	if per.qcapSet {
		out.qcap, out.qcapSet = per.qcap, true
	}
	if per.holdSet {
		out.hold, out.holdSet = per.hold, true
	}
	if per.admit {
		out.admission, out.admit = per.admission, true
	}
	if per.shardsSet {
		out.shards, out.shardsSet = per.shards, true
	}
	return out
}

// fail records an eager option error, surfaced by RunOpts.
func (c *runConfig) fail(option, format string, args ...any) {
	c.errs = append(c.errs, &OptionError{Option: option, Reason: fmt.Sprintf(format, args...)})
}

// RunOption configures one RunOpts call.
type RunOption func(*runConfig)

// WithFaults runs the workload through the fault-aware engine under the
// given plan (nil: the fault engine with no scheduled faults — still
// useful for its TTL/retry semantics and Delivered+Dropped accounting).
// Two WithFaults options on one call conflict and fail eagerly.
func WithFaults(plan *FaultPlan) RunOption {
	return func(c *runConfig) {
		if c.planSet {
			c.fail("WithFaults", "conflicting duplicate option (two fault plans on one run)")
			return
		}
		c.faults = true
		c.plan = plan
		c.planSet = true
	}
}

// WithFaultConfig tunes the fault engine (TTL, retries, backoff, queue
// bounds) and implies the fault-aware engine like WithFaults(nil).
// Negative fields fail eagerly; zero fields keep selecting their
// documented defaults. Duplicate WithFaultConfig options conflict.
func WithFaultConfig(cfg FaultConfig) RunOption {
	return func(c *runConfig) {
		if c.faultCfgSet {
			c.fail("WithFaultConfig", "conflicting duplicate option (two fault configs on one run)")
			return
		}
		switch {
		case cfg.HopLatency < 0:
			c.fail("WithFaultConfig", "HopLatency must be >= 0, got %d", cfg.HopLatency)
		case cfg.MaxCycles < 0:
			c.fail("WithFaultConfig", "MaxCycles must be >= 0, got %d", cfg.MaxCycles)
		case cfg.TTL < 0:
			c.fail("WithFaultConfig", "TTL must be >= 0 (0 selects the default), got %d", cfg.TTL)
		case cfg.MaxRetries < 0:
			c.fail("WithFaultConfig", "MaxRetries must be >= 0, got %d", cfg.MaxRetries)
		case cfg.BackoffBase < 0 || cfg.BackoffCap < 0:
			c.fail("WithFaultConfig", "backoff base/cap must be >= 0, got %d/%d", cfg.BackoffBase, cfg.BackoffCap)
		case cfg.QueueCapacity < 0:
			c.fail("WithFaultConfig", "QueueCapacity must be >= 0, got %d", cfg.QueueCapacity)
		case cfg.HoldBudget < 0:
			c.fail("WithFaultConfig", "HoldBudget must be >= 0, got %d", cfg.HoldBudget)
		}
		c.faults = true
		c.faultCfg = cfg
		c.faultCfgSet = true
	}
}

// WithTrace records the full event log of the run into the report.
func WithTrace() RunOption {
	return func(c *runConfig) { c.traced = true }
}

// WithRecorder records metrics into rec for this run only, overriding
// (or, when the network has none, supplying) the recorder attached with
// Observe. WithRecorder(nil) forces an uninstrumented run. Duplicate
// WithRecorder options conflict and fail eagerly.
func WithRecorder(rec *obs.Recorder) RunOption {
	return func(c *runConfig) {
		if c.recOverride {
			c.fail("WithRecorder", "conflicting duplicate option (two recorders on one run)")
			return
		}
		c.rec = rec
		c.recOverride = true
	}
}

// WithSeed seeds the workload generator (default 1).
func WithSeed(seed int64) RunOption {
	return func(c *runConfig) {
		c.seed = seed
		c.seedSet = true
	}
}

// WithShards partitions the run's nodes into s contiguous word-prefix
// shards executed by a pool of min(s, GOMAXPROCS) workers — the sharded
// cycle engine. Each shard owns its nodes' queue, pipe and activity-
// bitmap state; cross-shard hops travel in per-cycle batched handoff
// buffers, and the result is identical to the sequential engine for
// every shard and worker count (pinned by the equivalence tests).
// Sharding applies to plain unbounded uninstrumented runs; runs with
// faults, tracing, a recorder, bounded queues or admission control fall
// back to their sequential engines. s must be at least 1 and at most the
// node count; out-of-range counts and duplicate WithShards options fail
// eagerly. As a NetworkOption it sets the network-wide default shard
// count.
func WithShards(s int) RunOption {
	return func(c *runConfig) {
		if c.shardsSet {
			c.fail("WithShards", "conflicting duplicate option (two shard counts on one run)")
			return
		}
		if s < 1 {
			c.fail("WithShards", "shard count must be >= 1, got %d", s)
			return
		}
		c.shards = s
		c.shardsSet = true
	}
}

// WithQueueCapacity bounds every output queue of this run at cap
// packets per arc (fault and heal engines bound each node's hold queue
// at cap packets per out-arc), overriding the Network Config. A full
// downstream queue holds the packet upstream — credit-based
// backpressure — until its hold budget (WithHoldBudget) runs out. cap
// must be at least 1; zero or negative capacities fail eagerly.
func WithQueueCapacity(cap int) RunOption {
	return func(c *runConfig) {
		if cap < 1 {
			c.fail("WithQueueCapacity", "capacity must be >= 1, got %d", cap)
			return
		}
		c.qcap = cap
		c.qcapSet = true
	}
}

// WithHoldBudget sets the lifetime number of hold-in-place cycles a
// packet may spend against full queues before dropping as
// DroppedQueueFull (default 4·QueueCapacity+16). Only meaningful with a
// queue bound; budget must be at least 1.
func WithHoldBudget(budget int) RunOption {
	return func(c *runConfig) {
		if budget < 1 {
			c.fail("WithHoldBudget", "budget must be >= 1, got %d", budget)
			return
		}
		c.hold = budget
		c.holdSet = true
	}
}

// WithAdmission regulates injection with a token-bucket source
// regulator: at most cfg.Rate packets per cycle are admitted (bursts up
// to cfg.Burst), refill pauses while the network signals congestion,
// and packets waiting longer than cfg.MaxDelay past their release are
// shed into the Shed bucket — Delivered+Dropped+Shed == Offered stays
// exact. Invalid configurations and duplicate WithAdmission options
// fail eagerly.
func WithAdmission(cfg AdmissionConfig) RunOption {
	return func(c *runConfig) {
		if c.admit {
			c.fail("WithAdmission", "conflicting duplicate option (two admission configs on one run)")
			return
		}
		switch {
		case cfg.Rate <= 0:
			c.fail("WithAdmission", "Rate must be > 0, got %v", cfg.Rate)
		case cfg.Burst < 0:
			c.fail("WithAdmission", "Burst must be >= 0, got %d", cfg.Burst)
		case cfg.MaxDelay < 0:
			c.fail("WithAdmission", "MaxDelay must be >= 0, got %d", cfg.MaxDelay)
		}
		c.admission = cfg
		c.admit = true
	}
}

// RunReport is the unified result of RunOpts. The embedded FaultResult
// extends Result; its fault-path counters are zero for runs without
// WithFaults. Events is non-nil only under WithTrace.
type RunReport struct {
	FaultResult
	Events []Event
	// ShardFallback reports that the run requested the sharded engine
	// (WithShards > 1) but an incompatible option forced a sequential
	// engine: faults, tracing, a recorder, bounded queues or admission
	// control (the dispatch rule WithShards documents). The run is still
	// correct — the engines are result-identical — but did not use the
	// requested parallelism. Also counted as obs metric "shard_fallback"
	// when a recorder is attached.
	ShardFallback bool
}

// RunOpts generates the workload and runs it under the given options,
// subsuming Run (no options), RunWithFaults (WithFaults) and
// TracedRunWithFaults (WithFaults + WithTrace). Plain runs take the
// allocation-free fast path; fault and traced runs use their engines.
// Invalid options and workloads fail eagerly, before any simulation
// work, with *OptionError values.
func (nw *Network) RunOpts(w Workload, opts ...RunOption) (RunReport, error) {
	if w == nil {
		return RunReport{}, fmt.Errorf("simnet: RunOpts needs a workload")
	}
	var per runConfig
	for _, opt := range opts {
		opt(&per)
	}
	if len(per.errs) > 0 {
		return RunReport{}, per.errs[0]
	}
	// Per-run options override the network-wide defaults (NewNetwork run
	// options, already validated there) field by field.
	cfg := nw.defaults.overriddenBy(per)
	if !cfg.seedSet {
		cfg.seed = 1
	}
	if per.shardsSet && per.shards > nw.g.N() {
		return RunReport{}, &OptionError{Option: "WithShards",
			Reason: fmt.Sprintf("shard count %d exceeds the %d-node digraph", per.shards, nw.g.N())}
	}
	if ew, ok := w.(interface{ Err() error }); ok {
		if err := ew.Err(); err != nil {
			return RunReport{}, err
		}
	}
	rec := nw.rec
	if cfg.recOverride {
		rec = cfg.rec
		rec.SizeArcs(int(nw.arcBase[nw.g.N()]))
	}
	var admit *admitState
	if cfg.admit {
		admit = newAdmitState(cfg.admission, nw.diameter())
	}
	pkts := w.Packets(nw.g.N(), cfg.seed)

	// A sharded run was requested; whether dispatch honors it is decided
	// below. Every sequential return past this point is a fallback worth
	// surfacing (RunReport.ShardFallback + the shard_fallback counter).
	shardReq := cfg.shardsSet && cfg.shards > 1
	fallback := func(rep RunReport) RunReport {
		if shardReq {
			rep.ShardFallback = true
			rec.ShardFallback()
		}
		return rep
	}

	if cfg.faults {
		fcfg := cfg.faultCfg
		if cfg.qcapSet {
			fcfg.QueueCapacity = cfg.qcap
		}
		if cfg.holdSet {
			fcfg.HoldBudget = cfg.hold
		}
		res, events, err := nw.runWithFaults(pkts, cfg.plan, fcfg, cfg.traced, admit, rec)
		if err != nil {
			return RunReport{}, err
		}
		return fallback(RunReport{FaultResult: res, Events: events}), nil
	}
	tun := nw.baseTuning(0)
	if cfg.qcapSet {
		tun.qcap = cfg.qcap
	}
	if cfg.holdSet {
		tun.hold = cfg.hold
	}
	tun = tun.withDefaults()
	tun.admit = admit
	if cfg.traced {
		res, events := nw.tracedRun(pkts, tun, rec)
		return fallback(RunReport{FaultResult: FaultResult{Result: res}, Events: events}), nil
	}
	// The sharded engine covers the lean configuration: plain unbounded
	// uninstrumented runs. Anything instrumented falls back to the
	// sequential engines above (WithShards documents this).
	if shardReq && rec == nil && tun.qcap == 0 && tun.admit == nil {
		res := nw.shardRun(pkts, tun, cfg.shards, shardWorkers(cfg.shards))
		return RunReport{FaultResult: FaultResult{Result: res}}, nil
	}
	return fallback(RunReport{FaultResult: FaultResult{Result: nw.run(pkts, tun, rec)}}), nil
}
