package simnet

import "sort"

// Per-run scratch storage. A simulation run needs O(M) queue and
// pipeline state plus O(packets) metadata; sweeps run hundreds of points
// over one Network, so that state is pooled and reused instead of being
// reallocated per point. Arenas hold only packet indices and cycle
// numbers — never pointers into a particular run — so a recycled arena
// carries no aliasing hazard between runs.

// fifo is a reusable first-in-first-out queue of packet indices. Popping
// advances a head cursor instead of reslicing away the front, so the
// backing array is reclaimed (not leaked) the moment the queue drains.
type fifo struct {
	buf  []int32
	head int
}

func (f *fifo) push(x int32) { f.buf = append(f.buf, x) }

func (f *fifo) pop() int32 {
	x := f.buf[f.head]
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return x
}

func (f *fifo) depth() int { return len(f.buf) - f.head }

func (f *fifo) reset() {
	f.buf = f.buf[:0]
	f.head = 0
}

// arena is the scratch state of one in-progress run. Network.scratch
// pools arenas; concurrent runs each check out their own.
type arena struct {
	queues  []fifo       // per-arc output queues, flat by Network.arcBase (Run)
	pipes   [][]inflight // per-arc link pipelines, flat by Network.arcBase
	waiting [][]int32    // per-node hold queues (fault runs)
	order   []int32      // packet indices sorted by (Release, index)
	holdq   []int32      // source-held packets (bounded-queue backpressure)
	meta    []pktMeta    // per-packet bookkeeping (retries, holds)

	// busy marks out-arcs already used this (node, cycle): busy[k] equals
	// the current busyToken. Bumping the token invalidates every mark in
	// O(1), replacing a per-node-per-cycle []bool allocation.
	busy      []int64
	busyToken int64
}

// getArena checks a scratch arena out of the pool, reset and sized for
// this network's digraph. The second result reports whether pooled
// storage was reused (false: a fresh allocation), which instrumented
// runs count into the arena_reused/arena_allocated metrics.
func (nw *Network) getArena() (*arena, bool) {
	ar, ok := nw.scratch.Get().(*arena)
	if !ok {
		m := int(nw.arcBase[nw.g.N()])
		ar = &arena{
			queues:  make([]fifo, m),
			pipes:   make([][]inflight, m),
			waiting: make([][]int32, nw.g.N()),
			busy:    make([]int64, nw.maxDeg),
		}
		return ar, false
	}
	for i := range ar.queues {
		ar.queues[i].reset()
	}
	for i := range ar.pipes {
		ar.pipes[i] = ar.pipes[i][:0]
	}
	for i := range ar.waiting {
		ar.waiting[i] = ar.waiting[i][:0]
	}
	ar.holdq = ar.holdq[:0]
	// order and meta are resized by the run; busy stays valid because the
	// token only ever grows.
	return ar, true
}

// putArena returns a run's scratch to the pool.
func (nw *Network) putArena(ar *arena) { nw.scratch.Put(ar) }

// metaFor returns the per-packet bookkeeping slice, zeroed, reusing the
// arena's backing storage when it is large enough.
func (ar *arena) metaFor(n int) []pktMeta {
	if cap(ar.meta) < n {
		ar.meta = make([]pktMeta, n)
	} else {
		ar.meta = ar.meta[:n]
		for i := range ar.meta {
			ar.meta[i] = pktMeta{}
		}
	}
	return ar.meta
}

// sortByRelease orders packet indices by (Release, index): the injection
// schedule a single cursor can walk, replacing the historical per-cycle
// map of release buckets. The index tie-break keeps same-cycle injection
// order identical to the map-era behaviour (buckets were appended in
// index order).
func sortByRelease(order []int32, pkts []Packet) {
	sort.Slice(order, func(a, b int) bool {
		ra, rb := pkts[order[a]].Release, pkts[order[b]].Release
		if ra != rb {
			return ra < rb
		}
		return order[a] < order[b]
	})
}
