package simnet

import (
	"math/bits"
	"sort"
)

// Per-run scratch storage. A simulation run needs O(M) queue and
// pipeline state plus O(packets) metadata; sweeps run hundreds of points
// over one Network, so that state is pooled and reused instead of being
// reallocated per point. Arenas hold only packet indices and cycle
// numbers — never pointers into a particular run — so a recycled arena
// carries no aliasing hazard between runs.

// fifo is a reusable first-in-first-out queue of packet indices. Popping
// advances a head cursor instead of reslicing away the front, so the
// backing array is reclaimed (not leaked) the moment the queue drains.
type fifo struct {
	buf  []int32
	head int
}

func (f *fifo) push(x int32) { f.buf = append(f.buf, x) }

func (f *fifo) pop() int32 {
	x := f.buf[f.head]
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return x
}

func (f *fifo) depth() int { return len(f.buf) - f.head }

func (f *fifo) reset() {
	f.buf = f.buf[:0]
	f.head = 0
}

// arena is the scratch state of one in-progress run. Network.scratch
// pools arenas; concurrent runs each check out their own.
type arena struct {
	queues  []fifo       // per-arc output queues, flat by Network.arcBase (Run)
	pipes   [][]inflight // per-arc link pipelines, flat by arcBase (fault/heal runs)
	waiting [][]int32    // per-node hold queues (fault runs)
	order   []int32      // packet indices sorted by (Release, index)
	holdq   []int32      // source-held packets (bounded-queue backpressure)
	meta    []pktMeta    // per-packet bookkeeping (retries, holds)

	// SoA packet slabs of the arc-major run engine, parallel by packet
	// index: destination, release cycle (clamped to the horizon), delivery
	// cycle (-1 while in flight), hop count and holds spent. The run loop
	// touches these int32 slabs instead of 48-byte Packet structs, so the
	// per-cycle sweeps stay dense in cache.
	pDst, pRel, pDel, pHops, pHolds []int32

	// SoA link pipelines of the arc-major run engine: fixed-capacity
	// segments of pipeCap entries per arc in two flat slabs (packet index
	// and ready cycle), replacing the pointer-chased [][]inflight on the
	// plain run path. Segment capacity is safe because a pipe holds at
	// most HopLatency in-flight packets when queues are unbounded (one
	// departure per cycle, each resident exactly HopLatency cycles) and
	// at most qcap+HopLatency — the credit window — when bounded.
	pipePkt, pipeReady []int32
	pipeLen            []int32
	pipeCap            int

	// Gather buffers of the lean arrival path: arrived packets, their
	// arrival nodes and their routed arcs, refilled every cycle so the
	// router-slab gather runs as one dense pass of independent loads.
	arrPkt, arrNode, arrArc []int32

	// Intrusive linked queues of the lean path: per-arc head/tail/length
	// slabs plus a per-packet next pointer, replacing the []fifo
	// header+buffer double indirection with flat int32 slabs (a push or
	// pop touches at most two slab lines). A packet sits in one queue at
	// a time, so one next entry per packet suffices.
	qHead, qTail, qLen []int32
	pNext              []int32

	// Activity bitmaps: qBits bit a set ⇔ arc a has queued packets,
	// aBits bit a set ⇔ arc a has in-flight (or held) pipe entries, and
	// nodeBits bit u set ⇔ node u has waiting packets (fault and heal
	// engines). The per-cycle sweeps walk set bits in ascending order
	// instead of scanning all M arcs (or N nodes), which is what makes
	// ns/packet flat in network size.
	qBits, aBits, nodeBits []uint64

	// busy marks out-arcs already used this (node, cycle): busy[k] equals
	// the current busyToken. Bumping the token invalidates every mark in
	// O(1), replacing a per-node-per-cycle []bool allocation.
	busy      []int64
	busyToken int64
}

// getArena checks a scratch arena out of the pool, reset and sized for
// this network's digraph. The second result reports whether pooled
// storage was reused (false: a fresh allocation), which instrumented
// runs count into the arena_reused/arena_allocated metrics.
func (nw *Network) getArena() (*arena, bool) {
	n := nw.g.N()
	m := int(nw.arcBase[n])
	ar, ok := nw.scratch.Get().(*arena)
	if !ok {
		ar = &arena{
			queues:   make([]fifo, m),
			pipes:    make([][]inflight, m),
			waiting:  make([][]int32, n),
			pipeLen:  make([]int32, m),
			qBits:    make([]uint64, (m+63)/64),
			aBits:    make([]uint64, (m+63)/64),
			nodeBits: make([]uint64, (n+63)/64),
			busy:     make([]int64, nw.maxDeg),
		}
		return ar, false
	}
	for i := range ar.queues {
		ar.queues[i].reset()
	}
	for i := range ar.pipes {
		ar.pipes[i] = ar.pipes[i][:0]
	}
	for i := range ar.waiting {
		ar.waiting[i] = ar.waiting[i][:0]
	}
	for i := range ar.pipeLen {
		ar.pipeLen[i] = 0
	}
	clearBits(ar.qBits)
	clearBits(ar.aBits)
	clearBits(ar.nodeBits)
	ar.holdq = ar.holdq[:0]
	// order and meta are resized by the run; busy stays valid because the
	// token only ever grows.
	return ar, true
}

// clearBits zeroes a bitmap in place.
func clearBits(b []uint64) {
	for i := range b {
		b[i] = 0
	}
}

// trailingZeros64 is bits.TrailingZeros64, aliased so the bitmap sweeps
// read as one local vocabulary with the set/clear sites.
//
//lint:hotpath
func trailingZeros64(x uint64) int { return bits.TrailingZeros64(x) }

// packetSlabs returns the five per-packet SoA slabs resized to p
// entries, reusing the arena's backing storage when large enough. The
// run initializes every entry, so no zeroing happens here.
func (ar *arena) packetSlabs(p int) (dst, rel, del, hops, holds []int32) {
	if cap(ar.pDst) < p {
		ar.pDst = make([]int32, p)
		ar.pRel = make([]int32, p)
		ar.pDel = make([]int32, p)
		ar.pHops = make([]int32, p)
		ar.pHolds = make([]int32, p)
	}
	ar.pDst = ar.pDst[:p]
	ar.pRel = ar.pRel[:p]
	ar.pDel = ar.pDel[:p]
	ar.pHops = ar.pHops[:p]
	ar.pHolds = ar.pHolds[:p]
	return ar.pDst, ar.pRel, ar.pDel, ar.pHops, ar.pHolds
}

// arrivalBatch returns the three gather buffers of the lean arrival
// path (packet index, arrival node, routed arc), each with room for p
// entries — at most every offered packet can arrive in one cycle.
func (ar *arena) arrivalBatch(p int) (pkt, node, arc []int32) {
	if cap(ar.arrPkt) < p {
		ar.arrPkt = make([]int32, p)
		ar.arrNode = make([]int32, p)
		ar.arrArc = make([]int32, p)
	}
	return ar.arrPkt[:p], ar.arrNode[:p], ar.arrArc[:p]
}

// queueLinks returns the lean path's intrusive queue slabs: per-arc
// head, tail and length (length zeroed here — a truncated previous run
// may have left packets queued) and the per-packet next slab. Head and
// tail need no reset: a queue with qLen == 0 rewrites both on its first
// push.
func (ar *arena) queueLinks(m, p int) (qHead, qTail, qLen, pNext []int32) {
	if cap(ar.qHead) < m {
		ar.qHead = make([]int32, m)
		ar.qTail = make([]int32, m)
		ar.qLen = make([]int32, m)
	}
	ar.qHead = ar.qHead[:m]
	ar.qTail = ar.qTail[:m]
	ar.qLen = ar.qLen[:m]
	clearInt32(ar.qLen)
	if cap(ar.pNext) < p {
		ar.pNext = make([]int32, p)
	}
	return ar.qHead, ar.qTail, ar.qLen, ar.pNext[:p]
}

// clearInt32 zeroes an int32 slab in place.
func clearInt32(s []int32) {
	for i := range s {
		s[i] = 0
	}
}

// pipeSegments returns the flat SoA pipe slabs with room for segCap
// entries on each of the m arcs. pipeLen was zeroed at checkout.
func (ar *arena) pipeSegments(m, segCap int) (pkt, ready []int32, length []int32) {
	need := m * segCap
	if cap(ar.pipePkt) < need {
		ar.pipePkt = make([]int32, need)
		ar.pipeReady = make([]int32, need)
	}
	ar.pipePkt = ar.pipePkt[:need]
	ar.pipeReady = ar.pipeReady[:need]
	ar.pipeCap = segCap
	return ar.pipePkt, ar.pipeReady, ar.pipeLen
}

// putArena returns a run's scratch to the pool.
func (nw *Network) putArena(ar *arena) { nw.scratch.Put(ar) }

// metaFor returns the per-packet bookkeeping slice, zeroed, reusing the
// arena's backing storage when it is large enough.
func (ar *arena) metaFor(n int) []pktMeta {
	if cap(ar.meta) < n {
		ar.meta = make([]pktMeta, n)
	} else {
		ar.meta = ar.meta[:n]
		for i := range ar.meta {
			ar.meta[i] = pktMeta{}
		}
	}
	return ar.meta
}

// sortByRelease orders packet indices by (Release, index): the injection
// schedule a single cursor can walk, replacing the historical per-cycle
// map of release buckets. The index tie-break keeps same-cycle injection
// order identical to the map-era behaviour (buckets were appended in
// index order).
func sortByRelease(order []int32, pkts []Packet) {
	sort.Slice(order, func(a, b int) bool {
		ra, rb := pkts[order[a]].Release, pkts[order[b]].Release
		if ra != rb {
			return ra < rb
		}
		return order[a] < order[b]
	})
}
