package simnet

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

func TestConfigValidation(t *testing.T) {
	g := digraph.Circuit(3)
	if _, err := New(g, NewTableRouter(g), Config{HopLatency: 0}); err == nil {
		t.Error("zero hop latency accepted")
	}
	if _, err := New(digraph.New(0), nil, DefaultConfig()); err == nil {
		t.Error("empty digraph accepted")
	}
}

func TestSinglePacketOnCircuit(t *testing.T) {
	g := digraph.Circuit(4)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run([]Packet{{ID: 0, Src: 0, Dst: 3}})
	if res.Delivered != 1 || res.Dropped != 0 {
		t.Fatalf("result %v", res)
	}
	p := res.Packets[0]
	if p.Hops != 3 {
		t.Errorf("hops = %d, want 3", p.Hops)
	}
	if p.Delivered-p.Release != 3 {
		t.Errorf("latency = %d, want 3 (uncongested unit-latency hops)", p.Delivered-p.Release)
	}
}

func TestHopLatencyScales(t *testing.T) {
	g := digraph.Circuit(4)
	nw, _ := New(g, NewTableRouter(g), Config{HopLatency: 5})
	res := nw.Run([]Packet{{ID: 0, Src: 0, Dst: 2}})
	p := res.Packets[0]
	if p.Delivered != 10 {
		t.Errorf("latency = %d, want 10 (2 hops × 5 cycles)", p.Delivered)
	}
	if res.TotalWait != 0 {
		t.Errorf("wait = %d, want 0", res.TotalWait)
	}
}

func TestSelfPacket(t *testing.T) {
	g := digraph.Circuit(3)
	nw, _ := New(g, NewTableRouter(g), DefaultConfig())
	res := nw.Run([]Packet{{ID: 0, Src: 1, Dst: 1, Release: 7}})
	if res.Delivered != 1 || res.Packets[0].Delivered != 7 || res.Packets[0].Hops != 0 {
		t.Errorf("self packet mishandled: %+v", res.Packets[0])
	}
}

func TestUnreachableDropped(t *testing.T) {
	g := digraph.New(2)
	g.AddArc(0, 1)
	g.AddArc(1, 1) // give node 1 an out-arc so the router has a column
	nw, _ := New(g, NewTableRouter(g), DefaultConfig())
	res := nw.Run([]Packet{{ID: 0, Src: 1, Dst: 0}})
	if res.Dropped != 1 || res.Delivered != 0 {
		t.Errorf("result %v", res)
	}
}

func TestContentionSerializes(t *testing.T) {
	// Two packets fighting for the same single link: the second waits one
	// cycle.
	g := digraph.New(3)
	g.AddArc(0, 2)
	g.AddArc(1, 2)
	g.AddArc(2, 2)
	nw, _ := New(g, NewTableRouter(g), DefaultConfig())
	// Both packets from 0 to 2 share link (0,2).
	res := nw.Run([]Packet{
		{ID: 0, Src: 0, Dst: 2},
		{ID: 1, Src: 0, Dst: 2},
	})
	if res.Delivered != 2 {
		t.Fatalf("result %v", res)
	}
	lat0 := res.Packets[0].Delivered
	lat1 := res.Packets[1].Delivered
	if lat0 == lat1 {
		t.Errorf("two packets crossed one unit link in the same cycle (%d, %d)", lat0, lat1)
	}
	if res.TotalWait != 1 {
		t.Errorf("total wait = %d, want 1", res.TotalWait)
	}
}

func TestDeBruijnRouterMatchesTable(t *testing.T) {
	d, D := 2, 5
	g := debruijn.DeBruijn(d, D)
	table := NewTableRouter(g)
	native := NewDeBruijnRouter(d, D)
	n := g.N()
	for u := 0; u < n; u++ {
		dist := g.BFSFrom(u)
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			arc := native.NextArc(u, v)
			if arc < 0 {
				t.Fatalf("native router unreachable (%d,%d)", u, v)
			}
			hop := g.Out(u)[arc]
			// The native hop must decrease the true distance by one
			// (there can be several shortest first hops, so compare
			// distances, not arc ids).
			hopDist := g.BFSFrom(hop)[v]
			if hopDist != dist[v]-1 {
				t.Fatalf("native hop (%d→%d for dst %d) not on a shortest path", u, hop, v)
			}
			_ = table
		}
	}
}

func TestDeBruijnNetworkHopBound(t *testing.T) {
	// On B(2,6) every packet is delivered within 6 hops — the diameter —
	// regardless of congestion.
	d, D := 2, 6
	g := debruijn.DeBruijn(d, D)
	nw, _ := New(g, NewDeBruijnRouter(d, D), DefaultConfig())
	res := nw.Run(UniformRandom(g.N(), 500, 42))
	if res.Delivered != 500 {
		t.Fatalf("delivered %d/500 (%v)", res.Delivered, res)
	}
	if res.MaxHops > D {
		t.Errorf("max hops %d exceeds diameter %d", res.MaxHops, D)
	}
	if res.MeanHops <= 0 || res.MeanHops > float64(D) {
		t.Errorf("mean hops %f out of range", res.MeanHops)
	}
}

func TestMeanHopsMatchesMeanDistanceUnderPermutation(t *testing.T) {
	// With one packet per source the mean hop count must equal the mean
	// of the pairwise distances of the chosen permutation (shortest-path
	// routing never lengthens paths).
	d, D := 2, 5
	g := debruijn.DeBruijn(d, D)
	pkts := Permutation(g.N(), 7)
	nw, _ := New(g, NewTableRouter(g), DefaultConfig())
	res := nw.Run(pkts)
	if res.Delivered != len(pkts) {
		t.Fatalf("delivered %d/%d", res.Delivered, len(pkts))
	}
	wantTotal := 0
	for _, p := range pkts {
		wantTotal += g.BFSFrom(p.Src)[p.Dst]
	}
	if res.TotalHops != wantTotal {
		t.Errorf("total hops %d, want %d", res.TotalHops, wantTotal)
	}
}

func TestBroadcastWorkload(t *testing.T) {
	d, D := 2, 4
	g := debruijn.DeBruijn(d, D)
	pkts := Broadcast(g.N(), 0)
	if len(pkts) != g.N()-1 {
		t.Fatalf("broadcast size %d", len(pkts))
	}
	nw, _ := New(g, NewTableRouter(g), DefaultConfig())
	res := nw.Run(pkts)
	if res.Delivered != len(pkts) {
		t.Fatalf("delivered %d/%d", res.Delivered, len(pkts))
	}
	if res.MaxHops > D {
		t.Errorf("broadcast exceeded diameter: %d", res.MaxHops)
	}
	// The root's two links serialize ~n/2 packets each, so the makespan
	// must be at least n/d - 1 cycles.
	if res.Cycles < g.N()/d-1 {
		t.Errorf("cycles %d suspiciously low", res.Cycles)
	}
}

func TestAllToAllCompletes(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	pkts := AllToAll(g.N())
	if len(pkts) != 8*7 {
		t.Fatalf("all-to-all size %d", len(pkts))
	}
	nw, _ := New(g, NewTableRouter(g), DefaultConfig())
	res := nw.Run(pkts)
	if res.Delivered != len(pkts) || res.Dropped != 0 {
		t.Fatalf("result %v", res)
	}
}

func TestPoissonArrivalsOrdered(t *testing.T) {
	pkts := PoissonArrivals(16, 200, 0.5, 3)
	last := 0
	for _, p := range pkts {
		if p.Release < last {
			t.Fatal("releases not monotone")
		}
		last = p.Release
		if p.Src == p.Dst {
			t.Fatal("self packet generated")
		}
	}
}

func TestPermutationIsDerangement(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pkts := Permutation(32, seed)
		seen := make([]bool, 32)
		for _, p := range pkts {
			if p.Src == p.Dst {
				t.Fatalf("seed %d: fixed point at %d", seed, p.Src)
			}
			if seen[p.Dst] {
				t.Fatalf("seed %d: duplicate destination %d", seed, p.Dst)
			}
			seen[p.Dst] = true
		}
	}
}

func TestUniformRandomDeterministic(t *testing.T) {
	a := UniformRandom(64, 50, 9)
	b := UniformRandom(64, 50, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different workload")
		}
	}
	c := UniformRandom(64, 50, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestQueueOccupancyStats(t *testing.T) {
	// A broadcast from one root funnels everything through the root's
	// two queues: MaxQueue must be large (≈ n/d at the root) and the hot
	// node must be the root.
	g := debruijn.DeBruijn(2, 5)
	nw, _ := New(g, NewTableRouter(g), DefaultConfig())
	res := nw.Run(Broadcast(g.N(), 7))
	if res.MaxQueue < g.N()/4 {
		t.Errorf("MaxQueue = %d, expected a deep root queue", res.MaxQueue)
	}
	if res.HotNode != 7 {
		t.Errorf("hot node %d, want the broadcast root 7", res.HotNode)
	}
	// A single packet never queues more than one deep.
	res = nw.Run([]Packet{{ID: 0, Src: 0, Dst: 9}})
	if res.MaxQueue > 1 {
		t.Errorf("single packet MaxQueue = %d", res.MaxQueue)
	}
}

func TestBitReversalWorkload(t *testing.T) {
	pkts := BitReversal(16)
	for _, p := range pkts {
		if p.Src == p.Dst {
			t.Fatal("self packet in bit reversal")
		}
	}
	// Palindromic addresses over 4 bits: 0000, 0110, 1001, 1111 → 12 packets.
	if len(pkts) != 12 {
		t.Fatalf("%d packets, want 12", len(pkts))
	}
	// On B(2,4), bit-reversal traffic is adversarial but bounded by the
	// diameter; everything still delivers.
	g := debruijn.DeBruijn(2, 4)
	nw, _ := New(g, NewDeBruijnRouter(2, 4), DefaultConfig())
	res := nw.Run(pkts)
	if res.Delivered != len(pkts) || res.MaxHops > 4 {
		t.Fatalf("bit reversal on B(2,4): %v", res)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two accepted")
		}
	}()
	BitReversal(12)
}

func TestComplementaryWorkload(t *testing.T) {
	pkts := Complementary(16)
	if len(pkts) != 16 {
		t.Fatalf("%d packets", len(pkts))
	}
	// Constant words have zero overlap with their complements (distance
	// exactly D); alternating words overlap heavily (distance 1). Both
	// extremes must appear, and everything delivers within the diameter.
	g := debruijn.DeBruijn(2, 4)
	nw, _ := New(g, NewTableRouter(g), DefaultConfig())
	res := nw.Run(pkts)
	if res.Delivered != 16 {
		t.Fatalf("complementary: %v", res)
	}
	if res.MaxHops != 4 {
		t.Errorf("max hops %d, want 4 (0000→1111 has no overlap)", res.MaxHops)
	}
	hops := map[int]int{}
	for _, p := range res.Packets {
		hops[p.Hops]++
	}
	if hops[1] == 0 {
		t.Error("no distance-1 pair (0101→1010 overlaps in 3 letters)")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	g := digraph.Circuit(8)
	nw, _ := New(g, NewTableRouter(g), Config{HopLatency: 1, MaxCycles: 2})
	res := nw.Run([]Packet{{ID: 0, Src: 0, Dst: 7}})
	if res.Delivered != 0 {
		t.Error("packet delivered despite 2-cycle budget for a 7-hop path")
	}
}

func TestOffLoadLatencyEqualsDistanceTimesLatency(t *testing.T) {
	// One packet at a time: latency = distance × HopLatency exactly.
	d, D := 2, 4
	g := debruijn.DeBruijn(d, D)
	nw, _ := New(g, NewDeBruijnRouter(d, D), Config{HopLatency: 3})
	for src := 0; src < g.N(); src += 3 {
		dist := g.BFSFrom(src)
		for dst := 0; dst < g.N(); dst += 5 {
			if src == dst {
				continue
			}
			res := nw.Run([]Packet{{ID: 0, Src: src, Dst: dst}})
			if res.Delivered != 1 {
				t.Fatalf("(%d,%d) undelivered", src, dst)
			}
			want := dist[dst] * 3
			if got := res.Packets[0].Delivered; got != want {
				t.Fatalf("(%d,%d): latency %d, want %d", src, dst, got, want)
			}
		}
	}
}
