package simnet

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/otis"
)

// Tests for the flat-slab routing rework: the arc slab must route on the
// same distance class as the [][]int tables it replaced, on every
// topology family the repository builds; the fault engine's accounting
// must balance even under adversarial release schedules; and the shared
// Network must be safe and deterministic across sweep workers.

// catalogGraphs returns one representative of every digraph family in
// the catalog: de Bruijn, Kautz, Reddy–Raghavan–Kuhl, Imase–Itoh, and an
// OTIS-realized H(p, q, d).
func catalogGraphs(t *testing.T) map[string]*digraph.Digraph {
	t.Helper()
	graphs := map[string]*digraph.Digraph{
		"B(2,4)":    debruijn.DeBruijn(2, 4),
		"B(3,3)":    debruijn.DeBruijn(3, 3),
		"RRK(2,12)": debruijn.RRK(2, 12),
		"II(2,12)":  debruijn.ImaseItoh(2, 12),
	}
	kautz, _ := debruijn.Kautz(2, 4)
	graphs["K(2,4)"] = kautz
	layout, ok := otis.OptimalLayout(2, 5)
	if !ok {
		t.Fatal("no OTIS layout for B(2,5)")
	}
	graphs["H(p,q,2)"] = otis.MustH(layout.P(), layout.Q(), 2)
	return graphs
}

// TestTableRouterDifferentialCatalog checks, pair by pair on every
// catalog graph, that the arc slab and the compatibility RoutingTable
// agree with true shortest-path distances: a routed arc always steps
// one closer to the destination (the distance class the replaced
// implementation guaranteed), and -1 appears exactly for unreachable
// pairs and self-pairs.
func TestTableRouterDifferentialCatalog(t *testing.T) {
	for name, g := range catalogGraphs(t) {
		n := g.N()
		dist := g.DistanceSlab()
		router := NewTableRouter(g)
		table := debruijn.RoutingTable(g)
		for u := 0; u < n; u++ {
			for dst := 0; dst < n; dst++ {
				arc := router.NextArc(u, dst)
				hop := table[u][dst]
				d := dist[u*n+dst]
				switch {
				case u == dst:
					if arc != -1 {
						t.Fatalf("%s: NextArc(%d,%d) = %d at destination", name, u, dst, arc)
					}
					if hop != u {
						t.Fatalf("%s: table[%d][%d] = %d, want self", name, u, dst, hop)
					}
				case d == digraph.Unreachable:
					if arc != -1 || hop != -1 {
						t.Fatalf("%s: unreachable pair (%d,%d) routed arc=%d hop=%d", name, u, dst, arc, hop)
					}
				default:
					if arc < 0 || arc >= g.OutDegree(u) {
						t.Fatalf("%s: NextArc(%d,%d) = %d out of range", name, u, dst, arc)
					}
					v := g.Out(u)[arc]
					if dist[v*n+dst] != d-1 {
						t.Fatalf("%s: arc %d→%d does not decrease distance to %d (%d → %d)",
							name, u, v, dst, d, dist[v*n+dst])
					}
					if hop < 0 || dist[hop*n+dst] != d-1 {
						t.Fatalf("%s: table hop %d→%d off the distance class to %d", name, u, hop, dst)
					}
				}
			}
		}
	}
}

// TestTableRouterFootprint asserts satellite claim S1: exactly one n²
// table survives, at 1 byte per pair on any graph whose out-degrees fit
// int8 — a 32× reduction over the historical pair of [][]int tables
// (2·n²·8 bytes plus row headers).
func TestTableRouterFootprint(t *testing.T) {
	g := debruijn.DeBruijn(3, 5)
	n := g.N()
	r := NewTableRouter(g)
	if got, want := r.Footprint(), n*n; got != want {
		t.Fatalf("Footprint() = %d, want %d (one int8 per pair)", got, want)
	}
	historical := 2 * n * n * 8
	if r.Footprint()*2 > historical {
		t.Fatalf("Footprint() = %d not at least 2x below the historical %d", r.Footprint(), historical)
	}
}

// BenchmarkTableRouterBuild measures slab construction; B/op here is the
// number the PR's ≥2× router-construction reduction is claimed against.
func BenchmarkTableRouterBuild(b *testing.B) {
	g := debruijn.DeBruijn(3, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewTableRouter(g)
	}
}

// checkFaultAccounting asserts the invariant Delivered + Dropped ==
// Offered and that the drop buckets partition Dropped.
func checkFaultAccounting(t *testing.T, res FaultResult, offered int) {
	t.Helper()
	if res.Delivered+res.Dropped != offered {
		t.Fatalf("accounting leak: delivered %d + dropped %d != offered %d (%v)",
			res.Delivered, res.Dropped, offered, res)
	}
	buckets := res.DroppedTTL + res.DroppedNoRoute + res.DroppedFault + res.DroppedHorizon + res.Stuck
	if buckets != res.Dropped {
		t.Fatalf("drop buckets sum to %d, Dropped = %d (%v)", buckets, res.Dropped, res)
	}
	if f := res.DeliveredFraction(); f < 0 || f > 1 {
		t.Fatalf("DeliveredFraction %v out of [0,1]", f)
	}
}

// TestFaultAccountingAdversarialReleases property-tests the exit path:
// random workloads whose Release schedules deliberately straddle and
// exceed tight cycle budgets, under random fault plans, must always
// satisfy Delivered + Dropped == Offered with the buckets partitioning
// Dropped — including the horizon bucket for packets never injected.
func TestFaultAccountingAdversarialReleases(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	n := g.N()
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		pkts := make([]Packet, 60)
		for i := range pkts {
			release := rng.Intn(40)
			switch rng.Intn(4) {
			case 0:
				release = 1_000_000 + rng.Intn(100) // far beyond any budget
			case 1:
				release = 30 + rng.Intn(60) // straddles MaxCycles
			}
			pkts[i] = Packet{ID: i, Src: rng.Intn(n), Dst: rng.Intn(n), Release: release}
		}
		plan := NewFaultPlan()
		for f := 0; f < rng.Intn(8); f++ {
			u := rng.Intn(n)
			k := rng.Intn(g.OutDegree(u))
			duration := 0
			if rng.Intn(2) == 0 {
				duration = 1 + rng.Intn(20)
			}
			plan.LinkDown(rng.Intn(30), duration, u, k)
		}
		if rng.Intn(3) == 0 {
			plan.NodeDown(rng.Intn(30), 1+rng.Intn(10), rng.Intn(n))
		}
		cfg := DefaultFaultConfig()
		cfg.MaxCycles = 30 + rng.Intn(40)
		res, events, err := nw.TracedRunWithFaults(pkts, plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkFaultAccounting(t, res, len(pkts))
		if err := VerifyTrace(g, pkts, events); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestHorizonPacketsDropped is the regression test for the historical
// leak: a packet released beyond MaxCycles was counted into the
// outstanding set but never injected nor dropped, so it vanished from
// the accounting. It must now land in DroppedHorizon.
func TestHorizonPacketsDropped(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pkts := []Packet{
		{ID: 0, Src: 0, Dst: 3, Release: 0},
		{ID: 1, Src: 1, Dst: 4, Release: 5000}, // beyond the budget
	}
	cfg := DefaultFaultConfig()
	cfg.MaxCycles = 20
	res, err := nw.RunWithFaults(pkts, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultAccounting(t, res, len(pkts))
	if res.Delivered != 1 {
		t.Fatalf("delivered %d, want 1", res.Delivered)
	}
	if res.DroppedHorizon != 1 {
		t.Fatalf("DroppedHorizon = %d, want 1 (%v)", res.DroppedHorizon, res)
	}
	if res.Stuck != 0 {
		t.Fatalf("Stuck = %d, want 0 — the horizon packet has its own bucket", res.Stuck)
	}
}

// TestDegradationSweepDeterministicAcrossWorkers asserts that the sweep
// is a pure function of (rates, packets, seed): scheduling the points
// over different worker counts must not change a single field.
func TestDegradationSweepDeterministicAcrossWorkers(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	router := NewTableRouter(g)
	rates := []float64{0, 0.1, 0.3, 0.6, 1}
	want, err := DegradationSweep(g, router, rates, 150, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 0} { // 0 selects GOMAXPROCS
		got, err := DegradationSweep(g, router, rates, 150, 11, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: sweep diverged\n got %v\nwant %v", workers, got, want)
		}
	}
}

// TestSharedNetworkConcurrentRuns drives one Network from many
// goroutines at once — plain runs and fault runs mixed — and checks
// every result matches its sequential twin. Run under -race this is the
// shared-slab/arena safety proof.
func TestSharedNetworkConcurrentRuns(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	sequential := make([]Result, goroutines)
	for i := range sequential {
		sequential[i] = nw.Run(Permutation(g.N(), int64(i)))
	}
	seqFault, err := nw.RunWithFaults(UniformRandom(g.N(), 100, 3), nil, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	results := make([]Result, goroutines)
	faults := make([]FaultResult, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = nw.Run(Permutation(g.N(), int64(i)))
			faults[i], errs[i] = nw.RunWithFaults(UniformRandom(g.N(), 100, 3), nil, DefaultFaultConfig())
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], sequential[i]) {
			t.Fatalf("goroutine %d: concurrent run diverged from sequential", i)
		}
		if !reflect.DeepEqual(faults[i], seqFault) {
			t.Fatalf("goroutine %d: concurrent fault run diverged from sequential", i)
		}
	}
}

// TestArenaReuseKeepsRunsIndependent re-runs different workloads
// back-to-back on one Network and cross-checks against fresh Networks:
// recycled scratch must never leak state between runs.
func TestArenaReuseKeepsRunsIndependent(t *testing.T) {
	g := debruijn.DeBruijn(3, 3)
	shared, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		fresh, err := New(g, NewTableRouter(g), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		pkts := PoissonArrivals(g.N(), 120, 0.4, seed)
		got := shared.Run(pkts)
		want := fresh.Run(pkts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: arena-reusing run diverged from fresh network", seed)
		}
	}
}
