package simnet

import (
	"fmt"
	"sort"

	"repro/internal/digraph"
	"repro/internal/obs"
)

// Event tracing: an instrumented run that records every packet movement,
// for debugging routing policies and for verifying that the simulator's
// behaviour matches the declared semantics (tests replay traces against
// the digraph and the router).

// EventKind classifies trace events.
type EventKind int

const (
	// EventInject marks a packet entering its source node's queue.
	EventInject EventKind = iota
	// EventDepart marks a packet leaving a node on a link.
	EventDepart
	// EventArrive marks a packet arriving at a node.
	EventArrive
	// EventDeliver marks final delivery.
	EventDeliver
	// EventReroute marks a forward on an arc other than the primary
	// router's choice (fault-aware runs only); the matching EventDepart
	// follows with the same cycle and peer.
	EventReroute
	// EventDrop marks a packet leaving the simulation undelivered (TTL
	// exhausted, retries exhausted, or lost to a node fault).
	EventDrop
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventInject:
		return "inject"
	case EventDepart:
		return "depart"
	case EventArrive:
		return "arrive"
	case EventDeliver:
		return "deliver"
	case EventReroute:
		return "reroute"
	case EventDrop:
		return "drop"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one trace record.
type Event struct {
	Cycle  int
	Kind   EventKind
	Packet int
	Node   int // location (tail for departures)
	Peer   int // head for departures/arrivals; -1 otherwise
}

// String renders "c=12 depart pkt=3 5→11".
func (e Event) String() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("c=%d %s pkt=%d %d→%d", e.Cycle, e.Kind, e.Packet, e.Node, e.Peer)
	}
	return fmt.Sprintf("c=%d %s pkt=%d @%d", e.Cycle, e.Kind, e.Packet, e.Node)
}

// TracedRun wraps Network.Run, replaying each delivered packet's journey
// from the per-packet hop data into a coherent event log. The log is
// reconstructed from a second, instrumented simulation pass that records
// departures; events are ordered by (cycle, kind, packet).
//
// For simplicity and to keep the hot simulation loop allocation-free,
// tracing re-runs the workload with a shadow network whose router
// decisions are recorded.
func (nw *Network) TracedRun(packets []Packet) (Result, []Event) {
	return nw.tracedRun(packets, nw.baseTuning(0), nw.rec)
}

// tracedRun is TracedRun with explicit run tuning and metrics recorder
// for the shadow run (RunOpts threads its per-run overload knobs and
// recorder through here).
func (nw *Network) tracedRun(packets []Packet, tun runTuning, mrec *obs.Recorder) (Result, []Event) {
	rec := &recordingRouter{inner: nw.router}
	shadow := newNetwork(nw.g, rec, nw.cfg)
	res := shadow.run(packets, tun, mrec)

	// Reconstruct per-packet paths by walking the recorded decisions.
	var events []Event
	for _, p := range res.Packets {
		if p.Delivered < 0 {
			continue
		}
		events = append(events, Event{Cycle: p.Release, Kind: EventInject, Packet: p.ID, Node: p.Src, Peer: -1})
		at := p.Src
		for hop := 0; hop < p.Hops; hop++ {
			arc := rec.decision(at, p.Dst)
			next := nw.g.Out(at)[arc]
			events = append(events, Event{Kind: EventDepart, Packet: p.ID, Node: at, Peer: next})
			events = append(events, Event{Kind: EventArrive, Packet: p.ID, Node: next, Peer: at})
			at = next
		}
		events = append(events, Event{Cycle: p.Delivered, Kind: EventDeliver, Packet: p.ID, Node: p.Dst, Peer: -1})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Packet != events[j].Packet {
			return events[i].Packet < events[j].Packet
		}
		return false
	})
	return res, events
}

// recordingRouter memoizes the inner router's decisions (which are
// deterministic per (node, dst) for the routers in this package).
type recordingRouter struct {
	inner     Router
	decisions map[[2]int]int
}

func (r *recordingRouter) NextArc(at, dst int) int {
	arc := r.inner.NextArc(at, dst)
	if r.decisions == nil {
		r.decisions = make(map[[2]int]int)
	}
	r.decisions[[2]int{at, dst}] = arc
	return arc
}

func (r *recordingRouter) decision(at, dst int) int {
	return r.decisions[[2]int{at, dst}]
}

// VerifyTrace checks a trace against the digraph: every depart/arrive
// pair follows an arc, each packet's walk is connected from source to
// destination, reroutes announce a real arc at the packet's position,
// and a dropped packet never moves (or delivers) afterwards. Traces from
// TracedRun and TracedRunWithFaults both satisfy it.
func VerifyTrace(g *digraph.Digraph, packets []Packet, events []Event) error {
	byPacket := map[int][]Event{}
	for _, e := range events {
		byPacket[e.Packet] = append(byPacket[e.Packet], e)
	}
	for _, p := range packets {
		evs := byPacket[p.ID]
		if len(evs) == 0 {
			continue // dropped or self-delivered without movement
		}
		at := -1
		dropped := false
		for _, e := range evs {
			if dropped {
				return fmt.Errorf("simnet: packet %d has %v after its drop", p.ID, e.Kind)
			}
			switch e.Kind {
			case EventInject:
				if e.Node != p.Src {
					return fmt.Errorf("simnet: packet %d injected at %d, src %d", p.ID, e.Node, p.Src)
				}
				at = e.Node
			case EventDepart, EventReroute:
				if e.Node != at {
					return fmt.Errorf("simnet: packet %d %vs %d but is at %d", p.ID, e.Kind, e.Node, at)
				}
				if !g.HasArc(e.Node, e.Peer) {
					return fmt.Errorf("simnet: packet %d uses missing arc (%d,%d)", p.ID, e.Node, e.Peer)
				}
			case EventArrive:
				at = e.Node
			case EventDeliver:
				if e.Node != p.Dst || at != p.Dst {
					return fmt.Errorf("simnet: packet %d delivered at %d (at=%d), dst %d", p.ID, e.Node, at, p.Dst)
				}
			case EventDrop:
				// at == -1 with a drop at the source is a source-side
				// loss: a horizon drop (release beyond the cycle
				// budget), an admission shed, or a queue-full drop of a
				// packet that never won injection capacity. All three
				// leave the packet where it would have entered.
				if e.Node != at && !(at == -1 && e.Node == p.Src) {
					return fmt.Errorf("simnet: packet %d dropped at %d but is at %d", p.ID, e.Node, at)
				}
				dropped = true
			}
		}
	}
	return nil
}
