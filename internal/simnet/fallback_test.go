package simnet

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/obs"
)

// TestShardFallbackObservable pins exactly when RunOpts reports that a
// requested sharded run was forced onto a sequential engine — the
// dispatch rule WithShards documents, previously silent. Every
// incompatible option must raise the flag; compatible runs (and runs
// that never asked for shards) must not.
func TestShardFallbackObservable(t *testing.T) {
	g := debruijn.DeBruijn(2, 5)
	nw, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlanFor(g).LinkDown(2, 6, 1, 0)
	cases := []struct {
		name string
		opts []RunOption
		want bool
	}{
		{"no shards requested", nil, false},
		{"shards=1 is not a shard request", []RunOption{WithShards(1)}, false},
		{"plain sharded run dispatches", []RunOption{WithShards(4)}, false},
		{"faults force sequential", []RunOption{WithShards(4), WithFaults(plan)}, true},
		{"trace forces sequential", []RunOption{WithShards(4), WithTrace()}, true},
		{"recorder forces sequential", []RunOption{WithShards(4), WithRecorder(obs.NewRecorder(obs.NewRegistry()))}, true},
		{"bounded queues force sequential", []RunOption{WithShards(4), WithQueueCapacity(64)}, true},
		{"admission forces sequential", []RunOption{WithShards(4), WithAdmission(AdmissionConfig{Rate: 1000, Burst: 64})}, true},
	}
	for _, tc := range cases {
		rep, err := nw.RunOpts(PermutationLoad(), append([]RunOption{WithSeed(5)}, tc.opts...)...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.ShardFallback != tc.want {
			t.Errorf("%s: ShardFallback = %v, want %v", tc.name, rep.ShardFallback, tc.want)
		}
	}
}

// TestShardFallbackCounter pins the obs side of the observable: when a
// recorder rides the run, the fallback is also counted under the
// shard_fallback metric so sweeps see it without inspecting every
// RunReport.
func TestShardFallbackCounter(t *testing.T) {
	g := debruijn.DeBruijn(2, 5)
	nw, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(obs.NewRegistry())
	if _, err := nw.RunOpts(PermutationLoad(), WithSeed(5), WithShards(4), WithRecorder(rec)); err != nil {
		t.Fatal(err)
	}
	m := rec.Registry().Snapshot()
	if got := m.Counters[obs.MetricShardFallback]; got != 1 {
		t.Fatalf("shard_fallback counter = %d, want 1", got)
	}
	// A plain instrumented run (no shard request) must not count.
	if _, err := nw.RunOpts(PermutationLoad(), WithSeed(5), WithRecorder(rec)); err != nil {
		t.Fatal(err)
	}
	m = rec.Registry().Snapshot()
	if got := m.Counters[obs.MetricShardFallback]; got != 1 {
		t.Fatalf("shard_fallback counter after plain run = %d, want still 1", got)
	}
}
