package simnet

import (
	"math/rand"
)

// Workload generators. All are deterministic given the seed.

// UniformRandom returns count packets with independently uniform sources
// and destinations (src ≠ dst), all released at cycle 0.
func UniformRandom(n, count int, seed int64) []Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]Packet, count)
	for i := range pkts {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		pkts[i] = Packet{ID: i, Src: src, Dst: dst}
	}
	return pkts
}

// PoissonArrivals returns count packets with uniform random endpoints and
// geometric inter-arrival times of mean 1/rate cycles (rate in packets per
// cycle, 0 < rate).
func PoissonArrivals(n, count int, rate float64, seed int64) []Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]Packet, count)
	at := 0
	for i := range pkts {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		pkts[i] = Packet{ID: i, Src: src, Dst: dst, Release: at}
		// Geometric gap approximating Poisson arrivals.
		gap := 0
		for rng.Float64() > rate {
			gap++
			if gap > 1<<20 {
				break
			}
		}
		at += gap
	}
	return pkts
}

// RatedUniform returns count packets with uniform random endpoints
// released at a fixed aggregate rate in packets per cycle: packet i
// releases at cycle ⌊i/rate⌋. Unlike PoissonArrivals the rate may
// exceed one packet per cycle (geometric gaps cannot express that), so
// this is the workload for saturation studies offering multiples of a
// network's saturation throughput.
func RatedUniform(n, count int, rate float64, seed int64) []Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]Packet, count)
	for i := range pkts {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		pkts[i] = Packet{ID: i, Src: src, Dst: dst, Release: int(float64(i) / rate)}
	}
	return pkts
}

// Permutation returns n packets realizing a random permutation traffic
// pattern: node i sends to π(i) (fixed points excluded by re-drawing
// destinations via cycle rotation).
func Permutation(n int, seed int64) []Packet {
	rng := rand.New(rand.NewSource(seed))
	pi := rng.Perm(n)
	// Derange fixed points by swapping with a neighbour.
	for i := 0; i < n; i++ {
		if pi[i] == i {
			j := (i + 1) % n
			pi[i], pi[j] = pi[j], pi[i]
		}
	}
	pkts := make([]Packet, n)
	for i := range pkts {
		pkts[i] = Packet{ID: i, Src: i, Dst: pi[i]}
	}
	return pkts
}

// Broadcast returns n-1 packets from root to every other node, released
// together — the one-to-all pattern of the broadcasting literature the
// paper cites.
func Broadcast(n, root int) []Packet {
	pkts := make([]Packet, 0, n-1)
	id := 0
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		pkts = append(pkts, Packet{ID: id, Src: root, Dst: v})
		id++
	}
	return pkts
}

// BitReversal returns the classical adversarial pattern for shuffle-based
// networks: node u sends to the bit-reversal of u. n must be a power of
// two. Self-pairs (palindromic addresses) are skipped.
func BitReversal(n int) []Packet {
	width := 0
	for v := n; v > 1; v >>= 1 {
		if v&1 == 1 {
			panic("simnet: BitReversal needs a power-of-two size")
		}
		width++
	}
	var pkts []Packet
	id := 0
	for u := 0; u < n; u++ {
		rev := 0
		for i := 0; i < width; i++ {
			rev |= (u >> uint(i) & 1) << uint(width-1-i)
		}
		if rev == u {
			continue
		}
		pkts = append(pkts, Packet{ID: id, Src: u, Dst: rev})
		id++
	}
	return pkts
}

// Complementary returns the pattern u → n-1-u (the "transpose" of the
// address space), another classical stressor; self-pairs are skipped
// (none exist for even n).
func Complementary(n int) []Packet {
	var pkts []Packet
	id := 0
	for u := 0; u < n; u++ {
		dst := n - 1 - u
		if dst == u {
			continue
		}
		pkts = append(pkts, Packet{ID: id, Src: u, Dst: dst})
		id++
	}
	return pkts
}

// AllToAll returns n(n-1) packets, every ordered pair, released together.
// Quadratic: keep n modest.
func AllToAll(n int) []Packet {
	pkts := make([]Packet, 0, n*(n-1))
	id := 0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			pkts = append(pkts, Packet{ID: id, Src: u, Dst: v})
			id++
		}
	}
	return pkts
}
