package simnet

import (
	"fmt"

	"repro/internal/obs"
)

// The fault-aware run loop. Structurally a store-and-forward simulation
// like Network.Run, with three changes that make it survive a hostile
// fault schedule instead of deadlocking:
//
//   - routing decisions are re-taken at departure time (not enqueue
//     time) through a FaultAwareRouter, so a packet never commits to a
//     link that has died while it was queued;
//   - a packet that finds no live useful out-arc is requeued with
//     exponential backoff a bounded number of times (transient faults
//     heal; permanent ones eventually exhaust the retries) and then
//     dropped with explicit accounting;
//   - every packet carries a TTL (hop budget) so deflections under heavy
//     transient faulting cannot loop forever.
//
// Every loss path increments a named counter, and the exit path drains
// whatever the cycle budget stranded (queued, in flight on a link, or
// never injected because its release lay beyond the horizon), so
// Delivered + Dropped == Offered holds unconditionally — the invariant
// the property tests exercise with adversarial release schedules.

// FaultConfig tunes RunWithFaults. The zero value selects defaults.
type FaultConfig struct {
	// HopLatency is the wire time of one hop in cycles (0: 1).
	HopLatency int
	// MaxCycles aborts the run (0: a generous bound).
	MaxCycles int
	// TTL is the per-packet hop budget (0: 4·diameter+8, or 2n when the
	// digraph is not strongly connected).
	TTL int
	// MaxRetries bounds how often a packet with no live out-arc is
	// requeued before it is dropped (0: 8).
	MaxRetries int
	// BackoffBase is the first retry delay in cycles (0: 1); successive
	// retries double it up to BackoffCap (0: 64).
	BackoffBase int
	BackoffCap  int
	// BackoffJitterSeed decorrelates the retry ladder with deterministic
	// per-(packet, attempt) jitter over [delay/2, delay] (0: no jitter —
	// the exact historical ladder).
	BackoffJitterSeed int64
	// QueueCapacity bounds each node's hold queue at QueueCapacity
	// packets per out-arc (0: unbounded). A full downstream node is not
	// forwarded to: the packet holds in place upstream (credit-based
	// backpressure) until space opens or its hold budget runs out.
	QueueCapacity int
	// HoldBudget is the lifetime number of hold-in-place cycles a packet
	// may spend against full downstream nodes before dropping as
	// DroppedQueueFull (0: 4·QueueCapacity+16).
	HoldBudget int
}

// DefaultFaultConfig returns the default fault-run tuning.
func DefaultFaultConfig() FaultConfig { return FaultConfig{} }

func (c FaultConfig) withDefaults(n, diameter int) FaultConfig {
	if c.HopLatency < 1 {
		c.HopLatency = 1
	}
	if c.TTL < 1 {
		if diameter >= 0 {
			c.TTL = 4*diameter + 8
		} else {
			c.TTL = 2 * n
		}
	}
	if c.MaxRetries < 1 {
		c.MaxRetries = 8
	}
	if c.BackoffBase < 1 {
		c.BackoffBase = 1
	}
	if c.BackoffCap < 1 {
		c.BackoffCap = 64
	}
	if c.QueueCapacity < 0 {
		c.QueueCapacity = 0
	}
	if c.QueueCapacity > 0 && c.HoldBudget < 1 {
		c.HoldBudget = 4*c.QueueCapacity + 16
	}
	return c
}

// FaultResult extends Result with the fault-path accounting. Dropped is
// the sum of every Dropped* bucket (including the embedded Result's
// DroppedQueueFull) plus Stuck, and Delivered + Dropped + Shed equals
// the offered packet count on every run, even one cut short by
// MaxCycles.
type FaultResult struct {
	Result
	// Reroutes counts forwards on an arc other than the primary
	// router's choice (residual reroutes and deflections).
	Reroutes int
	// Retries counts backoff requeues of packets that found no live
	// useful out-arc.
	Retries int
	// DroppedTTL, DroppedNoRoute and DroppedFault break Dropped down:
	// hop budget exhausted; retries exhausted with no live route; lost
	// in flight to a node fault at the arrival end.
	DroppedTTL     int
	DroppedNoRoute int
	DroppedFault   int
	// DroppedHorizon counts packets whose Release lay beyond the cycle
	// budget: never injected, dropped at their source when the run ends.
	// (Historically these leaked from the accounting entirely.)
	DroppedHorizon int
	// Stuck counts packets stranded in a queue or on a link when
	// MaxCycles ran out (0 on any completed run). Stuck packets are
	// dropped at exit and included in Dropped.
	Stuck int
}

// String renders the headline numbers; safe when nothing was delivered.
func (r FaultResult) String() string {
	return fmt.Sprintf("%v reroutes=%d retries=%d dropTTL=%d dropNoRoute=%d dropFault=%d dropHorizon=%d dropQueueFull=%d shed=%d stuck=%d",
		r.Result, r.Reroutes, r.Retries, r.DroppedTTL, r.DroppedNoRoute, r.DroppedFault, r.DroppedHorizon, r.DroppedQueueFull, r.Shed, r.Stuck)
}

// DeliveredFraction returns Delivered over the offered packet count, 0
// when nothing was offered (never NaN). Since every packet is either
// delivered, dropped or shed, the offered count is their sum.
func (r FaultResult) DeliveredFraction() float64 {
	offered := r.Delivered + r.Dropped + r.Shed
	if offered == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(offered)
}

// pktMeta is the per-packet run bookkeeping: the retry budget state and
// the hold-in-place budget spent against full bounded queues.
type pktMeta struct {
	retries int
	readyAt int
	holds   int
}

// RunWithFaults simulates the workload under the fault plan. The
// network's router is wrapped in a FaultAwareRouter; see FaultConfig for
// the retry/TTL semantics. A nil plan degenerates to a fault-free run of
// the fault engine (useful for differential tests).
//
// Deprecated: use RunOpts with WithFaults, which unifies the run entry
// points behind functional options. RunWithFaults remains a thin
// wrapper and is not going away.
func (nw *Network) RunWithFaults(packets []Packet, plan *FaultPlan, cfg FaultConfig) (FaultResult, error) {
	res, _, err := nw.runWithFaults(packets, plan, cfg, false, nil, nw.rec)
	return res, err
}

// TracedRunWithFaults is RunWithFaults with a full event log: inject,
// depart, arrive, deliver, plus the fault-path kinds reroute and drop.
// Unlike TracedRun, events are recorded live (fault decisions depend on
// the cycle, so a shadow re-run cannot reconstruct them) and all carry
// their cycle.
//
// Deprecated: use RunOpts with WithFaults and WithTrace. The method
// remains a thin wrapper and is not going away.
func (nw *Network) TracedRunWithFaults(packets []Packet, plan *FaultPlan, cfg FaultConfig) (FaultResult, []Event, error) {
	res, events, err := nw.runWithFaults(packets, plan, cfg, true, nil, nw.rec)
	return res, events, err
}

func (nw *Network) runWithFaults(packets []Packet, plan *FaultPlan, cfg FaultConfig, traced bool, admit *admitState, rec *obs.Recorder) (FaultResult, []Event, error) {
	state, err := plan.Compile(nw.g)
	if err != nil {
		return FaultResult{}, nil, err
	}
	// The fault-free distance slab is built once per Network and shared
	// read-only; only the residual tables are per-router state.
	router := newFaultAwareRouterShared(nw.g, nw.router, state, nw.distSlab())

	n := nw.g.N()
	guardIndexInt32(len(packets), "packets")
	cfg = cfg.withDefaults(n, nw.diameter())
	policy := newRetryPolicy(cfg)
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = nw.defaultBudget(len(packets), cfg.HopLatency)
		// Room for every retry of the backoff ladder to play out.
		maxCycles += cfg.MaxRetries * cfg.BackoffCap
		if admit != nil {
			// Room for the regulator to trickle the whole workload in.
			maxCycles += int(float64(len(packets))/admit.rate) + admit.maxDelay
		}
	}

	pkts := make([]Packet, len(packets))
	copy(pkts, packets)

	ar, reused := nw.getArena()
	defer nw.putArena(ar)
	if rec != nil {
		rec.Arena(reused)
	}
	meta := ar.metaFor(len(pkts))
	// waiting[u] is the FIFO of packet indices held at node u; pipes are
	// the per-arc link pipelines (flat by arcBase) as in Run. nodeBits
	// (bit u ⇔ waiting[u] non-empty) and aBits (bit a ⇔ pipes[a]
	// non-empty) let the per-cycle sweeps walk only active nodes and
	// arcs, in the same ascending order as the historical full scans.
	waiting := ar.waiting
	pipes := ar.pipes
	nodeBits, aBits := ar.nodeBits, ar.aBits

	var events []Event
	emit := func(e Event) {
		if traced {
			events = append(events, e)
		}
	}

	res := FaultResult{}
	drop := func(i, cycle, node int, bucket *int, cause obs.DropCause) {
		*bucket++
		res.Dropped++
		if rec != nil {
			rec.Drop(cause)
		}
		emit(Event{Cycle: cycle, Kind: EventDrop, Packet: pkts[i].ID, Node: node, Peer: -1})
	}

	remaining := 0
	order := ar.order[:0]
	for i := range pkts {
		pkts[i].Delivered = -1
		pkts[i].Hops = 0
		if pkts[i].Src == pkts[i].Dst {
			pkts[i].Delivered = pkts[i].Release
			res.Delivered++
			continue
		}
		order = append(order, int32(i))
		remaining++
	}
	sortByRelease(order, pkts)
	ar.order = order
	cursor := 0

	// Overload protection: nodeFull bounds each node's hold queue at
	// QueueCapacity packets per out-arc; hold charges one hold-in-place
	// cycle to a packet's lifetime budget (false: exhausted, caller
	// drops); enter/resident track the peak in-network buffer occupancy.
	qcap := cfg.QueueCapacity
	nodeFull := func(v int) bool {
		return qcap > 0 && len(waiting[v]) >= qcap*int(nw.arcBase[v+1]-nw.arcBase[v])
	}
	hold := func(i, depth int) bool {
		meta[i].holds++
		if meta[i].holds > cfg.HoldBudget {
			return false
		}
		res.Holds++
		if rec != nil {
			rec.Hold(depth)
		}
		return true
	}
	resident := 0
	enter := func() {
		resident++
		if resident > res.PeakResident {
			res.PeakResident = resident
		}
	}
	holdq := ar.holdq[:0]
	heldLast := false // congestion signal: a hold happened last cycle

	var cycle int
	for cycle = 0; remaining > 0 && cycle <= maxCycles; cycle++ {
		state.Advance(cycle)
		holdsBefore := res.Holds
		if admit != nil {
			admit.refill(heldLast)
		}

		// Inject: source-held packets (admitted earlier, source full)
		// retry first, then the release cursor drains through the
		// admission regulator. A full source holds the packet outside
		// the network against its hold budget.
		if len(holdq) > 0 {
			nh := holdq[:0]
			for _, i32 := range holdq {
				i := int(i32)
				src := pkts[i].Src
				if nodeFull(src) {
					if !hold(i, len(waiting[src])) {
						drop(i, cycle, src, &res.DroppedQueueFull, obs.DropQueueFull)
						remaining--
						continue
					}
					nh = append(nh, i32)
					continue
				}
				waiting[src] = append(waiting[src], i32)
				nodeBits[src>>6] |= 1 << (uint(src) & 63)
				enter()
				emit(Event{Cycle: cycle, Kind: EventInject, Packet: pkts[i].ID, Node: src, Peer: -1})
			}
			holdq = nh
		}
		for cursor < len(order) && pkts[order[cursor]].Release <= cycle {
			i := int(order[cursor])
			if admit != nil {
				if cycle-pkts[i].Release > admit.maxDelay {
					cursor++
					res.Shed++
					if rec != nil {
						rec.Shed()
					}
					emit(Event{Cycle: cycle, Kind: EventDrop, Packet: pkts[i].ID, Node: pkts[i].Src, Peer: -1})
					remaining--
					continue
				}
				if !admit.take() {
					break // out of tokens: the head waits in release order
				}
			}
			cursor++
			src := pkts[i].Src
			if nodeFull(src) {
				if !hold(i, len(waiting[src])) {
					drop(i, cycle, src, &res.DroppedQueueFull, obs.DropQueueFull)
					remaining--
					continue
				}
				holdq = append(holdq, int32(i))
				continue
			}
			waiting[src] = append(waiting[src], int32(i))
			nodeBits[src>>6] |= 1 << (uint(src) & 63)
			enter()
			emit(Event{Cycle: cycle, Kind: EventInject, Packet: pkts[i].ID, Node: src, Peer: -1})
		}

		// Arrivals: wire time completes; a downed node loses the packet.
		// Swept over the in-flight bitmap in ascending flat-arc order —
		// identical to the historical nested (node, arc) scan.
		for w := range aBits {
			bits := aBits[w]
			for bits != 0 {
				a := int32(w<<6 + trailingZeros64(bits))
				bits &= bits - 1
				pipe := pipes[a]
				keep := pipe[:0]
				u := int(nw.arcTail[a])
				v := int(nw.arcHead[a])
				for _, fl := range pipe {
					if fl.ready > cycle {
						keep = append(keep, fl)
						continue
					}
					p := &pkts[fl.pkt]
					p.Hops++
					if rec != nil {
						rec.ArcTraverse(int(a))
					}
					if state.NodeDown(v) {
						emit(Event{Cycle: cycle, Kind: EventArrive, Packet: p.ID, Node: v, Peer: u})
						drop(fl.pkt, cycle, v, &res.DroppedFault, obs.DropFault)
						remaining--
						resident--
						continue
					}
					if v == p.Dst {
						p.Delivered = cycle
						res.Delivered++
						remaining--
						resident--
						if cycle > res.Cycles {
							res.Cycles = cycle
						}
						if rec != nil {
							rec.Deliver(cycle-p.Release, p.Hops)
						}
						emit(Event{Cycle: cycle, Kind: EventArrive, Packet: p.ID, Node: v, Peer: u})
						emit(Event{Cycle: cycle, Kind: EventDeliver, Packet: p.ID, Node: v, Peer: -1})
						continue
					}
					emit(Event{Cycle: cycle, Kind: EventArrive, Packet: p.ID, Node: v, Peer: u})
					waiting[v] = append(waiting[v], int32(fl.pkt))
					nodeBits[v>>6] |= 1 << (uint(v) & 63)
				}
				pipes[a] = keep
				if len(keep) == 0 {
					aBits[w] &^= 1 << (uint(a) & 63)
				}
			}
		}

		// Departures: each node forwards its waiting packets in FIFO
		// order; each live arc accepts one packet per cycle. busy marks
		// are invalidated per node by bumping the arena's stamp token.
		// Swept over the waiting-node bitmap in ascending node order —
		// identical to the historical 0..n-1 scan over all nodes.
		for w := range nodeBits {
			wbits := nodeBits[w]
			for wbits != 0 {
				u := w<<6 + trailingZeros64(wbits)
				wbits &= wbits - 1
				depth := len(waiting[u])
				if depth > res.MaxQueue {
					res.MaxQueue = depth
					res.HotNode = u
				}
				if rec != nil {
					rec.NodeQueueDepth(depth)
				}
				ar.busyToken++
				token := ar.busyToken
				busy := ar.busy
				keep := waiting[u][:0]
				for _, i32 := range waiting[u] {
					i := int(i32)
					p := &pkts[i]
					if meta[i].readyAt > cycle {
						keep = append(keep, i32)
						continue
					}
					if p.Hops >= cfg.TTL {
						drop(i, cycle, u, &res.DroppedTTL, obs.DropTTL)
						remaining--
						resident--
						continue
					}
					arc := router.NextArc(u, p.Dst)
					if arc < 0 {
						if !policy.charge(&meta[i], cycle, p.ID) {
							drop(i, cycle, u, &res.DroppedNoRoute, obs.DropNoRoute)
							remaining--
							resident--
							continue
						}
						res.Retries++
						if rec != nil {
							rec.Retry()
						}
						keep = append(keep, i32)
						continue
					}
					if busy[arc] == token {
						keep = append(keep, i32) // link occupied this cycle: queue
						continue
					}
					if next := nw.g.Out(u)[arc]; next != p.Dst && nodeFull(next) {
						// Credit-based backpressure: the downstream node is
						// full (delivery always absorbs), so the packet holds
						// in place instead of deepening next's queue.
						if !hold(i, len(waiting[next])) {
							drop(i, cycle, u, &res.DroppedQueueFull, obs.DropQueueFull)
							remaining--
							resident--
							continue
						}
						keep = append(keep, i32)
						continue
					}
					busy[arc] = token
					if router.Primary(u, p.Dst) != arc {
						res.Reroutes++
						if rec != nil {
							rec.Reroute()
						}
						emit(Event{Cycle: cycle, Kind: EventReroute, Packet: p.ID, Node: u, Peer: nw.g.Out(u)[arc]})
					}
					emit(Event{Cycle: cycle, Kind: EventDepart, Packet: p.ID, Node: u, Peer: nw.g.Out(u)[arc]})
					flat := nw.arcBase[u] + int32(arc)
					pipes[flat] = append(pipes[flat], inflight{pkt: i, ready: cycle + cfg.HopLatency})
					aBits[flat>>6] |= 1 << (uint32(flat) & 63)
				}
				waiting[u] = keep
				if len(keep) == 0 {
					nodeBits[w] &^= 1 << (uint(u) & 63)
				}
			}
		}

		heldLast = res.Holds > holdsBefore
	}

	// Exit drain: the cycle budget ran out with work outstanding. Every
	// survivor is dropped with a cause so Delivered + Dropped == Offered
	// holds on truncated runs too. Order is deterministic: node queues,
	// then link pipelines, then never-injected packets.
	if remaining > 0 {
		for u := 0; u < n; u++ {
			for _, i32 := range waiting[u] {
				drop(int(i32), cycle, u, &res.Stuck, obs.DropStuck)
				remaining--
			}
			waiting[u] = waiting[u][:0]
		}
		for u := 0; u < n; u++ {
			lo, hi := nw.arcBase[u], nw.arcBase[u+1]
			for a := lo; a < hi; a++ {
				for _, fl := range pipes[a] {
					drop(fl.pkt, cycle, u, &res.Stuck, obs.DropStuck)
					remaining--
				}
				pipes[a] = pipes[a][:0]
			}
		}
		// Source-held packets (admitted but never accepted by their full
		// source) drain under the queue-full bucket, distinct from Stuck.
		for _, i32 := range holdq {
			i := int(i32)
			drop(i, cycle, pkts[i].Src, &res.DroppedQueueFull, obs.DropQueueFull)
			remaining--
		}
		holdq = holdq[:0]
		// Packets whose Release exceeded the horizon were never injected:
		// drop them at their source under their own bucket.
		for ; cursor < len(order); cursor++ {
			i := int(order[cursor])
			drop(i, cycle, pkts[i].Src, &res.DroppedHorizon, obs.DropHorizon)
			remaining--
		}
		_ = remaining // zero by construction: every outstanding packet was drained
	}
	ar.holdq = holdq

	// Aggregate, guarding every ratio against the nothing-delivered case.
	latencySum := 0
	for i := range pkts {
		p := pkts[i]
		if p.Delivered < 0 {
			continue
		}
		res.TotalHops += p.Hops
		if p.Hops > res.MaxHops {
			res.MaxHops = p.Hops
		}
		latencySum += p.Delivered - p.Release
		res.TotalWait += (p.Delivered - p.Release) - p.Hops*cfg.HopLatency
	}
	if res.Delivered > 0 {
		res.MeanLatency = float64(latencySum) / float64(res.Delivered)
		res.MeanHops = float64(res.TotalHops) / float64(res.Delivered)
	}
	res.Packets = pkts
	return res, events, nil
}
