package simnet

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/obs"
)

var updateEngineGolden = flag.Bool("update-engine-golden", false, "rewrite the engine behaviour golden files")

// The engine behaviour goldens pin the observable output of the cycle
// engines — full result accounting, the per-packet delivery table, the
// rendered event trace and the OBS_run/v1 metrics document — for a
// matrix of runs that together exercise every engine path: the plain
// unbounded loop, bounded queues with backpressure and admission
// shedding, the fault engine with reroutes and retries, and a truncated
// run. They were generated from the packet-at-a-time engine and are the
// byte-identity gate for the arc-major SoA kernel: any divergence in
// routing decisions, phase ordering, accounting or recording shows up
// as a golden diff.

// renderEngineRun flattens one run into the diffable golden text.
func renderEngineRun(name string, rep RunReport, doc []byte) string {
	var sb strings.Builder
	r := rep.FaultResult
	fmt.Fprintf(&sb, "case: %s\n", name)
	fmt.Fprintf(&sb, "delivered=%d dropped=%d shed=%d cycles=%d\n", r.Delivered, r.Dropped, r.Shed, r.Cycles)
	fmt.Fprintf(&sb, "totalHops=%d maxHops=%d totalWait=%d meanLatency=%.6f meanHops=%.6f\n",
		r.TotalHops, r.MaxHops, r.TotalWait, r.MeanLatency, r.MeanHops)
	fmt.Fprintf(&sb, "maxQueue=%d hotNode=%d holds=%d peakResident=%d droppedQueueFull=%d\n",
		r.MaxQueue, r.HotNode, r.Holds, r.PeakResident, r.DroppedQueueFull)
	fmt.Fprintf(&sb, "reroutes=%d retries=%d dropTTL=%d dropNoRoute=%d dropFault=%d dropHorizon=%d stuck=%d\n",
		r.Reroutes, r.Retries, r.DroppedTTL, r.DroppedNoRoute, r.DroppedFault, r.DroppedHorizon, r.Stuck)
	sb.WriteString("packets:\n")
	for _, p := range r.Packets {
		fmt.Fprintf(&sb, "  id=%d %d->%d rel=%d del=%d hops=%d\n", p.ID, p.Src, p.Dst, p.Release, p.Delivered, p.Hops)
	}
	sb.WriteString("events:\n")
	for _, e := range rep.Events {
		fmt.Fprintf(&sb, "  %s\n", e.String())
	}
	if doc != nil {
		sb.WriteString("obs:\n")
		sb.Write(doc)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestEngineBehaviourGolden(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T) (RunReport, []byte)
	}{
		{
			// The plain unbounded engine under a seeded permutation,
			// traced and instrumented.
			name: "plain_permutation",
			run: func(t *testing.T) (RunReport, []byte) {
				g := debruijn.DeBruijn(3, 4)
				nw, err := New(g, NewTableRouter(g), DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				rec := obs.NewRecorder(obs.NewRegistry())
				rep, err := nw.RunOpts(PermutationLoad(),
					WithSeed(42), WithTrace(), WithRecorder(rec))
				if err != nil {
					t.Fatal(err)
				}
				if rep.Delivered == 0 {
					t.Fatal("degenerate case: nothing delivered")
				}
				doc, err := rec.Snapshot().MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				return rep, doc
			},
		},
		{
			// Bounded queues over saturation with admission control:
			// exercises enqFull holds, hold-budget drops, shedding, the
			// congestion-paused token bucket and the source hold queue.
			name: "bounded_admission",
			run: func(t *testing.T) (RunReport, []byte) {
				g := debruijn.DeBruijn(2, 5)
				nw, err := New(g, NewTableRouter(g), DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				rec := obs.NewRecorder(obs.NewRegistry())
				// An all-to-one funnel: routes to node 0 converge, so
				// bounded queues stay full and hold budgets run out.
				var funnel []Packet
				for i := 1; i < g.N(); i++ {
					funnel = append(funnel, Packet{ID: i, Src: i, Dst: 0, Release: (i % 4)})
				}
				rep, err := nw.RunOpts(Fixed(funnel),
					WithSeed(9),
					WithQueueCapacity(1),
					WithHoldBudget(1),
					WithAdmission(AdmissionConfig{Rate: 5, Burst: 2, MaxDelay: 6}),
					WithTrace(), WithRecorder(rec))
				if err != nil {
					t.Fatal(err)
				}
				if rep.Holds == 0 || rep.Shed == 0 || rep.DroppedQueueFull == 0 {
					t.Fatalf("case does not exercise backpressure: holds=%d shed=%d dropQueueFull=%d",
						rep.Holds, rep.Shed, rep.DroppedQueueFull)
				}
				doc, err := rec.Snapshot().MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				return rep, doc
			},
		},
		{
			// The fault engine under a mixed plan with bounded node
			// queues: reroutes, retries, fault drops and backpressure.
			name: "fault_bounded",
			run: func(t *testing.T) (RunReport, []byte) {
				g := debruijn.DeBruijn(3, 4)
				nw, err := New(g, NewTableRouter(g), DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				plan := NewFaultPlanFor(g).
					NodeDown(0, 60, 7).
					NodeDown(20, 15, 40).
					LinkDown(5, 40, 3, 1).
					LinkDown(0, 1<<30, 10, 0)
				if err := plan.Err(); err != nil {
					t.Fatal(err)
				}
				rec := obs.NewRecorder(obs.NewRegistry())
				rep, err := nw.RunOpts(UniformLoad(300),
					WithSeed(5),
					WithFaults(plan),
					WithQueueCapacity(2),
					WithTrace(), WithRecorder(rec))
				if err != nil {
					t.Fatal(err)
				}
				if rep.Reroutes == 0 || rep.Dropped == 0 {
					t.Fatalf("case does not exercise the fault paths: reroutes=%d dropped=%d", rep.Reroutes, rep.Dropped)
				}
				doc, err := rec.Snapshot().MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				return rep, doc
			},
		},
		{
			// A truncated plain run: MaxCycles expires with packets still
			// buffered, pinning the no-drain truncation semantics.
			name: "plain_truncated",
			run: func(t *testing.T) (RunReport, []byte) {
				g := debruijn.DeBruijn(2, 5)
				nw, err := New(g, NewTableRouter(g), Config{HopLatency: 2, MaxCycles: 7})
				if err != nil {
					t.Fatal(err)
				}
				rec := obs.NewRecorder(obs.NewRegistry())
				rep, err := nw.RunOpts(UniformLoad(200), WithSeed(11), WithRecorder(rec))
				if err != nil {
					t.Fatal(err)
				}
				if rep.Delivered == 0 || rep.Delivered+rep.Dropped == 200 {
					t.Fatalf("case does not exercise truncation: delivered=%d dropped=%d", rep.Delivered, rep.Dropped)
				}
				doc, err := rec.Snapshot().MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				return rep, doc
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, doc := tc.run(t)
			got := renderEngineRun(tc.name, rep, doc)
			golden := filepath.Join("testdata", "engine_"+tc.name+".golden")
			if *updateEngineGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update-engine-golden to create)", err)
			}
			if !bytes.Equal([]byte(got), want) {
				diffAt := 0
				for diffAt < len(got) && diffAt < len(want) && got[diffAt] == want[diffAt] {
					diffAt++
				}
				lo := diffAt - 200
				if lo < 0 {
					lo = 0
				}
				hi := diffAt + 200
				g, w := got, string(want)
				if hi > len(g) {
					hi = len(g)
				}
				t.Errorf("engine behaviour drifted from golden %s around byte %d:\ngot:  …%s…\nwant: …%s…",
					golden, diffAt, g[lo:hi], w[lo:min(hi, len(w))])
			}
		})
	}
}
