package simnet

import (
	"repro/internal/debruijn"
	"repro/internal/digraph"
)

// Fault-aware routing. The de Bruijn digraph promises λ = d−1 arc-
// disjoint paths between every pair (claim X-CONN); this router turns
// that structural redundancy into runtime behaviour. Decisions depend on
// which faults are active:
//
//   - No fault: the primary router's arc, untouched.
//   - Transient faults only: the primary arc if it is up, else a
//     deflection onto the best live alternate out-arc ranked by
//     fault-free distance — the d−1 arc-disjoint alternatives every de
//     Bruijn node offers. Transients heal, so a locally-greedy dodge
//     (bounded by the run loop's TTL and retry budget) is enough.
//   - Permanent faults active: exact shortest paths of the residual
//     digraph, for every pair — the "rebuild the tables" a control plane
//     does. Local dodging is NOT enough here: a fault-blind primary path
//     can lead over live arcs into a region silenced downstream (a lens
//     fault turns whole node blocks into sinks), so the router must be
//     path-aware, not arc-aware. The residual table is recomputed
//     lazily whenever a new permanent fault activates. Transient faults
//     on top of permanent ones deflect by residual distance.
//   - -1 when the destination is unreachable or every useful out-arc is
//     down; the run loop answers with bounded retry/backoff and,
//     eventually, a clean drop.
//
// The router never returns a downed arc: that is the invariant the
// property tests check.

// FaultAwareRouter wraps a primary Router with awareness of a FaultState.
type FaultAwareRouter struct {
	g       *digraph.Digraph
	primary Router
	state   *FaultState
	n       int

	// dist is the flat fault-free distance slab (dist[u*n+v]), for
	// ranking deflections when no permanent fault is active. It may be
	// shared read-only with other routers over the same digraph.
	dist []int32

	// Residual tables under the currently active permanent faults,
	// rebuilt when the version changes: next-hop slab and distances.
	resHop          *debruijn.NextHopSlab
	resDist         []int32
	fallbackVersion int
}

// NewFaultAwareRouter builds the router. state may be nil (or empty), in
// which case decisions are exactly the primary's.
func NewFaultAwareRouter(g *digraph.Digraph, primary Router, state *FaultState) *FaultAwareRouter {
	return newFaultAwareRouterShared(g, primary, state, g.DistanceSlab())
}

// newFaultAwareRouterShared is NewFaultAwareRouter with a caller-provided
// fault-free distance slab, so sweeps over one Network build it once and
// share it read-only across every worker's router.
func newFaultAwareRouterShared(g *digraph.Digraph, primary Router, state *FaultState, dist []int32) *FaultAwareRouter {
	return &FaultAwareRouter{g: g, primary: primary, state: state, n: g.N(), dist: dist}
}

// NextArc implements Router: the cascade above, or -1.
func (r *FaultAwareRouter) NextArc(at, dst int) int {
	if at == dst {
		return -1
	}
	p := r.primary.NextArc(at, dst)
	if r.state.Empty() {
		return p
	}
	if r.state.PermanentVersion() == 0 {
		// Transient faults only: primary, else deflect by fault-free
		// distance.
		if p >= 0 && !r.state.ArcDown(at, p) {
			return p
		}
		return r.deflect(at, dst, p, r.dist)
	}
	// Permanent faults active: exact residual shortest paths.
	r.refreshResidual()
	hop := r.resHop.Hop(at, dst)
	if hop == at || hop < 0 {
		return -1 // unreachable under the permanent faults: no arc helps
	}
	for k, v := range r.g.Out(at) {
		if v == hop && !r.state.ArcDown(at, k) {
			return k
		}
	}
	// The residual arc is transiently down too: deflect by residual
	// distance so the dodge cannot re-enter a silenced region.
	return r.deflect(at, dst, p, r.resDist)
}

// Primary returns the wrapped router's decision, fault-blind.
func (r *FaultAwareRouter) Primary(at, dst int) int { return r.primary.NextArc(at, dst) }

// deflect returns the live out-arc (≠ avoid) whose head minimizes
// dist[head*n+dst], or -1.
func (r *FaultAwareRouter) deflect(at, dst, avoid int, dist []int32) int {
	best := -1
	bestDist := int32(-1)
	for k, v := range r.g.Out(at) {
		if k == avoid || v == at || r.state.ArcDown(at, k) {
			continue
		}
		dv := dist[v*r.n+dst]
		if dv == digraph.Unreachable {
			continue
		}
		if best < 0 || dv < bestDist {
			best, bestDist = k, dv
		}
	}
	return best
}

// refreshResidual rebuilds the residual next-hop and distance tables when
// the active permanent fault set has grown since the last build.
func (r *FaultAwareRouter) refreshResidual() {
	version := r.state.PermanentVersion()
	if version == r.fallbackVersion && r.resHop != nil {
		return
	}
	n := r.g.N()
	residual := digraph.New(n)
	for u := 0; u < n; u++ {
		for k, v := range r.g.Out(u) {
			if !r.state.ArcPermanentlyDown(u, k) {
				residual.AddArc(u, v)
			}
		}
	}
	r.resHop = debruijn.NewNextHopSlab(residual)
	r.resDist = residual.DistanceSlab()
	r.fallbackVersion = version
}
