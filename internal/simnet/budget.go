package simnet

// Retry budgets. The fault and heal engines historically each carried a
// private copy of the same backoff ladder (attempt-doubled delay clamped
// to a cap); this file is the one shared policy both now consult, plus
// the deterministic jitter the literature recommends for decorrelating
// synchronized retries. Everything is pure arithmetic on the run's own
// state — no clocks, no global randomness — so seeded runs stay
// byte-identical.

// retryPolicy is the shared retry/backoff budget of a run: how many
// times a packet with no live useful out-arc may be requeued, and how
// long each requeue waits. The zero jitterSeed reproduces the exact
// historical ladder base<<(attempt-1) clamped to cap; a non-zero seed
// spreads each delay deterministically over [delay/2, delay] per
// (packet, attempt), so packets backing off together do not retry in
// lockstep.
type retryPolicy struct {
	max        int
	base       int
	cap        int
	jitterSeed uint64
}

// newRetryPolicy derives the policy from an already-defaulted
// FaultConfig.
func newRetryPolicy(cfg FaultConfig) retryPolicy {
	return retryPolicy{
		max:        cfg.MaxRetries,
		base:       cfg.BackoffBase,
		cap:        cfg.BackoffCap,
		jitterSeed: uint64(cfg.BackoffJitterSeed),
	}
}

// backoff returns the delay in cycles before retry attempt (1-based) of
// packet pktID.
func (p retryPolicy) backoff(attempt, pktID int) int {
	b := p.base << uint(attempt-1)
	if b > p.cap || b <= 0 {
		b = p.cap
	}
	if p.jitterSeed != 0 && b > 1 {
		span := uint64(b-b/2) + 1 // delays drawn from [b/2, b]
		h := splitmix64(p.jitterSeed ^ uint64(pktID)*0x9e3779b97f4a7c15 ^ uint64(attempt)<<32)
		b = b/2 + int(h%span)
	}
	return b
}

// charge spends one retry of m's budget at the given cycle: on success
// m.readyAt is advanced by the attempt's backoff and charge reports
// true; once the budget is exhausted it reports false and the caller
// drops the packet.
func (p retryPolicy) charge(m *pktMeta, cycle, pktID int) bool {
	m.retries++
	if m.retries > p.max {
		return false
	}
	m.readyAt = cycle + p.backoff(m.retries, pktID)
	return true
}

// splitmix64 is the SplitMix64 finalizer: a statistically strong,
// allocation-free 64-bit mix used for the deterministic retry jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
