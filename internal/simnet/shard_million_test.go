//go:build !race

package simnet

import (
	"testing"

	"repro/internal/debruijn"
)

// TestMillionNodePermutation is the scale gate from the paper's regime:
// a full permutation on B(2,20) — 2^20 = 1,048,576 nodes — must complete
// table-free. A shortest-path table at this order would need ~n² ≈ 10^12
// entries (terabytes); AutoRouting must instead resolve to shift routing
// and the sharded engine must settle every packet within the diameter
// bound. Excluded under -race (the instrumented run is ~20× slower) and
// under -short.
func TestMillionNodePermutation(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node run skipped in -short mode")
	}
	g := debruijn.DeBruijn(2, 20)
	nw, err := NewNetwork(g, WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Routing(); got != ShiftRouting {
		t.Fatalf("AutoRouting on B(2,20) resolved to %v, want ShiftRouting", got)
	}
	rep, err := nw.RunOpts(PermutationLoad(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	if rep.Delivered != n || rep.Dropped != 0 {
		t.Fatalf("delivered %d dropped %d, want %d delivered", rep.Delivered, rep.Dropped, n)
	}
	// Unbounded single-packet queues on a permutation: every packet rides
	// a shortest path, so total cycles stay within diameter + drain slack.
	if rep.Cycles > 20+64 {
		t.Fatalf("permutation took %d cycles on a diameter-20 graph", rep.Cycles)
	}
}
