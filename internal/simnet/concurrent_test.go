package simnet

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/obs"
)

// TestConcurrentRunOptsSharedNetwork is the service-mode concurrency
// contract: one compiled Network (shared routing slabs, pooled arenas)
// must serve many goroutines calling RunOpts at once, each run
// producing exactly the report the same options produce alone. Run
// under -race in check.sh; any shared mutable state in the arenas,
// the recorder, admission, or the fault engine shows up either as a
// race report or as a diverging result.
func TestConcurrentRunOptsSharedNetwork(t *testing.T) {
	g := debruijn.DeBruijn(3, 4)
	nw, err := NewNetwork(g, WithRouting(TableRouting))
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlanFor(g).LinkDown(3, 12, 2, 1).NodeDown(7, 9, 5)

	// Option variants covering every engine RunOpts dispatches to:
	// lean sequential, sharded, bounded, admission-controlled, traced,
	// and the fault engine. Seeds differ per variant so the workloads
	// are not accidentally identical.
	variants := []struct {
		name string
		opts []RunOption
	}{
		{"lean", []RunOption{WithSeed(11)}},
		{"sharded", []RunOption{WithSeed(12), WithShards(4)}},
		{"bounded", []RunOption{WithSeed(13), WithQueueCapacity(8)}},
		{"admission", []RunOption{WithSeed(14), WithAdmission(AdmissionConfig{Rate: 500, Burst: 32})}},
		{"traced", []RunOption{WithSeed(15), WithTrace()}},
		{"faults", []RunOption{WithSeed(16), WithFaults(plan)}},
	}

	// Sequential baselines, one per variant, before any concurrency.
	want := make([]RunReport, len(variants))
	for i, v := range variants {
		rep, err := nw.RunOpts(UniformLoad(2*g.N()), v.opts...)
		if err != nil {
			t.Fatalf("%s baseline: %v", v.name, err)
		}
		want[i] = rep
	}

	const workers = 24
	const runsPerWorker = 4
	var wg sync.WaitGroup
	wg.Add(workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for r := 0; r < runsPerWorker; r++ {
				i := (w + r) % len(variants)
				v := variants[i]
				opts := v.opts
				if v.name == "lean" {
					// Some lean runs carry a private recorder: per-run
					// instrumentation must not leak between goroutines.
					rec := obs.NewRecorder(obs.NewRegistry())
					opts = append(append([]RunOption{}, opts...), WithRecorder(rec))
				}
				rep, err := nw.RunOpts(UniformLoad(2*g.N()), opts...)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(want[i], rep) {
					t.Errorf("worker %d run %d: concurrent %s run diverged from its sequential baseline", w, r, v.name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentSelfHealSessionsSharedNetwork pins the session-service
// substrate: many independent SelfHealing sessions over ONE compiled
// Network (sharing its pristine routing slab), each serialized
// internally but all running concurrently, with per-session exact
// accounting. This is the invariant cmd/serve's scheduler builds on.
func TestConcurrentSelfHealSessionsSharedNetwork(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	nw, err := NewNetwork(g, WithRouting(TableRouting))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const runsPerSession = 3
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			plan := NewFaultPlanFor(g).LinkDown(2+w%5, 10, w%g.N(), 0)
			sess, err := nw.SelfHeal(plan, HealConfig{})
			if err != nil {
				t.Errorf("session %d: %v", w, err)
				return
			}
			for r := 0; r < runsPerSession; r++ {
				pkts := UniformRandom(g.N(), 3*g.N(), int64(100+w))
				hr, err := sess.Run(pkts)
				if err != nil {
					t.Errorf("session %d run %d: %v", w, r, err)
					return
				}
				if offered := len(pkts); hr.Delivered+hr.Dropped+hr.Shed != offered {
					t.Errorf("session %d run %d: %d delivered + %d dropped + %d shed != %d offered",
						w, r, hr.Delivered, hr.Dropped, hr.Shed, offered)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
