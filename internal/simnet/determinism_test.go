package simnet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/obs"
)

// TestSeededRunIsByteIdentical is the regression test behind the
// determinism analyzer: the same seeded workload on the same topology
// must produce the same run, byte for byte — the rendered event trace
// and the OBS_run/v1 metrics document both. Each run builds a fresh
// Network (fresh router slab, fresh arena pool, fresh recorder), so any
// nondeterminism in construction or simulation — map iteration feeding
// the trace, wall-clock reads leaking into metrics, unseeded randomness
// — shows up as a diff here.
func TestSeededRunIsByteIdentical(t *testing.T) {
	runOnce := func() (string, []byte) {
		t.Helper()
		g := debruijn.DeBruijn(3, 5)
		nw, err := New(g, NewTableRouter(g), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder(obs.NewRegistry())
		rep, err := nw.RunOpts(PermutationLoad(),
			WithSeed(20260808), WithTrace(), WithRecorder(rec))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Delivered == 0 || len(rep.Events) == 0 {
			t.Fatalf("degenerate run: delivered=%d events=%d", rep.Delivered, len(rep.Events))
		}
		var sb strings.Builder
		for _, e := range rep.Events {
			sb.WriteString(e.String())
			sb.WriteByte('\n')
		}
		doc, err := rec.Snapshot().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return sb.String(), doc
	}

	trace1, doc1 := runOnce()
	trace2, doc2 := runOnce()

	if trace1 != trace2 {
		l1, l2 := strings.Split(trace1, "\n"), strings.Split(trace2, "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("trace diverges at line %d:\nrun 1: %s\nrun 2: %s", i+1, l1[i], l2[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d lines", len(l1), len(l2))
	}
	if !bytes.Equal(doc1, doc2) {
		t.Errorf("OBS_run/v1 documents differ:\nrun 1:\n%s\nrun 2:\n%s", doc1, doc2)
	}
}
