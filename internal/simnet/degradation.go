package simnet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/digraph"
)

// Degradation characterization: the fault-rate twin of LoadSweep. Each
// point downs every arc independently with probability FaultRate
// (permanently, from cycle 0), runs a uniform workload through the
// fault-aware engine, and records what survives. On a (d-1)-connected
// de Bruijn machine the delivered fraction decays gracefully — there is
// no fault-rate cliff — and even the 100% point terminates cleanly with
// every packet dropped and accounted, never deadlocked.

// DegradationPoint is one fault-rate measurement.
type DegradationPoint struct {
	// FaultRate is the per-arc permanent failure probability.
	FaultRate float64
	// ArcsDown is the realized number of failed arcs.
	ArcsDown int
	// Offered, Delivered and Dropped count packet outcomes.
	Offered, Delivered, Dropped int
	// DeliveredFraction is Delivered/Offered (0 when nothing offered).
	DeliveredFraction float64
	// MeanLatency and MaxHops describe the delivered packets.
	MeanLatency float64
	MaxHops     int
	// Reroutes and Retries count the fault-path events of the run.
	Reroutes, Retries int
}

// String renders one sweep row; safe when nothing was delivered.
func (p DegradationPoint) String() string {
	return fmt.Sprintf("fault %.3f (%d arcs): delivered %d/%d (%.1f%%), latency %.2f, maxHops %d, reroutes %d, retries %d",
		p.FaultRate, p.ArcsDown, p.Delivered, p.Offered, 100*p.DeliveredFraction,
		p.MeanLatency, p.MaxHops, p.Reroutes, p.Retries)
}

// DegradationSweep measures the delivered fraction, latency and reroute
// counts of a uniform workload as the per-arc fault rate rises; see the
// Network method of the same name for the semantics. This free function
// builds the Network and delegates.
func DegradationSweep(g *digraph.Digraph, router Router, rates []float64, packets int, seed int64, workers int) ([]DegradationPoint, error) {
	nw, err := New(g, router, DefaultConfig())
	if err != nil {
		return nil, err
	}
	return nw.DegradationSweep(rates, packets, seed, workers)
}

// DegradationSweep runs the fault-rate sweep on this network. Rates must
// lie in [0, 1]; packets per point and the rng seed are fixed so the
// sweep is deterministic. Points are independent, so they are run by a
// pool of up to workers goroutines (workers <= 0 selects GOMAXPROCS)
// sharing this network's compiled router, distance slab and arena pool;
// results are ordered like rates regardless of scheduling.
//
// Every point offers the SAME workload — UniformRandom(n, packets, seed),
// unmixed with the point index — while the fault sample is drawn from
// (seed, pointIndex). This is intentional: holding the workload fixed
// makes the sweep a paired comparison, so the delivered fraction varies
// only with the fault draw, not with workload resampling noise. Mix the
// point index into the seed yourself if independent workloads are wanted.
func (nw *Network) DegradationSweep(rates []float64, packets int, seed int64, workers int) ([]DegradationPoint, error) {
	if packets < 1 {
		return nil, fmt.Errorf("simnet: DegradationSweep needs >= 1 packet, got %d", packets)
	}
	for _, rate := range rates {
		if rate < 0 || rate > 1 {
			return nil, fmt.Errorf("simnet: fault rate %v out of [0, 1]", rate)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rates) {
		workers = len(rates)
	}
	// Build the shared distance slab before the workers race to use it.
	_ = nw.distSlab()

	points := make([]DegradationPoint, len(rates))
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(rates) {
					return
				}
				pt, err := nw.degradationPoint(rates[idx], packets, seed, int64(idx))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				points[idx] = pt
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return nil, err
	}
	return points, nil
}

// degradationPoint runs one fault rate. The fault sample is drawn from
// (seed, pointIndex) so each point is reproducible independently of the
// worker that ran it; the workload is shared across points (paired
// comparison, see DegradationSweep).
func (nw *Network) degradationPoint(rate float64, packets int, seed, point int64) (DegradationPoint, error) {
	g := nw.g
	rng := rand.New(rand.NewSource(seed*1000003 + point))
	plan := NewFaultPlan()
	down := 0
	for u := 0; u < g.N(); u++ {
		for k := 0; k < g.OutDegree(u); k++ {
			if rng.Float64() < rate {
				plan.LinkDown(0, 0, u, k)
				down++
			}
		}
	}
	res, err := nw.RunWithFaults(UniformRandom(g.N(), packets, seed), plan, DefaultFaultConfig())
	if err != nil {
		return DegradationPoint{}, err
	}
	pt := DegradationPoint{
		FaultRate:         rate,
		ArcsDown:          down,
		Offered:           packets,
		Delivered:         res.Delivered,
		Dropped:           res.Dropped,
		DeliveredFraction: float64(res.Delivered) / float64(packets),
		MaxHops:           res.MaxHops,
		Reroutes:          res.Reroutes,
		Retries:           res.Retries,
	}
	if res.Delivered > 0 {
		pt.MeanLatency = res.MeanLatency
	}
	return pt, nil
}
