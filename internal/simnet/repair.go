package simnet

import (
	"fmt"

	"repro/internal/digraph"
)

// Incremental repair of the TableRouter's arc slab — the simnet mirror
// of debruijn.RepairSlab, operating on arc indices instead of hop
// vertices. The self-healing layer patches its epoch slabs through this
// instead of paying a full NewTableRouter rebuild per committed
// link-state event.
//
// The affected-destination test is exact: masking a dead arc (u, k)
// changes the builder's reverse BFS for destination dst only if u was
// being discovered over that very arc, which is precisely when the base
// slab records arc k for (u, dst). Unaffected destinations keep their
// rows verbatim, so the patched slab is bit-identical to what
// NewTableRouter would build on the residual digraph.

// Repair returns a TableRouter equal to NewTableRouter on the residual
// digraph of g minus the dead arcs, patching only the destinations
// whose routing tree traverses a dead arc. The receiver must be the
// slab NewTableRouter built for g; it is not modified.
func (r *TableRouter) Repair(g *digraph.Digraph, dead []Arc) (*TableRouter, error) {
	n := g.N()
	if r == nil || r.n != n {
		return nil, fmt.Errorf("simnet: Repair: router built for %d nodes, digraph has %d", routerN(r), n)
	}
	guardIndexInt32(n, "nodes")
	guardIndexInt32(g.M(), "arcs")

	fwdBase := make([]int32, n+1)
	for u := 0; u < n; u++ {
		fwdBase[u+1] = fwdBase[u] + int32(g.OutDegree(u))
	}
	deadMask := make([]bool, g.M())
	for _, a := range dead {
		if a.Tail < 0 || a.Tail >= n || a.Index < 0 || a.Index >= g.OutDegree(a.Tail) {
			return nil, fmt.Errorf("simnet: Repair: dead arc (%d#%d) out of range", a.Tail, a.Index)
		}
		deadMask[fwdBase[a.Tail]+int32(a.Index)] = true
	}

	// The slab is int8 on every graph whose out-degrees fit (the narrow
	// layout the run loop gathers from); patch whichever layout the base
	// router carries.
	narrow := r.arcs != nil
	var arcs8 []int8
	var arcs32 []int32
	if narrow {
		arcs8 = make([]int8, len(r.arcs))
		copy(arcs8, r.arcs)
	} else {
		arcs32 = make([]int32, len(r.wide))
		copy(arcs32, r.wide)
	}

	affected := make([]bool, n)
	count := 0
	for _, a := range dead {
		if g.Out(a.Tail)[a.Index] == a.Tail {
			continue // loops never carry shortest paths
		}
		if narrow {
			count += markAffected(r.arcs[a.Tail*n:(a.Tail+1)*n], int8(a.Index), affected)
		} else {
			count += markAffected(r.wide[a.Tail*n:(a.Tail+1)*n], int32(a.Index), affected)
		}
	}
	if count == 0 {
		return &TableRouter{n: n, arcs: arcs8, wide: arcs32}, nil
	}

	// Reverse CSR in NewTableRouter's order, with the forward arc index
	// (for the routing decision) and flat index (for the mask).
	revBase := make([]int32, n+1)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			revBase[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		revBase[v+1] += revBase[v]
	}
	revTail := make([]int32, g.M())
	revArc := make([]int32, g.M())
	revFlat := make([]int32, g.M())
	fill := make([]int32, n)
	for u := 0; u < n; u++ {
		for k, v := range g.Out(u) {
			slot := revBase[v] + fill[v]
			revTail[slot] = int32(u)
			revArc[slot] = int32(k)
			revFlat[slot] = fwdBase[u] + int32(k)
			fill[v]++
		}
	}

	seen := make([]int32, n)
	queue := make([]int32, 0, n)
	if narrow {
		repatchArcs(arcs8, n, affected, deadMask, revBase, revTail, revArc, revFlat, seen, queue)
	} else {
		repatchArcs(arcs32, n, affected, deadMask, revBase, revTail, revArc, revFlat, seen, queue)
	}
	return &TableRouter{n: n, arcs: arcs8, wide: arcs32}, nil
}

// markAffected marks every destination whose routing row forwards over
// dead arc index idx, returning how many were newly marked.
func markAffected[T int8 | int32](row []T, idx T, affected []bool) int {
	count := 0
	for dst, arc := range row {
		if arc == idx && !affected[dst] {
			affected[dst] = true
			count++
		}
	}
	return count
}

// repatchArcs re-runs the builder's reverse BFS for every affected
// destination over the dead-arc-masked reverse CSR, rewriting those
// destinations' columns of arcs in place. This is the per-event inner
// loop of the healing layer's table repair, so it must not allocate:
// every slab, including the BFS queue (cap ≥ n), arrives preallocated.
//
//lint:hotpath
func repatchArcs[T int8 | int32](arcs []T, n int, affected, deadMask []bool, revBase, revTail, revArc, revFlat, seen, queue []int32) {
	guardIndexInt32(n, "nodes")
	for dst := 0; dst < n; dst++ {
		if !affected[dst] {
			continue
		}
		for x := 0; x < n; x++ {
			arcs[x*n+dst] = -1
		}
		epoch := int32(dst + 1)
		seen[dst] = epoch
		queue = append(queue[:0], int32(dst))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for idx := revBase[v]; idx < revBase[v+1]; idx++ {
				if deadMask[revFlat[idx]] {
					continue
				}
				u := revTail[idx]
				if seen[u] == epoch {
					continue
				}
				seen[u] = epoch
				arcs[int(u)*n+dst] = T(revArc[idx])
				queue = append(queue, u)
			}
		}
	}
}

func routerN(r *TableRouter) int {
	if r == nil {
		return 0
	}
	return r.n
}
