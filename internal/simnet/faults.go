package simnet

import (
	"fmt"
	"sort"

	"repro/internal/digraph"
)

// Runtime fault injection. The paper's machines are built from physical
// optics — VCSELs, lenses, lenslet arrays — hardware that degrades and
// fails while the machine is running. The static fault experiments
// (delete arcs, rebuild, re-route) only show that the residual graph is
// usable; this engine models faults as *events on the running network*:
// a FaultPlan schedules link, node and lens faults at given cycles, and
// Network.RunWithFaults applies them mid-flight without rebuilding the
// digraph. A lens fault is the OTIS-specific correlated failure: one
// lens carries a whole group of beams (arcs), computed by the otis
// layer, and all of them die together.

// FaultKind classifies scheduled faults.
type FaultKind int

const (
	// FaultLink downs a single directed link (one arc of the digraph).
	FaultLink FaultKind = iota
	// FaultNode downs a node: every arc entering or leaving it, and the
	// node neither forwards nor absorbs packets while down.
	FaultNode
	// FaultLens downs a correlated arc group — the beams routed through
	// one physical lens of an OTIS layout (see otis.Layout.LensArcs).
	FaultLens
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultLink:
		return "link"
	case FaultNode:
		return "node"
	case FaultLens:
		return "lens"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Arc identifies one directed link as (tail vertex, adjacency position).
// Position — not head vertex — because the digraphs are multigraphs and
// the simulator's queues and pipelines are per-position.
type Arc struct {
	Tail  int
	Index int
}

// Fault is one scheduled failure.
type Fault struct {
	Kind FaultKind
	// Start is the first cycle at which the fault is active.
	Start int
	// Duration is the number of cycles the fault lasts; <= 0 means
	// permanent.
	Duration int
	// Arc is the failed link (FaultLink).
	Arc Arc
	// Node is the failed node (FaultNode).
	Node int
	// Lens labels the failed lens (FaultLens); informational.
	Lens int
	// Arcs is the expanded arc group of a lens fault (FaultLens).
	Arcs []Arc
}

// Permanent reports whether the fault never heals.
func (f Fault) Permanent() bool { return f.Duration <= 0 }

// String renders e.g. "link (5#1) down @12 for 30" or "lens 3 down @0 permanently".
func (f Fault) String() string {
	dur := "permanently"
	if !f.Permanent() {
		dur = fmt.Sprintf("for %d", f.Duration)
	}
	switch f.Kind {
	case FaultLink:
		return fmt.Sprintf("link (%d#%d) down @%d %s", f.Arc.Tail, f.Arc.Index, f.Start, dur)
	case FaultNode:
		return fmt.Sprintf("node %d down @%d %s", f.Node, f.Start, dur)
	case FaultLens:
		return fmt.Sprintf("lens %d (%d arcs) down @%d %s", f.Lens, len(f.Arcs), f.Start, dur)
	}
	return fmt.Sprintf("%v down @%d %s", f.Kind, f.Start, dur)
}

// FaultPlan schedules faults against a run. The zero value (and nil) is
// the empty plan. A plan built with NewFaultPlanFor validates every
// fault as it is added; a plain NewFaultPlan plan is validated when it
// is compiled against a digraph.
type FaultPlan struct {
	faults []Fault
	g      *digraph.Digraph // bound digraph for eager validation (may be nil)
	err    error            // first validation error, reported by Err and Compile
}

// NewFaultPlan returns an empty plan. Faults are validated when the
// plan is compiled (Compile reports the first invalid fault).
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// NewFaultPlanFor returns an empty plan bound to g: every builder call
// validates its fault against g immediately, and the first invalid
// fault is reported by Err (and again by Compile) with a descriptive
// error instead of surfacing mid-run. Subsequent faults after an error
// are still recorded so Err describes the first mistake, not the last.
func NewFaultPlanFor(g *digraph.Digraph) *FaultPlan { return &FaultPlan{g: g} }

// Err returns the first validation error recorded so far. Bound plans
// (NewFaultPlanFor) validate every field eagerly; unbound plans check
// only graph-independent fields (start, duration) here and defer the
// rest to Compile.
func (p *FaultPlan) Err() error {
	if p == nil {
		return nil
	}
	return p.err
}

// add records the fault, eagerly validating against the bound digraph.
func (p *FaultPlan) add(f Fault) *FaultPlan {
	p.faults = append(p.faults, f)
	if p.err == nil {
		if err := validateFault(f, p.g); err != nil {
			p.err = err
		}
	}
	return p
}

// validateFault checks one fault's fields. g may be nil (unbound plan),
// in which case only graph-independent fields are checked.
func validateFault(f Fault, g *digraph.Digraph) error {
	if f.Start < 0 {
		return fmt.Errorf("simnet: %v: start cycle %d < 0", f.Kind, f.Start)
	}
	if f.Duration < 0 {
		return fmt.Errorf("simnet: %v: duration %d < 0 (use 0 for a permanent fault)", f.Kind, f.Duration)
	}
	if g == nil {
		return nil
	}
	n := g.N()
	checkArc := func(a Arc) error {
		if a.Tail < 0 || a.Tail >= n {
			return fmt.Errorf("simnet: %v: arc tail %d out of range [0,%d)", f.Kind, a.Tail, n)
		}
		if a.Index < 0 || a.Index >= g.OutDegree(a.Tail) {
			return fmt.Errorf("simnet: %v: arc (%d#%d) out of range (node %d has %d out-arcs)",
				f.Kind, a.Tail, a.Index, a.Tail, g.OutDegree(a.Tail))
		}
		return nil
	}
	switch f.Kind {
	case FaultLink:
		return checkArc(f.Arc)
	case FaultNode:
		if f.Node < 0 || f.Node >= n {
			return fmt.Errorf("simnet: %v: node %d out of range [0,%d)", f.Kind, f.Node, n)
		}
	case FaultLens:
		if f.Lens < 0 {
			return fmt.Errorf("simnet: %v: lens %d < 0", f.Kind, f.Lens)
		}
		for _, a := range f.Arcs {
			if err := checkArc(a); err != nil {
				return fmt.Errorf("%w (lens %d)", err, f.Lens)
			}
		}
	}
	return nil
}

// LinkDown schedules the arc at (tail, index) to fail at cycle start for
// duration cycles (0: permanent).
func (p *FaultPlan) LinkDown(start, duration, tail, index int) *FaultPlan {
	return p.add(Fault{Kind: FaultLink, Start: start, Duration: duration,
		Arc: Arc{Tail: tail, Index: index}})
}

// NodeDown schedules node to fail at cycle start for duration cycles
// (0: permanent).
func (p *FaultPlan) NodeDown(start, duration, node int) *FaultPlan {
	return p.add(Fault{Kind: FaultNode, Start: start, Duration: duration, Node: node})
}

// LensDown schedules a lens fault: the given arc group (typically from
// otis.Layout.LensArcs, mapped to (tail, index) pairs) fails together at
// cycle start for duration cycles (0: permanent). lens is a label for
// reporting.
func (p *FaultPlan) LensDown(start, duration, lens int, arcs []Arc) *FaultPlan {
	group := make([]Arc, len(arcs))
	copy(group, arcs)
	return p.add(Fault{Kind: FaultLens, Start: start, Duration: duration,
		Lens: lens, Arcs: group})
}

// Faults returns the scheduled faults in insertion order.
func (p *FaultPlan) Faults() []Fault {
	if p == nil {
		return nil
	}
	out := make([]Fault, len(p.faults))
	copy(out, p.faults)
	return out
}

// span is a half-open down interval [start, end); end < 0 means forever.
type span struct {
	start, end int
}

func (s span) contains(cycle int) bool {
	return cycle >= s.start && (s.end < 0 || cycle < s.end)
}

// FaultState is a compiled FaultPlan bound to a digraph: per-arc and
// per-node down intervals, with a current-cycle cursor the run loop
// advances. It answers "is this arc/node down right now?" in O(#spans on
// that arc) and exposes a version counter for the set of *active
// permanent* faults so routers know when to recompute residual paths.
type FaultState struct {
	g         *digraph.Digraph
	arcSpans  map[Arc][]span
	nodeSpans map[int][]span
	// permStarts holds the start cycles of permanent arc faults, sorted;
	// PermanentVersion is the count of starts <= current cycle.
	permStarts []int
	cycle      int
}

// Compile validates the plan against g and expands node and lens faults
// to their arc groups: a node fault downs all out-arcs and in-arcs of
// the node, a lens fault downs its listed group.
func (p *FaultPlan) Compile(g *digraph.Digraph) (*FaultState, error) {
	st := &FaultState{
		g:         g,
		arcSpans:  map[Arc][]span{},
		nodeSpans: map[int][]span{},
		cycle:     -1,
	}
	if p == nil {
		return st, nil
	}
	if p.err != nil {
		return nil, p.err
	}
	n := g.N()
	addArc := func(a Arc, sp span) error {
		if a.Tail < 0 || a.Tail >= n || a.Index < 0 || a.Index >= g.OutDegree(a.Tail) {
			return fmt.Errorf("simnet: fault arc (%d#%d) out of range", a.Tail, a.Index)
		}
		st.arcSpans[a] = append(st.arcSpans[a], sp)
		if sp.end < 0 {
			st.permStarts = append(st.permStarts, sp.start)
		}
		return nil
	}
	for _, f := range p.faults {
		if err := validateFault(f, g); err != nil {
			return nil, err
		}
		sp := span{start: f.Start, end: -1}
		if !f.Permanent() {
			sp.end = f.Start + f.Duration
		}
		switch f.Kind {
		case FaultLink:
			if err := addArc(f.Arc, sp); err != nil {
				return nil, err
			}
		case FaultNode:
			if f.Node < 0 || f.Node >= n {
				return nil, fmt.Errorf("simnet: fault node %d out of range [0,%d)", f.Node, n)
			}
			st.nodeSpans[f.Node] = append(st.nodeSpans[f.Node], sp)
			for k := 0; k < g.OutDegree(f.Node); k++ {
				if err := addArc(Arc{Tail: f.Node, Index: k}, sp); err != nil {
					return nil, err
				}
			}
			for u := 0; u < n; u++ {
				for k, v := range g.Out(u) {
					if v == f.Node && u != f.Node {
						if err := addArc(Arc{Tail: u, Index: k}, sp); err != nil {
							return nil, err
						}
					}
				}
			}
		case FaultLens:
			for _, a := range f.Arcs {
				if err := addArc(a, sp); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("simnet: unknown fault kind %v", f.Kind)
		}
	}
	sort.Ints(st.permStarts)
	return st, nil
}

// Empty reports whether no fault is scheduled.
func (s *FaultState) Empty() bool {
	return s == nil || (len(s.arcSpans) == 0 && len(s.nodeSpans) == 0)
}

// Advance sets the current cycle.
func (s *FaultState) Advance(cycle int) { s.cycle = cycle }

// Cycle returns the current cycle.
func (s *FaultState) Cycle() int { return s.cycle }

// ArcDown reports whether the arc at (tail, index) is down at the
// current cycle.
func (s *FaultState) ArcDown(tail, index int) bool {
	if s == nil {
		return false
	}
	return s.ArcDownAt(tail, index, s.cycle)
}

// ArcDownAt reports whether the arc at (tail, index) is down at the
// given cycle.
func (s *FaultState) ArcDownAt(tail, index, cycle int) bool {
	if s == nil || len(s.arcSpans) == 0 {
		return false
	}
	for _, sp := range s.arcSpans[Arc{Tail: tail, Index: index}] {
		if sp.contains(cycle) {
			return true
		}
	}
	return false
}

// NodeDown reports whether a node fault is active on node at the current
// cycle. (Arc faults touching the node are reported by ArcDown, not
// here.)
func (s *FaultState) NodeDown(node int) bool {
	if s == nil || len(s.nodeSpans) == 0 {
		return false
	}
	for _, sp := range s.nodeSpans[node] {
		if sp.contains(s.cycle) {
			return true
		}
	}
	return false
}

// ArcPermanentlyDown reports whether a permanent fault covering the arc
// is active at the current cycle.
func (s *FaultState) ArcPermanentlyDown(tail, index int) bool {
	if s == nil || len(s.arcSpans) == 0 {
		return false
	}
	for _, sp := range s.arcSpans[Arc{Tail: tail, Index: index}] {
		if sp.end < 0 && s.cycle >= sp.start {
			return true
		}
	}
	return false
}

// PermanentVersion counts the permanent arc faults active at the current
// cycle. Routers cache residual shortest paths keyed by this version:
// it only changes when a new permanent fault activates.
func (s *FaultState) PermanentVersion() int {
	if s == nil {
		return 0
	}
	return sort.SearchInts(s.permStarts, s.cycle+1)
}
