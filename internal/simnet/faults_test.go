package simnet

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

// Failure injection: the de Bruijn machine keeps operating around faults,
// as its (d-1)-connectivity promises. Static fault surgery uses
// digraph.RemoveArc / digraph.RemoveVertex; the runtime counterpart lives
// in faults.go / faultrun.go.

func TestSingleArcFailureRerouted(t *testing.T) {
	// B(3,3) has arc connectivity 2: any single arc failure leaves all
	// (non-failed) traffic deliverable with table rerouting.
	g := debruijn.DeBruijn(3, 3)
	faulty := g.RemoveArc(5, 16) // 5 → 3·5+1 = 16
	if faulty.M() != g.M()-1 {
		t.Fatal("arc removal failed")
	}
	nw, err := New(faulty, NewTableRouter(faulty), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(UniformRandom(g.N(), 500, 80))
	if res.Dropped != 0 || res.Delivered != 500 {
		t.Fatalf("arc failure dropped traffic: %v", res)
	}
	// Paths may stretch, but only boundedly.
	if res.MaxHops > 3+2 {
		t.Errorf("max hops %d after single arc failure", res.MaxHops)
	}
}

func TestVertexFailurePartialService(t *testing.T) {
	// B(2,D) has vertex connectivity 1, so one vertex failure may
	// disconnect some pairs (the price of d = 2); traffic not involving
	// the failed region must still flow.
	g := debruijn.DeBruijn(2, 4)
	faulty := g.RemoveVertex(5)
	nw, err := New(faulty, NewTableRouter(faulty), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pkts := UniformRandom(g.N(), 400, 81)
	var filtered []Packet
	for _, p := range pkts {
		if p.Src != 5 && p.Dst != 5 {
			filtered = append(filtered, p)
		}
	}
	res := nw.Run(filtered)
	if res.Delivered+res.Dropped != len(filtered) {
		t.Fatal("packets lost without accounting")
	}
	// At degree 3 the same failure leaves everything routable.
	g3 := debruijn.DeBruijn(3, 3)
	faulty3 := g3.RemoveVertex(5)
	nw3, _ := New(faulty3, NewTableRouter(faulty3), DefaultConfig())
	pkts3 := UniformRandom(g3.N(), 400, 82)
	var filtered3 []Packet
	for _, p := range pkts3 {
		if p.Src != 5 && p.Dst != 5 {
			filtered3 = append(filtered3, p)
		}
	}
	res3 := nw3.Run(filtered3)
	if res3.Dropped != 0 {
		t.Errorf("B(3,3) minus one vertex dropped %d packets (κ = 2 promises none)", res3.Dropped)
	}
}

func TestDisjointPathsSurviveFault(t *testing.T) {
	// Menger in action: B(3,3) offers 2 arc-disjoint paths between any
	// distinct pair, so killing any single arc of one path leaves the
	// other intact.
	g := debruijn.DeBruijn(3, 3)
	paths := g.ArcDisjointPaths(2, 19)
	if len(paths) < 2 {
		t.Fatalf("expected ≥2 disjoint paths, got %d", len(paths))
	}
	victim := paths[0]
	faulty := g.RemoveArc(victim[0], victim[1])
	dist := faulty.BFSFrom(2)
	if dist[19] == digraph.Unreachable {
		t.Error("second disjoint path did not survive the fault")
	}
}
