package simnet

import (
	"math/rand"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/obs"
)

// TestPeakQueueSurfacesAgree closes the peak-queue audit (the suspected
// push/pop double count in runState.enqueue): depth recording happens
// exactly once per accepted push — the depth *after* the push, never on
// the pop side — so the three surfaces that claim to report the same
// peak must agree exactly:
//
//   - Result.MaxQueue (engine accounting),
//   - the max_queue gauge (every QueueDepth sample's running max),
//   - the per-arc peak_queue slab's maximum (per-arc running maxes).
//
// A frozen copy of the historical packet-at-a-time engine (refRun)
// recomputes the peak independently as the brute-force witness, and
// under bounded queues every per-arc peak must respect the capacity.
func TestPeakQueueSurfacesAgree(t *testing.T) {
	g := debruijn.DeBruijn(3, 4)
	n := g.N()
	tunings := []struct {
		name string
		tun  func() runTuning
	}{
		{name: "unbounded", tun: func() runTuning { return runTuning{} }},
		{name: "qcap2_hold3", tun: func() runTuning { return runTuning{qcap: 2, hold: 3} }},
	}
	for _, tc := range tunings {
		for seed := int64(1); seed <= 3; seed++ {
			nw, err := New(g, NewTableRouter(g), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 104729))
			pkts := make([]Packet, 4*n)
			for i := range pkts {
				pkts[i] = Packet{
					ID:      i,
					Src:     rng.Intn(n),
					Dst:     rng.Intn(n),
					Release: rng.Intn(n / 2),
				}
			}

			rec := obs.NewRecorder(obs.NewRegistry())
			rec.SizeArcs(int(nw.arcBase[n]))
			res := nw.run(pkts, tc.tun(), rec)

			snap := rec.Snapshot()
			gauge := snap.Gauges[obs.MetricMaxQueue]
			if snap.Arcs == nil {
				t.Fatalf("%s seed %d: snapshot has no arc section", tc.name, seed)
			}
			var slabMax int64
			for a, d := range snap.Arcs.PeakQueue {
				if d > slabMax {
					slabMax = d
				}
				if q := tc.tun().qcap; q > 0 && d > int64(q) {
					t.Fatalf("%s seed %d: arc %d peak %d exceeds capacity %d", tc.name, seed, a, d, q)
				}
			}
			if int64(res.MaxQueue) != gauge || gauge != slabMax {
				t.Fatalf("%s seed %d: peak surfaces disagree: Result.MaxQueue=%d max_queue gauge=%d slab max=%d",
					tc.name, seed, res.MaxQueue, gauge, slabMax)
			}

			// Brute-force witness: the frozen historical engine replays
			// the same workload and must see the same peak.
			nwRef, err := New(g, NewTableRouter(g), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			recRef := obs.NewRecorder(obs.NewRegistry())
			recRef.SizeArcs(int(nwRef.arcBase[n]))
			want := refRun(nwRef, pkts, tc.tun(), recRef)
			if want.MaxQueue != res.MaxQueue {
				t.Fatalf("%s seed %d: reference engine peak %d, arc-major peak %d",
					tc.name, seed, want.MaxQueue, res.MaxQueue)
			}
		}
	}
}
