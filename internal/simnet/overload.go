package simnet

import (
	"fmt"

	"repro/internal/digraph"
)

// Overload protection: admission control at injection and the
// saturation instrumentation around it. Bounded queues (Config/RunOpts
// QueueCapacity) and credit-based backpressure live in the run loops;
// this file holds the source regulator that decides which offered
// packets enter the network at all, and the sweep that measures how a
// topology degrades as offered load crosses its saturation throughput.
//
// Accounting contract: a packet refused by admission is *shed*, never
// dropped — Shed is its own bucket so Delivered + Dropped + Shed ==
// Offered stays exact and drop causes keep their in-network meaning.

// AdmissionConfig tunes WithAdmission's token-bucket source regulator.
type AdmissionConfig struct {
	// Rate is the sustained admission rate in packets per cycle for the
	// whole network (> 0). Fractional rates are honoured exactly by
	// accumulating fractional tokens.
	Rate float64
	// Burst is the token-bucket depth — how many admissions may happen
	// in one cycle after an idle period (0: max(1, ⌈Rate⌉)).
	Burst int
	// MaxDelay is how many cycles past its release a packet may wait at
	// admission before it is shed (0: 4·diameter+16). Packets younger
	// than MaxDelay wait in head-of-line release order for tokens.
	MaxDelay int
}

// admitState is the run-time token bucket of one run. Refill pauses
// while the network signals congestion (a hold-in-place happened last
// cycle), so admission tightens exactly when bounded queues are full —
// the backpressure signal propagated all the way to the sources.
type admitState struct {
	rate     float64
	burst    float64
	maxDelay int
	tokens   float64
}

// newAdmitState builds the bucket, full, with defaults resolved against
// the digraph's diameter (negative when not strongly connected).
func newAdmitState(cfg AdmissionConfig, diameter int) *admitState {
	burst := float64(cfg.Burst)
	if cfg.Burst == 0 {
		burst = cfg.Rate
		if burst < 1 {
			burst = 1
		}
	}
	maxDelay := cfg.MaxDelay
	if maxDelay == 0 {
		if diameter >= 0 {
			maxDelay = 4*diameter + 16
		} else {
			maxDelay = 64
		}
	}
	return &admitState{rate: cfg.Rate, burst: burst, maxDelay: maxDelay, tokens: burst}
}

// refill adds one cycle's tokens unless the network is congested.
func (a *admitState) refill(congested bool) {
	if congested {
		return
	}
	a.tokens += a.rate
	if a.tokens > a.burst {
		a.tokens = a.burst
	}
}

// take consumes one admission token if a whole one is available.
func (a *admitState) take() bool {
	if a.tokens < 1 {
		return false
	}
	a.tokens--
	return true
}

// SaturationRate returns the uniform-traffic saturation throughput of g
// in packets per cycle: M / meanDistance. Each delivered packet consumes
// meanDistance arc-cycles on average and the network supplies M
// arc-cycles per cycle (unit-bandwidth links), so offered loads beyond
// this rate cannot all be delivered no matter how packets are buffered.
// ok is false when g is not strongly connected.
func SaturationRate(g *digraph.Digraph) (float64, bool) {
	mean, ok := g.MeanDistance()
	if !ok || mean <= 0 {
		return 0, false
	}
	return float64(g.M()) / mean, true
}

// SaturationPoint is one load multiple of a saturation sweep.
type SaturationPoint struct {
	// Multiple is the offered load as a multiple of the saturation rate.
	Multiple float64
	// Rate is the offered load in packets per cycle.
	Rate float64
	// Offered, Delivered, Dropped and Shed account every packet:
	// Offered == Delivered + Dropped + Shed on a completed run.
	Offered, Delivered, Dropped, Shed int
	// DeliveredFraction is Delivered over Offered.
	DeliveredFraction float64
	// MeanLatency is the mean delivery latency in cycles.
	MeanLatency float64
	// MaxQueue is the deepest any queue got (≤ QueueCapacity when the
	// run was bounded).
	MaxQueue int
	// PeakResident is the most packets simultaneously buffered in the
	// network — flat across multiples when queues are bounded.
	PeakResident int
	// Holds counts hold-in-place backpressure events.
	Holds int
	// Cycles is the last delivery cycle.
	Cycles int
}

// String renders one sweep row.
func (p SaturationPoint) String() string {
	return fmt.Sprintf("%gx (%.1f pkt/cyc): delivered %.3f latency %.1f shed %d dropped %d maxQueue %d resident %d holds %d",
		p.Multiple, p.Rate, p.DeliveredFraction, p.MeanLatency, p.Shed, p.Dropped, p.MaxQueue, p.PeakResident, p.Holds)
}

// SaturationSweep offers fixed-rate uniform traffic (RatedLoad) at each
// multiple of the network's saturation rate and reports how delivery
// degrades. The options are applied to every point — typically
// WithQueueCapacity to bound memory and WithAdmission to shed at the
// sources; the same seed is used at every multiple so points differ
// only in release schedule density.
func (nw *Network) SaturationSweep(multiples []float64, packets int, seed int64, opts ...RunOption) ([]SaturationPoint, error) {
	sat, ok := SaturationRate(nw.g)
	if !ok {
		return nil, fmt.Errorf("simnet: saturation sweep needs a strongly connected digraph")
	}
	points := make([]SaturationPoint, 0, len(multiples))
	for _, m := range multiples {
		if m <= 0 {
			return nil, fmt.Errorf("simnet: load multiple %v must be positive", m)
		}
		rate := m * sat
		runOpts := make([]RunOption, 0, len(opts)+1)
		runOpts = append(runOpts, opts...)
		runOpts = append(runOpts, WithSeed(seed))
		rep, err := nw.RunOpts(RatedLoad(packets, rate), runOpts...)
		if err != nil {
			return nil, err
		}
		r := rep.Result
		pt := SaturationPoint{
			Multiple:     m,
			Rate:         rate,
			Offered:      packets,
			Delivered:    r.Delivered,
			Dropped:      r.Dropped,
			Shed:         r.Shed,
			MeanLatency:  r.MeanLatency,
			MaxQueue:     r.MaxQueue,
			PeakResident: r.PeakResident,
			Holds:        r.Holds,
			Cycles:       r.Cycles,
		}
		if packets > 0 {
			pt.DeliveredFraction = float64(r.Delivered) / float64(packets)
		}
		points = append(points, pt)
	}
	return points, nil
}
