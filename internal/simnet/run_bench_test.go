package simnet

import (
	"fmt"
	"testing"

	"repro/internal/debruijn"
)

// BenchmarkPermutationRun is the package-local twin of the cmd/bench
// permutation entries: one seeded permutation per op on a shared
// Network (arena warm), uninstrumented — the delivered-packets/sec
// hot path this PR's arc-major kernel targets.
func BenchmarkPermutationRun(b *testing.B) {
	for _, sz := range []struct{ d, D int }{{3, 5}, {3, 6}, {3, 7}} {
		b.Run(fmt.Sprintf("B(%d,%d)", sz.d, sz.D), func(b *testing.B) {
			g := debruijn.DeBruijn(sz.d, sz.D)
			nw, err := New(g, NewTableRouter(g), DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			pkts := Permutation(g.N(), 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := nw.Run(pkts)
				if res.Delivered == 0 {
					b.Fatal("nothing delivered")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(g.N()), "ns/pkt")
		})
	}
}

// BenchmarkReferencePermutationRun runs the same workloads through the
// frozen packet-at-a-time engine (refRun, the equivalence oracle in
// engine_reference_test.go), so the arc-major kernel's speedup is
// measurable on one machine instead of compared across commits.
func BenchmarkReferencePermutationRun(b *testing.B) {
	for _, sz := range []struct{ d, D int }{{3, 5}, {3, 6}, {3, 7}} {
		b.Run(fmt.Sprintf("B(%d,%d)", sz.d, sz.D), func(b *testing.B) {
			g := debruijn.DeBruijn(sz.d, sz.D)
			nw, err := New(g, NewTableRouter(g), DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			pkts := Permutation(g.N(), 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := refRun(nw, pkts, runTuning{}, nil)
				if res.Delivered == 0 {
					b.Fatal("nothing delivered")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(g.N()), "ns/pkt")
		})
	}
}
