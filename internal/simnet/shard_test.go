package simnet

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/debruijn"
)

// stripPackets returns r with the packet table detached, for asserting
// aggregate equality separately from the (large) per-packet state.
func resultsEqual(t *testing.T, label string, want, got Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		wp, gp := want, got
		wp.Packets, gp.Packets = nil, nil
		if !reflect.DeepEqual(wp, gp) {
			t.Fatalf("%s: aggregate mismatch\nsequential: %+v\nsharded:    %+v", label, wp, gp)
		}
		for i := range want.Packets {
			if want.Packets[i] != got.Packets[i] {
				t.Fatalf("%s: packet %d mismatch: sequential %+v, sharded %+v",
					label, i, want.Packets[i], got.Packets[i])
			}
		}
		t.Fatalf("%s: results differ", label)
	}
}

// TestShardRunMatchesSequential is the sharded engine's equivalence
// gate: for a matrix of topologies, routing modes, workloads, hop
// latencies and shard counts, shardRun must reproduce the sequential
// arc-major kernel's Result exactly — every aggregate counter,
// MaxQueue/HotNode tie-breaks, PeakResident, and the full per-packet
// delivery table.
func TestShardRunMatchesSequential(t *testing.T) {
	topos := []struct {
		name    string
		d, D    int
		routing RoutingMode
	}{
		{"B(2,5)/table", 2, 5, TableRouting},
		{"B(2,5)/shift", 2, 5, ShiftRouting},
		{"B(3,4)/table", 3, 4, TableRouting},
		{"B(3,4)/shift", 3, 4, ShiftRouting},
		{"B(2,8)/shift", 2, 8, ShiftRouting},
		{"B(4,3)/shift", 4, 3, ShiftRouting},
	}
	workloads := []struct {
		name string
		w    func(n int) []Packet
	}{
		{"permutation", func(n int) []Packet { return Permutation(n, 11) }},
		{"uniform", func(n int) []Packet { return UniformRandom(n, 4*n, 7) }},
		{"poisson", func(n int) []Packet { return PoissonArrivals(n, 2*n, 0.5, 3) }},
		{"broadcast", func(n int) []Packet { return Broadcast(n, 1) }},
	}
	for _, tp := range topos {
		g := debruijn.DeBruijn(tp.d, tp.D)
		nw, err := NewNetwork(g, WithRouting(tp.routing))
		if err != nil {
			t.Fatalf("%s: NewNetwork: %v", tp.name, err)
		}
		for _, wl := range workloads {
			pkts := wl.w(g.N())
			want := nw.run(pkts, nw.baseTuning(0), nil)
			for _, shards := range []int{1, 2, 3, 4, 7, 8} {
				if shards > g.N() {
					continue
				}
				got := nw.shardRun(pkts, nw.baseTuning(0), shards, shardWorkers(shards))
				resultsEqual(t, tp.name+"/"+wl.name+"/shards="+itoa(shards), want, got)
			}
		}
	}
}

// TestShardRunMatchesSequentialHopLatency covers multi-entry pipes
// (HopLatency > 1) and a custom interface router, the two paths the
// main matrix leaves thin.
func TestShardRunMatchesSequentialHopLatency(t *testing.T) {
	g := debruijn.DeBruijn(3, 3)
	for _, hop := range []int{2, 3} {
		nw, err := NewNetwork(g, WithHopLatency(hop))
		if err != nil {
			t.Fatal(err)
		}
		pkts := UniformRandom(g.N(), 5*g.N(), 13)
		want := nw.run(pkts, nw.baseTuning(0), nil)
		for _, shards := range []int{2, 5} {
			got := nw.shardRun(pkts, nw.baseTuning(0), shards, shardWorkers(shards))
			resultsEqual(t, "hop="+itoa(hop)+"/shards="+itoa(shards), want, got)
		}
	}

	// Custom router: interface dispatch inside the shard phases.
	custom, err := NewNetwork(g, WithRouter(opaqueRouter{NewTableRouter(g)}))
	if err != nil {
		t.Fatal(err)
	}
	pkts := Permutation(g.N(), 5)
	want := custom.run(pkts, custom.baseTuning(0), nil)
	got := custom.shardRun(pkts, custom.baseTuning(0), 4, shardWorkers(4))
	resultsEqual(t, "customRouter/shards=4", want, got)
}

// opaqueRouter wraps a Router so the engines cannot devirtualize it.
type opaqueRouter struct{ r Router }

func (r opaqueRouter) NextArc(at, dst int) int { return r.r.NextArc(at, dst) }

// TestShardRunTruncation pins budget-truncated equivalence: a cycle
// budget too small to finish must leave the same partial delivery state
// under both engines.
func TestShardRunTruncation(t *testing.T) {
	g := debruijn.DeBruijn(2, 6)
	nw, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	pkts := UniformRandom(g.N(), 8*g.N(), 9)
	tun := nw.baseTuning(5) // 5 cycles: most packets still in flight
	want := nw.run(pkts, tun, nil)
	for _, shards := range []int{2, 4} {
		got := nw.shardRun(pkts, tun, shards, shardWorkers(shards))
		resultsEqual(t, "truncated/shards="+itoa(shards), want, got)
	}
	if want.Delivered+want.Dropped == len(pkts) {
		t.Fatalf("truncation test did not truncate: all %d packets settled", len(pkts))
	}
}

// TestShardWorkerCountDeterminism is the worker-count matrix: the same
// seeded workload under 1, 2, 4 and 8 workers (forced past GOMAXPROCS —
// the barriers interleave on however many P's exist) must produce
// DeepEqual results, twice over (the double-run catches state leaking
// between runs through the pooled engine).
func TestShardWorkerCountDeterminism(t *testing.T) {
	g := debruijn.DeBruijn(3, 4)
	nw, err := NewNetwork(g, WithRouting(ShiftRouting))
	if err != nil {
		t.Fatal(err)
	}
	pkts := UniformRandom(g.N(), 6*g.N(), 21)
	want := nw.run(pkts, nw.baseTuning(0), nil)
	for _, workers := range []int{1, 2, 4, 8} {
		for rerun := 0; rerun < 2; rerun++ {
			got := nw.shardRun(pkts, nw.baseTuning(0), 8, workers)
			resultsEqual(t, "workers="+itoa(workers)+"/rerun="+itoa(rerun), want, got)
		}
	}
}

// TestShardFaultRunsStayDeterministic is the faults-on half of the
// worker-count matrix: WithShards combined with WithFaults falls back
// to the sequential fault engine (documented on WithShards), so any
// shard count must reproduce the no-shards fault run exactly.
func TestShardFaultRunsStayDeterministic(t *testing.T) {
	g := debruijn.DeBruijn(3, 3)
	nw, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlanFor(g).LinkDown(2, 10, 1, 0).NodeDown(5, 8, 4)
	base, err := nw.RunOpts(UniformLoad(2*g.N()), WithSeed(3), WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		rep, err := nw.RunOpts(UniformLoad(2*g.N()), WithSeed(3), WithFaults(plan), WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if want := shards > 1; rep.ShardFallback != want {
			t.Fatalf("fault run with %d shards: ShardFallback = %v, want %v", shards, rep.ShardFallback, want)
		}
		rep.ShardFallback = false // the flag is the only allowed divergence
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("fault run with %d shards diverged from the sequential fault run", shards)
		}
	}
}

// TestWithShardsDispatch pins the RunOpts dispatch rules: sharding
// engages for plain runs (network default or per-run), per-run
// overrides the network default, and instrumented runs fall back
// sequentially with identical results.
func TestWithShardsDispatch(t *testing.T) {
	g := debruijn.DeBruijn(2, 6)
	plain, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := plain.RunOpts(PermutationLoad(), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}

	// Network-wide default via NewNetwork(WithShards) + deprecated Run.
	sharded, err := NewNetwork(g, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := sharded.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	pkts := Permutation(g.N(), 2)
	if got := sharded.Run(pkts); !reflect.DeepEqual(seq.Result, got) {
		t.Fatalf("Run on a WithShards(4) network diverged from the sequential result")
	}

	// Per-run option on a plain network.
	rep, err := plain.RunOpts(PermutationLoad(), WithSeed(2), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, rep) {
		t.Fatalf("per-run WithShards(4) diverged from the sequential result")
	}

	// Per-run override of the network default.
	rep, err = sharded.RunOpts(PermutationLoad(), WithSeed(2), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, rep) {
		t.Fatalf("WithShards(1) override diverged from the sequential result")
	}
}

// TestWithShardsValidation is the eager-validation table for the shard
// options.
func TestWithShardsValidation(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	nw, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"zero shards", func() error {
			_, err := nw.RunOpts(PermutationLoad(), WithShards(0))
			return err
		}},
		{"negative shards", func() error {
			_, err := nw.RunOpts(PermutationLoad(), WithShards(-3))
			return err
		}},
		{"shards beyond nodes (run)", func() error {
			_, err := nw.RunOpts(PermutationLoad(), WithShards(g.N()+1))
			return err
		}},
		{"duplicate shards", func() error {
			_, err := nw.RunOpts(PermutationLoad(), WithShards(2), WithShards(4))
			return err
		}},
		{"shards beyond nodes (network)", func() error {
			_, err := NewNetwork(g, WithShards(g.N()+1))
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.run()
		var oe *OptionError
		if err == nil || !errors.As(err, &oe) {
			t.Fatalf("%s: want *OptionError, got %v", tc.name, err)
		}
		if oe.Option != "WithShards" {
			t.Fatalf("%s: error names %q, want WithShards", tc.name, oe.Option)
		}
	}
}

// itoa is strconv.Itoa for the tiny label ints here, avoiding the
// import in every table test.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
