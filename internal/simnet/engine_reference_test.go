package simnet

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/obs"
)

// The reference engine: a frozen copy of the packet-at-a-time run loop
// the arc-major SoA kernel replaced, kept as a differential oracle. It
// allocates fresh scratch instead of using the arena (it only runs in
// tests) but takes every decision — routing, phase ordering, hold and
// drop accounting, recording — exactly as the historical engine did, so
// reflect.DeepEqual(refRun(...), nw.run(...)) proves the kernels are
// observably identical, packet by packet and counter by counter.

type refRunState struct {
	nw       *Network
	pkts     []Packet
	queues   []fifo
	res      *Result
	rec      *obs.Recorder
	qcap     int
	resident int
}

func (rs *refRunState) enter() {
	rs.resident++
	if rs.resident > rs.res.PeakResident {
		rs.res.PeakResident = rs.resident
	}
}

func (rs *refRunState) leave() { rs.resident-- }

func (rs *refRunState) enqueue(at, pkt int) enqStatus {
	arc := rs.nw.router.NextArc(at, rs.pkts[pkt].Dst)
	if arc < 0 {
		rs.res.Dropped++
		if rs.rec != nil {
			rs.rec.Drop(obs.DropNoRoute)
		}
		return enqNoRoute
	}
	flat := rs.nw.arcBase[at] + int32(arc)
	q := &rs.queues[flat]
	if rs.qcap > 0 && q.depth() >= rs.qcap {
		return enqFull
	}
	q.push(int32(pkt))
	depth := q.depth()
	if depth > rs.res.MaxQueue {
		rs.res.MaxQueue = depth
		rs.res.HotNode = at
	}
	if rs.rec != nil {
		rs.rec.QueueDepth(int(flat), depth)
	}
	return enqOK
}

func (rs *refRunState) holdOrDrop(meta []pktMeta, pkt, budget int) bool {
	meta[pkt].holds++
	if meta[pkt].holds > budget {
		rs.res.Dropped++
		rs.res.DroppedQueueFull++
		if rs.rec != nil {
			rs.rec.Drop(obs.DropQueueFull)
		}
		return false
	}
	rs.res.Holds++
	if rs.rec != nil {
		rs.rec.Hold(rs.qcap)
	}
	return true
}

// refRun is the frozen packet-at-a-time engine (historical Network.run).
func refRun(nw *Network, packets []Packet, tun runTuning, rec *obs.Recorder) Result {
	guardIndexInt32(len(packets), "packets")
	pkts := make([]Packet, len(packets))
	copy(pkts, packets)
	for i := range pkts {
		pkts[i].Delivered = -1
		pkts[i].Hops = 0
	}

	n := nw.g.N()
	m := int(nw.arcBase[n])
	queues := make([]fifo, m)
	pipes := make([][]inflight, m)

	maxCycles := tun.budget
	if maxCycles == 0 {
		maxCycles = nw.cfg.MaxCycles
	}
	if maxCycles == 0 {
		maxCycles = nw.defaultBudget(len(pkts), nw.cfg.HopLatency)
		if tun.admit != nil {
			maxCycles += int(float64(len(pkts))/tun.admit.rate) + tun.admit.maxDelay
		}
	}

	var meta []pktMeta
	if tun.qcap > 0 {
		meta = make([]pktMeta, len(pkts))
	}
	var holdq []int32
	credits := 0
	if tun.qcap > 0 {
		credits = tun.qcap + nw.cfg.HopLatency
	}

	res := Result{}
	remaining := 0
	var order []int32
	for i := range pkts {
		if pkts[i].Src == pkts[i].Dst {
			pkts[i].Delivered = pkts[i].Release
			res.Delivered++
			continue
		}
		if nw.router.NextArc(pkts[i].Src, pkts[i].Dst) < 0 {
			res.Dropped++
			if rec != nil {
				rec.Drop(obs.DropNoRoute)
			}
			continue
		}
		order = append(order, int32(i))
		remaining++
	}
	sortByRelease(order, pkts)
	cursor := 0

	rs := refRunState{nw: nw, pkts: pkts, queues: queues, res: &res, rec: rec, qcap: tun.qcap}
	admit := tun.admit
	heldLast := false

	for cycle := 0; remaining > 0 && cycle <= maxCycles; cycle++ {
		holdsBefore := res.Holds
		if admit != nil {
			admit.refill(heldLast)
		}

		if len(holdq) > 0 {
			nh := holdq[:0]
			for _, i32 := range holdq {
				i := int(i32)
				switch rs.enqueue(pkts[i].Src, i) {
				case enqOK:
					rs.enter()
				case enqNoRoute:
					remaining--
				case enqFull:
					if !rs.holdOrDrop(meta, i, tun.hold) {
						remaining--
						continue
					}
					nh = append(nh, i32)
				}
			}
			holdq = nh
		}
		for cursor < len(order) && pkts[order[cursor]].Release <= cycle {
			i := int(order[cursor])
			if admit != nil {
				if cycle-pkts[i].Release > admit.maxDelay {
					cursor++
					res.Shed++
					if rec != nil {
						rec.Shed()
					}
					remaining--
					continue
				}
				if !admit.take() {
					break
				}
			}
			cursor++
			switch rs.enqueue(pkts[i].Src, i) {
			case enqOK:
				rs.enter()
			case enqNoRoute:
				remaining--
			case enqFull:
				if !rs.holdOrDrop(meta, i, tun.hold) {
					remaining--
					continue
				}
				holdq = append(holdq, int32(i))
			}
		}

		for u := 0; u < n; u++ {
			out := nw.g.Out(u)
			lo, hi := nw.arcBase[u], nw.arcBase[u+1]
			for a := lo; a < hi; a++ {
				pipe := pipes[a]
				keep := pipe[:0]
				for _, fl := range pipe {
					if fl.ready > cycle {
						keep = append(keep, fl)
						continue
					}
					v := out[a-lo]
					p := &pkts[fl.pkt]
					if v == p.Dst {
						p.Hops++
						if rec != nil {
							rec.ArcTraverse(int(a))
						}
						p.Delivered = cycle
						res.Delivered++
						remaining--
						rs.leave()
						if cycle > res.Cycles {
							res.Cycles = cycle
						}
						if rec != nil {
							rec.Deliver(cycle-p.Release, p.Hops)
						}
						continue
					}
					switch rs.enqueue(v, fl.pkt) {
					case enqOK:
						p.Hops++
						if rec != nil {
							rec.ArcTraverse(int(a))
						}
					case enqNoRoute:
						p.Hops++
						if rec != nil {
							rec.ArcTraverse(int(a))
						}
						remaining--
						rs.leave()
					case enqFull:
						if !rs.holdOrDrop(meta, fl.pkt, tun.hold) {
							remaining--
							rs.leave()
							continue
						}
						keep = append(keep, inflight{pkt: fl.pkt, ready: cycle + 1})
					}
				}
				pipes[a] = keep
			}
		}

		for a := range queues {
			q := &queues[a]
			if q.depth() == 0 {
				continue
			}
			if credits > 0 && len(pipes[a]) >= credits {
				continue
			}
			pipes[a] = append(pipes[a], inflight{
				pkt:   int(q.pop()),
				ready: cycle + nw.cfg.HopLatency,
			})
		}

		heldLast = res.Holds > holdsBefore
	}

	latencySum := 0
	for i := range pkts {
		p := pkts[i]
		if p.Delivered < 0 {
			continue
		}
		res.TotalHops += p.Hops
		if p.Hops > res.MaxHops {
			res.MaxHops = p.Hops
		}
		latencySum += p.Delivered - p.Release
		res.TotalWait += (p.Delivered - p.Release) - p.Hops*nw.cfg.HopLatency
	}
	if res.Delivered > 0 {
		res.MeanLatency = float64(latencySum) / float64(res.Delivered)
		res.MeanHops = float64(res.TotalHops) / float64(res.Delivered)
	}
	res.Packets = pkts
	return res
}

// TestArcMajorKernelMatchesReference drives both engines over a matrix
// of topologies, routers, workloads and overload tunings and requires
// reflect.DeepEqual results and byte-identical OBS_run/v1 documents.
func TestArcMajorKernelMatchesReference(t *testing.T) {
	type netCase struct {
		name   string
		build  func() (*Network, *Network, error)
		n      int
		cycles int
	}
	mkDB := func(d, D int, table bool, cfg Config) func() (*Network, *Network, error) {
		return func() (*Network, *Network, error) {
			g := debruijn.DeBruijn(d, D)
			var r Router
			if table {
				r = NewTableRouter(g)
			} else {
				r = NewDeBruijnRouter(d, D)
			}
			a, err := New(g, r, cfg)
			if err != nil {
				return nil, nil, err
			}
			b, err := New(g, r, cfg)
			return a, b, err
		}
	}
	nets := []netCase{
		{name: "B(2,5)_table", build: mkDB(2, 5, true, DefaultConfig())},
		{name: "B(3,3)_word", build: mkDB(3, 3, false, DefaultConfig())},
		{name: "B(2,4)_lat3", build: mkDB(2, 4, true, Config{HopLatency: 3})},
		{name: "B(2,4)_trunc", build: mkDB(2, 4, true, Config{HopLatency: 1, MaxCycles: 6})},
	}
	tunings := []struct {
		name string
		tun  func() runTuning
	}{
		{name: "unbounded", tun: func() runTuning { return runTuning{} }},
		{name: "qcap1", tun: func() runTuning { return runTuning{qcap: 1}.withDefaults() }},
		{name: "qcap2_hold3", tun: func() runTuning { return runTuning{qcap: 2, hold: 3} }},
		{name: "qcap1_admit", tun: func() runTuning {
			return runTuning{qcap: 1, hold: 2, admit: &admitState{rate: 3, burst: 2, maxDelay: 8, tokens: 2}}
		}},
	}

	for _, nc := range nets {
		nwRef, nwNew, err := nc.build()
		if err != nil {
			t.Fatal(err)
		}
		n := nwRef.g.N()
		for _, tc := range tunings {
			for seed := int64(1); seed <= 4; seed++ {
				rng := rand.New(rand.NewSource(seed * 7919))
				pkts := make([]Packet, 3*n)
				for i := range pkts {
					pkts[i] = Packet{
						ID:      i,
						Src:     rng.Intn(n),
						Dst:     rng.Intn(n), // self-traffic included on purpose
						Release: rng.Intn(2 * n),
					}
				}

				recRef := obs.NewRecorder(obs.NewRegistry())
				recNew := obs.NewRecorder(obs.NewRegistry())
				recRef.SizeArcs(int(nwRef.arcBase[n]))
				recNew.SizeArcs(int(nwNew.arcBase[n]))

				// admitState is stateful: give each engine its own copy.
				tunRef, tunNew := tc.tun(), tc.tun()
				want := refRun(nwRef, pkts, tunRef, recRef)
				got := nwNew.run(pkts, tunNew, recNew)

				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s/%s seed %d: results diverge\nref: %+v\nnew: %+v",
						nc.name, tc.name, seed, trimPackets(want), trimPackets(got))
				}
				docRef, err := recRef.Snapshot().MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				docNew, err := recNew.Snapshot().MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				// The reference engine allocates fresh scratch instead of
				// using the arena pool, so only the arena reuse counters
				// may legitimately differ.
				if stripArenaLines(string(docRef)) != stripArenaLines(string(docNew)) {
					t.Fatalf("%s/%s seed %d: OBS documents diverge\nref:\n%s\nnew:\n%s",
						nc.name, tc.name, seed, docRef, docNew)
				}

				// Same inputs without recorders: on table-routed unbounded
				// nets this exercises the lean fused arrival path, which
				// only engages when rec == nil.
				wantLean := refRun(nwRef, pkts, tc.tun(), nil)
				gotLean := nwNew.run(pkts, tc.tun(), nil)
				if !reflect.DeepEqual(wantLean, gotLean) {
					t.Fatalf("%s/%s seed %d (uninstrumented): results diverge\nref: %+v\nnew: %+v",
						nc.name, tc.name, seed, trimPackets(wantLean), trimPackets(gotLean))
				}
			}
		}
	}
}

// trimPackets drops the packet table from a Result for readable failure
// output (DeepEqual still compared it).
func trimPackets(r Result) Result {
	r.Packets = nil
	return r
}

// stripArenaLines removes the arena_reused/arena_allocated counter lines
// from a rendered OBS document.
func stripArenaLines(doc string) string {
	var sb strings.Builder
	for _, line := range strings.Split(doc, "\n") {
		if strings.Contains(line, "arena_") {
			continue
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}
