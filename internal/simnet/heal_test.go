package simnet

import (
	"testing"

	"repro/internal/debruijn"
)

// The self-healing claim (CLAIM SELF-HEAL): for every single permanent
// arc fault of B(3, 3), a network with no FaultPlan visibility — nodes
// learn of the fault only by failed transmissions, spread what they
// learned by gossip, and patch their slabs incrementally — converges,
// within bounded cycles, to the same residual delivery set as the
// omniscient FaultAwareRouter. B(3, 3) has λ = d − 1 = 2 arc-disjoint
// paths per pair, so every single-arc residual is strongly connected
// and the omniscient delivery set is all pairs; the self-healed network
// must reach the same.

func allPairsWorkload(n int) []Packet {
	var pkts []Packet
	id := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			pkts = append(pkts, Packet{ID: id, Src: s, Dst: d})
			id++
		}
	}
	return pkts
}

func TestSelfHealingMatchesOmniscientEverySingleArcFaultB33(t *testing.T) {
	g := debruijn.DeBruijn(3, 3)
	n := g.N()
	base := NewTableRouter(g)
	pkts := allPairsWorkload(n)
	// Bound on convergence: detection needs traffic to reach the tail
	// and fail SuspectThreshold times, dissemination needs one flood
	// (≤ diameter rounds on the residual); 256 cycles is generous for a
	// 27-node diameter-3 digraph and fails loudly if healing stalls.
	const convergenceBound = 256

	for tail := 0; tail < n; tail++ {
		for k := 0; k < g.OutDegree(tail); k++ {
			plan := NewFaultPlanFor(g).LinkDown(0, 0, tail, k)
			if err := plan.Err(); err != nil {
				t.Fatal(err)
			}
			nw, err := New(g, NewTableRouter(g), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			session, err := nw.SelfHeal(plan, HealConfig{})
			if err != nil {
				t.Fatal(err)
			}

			// Wave 1: all-pairs traffic discovers the fault the hard way.
			res1, err := session.Run(pkts)
			if err != nil {
				t.Fatalf("arc (%d#%d) wave 1: %v", tail, k, err)
			}
			if res1.Delivered+res1.Dropped != len(pkts) {
				t.Fatalf("arc (%d#%d) wave 1: delivered %d + dropped %d != offered %d",
					tail, k, res1.Delivered, res1.Dropped, len(pkts))
			}
			if !res1.Converged {
				t.Fatalf("arc (%d#%d): not converged after wave 1: %v", tail, k, res1)
			}
			if res1.ConvergedCycle > convergenceBound {
				t.Fatalf("arc (%d#%d): converged at cycle %d > bound %d", tail, k, res1.ConvergedCycle, convergenceBound)
			}
			loop := g.Out(tail)[k] == tail
			used := false
			for dst := 0; dst < n; dst++ {
				if base.NextArc(tail, dst) == k {
					used = true
					break
				}
			}
			if loop && res1.FinalEpoch != 0 {
				t.Fatalf("loop arc (%d#%d): committed %d events, want 0 (loops carry no traffic)", tail, k, res1.FinalEpoch)
			}
			if used && !loop && (res1.FinalEpoch < 1 || res1.Detections < 1) {
				t.Fatalf("arc (%d#%d) is on the base routing tree but was never detected: %v", tail, k, res1)
			}

			// Wave 2: the converged network must deliver the omniscient
			// residual delivery set — all pairs, since λ = 2 keeps every
			// single-arc residual strongly connected.
			res2, err := session.Run(pkts)
			if err != nil {
				t.Fatalf("arc (%d#%d) wave 2: %v", tail, k, err)
			}
			if res2.Dropped != 0 {
				t.Fatalf("arc (%d#%d) wave 2: %d drops after convergence, want 0: %v", tail, k, res2.Dropped, res2)
			}
			if res2.Nacks != 0 {
				t.Fatalf("arc (%d#%d) wave 2: %d NACKs after convergence, want 0 (no node should attempt the dead arc)", tail, k, res2.Nacks)
			}

			// The converged slab must be the omniscient one: the final
			// epoch's repaired router equals a from-scratch build on the
			// residual digraph, entry for entry.
			if res2.FinalEpoch > 0 {
				healed := session.heal.routerFor(res2.FinalEpoch, nil)
				repairedEqualsScratch(t, g, healed, session.BelievedDown())
			}
		}
	}
}

// TestSelfHealingOmniscientBaseline pins the comparison target: the
// omniscient fault-aware run on the same single-fault plans also
// delivers every pair, so the claim test above really is an equivalence
// and not two different failure modes.
func TestSelfHealingOmniscientBaseline(t *testing.T) {
	g := debruijn.DeBruijn(3, 3)
	pkts := allPairsWorkload(g.N())
	for _, arc := range []Arc{{Tail: 1, Index: 0}, {Tail: 14, Index: 2}} {
		plan := NewFaultPlanFor(g).LinkDown(0, 0, arc.Tail, arc.Index)
		nw, err := New(g, NewTableRouter(g), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.RunWithFaults(pkts, plan, DefaultFaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Dropped != 0 {
			t.Fatalf("omniscient run dropped %d under single fault %v", res.Dropped, arc)
		}
	}
}

// TestSelfHealingTransientRecovery: a transient fault is detected,
// quarantined in belief, and then probed back to life — the session
// ends with an empty believed-down set and both a down and an up event
// committed.
func TestSelfHealingTransientRecovery(t *testing.T) {
	g := debruijn.DeBruijn(3, 3)
	base := NewTableRouter(g)
	// Pick an arc the base routing actually uses so it gets detected.
	var fault Arc
found:
	for u := 0; u < g.N(); u++ {
		for k := 0; k < g.OutDegree(u); k++ {
			if g.Out(u)[k] == u {
				continue
			}
			for dst := 0; dst < g.N(); dst++ {
				if base.NextArc(u, dst) == k {
					fault = Arc{Tail: u, Index: k}
					break found
				}
			}
		}
	}
	plan := NewFaultPlanFor(g).LinkDown(0, 60, fault.Tail, fault.Index)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	session, err := nw.SelfHeal(plan, HealConfig{ProbeInterval: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Spread releases past the fault window so the session keeps running
	// after the arc heals and the recovery probe fires.
	var pkts []Packet
	id := 0
	for wave := 0; wave < 30; wave++ {
		for s := 0; s < g.N(); s += 5 {
			pkts = append(pkts, Packet{ID: id, Src: s, Dst: (s + 13) % g.N(), Release: wave * 4})
			id++
		}
	}
	res, err := session.Run(pkts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Dropped != len(pkts) {
		t.Fatalf("delivered %d + dropped %d != offered %d", res.Delivered, res.Dropped, len(pkts))
	}
	if res.Detections < 1 {
		t.Fatalf("transient fault never detected: %v", res)
	}
	if res.EventsCommitted < 2 {
		t.Fatalf("expected a down and an up event, got %d: %v", res.EventsCommitted, res)
	}
	if res.Probes < 1 {
		t.Fatalf("no recovery probes sent: %v", res)
	}
	if got := session.BelievedDown(); len(got) != 0 {
		t.Fatalf("believed-down set %v after recovery, want empty", got)
	}
}

// TestSelfHealingTruncatedRunAccounting: the Delivered + Dropped ==
// Offered invariant survives a run cut short by MaxCycles.
func TestSelfHealingTruncatedRunAccounting(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	plan := NewFaultPlanFor(g).LinkDown(0, 0, 1, 0)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	session, err := nw.SelfHeal(plan, HealConfig{FaultConfig: FaultConfig{MaxCycles: 3}})
	if err != nil {
		t.Fatal(err)
	}
	pkts := allPairsWorkload(g.N())
	// Some releases beyond the horizon exercise the DroppedHorizon path.
	for i := range pkts {
		if i%3 == 0 {
			pkts[i].Release = 50
		}
	}
	res, err := session.Run(pkts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Dropped != len(pkts) {
		t.Fatalf("delivered %d + dropped %d != offered %d (%v)", res.Delivered, res.Dropped, len(pkts), res)
	}
	if res.Stuck == 0 && res.DroppedHorizon == 0 {
		t.Fatalf("truncated run produced no stuck/horizon drops: %v", res)
	}
}

// quarMonitor is a scripted HealMonitor: it quarantines one arc at a
// given cycle and records every ArcOK for it afterwards.
type quarMonitor struct {
	arc     Arc
	at      int
	applied bool
	okAfter int
}

func (m *quarMonitor) ArcFailed(cycle int, arc Arc) {}
func (m *quarMonitor) ArcOK(cycle int, arc Arc) {
	if m.applied && arc == m.arc {
		m.okAfter++
	}
}
func (m *quarMonitor) Tick(cycle int) (quarantine, release, probe []Arc) {
	if !m.applied && cycle >= m.at {
		m.applied = true
		return []Arc{m.arc}, nil, nil
	}
	return nil, nil, nil
}
func (m *quarMonitor) ProbeResult(cycle int, arc Arc, ok bool) {}

// TestSelfHealingQuarantineStopsTraffic: once the monitor quarantines
// an arc, the engine never transmits on it again (no ArcOK callbacks),
// yet traffic still delivers by deflection.
func TestSelfHealingQuarantineStopsTraffic(t *testing.T) {
	g := debruijn.DeBruijn(3, 3)
	base := NewTableRouter(g)
	var target Arc
	for dst := 0; dst < g.N(); dst++ {
		if k := base.NextArc(2, dst); k >= 0 && g.Out(2)[k] != 2 {
			target = Arc{Tail: 2, Index: k}
			break
		}
	}
	mon := &quarMonitor{arc: target, at: 0}
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	session, err := nw.SelfHeal(nil, HealConfig{Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run(allPairsWorkload(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if mon.okAfter != 0 {
		t.Fatalf("%d transmissions on a quarantined arc", mon.okAfter)
	}
	if res.Dropped != 0 {
		t.Fatalf("quarantine of one arc dropped %d packets (deflection should cover)", res.Dropped)
	}
	if got := session.Quarantined(); len(got) != 1 || got[0] != target {
		t.Fatalf("Quarantined() = %v, want [%v]", got, target)
	}
}
