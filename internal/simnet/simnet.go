// Package simnet is a cycle-accurate store-and-forward packet simulator
// over arbitrary digraphs. The paper proves structural results (which
// digraphs OTIS realizes and at what hardware cost) but runs no network
// experiments; simnet adds a minimal performance substrate so the
// repository can demonstrate that the realized networks behave as the
// graph theory predicts: packets routed on B(d, D) realized by an OTIS
// layout never exceed D hops, mean latency tracks the mean distance, and
// so on.
//
// Model: every arc is a link of unit bandwidth (one packet per cycle) with
// a FIFO output queue at its tail. A hop costs HopLatency cycles of wire
// time plus any queueing delay. Routing is pluggable; shortest-path table
// routing and native de Bruijn word routing are provided.
package simnet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/digraph"
	"repro/internal/obs"
	"repro/internal/word"
)

// Router chooses the next hop for a packet at node `at` destined to `dst`.
// It returns the arc index (position in the digraph's adjacency list of
// `at`) to forward on, or -1 if unreachable.
type Router interface {
	NextArc(at, dst int) int
}

// TableRouter routes by precomputed shortest-path next hops held in one
// flat arc-index slab: arcs[at*n+dst] is the out-arc to forward
// on, -1 when dst is unreachable or at = dst. Arc indices are bounded by
// the out-degree, so the slab stores one int8 per ordered pair whenever
// every degree fits (wide stores int32 otherwise — degenerate graphs
// only): 4× less memory traffic on the run loop's random probes than the
// int32 slab this layout replaced. One small entry per
// ordered pair replaces the two ragged n×n []int tables the router
// historically kept (next-hop vertices plus a memoized arc index —
// ≈2·n²·8 bytes), and the arc index is derived directly during the
// reverse-BFS pass instead of by an O(n²·deg) scan afterwards. The slab
// is immutable after construction and safe to share across goroutines.
type TableRouter struct {
	n    int
	arcs []int8  // nil ⇔ some out-degree exceeds math.MaxInt8
	wide []int32 // fallback slab for out-degrees beyond int8
}

// NewTableRouterObserved is NewTableRouter with build telemetry: the
// wall time and slab footprint of the construction are recorded into
// rec (router_build_ns / router_slab_bytes gauges). A nil rec degrades
// to the plain constructor.
func NewTableRouterObserved(g *digraph.Digraph, rec *obs.Recorder) *TableRouter {
	//lint:ignore determinism router build time is telemetry, excluded from reproducibility comparisons
	start := time.Now()
	r := NewTableRouter(g)
	//lint:ignore determinism router build time is telemetry, excluded from reproducibility comparisons
	rec.RouterBuild(time.Since(start).Nanoseconds(), int64(r.Footprint()))
	return r
}

// guardIndexInt32 panics unless count distinct ids fit the int32 slab,
// queue and pipeline entries the run loops narrow into. One call at
// function entry dominates every narrowing in that function.
func guardIndexInt32(count int, what string) {
	if int64(count) > math.MaxInt32 {
		panic(fmt.Sprintf("simnet: %d %s exceed the int32 index range", count, what))
	}
}

// NewTableRouter builds the shortest-path arc slab for g.
func NewTableRouter(g *digraph.Digraph) *TableRouter {
	n := g.N()
	guardIndexInt32(n, "nodes")
	guardIndexInt32(g.M(), "arcs")
	// CSR of the reverse digraph with the forward arc index carried
	// alongside each reversed arc: entry (u, k) at head v means arc k of
	// u points to v. Discovering u from v in a reverse BFS rooted at dst
	// then yields the routing decision (forward on arc k) immediately.
	base := make([]int32, n+1)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			base[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		base[v+1] += base[v]
	}
	revTail := make([]int32, g.M())
	revArc := make([]int32, g.M())
	fill := make([]int32, n)
	for u := 0; u < n; u++ {
		for k, v := range g.Out(u) {
			slot := base[v] + fill[v]
			revTail[slot] = int32(u)
			revArc[slot] = int32(k)
			fill[v]++
		}
	}

	maxDeg := 0
	for u := 0; u < n; u++ {
		if deg := g.OutDegree(u); deg > maxDeg {
			maxDeg = deg
		}
	}
	narrow := maxDeg <= math.MaxInt8
	var arcs []int8
	var wide []int32
	if narrow {
		arcs = make([]int8, n*n)
		for i := range arcs {
			arcs[i] = -1
		}
	} else {
		wide = make([]int32, n*n)
		for i := range wide {
			wide[i] = -1
		}
	}
	seen := make([]int32, n) // epoch marks: seen[u] == dst+1 ⇔ visited this pass
	queue := make([]int32, 0, n)
	for dst := 0; dst < n; dst++ {
		epoch := int32(dst + 1)
		seen[dst] = epoch
		queue = append(queue[:0], int32(dst))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for idx := base[v]; idx < base[v+1]; idx++ {
				u := revTail[idx]
				if seen[u] == epoch {
					continue
				}
				seen[u] = epoch
				if narrow {
					arcs[int(u)*n+dst] = int8(revArc[idx])
				} else {
					wide[int(u)*n+dst] = revArc[idx]
				}
				queue = append(queue, u)
			}
		}
	}
	return &TableRouter{n: n, arcs: arcs, wide: wide}
}

// NextArc implements Router.
func (r *TableRouter) NextArc(at, dst int) int {
	if r.arcs != nil {
		return int(r.arcs[at*r.n+dst])
	}
	return int(r.wide[at*r.n+dst])
}

// Footprint returns the bytes held by the router's table storage — n²
// (one int8 per pair) on every graph whose out-degrees fit int8, the
// single surviving table (asserted by tests against the historical
// double-table layout).
func (r *TableRouter) Footprint() int { return len(r.arcs) + 4*len(r.wide) }

// DeBruijnRouter routes natively on B(d, D) congruence labels using the
// left-shift rule — no tables, O(D) work per decision, exactly the
// self-routing the de Bruijn literature advertises.
type DeBruijnRouter struct {
	d, D int
	n    int   // d^D, precomputed with an overflow-guarded power
	pow  []int // pow[i] = d^i for i in [0, D]
}

// NewDeBruijnRouter returns the native router for B(d, D).
func NewDeBruijnRouter(d, D int) *DeBruijnRouter {
	n := word.Pow(d, D) // overflow-guarded, so the partial powers are safe
	pow := make([]int, D+1)
	pow[0] = 1
	for i := 1; i <= D; i++ {
		pow[i] = pow[i-1] * d
	}
	return &DeBruijnRouter{d: d, D: D, n: n, pow: pow}
}

// NextArc implements Router. In congruence form the successor via letter α
// is (d·u + α) mod d^D, which is adjacency position α; the canonical
// shortest path shifts in the destination's remaining letters. The first
// such letter falls out of pure division arithmetic: with k the largest
// overlap below D — at ≡ ⌊dst/d^(D−k)⌋ (mod d^k), i.e. at's low-order k
// digits equal dst's high-order k digits — the letter to shift in next is
// dst's digit at position D−k−1. O(D) integer ops, no allocation.
//
//lint:hotpath
func (r *DeBruijnRouter) NextArc(at, dst int) int {
	if at == dst {
		return -1
	}
	pow := r.pow
	k := r.D - 1
	for ; k > 0; k-- {
		if at%pow[k] == dst/pow[r.D-k] {
			break
		}
	}
	return (dst / pow[r.D-k-1]) % r.d
}

// Packet is one simulated datagram.
type Packet struct {
	ID        int
	Src, Dst  int
	Release   int // injection cycle
	Delivered int // delivery cycle (-1 while in flight)
	Hops      int
}

// Config tunes the simulation.
type Config struct {
	// HopLatency is the wire time of one hop in cycles (≥ 1).
	HopLatency int
	// MaxCycles aborts the run (0 means 64·n·HopLatency + total packets,
	// a generous bound).
	MaxCycles int
	// QueueCapacity bounds every per-arc output queue (0: unbounded,
	// the historical behaviour). With a bound, a packet whose next queue
	// is full is not dropped silently — it holds in place upstream
	// (credit-based backpressure) until space opens or its hold budget
	// runs out, at which point it drops as DroppedQueueFull.
	QueueCapacity int
	// HoldBudget is the lifetime number of hold-in-place cycles a packet
	// may spend against full queues before it is dropped
	// (0: 4·QueueCapacity+16; meaningful only with QueueCapacity > 0).
	HoldBudget int
}

// DefaultConfig returns unit hop latency.
func DefaultConfig() Config { return Config{HopLatency: 1} }

// Result summarizes a simulation run.
type Result struct {
	Delivered   int
	Dropped     int // packets with no route
	Cycles      int // cycle at which the last packet was delivered
	TotalHops   int
	MaxHops     int
	TotalWait   int // cycles spent queued (latency minus wire time)
	MeanLatency float64
	MeanHops    float64
	// MaxQueue is the deepest any output queue got during the run — the
	// buffer size a hardware implementation would need to avoid drops.
	MaxQueue int
	// HotNode is a vertex owning a queue that reached MaxQueue.
	HotNode int
	// Shed counts packets refused by admission control (WithAdmission)
	// before ever entering the network. Shed is disjoint from Dropped:
	// Delivered + Dropped + Shed == Offered on every completed run.
	Shed int
	// DroppedQueueFull counts packets that exhausted their hold budget
	// against full bounded queues (included in Dropped).
	DroppedQueueFull int
	// Holds counts hold-in-place backpressure events: a packet kept
	// upstream for one cycle because its next queue was full.
	Holds int
	// PeakResident is the most packets simultaneously buffered in the
	// network (arc queues plus link pipelines) — the aggregate buffer
	// memory a hardware realization needs. With QueueCapacity set it is
	// bounded by topology alone, independent of offered load.
	PeakResident int
	Packets      []Packet
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("delivered=%d dropped=%d cycles=%d meanLatency=%.2f meanHops=%.2f maxHops=%d",
		r.Delivered, r.Dropped, r.Cycles, r.MeanLatency, r.MeanHops, r.MaxHops)
}

// inflight is a packet moving through a link pipeline.
type inflight struct {
	pkt   int // index into packets
	ready int // cycle at which it pops out at the head vertex
}

// Network binds a digraph, a router and a config into a runnable
// simulation. A Network is safe for concurrent Run/RunWithFaults calls:
// the compiled router and distance slab are shared read-only, while each
// run checks a scratch arena out of a pool so repeated runs (sweeps)
// reuse their queue/pipeline/metadata storage instead of reallocating it
// per point.
type Network struct {
	g      *digraph.Digraph
	router Router
	cfg    Config

	// arcBase[u] is the flat index of node u's first out-arc: queues and
	// pipelines live in M-length slabs addressed by arcBase[u]+k.
	// arcHead[a] and arcTail[a] are the head and tail vertex of flat arc
	// a — the CSR adjacency flattened once, so the arc-major sweeps read
	// a contiguous int32 slab instead of chasing g.Out(u) slice headers.
	arcBase []int32
	arcHead []int32
	arcTail []int32
	maxDeg  int

	// dist is the fault-free all-pairs distance slab, built on first use
	// and then shared read-only by every fault-aware run and sweep worker.
	distOnce sync.Once
	dist     []int32

	// diam caches g.Diameter(), which fault runs consult for TTL defaults.
	diamOnce sync.Once
	diam     int

	// rec is the attached metrics recorder (nil: uninstrumented). Every
	// recording site is nil-guarded so the fast path stays
	// allocation-free; WithRecorder overrides it per run.
	rec *obs.Recorder

	// shift devirtualizes the native de Bruijn router: non-nil exactly
	// when router is a *DeBruijnRouter, letting the lean arrival path
	// call the closed-form NextArc directly instead of through the
	// interface — the table-free routing mode.
	shift *DeBruijnRouter

	// defaults are the network-wide run defaults (RunOptions passed to
	// NewNetwork), merged under each RunOpts call's own options.
	defaults runConfig

	scratch      sync.Pool // *arena
	shardScratch sync.Pool // *shardEngine
}

// Observe attaches a metrics recorder to the network: subsequent runs
// record per-arc traversals, queue depths, latency histograms and
// drop/reroute/retry causes into it. Passing nil detaches. Attach
// before starting concurrent runs; the recorder itself is safe to share
// between sweep workers.
func (nw *Network) Observe(rec *obs.Recorder) {
	rec.SizeArcs(int(nw.arcBase[nw.g.N()]))
	nw.rec = rec
}

// ArcIndex returns the flat CSR index of out-arc k of node tail — the
// index a Recorder's per-arc slabs are addressed by.
func (nw *Network) ArcIndex(tail, k int) int { return int(nw.arcBase[tail]) + k }

// New creates a network simulation over g.
//
// Deprecated: use NewNetwork, which folds router selection and Config
// fields into one functional-option set (New(g, router, cfg) is
// NewNetwork(g, WithRouter(router), WithConfig(cfg))). New remains a
// thin equivalent wrapper and is not going away.
func New(g *digraph.Digraph, router Router, cfg Config) (*Network, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("simnet: empty digraph")
	}
	if cfg.HopLatency < 1 {
		return nil, fmt.Errorf("simnet: HopLatency must be >= 1, got %d", cfg.HopLatency)
	}
	if cfg.QueueCapacity < 0 {
		return nil, fmt.Errorf("simnet: QueueCapacity must be >= 0, got %d", cfg.QueueCapacity)
	}
	if cfg.HoldBudget < 0 {
		return nil, fmt.Errorf("simnet: HoldBudget must be >= 0, got %d", cfg.HoldBudget)
	}
	return newNetwork(g, router, cfg), nil
}

// newNetwork builds the derived state for already-validated inputs (the
// shadow network of TracedRun reuses it without re-threading the error).
func newNetwork(g *digraph.Digraph, router Router, cfg Config) *Network {
	n := g.N()
	guardIndexInt32(n, "nodes")
	guardIndexInt32(g.M(), "arcs")
	arcBase := make([]int32, n+1)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg := g.OutDegree(u)
		arcBase[u+1] = arcBase[u] + int32(deg)
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	arcHead := make([]int32, g.M())
	arcTail := make([]int32, g.M())
	for u := 0; u < n; u++ {
		base := arcBase[u]
		for k, v := range g.Out(u) {
			arcHead[base+int32(k)] = int32(v)
			arcTail[base+int32(k)] = int32(u)
		}
	}
	shift, _ := router.(*DeBruijnRouter)
	return &Network{g: g, router: router, cfg: cfg, arcBase: arcBase, arcHead: arcHead, arcTail: arcTail, maxDeg: maxDeg, shift: shift}
}

// distSlab returns the fault-free all-pairs distance slab, building it
// exactly once per Network; callers share it read-only.
func (nw *Network) distSlab() []int32 {
	nw.distOnce.Do(func() { nw.dist = nw.g.DistanceSlab() })
	return nw.dist
}

// diameter returns g.Diameter(), computed once per Network.
func (nw *Network) diameter() int {
	nw.diamOnce.Do(func() { nw.diam = nw.g.Diameter() })
	return nw.diam
}

// defaultBudget is the generous cycle bound used when MaxCycles is 0.
func (nw *Network) defaultBudget(pkts, hopLatency int) int {
	return 64*nw.g.N()*hopLatency + 16*pkts + 1024
}

// Run simulates until every packet is delivered or dropped, or MaxCycles
// elapses. The packets slice is copied; releases may be in any order.
// Network-wide run defaults (RunOptions passed to NewNetwork, e.g.
// WithShards) apply; on a network constructed without them Run is the
// plain sequential engine it always was.
//
// Deprecated: use RunOpts, which unifies the run entry points behind
// functional options (Run(pkts) is RunOpts(Fixed(pkts))). Run remains a
// thin wrapper and is not going away.
func (nw *Network) Run(packets []Packet) Result {
	rep, err := nw.RunOpts(Fixed(packets))
	if err != nil {
		// Unreachable for a valid Network: Fixed never fails and the
		// network-wide defaults were validated at construction.
		panic(fmt.Sprintf("simnet: Run: %v", err))
	}
	return rep.Result
}

// runTuning is the per-run overload-protection tuning threaded through
// run: the cycle budget, the per-arc queue bound, the lifetime
// per-packet hold budget and the admission regulator. The zero value
// reproduces the historical unbounded behaviour.
type runTuning struct {
	budget int
	qcap   int         // per-arc queue bound (0: unbounded)
	hold   int         // per-packet hold budget (0: default when qcap > 0)
	admit  *admitState // nil: no admission control
}

// withDefaults resolves the hold budget a queue bound implies.
func (t runTuning) withDefaults() runTuning {
	if t.qcap > 0 && t.hold < 1 {
		t.hold = 4*t.qcap + 16
	}
	return t
}

// baseTuning derives the tuning the Network's own Config implies.
func (nw *Network) baseTuning(budget int) runTuning {
	t := runTuning{budget: budget, qcap: nw.cfg.QueueCapacity, hold: nw.cfg.HoldBudget}
	return t.withDefaults()
}

// enqStatus reports the outcome of a routing-and-enqueue attempt.
type enqStatus int8

const (
	enqOK      enqStatus = iota // queued on the chosen arc
	enqNoRoute                  // no route: dropped, accounted by enqueue
	enqFull                     // bounded queue full: caller holds the packet upstream
)

// runState threads run's per-call state through enqueue. A method on a
// stack value replaces the closure run used to define: the run loop is a
// hot path and closures allocate.
type runState struct {
	nw     *Network
	dst    []int32 // SoA packet destination slab
	holds  []int32 // SoA per-packet holds-spent slab
	queues []fifo
	qBits  []uint64 // active-arc bitmap: bit a set ⇔ queues[a] non-empty
	res    *Result
	rec    *obs.Recorder
	// tArcs/tN devirtualize TableRouter: the run loop gathers next hops
	// straight from the router slab instead of through the interface
	// (nil: dynamic dispatch, e.g. DeBruijnRouter or a recordingRouter).
	tArcs    []int8
	tN       int
	qcap     int // per-arc queue bound (0: unbounded)
	resident int // packets currently buffered in queues + pipelines
}

// enter records one packet entering the network's buffers.
func (rs *runState) enter() {
	rs.resident++
	if rs.resident > rs.res.PeakResident {
		rs.res.PeakResident = rs.resident
	}
}

// leave records one packet leaving the network's buffers (delivered or
// dropped mid-flight).
func (rs *runState) leave() { rs.resident-- }

// enqueue routes pkt out of node at, pushing it onto the chosen arc's
// queue. enqNoRoute is accounted (drop counters) here; enqFull leaves
// all accounting to the caller, which holds the packet upstream.
//
//lint:hotpath
func (rs *runState) enqueue(at, pkt int) enqStatus {
	var arc int
	if rs.tArcs != nil {
		arc = int(rs.tArcs[at*rs.tN+int(rs.dst[pkt])])
	} else {
		arc = rs.nw.router.NextArc(at, int(rs.dst[pkt]))
	}
	if arc < 0 {
		rs.res.Dropped++
		if rs.rec != nil {
			rs.rec.Drop(obs.DropNoRoute)
		}
		return enqNoRoute
	}
	//lint:ignore slabindex arc < maxDeg ≤ M, dominated by newNetwork's guardIndexInt32
	flat := rs.nw.arcBase[at] + int32(arc)
	q := &rs.queues[flat]
	if rs.qcap > 0 && q.depth() >= rs.qcap {
		return enqFull
	}
	//lint:ignore slabindex pkt < len(pkts), dominated by run's guardIndexInt32
	q.push(int32(pkt))
	rs.qBits[flat>>6] |= 1 << (uint32(flat) & 63)
	depth := q.depth()
	if depth > rs.res.MaxQueue {
		rs.res.MaxQueue = depth
		rs.res.HotNode = at
	}
	if rs.rec != nil {
		rs.rec.QueueDepth(int(flat), depth)
	}
	return enqOK
}

// holdOrDrop charges one hold-in-place cycle to pkt's budget. It
// reports true when the packet may keep waiting (hold accounted) and
// false when the budget is exhausted — the packet has been dropped as
// DroppedQueueFull and the caller must remove it. The hold is recorded
// at the refusing queue's observed depth, which under the plain engine
// is always exactly qcap: enqueue refuses only at depth ≥ qcap and a
// bounded queue never exceeds its bound.
//
//lint:hotpath
func (rs *runState) holdOrDrop(pkt, budget int) bool {
	rs.holds[pkt]++
	if int(rs.holds[pkt]) > budget {
		rs.res.Dropped++
		rs.res.DroppedQueueFull++
		if rs.rec != nil {
			rs.rec.Drop(obs.DropQueueFull)
		}
		return false
	}
	rs.res.Holds++
	if rs.rec != nil {
		rs.rec.Hold(rs.qcap)
	}
	return true
}

// run is Run with explicit tuning (budget, queue bound, hold budget,
// admission) and recorder; sweeps use it to retune the budget per point
// while reusing one Network. All recording sites are rec != nil guarded
// so the uninstrumented path stays allocation-free.
//
// This is the batched arc-major kernel: per-cycle work is a pair of
// linear sweeps over the arc axis (arrivals over the in-flight bitmap,
// departures over the queued bitmap) against flat SoA slabs — int32
// packet arrays instead of []Packet field access, fixed-capacity pipe
// segments instead of per-arc slices, and the TableRouter slab gathered
// directly. Empty arcs cost one skipped bit, not a slice-header probe,
// so a cycle costs O(active arcs + set-bitmap words) rather than O(M).
// Phase structure, iteration order and every accounting/recording site
// are identical to the packet-at-a-time engine it replaced — pinned by
// TestArcMajorKernelMatchesReference and the engine behaviour goldens.
//
//lint:hotpath
func (nw *Network) run(packets []Packet, tun runTuning, rec *obs.Recorder) Result {
	guardIndexInt32(len(packets), "packets")
	//lint:ignore hotalloc pkts escapes into Result.Packets: one allocation per run, not per cycle
	pkts := make([]Packet, len(packets))
	copy(pkts, packets)

	n := nw.g.N()
	m := int(nw.arcBase[n])
	ar, reused := nw.getArena()
	defer nw.putArena(ar)
	if rec != nil {
		rec.Arena(reused)
	}
	queues := ar.queues // per-arc FIFO queues, flat by arcBase

	maxCycles := tun.budget
	if maxCycles == 0 {
		maxCycles = nw.cfg.MaxCycles
	}
	if maxCycles == 0 {
		maxCycles = nw.defaultBudget(len(pkts), nw.cfg.HopLatency)
		if tun.admit != nil {
			// Room for the regulator to trickle the whole workload in.
			maxCycles += int(float64(len(pkts))/tun.admit.rate) + tun.admit.maxDelay
		}
	}
	// Cycle stamps (releases, pipe ready cycles) are narrowed into int32
	// slabs; one guard at entry dominates every stamp below.
	guardIndexInt32(maxCycles+nw.cfg.HopLatency+2, "cycles")

	// A full link window (in-flight wire slots plus held packets) stops
	// accepting departures — the credit that propagates backpressure.
	// The credit bound is also the pipe segment capacity: an unbounded
	// run keeps at most HopLatency packets per link (one departure per
	// cycle, each in flight exactly HopLatency cycles), a bounded one at
	// most qcap+HopLatency (departures stop at the window, holds re-slot
	// in place).
	credits := 0
	segCap := nw.cfg.HopLatency
	if tun.qcap > 0 {
		credits = tun.qcap + nw.cfg.HopLatency
		segCap = credits
	}
	pipePkt, pipeReady, pipeLen := ar.pipeSegments(m, segCap)
	qBits, aBits := ar.qBits, ar.aBits
	dst, rel, del, hops, holds := ar.packetSlabs(len(pkts))
	holdq := ar.holdq[:0]

	// Devirtualize the built-in routers: the hot loop gathers next hops
	// from the table slab, or computes them with the closed-form de
	// Bruijn shift rule, without the interface call (recorded or custom
	// routers keep dynamic dispatch). shift is the table-free routing
	// mode — no n² slab exists at all, which is what admits million-node
	// graphs.
	var tArcs []int8
	tN := 0
	if tr, ok := nw.router.(*TableRouter); ok {
		tArcs, tN = tr.arcs, tr.n // nil (interface dispatch) on a wide table
	}
	shift := nw.shift

	res := Result{}
	remaining := 0
	horizon := int32(maxCycles) + 1
	// Route-or-drop at injection time; survivors are injected in sorted
	// (Release, index) order via a cursor — no per-cycle map lookups.
	order := ar.order[:0]
	for i := range pkts {
		pkts[i].Delivered = -1
		pkts[i].Hops = 0
		dst[i] = int32(pkts[i].Dst)
		del[i] = -1
		hops[i] = 0
		holds[i] = 0
		if r := pkts[i].Release; r > maxCycles {
			// Beyond the horizon: never injected. Clamping keeps the slab
			// in int32 range without reordering the injection schedule.
			rel[i] = horizon
		} else {
			rel[i] = int32(r)
		}
		if pkts[i].Src == pkts[i].Dst {
			pkts[i].Delivered = pkts[i].Release
			res.Delivered++
			continue
		}
		var arc int
		switch {
		case tArcs != nil:
			arc = int(tArcs[pkts[i].Src*tN+pkts[i].Dst])
		case shift != nil:
			arc = shift.NextArc(pkts[i].Src, pkts[i].Dst)
		default:
			arc = nw.router.NextArc(pkts[i].Src, pkts[i].Dst)
		}
		if arc < 0 {
			res.Dropped++
			if rec != nil {
				rec.Drop(obs.DropNoRoute)
			}
			continue
		}
		order = append(order, int32(i))
		remaining++
	}
	sortByRelease(order, pkts)
	ar.order = order
	cursor := 0

	rs := runState{
		nw: nw, dst: dst, holds: holds, queues: queues, qBits: qBits,
		res: &res, rec: rec, tArcs: tArcs, tN: tN, qcap: tun.qcap,
	}
	admit := tun.admit
	arcHead := nw.arcHead
	hopLat := int32(nw.cfg.HopLatency)
	heldLast := false // congestion signal: a hold happened last cycle

	// The lean arrival path applies when next hops come from a built-in
	// router — the table slab gathered directly, or the closed-form de
	// Bruijn shift — nothing records and queues are unbounded (the bench
	// hot path): arrivals are batched so the routing step — under table
	// routing one random probe into the n² slab per hop, the run's
	// cache-miss budget — runs as a dense pass of independent work,
	// instead of serializing behind each packet's queue push. Delivery,
	// push order and all accounting stay identical to the general path.
	lean := (tArcs != nil || shift != nil) && rec == nil && tun.qcap == 0 && tun.admit == nil
	var arrPkt, arrNode, arrArc []int32
	var qHead, qTail, qLen, pNext []int32
	if lean {
		arrPkt, arrNode, arrArc = ar.arrivalBatch(len(pkts))
		qHead, qTail, qLen, pNext = ar.queueLinks(m, len(pkts))
	}

	for cycle := 0; remaining > 0 && cycle <= maxCycles; cycle++ {
		cycle32 := int32(cycle)
		holdsBefore := res.Holds
		if admit != nil {
			admit.refill(heldLast)
		}

		// Inject: source-held packets (admitted earlier, source queue
		// full) retry first, then the release cursor drains through the
		// admission regulator. The lean path has no admission and no
		// backpressure (holdq stays empty, every order entry was
		// route-prechecked at setup), so its cursor drains through plain
		// linked-queue pushes.
		if lean {
			for cursor < len(order) && rel[order[cursor]] <= cycle32 {
				i := int(order[cursor])
				cursor++
				at := pkts[i].Src
				var arc int32
				if tArcs != nil {
					arc = int32(tArcs[at*tN+int(dst[i])])
				} else {
					arc = int32(shift.NextArc(at, int(dst[i])))
				}
				flat := nw.arcBase[at] + arc
				if qLen[flat] == 0 {
					qHead[flat] = int32(i)
				} else {
					pNext[qTail[flat]] = int32(i)
				}
				qTail[flat] = int32(i)
				qLen[flat]++
				qBits[flat>>6] |= 1 << (uint32(flat) & 63)
				if depth := int(qLen[flat]); depth > res.MaxQueue {
					res.MaxQueue = depth
					res.HotNode = at
				}
				rs.enter()
			}
		} else {
			if len(holdq) > 0 {
				nh := holdq[:0]
				for _, i32 := range holdq {
					i := int(i32)
					switch rs.enqueue(pkts[i].Src, i) {
					case enqOK:
						rs.enter()
					case enqNoRoute:
						remaining--
					case enqFull:
						if !rs.holdOrDrop(i, tun.hold) {
							remaining--
							continue
						}
						nh = append(nh, i32)
					}
				}
				holdq = nh
			}
			for cursor < len(order) && rel[order[cursor]] <= cycle32 {
				i := int(order[cursor])
				if admit != nil {
					if cycle-int(rel[i]) > admit.maxDelay {
						cursor++
						res.Shed++
						if rec != nil {
							rec.Shed()
						}
						remaining--
						continue
					}
					if !admit.take() {
						break // out of tokens: the head waits in release order
					}
				}
				cursor++
				switch rs.enqueue(pkts[i].Src, i) {
				case enqOK:
					rs.enter()
				case enqNoRoute:
					remaining--
				case enqFull:
					// Admitted but the source queue is full: hold at the
					// source and retry ahead of the cursor next cycle.
					if !rs.holdOrDrop(i, tun.hold) {
						remaining--
						continue
					}
					holdq = append(holdq, int32(i))
				}
			}
		}

		// Arrivals: packets whose wire time completes this cycle, swept
		// arc-major over the in-flight bitmap in ascending arc order
		// (identical to the historical nested (node, arc) scan). The hop
		// is counted when the next queue accepts the packet; a full
		// queue keeps it on the upstream link (credit-based
		// backpressure) to retry next cycle, compacted in place in its
		// fixed-capacity segment.
		if lean {
			// Pass 1: sweep the in-flight bitmap, delivering in place
			// and collecting forwarding packets with their nodes.
			na := 0
			for w := range aBits {
				bits := aBits[w]
				for bits != 0 {
					a := w<<6 + trailingZeros64(bits)
					bits &= bits - 1
					base := a * segCap
					cnt := int(pipeLen[a])
					v := arcHead[a]
					keep := 0
					for j := 0; j < cnt; j++ {
						pk := pipePkt[base+j]
						rdy := pipeReady[base+j]
						if rdy > cycle32 {
							pipePkt[base+keep] = pk
							pipeReady[base+keep] = rdy
							keep++
							continue
						}
						p := int(pk)
						dv := dst[p]
						if dv == v {
							hops[p]++
							del[p] = cycle32
							res.Delivered++
							remaining--
							rs.leave()
							if cycle > res.Cycles {
								res.Cycles = cycle
							}
							continue
						}
						arrPkt[na] = pk
						arrNode[na] = v
						arrArc[na] = dv // destination, rewritten to the arc by pass 2
						na++
					}
					pipeLen[a] = int32(keep)
					if keep == 0 {
						aBits[w] &^= 1 << (uint(a) & 63)
					}
				}
			}
			// Pass 2: route the whole batch — under table routing a pass
			// of independent slab gathers (pass 1 left each packet's
			// destination in arrArc, so every iteration is a single load
			// with no dependent chain); under shift routing a pass of
			// closed-form O(D) decisions touching no routing state at all.
			if tArcs != nil {
				for k := 0; k < na; k++ {
					arrArc[k] = int32(tArcs[int(arrNode[k])*tN+int(arrArc[k])])
				}
			} else {
				for k := 0; k < na; k++ {
					arrArc[k] = int32(shift.NextArc(int(arrNode[k]), int(arrArc[k])))
				}
			}
			// Pass 3: enqueue in the same ascending arc order the
			// general path pushes in, so per-queue depth sequences (and
			// MaxQueue/HotNode) match it exactly.
			for k := 0; k < na; k++ {
				p := int(arrPkt[k])
				arc := arrArc[k]
				hops[p]++
				if arc < 0 {
					res.Dropped++
					remaining--
					rs.leave()
					continue
				}
				at := int(arrNode[k])
				flat := nw.arcBase[at] + arc
				pk := arrPkt[k]
				if qLen[flat] == 0 {
					qHead[flat] = pk
				} else {
					pNext[qTail[flat]] = pk
				}
				qTail[flat] = pk
				qLen[flat]++
				qBits[flat>>6] |= 1 << (uint32(flat) & 63)
				if depth := int(qLen[flat]); depth > res.MaxQueue {
					res.MaxQueue = depth
					res.HotNode = at
				}
			}
		} else {
			for w := range aBits {
				bits := aBits[w]
				for bits != 0 {
					a := w<<6 + trailingZeros64(bits)
					bits &= bits - 1
					base := a * segCap
					cnt := int(pipeLen[a])
					v := int(arcHead[a])
					keep := 0
					for j := 0; j < cnt; j++ {
						pk := pipePkt[base+j]
						rdy := pipeReady[base+j]
						if rdy > cycle32 {
							pipePkt[base+keep] = pk
							pipeReady[base+keep] = rdy
							keep++
							continue
						}
						p := int(pk)
						if dst[p] == int32(v) {
							hops[p]++
							if rec != nil {
								rec.ArcTraverse(a)
							}
							del[p] = cycle32
							res.Delivered++
							remaining--
							rs.leave()
							if cycle > res.Cycles {
								res.Cycles = cycle
							}
							if rec != nil {
								rec.Deliver(cycle-int(rel[p]), int(hops[p]))
							}
							continue
						}
						switch rs.enqueue(v, p) {
						case enqOK:
							hops[p]++
							if rec != nil {
								rec.ArcTraverse(a)
							}
						case enqNoRoute:
							hops[p]++
							if rec != nil {
								rec.ArcTraverse(a)
							}
							remaining--
							rs.leave()
						case enqFull:
							if !rs.holdOrDrop(p, tun.hold) {
								remaining--
								rs.leave()
								continue
							}
							pipePkt[base+keep] = pk
							pipeReady[base+keep] = cycle32 + 1
							keep++
						}
					}
					pipeLen[a] = int32(keep)
					if keep == 0 {
						aBits[w] &^= 1 << (uint(a) & 63)
					}
				}
			}
		}

		// Departures: each link accepts one queued packet per cycle,
		// and only while it has credit (its window of wire slots plus
		// held packets is not full). Swept over the queued bitmap —
		// bit a set ⇔ queue a non-empty, maintained by the pushes and
		// the pops here. Lean queues are unbounded (credits == 0), so
		// their sweep pops unconditionally.
		if lean {
			for w := range qBits {
				bits := qBits[w]
				for bits != 0 {
					a := w<<6 + trailingZeros64(bits)
					bits &= bits - 1
					pk := qHead[a]
					qLen[a]--
					if qLen[a] == 0 {
						qBits[w] &^= 1 << (uint(a) & 63)
					} else {
						qHead[a] = pNext[pk]
					}
					slot := a*segCap + int(pipeLen[a])
					pipePkt[slot] = pk
					pipeReady[slot] = cycle32 + hopLat
					pipeLen[a]++
					aBits[w] |= 1 << (uint(a) & 63)
				}
			}
		} else {
			for w := range qBits {
				bits := qBits[w]
				for bits != 0 {
					a := w<<6 + trailingZeros64(bits)
					bits &= bits - 1
					if credits > 0 && int(pipeLen[a]) >= credits {
						continue
					}
					q := &queues[a]
					pk := q.pop()
					if q.depth() == 0 {
						qBits[w] &^= 1 << (uint(a) & 63)
					}
					slot := a*segCap + int(pipeLen[a])
					pipePkt[slot] = pk
					pipeReady[slot] = cycle32 + hopLat
					pipeLen[a]++
					aBits[w] |= 1 << (uint(a) & 63)
				}
			}
		}

		heldLast = res.Holds > holdsBefore
	}
	ar.holdq = holdq

	// Scatter the SoA slabs back into the packet table. Only routed
	// packets live in order; self-deliveries and setup drops wrote their
	// final state above.
	for _, i32 := range order {
		i := int(i32)
		pkts[i].Delivered = int(del[i])
		pkts[i].Hops = int(hops[i])
	}

	// Aggregate.
	latencySum := 0
	for i := range pkts {
		p := pkts[i]
		if p.Delivered < 0 {
			continue
		}
		res.TotalHops += p.Hops
		if p.Hops > res.MaxHops {
			res.MaxHops = p.Hops
		}
		latencySum += p.Delivered - p.Release
		res.TotalWait += (p.Delivered - p.Release) - p.Hops*nw.cfg.HopLatency
	}
	if res.Delivered > 0 {
		res.MeanLatency = float64(latencySum) / float64(res.Delivered)
		res.MeanHops = float64(res.TotalHops) / float64(res.Delivered)
	}
	res.Packets = pkts
	return res
}
