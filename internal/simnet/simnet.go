// Package simnet is a cycle-accurate store-and-forward packet simulator
// over arbitrary digraphs. The paper proves structural results (which
// digraphs OTIS realizes and at what hardware cost) but runs no network
// experiments; simnet adds a minimal performance substrate so the
// repository can demonstrate that the realized networks behave as the
// graph theory predicts: packets routed on B(d, D) realized by an OTIS
// layout never exceed D hops, mean latency tracks the mean distance, and
// so on.
//
// Model: every arc is a link of unit bandwidth (one packet per cycle) with
// a FIFO output queue at its tail. A hop costs HopLatency cycles of wire
// time plus any queueing delay. Routing is pluggable; shortest-path table
// routing and native de Bruijn word routing are provided.
package simnet

import (
	"fmt"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/word"
)

// Router chooses the next hop for a packet at node `at` destined to `dst`.
// It returns the arc index (position in the digraph's adjacency list of
// `at`) to forward on, or -1 if unreachable.
type Router interface {
	NextArc(at, dst int) int
}

// TableRouter routes by precomputed shortest-path next hops.
type TableRouter struct {
	g     *digraph.Digraph
	table [][]int // next-hop vertex per (node, dst)
	arcOf [][]int // memoized arc index per (node, dst)
}

// NewTableRouter builds shortest-path tables for g.
func NewTableRouter(g *digraph.Digraph) *TableRouter {
	table := debruijn.RoutingTable(g)
	n := g.N()
	arcOf := make([][]int, n)
	for u := 0; u < n; u++ {
		arcOf[u] = make([]int, n)
		for dst := 0; dst < n; dst++ {
			arcOf[u][dst] = -1
			hop := table[u][dst]
			if hop < 0 || u == dst {
				continue
			}
			for k, v := range g.Out(u) {
				if v == hop {
					arcOf[u][dst] = k
					break
				}
			}
		}
	}
	return &TableRouter{g: g, table: table, arcOf: arcOf}
}

// NextArc implements Router.
func (r *TableRouter) NextArc(at, dst int) int { return r.arcOf[at][dst] }

// DeBruijnRouter routes natively on B(d, D) congruence labels using the
// left-shift rule — no tables, O(D) work per decision, exactly the
// self-routing the de Bruijn literature advertises.
type DeBruijnRouter struct {
	d, D int
	n    int // d^D, precomputed with an overflow-guarded power
}

// NewDeBruijnRouter returns the native router for B(d, D).
func NewDeBruijnRouter(d, D int) *DeBruijnRouter {
	return &DeBruijnRouter{d: d, D: D, n: word.Pow(d, D)}
}

// NextArc implements Router. In congruence form the successor via letter α
// is (d·u + α) mod d^D, which is adjacency position α; the canonical
// shortest path feeds in the destination's remaining letters.
func (r *DeBruijnRouter) NextArc(at, dst int) int {
	if at == dst {
		return -1
	}
	path := debruijn.RouteInts(r.d, r.D, at, dst)
	next := path[1]
	// Recover α from next = (d·at + α) mod n.
	n := r.n
	alpha := (next - r.d*at) % n
	if alpha < 0 {
		alpha += n
	}
	return alpha % r.d
}

// Packet is one simulated datagram.
type Packet struct {
	ID        int
	Src, Dst  int
	Release   int // injection cycle
	Delivered int // delivery cycle (-1 while in flight)
	Hops      int
}

// Config tunes the simulation.
type Config struct {
	// HopLatency is the wire time of one hop in cycles (≥ 1).
	HopLatency int
	// MaxCycles aborts the run (0 means 64·n·HopLatency + total packets,
	// a generous bound).
	MaxCycles int
}

// DefaultConfig returns unit hop latency.
func DefaultConfig() Config { return Config{HopLatency: 1} }

// Result summarizes a simulation run.
type Result struct {
	Delivered   int
	Dropped     int // packets with no route
	Cycles      int // cycle at which the last packet was delivered
	TotalHops   int
	MaxHops     int
	TotalWait   int // cycles spent queued (latency minus wire time)
	MeanLatency float64
	MeanHops    float64
	// MaxQueue is the deepest any output queue got during the run — the
	// buffer size a hardware implementation would need to avoid drops.
	MaxQueue int
	// HotNode is a vertex owning a queue that reached MaxQueue.
	HotNode int
	Packets []Packet
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("delivered=%d dropped=%d cycles=%d meanLatency=%.2f meanHops=%.2f maxHops=%d",
		r.Delivered, r.Dropped, r.Cycles, r.MeanLatency, r.MeanHops, r.MaxHops)
}

// inflight is a packet moving through a link pipeline.
type inflight struct {
	pkt   int // index into packets
	ready int // cycle at which it pops out at the head vertex
}

// Network binds a digraph, a router and a config into a runnable
// simulation.
type Network struct {
	g      *digraph.Digraph
	router Router
	cfg    Config
}

// New creates a network simulation over g.
func New(g *digraph.Digraph, router Router, cfg Config) (*Network, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("simnet: empty digraph")
	}
	if cfg.HopLatency < 1 {
		return nil, fmt.Errorf("simnet: HopLatency must be >= 1, got %d", cfg.HopLatency)
	}
	return &Network{g: g, router: router, cfg: cfg}, nil
}

// Run simulates until every packet is delivered or dropped, or MaxCycles
// elapses. The packets slice is copied; releases may be in any order.
func (nw *Network) Run(packets []Packet) Result {
	pkts := make([]Packet, len(packets))
	copy(pkts, packets)
	for i := range pkts {
		pkts[i].Delivered = -1
		pkts[i].Hops = 0
	}

	n := nw.g.N()
	// Per-vertex, per-arc FIFO queues of packet indices.
	queues := make([][][]int, n)
	// Per-vertex, per-arc link pipelines (at most one packet in flight on
	// a link at a time would be bandwidth 1/HopLatency; we pipeline: a
	// link accepts one new packet per cycle).
	pipes := make([][][]inflight, n)
	for u := 0; u < n; u++ {
		deg := nw.g.OutDegree(u)
		queues[u] = make([][]int, deg)
		pipes[u] = make([][]inflight, deg)
	}

	maxCycles := nw.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 64*n*nw.cfg.HopLatency + 16*len(pkts) + 1024
	}

	res := Result{}
	remaining := 0
	// Route-or-drop at injection time, bucketed by release cycle.
	byRelease := map[int][]int{}
	for i := range pkts {
		if pkts[i].Src == pkts[i].Dst {
			pkts[i].Delivered = pkts[i].Release
			res.Delivered++
			continue
		}
		if nw.router.NextArc(pkts[i].Src, pkts[i].Dst) < 0 {
			res.Dropped++
			continue
		}
		byRelease[pkts[i].Release] = append(byRelease[pkts[i].Release], i)
		remaining++
	}

	enqueue := func(at, pkt int) bool {
		arc := nw.router.NextArc(at, pkts[pkt].Dst)
		if arc < 0 {
			res.Dropped++
			return false
		}
		queues[at][arc] = append(queues[at][arc], pkt)
		if depth := len(queues[at][arc]); depth > res.MaxQueue {
			res.MaxQueue = depth
			res.HotNode = at
		}
		return true
	}

	for cycle := 0; remaining > 0 && cycle <= maxCycles; cycle++ {
		// Inject.
		for _, i := range byRelease[cycle] {
			if !enqueue(pkts[i].Src, i) {
				remaining--
			}
		}
		delete(byRelease, cycle)

		// Arrivals: packets whose wire time completes this cycle.
		for u := 0; u < n; u++ {
			out := nw.g.Out(u)
			for a := range pipes[u] {
				pipe := pipes[u][a]
				keep := pipe[:0]
				for _, fl := range pipe {
					if fl.ready > cycle {
						keep = append(keep, fl)
						continue
					}
					v := out[a]
					p := &pkts[fl.pkt]
					p.Hops++
					if v == p.Dst {
						p.Delivered = cycle
						res.Delivered++
						remaining--
						if cycle > res.Cycles {
							res.Cycles = cycle
						}
						continue
					}
					if !enqueue(v, fl.pkt) {
						remaining--
					}
				}
				pipes[u][a] = keep
			}
		}

		// Departures: each link accepts one queued packet per cycle.
		for u := 0; u < n; u++ {
			for a := range queues[u] {
				q := queues[u][a]
				if len(q) == 0 {
					continue
				}
				pkt := q[0]
				queues[u][a] = q[1:]
				pipes[u][a] = append(pipes[u][a], inflight{
					pkt:   pkt,
					ready: cycle + nw.cfg.HopLatency,
				})
			}
		}
	}

	// Aggregate.
	latencySum := 0
	for i := range pkts {
		p := pkts[i]
		if p.Delivered < 0 {
			continue
		}
		res.TotalHops += p.Hops
		if p.Hops > res.MaxHops {
			res.MaxHops = p.Hops
		}
		latencySum += p.Delivered - p.Release
		res.TotalWait += (p.Delivered - p.Release) - p.Hops*nw.cfg.HopLatency
	}
	if res.Delivered > 0 {
		res.MeanLatency = float64(latencySum) / float64(res.Delivered)
		res.MeanHops = float64(res.TotalHops) / float64(res.Delivered)
	}
	res.Packets = pkts
	return res
}
